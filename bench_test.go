package embsp_test

// One Go benchmark per reproduction experiment: every Table 1 row,
// Figure 2, the lemma validations and the scaling sweeps. Each bench
// runs its experiment at Small scale (the experiments verify their
// outputs against the in-memory reference internally, so the measured
// time covers verified end-to-end runs). Run the same experiments at
// larger scales with cmd/embsp-bench.

import (
	"io"
	"testing"

	"embsp/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1, Group A.
func BenchmarkTable1Sorting(b *testing.B)     { benchExperiment(b, "table1/sorting") }
func BenchmarkTable1Permutation(b *testing.B) { benchExperiment(b, "table1/permutation") }
func BenchmarkTable1Transpose(b *testing.B)   { benchExperiment(b, "table1/transpose") }

// Table 1, Group B.
func BenchmarkTable1Hull(b *testing.B)         { benchExperiment(b, "table1/hull2d") }
func BenchmarkTable1Maxima(b *testing.B)       { benchExperiment(b, "table1/maxima3d") }
func BenchmarkTable1Dominance(b *testing.B)    { benchExperiment(b, "table1/dominance") }
func BenchmarkTable1RectUnion(b *testing.B)    { benchExperiment(b, "table1/rectunion") }
func BenchmarkTable1Envelope(b *testing.B)     { benchExperiment(b, "table1/envelope") }
func BenchmarkTable1GenEnvelope(b *testing.B)  { benchExperiment(b, "table1/genenvelope") }
func BenchmarkTable1SegTree(b *testing.B)      { benchExperiment(b, "table1/segtree") }
func BenchmarkTable1NextElem(b *testing.B)     { benchExperiment(b, "table1/nextelem") }
func BenchmarkTable1NN(b *testing.B)           { benchExperiment(b, "table1/nn2d") }
func BenchmarkTable1Separability(b *testing.B) { benchExperiment(b, "table1/separability") }

// Table 1, Group C.
func BenchmarkTable1ListRank(b *testing.B)  { benchExperiment(b, "table1/listrank") }
func BenchmarkTable1Euler(b *testing.B)     { benchExperiment(b, "table1/eulertour") }
func BenchmarkTable1CC(b *testing.B)        { benchExperiment(b, "table1/cc") }
func BenchmarkTable1LCA(b *testing.B)       { benchExperiment(b, "table1/lca") }
func BenchmarkTable1ExprTree(b *testing.B)  { benchExperiment(b, "table1/exprtree") }
func BenchmarkTable1BiCC(b *testing.B)      { benchExperiment(b, "table1/bicc") }
func BenchmarkTable1EarDecomp(b *testing.B) { benchExperiment(b, "table1/eardecomp") }

// Figure 2 and the lemma-level claims.
func BenchmarkFig2Routing(b *testing.B)   { benchExperiment(b, "fig2/layout") }
func BenchmarkLemma2Balance(b *testing.B) { benchExperiment(b, "lemma2/balance") }
func BenchmarkLemma10(b *testing.B)       { benchExperiment(b, "lemma10/balls") }
func BenchmarkLemma5(b *testing.B)        { benchExperiment(b, "lemma5/concentration") }

// Scaling and optimality claims.
func BenchmarkScaleDisks(b *testing.B)    { benchExperiment(b, "scale/disks") }
func BenchmarkScaleProcs(b *testing.B)    { benchExperiment(b, "scale/procs") }
func BenchmarkScaleBlocking(b *testing.B) { benchExperiment(b, "scale/blocking") }
func BenchmarkScaleMemory(b *testing.B)   { benchExperiment(b, "scale/memory") }
func BenchmarkScaleSlack(b *testing.B)    { benchExperiment(b, "scale/slack") }
func BenchmarkAblateRouting(b *testing.B) { benchExperiment(b, "ablate/routing") }
func BenchmarkCOptimality(b *testing.B)   { benchExperiment(b, "copt/ratio") }
func BenchmarkObs1(b *testing.B)          { benchExperiment(b, "obs1/cgm") }
