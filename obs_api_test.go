package embsp_test

// Observability acceptance tests: tracing and metrics must observe a
// run without perturbing it — the Result stays bitwise identical with
// a tracer attached, the emitted Chrome trace decodes and contains the
// engine phases, and the metrics registry's counters agree with the
// EMStats the run reports.

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"embsp"
	"embsp/internal/prng"
)

func obsSortProgram(t *testing.T) embsp.Program {
	t.Helper()
	r := prng.New(0x0B5)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	prog, err := embsp.NewSort(keys, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestTracingDoesNotPerturbResults runs the sort workload serial and
// pipelined, on P=1 and P=3 machines, with a tracer and metrics
// registry attached — and requires the identical Result an untraced
// run produces. This is the "tracing stays outside the bitwise
// identity contract" acceptance check.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	prog := obsSortProgram(t)
	for _, procs := range []int{1, 3} {
		cfg := embsp.MachineConfig{
			P: procs, M: 6 * prog.MaxContextWords(), D: 4, B: 64, G: 100,
			Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
		}
		plain, err := embsp.Run(prog, cfg, embsp.Options{
			Seed: 0x0B5, StateDir: t.TempDir(), Pipeline: -1, IOWorkers: -1,
		})
		if err != nil {
			t.Fatalf("P=%d plain: %v", procs, err)
		}

		tracePath := filepath.Join(t.TempDir(), "trace.json")
		tr, err := embsp.OpenTrace(tracePath, false)
		if err != nil {
			t.Fatal(err)
		}
		reg := embsp.NewMetricsRegistry()
		tr.AttachRegistry(reg)
		start := time.Now()
		traced, err := embsp.Run(prog, cfg, embsp.Options{
			Seed: 0x0B5, StateDir: t.TempDir(), Pipeline: 1,
			Trace: tr, Metrics: reg,
		})
		wall := time.Since(start)
		if err != nil {
			t.Fatalf("P=%d traced: %v", procs, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("closing trace: %v", err)
		}
		mustAgree(t, "traced vs plain", plain, traced)

		// The registry's overlap counters mirror the run's EMStats.
		ov := traced.EM.Overlap
		for _, c := range []struct {
			name string
			want int64
		}{
			{"overlap_prefetch_issued", ov.PrefetchIssued},
			{"overlap_prefetch_hits", ov.PrefetchHits},
			{"overlap_prefetch_misses", ov.PrefetchMisses},
			{"overlap_async_writes", ov.AsyncWrites},
			{"overlap_concurrent_peak", ov.ConcurrentPeak},
			{"em_run_ops", traced.EM.Run.Ops},
			{"em_comm_words", traced.EM.CommWords},
		} {
			if got := reg.Counter(c.name).Value(); got != c.want {
				t.Errorf("P=%d: metric %s = %d, want %d", procs, c.name, got, c.want)
			}
		}

		// The trace decodes, covers the engine phases, and its
		// engine-span total stays within the run's wall clock (the
		// phases tile each processor's lane, so the engine total is
		// bounded by lanes × wall).
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := embsp.DecodeTrace(data)
		if err != nil {
			t.Fatalf("P=%d: trace does not decode: %v", procs, err)
		}
		seen := map[string]bool{}
		var engineNanos int64
		for _, ev := range evs {
			seen[ev.Name] = true
			if ev.Cat == "engine" && ev.Ph == "X" {
				engineNanos += int64(ev.Dur * 1000)
			}
		}
		want := []string{"setup", "fetch-ctx", "compute", "write-ctx", "route", "barrier-sync", "finish", "journal-append", "phys-write", "phys-fsync"}
		if procs > 1 {
			want = append(want, "fetch-msg", "write-msg", "scatter")
		}
		for _, name := range want {
			if !seen[name] {
				t.Errorf("P=%d: trace has no %q spans (saw %v)", procs, name, seen)
			}
		}
		// +1 lane for the parallel engine's journal coordinator.
		lanes := int64(procs) + 1
		if engineNanos <= 0 || engineNanos > lanes*2*wall.Nanoseconds() {
			t.Errorf("P=%d: engine span total %v implausible against wall clock %v", procs, time.Duration(engineNanos), wall)
		}
	}
}

// TestSeqPhaseTotalsCoverWallClock is the report's acceptance bound
// for the sequential engine: with emulated drive latency dominating,
// the engine phases (which tile the single processor's timeline) must
// account for the bulk of the run's wall clock — the 5% slack of the
// acceptance criterion is relaxed to 25% here to keep CI hosts with
// noisy schedulers from flaking, which still catches a missing or
// double-counted phase outright.
func TestSeqPhaseTotalsCoverWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock coverage bound in -short mode (runs ~a second of emulated latency)")
	}
	prog := obsSortProgram(t)
	cfg := embsp.MachineConfig{
		P: 1, M: 6 * prog.MaxContextWords(), D: 4, B: 64, G: 100,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
	}
	tr := embsp.NewTracer()
	start := time.Now()
	if _, err := embsp.Run(prog, cfg, embsp.Options{
		Seed: 0x0B5, StateDir: t.TempDir(), Pipeline: -1, IOWorkers: -1,
		DriveLatency: 2 * time.Millisecond, Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	var engine int64
	for _, p := range tr.Phases() {
		if p.Cat == "engine" {
			engine += p.Nanos
		}
	}
	if lo := wall.Nanoseconds() * 3 / 4; engine < lo {
		t.Errorf("engine phases cover %v of %v wall clock (< 75%%) — a phase is missing from the tiling", time.Duration(engine), wall)
	}
	if engine > wall.Nanoseconds()*11/10 {
		t.Errorf("engine phases cover %v of %v wall clock (> 110%%) — phases overlap", time.Duration(engine), wall)
	}
}
