package embsp_test

import (
	"sort"
	"testing"

	"embsp"
	"embsp/internal/prng"
)

// TestPublicAPISort exercises the exported surface end to end: build
// a Table 1 program through the public constructors, run it on the
// reference runner and both EM engines, and compare.
func TestPublicAPISort(t *testing.T) {
	r := prng.New(1)
	const n = 2000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	prog, err := embsp.NewSort(keys, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := embsp.RunReference(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := prog.Output(ref.VPs)
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range want {
		if want[i] != sorted[i] {
			t.Fatalf("reference output wrong at %d", i)
		}
	}

	for _, p := range []int{1, 2} {
		cfg := embsp.MachineConfig{
			P: p, M: 4 * prog.MaxContextWords(), D: 2, B: 64, G: 100,
			Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
		}
		res, err := embsp.Run(prog, cfg, embsp.Options{Seed: 3})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got := prog.Output(res.VPs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: EM output differs at %d", p, i)
			}
		}
		if res.EM.Run.Ops <= 0 {
			t.Errorf("p=%d: no I/O counted", p)
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	mach, err := embsp.NewPDMMachine(4096, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 3, 9, 1, 7}
	f, err := mach.WriteFile(keys)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := mach.MergeSort(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mach.ReadFile(sorted)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PDM sort wrong at %d: %v", i, got)
		}
	}

	prog, err := embsp.NewSort(keys, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := embsp.RunSK(prog, 2, 64, embsp.SKOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	skOut := prog.Output(sk.VPs)
	for i := range want {
		if skOut[i] != want[i] {
			t.Fatalf("SK simulation wrong at %d: %v", i, skOut)
		}
	}
}

func TestDefaultMachineValid(t *testing.T) {
	cfg := embsp.DefaultMachine()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultMachine invalid: %v", err)
	}
	if embsp.DefaultCostParams().Pkt <= 0 {
		t.Error("default packet size not positive")
	}
}
