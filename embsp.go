// Package embsp is a working implementation of the simulation
// technique of Dehne, Dittrich and Hutchinson, "Efficient External
// Memory Algorithms by Simulating Coarse-Grained Parallel Algorithms"
// (SPAA '97; Algorithmica 36, 2003): it executes BSP* / CGM parallel
// programs as external-memory algorithms on a simulated machine with
// p processors, M words of memory each, and D disks per processor
// with block size B, where one parallel I/O operation moves up to D
// blocks at cost G.
//
// Three engines run the same Program with bitwise identical results:
//
//   - Run with P == 1 — Algorithm 1 (SeqCompoundSuperstep) plus
//     Algorithm 2 (SimulateRouting): contexts and messages live on the
//     simulated disks in the paper's standard consecutive and standard
//     linked formats, only k = ⌊M/µ⌋ virtual processors are in memory
//     at a time, and all I/O is fully blocked and D-parallel.
//   - Run with P > 1 — Algorithm 3 (ParCompoundSuperstep): messages
//     are scattered in packets to random processors to balance the
//     disk load, then routed locally.
//   - RunReference — the in-memory BSP reference semantics.
//
// The package also provides the Table 1 workloads (sorting,
// permutation, matrix transpose; 3D maxima, 2D dominance counting,
// rectangle union, convex hull, lower envelope, next-element search,
// all nearest neighbors; list ranking, Euler tour, connected
// components) as ready-made Programs, and the previously-known
// sequential EM baselines they are compared against. The bench
// harness under cmd/embsp-bench regenerates every row of the paper's
// Table 1 and its figure/lemma-level claims; see EXPERIMENTS.md.
package embsp

import (
	"context"

	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
	"embsp/internal/obs"
	"embsp/internal/redundancy"
)

// Core model types, re-exported from the engine packages.
type (
	// MachineConfig describes the target EM-BSP* machine: P
	// processors, M words of memory and D disks (block size B, I/O
	// cost G) each, plus BSP*-level cost parameters.
	MachineConfig = core.MachineConfig
	// Options configures a run (seed, deterministic placement).
	Options = core.Options
	// Result is a completed run: final VP states, measured BSP costs
	// and external-memory statistics.
	Result = core.Result
	// EMStats reports the external-memory behaviour of a run.
	EMStats = core.EMStats
	// OverlapStats reports the wall-clock physical-overlap behaviour
	// of a pipelined file-backed run (EMStats.Overlap): prefetch hit
	// rates, asynchronous writes, stall time and the concurrency peak.
	// Unlike every other statistic, it is allowed to differ between
	// two runs of the same program — it describes the physical
	// schedule, not the model.
	OverlapStats = disk.OverlapStats
	// TierSpec describes one intermediate store tier; set
	// Options.Tiers (outermost first) to stack bounded staging tiers
	// above the durable backend. Tier contents are cache, never
	// durable state, so the spec sits outside the config fingerprint:
	// tiered and flat runs are bitwise identical and share journals.
	TierSpec = core.TierSpec
	// TierStats reports one tier's cache-traffic counters
	// (EMStats.Tiers, outermost first). Like OverlapStats it describes
	// the physical schedule, not the model, and is allowed to differ
	// between two runs of the same program.
	TierStats = disk.TierStats
	// CostParams holds the BSP* parameters ĝ, g, b and L.
	CostParams = bsp.CostParams
	// Program is a BSP-like algorithm for v virtual processors.
	Program = bsp.Program
	// VP is one virtual processor of a Program.
	VP = bsp.VP
	// Env is a VP's execution environment during a superstep.
	Env = bsp.Env
	// Message is a point-to-point message between VPs.
	Message = bsp.Message
	// Costs holds measured BSP-level model costs.
	Costs = bsp.Costs
	// ReferenceResult is the outcome of an in-memory reference run.
	ReferenceResult = bsp.Result
	// FaultPlan is a deterministic seed-driven fault-injection
	// schedule; set Options.FaultPlan to run the engines with
	// imperfect hardware and superstep-granularity recovery. Results
	// stay bitwise identical to the fault-free run; the recovery work
	// is reported in EMStats.
	FaultPlan = fault.Plan
	// FaultError is the typed error the fault layer reports when
	// recovery is impossible (e.g. an unmirrored drive loss).
	FaultError = fault.Error
	// ProgramError is the typed error returned when a Program's Step
	// panics: the panic is recovered in every engine and reported with
	// the VP id, superstep and stack instead of crashing the process.
	ProgramError = bsp.ProgramError
	// JournalError is the typed error reported when the write-ahead
	// superstep journal in Options.StateDir is damaged (truncated HEAD,
	// corrupt record, fewer intact records than committed).
	JournalError = journal.Error
	// CorruptTrackError is the typed error reported when a track read
	// from a file-backed simulated drive fails its checksum (e.g. a torn
	// write from a crash mid-superstep on uncommitted data would be
	// detected, never silently used).
	CorruptTrackError = disk.CorruptTrackError
	// Redundancy selects how each processor's D simulated drives
	// survive a permanent drive loss; set Options.Redundancy. See
	// RedundancyNone, RedundancyMirror and RedundancyParity.
	Redundancy = redundancy.Mode
	// UnprotectedDriveLossError is the typed error Options validation
	// returns when a fault plan schedules a permanent drive death while
	// Redundancy is none.
	UnprotectedDriveLossError = core.UnprotectedDriveLossError
	// Tracer records per-phase spans of a run as Chrome trace_event
	// JSON plus in-memory per-phase totals; set Options.Trace. Like
	// OverlapStats it observes wall clock, so it sits outside the
	// bitwise-identity contract and the config fingerprint; a nil
	// Tracer costs nothing.
	Tracer = obs.Tracer
	// MetricsRegistry collects named counters and duration histograms
	// from a run; set Options.Metrics. Same observability carve-out as
	// Tracer.
	MetricsRegistry = obs.Registry
	// TraceEvent is one decoded Chrome trace_event record; see
	// DecodeTrace.
	TraceEvent = obs.Event
	// PhaseTotal is a tracer's aggregated per-phase duration total.
	PhaseTotal = obs.PhaseTotal
)

// Redundancy modes.
const (
	// RedundancyNone leaves the drives unprotected: a permanent drive
	// loss is unrecoverable, and fault plans scheduling one are
	// rejected up front.
	RedundancyNone = redundancy.None
	// RedundancyMirror keeps a full copy of every written track on a
	// partner drive (2× capacity, survives one drive loss).
	RedundancyMirror = redundancy.Mirror
	// RedundancyParity protects the D drives with rotated XOR parity
	// groups (RAID-5-style): ~1/(D-1) capacity overhead, one drive
	// loss survived via degraded reads, background scrub of latent
	// corruption, and online rebuild onto the survivors' spare
	// capacity.
	RedundancyParity = redundancy.Parity
)

// ParseRedundancy parses "none", "mirror" or "parity" (or "") into a
// Redundancy mode.
func ParseRedundancy(s string) (Redundancy, error) { return redundancy.ParseMode(s) }

// DefaultMachine returns a laptop-scale machine: one processor, 1 MiW
// of memory, 4 disks with 1 KiW blocks.
func DefaultMachine() MachineConfig { return core.DefaultMachine() }

// DefaultCostParams returns the default BSP* parameters used by the
// examples.
func DefaultCostParams() CostParams { return bsp.DefaultCostParams() }

// MmapSupported reports whether the mmap-backed store
// (Options.MappedStore) is available on this platform. When it is
// not, mapped runs silently fall back to the pread/pwrite file store
// with identical results, so callers only need this to explain the
// fallback, never to gate correctness.
func MmapSupported() bool { return disk.MmapSupported() }

// Run executes the program on the configured external-memory machine,
// using the sequential engine for P == 1 and the parallel engine
// otherwise.
func Run(p Program, cfg MachineConfig, opts Options) (*Result, error) {
	return core.Run(p, cfg, opts)
}

// RunContext is Run with cooperative cancellation: when ctx is
// cancelled the run stops at the next superstep barrier and returns
// ctx's error. With Options.StateDir set, the journal is left at the
// last committed barrier, so the run can be continued later with
// Options.Resume.
func RunContext(ctx context.Context, p Program, cfg MachineConfig, opts Options) (*Result, error) {
	return core.RunContext(ctx, p, cfg, opts)
}

// RunReference executes the program entirely in memory — the
// reference semantics every EM engine must reproduce exactly.
func RunReference(p Program, seed uint64) (*ReferenceResult, error) {
	return bsp.Run(p, bsp.RunOptions{Seed: seed})
}

// Retriable classifies an error returned by Run / RunContext for
// callers (CLIs, the job daemon) deciding whether to attempt the run
// again: true means a fresh attempt — typically resuming the StateDir
// journal — has a real chance of succeeding, false means the failure
// is terminal and retrying only repeats it. ProgramError, journal
// damage, unrepairable corruption, validation errors and context
// cancellation are terminal; a fault the engines' own replay loop
// would have considered recoverable is retriable.
func Retriable(err error) bool { return core.Retriable(err) }

// NewTracer returns a memory-only Tracer: per-phase totals accumulate
// (see Tracer.Phases) but no trace file is written.
func NewTracer() *Tracer { return obs.New() }

// OpenTrace returns a Tracer writing Chrome trace_event JSON to path,
// loadable in chrome://tracing or Perfetto. With resume true the file
// is opened in append mode and a resume marker is emitted, so a
// crash-resumed run extends its predecessor's trace.
func OpenTrace(path string, resume bool) (*Tracer, error) { return obs.Open(path, resume) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DecodeTrace parses the trace_event JSON a Tracer wrote. It accepts
// the unterminated-array form Tracer emits (the trailing "]" is
// deliberately never written, which is what makes append-mode crash
// survival safe; Chrome's loader tolerates it too).
func DecodeTrace(data []byte) ([]TraceEvent, error) { return obs.DecodeTrace(data) }

// ServeMetrics starts an HTTP listener on addr exposing the registry
// as Prometheus text at /metrics and JSON at /metrics.json, plus the
// standard pprof and expvar debug endpoints. It returns the actual
// listen address (useful with ":0").
func ServeMetrics(addr string, r *MetricsRegistry) (actual string, err error) {
	_, actual, err = obs.Serve(addr, r)
	return actual, err
}
