package embsp_test

// Engine micro-benchmarks: raw simulator throughput, independent of
// the experiment harness. These measure the host cost of simulating
// EM behaviour (the model costs themselves are exact counters and do
// not vary).

import (
	"testing"

	"embsp"
	"embsp/internal/prng"
)

func sortWorkload(n, v int) embsp.Program {
	r := prng.New(99)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	p, err := embsp.NewSort(keys, 1, v)
	if err != nil {
		panic(err)
	}
	return p
}

func benchEngine(b *testing.B, procs int) {
	prog := sortWorkload(1<<15, 32)
	cfg := embsp.MachineConfig{
		P: procs, M: 6 * prog.MaxContextWords(), D: 4, B: 256, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 256, Pkt: 256, L: 100},
	}
	b.ReportAllocs()
	b.SetBytes(8 << 15) // the sorted keys, in bytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := embsp.Run(prog, cfg, embsp.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.EM.Run.Ops), "io_ops")
	}
}

func BenchmarkEngineSeq(b *testing.B)  { benchEngine(b, 1) }
func BenchmarkEnginePar4(b *testing.B) { benchEngine(b, 4) }

// BenchmarkEngineSeqTraced is BenchmarkEngineSeq with a memory-only
// tracer and metrics registry attached. Compared against the untraced
// row it measures the observability overhead, which the nil-sink fast
// path is supposed to make the only cost tracing ever has.
func BenchmarkEngineSeqTraced(b *testing.B) {
	prog := sortWorkload(1<<15, 32)
	cfg := embsp.MachineConfig{
		P: 1, M: 6 * prog.MaxContextWords(), D: 4, B: 256, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 256, Pkt: 256, L: 100},
	}
	b.ReportAllocs()
	b.SetBytes(8 << 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := embsp.NewTracer()
		reg := embsp.NewMetricsRegistry()
		tr.AttachRegistry(reg)
		if _, err := embsp.Run(prog, cfg, embsp.Options{Seed: uint64(i), Trace: tr, Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineFile measures the sequential engine on a file-backed
// store with the group pipeline forced to the given setting — the
// host-throughput companion to internal/bench's perf/pipeline
// experiment (which guards the speedup ratio under emulated latency;
// these rows show the raw page-cache cost of each physical schedule).
func benchEngineFile(b *testing.B, pipeline int) {
	prog := sortWorkload(1<<13, 32)
	cfg := embsp.MachineConfig{
		P: 1, M: 6 * prog.MaxContextWords(), D: 4, B: 256, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 256, Pkt: 256, L: 100},
	}
	b.ReportAllocs()
	b.SetBytes(8 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		opts := embsp.Options{Seed: uint64(i), StateDir: dir, Pipeline: pipeline}
		if pipeline < 0 {
			opts.IOWorkers = -1
		}
		res, err := embsp.Run(prog, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.EM.Run.Ops), "io_ops")
	}
}

func BenchmarkEngineFileSerial(b *testing.B)    { benchEngineFile(b, -1) }
func BenchmarkEngineFilePipelined(b *testing.B) { benchEngineFile(b, 1) }

func BenchmarkEngineReference(b *testing.B) {
	prog := sortWorkload(1<<15, 32)
	b.ReportAllocs()
	b.SetBytes(8 << 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embsp.RunReference(prog, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSK(b *testing.B) {
	prog := sortWorkload(1<<12, 16)
	b.ReportAllocs()
	b.SetBytes(8 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := embsp.RunSK(prog, 4, 256, embsp.SKOptions{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Disk.Ops), "io_ops")
	}
}

// TestLargeWorkloadEndToEnd is an opt-in stress test: a million-key
// sort through the sequential EM engine, verified sorted. Skipped
// under -short.
func TestLargeWorkloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload skipped in -short mode")
	}
	prog := sortWorkload(1<<20, 64)
	cfg := embsp.MachineConfig{
		P: 1, M: 6 * prog.MaxContextWords(), D: 4, B: 1024, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 1024, Pkt: 1024, L: 100},
	}
	res, err := embsp.Run(prog, cfg, embsp.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := prog.(*embsp.SortProgram).Output(res.VPs)
	if len(out) != 1<<20 {
		t.Fatalf("output has %d keys", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if u := res.EM.Run.Utilization(); u < 0.9 {
		t.Errorf("utilization %.2f at full scale, want >= 0.9", u)
	}
}
