package embsp_test

// The issue's acceptance property over the public API: every Table 1
// workload, at small scale, run under a seeded transient-fault plan at
// P = 1 and P > 1, produces VP states bitwise identical to
// RunReference, while EMStats shows the recovery machinery actually
// worked (faults injected and paid for).

import (
	"fmt"
	"testing"

	"embsp"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// table1Programs builds one small instance of each Table 1 workload.
func table1Programs(t *testing.T) map[string]embsp.Program {
	t.Helper()
	r := prng.New(99)
	const n = 48
	const v = 6

	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	vals := make([]uint64, n)
	perm := r.Perm(n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	pts := make([]embsp.Point, n)
	for i := range pts {
		pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
	}
	pts3 := make([]embsp.Point3, n)
	for i := range pts3 {
		pts3[i] = embsp.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
	}
	rects := make([]embsp.Rect, n)
	for i := range rects {
		x, y := r.Float64(), r.Float64()
		rects[i] = embsp.Rect{X1: x, X2: x + r.Float64(), Y1: y, Y2: y + r.Float64()}
	}
	segs := make([]embsp.Segment, n)
	for i := range segs {
		x := 3 * float64(i)
		segs[i] = embsp.Segment{X1: x, Y1: r.Float64(), X2: x + 2, Y2: r.Float64()}
	}
	hsegs := make([]embsp.HSegment, n)
	for i := range hsegs {
		x := r.Float64()
		hsegs[i] = embsp.HSegment{X1: x, X2: x + 0.2, Y: r.Float64()}
	}
	succ := make([]int, n)
	lperm := r.Perm(n)
	for i := range succ {
		succ[i] = -1
	}
	for i := 0; i+1 < n; i++ {
		succ[lperm[i]] = lperm[i+1]
	}
	tree := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		tree = append(tree, [2]int{r.Intn(i), i})
	}
	graph := make([][2]int, 0, n)
	for len(graph) < n {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			graph = append(graph, [2]int{a, b})
		}
	}

	progs := make(map[string]embsp.Program)
	add := func(name string, p embsp.Program, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		progs[name] = p
	}
	{
		p, err := embsp.NewSort(keys, 1, v)
		add("sort", p, err)
	}
	{
		p, err := embsp.NewPermute(vals, perm, v)
		add("permute", p, err)
	}
	{
		p, err := embsp.NewTranspose(keys, 6, 8, v)
		add("transpose", p, err)
	}
	{
		p, err := embsp.NewMaxima3D(pts3, v)
		add("maxima", p, err)
	}
	{
		p, err := embsp.NewDominance2D(pts, vals, v)
		add("dominance", p, err)
	}
	{
		p, err := embsp.NewRectUnion(rects, v)
		add("rectunion", p, err)
	}
	{
		p, err := embsp.NewHull2D(pts, v)
		add("hull", p, err)
	}
	{
		p, err := embsp.NewEnvelope(segs, v)
		add("envelope", p, err)
	}
	{
		p, err := embsp.NewNextElement(hsegs, pts, v)
		add("nextelement", p, err)
	}
	{
		p, err := embsp.NewNN2D(pts, v)
		add("nn", p, err)
	}
	{
		p, err := embsp.NewListRank(succ, nil, v)
		add("listrank", p, err)
	}
	{
		p, err := embsp.NewEulerTour(n, tree, v)
		add("euler", p, err)
	}
	{
		p, err := embsp.NewCC(n, graph, v)
		add("cc", p, err)
	}
	return progs
}

// vpImage marshals a VP's full context, the bitwise-identity witness.
func vpImage(vp embsp.VP) []uint64 {
	enc := words.NewEncoder(nil)
	vp.Save(enc)
	return append([]uint64(nil), enc.Words()...)
}

func TestFaultPropertyTable1(t *testing.T) {
	const seed = 17
	plan := &embsp.FaultPlan{
		Seed:           23,
		ReadErrorRate:  0.02,
		WriteErrorRate: 0.02,
		CorruptRate:    0.02,
	}
	for name, prog := range table1Programs(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := embsp.RunReference(prog, seed)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]uint64, len(ref.VPs))
			for i, vp := range ref.VPs {
				want[i] = vpImage(vp)
			}
			for _, p := range []int{1, 3} {
				cfg := embsp.MachineConfig{
					P: p, M: 4 * prog.MaxContextWords(), D: 3, B: 32, G: 100,
					Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
				}
				res, err := embsp.Run(prog, cfg, embsp.Options{Seed: seed, FaultPlan: plan})
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				for i, vp := range res.VPs {
					got := vpImage(vp)
					if fmt.Sprint(got) != fmt.Sprint(want[i]) {
						t.Fatalf("P=%d: VP %d context differs from reference under faults", p, i)
					}
				}
				em := res.EM
				if em.FaultsInjected == 0 {
					t.Errorf("P=%d: no faults injected at 2%% rates", p)
				}
				if em.RecoveryOps == 0 {
					t.Errorf("P=%d: faults injected but RecoveryOps=0", p)
				}
			}
		})
	}
}
