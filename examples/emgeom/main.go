// emgeom runs two GIS/computational-geometry workloads from the
// paper's Table 1 Group B through the EM simulation: 3D maxima of a
// large point cloud and the area of a union of rectangles (a map
// overlay primitive), verifying both against in-core references.
package main

import (
	"fmt"
	"log"
	"math"

	"embsp"
	"embsp/internal/prng"
)

func main() {
	r := prng.New(2026)

	// --- 3D maxima ---------------------------------------------------
	const n3 = 1 << 15
	pts := make([]embsp.Point3, n3)
	for i := range pts {
		pts[i] = embsp.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
	}
	maxProg, err := embsp.NewMaxima3D(pts, 32)
	if err != nil {
		log.Fatal(err)
	}
	cfg := embsp.MachineConfig{
		P: 1, M: 5 * maxProg.MaxContextWords(), D: 4, B: 512, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 512, Pkt: 512, L: 100},
	}
	res, err := embsp.Run(maxProg, cfg, embsp.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	maxima := maxProg.Output(res.VPs)
	for _, i := range maxima { // spot-verify maximality
		for j := range pts {
			if j != i && pts[j].X > pts[i].X && pts[j].Y > pts[i].Y && pts[j].Z > pts[i].Z {
				log.Fatalf("point %d is not maximal (dominated by %d)", i, j)
			}
		}
	}
	fmt.Printf("3D maxima: %d of %d points are maximal (λ=%d, %d I/O ops, util %.2f)\n",
		len(maxima), n3, res.Costs.Supersteps, res.EM.Run.Ops, res.EM.Run.Utilization())

	// --- area of union of rectangles ---------------------------------
	const nr = 1 << 12
	rects := make([]embsp.Rect, nr)
	for i := range rects {
		x, y := r.Float64(), r.Float64()
		rects[i] = embsp.Rect{X1: x, X2: x + 0.002 + r.Float64()*0.05, Y1: y, Y2: y + 0.002 + r.Float64()*0.05}
	}
	ruProg, err := embsp.NewRectUnion(rects, 32)
	if err != nil {
		log.Fatal(err)
	}
	cfgR := cfg
	cfgR.M = 5 * ruProg.MaxContextWords()
	resR, err := embsp.Run(ruProg, cfgR, embsp.Options{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	area := ruProg.Output(resR.VPs)

	// Monte-Carlo sanity check over the rectangles' bounding box.
	bx1, by1 := math.Inf(1), math.Inf(1)
	bx2, by2 := math.Inf(-1), math.Inf(-1)
	for _, rc := range rects {
		bx1, by1 = math.Min(bx1, rc.X1), math.Min(by1, rc.Y1)
		bx2, by2 = math.Max(bx2, rc.X2), math.Max(by2, rc.Y2)
	}
	hit := 0
	const samples = 200000
	for s := 0; s < samples; s++ {
		x := bx1 + r.Float64()*(bx2-bx1)
		y := by1 + r.Float64()*(by2-by1)
		for _, rc := range rects {
			if rc.X1 <= x && x <= rc.X2 && rc.Y1 <= y && y <= rc.Y2 {
				hit++
				break
			}
		}
	}
	mc := float64(hit) / samples * (bx2 - bx1) * (by2 - by1)
	if math.Abs(area-mc) > 0.02*(1+mc) {
		log.Fatalf("union area %.4f far from Monte-Carlo estimate %.4f", area, mc)
	}
	fmt.Printf("rectangle union: area %.4f over %d rectangles (Monte-Carlo %.4f; λ=%d, %d I/O ops)\n",
		area, nr, mc, resR.Costs.Supersteps, resR.EM.Run.Ops)
}
