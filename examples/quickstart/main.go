// Quickstart: write a tiny CGM program against the embsp API and run
// it three ways — in memory (the reference semantics), on a simulated
// single-processor multi-disk external-memory machine, and on a
// 4-processor EM machine. All three produce identical results; the EM
// runs additionally report exact parallel-I/O counts.
//
// The program computes a distributed histogram: every virtual
// processor owns a slice of values, bins them locally, and routes the
// partial bins to their owners (one h-relation), which sum them.
package main

import (
	"fmt"
	"log"

	"embsp"
	"embsp/internal/words"
)

const (
	numVPs  = 16
	numBins = 64
	perVP   = 4096
)

// histProgram distributes values and bins them in two supersteps.
type histProgram struct {
	values [][]uint64 // per-VP input
}

func (p *histProgram) NumVPs() int          { return numVPs }
func (p *histProgram) MaxContextWords() int { return perVP + numBins + 8 }
func (p *histProgram) MaxCommWords() int    { return numVPs * (numBins + 2) }

func (p *histProgram) NewVP(id int) embsp.VP {
	return &histVP{vals: append([]uint64(nil), p.values[id]...)}
}

type histVP struct {
	phase uint64
	vals  []uint64
	bins  []uint64 // owned slice of the global histogram
}

func (vp *histVP) Step(env *embsp.Env, in []embsp.Message) (bool, error) {
	switch vp.phase {
	case 0:
		// Local binning, then one h-relation: bin b is owned by VP
		// b / (numBins/numVPs).
		local := make([]uint64, numBins)
		for _, v := range vp.vals {
			local[v%numBins]++
		}
		per := numBins / numVPs
		for d := 0; d < numVPs; d++ {
			env.Send(d, local[d*per:(d+1)*per])
		}
		env.Charge(int64(len(vp.vals)))
		vp.vals = nil
		vp.phase = 1
		return false, nil
	default:
		per := numBins / numVPs
		vp.bins = make([]uint64, per)
		for _, m := range in {
			for i, c := range m.Payload {
				vp.bins[i] += c
			}
		}
		return true, nil
	}
}

func (vp *histVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUints(vp.vals)
	enc.PutUints(vp.bins)
}

func (vp *histVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.vals = dec.Uints()
	vp.bins = dec.Uints()
}

func main() {
	// Synthetic input: a skewed value stream.
	prog := &histProgram{values: make([][]uint64, numVPs)}
	x := uint64(88172645463325252)
	for i := range prog.values {
		vals := make([]uint64, perVP)
		for j := range vals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			vals[j] = x % (numBins * numBins) % numBins * (x % 3)
		}
		prog.values[i] = vals
	}

	// 1. Reference semantics, entirely in memory.
	ref, err := embsp.RunReference(prog, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. External memory, one processor with four disks. Memory is
	// deliberately small: only a few virtual processors fit at a time.
	cfg := embsp.DefaultMachine()
	cfg.M = 4 * prog.MaxContextWords()
	cfg.B = 512
	cfg.Cost.Pkt = cfg.B // the model requires packet size b >= B
	em, err := embsp.Run(prog, cfg, embsp.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. External memory, four processors with four disks each.
	cfg4 := cfg
	cfg4.P = 4
	em4, err := embsp.Run(prog, cfg4, embsp.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// All engines agree bin for bin.
	for id := 0; id < numVPs; id++ {
		a := ref.VPs[id].(*histVP).bins
		b := em.VPs[id].(*histVP).bins
		c := em4.VPs[id].(*histVP).bins
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				log.Fatalf("engines disagree on bin %d of VP %d", i, id)
			}
		}
	}

	var total uint64
	for _, vp := range ref.VPs {
		for _, c := range vp.(*histVP).bins {
			total += c
		}
	}
	fmt.Printf("histogram over %d values in %d supersteps — all three engines agree\n",
		numVPs*perVP, ref.Costs.Supersteps)
	fmt.Printf("sequential EM machine: k=%d VPs per group, %d groups, %d parallel I/O ops (util %.2f), T_IO=%.3g\n",
		em.EM.K, em.EM.Groups, em.EM.Run.Ops, em.EM.Run.Utilization(), em.EM.IOTime)
	fmt.Printf("4-processor EM machine: %d total ops, T_IO=%.3g, %d real packets (T_comm=%.3g)\n",
		em4.EM.Run.Ops, em4.EM.IOTime, em4.EM.CommPkts, em4.EM.CommTime)
	fmt.Printf("checksum: %d values binned\n", total)
}
