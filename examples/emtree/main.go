// emtree runs the tree workloads of Table 1 Group C through the EM
// simulation: it evaluates a large arithmetic expression tree by
// parallel tree contraction and answers a batch of lowest-common-
// ancestor queries via an Euler tour with a distributed sparse table,
// verifying both against in-core references.
package main

import (
	"fmt"
	"log"

	"embsp"
	"embsp/internal/prng"
)

func main() {
	r := prng.New(4096)

	// --- expression tree evaluation -----------------------------------
	const leaves = 1 << 12
	parent, kind, value := randomExpr(r, leaves)
	exprProg, err := embsp.NewExprTree(parent, kind, value, 32)
	if err != nil {
		log.Fatal(err)
	}
	cfg := embsp.MachineConfig{
		P: 1, M: 6 * exprProg.MaxContextWords(), D: 4, B: 512, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 512, Pkt: 512, L: 100},
	}
	res, err := embsp.Run(exprProg, cfg, embsp.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	got := exprProg.Output(res.VPs)
	if want := seqEval(parent, kind, value); got != want {
		log.Fatalf("expression value %d, want %d", got, want)
	}
	fmt.Printf("expression tree: %d nodes (%d leaves) evaluated to %d\n", len(parent), leaves, got)
	fmt.Printf("  contraction ran in λ=%d supersteps, %d parallel I/O ops (util %.2f)\n",
		res.Costs.Supersteps, res.EM.Run.Ops, res.EM.Run.Utilization())

	// --- batched LCA ---------------------------------------------------
	const n = 1 << 13
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{r.Intn(i), i})
	}
	queries := make([][2]int, n)
	for i := range queries {
		queries[i] = [2]int{r.Intn(n), r.Intn(n)}
	}
	lcaProg, err := embsp.NewLCA(n, edges, queries, 32)
	if err != nil {
		log.Fatal(err)
	}
	cfgL := cfg
	cfgL.M = 6 * lcaProg.MaxContextWords()
	resL, err := embsp.Run(lcaProg, cfgL, embsp.Options{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	answers := lcaProg.Output(resL.VPs)

	// In-core verification by parent walking.
	par := make([]int, n)
	par[0] = -1
	for _, e := range edges {
		par[e[1]] = e[0]
	}
	depth := make([]int, n)
	for i := 1; i < n; i++ {
		depth[i] = depth[par[i]] + 1
	}
	for i, q := range queries {
		u, v := q[0], q[1]
		for depth[u] > depth[v] {
			u = par[u]
		}
		for depth[v] > depth[u] {
			v = par[v]
		}
		for u != v {
			u, v = par[u], par[v]
		}
		if answers[i] != u {
			log.Fatalf("query %d: LCA(%d,%d) = %d, want %d", i, q[0], q[1], answers[i], u)
		}
	}
	fmt.Printf("LCA: %d queries on a %d-vertex tree, all verified\n", len(queries), n)
	fmt.Printf("  Euler tour + sparse table ran in λ=%d supersteps, %d parallel I/O ops (util %.2f)\n",
		resL.Costs.Supersteps, resL.EM.Run.Ops, resL.EM.Run.Utilization())
}

func randomExpr(r *prng.Rand, nLeaves int) (parent []int, kind []uint8, value []uint64) {
	parent = []int{-1}
	kind = []uint8{embsp.OpLeaf}
	value = []uint64{r.Uint64() % 100}
	if nLeaves <= 1 {
		return
	}
	leaves := []int{0}
	for len(leaves) < nLeaves {
		li := r.Intn(len(leaves))
		node := leaves[li]
		if r.Bool() {
			kind[node] = embsp.OpAdd
		} else {
			kind[node] = embsp.OpMul
		}
		for c := 0; c < 2; c++ {
			parent = append(parent, node)
			kind = append(kind, embsp.OpLeaf)
			value = append(value, r.Uint64()%100)
			if c == 0 {
				leaves[li] = len(parent) - 1
			} else {
				leaves = append(leaves, len(parent)-1)
			}
		}
	}
	return
}

func seqEval(parent []int, kind []uint8, value []uint64) uint64 {
	n := len(parent)
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		children[parent[i]] = append(children[parent[i]], i)
	}
	var eval func(i int) uint64
	eval = func(i int) uint64 {
		if kind[i] == embsp.OpLeaf {
			return value[i]
		}
		a, b := eval(children[i][0]), eval(children[i][1])
		if kind[i] == embsp.OpAdd {
			return a + b
		}
		return a * b
	}
	return eval(0)
}
