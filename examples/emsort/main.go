// emsort sorts a large key array in external memory two ways and
// compares their exact parallel-I/O counts on identical simulated
// hardware:
//
//  1. the paper's route — the CGM sample sort simulated as an EM
//     algorithm (Theorem 1 / Corollary 1, the Table 1 'Sorting' row);
//  2. the classical PDM external merge sort baseline.
//
// Both run on one processor with four disks. The simulated route also
// runs on a 4-processor machine to show the parallel speedup.
package main

import (
	"fmt"
	"log"

	"embsp"
	"embsp/internal/prng"
)

func main() {
	const (
		n = 1 << 20
		v = 64   // virtual processors
		b = 1024 // block size in words
		d = 4    // disks
	)
	r := prng.New(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}

	prog, err := embsp.NewSort(keys, 1, v)
	if err != nil {
		log.Fatal(err)
	}

	cfg := embsp.MachineConfig{
		P: 1, M: 6 * prog.MaxContextWords(), D: d, B: b, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: float64(b), Pkt: b, L: 100},
	}
	res, err := embsp.Run(prog, cfg, embsp.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	out := prog.Output(res.VPs)
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			log.Fatalf("output not sorted at %d", i)
		}
	}
	fmt.Printf("EM-CGM sample sort: %d keys sorted in λ=%d supersteps\n", n, res.Costs.Supersteps)
	fmt.Printf("  p=1 D=%d: %d parallel I/O ops, utilization %.2f, T_IO=%.3g\n",
		d, res.EM.Run.Ops, res.EM.Run.Utilization(), res.EM.IOTime)

	cfg4 := cfg
	cfg4.P = 4
	res4, err := embsp.Run(prog, cfg4, embsp.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  p=4 D=%d: T_IO=%.3g (%.1fx speedup), %d packets between processors\n",
		d, res4.EM.IOTime, res.EM.IOTime/res4.EM.IOTime, res4.EM.CommPkts)

	// PDM merge sort baseline on the same disk geometry and memory.
	mach, err := embsp.NewPDMMachine(cfg.M, d, b)
	if err != nil {
		log.Fatal(err)
	}
	f, err := mach.WriteFile(keys)
	if err != nil {
		log.Fatal(err)
	}
	mach.Arr.ResetStats()
	sorted, err := mach.MergeSort(f, 1)
	if err != nil {
		log.Fatal(err)
	}
	check, err := mach.ReadFile(sorted)
	if err != nil {
		log.Fatal(err)
	}
	for i := range out {
		if out[i] != check[i] {
			log.Fatalf("EM-CGM and PDM sorts disagree at %d", i)
		}
	}
	st := mach.Arr.Stats()
	fmt.Printf("PDM merge sort baseline: %d parallel I/O ops, utilization %.2f\n", st.Ops, st.Utilization())
	fmt.Printf("(the hand-crafted baseline is leaner on one processor — the simulation's\n")
	fmt.Printf(" return is automatic parallelism: same code, p processors, ~p× less I/O time)\n")
}
