// emgraph computes connected components and a spanning forest of a
// large sparse random graph with the simulated EM-CGM algorithm
// (Table 1, Group C), on a 2-processor machine with four disks each,
// and verifies the labelling against an in-core union-find.
package main

import (
	"fmt"
	"log"

	"embsp"
	"embsp/internal/prng"
)

func main() {
	const (
		n = 1 << 15
		m = 1 << 16
		v = 32
	)
	r := prng.New(99)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}

	prog, err := embsp.NewCC(n, edges, v)
	if err != nil {
		log.Fatal(err)
	}
	cfg := embsp.MachineConfig{
		P: 2, M: 6 * prog.MaxContextWords(), D: 4, B: 512, G: 1000,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 512, Pkt: 512, L: 100},
	}
	res, err := embsp.Run(prog, cfg, embsp.Options{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	labels := prog.Output(res.VPs)
	forest := prog.Forest(res.VPs)

	// In-core verification.
	uf := make([]int, n)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for _, e := range edges {
		uf[find(e[0])] = find(e[1])
	}
	comps := map[int]bool{}
	for i := 0; i < n; i++ {
		comps[find(i)] = true
		if labels[i] != labels[find(i)] {
			log.Fatalf("label mismatch at vertex %d", i)
		}
	}
	fmt.Printf("graph: %d vertices, %d edges → %d components, %d forest edges\n",
		n, m, len(comps), len(forest))
	fmt.Printf("Borůvka rounds: %d; supersteps λ=%d (paper: O(log p) CGM rounds)\n",
		prog.Rounds(res.VPs), res.Costs.Supersteps)
	fmt.Printf("EM machine p=%d D=%d: %d parallel I/O ops (util %.2f), T_IO=%.3g, %d packets\n",
		cfg.P, cfg.D, res.EM.Run.Ops, res.EM.Run.Utilization(), res.EM.IOTime, res.EM.CommPkts)
	fmt.Println("labels verified against in-core union-find")
}
