package embsp

import (
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/alg/cgmsort"
)

// Table 1 workload constructors, re-exported so applications can run
// the paper's algorithm suite through any engine. Each returned
// program type carries an Output method that assembles the result
// from a Result's VPs.

// Geometry input types.
type (
	// Point is a point in the plane.
	Point = cgmgeom.Point
	// Point3 is a point in space.
	Point3 = cgmgeom.Point3
	// Rect is an axis-parallel rectangle.
	Rect = cgmgeom.Rect
	// Segment is a line segment with X1 < X2.
	Segment = cgmgeom.Segment
	// HSegment is a horizontal segment for next-element search.
	HSegment = cgmgeom.HSegment
	// EnvelopePiece is one piece of a lower envelope.
	EnvelopePiece = cgmgeom.EnvelopePiece
	// TreeInfo is the per-vertex output of an Euler tour.
	TreeInfo = cgmgraph.TreeInfo
)

// Program types (each implements Program and has Output/observables).
type (
	SortProgram         = cgmsort.SortProgram
	PermuteProgram      = cgmsort.PermuteProgram
	Maxima3DProgram     = cgmgeom.Maxima3D
	Dominance2DProgram  = cgmgeom.Dominance2D
	RectUnionProgram    = cgmgeom.RectUnion
	Hull2DProgram       = cgmgeom.Hull2D
	EnvelopeProgram     = cgmgeom.Envelope
	NextElementProgram  = cgmgeom.NextElement
	NN2DProgram         = cgmgeom.NN2D
	SeparabilityProgram = cgmgeom.Separability
	GenEnvelopeProgram  = cgmgeom.GenEnvelope
	SegTreeProgram      = cgmgeom.SegTree
	ListRankProgram     = cgmgraph.ListRank
	EulerTourProgram    = cgmgraph.EulerTour
	CCProgram           = cgmgraph.CC
	LCAProgram          = cgmgraph.LCA
	ExprTreeProgram     = cgmgraph.ExprTree
	TourAggProgram      = cgmgraph.TourAgg
)

// Expression node kinds for NewExprTree.
const (
	OpLeaf = cgmgraph.OpLeaf
	OpAdd  = cgmgraph.OpAdd
	OpMul  = cgmgraph.OpMul
)

// NewSort returns a distributed sample sort of flat w-word records
// over v virtual processors (Group A, "Sorting").
func NewSort(data []uint64, w, v int) (*SortProgram, error) {
	return cgmsort.NewSort(data, w, v)
}

// NewPermute routes vals[i] to position targets[i] (Group A,
// "Permutation").
func NewPermute(vals []uint64, targets []int, v int) (*PermuteProgram, error) {
	return cgmsort.NewPermute(vals, targets, v)
}

// NewTranspose transposes an r×c row-major matrix (Group A, "Matrix
// transpose").
func NewTranspose(matrix []uint64, r, c, v int) (*PermuteProgram, error) {
	return cgmsort.NewTranspose(matrix, r, c, v)
}

// NewMaxima3D computes 3D maxima (Group B, "3D-maxima").
func NewMaxima3D(pts []Point3, v int) (*Maxima3DProgram, error) {
	return cgmgeom.NewMaxima3D(pts, v)
}

// NewDominance2D computes weighted dominance counts (Group B,
// "2D-weighted dominance counting").
func NewDominance2D(pts []Point, weights []uint64, v int) (*Dominance2DProgram, error) {
	return cgmgeom.NewDominance2D(pts, weights, v)
}

// NewRectUnion computes the area of a union of rectangles (Group B).
func NewRectUnion(rects []Rect, v int) (*RectUnionProgram, error) {
	return cgmgeom.NewRectUnion(rects, v)
}

// NewHull2D computes a planar convex hull (Group B; stands in for the
// 3D hull / Voronoi family — see DESIGN.md §5).
func NewHull2D(pts []Point, v int) (*Hull2DProgram, error) {
	return cgmgeom.NewHull2D(pts, v)
}

// NewEnvelope computes the lower envelope of non-intersecting
// segments (Group B).
func NewEnvelope(segs []Segment, v int) (*EnvelopeProgram, error) {
	return cgmgeom.NewEnvelope(segs, v)
}

// NewNextElement answers batched vertical ray-shooting queries
// (Group B, "Next element search").
func NewNextElement(segs []HSegment, queries []Point, v int) (*NextElementProgram, error) {
	return cgmgeom.NewNextElement(segs, queries, v)
}

// NewNN2D computes all nearest neighbors (Group B, "2D-nearest
// neighbors").
func NewNN2D(pts []Point, v int) (*NN2DProgram, error) {
	return cgmgeom.NewNN2D(pts, v)
}

// NewSeparability decides linear separability of two point sets
// (Group B, "Uni- and multi-directional separability").
func NewSeparability(a, b []Point, v int) (*SeparabilityProgram, error) {
	return cgmgeom.NewSeparability(a, b, v)
}

// NewGenEnvelope computes the lower envelope of possibly-intersecting
// segments (Group B, "Generalized lower envelope of line segments").
func NewGenEnvelope(segs []Segment, v int) (*GenEnvelopeProgram, error) {
	return cgmgeom.NewGenEnvelope(segs, v)
}

// NewSegTree builds a segment tree over intervals in batched fashion
// (Group B, "Segment tree construction"): non-empty nodes with
// contiguous interval lists, ready for batched stabbing queries.
func NewSegTree(intervals []Segment, v int) (*SegTreeProgram, error) {
	return cgmgeom.NewSegTree(intervals, v)
}

// SegTreeNode is one node of a built segment tree.
type SegTreeNode = cgmgeom.Node

// NewListRank ranks linked lists (Group C, "List ranking"). succ[i] =
// -1 marks a tail; weight nil means unit weights.
func NewListRank(succ []int, weight []uint64, v int) (*ListRankProgram, error) {
	return cgmgraph.NewListRank(succ, weight, v)
}

// NewEulerTour computes an Euler tour of a tree rooted at vertex 0
// and its tree applications (Group C, "Euler tour").
func NewEulerTour(n int, edges [][2]int, v int) (*EulerTourProgram, error) {
	return cgmgraph.NewEulerTour(n, edges, v)
}

// NewCC computes connected components and a spanning forest (Group C).
func NewCC(n int, edges [][2]int, v int) (*CCProgram, error) {
	return cgmgraph.NewCC(n, edges, v)
}

// NewLCA answers batched lowest-common-ancestor queries on a tree
// rooted at vertex 0 (Group C, "Lowest common ancestor").
func NewLCA(n int, edges [][2]int, queries [][2]int, v int) (*LCAProgram, error) {
	return cgmgraph.NewLCA(n, edges, queries, v)
}

// NewExprTree evaluates an arithmetic expression tree over ℤ/2⁶⁴ by
// parallel tree contraction (Group C, "Tree contraction / Expression
// tree evaluation"). parent[0] must be -1 (node 0 is the root).
func NewExprTree(parent []int, kind []uint8, value []uint64, v int) (*ExprTreeProgram, error) {
	return cgmgraph.NewExprTree(parent, kind, value, v)
}

// Runner executes a Program on an engine of the caller's choice; it
// is how multi-phase drivers such as Biconnectivity stay
// engine-agnostic.
type Runner = cgmgraph.Runner

// EMRunner returns a Runner executing programs on the given EM
// machine.
func EMRunner(cfg MachineConfig, opts Options) Runner {
	return func(p Program) ([]VP, error) {
		c := cfg
		if c.M < 3*p.MaxContextWords() {
			c.M = 3 * p.MaxContextWords()
		}
		res, err := Run(p, c, opts)
		if err != nil {
			return nil, err
		}
		return res.VPs, nil
	}
}

// Biconnectivity computes biconnected-component labels for the edges
// of a connected graph (Group C, "Biconnected components") with the
// Tarjan–Vishkin reduction, composed from CC, EulerTour and TourAgg
// runs executed through the supplied Runner.
func Biconnectivity(n int, edges [][2]int, v int, run Runner) ([]int, error) {
	return cgmgraph.Biconnectivity(n, edges, v, run)
}

// EarDecomposition computes an (open) ear decomposition of a
// biconnected graph (Group C, "Ear and open ear decomposition"),
// composed from CC, EulerTour, LCA and TourAgg runs executed through
// the supplied Runner. The result is each edge's 0-based ear index.
func EarDecomposition(n int, edges [][2]int, v int, run Runner) ([]int, error) {
	return cgmgraph.EarDecomposition(n, edges, v, run)
}

// NewTourAgg computes per-vertex subtree minima and maxima of a value
// array over a tree rooted at vertex 0 — the Euler-tour reduction
// behind the biconnectivity and ear-decomposition drivers.
func NewTourAgg(n int, edges [][2]int, vals []uint64, v int) (*TourAggProgram, error) {
	return cgmgraph.NewTourAgg(n, edges, vals, v)
}
