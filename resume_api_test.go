package embsp_test

// The durability tentpole's acceptance property over the public API: a
// Table 1 workload killed with SIGKILL mid-superstep — a real process
// death, not a simulated one — and resumed from its state directory
// produces a Result bitwise identical to the uninterrupted run.
//
// The kill happens in a re-executed copy of the test binary (the
// crashHelper test below), because SIGKILL cannot be recovered from
// in-process.

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"embsp"
	"embsp/internal/prng"
)

const (
	helperEnv   = "EMBSP_CRASH_HELPER_DIR"
	killEnv     = "EMBSP_CRASH_KILL_STEP"
	pipelineEnv = "EMBSP_CRASH_PIPELINE" // "1" forces the group pipeline on in the helper
	storeEnv    = "EMBSP_CRASH_STORE"    // "mapped" runs the helper on the mmap-backed store
	tiersEnv    = "EMBSP_CRASH_TIERS"    // "1" stacks a staging tier (with emulated drive latency, so its fill workers are live at the kill)
)

// crashSort builds the workload deterministically so the parent, the
// helper process and the resumed run all simulate the same program.
func crashSort(t *testing.T) *embsp.SortProgram {
	t.Helper()
	r := prng.New(7)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	p, err := embsp.NewSort(keys, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func crashMachine() embsp.MachineConfig {
	return embsp.MachineConfig{
		P: 1, M: 8192, D: 4, B: 64, G: 10,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 2, Pkt: 128, L: 5},
	}
}

// sigkillVP hard-kills the process when superstep killStep starts
// computing — no deferred cleanup runs, exactly like a power loss.
type sigkillProgram struct {
	embsp.Program
	killStep int
}

func (p *sigkillProgram) NewVP(id int) embsp.VP {
	vp := p.Program.NewVP(id)
	if id == p.Program.NumVPs()/2 {
		return &sigkillVP{VP: vp, killStep: p.killStep}
	}
	return vp
}

type sigkillVP struct {
	embsp.VP
	killStep int
}

func (k *sigkillVP) Step(env *embsp.Env, in []embsp.Message) (bool, error) {
	if env.Superstep() == k.killStep {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return k.VP.Step(env, in)
}

// TestCrashHelperProcess is not a test of its own: re-executed by
// TestKillAndResumeSort with the environment set, it starts the
// durable run that SIGKILLs itself mid-superstep.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper: only runs re-executed with " + helperEnv)
	}
	killStep, err := strconv.Atoi(os.Getenv(killEnv))
	if err != nil {
		t.Fatal(err)
	}
	prog := &sigkillProgram{Program: crashSort(t), killStep: killStep}
	opts := embsp.Options{Seed: 7, StateDir: dir}
	if os.Getenv(pipelineEnv) == "1" {
		opts.Pipeline = 1
	}
	if os.Getenv(storeEnv) == "mapped" {
		opts.MappedStore = true
	}
	if os.Getenv(tiersEnv) == "1" {
		opts.Tiers = []embsp.TierSpec{{}}
		opts.DriveLatency = 200 * time.Microsecond
	}
	_, err = embsp.Run(prog, crashMachine(), opts)
	t.Fatalf("run survived its own SIGKILL: err=%v", err)
}

func TestKillAndResumeSort(t *testing.T) {
	p := crashSort(t)
	cfg := crashMachine()
	clean, err := embsp.Run(p, cfg, embsp.Options{Seed: 7, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "state")
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashHelperProcess")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir, killEnv+"=3")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die by SIGKILL: err=%v\n%s", err, out)
	}

	res, err := embsp.Run(p, cfg, embsp.Options{Seed: 7, StateDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}

	cleanOut, resOut := p.Output(clean.VPs), p.Output(res.VPs)
	if !reflect.DeepEqual(cleanOut, resOut) {
		t.Error("resumed run sorted differently from the uninterrupted run")
	}
	for i := 1; i < len(resOut); i++ {
		if resOut[i-1] > resOut[i] {
			t.Fatalf("resumed output not sorted at %d", i)
		}
	}
	if !reflect.DeepEqual(clean.Costs, res.Costs) {
		t.Errorf("model costs differ:\nclean:   %+v\nresumed: %+v", clean.Costs, res.Costs)
	}
	// Overlap is wall-clock observability and outside the
	// bitwise-identity contract; equalize it before comparing.
	res.EM.Overlap = clean.EM.Overlap
	res.EM.StoreBackend, res.EM.Tiers = clean.EM.StoreBackend, clean.EM.Tiers
	if !reflect.DeepEqual(clean.EM, res.EM) {
		t.Errorf("EM statistics differ:\nclean:   %+v\nresumed: %+v", clean.EM, res.EM)
	}
}

// TestKillMidPipelineAndResumeSerial is the tentpole's crash-safety
// property: SIGKILL a run whose group pipeline is forced on — dying
// with prefetched blocks in the cache, write-behind queues in flight
// and possibly a background flush mid-fsync — then resume it with the
// pipeline forced OFF on a fully synchronous store. Crossing the
// physical schedule over the crash boundary proves the journal's
// durable state is schedule-independent: the resumed serial run must
// be bitwise identical to an uninterrupted run.
func TestKillMidPipelineAndResumeSerial(t *testing.T) {
	p := crashSort(t)
	cfg := crashMachine()
	clean, err := embsp.Run(p, cfg, embsp.Options{Seed: 7, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "state")
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashHelperProcess")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir, killEnv+"=2", pipelineEnv+"=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die by SIGKILL: err=%v\n%s", err, out)
	}

	res, err := embsp.Run(p, cfg, embsp.Options{
		Seed: 7, StateDir: dir, Resume: true, Pipeline: -1, IOWorkers: -1,
	})
	if err != nil {
		t.Fatalf("resume after SIGKILL mid-pipeline: %v", err)
	}

	if !reflect.DeepEqual(p.Output(clean.VPs), p.Output(res.VPs)) {
		t.Error("serial resume of a pipelined crash sorted differently from the uninterrupted run")
	}
	if !reflect.DeepEqual(clean.Costs, res.Costs) {
		t.Errorf("model costs differ:\nclean:   %+v\nresumed: %+v", clean.Costs, res.Costs)
	}
	res.EM.Overlap = clean.EM.Overlap
	res.EM.StoreBackend, res.EM.Tiers = clean.EM.StoreBackend, clean.EM.Tiers
	if !reflect.DeepEqual(clean.EM, res.EM) {
		t.Errorf("EM statistics differ:\nclean:   %+v\nresumed: %+v", clean.EM, res.EM)
	}
}

// killHelper re-executes the test binary as the crash helper with the
// given environment and asserts it died by SIGKILL.
func killHelper(t *testing.T, env ...string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashHelperProcess")
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die by SIGKILL: err=%v\n%s", err, out)
	}
}

// TestKillAndResumeAcrossStores crosses the STORE BACKEND over the
// crash boundary, in both directions: SIGKILL a run on the mmap-backed
// store and resume it on the fully synchronous pread/pwrite file
// store, then SIGKILL a pipelined file-store run and resume it on the
// mapped store. The two stores share one on-disk slot format and one
// journal, so each resumed run must be bitwise identical to an
// uninterrupted one — the durable state carries no trace of which
// backend (or physical schedule) wrote it.
func TestKillAndResumeAcrossStores(t *testing.T) {
	p := crashSort(t)
	cfg := crashMachine()
	clean, err := embsp.Run(p, cfg, embsp.Options{Seed: 7, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, res *embsp.Result) {
		t.Helper()
		if !reflect.DeepEqual(p.Output(clean.VPs), p.Output(res.VPs)) {
			t.Errorf("%s: resumed run sorted differently from the uninterrupted run", label)
		}
		if !reflect.DeepEqual(clean.Costs, res.Costs) {
			t.Errorf("%s: model costs differ:\nclean:   %+v\nresumed: %+v", label, clean.Costs, res.Costs)
		}
		res.EM.Overlap = clean.EM.Overlap
		res.EM.StoreBackend, res.EM.Tiers = clean.EM.StoreBackend, clean.EM.Tiers
		if !reflect.DeepEqual(clean.EM, res.EM) {
			t.Errorf("%s: EM statistics differ:\nclean:   %+v\nresumed: %+v", label, clean.EM, res.EM)
		}
	}

	// Die on the mapped store, resume on the synchronous file store.
	dir := filepath.Join(t.TempDir(), "state")
	killHelper(t, helperEnv+"="+dir, killEnv+"=3", storeEnv+"=mapped")
	res, err := embsp.Run(p, cfg, embsp.Options{
		Seed: 7, StateDir: dir, Resume: true, Pipeline: -1, IOWorkers: -1,
	})
	if err != nil {
		t.Fatalf("file resume of a mapped crash: %v", err)
	}
	check("mapped->file", res)

	// Die on the pipelined file store, resume on the mapped store.
	dir = filepath.Join(t.TempDir(), "state")
	killHelper(t, helperEnv+"="+dir, killEnv+"=2", pipelineEnv+"=1")
	res, err = embsp.Run(p, cfg, embsp.Options{
		Seed: 7, StateDir: dir, Resume: true, MappedStore: true,
	})
	if err != nil {
		t.Fatalf("mapped resume of a pipelined file crash: %v", err)
	}
	check("file->mapped", res)
}

// TestKillAndResumeTiered crosses a STORE TIER over the crash
// boundary: SIGKILL a pipelined run with a staging tier above a
// latency-emulating file store — dying with tier fill workers live and
// staged blocks in the tier cache — then resume it flat, serial, at
// zero latency. Tier contents are cache, never durable state, so the
// resumed run must be bitwise identical to an uninterrupted flat run;
// then the reverse direction, resuming a flat crash with the tier
// stacked.
func TestKillAndResumeTiered(t *testing.T) {
	p := crashSort(t)
	cfg := crashMachine()
	clean, err := embsp.Run(p, cfg, embsp.Options{Seed: 7, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, res *embsp.Result) {
		t.Helper()
		if !reflect.DeepEqual(p.Output(clean.VPs), p.Output(res.VPs)) {
			t.Errorf("%s: resumed run sorted differently from the uninterrupted run", label)
		}
		if !reflect.DeepEqual(clean.Costs, res.Costs) {
			t.Errorf("%s: model costs differ:\nclean:   %+v\nresumed: %+v", label, clean.Costs, res.Costs)
		}
		res.EM.Overlap = clean.EM.Overlap
		res.EM.StoreBackend, res.EM.Tiers = clean.EM.StoreBackend, clean.EM.Tiers
		if !reflect.DeepEqual(clean.EM, res.EM) {
			t.Errorf("%s: EM statistics differ:\nclean:   %+v\nresumed: %+v", label, clean.EM, res.EM)
		}
	}

	// Die tiered mid-pipeline, resume flat and fully synchronous.
	dir := filepath.Join(t.TempDir(), "state")
	killHelper(t, helperEnv+"="+dir, killEnv+"=2", pipelineEnv+"=1", tiersEnv+"=1")
	res, err := embsp.Run(p, cfg, embsp.Options{
		Seed: 7, StateDir: dir, Resume: true, Pipeline: -1, IOWorkers: -1,
	})
	if err != nil {
		t.Fatalf("flat resume of a tiered crash: %v", err)
	}
	check("tiered->flat", res)

	// Die flat, resume with the tier stacked and the pipeline on.
	dir = filepath.Join(t.TempDir(), "state")
	killHelper(t, helperEnv+"="+dir, killEnv+"=3")
	res, err = embsp.Run(p, cfg, embsp.Options{
		Seed: 7, StateDir: dir, Resume: true, Pipeline: 1,
		Tiers: []embsp.TierSpec{{}},
	})
	if err != nil {
		t.Fatalf("tiered resume of a flat crash: %v", err)
	}
	check("flat->tiered", res)
}
