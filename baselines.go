package embsp

import (
	"embsp/internal/disk"
	"embsp/internal/pdm"
)

// Baseline types, re-exported for comparisons against the simulation
// (the "previous results" column of the paper's Table 1).
type (
	// PDMMachine is a single-processor parallel-disk-model machine
	// running the classical sequential EM algorithms (external merge
	// sort, permutation, transpose, PRAM-simulation list ranking).
	PDMMachine = pdm.Machine
	// PDMFile is a word sequence stored on a PDMMachine's disks.
	PDMFile = pdm.File
	// SKOptions configures the Sibeyn–Kaufmann-style unblocked
	// simulation baseline.
	SKOptions = pdm.SKOptions
	// SKResult is its outcome.
	SKResult = pdm.SKResult
	// DiskStats is the I/O accounting shared by every engine.
	DiskStats = disk.Stats
)

// NewPDMMachine returns a PDM machine with m words of memory over d
// disks with block size b.
func NewPDMMachine(m, d, b int) (*PDMMachine, error) { return pdm.NewMachine(m, d, b) }

// RunSK executes a Program with the Sibeyn–Kaufmann-style
// one-VP-at-a-time mailbox simulation: correct, but with no blocking
// or parallel-disk adaptation. Comparing its I/O count with Run's on
// the same program measures exactly the gap the paper's technique
// closes.
func RunSK(p Program, d, b int, opts SKOptions) (*SKResult, error) {
	return pdm.SKSim(p, d, b, opts)
}
