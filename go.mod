module embsp

go 1.22
