package embsp_test

// The pipeline determinism battery: every Table 1 workload runs with
// the group pipeline off (fully synchronous file store) and on
// (per-drive I/O workers, prefetch, write-behind, flush-behind), and
// on the mmap-backed store (zero-copy, fully synchronous), on
// sequential and parallel machines, under clean and faulty schedules —
// and every word of the Result and every model-visible EM statistic
// must be bitwise identical. The physical schedule and the store
// backend are allowed to change wall-clock time and the Overlap
// counters, nothing else.

import (
	"fmt"
	"reflect"
	"testing"

	"embsp"
	"embsp/internal/prng"
)

type batterySpec struct {
	name  string
	build func(n, v int, r *prng.Rand) (embsp.Program, error)
}

// batteryTable lists all 13 Table 1 workloads at battery scale —
// deliberately the same constructions as embsp-run's chaos soak.
func batteryTable() []batterySpec {
	return []batterySpec{
		{"sort", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = r.Uint64()
			}
			return embsp.NewSort(keys, 1, v)
		}},
		{"permute", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(i)
			}
			return embsp.NewPermute(vals, r.Perm(n), v)
		}},
		{"transpose", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			rows := 4
			keys := make([]uint64, rows*(n/rows))
			for i := range keys {
				keys[i] = r.Uint64()
			}
			return embsp.NewTranspose(keys, rows, n/rows, v)
		}},
		{"maxima", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			pts := make([]embsp.Point3, n)
			for i := range pts {
				pts[i] = embsp.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
			}
			return embsp.NewMaxima3D(pts, v)
		}},
		{"dominance", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			pts := make([]embsp.Point, n)
			vals := make([]uint64, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
				vals[i] = uint64(i)
			}
			return embsp.NewDominance2D(pts, vals, v)
		}},
		{"rectunion", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			rects := make([]embsp.Rect, n)
			for i := range rects {
				x, y := r.Float64(), r.Float64()
				rects[i] = embsp.Rect{X1: x, X2: x + r.Float64(), Y1: y, Y2: y + r.Float64()}
			}
			return embsp.NewRectUnion(rects, v)
		}},
		{"hull", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			pts := make([]embsp.Point, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			return embsp.NewHull2D(pts, v)
		}},
		{"envelope", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			segs := make([]embsp.Segment, n)
			for i := range segs {
				x := 3 * float64(i)
				segs[i] = embsp.Segment{X1: x, Y1: r.Float64(), X2: x + 2, Y2: r.Float64()}
			}
			return embsp.NewEnvelope(segs, v)
		}},
		{"nextelement", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			hsegs := make([]embsp.HSegment, n)
			pts := make([]embsp.Point, n)
			for i := range hsegs {
				x := r.Float64()
				hsegs[i] = embsp.HSegment{X1: x, X2: x + 0.2, Y: r.Float64()}
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			return embsp.NewNextElement(hsegs, pts, v)
		}},
		{"nn", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			pts := make([]embsp.Point, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			return embsp.NewNN2D(pts, v)
		}},
		{"listrank", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			perm := r.Perm(n)
			succ := make([]int, n)
			for i := range succ {
				succ[i] = -1
			}
			for i := 0; i+1 < n; i++ {
				succ[perm[i]] = perm[i+1]
			}
			return embsp.NewListRank(succ, nil, v)
		}},
		{"euler", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			edges := make([][2]int, n-1)
			for i := 1; i < n; i++ {
				edges[i-1] = [2]int{r.Intn(i), i}
			}
			return embsp.NewEulerTour(n, edges, v)
		}},
		{"cc", func(n, v int, r *prng.Rand) (embsp.Program, error) {
			edges := make([][2]int, 0, n)
			for len(edges) < n {
				a, b := r.Intn(n), r.Intn(n)
				if a != b {
					edges = append(edges, [2]int{a, b})
				}
			}
			return embsp.NewCC(n, edges, v)
		}},
	}
}

// mustAgree asserts the two results are bitwise identical in every
// model-visible field; only the wall-clock Overlap counters, the
// opened-backend name, and the tier cache counters may differ.
func mustAgree(t *testing.T, label string, serial, piped *embsp.Result) {
	t.Helper()
	for i := range serial.VPs {
		if !reflect.DeepEqual(vpImage(serial.VPs[i]), vpImage(piped.VPs[i])) {
			t.Fatalf("%s: VP %d context differs between serial and pipelined schedules", label, i)
		}
	}
	if !reflect.DeepEqual(serial.Costs, piped.Costs) {
		t.Fatalf("%s: model costs differ:\nserial:    %+v\npipelined: %+v", label, serial.Costs, piped.Costs)
	}
	es, ep := serial.EM, piped.EM
	es.Overlap, ep.Overlap = embsp.OverlapStats{}, embsp.OverlapStats{}
	es.StoreBackend, ep.StoreBackend = "", ""
	es.Tiers, ep.Tiers = nil, nil
	if !reflect.DeepEqual(es, ep) {
		t.Fatalf("%s: EM statistics differ:\nserial:    %+v\npipelined: %+v", label, es, ep)
	}
}

// TestPipelineDeterminismBattery is the tentpole's acceptance battery:
// for all 13 Table 1 workloads, on P = 1 and P = 3 machines, in-memory
// vs. file-backed, with and without fault injection and parity
// redundancy, the pipelined physical schedule produces the identical
// Result to the fully synchronous one.
func TestPipelineDeterminismBattery(t *testing.T) {
	for _, spec := range batteryTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			for _, procs := range []int{1, 3} {
				r := prng.New(0xBA77E7)
				n, v := 48, 6
				prog, err := spec.build(n, v, r)
				if err != nil {
					t.Fatal(err)
				}
				cfg := embsp.MachineConfig{
					P: procs, M: 4 * prog.MaxContextWords(), D: 4, B: 16, G: 100,
					Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
				}
				// In-memory run: the model baseline the stores must match.
				array, err := embsp.Run(prog, cfg, embsp.Options{Seed: 0xBA77E7})
				if err != nil {
					t.Fatalf("P=%d array: %v", procs, err)
				}
				serial, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: -1, IOWorkers: -1,
				})
				if err != nil {
					t.Fatalf("P=%d serial file: %v", procs, err)
				}
				piped, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: 1,
				})
				if err != nil {
					t.Fatalf("P=%d pipelined file: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d clean", procs), serial, piped)
				// The mmap-backed store shares the file store's on-disk
				// format and its exact accounting (wipe-on-alloc track
				// clearing included), so the mapped runs must match the
				// serial file run in the FULL EM statistics, not just
				// outputs and costs. Pipeline "on" degrades to the serial
				// schedule on the mapped store (it has no physical queue to
				// stage into) but must still be bitwise identical.
				mSerial, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: -1, MappedStore: true,
				})
				if err != nil {
					t.Fatalf("P=%d mapped serial: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d mapped", procs), serial, mSerial)
				mPiped, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: 1, MappedStore: true,
				})
				if err != nil {
					t.Fatalf("P=%d mapped pipelined: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d mapped+pipeline", procs), serial, mPiped)
				// Tiered store chains: a bounded staging tier above the
				// file store and above the mapped store. Tier contents
				// are cache, never durable state, so every tiered run
				// must be bitwise identical to the flat serial run in
				// the FULL EM statistics — with the pipeline off (the
				// tier is a pure accounting shim) and on (prefetch
				// staging routes through the tier).
				tiers := []embsp.TierSpec{{}}
				tSerial, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: -1, IOWorkers: -1, Tiers: tiers,
				})
				if err != nil {
					t.Fatalf("P=%d tiered serial: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d tiered", procs), serial, tSerial)
				tPiped, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: 1, Tiers: tiers,
				})
				if err != nil {
					t.Fatalf("P=%d tiered pipelined: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d tiered+pipeline", procs), serial, tPiped)
				tMapped, err := embsp.Run(prog, cfg, embsp.Options{
					Seed: 0xBA77E7, StateDir: t.TempDir(), Pipeline: 1, MappedStore: true, Tiers: tiers,
				})
				if err != nil {
					t.Fatalf("P=%d tiered mapped: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d tiered mapped", procs), serial, tMapped)
				// Across backends the contract covers outputs and model
				// costs; the seq/rand access chains legitimately differ
				// between Array and File (Release-time vs Alloc-time track
				// clearing), so the full EM comparison is file-to-file only.
				for i := range array.VPs {
					if !reflect.DeepEqual(vpImage(array.VPs[i]), vpImage(serial.VPs[i])) {
						t.Fatalf("P=%d: VP %d context differs between array and file backends", procs, i)
					}
				}
				if !reflect.DeepEqual(array.Costs, serial.Costs) {
					t.Fatalf("P=%d: model costs differ between array and file backends", procs)
				}

				// Faulty schedule: transient read/write/corrupt faults plus a
				// permanent drive death under parity redundancy. The fault
				// sequence is a pure function of the op order, which the
				// pipeline must not perturb.
				plan := &embsp.FaultPlan{
					Seed:          0xFA17,
					ReadErrorRate: 0.01, WriteErrorRate: 0.01, CorruptRate: 0.01,
					FailDrive: 2, FailDriveOp: 40, FailProc: procs - 1,
				}
				fOpts := embsp.Options{
					Seed: 0xBA77E7, FaultPlan: plan, Redundancy: embsp.RedundancyParity,
					StateDir: t.TempDir(), Pipeline: -1, IOWorkers: -1,
				}
				fSerial, err := embsp.Run(prog, cfg, fOpts)
				if err != nil {
					t.Fatalf("P=%d faulty serial: %v", procs, err)
				}
				fOpts.StateDir, fOpts.Pipeline, fOpts.IOWorkers = t.TempDir(), 1, 0
				fPiped, err := embsp.Run(prog, cfg, fOpts)
				if err != nil {
					t.Fatalf("P=%d faulty pipelined: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d faults+parity", procs), fSerial, fPiped)
				// Same faulty schedule on the mapped store: the fault
				// sequence is a pure function of the op order, which the
				// store backend must not perturb either.
				fOpts.StateDir, fOpts.MappedStore = t.TempDir(), true
				fMapped, err := embsp.Run(prog, cfg, fOpts)
				if err != nil {
					t.Fatalf("P=%d faulty mapped: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d faults+parity mapped", procs), fSerial, fMapped)
				// And tiered under the same faulty schedule: the fault
				// layer sits above the tier, so injected faults must
				// replay identically over a tiered chain.
				fOpts.StateDir, fOpts.MappedStore, fOpts.Tiers = t.TempDir(), false, tiers
				fTiered, err := embsp.Run(prog, cfg, fOpts)
				if err != nil {
					t.Fatalf("P=%d faulty tiered: %v", procs, err)
				}
				mustAgree(t, fmt.Sprintf("P=%d faults+parity tiered", procs), fSerial, fTiered)
			}
		})
	}
}
