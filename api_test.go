package embsp_test

// End-to-end smoke coverage of every public constructor: each Table 1
// workload is instantiated on a tiny input, run on the sequential EM
// machine, and its output spot-checked. (Deeper correctness testing
// lives next to each algorithm; this guards the exported surface.)

import (
	"testing"

	"embsp"
)

func smallMachine(p embsp.Program) embsp.MachineConfig {
	m := 4 * p.MaxContextWords()
	if m < 4*64 {
		m = 4 * 64 // at least D·B with headroom
	}
	return embsp.MachineConfig{
		P: 1, M: m, D: 2, B: 64, G: 100,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
	}
}

func runSmall(t *testing.T, p embsp.Program) *embsp.Result {
	t.Helper()
	res, err := embsp.Run(p, smallMachine(p), embsp.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicConstructorsEndToEnd(t *testing.T) {
	const v = 4

	t.Run("Permute", func(t *testing.T) {
		p, err := embsp.NewPermute([]uint64{10, 20, 30, 40}, []int{3, 2, 1, 0}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 40 || out[3] != 10 {
			t.Fatalf("permute output %v", out)
		}
	})

	t.Run("Transpose", func(t *testing.T) {
		p, err := embsp.NewTranspose([]uint64{1, 2, 3, 4, 5, 6}, 2, 3, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 1 || out[1] != 4 || out[2] != 2 {
			t.Fatalf("transpose output %v", out)
		}
	})

	t.Run("Maxima3D", func(t *testing.T) {
		p, err := embsp.NewMaxima3D([]embsp.Point3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if len(out) != 1 || out[0] != 1 {
			t.Fatalf("maxima output %v", out)
		}
	})

	t.Run("Dominance2D", func(t *testing.T) {
		p, err := embsp.NewDominance2D(
			[]embsp.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}},
			[]uint64{1, 1, 1}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 0 || out[1] != 1 || out[2] != 2 {
			t.Fatalf("dominance output %v", out)
		}
	})

	t.Run("RectUnion", func(t *testing.T) {
		p, err := embsp.NewRectUnion([]embsp.Rect{
			{X1: 0, X2: 1, Y1: 0, Y2: 1},
			{X1: 2, X2: 3, Y1: 0, Y2: 1},
		}, v)
		if err != nil {
			t.Fatal(err)
		}
		if area := p.Output(runSmall(t, p).VPs); area != 2 {
			t.Fatalf("union area %v, want 2", area)
		}
	})

	t.Run("Hull2D", func(t *testing.T) {
		p, err := embsp.NewHull2D([]embsp.Point{
			{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: 0.5},
		}, v)
		if err != nil {
			t.Fatal(err)
		}
		if hull := p.Output(runSmall(t, p).VPs); len(hull) != 3 {
			t.Fatalf("hull %v, want 3 vertices", hull)
		}
	})

	t.Run("Envelope", func(t *testing.T) {
		p, err := embsp.NewEnvelope([]embsp.Segment{{X1: 0, Y1: 1, X2: 2, Y2: 1}}, v)
		if err != nil {
			t.Fatal(err)
		}
		if pieces := p.Output(runSmall(t, p).VPs); len(pieces) != 1 || pieces[0].Seg != 0 {
			t.Fatalf("envelope %v", pieces)
		}
	})

	t.Run("GenEnvelope", func(t *testing.T) {
		p, err := embsp.NewGenEnvelope([]embsp.Segment{
			{X1: 0, Y1: 0, X2: 4, Y2: 4},
			{X1: 0, Y1: 4, X2: 4, Y2: 0},
		}, v)
		if err != nil {
			t.Fatal(err)
		}
		if pieces := p.Output(runSmall(t, p).VPs); len(pieces) != 2 {
			t.Fatalf("generalized envelope %v", pieces)
		}
	})

	t.Run("NextElement", func(t *testing.T) {
		p, err := embsp.NewNextElement(
			[]embsp.HSegment{{X1: 0, X2: 2, Y: 2}, {X1: 0, X2: 2, Y: 0}},
			[]embsp.Point{{X: 1, Y: 1}}, v)
		if err != nil {
			t.Fatal(err)
		}
		res := runSmall(t, p)
		above, below := p.Trapezoids(res.VPs)
		if above[0] != 0 || below[0] != 1 {
			t.Fatalf("trapezoid (%d,%d), want (0,1)", above[0], below[0])
		}
	})

	t.Run("SegTree", func(t *testing.T) {
		p, err := embsp.NewSegTree([]embsp.Segment{{X1: 0, X2: 2}, {X1: 1, X2: 3}}, v)
		if err != nil {
			t.Fatal(err)
		}
		if nodes := p.Output(runSmall(t, p).VPs); len(nodes) == 0 {
			t.Fatal("segment tree empty")
		}
	})

	t.Run("NN2D", func(t *testing.T) {
		p, err := embsp.NewNN2D([]embsp.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 1 || out[1] != 0 || out[2] != 1 {
			t.Fatalf("nn output %v", out)
		}
	})

	t.Run("Separability", func(t *testing.T) {
		p, err := embsp.NewSeparability(
			[]embsp.Point{{X: 0, Y: 0}, {X: 1, Y: 0}},
			[]embsp.Point{{X: 5, Y: 0}, {X: 6, Y: 1}}, v)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Output(runSmall(t, p).VPs) {
			t.Fatal("separable sets reported inseparable")
		}
	})

	t.Run("ListRank", func(t *testing.T) {
		p, err := embsp.NewListRank([]int{1, 2, -1}, nil, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 2 || out[1] != 1 || out[2] != 0 {
			t.Fatalf("ranks %v", out)
		}
	})

	t.Run("EulerTour", func(t *testing.T) {
		p, err := embsp.NewEulerTour(3, [][2]int{{0, 1}, {1, 2}}, v)
		if err != nil {
			t.Fatal(err)
		}
		info := p.Output(runSmall(t, p).VPs)
		if info.Depth[2] != 2 || info.Size[0] != 3 || info.Parent[1] != 0 {
			t.Fatalf("tree info %+v", info)
		}
	})

	t.Run("CC", func(t *testing.T) {
		p, err := embsp.NewCC(4, [][2]int{{0, 1}, {2, 3}}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[1] != 0 || out[3] != 2 {
			t.Fatalf("components %v", out)
		}
	})

	t.Run("LCA", func(t *testing.T) {
		p, err := embsp.NewLCA(4, [][2]int{{0, 1}, {0, 2}, {2, 3}}, [][2]int{{1, 3}, {3, 2}}, v)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Output(runSmall(t, p).VPs)
		if out[0] != 0 || out[1] != 2 {
			t.Fatalf("lcas %v", out)
		}
	})

	t.Run("ExprTree", func(t *testing.T) {
		// (2 + 3) stored as root * with... build root=+(leaf 2, leaf 3).
		p, err := embsp.NewExprTree(
			[]int{-1, 0, 0},
			[]uint8{embsp.OpAdd, embsp.OpLeaf, embsp.OpLeaf},
			[]uint64{0, 2, 3}, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Output(runSmall(t, p).VPs); got != 5 {
			t.Fatalf("expression value %d, want 5", got)
		}
	})

	t.Run("TourAgg", func(t *testing.T) {
		p, err := embsp.NewTourAgg(3, [][2]int{{0, 1}, {1, 2}}, []uint64{5, 1, 9}, v)
		if err != nil {
			t.Fatal(err)
		}
		mins, maxs := p.Output(runSmall(t, p).VPs)
		if mins[0] != 1 || maxs[0] != 9 || mins[2] != 9 {
			t.Fatalf("agg mins=%v maxs=%v", mins, maxs)
		}
	})

	t.Run("Drivers", func(t *testing.T) {
		runner := embsp.EMRunner(embsp.MachineConfig{
			P: 1, M: 2048, D: 2, B: 64, G: 100,
			Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
		}, embsp.Options{Seed: 3})
		// A triangle with a tail: two biconnected components.
		edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
		labels, err := embsp.Biconnectivity(4, edges, v, runner)
		if err != nil {
			t.Fatal(err)
		}
		if labels[0] != labels[1] || labels[0] != labels[2] || labels[3] == labels[0] {
			t.Fatalf("bicc labels %v", labels)
		}
		// A 4-cycle with a chord: 2 ears.
		earEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
		ears, err := embsp.EarDecomposition(4, earEdges, v, runner)
		if err != nil {
			t.Fatal(err)
		}
		nEars := 0
		for _, e := range ears {
			if e+1 > nEars {
				nEars = e + 1
			}
		}
		if nEars != 2 {
			t.Fatalf("ears %v, want 2 ears", ears)
		}
	})

}
