package bench

import (
	"runtime"
	"testing"
	"time"
)

// TestPipelineSpeedupGuard is the CI tripwire for the group pipeline's
// reason to exist: under emulated per-track access latency (the regime
// where a physical schedule matters — see MeasurePipeline), the
// pipelined store must beat the serial schedule by a wide margin at
// D = 8, and must actually have run D transfers concurrently. The
// committed BENCH_pipeline.json baseline records ~7x at medium scale;
// the guard threshold is deliberately loose so host noise cannot trip
// it, while a regression that serializes the workers (a lock held
// across a sleep, a worker count clamp, an accidental drain per op)
// lands far below it. The zero-latency rows are NOT guarded: on a
// page-cache host with one CPU they measure only bookkeeping overhead
// and legitimately sit near or below 1x.
func TestPipelineSpeedupGuard(t *testing.T) {
	// A wall-clock guard is only meaningful where concurrency is
	// physically possible and the host isn't rushing: -short runs
	// (developer laptops, pre-commit hooks) and single-CPU schedulers
	// (GOMAXPROCS=1 serializes the I/O workers, so the speedup it
	// guards cannot materialize) skip with the reason recorded.
	if testing.Short() {
		t.Skip("skipping wall-clock pipeline guard in -short mode (it sleeps ~seconds of emulated latency)")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("skipping wall-clock pipeline guard with GOMAXPROCS=%d: the I/O workers cannot run concurrently, so the guarded speedup cannot materialize", p)
	}
	rep, err := MeasurePipeline(Small)
	if err != nil {
		t.Fatal(err)
	}
	guarded := false
	for _, r := range rep.Rows {
		if r.LatencyNanos == 0 || r.D != 8 {
			continue
		}
		guarded = true
		if r.Speedup < 1.5 {
			t.Errorf("D=%d lat=%v: pipelined speedup %.2fx, want >= 1.5x (serial %v, pipelined %v)",
				r.D, time.Duration(r.LatencyNanos), r.Speedup,
				time.Duration(r.SerialNanos), time.Duration(r.PipelinedNanos))
		}
		if r.ConcurrentPeak != int64(r.D) {
			t.Errorf("D=%d: peak of %d concurrent transfers, want %d — drives are not being driven in parallel",
				r.D, r.ConcurrentPeak, r.D)
		}
		if r.AsyncWrites == 0 {
			t.Errorf("D=%d: no asynchronous writes — write-behind is not engaging", r.D)
		}
	}
	if !guarded {
		t.Fatal("MeasurePipeline(Small) produced no emulated-latency D=8 row to guard")
	}
}
