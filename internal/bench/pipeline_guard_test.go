package bench

import (
	"runtime"
	"testing"
	"time"

	"embsp/internal/alg/cgmsort"
	"embsp/internal/core"
	"embsp/internal/disk"
)

// TestPipelineSpeedupGuard is the CI tripwire for the group pipeline's
// reason to exist: under emulated per-track access latency (the regime
// where a physical schedule matters — see MeasurePipeline), the
// pipelined store must beat the serial schedule by a wide margin at
// D = 8, and must actually have run D transfers concurrently. The
// committed BENCH_pipeline.json baseline records ~7x at medium scale;
// the guard threshold is deliberately loose so host noise cannot trip
// it, while a regression that serializes the workers (a lock held
// across a sleep, a worker count clamp, an accidental drain per op)
// lands far below it. The zero-latency rows are NOT guarded: on a
// page-cache host with one CPU they measure only bookkeeping overhead
// and legitimately sit near or below 1x.
func TestPipelineSpeedupGuard(t *testing.T) {
	// A wall-clock guard is only meaningful where concurrency is
	// physically possible and the host isn't rushing: -short runs
	// (developer laptops, pre-commit hooks) and single-CPU schedulers
	// (GOMAXPROCS=1 serializes the I/O workers, so the speedup it
	// guards cannot materialize) skip with the reason recorded.
	if testing.Short() {
		t.Skip("skipping wall-clock pipeline guard in -short mode (it sleeps ~seconds of emulated latency)")
	}
	if raceEnabled {
		t.Skip("skipping wall-clock pipeline guard under the race detector: instrumentation swamps the timing being guarded (CI runs the guards in a no-race step)")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("skipping wall-clock pipeline guard with GOMAXPROCS=%d: the I/O workers cannot run concurrently, so the guarded speedup cannot materialize", p)
	}
	rep, err := MeasurePipeline(Small)
	if err != nil {
		t.Fatal(err)
	}
	guarded := false
	for _, r := range rep.Rows {
		if r.LatencyNanos == 0 || r.D != 8 {
			continue
		}
		guarded = true
		if r.Speedup < 1.5 {
			t.Errorf("D=%d lat=%v: pipelined speedup %.2fx, want >= 1.5x (serial %v, pipelined %v)",
				r.D, time.Duration(r.LatencyNanos), r.Speedup,
				time.Duration(r.SerialNanos), time.Duration(r.PipelinedNanos))
		}
		if r.ConcurrentPeak != int64(r.D) {
			t.Errorf("D=%d: peak of %d concurrent transfers, want %d — drives are not being driven in parallel",
				r.D, r.ConcurrentPeak, r.D)
		}
		if r.AsyncWrites == 0 {
			t.Errorf("D=%d: no asynchronous writes — write-behind is not engaging", r.D)
		}
	}
	if !guarded {
		t.Fatal("MeasurePipeline(Small) produced no emulated-latency D=8 row to guard")
	}
}

// TestZeroLatencyNoRegression is the fast path's tripwire: at ZERO
// emulated latency — the page-cache regime where the pipeline
// historically cost 18–20% in pure bookkeeping — the pipelined
// schedule must stay within 5% of the fully synchronous store. The
// inline fast paths (reads, writes and wipes whose track has no
// queued physical work bypass the worker round-trip), pooled payload
// buffers and coalesced fsyncs are what hold this line; a regression
// that reroutes hot-path traffic through the queues or reintroduces
// per-track allocation lands well below it. The mmap-backed store is
// measured against the same serial baseline and must hold the same
// line (it has no queues at all, so anything slower than serial is
// overhead in the mapped read/write path itself).
func TestZeroLatencyNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock no-regression guard in -short mode (it times full file-backed sorts)")
	}
	if raceEnabled {
		t.Skip("skipping wall-clock no-regression guard under the race detector: instrumentation swamps the overhead being guarded (CI runs the guards in a no-race step)")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("skipping wall-clock no-regression guard with GOMAXPROCS=%d: the schedules being compared share one CPU, so the ratio measures scheduler luck, not overhead", p)
	}
	const n, b, d, trials = 1 << 16, 256, 8, 3
	prog, err := cgmsort.NewSort(genKeys(0x91BE, n), 1, benchVPs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machineFor(prog, 1, d, b, 8)
	serRes, serNs, _, err := timedFileRun(prog, cfg, core.Options{Seed: 0x91BE, Pipeline: -1, IOWorkers: -1}, trials)
	if err != nil {
		t.Fatal(err)
	}
	pipRes, pipNs, _, err := timedFileRun(prog, cfg, core.Options{Seed: 0x91BE, Pipeline: 1}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameModelResult(serRes, pipRes); err != nil {
		t.Fatalf("pipeline changed the result: %v", err)
	}
	const floor = 0.95
	if ratio := float64(serNs) / float64(pipNs); ratio < floor {
		t.Errorf("zero-latency pipelined schedule at %.2fx of serial, want >= %.2fx (serial %v, pipelined %v)",
			ratio, floor, time.Duration(serNs), time.Duration(pipNs))
	} else {
		t.Logf("zero-latency pipelined schedule at %.2fx of serial (serial %v, pipelined %v)",
			ratio, time.Duration(serNs), time.Duration(pipNs))
	}
	if !disk.MmapSupported() {
		t.Log("mmap unsupported on this platform; mapped-store leg skipped")
		return
	}
	mapRes, mapNs, _, err := timedFileRun(prog, cfg, core.Options{Seed: 0x91BE, MappedStore: true}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameModelResult(serRes, mapRes); err != nil {
		t.Fatalf("mapped store changed the result: %v", err)
	}
	if ratio := float64(serNs) / float64(mapNs); ratio < floor {
		t.Errorf("zero-latency mapped store at %.2fx of serial, want >= %.2fx (serial %v, mapped %v)",
			ratio, floor, time.Duration(serNs), time.Duration(mapNs))
	} else {
		t.Logf("zero-latency mapped store at %.2fx of serial (serial %v, mapped %v)",
			ratio, time.Duration(serNs), time.Duration(mapNs))
	}
}

// TestTierNoRegression holds the tiered store to the same zero-latency
// line as the flat pipeline: with an intermediate tier stacked over the
// file store and no emulated device latency — the regime where the tier
// can never pay for itself, because there is no drive sleep for its
// cache to hide — a tiered run must stay within 5% of the flat serial
// schedule. The tier's fill workers are off here (they only engage when
// something below the tier has latency to hide), so what this guards is
// the pure per-op cost of the tier's accounting layer: a regression
// that adds allocation, lock traffic or a forced staging round-trip to
// the hot read/write path lands below the floor. Both the serial and
// the pipelined schedule are held to it, and both must stay bitwise
// identical to the flat baseline.
func TestTierNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock tier guard in -short mode (it times full file-backed sorts)")
	}
	if raceEnabled {
		t.Skip("skipping wall-clock tier guard under the race detector: instrumentation swamps the overhead being guarded (CI runs the guards in a no-race step)")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("skipping wall-clock tier guard with GOMAXPROCS=%d: the schedules being compared share one CPU, so the ratio measures scheduler luck, not overhead", p)
	}
	const n, b, d, trials = 1 << 16, 256, 8, 3
	prog, err := cgmsort.NewSort(genKeys(0x91BE, n), 1, benchVPs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machineFor(prog, 1, d, b, 8)
	serRes, serNs, _, err := timedFileRun(prog, cfg, core.Options{Seed: 0x91BE, Pipeline: -1, IOWorkers: -1}, trials)
	if err != nil {
		t.Fatal(err)
	}
	const floor = 0.95
	for _, leg := range []struct {
		name string
		opts core.Options
	}{
		{"tiered serial", core.Options{Seed: 0x91BE, Pipeline: -1, IOWorkers: -1, Tiers: []core.TierSpec{{}}}},
		{"tiered pipelined", core.Options{Seed: 0x91BE, Pipeline: 1, Tiers: []core.TierSpec{{}}}},
	} {
		res, ns, _, err := timedFileRun(prog, cfg, leg.opts, trials)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if err := sameModelResult(serRes, res); err != nil {
			t.Fatalf("%s changed the result: %v", leg.name, err)
		}
		if len(res.EM.Tiers) != 1 {
			t.Fatalf("%s reported %d tiers, want 1", leg.name, len(res.EM.Tiers))
		}
		if ratio := float64(serNs) / float64(ns); ratio < floor {
			t.Errorf("zero-latency %s at %.2fx of flat serial, want >= %.2fx (flat %v, tiered %v)",
				leg.name, ratio, floor, time.Duration(serNs), time.Duration(ns))
		} else {
			t.Logf("zero-latency %s at %.2fx of flat serial (flat %v, tiered %v)",
				leg.name, ratio, time.Duration(serNs), time.Duration(ns))
		}
	}
}
