package bench

import (
	"fmt"
	"io"
	"math"

	"embsp/internal/alg/cgmgeom"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/alg/cgmsort"
	"embsp/internal/bsp"
	"embsp/internal/pdm"
	"embsp/internal/prng"
)

// rowSpec describes one Table 1 row experiment: a program builder, an
// output extractor (used to verify every EM run against the in-memory
// reference), and an optional sequential-EM baseline.
type rowSpec struct {
	id         string
	title      string
	reproduces string
	paperNote  string // the paper's complexity entries for this row
	build      func(s Scale, seed uint64) (prog bsp.Program, extract func([]bsp.VP) []uint64, err error)
	baseline   func(w io.Writer, s Scale, b, m int) error
}

func registerRow(spec rowSpec) {
	register(Experiment{
		ID:         spec.id,
		Title:      spec.title,
		Reproduces: spec.reproduces,
		Run: func(w io.Writer, s Scale) error {
			return runRow(w, s, spec)
		},
	})
}

func runRow(w io.Writer, s Scale, spec rowSpec) error {
	seed := uint64(0x7AB1E1)
	b := pick(s, 64, 128, 256)
	prog, extract, err := spec.build(s, seed)
	if err != nil {
		return err
	}
	ref, err := bsp.Run(prog, bsp.RunOptions{Seed: seed, PktSize: b})
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	want := extract(ref.VPs)

	rows, pd, err := standardMachines(prog, b, seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		got := extract(r.res.VPs)
		if len(got) != len(want) {
			return fmt.Errorf("%s: EM output size %d != reference %d", r.label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: EM output differs from reference at word %d", r.label, i)
			}
		}
	}

	fmt.Fprintf(w, "%s — %s\n", spec.id, spec.title)
	fmt.Fprintf(w, "paper: %s\n", spec.paperNote)
	fmt.Fprintf(w, "v=%d VPs, λ(measured)=%d, all EM outputs verified against the reference run\n",
		prog.NumVPs(), ref.Costs.Supersteps)
	tw := newTable(w)
	lambda := ref.Costs.Supersteps
	vmu := prog.NumVPs() * prog.MaxContextWords()
	theory := func(p, d int) float64 {
		return 2 * emCGMOps(lambda, vmu, p, d, b)
	}
	printEMRows(tw, rows, 1000, theory, pd)
	tw.Flush()
	if spec.baseline != nil {
		cfg := machineFor(prog, 1, 4, b, 8)
		m := cfg.M
		if m < 4*4*b {
			m = 4 * 4 * b
		}
		if err := spec.baseline(w, s, b, m); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	return nil
}

func intsAsWords(s []int) []uint64 {
	out := make([]uint64, len(s))
	for i, x := range s {
		out[i] = uint64(int64(x))
	}
	return out
}

const benchVPs = 32

func init() {
	registerRow(rowSpec{
		id:         "table1/sorting",
		title:      "Sorting (EM-CGM sample sort vs. PDM merge sort)",
		reproduces: "Table 1, Group A, row 'Sorting'",
		paperNote:  "prev: Θ(G·(n/DB)·log_{M/B}(n/B));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<12, 1<<15, 1<<18)
			p, err := cgmsort.NewSort(genKeys(seed, n), 1, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return p.Output(vps) }, err
		},
		baseline: func(w io.Writer, s Scale, b, m int) error {
			n := pick(s, 1<<12, 1<<15, 1<<18)
			mach, err := pdm.NewMachine(m, 4, b)
			if err != nil {
				return err
			}
			f, err := mach.WriteFile(genKeys(0x7AB1E1, n))
			if err != nil {
				return err
			}
			mach.Arr.ResetStats()
			if _, err := mach.MergeSort(f, 1); err != nil {
				return err
			}
			st := mach.Arr.Stats()
			fmt.Fprintf(w, "baseline PDM merge sort (D=4): ops=%d blocks=%d util=%.2f theory=%.0f ops\n",
				st.Ops, st.Blocks(), st.Utilization(), sortIOOps(n, m, 4, b))
			return nil
		},
	})

	registerRow(rowSpec{
		id:         "table1/permutation",
		title:      "Permutation (EM-CGM routing vs. PDM direct/sort methods)",
		reproduces: "Table 1, Group A, row 'Permutation'",
		paperNote:  "prev: Θ(G·min(n/D, (n/DB)·log_{M/B}(n/B)));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<12, 1<<15, 1<<18)
			p, err := cgmsort.NewPermute(genKeys(seed, n), genPerm(seed+1, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return p.Output(vps) }, err
		},
		baseline: func(w io.Writer, s Scale, b, m int) error {
			n := pick(s, 1<<10, 1<<12, 1<<14) // direct method is Θ(n) ops
			targets := genPerm(0x7AB1E2, n)
			for _, method := range []string{"direct", "bySort"} {
				mach, err := pdm.NewMachine(m, 4, b)
				if err != nil {
					return err
				}
				f, err := mach.WriteFile(genKeys(0x7AB1E1, n))
				if err != nil {
					return err
				}
				mach.Arr.ResetStats()
				if method == "direct" {
					_, err = mach.PermuteDirect(f, func(i int) int { return targets[i] })
				} else {
					_, err = mach.PermuteBySort(f, func(i int) int { return targets[i] })
				}
				if err != nil {
					return err
				}
				st := mach.Arr.Stats()
				fmt.Fprintf(w, "baseline PDM permute %-7s (n=%d, D=4): ops=%d blocks=%d util=%.2f\n",
					method, n, st.Ops, st.Blocks(), st.Utilization())
			}
			return nil
		},
	})

	registerRow(rowSpec{
		id:         "table1/transpose",
		title:      "Matrix transpose",
		reproduces: "Table 1, Group A, row 'Matrix transpose'",
		paperNote:  "prev: Θ(G·(n/BD)·log min(M,r,c,n/B)/log(M/B));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			side := pick(s, 64, 181, 512)
			p, err := cgmsort.NewTranspose(genKeys(seed, side*side), side, side, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return p.Output(vps) }, err
		},
		baseline: func(w io.Writer, s Scale, b, m int) error {
			side := pick(s, 64, 181, 512)
			mach, err := pdm.NewMachine(m, 4, b)
			if err != nil {
				return err
			}
			f, err := mach.WriteFile(genKeys(0x7AB1E1, side*side))
			if err != nil {
				return err
			}
			mach.Arr.ResetStats()
			if _, err := mach.Transpose(f, side, side); err != nil {
				return err
			}
			st := mach.Arr.Stats()
			fmt.Fprintf(w, "baseline PDM transpose (sort-based, D=4): ops=%d blocks=%d util=%.2f\n",
				st.Ops, st.Blocks(), st.Utilization())
			return nil
		},
	})

	registerRow(rowSpec{
		id:         "table1/hull2d",
		title:      "Convex hull (stand-in for the 3D hull / Voronoi / Delaunay family)",
		reproduces: "Table 1, Group B, row '3D convex hull, 2D Voronoi diagram, Delaunay triangulation'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·n/(pBD)), λ=Õ(1) (ours: ⌈log₂ v⌉ merge rounds, DESIGN.md §5)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<11, 1<<14, 1<<17)
			p, err := cgmgeom.NewHull2D(genPoints(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return intsAsWords(p.Output(vps)) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/maxima3d",
		title:      "3D maxima",
		reproduces: "Table 1, Group B, row '3D-maxima'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<11, 1<<14, 1<<17)
			p, err := cgmgeom.NewMaxima3D(genPoints3(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return intsAsWords(p.Output(vps)) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/dominance",
		title:      "2D weighted dominance counting",
		reproduces: "Table 1, Group B, row '2D-weighted dominance counting'",
		paperNote:  "new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<16)
			pts := genPoints(seed, n)
			w := make([]uint64, n)
			for i := range w {
				w[i] = uint64(i%7 + 1)
			}
			p, err := cgmgeom.NewDominance2D(pts, w, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return p.Output(vps) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/rectunion",
		title:      "Area of union of rectangles",
		reproduces: "Table 1, Group B, row 'Area of union of rectangles'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<9, 1<<11, 1<<13)
			p, err := cgmgeom.NewRectUnion(genRects(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				return []uint64{math.Float64bits(p.Output(vps))}
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/envelope",
		title:      "Lower envelope of non-intersecting segments",
		reproduces: "Table 1, Group B, row 'Lower envelope of non-intersecting line segments'",
		paperNote:  "new: T_I/O = Õ(G·n/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<9, 1<<11, 1<<13)
			p, err := cgmgeom.NewEnvelope(genSegments(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, pc := range p.Output(vps) {
					out = append(out, math.Float64bits(pc.X1), math.Float64bits(pc.X2), uint64(pc.Seg))
				}
				return out
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/genenvelope",
		title:      "Generalized lower envelope of (possibly intersecting) segments",
		reproduces: "Table 1, Group B, row 'Generalized lower envelope of line segments'",
		paperNote:  "new: T_I/O = Õ(G·n·α(n)/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<9, 1<<11, 1<<13)
			r := prng.New(seed + 3)
			segs := make([]cgmgeom.Segment, n)
			for i := range segs {
				x := r.Float64()
				segs[i] = cgmgeom.Segment{X1: x, Y1: r.Float64(), X2: x + 0.05 + r.Float64()*0.6, Y2: r.Float64()}
			}
			p, err := cgmgeom.NewGenEnvelope(segs, benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, pc := range p.Output(vps) {
					out = append(out, math.Float64bits(pc.X1), math.Float64bits(pc.X2), uint64(pc.Seg))
				}
				return out
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/segtree",
		title:      "Batched segment tree construction",
		reproduces: "Table 1, Group B, row 'Segment tree construction'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·(n log n)/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<9, 1<<12, 1<<15)
			r := prng.New(seed + 7)
			intervals := make([]cgmgeom.Segment, n)
			for i := range intervals {
				x := r.Float64()
				intervals[i] = cgmgeom.Segment{X1: x, X2: x + 0.01 + r.Float64()*0.5}
			}
			p, err := cgmgeom.NewSegTree(intervals, benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, nd := range p.Output(vps) {
					out = append(out, uint64(nd.ID))
					for _, iv := range nd.Intervals {
						out = append(out, uint64(iv))
					}
				}
				return out
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/nextelem",
		title:      "Batched next-element search (vertical ray shooting)",
		reproduces: "Table 1, Group B, rows 'Next element search' / 'Batched planar point location'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·(n log n)/(pBD)), λ=O(1)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<9, 1<<11, 1<<13)
			p, err := cgmgeom.NewNextElement(genHSegments(seed, n), genPoints(seed+1, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return intsAsWords(p.Output(vps)) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/separability",
		title:      "Linear separability of two point sets (hulls + separating axis)",
		reproduces: "Table 1, Group B, row 'Uni- and multi-directional separability'",
		paperNote:  "new: T_I/O = Õ(G·n/(pBD)), λ=O(1) (ours: ⌈log₂ v⌉ hull merge rounds)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<16)
			r := prng.New(seed + 5)
			a := genPoints(seed, n/2)
			b := make([]cgmgeom.Point, n/2)
			dx := 0.8 + r.Float64() // straddles the separability boundary
			for i := range b {
				b[i] = cgmgeom.Point{X: dx + r.Float64(), Y: r.Float64()}
			}
			p, err := cgmgeom.NewSeparability(a, b, benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				if p.Output(vps) {
					return []uint64{1}
				}
				return []uint64{0}
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/nn2d",
		title:      "2D all nearest neighbors",
		reproduces: "Table 1, Group B, row '2D-nearest neighbors'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·n/(pBD)), λ=O(1) expected",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<16)
			p, err := cgmgeom.NewNN2D(genPoints(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return intsAsWords(p.Output(vps)) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/listrank",
		title:      "List ranking (EM-CGM contraction vs. Chiang et al. PRAM-by-sorting)",
		reproduces: "Table 1, Group C, row 'List ranking' (+ comparison with [14])",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B)) per PRAM pass [14];  new: T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<11, 1<<14, 1<<17)
			p, err := cgmgraph.NewListRank(genList(seed, n), nil, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return p.Output(vps) }, err
		},
		baseline: func(w io.Writer, s Scale, b, m int) error {
			n := pick(s, 1<<11, 1<<13, 1<<15)
			mach, err := pdm.NewMachine(m, 4, b)
			if err != nil {
				return err
			}
			if _, err := mach.PRAMListRank(genList(0x7AB1E1, n)); err != nil {
				return err
			}
			st := mach.Arr.Stats()
			fmt.Fprintf(w, "baseline PRAM-by-sorting list rank [14] (n=%d, D=4): ops=%d blocks=%d (≈%.1f full sorts)\n",
				n, st.Ops, st.Blocks(), float64(st.Blocks())/(2*float64(n)/float64(b))/float64(log2ceil(n)))
			return nil
		},
	})

	registerRow(rowSpec{
		id:         "table1/eulertour",
		title:      "Euler tour of a tree (+ rooting, depth, subtree size)",
		reproduces: "Table 1, Group C, row 'Euler tour (tree)' and tree applications",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<16)
			p, err := cgmgraph.NewEulerTour(n, genTree(seed, n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				info := p.Output(vps)
				var out []uint64
				for i := range info.Parent {
					out = append(out, uint64(int64(info.Parent[i])), uint64(int64(info.Depth[i])), uint64(info.Size[i]))
				}
				return out
			}, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/lca",
		title:      "Batched lowest common ancestors (Euler tour + distributed sparse-table RMQ)",
		reproduces: "Table 1, Group C, row 'Lowest common ancestor'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p) (ours adds ⌊log₂ 2n⌋ RMQ levels)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<15)
			r := prng.New(seed + 9)
			queries := make([][2]int, n)
			for i := range queries {
				queries[i] = [2]int{r.Intn(n), r.Intn(n)}
			}
			p, err := cgmgraph.NewLCA(n, genTree(seed, n), queries, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return intsAsWords(p.Output(vps)) }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/exprtree",
		title:      "Expression tree evaluation by parallel tree contraction (rake)",
		reproduces: "Table 1, Group C, rows 'Tree contraction / Expression tree evaluation'",
		paperNote:  "prev: O(G·(n/B)·log_{M/B}(n/B));  new: T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			leaves := pick(s, 1<<9, 1<<12, 1<<14)
			parent, kind, value := genExpr(seed, leaves)
			p, err := cgmgraph.NewExprTree(parent, kind, value, benchVPs)
			return p, func(vps []bsp.VP) []uint64 { return []uint64{p.Output(vps)} }, err
		},
	})

	registerRow(rowSpec{
		id:         "table1/cc",
		title:      "Connected components and spanning forest",
		reproduces: "Table 1, Group C, rows 'Connected components / Spanning forest'",
		paperNote:  "prev: O(G·(E/DB)·log_{M/B}(V/B)·max{1, log log(VBD/E)});  new: T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p)",
		build: func(s Scale, seed uint64) (bsp.Program, func([]bsp.VP) []uint64, error) {
			n := pick(s, 1<<10, 1<<13, 1<<15)
			p, err := cgmgraph.NewCC(n, genGraph(seed, n, 2*n), benchVPs)
			return p, func(vps []bsp.VP) []uint64 {
				out := intsAsWords(p.Output(vps))
				return append(out, intsAsWords(p.Forest(vps))...)
			}, err
		},
	})
}
