package bench

import (
	"fmt"
	"io"

	"embsp/internal/alg/cgmgraph"
	"embsp/internal/alg/cgmsort"
	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/pdm"
	"embsp/internal/prng"
)

func init() {
	register(Experiment{
		ID:         "fig2/layout",
		Title:      "Block reorganization: standard linked → standard consecutive format",
		Reproduces: "Figure 2 and Algorithm 2 (SimulateRouting)",
		Run: func(w io.Writer, s Scale) error {
			v := pick(s, 8, 12, 16)
			per := pick(s, 2, 3, 4)
			return core.DemoRouting(w, nil, v, 4, 8, per, (v+3)/4, 0xF162)
		},
	})

	register(Experiment{
		ID:         "lemma2/balance",
		Title:      "Bucket blocks are evenly spread over the drives (whp)",
		Reproduces: "Lemma 2 / Lemma 3 (the randomized writing phase balance)",
		Run:        runLemma2,
	})

	register(Experiment{
		ID:         "lemma5/concentration",
		Title:      "Total simulation cost concentrates across independent supersteps",
		Reproduces: "Lemma 5 (independent per-superstep experiments compose)",
		Run:        runLemma5,
	})

	register(Experiment{
		ID:         "lemma10/balls",
		Title:      "Balls into bins maximum load tail",
		Reproduces: "Lemma 10 (Appendix A.1)",
		Run:        runLemma10,
	})

	register(Experiment{
		ID:         "scale/disks",
		Title:      "I/O time scales as 1/D (parallel disks fully used)",
		Reproduces: "Section 1 ('a factor of D too high') and Theorem 1's D-dependence",
		Run:        runScaleDisks,
	})

	register(Experiment{
		ID:         "scale/procs",
		Title:      "I/O time scales as 1/p (multiprocessor simulation)",
		Reproduces: "Theorem 1's p-dependence (Algorithm 3)",
		Run:        runScaleProcs,
	})

	register(Experiment{
		ID:         "scale/blocking",
		Title:      "Fully blocked simulation vs. unblocked Sibeyn–Kaufmann-style simulation",
		Reproduces: "Section 1 (blocking factor) and the Section 2.1 comparison with [26]",
		Run:        runScaleBlocking,
	})

	register(Experiment{
		ID:         "scale/slack",
		Title:      "Slackness: v ≥ k·D·log(M/B) keeps the randomized placement balanced",
		Reproduces: "Theorem 1 / Lemma 3's slackness condition on v",
		Run:        runScaleSlack,
	})

	register(Experiment{
		ID:         "scale/memory",
		Title:      "Group size k = ⌊M/µ⌋: memory sweep",
		Reproduces: "Section 4 ('take full advantage of the physical memory available')",
		Run:        runScaleMemory,
	})

	register(Experiment{
		ID:         "table1/bicc",
		Title:      "Biconnected components (Tarjan–Vishkin, composed from CC + Euler tour + subtree extremes)",
		Reproduces: "Table 1, Group C, row 'Biconnected components'",
		Run:        runBiCC,
	})

	register(Experiment{
		ID:         "table1/eardecomp",
		Title:      "Open ear decomposition (composed from CC + Euler tour + LCA + subtree minima)",
		Reproduces: "Table 1, Group C, row 'Ear and open ear decomposition'",
		Run:        runEarDecomp,
	})

	register(Experiment{
		ID:         "ablate/routing",
		Title:      "Is SimulateRouting needed? Scattered-fetch ablation",
		Reproduces: "design choice called out in DESIGN.md (Algorithm 2 vs. direct fetch)",
		Run:        runAblateRouting,
	})

	register(Experiment{
		ID:         "copt/ratio",
		Title:      "c-optimality preservation: I/O and communication vanish against computation",
		Reproduces: "Observation 2 (Section 5.4)",
		Run:        runCOpt,
	})

	register(Experiment{
		ID:         "obs1/cgm",
		Title:      "CGM h-relations and the deterministic placement variant",
		Reproduces: "Observation 1 and the Section 4 note on deterministic CGM simulation",
		Run:        runObs1,
	})
}

func runLemma2(w io.Writer, s Scale) error {
	trials := pick(s, 200, 1000, 5000)
	fmt.Fprintln(w, "Randomized writing phase: R blocks per bucket written D at a time under")
	fmt.Fprintln(w, "fresh random drive permutations; X = max per-drive share of a bucket.")
	fmt.Fprintln(w, "Lemma 2: Pr[X >= l·R/D] <= exp(-Ω(l·log l·R/D)).")
	tw := newTable(w)
	fmt.Fprintf(tw, "D\tR\ttrials\tmean l\tmax l\tP[l>=1.5]\tP[l>=2]\tP[l>=3]\n")
	r := prng.New(42)
	for _, cfg := range []struct{ d, rPerBucket int }{{2, 16}, {4, 16}, {4, 64}, {4, 256}, {8, 64}, {8, 256}} {
		d, R := cfg.d, cfg.rPerBucket
		var sum float64
		var maxL float64
		var ge15, ge2, ge3 int
		for t := 0; t < trials; t++ {
			// R·D blocks total (R per bucket), one block per bucket
			// per round, random permutation per round.
			counts := make([][]int, d) // [bucket][drive]
			for b := range counts {
				counts[b] = make([]int, d)
			}
			perm := make([]int, d)
			for round := 0; round < R; round++ {
				r.PermInto(perm)
				for b := 0; b < d; b++ {
					counts[b][perm[b]]++
				}
			}
			worst := 0
			for b := 0; b < d; b++ {
				for k := 0; k < d; k++ {
					if counts[b][k] > worst {
						worst = counts[b][k]
					}
				}
			}
			// worst vs the even share R/D: l = worst·D/R.
			lv := float64(worst) * float64(d) / float64(R)
			sum += lv
			if lv > maxL {
				maxL = lv
			}
			if lv >= 1.5 {
				ge15++
			}
			if lv >= 2 {
				ge2++
			}
			if lv >= 3 {
				ge3++
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\t%.2f\t%.4f\t%.4f\t%.4f\n",
			d, R, trials, sum/float64(trials), maxL,
			float64(ge15)/float64(trials), float64(ge2)/float64(trials), float64(ge3)/float64(trials))
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: mean l → 1 and the tail probabilities collapse as R/D grows.")
	return nil
}

func runLemma5(w io.Writer, s Scale) error {
	trials := pick(s, 15, 40, 80)
	// A skew-sensitive regime: few blocks per bucket per drive, so the
	// per-superstep randomized placement actually varies.
	n := pick(s, 1<<8, 1<<9, 1<<10)
	prog, err := cgmsort.NewSort(genKeys(0x1E5, n), 1, 16)
	if err != nil {
		return err
	}
	cfg := machineFor(prog, 1, 8, 32, 4)
	fmt.Fprintf(w, "The randomized writing phase re-randomizes every compound superstep; Lemma 5\n")
	fmt.Fprintf(w, "composes the per-superstep tail bounds, so the TOTAL cost concentrates even\n")
	fmt.Fprintf(w, "in the skew-prone small-R/D regime. %d runs of one sort (n=%d, D=8, B=32)\n", trials, n)
	fmt.Fprintf(w, "under different placement seeds:\n")
	var min, max, sum int64
	var skewMin, skewMax float64 = 1e9, 0
	min = 1 << 62
	for t := 0; t < trials; t++ {
		res, err := core.Run(prog, cfg, core.Options{Seed: uint64(0xBEEF + t)})
		if err != nil {
			return err
		}
		ops := res.EM.Run.Ops
		sum += ops
		if ops < min {
			min = ops
		}
		if ops > max {
			max = ops
		}
		if res.EM.MaxBucketSkew < skewMin {
			skewMin = res.EM.MaxBucketSkew
		}
		if res.EM.MaxBucketSkew > skewMax {
			skewMax = res.EM.MaxBucketSkew
		}
	}
	mean := float64(sum) / float64(trials)
	fmt.Fprintf(w, "I/O ops: min=%d  mean=%.0f  max=%d  spread=(max-min)/mean=%.3f\n",
		min, mean, max, float64(max-min)/mean)
	fmt.Fprintf(w, "per-run worst bucket skew l ranged %.2f..%.2f, yet total cost stayed tight\n", skewMin, skewMax)
	fmt.Fprintln(w, "Expected: a spread of a few percent — no heavy tail over seeds (Lemma 5).")
	fmt.Fprintln(w)
	return nil
}

func runLemma10(w io.Writer, s Scale) error {
	trials := pick(s, 200, 1000, 5000)
	fmt.Fprintln(w, "x balls into y bins; L = max load · y / x.")
	fmt.Fprintln(w, "Lemma 10: Pr[max load > l·x/y] = exp(-Ω(l·ln l·(x/y) - ln y)).")
	tw := newTable(w)
	fmt.Fprintf(tw, "x\ty\ttrials\tmean L\tmax L\tP[L>=1.5]\tP[L>=2]\n")
	r := prng.New(43)
	for _, cfg := range []struct{ x, y int }{{64, 8}, {256, 8}, {1024, 8}, {1024, 32}, {8192, 32}} {
		var sum, maxL float64
		var ge15, ge2 int
		for t := 0; t < trials; t++ {
			bins := make([]int, cfg.y)
			for i := 0; i < cfg.x; i++ {
				bins[r.Intn(cfg.y)]++
			}
			worst := 0
			for _, c := range bins {
				if c > worst {
					worst = c
				}
			}
			L := float64(worst) * float64(cfg.y) / float64(cfg.x)
			sum += L
			if L > maxL {
				maxL = L
			}
			if L >= 1.5 {
				ge15++
			}
			if L >= 2 {
				ge2++
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\t%.2f\t%.4f\t%.4f\n",
			cfg.x, cfg.y, trials, sum/float64(trials), maxL,
			float64(ge15)/float64(trials), float64(ge2)/float64(trials))
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: the tail collapses as x/y grows (the paper's dummy-packet padding regime).")
	return nil
}

// sortProgram builds the standard sort workload for the scaling
// sweeps.
func sortProgram(s Scale, seed uint64) (*cgmsort.SortProgram, error) {
	n := pick(s, 1<<12, 1<<15, 1<<18)
	return cgmsort.NewSort(genKeys(seed, n), 1, benchVPs)
}

func runScaleDisks(w io.Writer, s Scale) error {
	b := pick(s, 64, 128, 256)
	prog, err := sortProgram(s, 0x5CA1E)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Sort workload, p=1, D sweep (B=%d). T_IO = G·ops must scale ≈ 1/D.\n", b)
	tw := newTable(w)
	fmt.Fprintf(tw, "D\tI/O ops\tD·ops\tutil\tT_IO\n")
	var base float64
	for _, d := range []int{1, 2, 4, 8, 16} {
		cfg := machineFor(prog, 1, d, b, 8)
		res, err := core.Run(prog, cfg, core.Options{Seed: 0x5CA1E})
		if err != nil {
			return err
		}
		if d == 1 {
			base = float64(res.EM.Run.Ops)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%.3g\n",
			d, res.EM.Run.Ops, int64(d)*res.EM.Run.Ops, res.EM.Run.Utilization(), res.EM.IOTime)
		_ = base
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: the D·ops column stays roughly constant (full parallel-disk use).")
	fmt.Fprintln(w)
	return nil
}

func runScaleProcs(w io.Writer, s Scale) error {
	b := pick(s, 64, 128, 256)
	prog, err := sortProgram(s, 0x5CA1F)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Sort workload, D=4, p sweep (B=%d). Per-processor I/O must scale ≈ 1/p.\n", b)
	tw := newTable(w)
	fmt.Fprintf(tw, "p\ttotal ops\tT_IO (max/proc/step)\tp·T_IO\tcomm pkts\tT_comm\n")
	for _, p := range []int{1, 2, 4, 8} {
		cfg := machineFor(prog, p, 4, b, 8)
		res, err := core.Run(prog, cfg, core.Options{Seed: 0x5CA1F})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.3g\t%.3g\t%d\t%.3g\n",
			p, res.EM.Run.Ops, res.EM.IOTime, float64(p)*res.EM.IOTime, res.EM.CommPkts, res.EM.CommTime)
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: p·T_IO roughly constant; real communication appears only for p>1.")
	fmt.Fprintln(w)
	return nil
}

func runScaleBlocking(w io.Writer, s Scale) error {
	n := pick(s, 1<<10, 1<<12, 1<<13)
	v := 16
	prog, err := cgmsort.NewSort(genKeys(0xB10C, n), 1, v)
	if err != nil {
		return err
	}
	b := 64
	fmt.Fprintf(w, "Same sort program (n=%d, v=%d, B=%d): the paper's simulation vs. the\n", n, v, b)
	fmt.Fprintln(w, "Sibeyn–Kaufmann-style one-VP-at-a-time unblocked simulation [26], D sweep.")
	tw := newTable(w)
	fmt.Fprintf(tw, "D\tEM-CGM ops (util)\tSK ops (util)\tratio SK/EM\n")
	for _, d := range []int{1, 2, 4, 8} {
		cfg := machineFor(prog, 1, d, b, 4)
		res, err := core.Run(prog, cfg, core.Options{Seed: 0xB10C})
		if err != nil {
			return err
		}
		sk, err := pdm.SKSim(prog, d, b, pdm.SKOptions{Seed: 0xB10C})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d (%.2f)\t%d (%.2f)\t%.1f\n",
			d, res.EM.Run.Ops, res.EM.Run.Utilization(),
			sk.Disk.Ops, sk.Disk.Utilization(),
			float64(sk.Disk.Ops)/float64(res.EM.Run.Ops))
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: the SK simulation cannot exploit D (its ops stay flat), so the")
	fmt.Fprintln(w, "ratio grows ≈ linearly with D — the parallel-disk gap the paper closes.")
	fmt.Fprintln(w)

	// Block-size sweep with coarse messages (message length >> B) so
	// the ⌈len/B⌉ blocking effect dominates fixed per-message costs.
	nb := pick(s, 1<<13, 1<<15, 1<<17)
	vb := 8
	progB, err := cgmsort.NewSort(genKeys(0xB10D, nb), 1, vb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Block-size sweep (n=%d, v=%d, D=4): I/O ops must scale ≈ 1/B.\n", nb, vb)
	tw = newTable(w)
	fmt.Fprintf(tw, "B\tI/O ops\tB·ops\tutil\n")
	for _, bb := range []int{16, 64, 256, 1024} {
		cfgB := machineFor(progB, 1, 4, bb, 4)
		resB, err := core.Run(progB, cfgB, core.Options{Seed: 0xB10D})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\n", bb, resB.EM.Run.Ops, int64(bb)*resB.EM.Run.Ops, resB.EM.Run.Utilization())
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: B·ops roughly constant — the simulation adapts to the blocking factor.")
	fmt.Fprintln(w)
	return nil
}

func runScaleSlack(w io.Writer, s Scale) error {
	n := pick(s, 1<<13, 1<<15, 1<<17)
	b := pick(s, 64, 128, 256)
	const d = 4
	fmt.Fprintf(w, "Sort workload (n=%d, D=%d, B=%d), v sweep at k=⌈v/8⌉: Theorem 1 requires\n", n, d, b)
	fmt.Fprintln(w, "slackness v = Ω(k·D·log(M/B)) for the randomized writing phase to balance")
	fmt.Fprintln(w, "the drives whp (Lemma 3). The observed bucket skew l and utilization track it.")
	tw := newTable(w)
	fmt.Fprintf(tw, "v\tk\tv/(k·D)\tI/O ops\tutil\tmax bucket skew l\n")
	for _, v := range []int{4, 8, 16, 32, 64, 128} {
		prog, err := cgmsort.NewSort(genKeys(0x51AC, n), 1, v)
		if err != nil {
			return err
		}
		cfg := machineFor(prog, 1, d, b, 8)
		res, err := core.Run(prog, cfg, core.Options{Seed: 0x51AC})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%d\t%.2f\t%.2f\n",
			v, res.EM.K, float64(v)/float64(res.EM.K*d),
			res.EM.Run.Ops, res.EM.Run.Utilization(), res.EM.MaxBucketSkew)
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: with little slack (v/kD ≈ 1 or below) the per-bucket drive shares")
	fmt.Fprintln(w, "are skewed; as slack grows the skew approaches 1 and utilization stays high.")
	fmt.Fprintln(w)
	return nil
}

func runScaleMemory(w io.Writer, s Scale) error {
	b := pick(s, 64, 128, 256)
	prog, err := sortProgram(s, 0x3E3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Sort workload, p=1, D=4, B=%d, memory sweep: k = ⌊M/µ⌋ VPs per group.\n", b)
	tw := newTable(w)
	fmt.Fprintf(tw, "groups (v/k)\tk\tM (words)\tI/O ops\tmem high\n")
	for _, groups := range []int{1, 2, 4, 8, 16, 32} {
		cfg := machineFor(prog, 1, 4, b, groups)
		res, err := core.Run(prog, cfg, core.Options{Seed: 0x3E3})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", res.EM.Groups, res.EM.K, cfg.M, res.EM.Run.Ops, res.EM.MemHigh)
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: larger memory (fewer groups) lowers overhead mildly; I/O stays Θ(λ·vµ/DB).")
	fmt.Fprintln(w)
	return nil
}

func runBiCC(w io.Writer, s Scale) error {
	n := pick(s, 1<<8, 1<<11, 1<<13)
	b := pick(s, 64, 128, 256)
	edges := genTree(0xB1CC, n)
	r := prng.New(0xB1CD)
	for i := 0; i < n/2; i++ {
		a, bb := r.Intn(n), r.Intn(n)
		if a != bb {
			edges = append(edges, [2]int{a, bb})
		}
	}
	fmt.Fprintf(w, "Biconnected components of a connected graph (n=%d, m=%d): four composed\n", n, len(edges))
	fmt.Fprintln(w, "EM-CGM phases (spanning tree, Euler tour, two subtree-extreme passes, aux")
	fmt.Fprintln(w, "components), each a full program run on the sequential EM machine.")
	fmt.Fprintln(w, "paper: prev O(G·(E/DB)·log_{M/B}(V/B)·…); new T_I/O = Õ(G·log(p)·n/(pBD))")
	var ops int64
	var supersteps int
	runner := func(p bsp.Program) ([]bsp.VP, error) {
		cfg := machineFor(p, 1, 4, b, 8)
		res, err := core.Run(p, cfg, core.Options{Seed: 0xB1CC})
		if err != nil {
			return nil, err
		}
		ops += res.EM.Run.Ops
		supersteps += res.Costs.Supersteps
		return res.VPs, nil
	}
	labels, err := cgmgraph.Biconnectivity(n, edges, benchVPs, runner)
	if err != nil {
		return err
	}
	comps := map[int]bool{}
	for _, l := range labels {
		comps[l] = true
	}
	// Verify against the same composition on the in-memory reference.
	refLabels, err := cgmgraph.Biconnectivity(n, edges, benchVPs, func(p bsp.Program) ([]bsp.VP, error) {
		res, err := bsp.Run(p, bsp.RunOptions{Seed: 0xB1CC, PktSize: b})
		if err != nil {
			return nil, err
		}
		return res.VPs, nil
	})
	if err != nil {
		return err
	}
	for i := range labels {
		if labels[i] != refLabels[i] {
			return fmt.Errorf("EM and reference biconnectivity labels differ at edge %d", i)
		}
	}
	fmt.Fprintf(w, "%d biconnected components; %d parallel I/O ops over λ=%d total supersteps\n",
		len(comps), ops, supersteps)
	fmt.Fprintln(w, "EM labels verified identical to the in-memory reference composition.")
	fmt.Fprintln(w)
	return nil
}

func runEarDecomp(w io.Writer, s Scale) error {
	n := pick(s, 1<<8, 1<<11, 1<<13)
	b := pick(s, 64, 128, 256)
	r := prng.New(0xEA2)
	edges := make([][2]int, 0, n+n/2)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	for len(edges) < n+n/2 {
		a, bb := r.Intn(n), r.Intn(n)
		if a != bb {
			edges = append(edges, [2]int{a, bb})
		}
	}
	fmt.Fprintf(w, "Open ear decomposition of a biconnected graph (n=%d, m=%d): four composed\n", n, len(edges))
	fmt.Fprintln(w, "EM-CGM phases (spanning tree, Euler tour, batched LCA, subtree minima).")
	fmt.Fprintln(w, "paper: new T_I/O = Õ(G·log(p)·n/(pBD)), λ=O(log p) per phase")
	var ops int64
	var supersteps int
	runner := func(p bsp.Program) ([]bsp.VP, error) {
		cfg := machineFor(p, 1, 4, b, 8)
		res, err := core.Run(p, cfg, core.Options{Seed: 0xEA2})
		if err != nil {
			return nil, err
		}
		ops += res.EM.Run.Ops
		supersteps += res.Costs.Supersteps
		return res.VPs, nil
	}
	ears, err := cgmgraph.EarDecomposition(n, edges, benchVPs, runner)
	if err != nil {
		return err
	}
	nEars := 0
	for _, e := range ears {
		if e+1 > nEars {
			nEars = e + 1
		}
	}
	if nEars != len(edges)-n+1 {
		return fmt.Errorf("got %d ears, want m-n+1 = %d", nEars, len(edges)-n+1)
	}
	refEars, err := cgmgraph.EarDecomposition(n, edges, benchVPs, func(p bsp.Program) ([]bsp.VP, error) {
		res, err := bsp.Run(p, bsp.RunOptions{Seed: 0xEA2, PktSize: b})
		if err != nil {
			return nil, err
		}
		return res.VPs, nil
	})
	if err != nil {
		return err
	}
	for i := range ears {
		if ears[i] != refEars[i] {
			return fmt.Errorf("EM and reference ear labels differ at edge %d", i)
		}
	}
	fmt.Fprintf(w, "%d ears (= m-n+1) over %d parallel I/O ops, λ=%d total supersteps\n", nEars, ops, supersteps)
	fmt.Fprintln(w, "EM labels verified identical to the in-memory reference composition.")
	fmt.Fprintln(w)
	return nil
}

func runAblateRouting(w io.Writer, s Scale) error {
	b := pick(s, 64, 128, 256)
	prog, err := sortProgram(s, 0xAB1A)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablating Algorithm 2: 'routed' reorganizes generated blocks into standard")
	fmt.Fprintln(w, "consecutive format; 'scattered' fetches them straight from where the")
	fmt.Fprintln(w, "randomized writing phase put them (greedy per-drive batching).")
	tw := newTable(w)
	fmt.Fprintf(tw, "D\trouted ops (util, seq%%)\tscattered ops (util, seq%%)\n")
	for _, d := range []int{2, 4, 8} {
		cfg := machineFor(prog, 1, d, b, 8)
		routed, err := core.Run(prog, cfg, core.Options{Seed: 0xAB1A})
		if err != nil {
			return err
		}
		ablated, err := core.Run(prog, cfg, core.Options{Seed: 0xAB1A, NoRouting: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d (%.2f, %d%%)\t%d (%.2f, %d%%)\n",
			d,
			routed.EM.Run.Ops, routed.EM.Run.Utilization(), seqPct(routed),
			ablated.EM.Run.Ops, ablated.EM.Run.Utilization(), seqPct(ablated))
	}
	tw.Flush()
	fmt.Fprintln(w, "Measured: on random balanced traffic the scattered fetch wins the op count")
	fmt.Fprintln(w, "(~1.5x: no double move) — Lemma 2's random placement already balances the")
	fmt.Fprintln(w, "drives, which is exactly why the paper can afford the reorganization: its")
	fmt.Fprintln(w, "O(lvγ/DB) routing cost buys the deterministic standard-consecutive layout")
	fmt.Fprintln(w, "(fixed track ranges per group) that the worst-case theorems and the")
	fmt.Fprintln(w, "multiprocessor fetch-and-forward phase rely on.")
	fmt.Fprintln(w)
	return nil
}

// seqPct returns the percentage of physically sequential track
// accesses of a run.
func seqPct(res *core.Result) int {
	var seq, rnd int64
	for _, pd := range res.EM.Run.PerDrive {
		seq += pd.SeqAccesses
		rnd += pd.RandAccesses
	}
	if seq+rnd == 0 {
		return 0
	}
	return int(100 * seq / (seq + rnd))
}

func runCOpt(w io.Writer, s Scale) error {
	b := 64
	v := benchVPs
	fmt.Fprintln(w, "c-optimality preservation (Observation 2): as n grows, I/O time and")
	fmt.Fprintln(w, "communication time vanish relative to per-processor computation time.")
	tw := newTable(w)
	fmt.Fprintf(tw, "n\tT_comp/p\tT_IO\tT_IO/(T_comp/p)\tT_comm*\tT_comm/(T_comp/p)\n")
	for _, sh := range []int{10, 12, 14, pick(s, 14, 16, 18)} {
		n := 1 << sh
		prog, err := cgmsort.NewSort(genKeys(0xC0, n), 1, v)
		if err != nil {
			return err
		}
		cfg := machineFor(prog, 4, 4, b, 4)
		cfg.G = 10 // modest I/O cost so the trend is visible
		res, err := core.Run(prog, cfg, core.Options{Seed: 0xC0})
		if err != nil {
			return err
		}
		// The simulation executes all v virtual processors on p real
		// ones, so its per-processor computation time is the total
		// charged work divided by p (Theorem 1's (v/p)·β term).
		comp := float64(res.Costs.TotalCharge()) / float64(cfg.P)
		fmt.Fprintf(tw, "%d\t%.3g\t%.3g\t%.3f\t%.3g\t%.3f\n",
			n, comp, res.EM.IOTime, res.EM.IOTime/comp, res.EM.CommTime, res.EM.CommTime/comp)
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: both ratio columns decrease with n (conditions of Observation 2).")
	fmt.Fprintln(w)
	return nil
}

func runObs1(w io.Writer, s Scale) error {
	n := pick(s, 1<<12, 1<<14, 1<<16)
	v := benchVPs
	prog, err := cgmsort.NewSort(genKeys(0x0B51, n), 1, v)
	if err != nil {
		return err
	}
	b := 64
	ref, err := bsp.Run(prog, bsp.RunOptions{Seed: 0x0B51, PktSize: b})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CGM sort, n=%d, v=%d: every communication round is an h-relation with h <= c·n/v.\n", n, v)
	tw := newTable(w)
	fmt.Fprintf(tw, "superstep\th (words)\th/(n/v)\n")
	for i, st := range ref.Costs.PerStep {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\n", i, st.HWords(), float64(st.HWords())/(float64(n)/float64(v)))
	}
	tw.Flush()
	fmt.Fprintf(w, "BSP* communication time (Observation 1 accounting, b=%d): %.4g; λ=%d\n",
		b, ref.Costs.CommTimeBSPStar(bsp.CostParams{GPkt: float64(b), Pkt: b, L: 100}), ref.Costs.Supersteps)

	// Deterministic placement variant (predetermined CGM traffic).
	cfg := machineFor(prog, 1, 4, b, 8)
	rnd, err := core.Run(prog, cfg, core.Options{Seed: 0x0B51})
	if err != nil {
		return err
	}
	det, err := core.Run(prog, cfg, core.Options{Seed: 0x0B51, Deterministic: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "randomized placement:    ops=%d  max bucket skew=%.2f\n", rnd.EM.Run.Ops, rnd.EM.MaxBucketSkew)
	fmt.Fprintf(w, "deterministic placement: ops=%d  max bucket skew=%.2f (CGM note, Section 4)\n", det.EM.Run.Ops, det.EM.MaxBucketSkew)
	fmt.Fprintln(w)
	return nil
}
