package bench

import (
	"fmt"
	"io"

	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/redundancy"
)

func init() {
	register(Experiment{
		ID:         "redundancy/overhead",
		Title:      "Redundancy overhead: none vs. mirror vs. parity, clean and degraded",
		Reproduces: "DESIGN.md §10 capacity/I-O overhead claims (parity ≈ 1/(D-1) vs. mirror 1×)",
		Run:        runRedundancyOverhead,
	})
}

// runRedundancyOverhead measures the same sort workload under each
// redundancy mode on the same machine, then once more under parity
// with a mid-run permanent drive death, and prints the extra blocks
// each protection level costs. Every run's output is verified against
// the in-memory reference by the sort program itself via checksums
// embedded in Result comparison below.
func runRedundancyOverhead(w io.Writer, s Scale) error {
	const seed = 0x0E0D
	const d = 4
	prog, err := sortProgram(s, seed)
	if err != nil {
		return err
	}
	ref, err := bsp.Run(prog, bsp.RunOptions{Seed: seed, PktSize: bFor(s)})
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	want := prog.Output(ref.VPs)

	type variant struct {
		label string
		opts  core.Options
	}
	variants := []variant{
		{"none", core.Options{Seed: seed}},
		{"mirror", core.Options{Seed: seed, Redundancy: redundancy.Mirror}},
		{"parity", core.Options{Seed: seed, Redundancy: redundancy.Parity}},
		{"parity+scrub", core.Options{Seed: seed, Redundancy: redundancy.Parity, Scrub: true}},
		{"parity, drive death", core.Options{
			Seed:       seed,
			Redundancy: redundancy.Parity,
			FaultPlan:  &fault.Plan{Seed: 7, FailDrive: 1, FailDriveOp: 200},
		}},
	}

	cfg := machineFor(prog, 1, d, bFor(s), 8)
	tw := newTable(w)
	fmt.Fprintf(tw, "mode\tI/O ops\tblocks\tparity blocks\toverhead\tdegraded\trebuilt\tscrubbed\n")
	var base int64
	for _, v := range variants {
		res, err := core.Run(prog, cfg, v.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", v.label, err)
		}
		got := prog.Output(res.VPs)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: output differs from reference at word %d", v.label, i)
			}
		}
		em := res.EM
		blocks := em.Run.Blocks()
		if v.label == "none" {
			base = blocks
		}
		over := "-"
		if base > 0 && blocks > base {
			over = fmt.Sprintf("%.0f%%", 100*float64(blocks-base)/float64(base))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%d\t%d\t%d\n",
			v.label, em.Run.Ops, blocks, em.ParityBlocks, over,
			em.DegradedOps, em.RebuiltBlocks, em.ScrubbedBlocks)
	}
	tw.Flush()
	fmt.Fprintf(w, "mirror doubles every write; parity on D=%d drives adds ≈ 1/(D-1) = %.0f%% capacity\n\n",
		d, 100.0/float64(d-1))
	return nil
}

// bFor returns the standard block size for a scale (same as runRow).
func bFor(s Scale) int { return pick(s, 64, 128, 256) }
