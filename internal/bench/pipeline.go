package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"embsp/internal/alg/cgmsort"
	"embsp/internal/core"
	"embsp/internal/disk"
	"embsp/internal/obs"
)

func init() {
	register(Experiment{
		ID:         "perf/pipeline",
		Title:      "I/O–compute overlap: pipelined file-backed runs vs. the serial schedule",
		Reproduces: "the engineering claim of DESIGN.md §11 (physical D-parallelism, identical results)",
		Run:        runPipeline,
	})
}

// PipelineRow is one measured (store, drive count, emulated latency)
// cell of the pipeline experiment. Store is "" (the pread/pwrite file
// store: PipelinedNanos is the group-pipeline schedule) or "mapped"
// (the mmap-backed store, which has no physical queue: PipelinedNanos
// is the mapped run's wall-clock and Speedup compares it to the same
// serial file baseline).
type PipelineRow struct {
	Store          string  `json:"store,omitempty"`
	D              int     `json:"d"`
	LatencyNanos   int64   `json:"latency_ns"`
	IOOps          int64   `json:"io_ops"`
	SerialNanos    int64   `json:"serial_ns"`
	PipelinedNanos int64   `json:"pipelined_ns"`
	Speedup        float64 `json:"speedup"`
	PrefetchHits   int64   `json:"prefetch_hits"`
	PrefetchMisses int64   `json:"prefetch_misses"`
	AsyncWrites    int64   `json:"async_writes"`
	ConcurrentPeak int64   `json:"concurrent_peak"`

	// Tier cache traffic of the run's outermost tier ("tier" rows
	// only): tracks served from staged memory and tracks staged by the
	// fill workers.
	TierHits  int64 `json:"tier_hits,omitempty"`
	TierFills int64 `json:"tier_fills,omitempty"`

	// Per-phase wall-clock of the best trial (engine-category trace
	// spans; nanoseconds per phase name), from the run's tracer.
	SerialPhaseNanos    map[string]int64 `json:"serial_phase_ns,omitempty"`
	PipelinedPhaseNanos map[string]int64 `json:"pipelined_phase_ns,omitempty"`
}

// PipelineReport is the JSON shape of BENCH_pipeline.json: the
// committed wall-clock baseline for the group pipeline.
type PipelineReport struct {
	Scale  string        `json:"scale"`
	N      int           `json:"n"`
	B      int           `json:"b"`
	Trials int           `json:"trials"`
	Rows   []PipelineRow `json:"rows"`
}

// MeasurePipeline runs the file-backed sort workload at D ∈ {1, 4, 8}
// with the group pipeline off (fully synchronous store) and on, takes
// the best wall-clock of a few trials each, and verifies the two
// schedules produce bitwise-identical model results before reporting
// the speedup. Wall-clock is the ONLY thing allowed to differ.
//
// Each drive count is measured in two regimes. latency_ns = 0 is the
// raw host: every physical access lands in the page cache, so there is
// no device latency to hide and the row mostly exposes the pipeline's
// bookkeeping overhead (on a single-CPU host the schedules cannot even
// overlap CPU work, only blocking waits). The second regime emulates a
// 1ms per-track access latency (Options.DriveLatency) — a realistic
// disk access time, and the physical reality the EM model describes,
// where one parallel I/O op costs G regardless of D. This is where the
// pipeline's D-parallel schedule shows up: the serial store pays every
// access sequentially while the pipelined store overlaps D accesses
// with each other and with compute. (Sub-millisecond emulation would
// lie: time.Sleep quantizes to the host timer granularity, ~1ms here.)
// At Small scale the latency regime is measured at D = 8 only, to keep
// the CI smoke run short.
func MeasurePipeline(s Scale) (*PipelineReport, error) {
	n := pick(s, 1<<10, 1<<16, 1<<16)
	b := pick(s, 64, 256, 256)
	vps := pick(s, 16, benchVPs, benchVPs)
	trials := pick(s, 1, 3, 3)
	const emulated = time.Millisecond
	rep := &PipelineReport{N: n, B: b, Trials: trials}
	switch s {
	case Small:
		rep.Scale = "small"
	case Medium:
		rep.Scale = "medium"
	default:
		rep.Scale = "large"
	}
	for _, d := range []int{1, 4, 8} {
		for _, lat := range []time.Duration{0, emulated} {
			if lat > 0 && s == Small && d != 8 {
				continue
			}
			prog, err := cgmsort.NewSort(genKeys(0x91BE, n), 1, vps)
			if err != nil {
				return nil, err
			}
			cfg := machineFor(prog, 1, d, b, 8)
			tr := trials
			if lat > 0 {
				tr = 1 // the emulated sleep dominates; variance is low
			}
			serial := core.Options{Seed: 0x91BE, Pipeline: -1, IOWorkers: -1, DriveLatency: lat}
			piped := core.Options{Seed: 0x91BE, Pipeline: 1, DriveLatency: lat}
			serRes, serNs, serPhases, err := timedFileRun(prog, cfg, serial, tr)
			if err != nil {
				return nil, fmt.Errorf("D=%d lat=%v serial: %w", d, lat, err)
			}
			pipRes, pipNs, pipPhases, err := timedFileRun(prog, cfg, piped, tr)
			if err != nil {
				return nil, fmt.Errorf("D=%d lat=%v pipelined: %w", d, lat, err)
			}
			if err := sameModelResult(serRes, pipRes); err != nil {
				return nil, fmt.Errorf("D=%d lat=%v: pipeline changed the result: %w", d, lat, err)
			}
			ov := pipRes.EM.Overlap
			rep.Rows = append(rep.Rows, PipelineRow{
				D:                   d,
				LatencyNanos:        lat.Nanoseconds(),
				IOOps:               pipRes.EM.Run.Ops,
				SerialNanos:         serNs,
				PipelinedNanos:      pipNs,
				Speedup:             float64(serNs) / float64(pipNs),
				PrefetchHits:        ov.PrefetchHits,
				PrefetchMisses:      ov.PrefetchMisses,
				AsyncWrites:         ov.AsyncWrites,
				ConcurrentPeak:      ov.ConcurrentPeak,
				SerialPhaseNanos:    serPhases,
				PipelinedPhaseNanos: pipPhases,
			})
			// The mmap-backed store, against the same serial file
			// baseline. It is fully synchronous, so under emulated
			// latency it would just replay the serial schedule's sleeps
			// — only the zero-latency regime (where its zero-copy reads
			// matter) is measured. Skipped where mmap is unsupported.
			if lat == 0 && disk.MmapSupported() {
				mapped := core.Options{Seed: 0x91BE, MappedStore: true}
				mapRes, mapNs, mapPhases, err := timedFileRun(prog, cfg, mapped, tr)
				if err != nil {
					return nil, fmt.Errorf("D=%d lat=%v mapped: %w", d, lat, err)
				}
				if err := sameModelResult(serRes, mapRes); err != nil {
					return nil, fmt.Errorf("D=%d lat=%v: mapped store changed the result: %w", d, lat, err)
				}
				rep.Rows = append(rep.Rows, PipelineRow{
					Store:               "mapped",
					D:                   d,
					LatencyNanos:        lat.Nanoseconds(),
					IOOps:               mapRes.EM.Run.Ops,
					SerialNanos:         serNs,
					PipelinedNanos:      mapNs,
					Speedup:             float64(serNs) / float64(mapNs),
					SerialPhaseNanos:    serPhases,
					PipelinedPhaseNanos: mapPhases,
				})
			}
			// The tiered store: a memory-speed intermediate tier stacked
			// over the same pipelined file store, against the same serial
			// flat baseline. At zero latency the tier's fill workers stay
			// off (there is no device sleep for a cache to hide) and the
			// row exposes the tier's pure bookkeeping overhead; under the
			// emulated per-track latency the fills stage upcoming tracks
			// in tier memory so group reads hit at memory speed instead
			// of paying the drive sleep.
			tiered := core.Options{Seed: 0x91BE, Pipeline: 1, DriveLatency: lat, Tiers: []core.TierSpec{{}}}
			tierRes, tierNs, tierPhases, err := timedFileRun(prog, cfg, tiered, tr)
			if err != nil {
				return nil, fmt.Errorf("D=%d lat=%v tiered: %w", d, lat, err)
			}
			if err := sameModelResult(serRes, tierRes); err != nil {
				return nil, fmt.Errorf("D=%d lat=%v: tiered store changed the result: %w", d, lat, err)
			}
			tov := tierRes.EM.Overlap
			trow := PipelineRow{
				Store:               "tier",
				D:                   d,
				LatencyNanos:        lat.Nanoseconds(),
				IOOps:               tierRes.EM.Run.Ops,
				SerialNanos:         serNs,
				PipelinedNanos:      tierNs,
				Speedup:             float64(serNs) / float64(tierNs),
				PrefetchHits:        tov.PrefetchHits,
				PrefetchMisses:      tov.PrefetchMisses,
				AsyncWrites:         tov.AsyncWrites,
				ConcurrentPeak:      tov.ConcurrentPeak,
				SerialPhaseNanos:    serPhases,
				PipelinedPhaseNanos: tierPhases,
			}
			if ts := tierRes.EM.Tiers; len(ts) > 0 {
				trow.TierHits, trow.TierFills = ts[0].Hits, ts[0].Fills
			}
			rep.Rows = append(rep.Rows, trow)
		}
	}
	return rep, nil
}

// timedFileRun executes the program on a file-backed store in a fresh
// temporary state directory per trial and returns the last result, the
// best (minimum) wall-clock across trials, and the best trial's
// per-phase engine breakdown (each trial gets a fresh memory-only
// tracer; the tracer is wall-clock observability and does not perturb
// the model results being compared).
func timedFileRun(prog *cgmsort.SortProgram, cfg core.MachineConfig, opts core.Options, trials int) (*core.Result, int64, map[string]int64, error) {
	var res *core.Result
	var phases map[string]int64
	best := int64(1) << 62
	for t := 0; t < trials; t++ {
		dir, err := os.MkdirTemp("", "embsp-pipeline-*")
		if err != nil {
			return nil, 0, nil, err
		}
		opts.StateDir = dir
		opts.Trace = obs.New()
		start := time.Now()
		r, err := core.Run(prog, cfg, opts)
		ns := time.Since(start).Nanoseconds()
		os.RemoveAll(dir)
		if err != nil {
			return nil, 0, nil, err
		}
		res = r
		if ns < best {
			best = ns
			phases = enginePhases(opts.Trace)
		}
	}
	return res, best, phases, nil
}

// enginePhases extracts the engine-category per-phase totals of a
// completed run's tracer as a name → nanoseconds map.
func enginePhases(tr *obs.Tracer) map[string]int64 {
	m := make(map[string]int64)
	for _, p := range tr.Phases() {
		if p.Cat == obs.CatEngine {
			m[p.Name] = p.Nanos
		}
	}
	return m
}

// sameModelResult enforces the pipeline's core contract: everything in
// the Result except the wall-clock Overlap counters, the opened-backend
// name, and the tier cache counters is bitwise identical between the
// two schedules.
func sameModelResult(a, b *core.Result) error {
	ca, cb := a.ToBSPResult(), b.ToBSPResult()
	if !reflect.DeepEqual(ca.VPs, cb.VPs) {
		return fmt.Errorf("VP states differ")
	}
	if !reflect.DeepEqual(a.Costs, b.Costs) {
		return fmt.Errorf("model costs differ: %+v vs %+v", a.Costs, b.Costs)
	}
	ea, eb := a.EM, b.EM
	ea.Overlap, eb.Overlap = disk.OverlapStats{}, disk.OverlapStats{}
	ea.StoreBackend, eb.StoreBackend = "", ""
	ea.Tiers, eb.Tiers = nil, nil
	if !reflect.DeepEqual(ea, eb) {
		return fmt.Errorf("EM statistics differ: %+v vs %+v", ea, eb)
	}
	return nil
}

// WritePipelineBaseline runs MeasurePipeline and records the report as
// JSON — the generator behind the committed BENCH_pipeline.json.
func WritePipelineBaseline(path string, s Scale) error {
	rep, err := MeasurePipeline(s)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runPipeline(w io.Writer, s Scale) error {
	rep, err := MeasurePipeline(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "File-backed sort (n=%d, B=%d, p=1), best of %d: the group pipeline\n", rep.N, rep.B, rep.Trials)
	fmt.Fprintln(w, "(per-drive I/O workers + prefetch + write-behind) against the fully")
	fmt.Fprintln(w, "synchronous schedule. Model results verified bitwise identical first.")
	fmt.Fprintln(w, "latency = emulated per-track access time (0 = raw page-cache host).")
	tw := newTable(w)
	fmt.Fprintf(tw, "store\tD\tlatency\tI/O ops\tserial\tpipelined\tspeedup\thits\tmisses\tasync writes\tpeak\n")
	for _, r := range rep.Rows {
		store := r.Store
		if store == "" {
			store = "file"
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%v\t%v\t%.2fx\t%d\t%d\t%d\t%d\n",
			store, r.D, time.Duration(r.LatencyNanos), r.IOOps,
			time.Duration(r.SerialNanos).Round(time.Millisecond),
			time.Duration(r.PipelinedNanos).Round(time.Millisecond),
			r.Speedup, r.PrefetchHits, r.PrefetchMisses, r.AsyncWrites, r.ConcurrentPeak)
	}
	tw.Flush()
	fmt.Fprintln(w, "Expected: with emulated access latency the speedup grows with D (more")
	fmt.Fprintln(w, "drives to overlap); at zero latency the schedules are near parity.")
	fmt.Fprintln(w)
	return nil
}
