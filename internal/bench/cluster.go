package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"embsp/internal/cluster"
	"embsp/internal/core"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "perf/cluster",
		Title:      "Multi-process cluster: superstep scaling of the TCP runtime vs. the in-process engine",
		Reproduces: "the engineering claim of DESIGN.md §14 (real processors, identical results)",
		Run:        runCluster,
	})
}

// ClusterRow is one measured processor count of the cluster
// experiment: the distributed runtime's wire traffic, barrier cost and
// wall-clock next to the in-process engine running the same machine.
type ClusterRow struct {
	P          int `json:"p"`
	Supersteps int `json:"supersteps"`

	// Coordinator-side wire traffic (the star topology means every
	// packet of every h-relation crosses these links twice: worker →
	// coordinator → worker).
	TxBytes  int64 `json:"tx_bytes"`
	RxBytes  int64 `json:"rx_bytes"`
	TxFrames int64 `json:"tx_frames"`
	Retries  int64 `json:"retries"`

	// Barrier-wait statistics from the coordinator's 2PC: one
	// observation per phase fan-out, mean nanoseconds spent waiting
	// for the slowest worker.
	BarrierWaits         int64 `json:"barrier_waits"`
	BarrierWaitMeanNanos int64 `json:"barrier_wait_mean_ns"`

	ClusterNanos   int64 `json:"cluster_ns"`
	InProcessNanos int64 `json:"in_process_ns"`

	// Replication overhead: the same run with commit-time snapshot
	// shipping on (DESIGN.md §15). ReplicaBytes is the snapshot volume
	// folded into the coordinator's replica store; the nanos column is
	// the replicated run's wall-clock next to ClusterNanos.
	ReplicaBytes    int64 `json:"replica_bytes"`
	ReplicatedNanos int64 `json:"replicated_ns"`
}

// ClusterReport is the JSON shape of BENCH_cluster.json: the committed
// superstep-scaling baseline for the multi-process runtime.
type ClusterReport struct {
	Scale string       `json:"scale"`
	Alg   string       `json:"alg"`
	N     int          `json:"n"`
	V     int          `json:"v"`
	B     int          `json:"b"`
	Rows  []ClusterRow `json:"rows"`
}

// MeasureCluster runs the Table 1 sort workload at p ∈ {2, 4} real
// processors — worker goroutines serving over loopback TCP, exactly
// the cmd/embsp-cluster protocol — and verifies each run's fingerprint
// against the in-process engine on the identical machine before
// reporting wire traffic, barrier waits and wall-clock. The in-process
// engine is the oracle; wall-clock and comm counters are the only
// things allowed to differ.
func MeasureCluster(s Scale) (*ClusterReport, error) {
	spec := workload.Spec{
		Alg:  "sort",
		N:    pick(s, 192, 2048, 8192),
		V:    8,
		Seed: 0xC105,
	}
	b := pick(s, 8, 32, 64)
	rep := &ClusterReport{Alg: spec.Alg, N: spec.N, V: spec.V, B: b}
	switch s {
	case Small:
		rep.Scale = "small"
	case Medium:
		rep.Scale = "medium"
	default:
		rep.Scale = "large"
	}
	for _, p := range []int{2, 4} {
		row, err := measureClusterRow(spec, p, b)
		if err != nil {
			return nil, fmt.Errorf("p=%d: %w", p, err)
		}
		rep.Rows = append(rep.Rows, *row)
	}
	return rep, nil
}

// measureClusterRow runs one (spec, p) cell twice — in-process oracle,
// then the TCP cluster — and folds both into a row. Programs mutate as
// they run, so each run gets a freshly built instance.
func measureClusterRow(spec workload.Spec, p, b int) (*ClusterRow, error) {
	inst, err := spec.Build()
	if err != nil {
		return nil, err
	}
	cfg := machineFor(inst.Program, p, 2, b, 8)
	opts := core.Options{Seed: spec.Seed}

	oracleDir, err := os.MkdirTemp("", "embsp-cluster-oracle-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(oracleDir)
	oOpts := opts
	oOpts.StateDir = oracleDir
	start := time.Now()
	oracle, err := core.Run(inst.Program, cfg, oOpts)
	oracleNs := time.Since(start).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("in-process oracle: %w", err)
	}

	// One cluster run over loopback TCP; each call builds the program
	// fresh (programs mutate as they run) and verifies the fingerprint
	// against the oracle before its numbers count.
	runOnce := func(replicate bool) (*obs.Registry, int64, error) {
		inst, err := spec.Build()
		if err != nil {
			return nil, 0, err
		}
		root, err := os.MkdirTemp("", "embsp-cluster-bench-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(root)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, 0, err
		}
		addr := ln.Addr().String()
		var wg sync.WaitGroup
		workerErrs := make([]error, p)
		for i := 0; i < p; i++ {
			w := &cluster.Worker{
				Prog:   inst.Program,
				Cfg:    cfg,
				Opts:   opts,
				NodeID: i,
				Dir:    filepath.Join(root, fmt.Sprintf("node-%d", i)),
			}
			wg.Add(1)
			go func(i int, w *cluster.Worker) {
				defer wg.Done()
				workerErrs[i] = w.Run(addr, false, cluster.LinkConfig{
					Self: i, Peer: p, BackoffSeed: uint64(i) + 1,
				})
			}(i, w)
		}

		reg := obs.NewRegistry()
		start := time.Now()
		res, err := cluster.Run(cluster.Config{
			Prog:      inst.Program,
			Cfg:       cfg,
			Opts:      opts,
			Dir:       filepath.Join(root, "coord"),
			Listener:  ln,
			Metrics:   reg,
			Replicate: replicate,
		})
		ns := time.Since(start).Nanoseconds()
		wg.Wait()
		if err != nil {
			return nil, 0, fmt.Errorf("cluster run: %w", err)
		}
		for i, werr := range workerErrs {
			if werr != nil {
				return nil, 0, fmt.Errorf("worker %d: %w", i, werr)
			}
		}
		if of, cf := workload.Fingerprint(oracle), workload.Fingerprint(res); of != cf {
			return nil, 0, fmt.Errorf("cluster result diverged: fingerprint %016x, oracle %016x", cf, of)
		}
		return reg, ns, nil
	}

	// Wall-clock noise between identical runs dwarfs the effects being
	// measured on a busy machine, so each variant reports its best of
	// three — the noise floor — while counters come from the first run
	// (they are deterministic across repeats).
	const reps = 3
	best := func(replicate bool) (*obs.Registry, int64, error) {
		var reg *obs.Registry
		var bestNs int64
		for r := 0; r < reps; r++ {
			g, ns, err := runOnce(replicate)
			if err != nil {
				return nil, 0, err
			}
			if reg == nil || ns < bestNs {
				bestNs = ns
			}
			if reg == nil {
				reg = g
			}
		}
		return reg, bestNs, nil
	}
	reg, clusterNs, err := best(false)
	if err != nil {
		return nil, err
	}
	replReg, replicatedNs, err := best(true)
	if err != nil {
		return nil, fmt.Errorf("replicated: %w", err)
	}

	bw := reg.Histogram("cluster_barrier_wait_nanos").Snapshot()
	row := &ClusterRow{
		P:                    p,
		Supersteps:           oracle.Costs.Supersteps,
		TxBytes:              reg.Counter("cluster_tx_bytes").Value(),
		RxBytes:              reg.Counter("cluster_rx_bytes").Value(),
		TxFrames:             reg.Counter("cluster_tx_frames").Value(),
		Retries:              reg.Counter("cluster_retries").Value(),
		BarrierWaits:         bw.Count,
		BarrierWaitMeanNanos: bw.Mean().Nanoseconds(),
		ClusterNanos:         clusterNs,
		InProcessNanos:       oracleNs,
		ReplicaBytes:         replReg.Counter("cluster_replica_bytes").Value(),
		ReplicatedNanos:      replicatedNs,
	}
	return row, nil
}

// WriteClusterBaseline runs MeasureCluster and records the report as
// JSON — the generator behind the committed BENCH_cluster.json.
func WriteClusterBaseline(path string, s Scale) error {
	rep, err := MeasureCluster(s)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runCluster(w io.Writer, s Scale) error {
	rep, err := MeasureCluster(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Cluster sort (n=%d, v=%d, B=%d): p worker goroutines over loopback\n", rep.N, rep.V, rep.B)
	fmt.Fprintln(w, "TCP with the full wire protocol and 2PC barriers, verified bitwise")
	fmt.Fprintln(w, "identical to the in-process engine before reporting. Traffic is")
	fmt.Fprintln(w, "coordinator-side (star topology: every packet crosses it twice).")
	fmt.Fprintln(w, "The last columns rerun each cell with replication on (§15): snapshot")
	fmt.Fprintln(w, "bytes shipped into the replica store and the replicated wall-clock.")
	tw := newTable(w)
	fmt.Fprintf(tw, "p\tλ\ttx\trx\tframes\tretries\tbarriers\tbarrier wait\tcluster\tin-process\trepl bytes\treplicated\n")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%d\t%v\n",
			r.P, r.Supersteps, r.TxBytes, r.RxBytes, r.TxFrames, r.Retries,
			r.BarrierWaits, time.Duration(r.BarrierWaitMeanNanos).Round(time.Microsecond),
			time.Duration(r.ClusterNanos).Round(time.Millisecond),
			time.Duration(r.InProcessNanos).Round(time.Millisecond),
			r.ReplicaBytes,
			time.Duration(r.ReplicatedNanos).Round(time.Millisecond))
	}
	return tw.Flush()
}
