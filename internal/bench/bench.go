// Package bench is the experiment harness reproducing the paper's
// evaluation: every row of Table 1 (the EM algorithms obtained by
// simulating CGM algorithms, against the previously known sequential
// EM algorithms), Figure 2 (the SimulateRouting block reorganization),
// and the paper's probabilistic and scaling claims (Lemma 2, Lemma
// 10, the "factor of D" and blocking-factor arguments of Section 1,
// Observation 1/2). Each experiment is registered under a stable id
// and prints a self-contained table; cmd/embsp-bench runs them and
// bench_test.go wraps them as Go benchmarks. EXPERIMENTS.md records
// paper-vs-measured for each.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/redundancy"
)

// runRedundancy and runScrub are applied to every standard-machine run
// so the whole Table 1 suite can be re-measured under a redundancy
// mode (cmd/embsp-bench -redundancy / -scrub).
var (
	runRedundancy redundancy.Mode
	runScrub      bool
)

// SetRedundancy selects the drive-redundancy mode (and optional
// background scrub) for subsequent experiment runs.
func SetRedundancy(mode redundancy.Mode, scrub bool) {
	runRedundancy = mode
	runScrub = scrub
}

// Scale selects workload sizes: Small for tests and Go benchmarks,
// Medium for the default CLI run, Large for thorough runs.
type Scale int

const (
	// Small is the test/benchmark scale (sub-second experiments).
	Small Scale = iota
	// Medium is the default CLI scale.
	Medium
	// Large is the thorough scale.
	Large
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want small, medium or large)", s)
}

// pick returns the scale-appropriate value.
func pick(s Scale, small, medium, large int) int {
	switch s {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// Experiment is one registered, runnable reproduction experiment.
type Experiment struct {
	// ID is the stable identifier (e.g. "table1/sorting").
	ID string
	// Title is a one-line description.
	Title string
	// Reproduces names the paper artifact this regenerates.
	Reproduces string
	// Run executes the experiment, writing its table to w.
	Run func(w io.Writer, s Scale) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments, sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// newTable returns a tab-aligned writer; call Flush when done.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// machineFor builds an EM machine for a program: memory sized to hold
// groupsTarget-th of the VPs at a time (at least one context and one
// stripe), with the standard cost parameters.
func machineFor(p bsp.Program, procs, d, b, groupsTarget int) core.MachineConfig {
	mu := p.MaxContextWords()
	v := p.NumVPs()
	vpp := (v + procs - 1) / procs
	k := (vpp + groupsTarget - 1) / groupsTarget
	if k < 1 {
		k = 1
	}
	m := k * mu
	if m < 2*d*b {
		m = 2 * d * b
	}
	return core.MachineConfig{
		P: procs, M: m, D: d, B: b, G: 1000,
		Cost: bsp.CostParams{GUnit: 1, GPkt: float64(b), Pkt: b, L: 100},
	}
}

// emRow holds one measured configuration for the standard Table 1
// row layout.
type emRow struct {
	label string
	res   *core.Result
}

// printEMRows prints the standard columns for a set of EM runs.
func printEMRows(tw io.Writer, rows []emRow, g float64, theoryOps func(p, d int) float64, pd map[string][2]int) {
	fmt.Fprintf(tw, "config\tλ\tgroups\tI/O ops\tblocks\tutil\tT_IO\tmeas/theory\n")
	for _, r := range rows {
		em := r.res.EM
		th := 0.0
		if theoryOps != nil {
			cfg := pd[r.label]
			th = theoryOps(cfg[0], cfg[1])
		}
		ratio := "-"
		if th > 0 {
			// Compare the per-processor critical-path ops (IOTime/G)
			// against the per-processor theory.
			ratio = fmt.Sprintf("%.2f", em.IOTime/g/th)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f\t%.3g\t%s\n",
			r.label, r.res.Costs.Supersteps, em.Groups,
			em.Run.Ops, em.Run.Blocks(), em.Run.Utilization(), em.IOTime, ratio)
	}
}

// standardMachines runs a program on the standard machine sweep
// (1 proc 1 disk, 1 proc 4 disks, 4 procs 4 disks) and returns rows.
func standardMachines(p bsp.Program, b int, seed uint64) ([]emRow, map[string][2]int, error) {
	shapes := []struct {
		label string
		procs int
		d     int
	}{
		{"p=1 D=1", 1, 1},
		{"p=1 D=4", 1, 4},
		{"p=4 D=4", 4, 4},
	}
	var rows []emRow
	pd := map[string][2]int{}
	for _, sh := range shapes {
		cfg := machineFor(p, sh.procs, sh.d, b, 8)
		opts := core.Options{Seed: seed, Redundancy: runRedundancy, Scrub: runScrub}
		if sh.d == 1 {
			// Neither mirroring nor parity fits on a single drive.
			opts.Redundancy = redundancy.None
			opts.Scrub = false
		}
		res, err := core.Run(p, cfg, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", sh.label, err)
		}
		rows = append(rows, emRow{label: sh.label, res: res})
		pd[sh.label] = [2]int{sh.procs, sh.d}
	}
	return rows, pd, nil
}
