//go:build race

package bench

// raceEnabled mirrors the -race build tag so wall-clock guards can
// skip themselves: under the race detector both schedules pay
// instrumentation costs that swamp the overhead being guarded, so the
// measured ratio reflects instrumentation, not the store. CI runs the
// guards in a dedicated no-race step.
const raceEnabled = true
