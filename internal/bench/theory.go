package bench

import "math"

// Theory predictions. The reproduction does not chase the paper's
// constants — the meas/theory columns should be roughly flat across a
// sweep (same asymptotic shape), and the comparisons should preserve
// who wins and the crossovers.

// emCGMOps predicts the parallel I/O operations of a simulated CGM
// algorithm (Corollary 1): Õ(λ·v·µ/(p·D·B)) — per compound superstep
// the simulation streams every context and the message traffic once,
// through p·D disks in blocks of B.
func emCGMOps(lambda, totalWords, p, d, b int) float64 {
	return float64(lambda) * float64(totalWords) / float64(p*d*b)
}

// sortIOOps predicts the PDM external merge sort cost
// Θ((n/DB)·log_{M/B}(n/B)) in parallel I/O operations (read+write per
// pass).
func sortIOOps(n, m, d, b int) float64 {
	nb := float64(n) / float64(b)
	base := float64(m) / float64(b)
	if base < 2 {
		base = 2
	}
	passes := math.Ceil(math.Log(nb) / math.Log(base))
	if passes < 1 {
		passes = 1
	}
	return 2 * nb / float64(d) * passes
}

// logp returns max(1, ⌈log2 p⌉)-ish for Group C round predictions.
func log2ceil(x int) int {
	n := 0
	for v := 1; v < x; v <<= 1 {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}
