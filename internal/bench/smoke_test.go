package bench_test

import (
	"bytes"
	"testing"

	"embsp/internal/bench"
)

func TestRegistryWellFormed(t *testing.T) {
	exps := bench.Experiments()
	if len(exps) < 25 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for i, e := range exps {
		if e.ID == "" || e.Title == "" || e.Reproduces == "" || e.Run == nil {
			t.Errorf("experiment %d (%q) incomplete", i, e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if i > 0 && exps[i-1].ID >= e.ID {
			t.Errorf("experiments not sorted at %q", e.ID)
		}
		if got, ok := bench.Find(e.ID); !ok || got.ID != e.ID {
			t.Errorf("Find(%q) failed", e.ID)
		}
	}
	if _, ok := bench.Find("no/such"); ok {
		t.Error("Find accepted an unknown id")
	}
	if _, err := bench.ParseScale("bogus"); err == nil {
		t.Error("ParseScale accepted bogus input")
	}
	for _, s := range []string{"small", "medium", "large"} {
		if _, err := bench.ParseScale(s); err != nil {
			t.Errorf("ParseScale(%q): %v", s, err)
		}
	}
}

func TestAllExperimentsSmall(t *testing.T) {
	for _, e := range bench.Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, bench.Small); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}
