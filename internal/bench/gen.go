package bench

import (
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/prng"
)

// Workload generators. All inputs are generated with distinct
// coordinates (general position), as the geometry algorithms assume.

func genKeys(seed uint64, n int) []uint64 {
	r := prng.New(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func genPerm(seed uint64, n int) []int {
	return prng.New(seed).Perm(n)
}

func genPoints(seed uint64, n int) []cgmgeom.Point {
	r := prng.New(seed)
	out := make([]cgmgeom.Point, n)
	for i := range out {
		out[i] = cgmgeom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return out
}

func genPoints3(seed uint64, n int) []cgmgeom.Point3 {
	r := prng.New(seed)
	out := make([]cgmgeom.Point3, n)
	for i := range out {
		out[i] = cgmgeom.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
	}
	return out
}

func genRects(seed uint64, n int) []cgmgeom.Rect {
	r := prng.New(seed)
	out := make([]cgmgeom.Rect, n)
	for i := range out {
		x, y := r.Float64(), r.Float64()
		out[i] = cgmgeom.Rect{X1: x, X2: x + 0.005 + r.Float64()*0.1, Y1: y, Y2: y + 0.005 + r.Float64()*0.1}
	}
	return out
}

// genSegments returns non-crossing segments (stacked at distinct
// heights).
func genSegments(seed uint64, n int) []cgmgeom.Segment {
	r := prng.New(seed)
	out := make([]cgmgeom.Segment, n)
	for i := range out {
		x := r.Float64()
		y := float64(i) + r.Float64()*0.4
		out[i] = cgmgeom.Segment{X1: x, Y1: y, X2: x + 0.02 + r.Float64()*0.3, Y2: y + r.Float64()*0.05}
	}
	return out
}

func genHSegments(seed uint64, n int) []cgmgeom.HSegment {
	r := prng.New(seed)
	out := make([]cgmgeom.HSegment, n)
	for i := range out {
		x := r.Float64()
		out[i] = cgmgeom.HSegment{X1: x, X2: x + 0.01 + r.Float64()*0.3, Y: r.Float64()}
	}
	return out
}

// genList returns the successor array of one random chain over n
// nodes.
func genList(seed uint64, n int) []int {
	perm := prng.New(seed).Perm(n)
	succ := make([]int, n)
	for i := range succ {
		succ[i] = -1
	}
	for i := 0; i+1 < n; i++ {
		succ[perm[i]] = perm[i+1]
	}
	return succ
}

// genTree returns a random tree: vertex i attaches to a random
// earlier vertex.
func genTree(seed uint64, n int) [][2]int {
	r := prng.New(seed)
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{r.Intn(i), i})
	}
	return edges
}

// genExpr builds a random binary expression tree with the given
// number of leaves (random leaf splits; +/× operators, small leaf
// values).
func genExpr(seed uint64, nLeaves int) (parent []int, kind []uint8, value []uint64) {
	r := prng.New(seed)
	parent = []int{-1}
	kind = []uint8{cgmgraph.OpLeaf}
	value = []uint64{r.Uint64() % 1000}
	if nLeaves == 1 {
		return parent, kind, value
	}
	leaves := []int{0}
	for len(leaves) < nLeaves {
		li := r.Intn(len(leaves))
		node := leaves[li]
		if r.Bool() {
			kind[node] = cgmgraph.OpAdd
		} else {
			kind[node] = cgmgraph.OpMul
		}
		for c := 0; c < 2; c++ {
			parent = append(parent, node)
			kind = append(kind, cgmgraph.OpLeaf)
			value = append(value, r.Uint64()%1000)
			if c == 0 {
				leaves[li] = len(parent) - 1
			} else {
				leaves = append(leaves, len(parent)-1)
			}
		}
	}
	return parent, kind, value
}

// genGraph returns m random edges over n vertices (no self-loops).
func genGraph(seed uint64, n, m int) [][2]int {
	r := prng.New(seed)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return edges
}
