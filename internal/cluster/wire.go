// Package cluster runs the parallel engine across real processes: p
// workers, each owning one core.NodeEngine over its own state
// directory, driven in lockstep by a coordinator over TCP. All
// exchange is relayed through the coordinator (a star), packets
// travel in size-b blocks exactly as the in-process engine moves
// them, and every compound-superstep barrier is a two-phase commit
// over the per-node journals — so a cluster run's Result and EMStats
// are bitwise identical to core.Run on the same machine configuration,
// which remains the reference oracle. See DESIGN.md §14.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// The frame is the unit the transport retransmits:
//
//	[u32 length][u8 kind][u64 seq][payload: length words × u64][u64 checksum]
//
// length counts payload words. The checksum is FNV-1a over kind, seq,
// and the payload bytes; a frame that fails it is discarded (never
// ACKed), so the sender's retransmission recovers — corruption
// degrades to loss. All integers are little-endian.

const (
	frameData = 0x01
	frameAck  = 0x02
	// PING/PONG keep-alives handled at the frame layer (below the
	// ARQ): neither is retransmitted or ACKed, their sequence numbers
	// are an independent per-link counter, and they never surface to
	// Send/Recv. A link that stays silent past its heartbeat timeout
	// is declared lost.
	framePing = 0x03
	framePong = 0x04

	// maxFramePayload bounds a frame's payload length (in 8-byte
	// words) so a corrupt length prefix cannot provoke an absurd
	// allocation. 1<<26 words = 512 MiB, far above any legitimate
	// batch.
	maxFramePayload = 1 << 26

	frameHeaderBytes  = 4 + 1 + 8
	frameChecksumSize = 8
)

type frame struct {
	kind    byte
	seq     uint64
	payload []uint64
}

func frameChecksum(kind byte, seq uint64, payload []byte) uint64 {
	h := fnv.New64a()
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], seq)
	h.Write(hdr[:])
	h.Write(payload)
	return h.Sum64()
}

// appendFrame serializes f into buf (reusing its capacity) and
// returns the framed bytes.
func appendFrame(buf []byte, f frame) []byte {
	n := frameHeaderBytes + 8*len(f.payload) + frameChecksumSize
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(f.payload)))
	buf[4] = f.kind
	binary.LittleEndian.PutUint64(buf[5:], f.seq)
	p := buf[frameHeaderBytes : frameHeaderBytes+8*len(f.payload)]
	for i, w := range f.payload {
		binary.LittleEndian.PutUint64(p[8*i:], w)
	}
	binary.LittleEndian.PutUint64(buf[n-frameChecksumSize:], frameChecksum(f.kind, f.seq, p))
	return buf
}

// errChecksum marks a frame whose checksum failed; the reader skips
// it (the bytes were consumed, the stream stays aligned).
var errChecksum = fmt.Errorf("cluster: frame checksum mismatch")

// readFrame reads one frame. A checksum failure returns errChecksum
// with the stream intact past the bad frame.
func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	f := frame{kind: hdr[4], seq: binary.LittleEndian.Uint64(hdr[5:])}
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("cluster: frame advertises %d payload words (max %d)", n, maxFramePayload)
	}
	if f.kind != frameData && f.kind != frameAck && f.kind != framePing && f.kind != framePong {
		return frame{}, fmt.Errorf("cluster: unknown frame kind 0x%02x", f.kind)
	}
	body := make([]byte, 8*int(n)+frameChecksumSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	p := body[:8*int(n)]
	sum := binary.LittleEndian.Uint64(body[8*int(n):])
	if sum != frameChecksum(f.kind, f.seq, p) {
		return frame{}, errChecksum
	}
	f.payload = make([]uint64, n)
	for i := range f.payload {
		f.payload[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return f, nil
}
