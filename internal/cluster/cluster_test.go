package cluster_test

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"embsp/internal/bsp"
	"embsp/internal/cluster"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

func clusterMachine(p int) core.MachineConfig {
	return core.MachineConfig{
		P: p, M: 256, D: 2, B: 8, G: 10,
		Cost: bsp.CostParams{GUnit: 1, GPkt: 2, Pkt: 16, L: 5},
	}
}

// battery is the Table 1 subset the cluster determinism battery runs;
// sizes are small so the full matrix stays fast.
var battery = []workload.Spec{
	{Alg: "sort", N: 96, V: 8, Seed: 41},
	{Alg: "listrank", N: 64, V: 8, Seed: 42},
	{Alg: "cc", N: 40, V: 8, Seed: 43},
}

// oracleFingerprint runs the in-process engine — the p-node reference
// oracle — over the same configuration and digests its Result.
func oracleFingerprint(t *testing.T, prog bsp.Program, cfg core.MachineConfig, seed uint64) uint64 {
	t.Helper()
	res, err := core.Run(prog, cfg, core.Options{Seed: seed, StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return workload.Fingerprint(res)
}

// killed is the panic sentinel the crash probes throw: the goroutine
// "process" around the worker or coordinator unwinds without any
// protocol farewell, like a SIGKILL would end a real process, leaving
// only the journals behind.
type killed struct{ who string }

// harness runs a coordinator plus P worker goroutines over real TCP
// loopback connections. Worker goroutines redial forever until the
// harness is marked done, so killed workers respawn and a killed
// coordinator's workers outlive it into the restarted run.
type harness struct {
	t    *testing.T
	prog bsp.Program
	cfg  core.MachineConfig
	opts core.Options
	root string
	addr string
	plan fault.NetPlan

	// PR 8 robustness knobs.
	replicate     bool           // coordinator keeps a replica store
	secret        string         // coordinator's join-auth secret
	workerSecrets map[int]string // per-worker secret override (default: secret)
	badSeed       map[int]uint64 // per-worker wrong run seed (fingerprint divergence)
	heartbeat     time.Duration  // keep-alive interval, both sides
	wipeKill      bool           // a killed worker's state dir is wiped too
	permaKill     bool           // a killed worker never respawns
	spares        int            // extra spare workers dialing in
	spareDelay    time.Duration  // coordinator's spare-adoption delay
	workerMetrics *obs.Registry  // transport counters on the worker side

	done atomic.Bool
	wg   sync.WaitGroup

	mu     sync.Mutex
	kills  map[string]bool // "node/phase/step" -> already fired
	dead   map[int]bool    // workers gone for good (permaKill)
	funnel func(id int, phase string, step int)
}

func newHarness(t *testing.T, prog bsp.Program, cfg core.MachineConfig, seed uint64) *harness {
	t.Helper()
	h := &harness{
		t: t, prog: prog, cfg: cfg,
		opts:  core.Options{Seed: seed},
		root:  t.TempDir(),
		kills: make(map[string]bool),
		dead:  make(map[int]bool),
	}
	// Bind once to pick a free port, then remember the address so a
	// restarted coordinator listens where the workers keep dialing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.addr = ln.Addr().String()
	ln.Close()
	t.Cleanup(h.stop)
	return h
}

// killAt schedules one simulated SIGKILL: the first time the given
// probe fires on the given side, its process dies.
func (h *harness) killAt(who string, step int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kills[fmt.Sprintf("%s/%d", who, step)] = false
}

func (h *harness) maybeKill(who string, step int) {
	h.mu.Lock()
	key := fmt.Sprintf("%s/%d", who, step)
	fired, scheduled := h.kills[key]
	if scheduled && !fired {
		h.kills[key] = true
		h.mu.Unlock()
		panic(killed{who: key})
	}
	h.mu.Unlock()
}

func (h *harness) startWorkers() {
	for i := 0; i < h.cfg.P; i++ {
		h.wg.Add(1)
		go h.workerLoop(i)
	}
	for i := 0; i < h.spares; i++ {
		h.wg.Add(1)
		go h.spareLoop(i)
	}
}

func (h *harness) workerSecret(id int) string {
	if s, ok := h.workerSecrets[id]; ok {
		return s
	}
	return h.secret
}

func (h *harness) stop() {
	h.done.Store(true)
	h.wg.Wait()
}

// workerLoop is one worker "process" incarnation after another: dial,
// serve until shutdown, death, or connection loss, repeat. Each
// incarnation opens the engine fresh from the node's state directory,
// exactly like a respawned process would.
func (h *harness) workerLoop(id int) {
	defer h.wg.Done()
	dir := filepath.Join(h.root, fmt.Sprintf("node-%d", id))
	for epoch := 0; !h.done.Load(); epoch++ {
		h.mu.Lock()
		gone := h.dead[id]
		h.mu.Unlock()
		if gone {
			return // machine permanently lost; no respawn
		}
		conn, err := net.Dial("tcp", h.addr)
		if err != nil {
			epoch--
			time.Sleep(20 * time.Millisecond)
			continue
		}
		h.serveOnce(id, dir, conn, epoch)
		time.Sleep(5 * time.Millisecond)
	}
}

// spareLoop is one spare worker "process": it parks at the coordinator
// with no node, and — unlike workerLoop's process-per-incarnation — the
// Worker persists across redials, because once adopted it IS some node
// and must rejoin as such (exactly how cmd/embsp-cluster behaves).
func (h *harness) spareLoop(i int) {
	defer h.wg.Done()
	w := &cluster.Worker{
		Prog: h.prog, Cfg: h.cfg, Opts: h.opts, NodeID: -1,
		Dir:    filepath.Join(h.root, fmt.Sprintf("spare-%d", i)),
		Spare:  true,
		Secret: h.secret,
	}
	defer w.Close()
	for epoch := 0; !h.done.Load(); epoch++ {
		conn, err := net.Dial("tcp", h.addr)
		if err != nil {
			epoch--
			time.Sleep(20 * time.Millisecond)
			continue
		}
		link := cluster.NewLink(conn, h.linkConfig(h.cfg.P+1+i, epoch))
		err = w.Serve(link)
		link.Close()
		if err == nil {
			return // orderly SHUTDOWN
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *harness) linkConfig(self, epoch int) cluster.LinkConfig {
	return cluster.LinkConfig{
		Self: self, Peer: h.cfg.P, Plan: h.plan,
		Epoch:       epoch,
		BackoffSeed: uint64(self) + 1,
		AckTimeout:  50 * time.Millisecond,
		Heartbeat:   h.heartbeat,
		Metrics:     h.workerMetrics,
	}
}

func (h *harness) serveOnce(id int, dir string, conn net.Conn, epoch int) {
	link := cluster.NewLink(conn, h.linkConfig(id, epoch))
	defer link.Close()
	opts := h.opts
	if s, ok := h.badSeed[id]; ok {
		opts.Seed = s
	}
	w := &cluster.Worker{
		Prog: h.prog, Cfg: h.cfg, Opts: opts, NodeID: id, Dir: dir,
		Secret: h.workerSecret(id),
		Probe: func(phase string, step int) {
			h.maybeKill(fmt.Sprintf("worker%d/%s", id, phase), step)
		},
	}
	defer w.Close()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				panic(r)
			}
			// The "machine" died. Optionally its disks die with it —
			// the permanent-loss scenario replication exists for.
			if h.wipeKill {
				os.RemoveAll(dir) //nolint:errcheck
			}
			if h.permaKill {
				h.mu.Lock()
				h.dead[id] = true
				h.mu.Unlock()
			}
		}
	}()
	w.Serve(link) //nolint:errcheck // lost links redial; errors are the loop's signal
}

// runCoord runs one coordinator incarnation. A probe-scheduled kill
// surfaces as (nil, killed-error); the caller restarts by calling
// runCoord again — resuming from the decision journal on disk.
func (h *harness) runCoord(metrics *obs.Registry) (res *core.Result, err error) {
	ln, lerr := net.Listen("tcp", h.addr)
	if lerr != nil {
		return nil, lerr
	}
	defer func() {
		if r := recover(); r != nil {
			k, ok := r.(killed)
			if !ok {
				panic(r)
			}
			res, err = nil, fmt.Errorf("coordinator killed at %s", k.who)
		}
	}()
	return cluster.Run(cluster.Config{
		Prog: h.prog, Cfg: h.cfg, Opts: h.opts,
		Dir:      filepath.Join(h.root, "coord"),
		Listener: ln,
		Net:      h.plan,
		Probe: func(phase string, step int) {
			h.maybeKill("coord/"+phase, step)
		},
		AckTimeout:  50 * time.Millisecond,
		RecvTimeout: 30 * time.Second,
		JoinTimeout: 20 * time.Second,
		Replicate:   h.replicate,
		Secret:      h.secret,
		Heartbeat:   h.heartbeat,
		SpareDelay:  h.spareDelay,
		Metrics:     metrics,
	})
}

// run starts the workers, drives coordinator incarnations until one
// completes (restarting through scheduled coordinator kills), and
// returns the Result.
func (h *harness) run(metrics *obs.Registry) (*core.Result, error) {
	h.startWorkers()
	for attempt := 0; ; attempt++ {
		res, err := h.runCoord(metrics)
		if err != nil && attempt < 4 {
			h.t.Logf("coordinator attempt %d: %v (restarting)", attempt, err)
			continue
		}
		return res, err
	}
}

func buildSpec(t *testing.T, spec workload.Spec) bsp.Program {
	t.Helper()
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst.Program
}

// TestClusterBattery is the determinism battery: three Table 1
// workloads at p in {2, 4} real worker processes, clean and under an
// injected network fault plan, all bitwise identical to the in-process
// engine's Result.
func TestClusterBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster battery is slow")
	}
	plans := []struct {
		name string
		plan fault.NetPlan
	}{
		{"clean", fault.NetPlan{}},
		{"netfaults", fault.NetPlan{
			Seed: 7, DropRate: 0.08, DupRate: 0.05,
			DelayRate: 0.05, Delay: time.Millisecond, CleanAfter: 3,
		}},
	}
	for _, spec := range battery {
		for _, p := range []int{2, 4} {
			for _, pl := range plans {
				spec, p, pl := spec, p, pl
				t.Run(fmt.Sprintf("%s/p%d/%s", spec.Alg, p, pl.name), func(t *testing.T) {
					t.Parallel()
					prog := buildSpec(t, spec)
					cfg := clusterMachine(p)
					want := oracleFingerprint(t, prog, cfg, spec.Seed)

					h := newHarness(t, prog, cfg, spec.Seed)
					h.plan = pl.plan
					metrics := obs.NewRegistry()
					res, err := h.run(metrics)
					if err != nil {
						t.Fatal(err)
					}
					if got := workload.Fingerprint(res); got != want {
						t.Fatalf("cluster fingerprint %x, oracle %x", got, want)
					}
					if metrics.Counter("cluster_tx_frames").Value() == 0 {
						t.Fatal("no frames counted; comm metrics are dead")
					}
					if pl.plan.Enabled() && metrics.Counter("cluster_faults_injected").Value() == 0 {
						t.Fatal("fault plan enabled but nothing injected")
					}
				})
			}
		}
	}
}

// TestClusterWorkerKill SIGKILLs (simulated) worker 1 once at every
// worker-side barrier phase — mid-compute, after PREPARE is fsynced,
// and after its local COMMIT but before the coordinator hears of it —
// at both an early and a later superstep. The respawned worker
// reconciles from its journal and the Result stays bitwise identical.
func TestClusterWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0] // sort
	for _, phase := range []string{"computed", "prepared", "committed"} {
		for _, step := range []int{0, 2} {
			phase, step := phase, step
			t.Run(fmt.Sprintf("%s/step%d", phase, step), func(t *testing.T) {
				t.Parallel()
				prog := buildSpec(t, spec)
				cfg := clusterMachine(2)
				want := oracleFingerprint(t, prog, cfg, spec.Seed)

				h := newHarness(t, prog, cfg, spec.Seed)
				h.killAt(fmt.Sprintf("worker1/%s", phase), step)
				res, err := h.run(nil)
				if err != nil {
					t.Fatal(err)
				}
				h.mu.Lock()
				fired := h.kills[fmt.Sprintf("worker1/%s/%d", phase, step)]
				h.mu.Unlock()
				if !fired {
					t.Fatalf("kill at %s/step %d never fired; the run had no such window", phase, step)
				}
				if got := workload.Fingerprint(res); got != want {
					t.Fatalf("cluster fingerprint %x after worker kill, oracle %x", got, want)
				}
			})
		}
	}
}

// TestClusterCoordKill SIGKILLs (simulated) the coordinator once at
// each of its decision phases — before the PREPARE barrier and right
// after the decision record lands but before any worker hears COMMIT
// — and restarts it over the same journal. Workers reconcile through
// the rejoin handshake (commit-on-reconcile for the decided window,
// presumed abort otherwise) and the Result stays bitwise identical.
func TestClusterCoordKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0] // sort
	for _, phase := range []string{"prepare", "decided"} {
		for _, step := range []int{0, 2} {
			phase, step := phase, step
			t.Run(fmt.Sprintf("%s/step%d", phase, step), func(t *testing.T) {
				t.Parallel()
				prog := buildSpec(t, spec)
				cfg := clusterMachine(2)
				want := oracleFingerprint(t, prog, cfg, spec.Seed)

				h := newHarness(t, prog, cfg, spec.Seed)
				h.killAt("coord/"+phase, step)
				res, err := h.run(nil)
				if err != nil {
					t.Fatal(err)
				}
				h.mu.Lock()
				fired := h.kills[fmt.Sprintf("coord/%s/%d", phase, step)]
				h.mu.Unlock()
				if !fired {
					t.Fatalf("kill at %s/step %d never fired; the run had no such window", phase, step)
				}
				if got := workload.Fingerprint(res); got != want {
					t.Fatalf("cluster fingerprint %x after coordinator kill, oracle %x", got, want)
				}
			})
		}
	}
}

// TestClusterSetupKill covers decision record 0: the coordinator dies
// after committing the setup barrier; the restart resumes past setup.
func TestClusterSetupKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[1] // listrank
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)
	want := oracleFingerprint(t, prog, cfg, spec.Seed)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.killAt("coord/decided", -1)
	res, err := h.run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := workload.Fingerprint(res); got != want {
		t.Fatalf("cluster fingerprint %x after setup-kill, oracle %x", got, want)
	}
}

// TestClusterRejectsBadOptions pins ClusterCheck's gate at the Run API.
func TestClusterRejectsBadOptions(t *testing.T) {
	spec := battery[0]
	prog := buildSpec(t, spec)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = cluster.Run(cluster.Config{
		Prog: prog, Cfg: clusterMachine(1), Opts: core.Options{},
		Dir: t.TempDir(), Listener: ln,
		JoinTimeout: time.Second,
	})
	if err == nil {
		t.Fatal("P=1 cluster accepted; ClusterCheck not wired into Run")
	}
}
