package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"embsp/internal/core"
	"embsp/internal/disk"
)

// ReplicaStore is the coordinator's copy of every node's state at the
// last committed barrier — the thing that turns permanent worker loss
// from "state lost beyond 2PC recovery" into a migration. Workers ship
// snapshots (usually deltas) piggybacked on the PREPARED reply; the
// coordinator applies them the instant its decision record lands, so
// the replica never trails the decided barrier — a worker wiped at any
// point after the decision restores at exactly the barrier the run is
// on.
//
// The store is validated, not fsynced — replication must stay off the
// run's fsync path (the worker journals' own 2PC fsyncs share the
// filesystem). The meta record carries a checksum over itself and a
// checksum for every live track; Load verifies the on-disk tracks are
// exactly the meta table's set, payload by payload. A crash can
// therefore leave the replica *invalid* (torn meta, stale tracks — a
// full snapshot re-seeds it at the next barrier, or the loud
// divergence error fires if a migration needed it first) but never
// wrong. Survival of a coordinator process crash rides on the page
// cache plus tmp+rename atomicity and the APPLYING marker; a
// coordinator machine crash may lose the replica entirely, which is a
// double fault — worker state and its replica on different machines is
// the deployment assumption, mirroring what the paper's c-copy track
// replication assumes of independent disks.
//
// On disk, one directory per node under root:
//
//	node-<i>/meta.bin        — [magic, version, nmanifest, manifest...,
//	                           ntracks, (disk, track, checksum)...,
//	                           checksum], replaced atomically
//	node-<i>/tracks-<d>.dat  — slot files mirroring the disk store's
//	                           layout: [magic, checksum, B words] per
//	                           track; a slot without its magic word is
//	                           blank
//	node-<i>/APPLYING        — crash marker; its existence means the
//	                           track files and meta.bin may disagree
//
// A replica is only ever read for restore when it is clean (no
// marker, intact meta, tracks matching the meta table) and at exactly
// the coordinator's committed barrier; anything less falls back to the
// loud PR 7 divergence error.
type ReplicaStore struct {
	root  string
	p     int
	d, b  int
	nodes []replicaNode
}

type trackKey struct{ d, t int }

type replicaNode struct {
	valid   bool
	version int
	// table is the checksum of every live track, mirrored durably in
	// meta.bin — the ground truth Load verifies payloads against.
	table map[trackKey]uint64
}

const (
	replMetaMagic  = 0x454d4252504d4554 // "EMBRPMET"
	replTrackMagic = 0x454d4252504c5452 // "EMBRPLTR"
)

// OpenReplicas opens (or creates) the replica store for p nodes with
// D-drive, B-word-block geometry under root. Nodes whose directories
// hold a crash marker or damaged metadata open invalid: they report
// version -1 until a full snapshot re-seeds them.
func OpenReplicas(root string, p, d, b int) (*ReplicaStore, error) {
	r := &ReplicaStore{root: root, p: p, d: d, b: b, nodes: make([]replicaNode, p)}
	for i := 0; i < p; i++ {
		if err := os.MkdirAll(r.nodeDir(i), 0o777); err != nil {
			return nil, err
		}
		r.nodes[i] = r.assess(i)
	}
	return r, nil
}

func (r *ReplicaStore) nodeDir(i int) string {
	return filepath.Join(r.root, fmt.Sprintf("node-%d", i))
}
func (r *ReplicaStore) metaPath(i int) string {
	return filepath.Join(r.nodeDir(i), "meta.bin")
}
func (r *ReplicaStore) markerPath(i int) string {
	return filepath.Join(r.nodeDir(i), "APPLYING")
}
func (r *ReplicaStore) trackPath(i, d int) string {
	return filepath.Join(r.nodeDir(i), fmt.Sprintf("tracks-%03d.dat", d))
}
func (r *ReplicaStore) slotBytes() int64 { return int64(2+r.b) * 8 }

// assess classifies a node's on-disk replica at open time.
func (r *ReplicaStore) assess(i int) replicaNode {
	if _, err := os.Stat(r.markerPath(i)); err == nil {
		return replicaNode{} // crashed mid-apply: torn
	}
	if _, err := os.Stat(r.metaPath(i)); errors.Is(err, os.ErrNotExist) {
		return replicaNode{valid: true, version: 0, table: map[trackKey]uint64{}} // empty replica
	}
	version, _, table, err := r.readMeta(i)
	if err != nil {
		return replicaNode{}
	}
	return replicaNode{valid: true, version: version, table: table}
}

// Version reports the committed barrier node i's replica holds: 0 for
// a clean empty replica, -1 for an invalid one (the worker must ship a
// full snapshot).
func (r *ReplicaStore) Version(i int) int {
	if !r.nodes[i].valid {
		return -1
	}
	return r.nodes[i].version
}

// Restorable reports whether node i can be re-materialized at barrier
// version from this replica.
func (r *ReplicaStore) Restorable(i, version int) bool {
	return r.nodes[i].valid && r.nodes[i].version == version && version >= 1
}

func (r *ReplicaStore) readMeta(i int) (version int, manifest []uint64, table map[trackKey]uint64, err error) {
	buf, err := os.ReadFile(r.metaPath(i))
	if err != nil {
		return 0, nil, nil, err
	}
	damaged := fmt.Errorf("cluster: replica %d: damaged metadata", i)
	if len(buf) < 40 || len(buf)%8 != 0 || binary.LittleEndian.Uint64(buf[0:]) != replMetaMagic {
		return 0, nil, nil, damaged
	}
	nw := len(buf)/8 - 2 // words between magic and checksum
	ws := make([]uint64, nw)
	for j := range ws {
		ws[j] = binary.LittleEndian.Uint64(buf[8+8*j:])
	}
	if disk.Checksum(ws) != binary.LittleEndian.Uint64(buf[len(buf)-8:]) {
		return 0, nil, nil, fmt.Errorf("cluster: replica %d: metadata fails its checksum", i)
	}
	version = int(ws[0])
	nm := int(ws[1])
	if nm < 0 || 2+nm+1 > nw {
		return 0, nil, nil, damaged
	}
	manifest = ws[2 : 2+nm]
	nt := int(ws[2+nm])
	if nt < 0 || 3+nm+3*nt != nw {
		return 0, nil, nil, damaged
	}
	table = make(map[trackKey]uint64, nt)
	for j := 0; j < nt; j++ {
		e := ws[3+nm+3*j:]
		table[trackKey{d: int(e[0]), t: int(e[1])}] = e[2]
	}
	return version, manifest, table, nil
}

func (r *ReplicaStore) writeMeta(i, version int, manifest []uint64, table map[trackKey]uint64) error {
	ws := make([]uint64, 0, 3+len(manifest)+3*len(table))
	ws = append(ws, uint64(version), uint64(len(manifest)))
	ws = append(ws, manifest...)
	ws = append(ws, uint64(len(table)))
	for k, sum := range table {
		ws = append(ws, uint64(k.d), uint64(k.t), sum)
	}
	buf := make([]byte, 8*(2+len(ws)))
	binary.LittleEndian.PutUint64(buf[0:], replMetaMagic)
	for j, w := range ws {
		binary.LittleEndian.PutUint64(buf[8+8*j:], w)
	}
	binary.LittleEndian.PutUint64(buf[len(buf)-8:], disk.Checksum(ws))
	tmp := r.metaPath(i) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, r.metaPath(i))
}

// setMarker / clearMarker deliberately skip fsync: the marker guards
// against a coordinator process dying mid-apply (page cache survives);
// a whole-machine crash is covered by Load's verify against the meta
// table, so the marker's own durability buys nothing.
func (r *ReplicaStore) setMarker(i int) error {
	f, err := os.OpenFile(r.markerPath(i), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	return f.Close()
}

func (r *ReplicaStore) clearMarker(i int) error {
	return os.Remove(r.markerPath(i))
}

// Apply folds one node's shipped snapshot into its replica. A full
// snapshot rebuilds the replica from nothing; a delta requires a clean
// replica at exactly the snapshot's base. Any failure (including a
// base mismatch) leaves the replica invalid — never torn-but-trusted —
// and the error tells the coordinator to request a full snapshot at
// the next barrier.
func (r *ReplicaStore) Apply(i int, snap *core.NodeSnapshot) error {
	if snap.Version < 1 {
		return fmt.Errorf("cluster: replica %d: snapshot with no committed barrier", i)
	}
	if !snap.Full && (!r.nodes[i].valid || snap.Base != r.nodes[i].version) {
		r.nodes[i].valid = false
		return fmt.Errorf("cluster: replica %d: delta on base %d does not fit replica at %d", i, snap.Base, r.Version(i))
	}
	table := r.nodes[i].table
	if snap.Full || table == nil {
		table = map[trackKey]uint64{}
	}
	r.nodes[i].valid = false
	if err := r.setMarker(i); err != nil {
		return err
	}
	if err := r.applyTracks(i, snap, table); err != nil {
		return err
	}
	if err := r.writeMeta(i, snap.Version, snap.Manifest, table); err != nil {
		return err
	}
	if err := r.clearMarker(i); err != nil {
		return err
	}
	r.nodes[i] = replicaNode{valid: true, version: snap.Version, table: table}
	return nil
}

// applyTracks lands the snapshot's payloads in the per-drive slot
// files — unfsynced; the meta table written after it is the durability
// point — and updates table to match.
func (r *ReplicaStore) applyTracks(i int, snap *core.NodeSnapshot, table map[trackKey]uint64) error {
	files := make(map[int]*os.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	open := func(d int) (*os.File, error) {
		if f, ok := files[d]; ok {
			return f, nil
		}
		flags := os.O_RDWR | os.O_CREATE
		f, err := os.OpenFile(r.trackPath(i, d), flags, 0o666)
		if err != nil {
			return nil, err
		}
		if snap.Full {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, err
			}
		}
		files[d] = f
		return f, nil
	}
	if snap.Full {
		// Truncate every drive file, including ones this snapshot has
		// no tracks for — stale slots must not survive a reseed.
		for d := 0; d < r.d; d++ {
			if _, err := open(d); err != nil {
				return err
			}
		}
	}
	slotB := r.slotBytes()
	buf := make([]byte, slotB)
	for _, t := range snap.Tracks {
		if t.Disk < 0 || t.Disk >= r.d || t.Track < 0 {
			return fmt.Errorf("cluster: replica %d: track (%d,%d) out of range", i, t.Disk, t.Track)
		}
		f, err := open(t.Disk)
		if err != nil {
			return err
		}
		if t.Payload == nil {
			var zero [8]byte
			if _, err := f.WriteAt(zero[:], int64(t.Track)*slotB); err != nil {
				return err
			}
			delete(table, trackKey{d: t.Disk, t: t.Track})
			continue
		}
		if len(t.Payload) != r.b {
			return fmt.Errorf("cluster: replica %d: track (%d,%d) payload has %d words, want B=%d", i, t.Disk, t.Track, len(t.Payload), r.b)
		}
		sum := disk.Checksum(t.Payload)
		binary.LittleEndian.PutUint64(buf[0:], replTrackMagic)
		binary.LittleEndian.PutUint64(buf[8:], sum)
		for j, w := range t.Payload {
			binary.LittleEndian.PutUint64(buf[16+8*j:], w)
		}
		if _, err := f.WriteAt(buf, int64(t.Track)*slotB); err != nil {
			return err
		}
		table[trackKey{d: t.Disk, t: t.Track}] = sum
	}
	return nil
}

// Load reads node i's replica back as a full snapshot, for seeding a
// fresh or spare worker. It refuses anything but a clean replica and
// verifies the on-disk tracks are exactly the meta table's set, each
// payload matching its recorded checksum — which is what catches track
// data the unfsynced apply path left stale or torn across a crash.
func (r *ReplicaStore) Load(i int) (*core.NodeSnapshot, error) {
	if !r.nodes[i].valid || r.nodes[i].version < 1 {
		return nil, fmt.Errorf("cluster: replica %d is not restorable (version %d)", i, r.Version(i))
	}
	version, manifest, table, err := r.readMeta(i)
	if err != nil {
		return nil, err
	}
	snap := &core.NodeSnapshot{Version: version, Full: true, Base: -1, Manifest: manifest}
	slotB := r.slotBytes()
	buf := make([]byte, slotB)
	for d := 0; d < r.d; d++ {
		f, err := os.Open(r.trackPath(i, d))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		for t := int64(0); t*slotB < st.Size(); t++ {
			n, err := f.ReadAt(buf, t*slotB)
			if err != nil && err != io.EOF {
				f.Close()
				return nil, err
			}
			want, live := table[trackKey{d: d, t: int(t)}]
			if n < 8 || binary.LittleEndian.Uint64(buf[0:]) != replTrackMagic {
				if live {
					f.Close()
					return nil, fmt.Errorf("cluster: replica %d: slot (%d,%d) is blank but the meta table lists it", i, d, t)
				}
				continue // blank or wiped slot
			}
			if !live {
				continue // stale leftover past the published meta; the table is the truth
			}
			if n < int(slotB) {
				f.Close()
				return nil, fmt.Errorf("cluster: replica %d: torn slot (%d,%d)", i, d, t)
			}
			payload := make([]uint64, r.b)
			for j := range payload {
				payload[j] = binary.LittleEndian.Uint64(buf[16+8*j:])
			}
			if disk.Checksum(payload) != want {
				f.Close()
				return nil, fmt.Errorf("cluster: replica %d: slot (%d,%d) fails its checksum", i, d, t)
			}
			snap.Tracks = append(snap.Tracks, core.TrackImage{Disk: d, Track: int(t), Payload: payload})
		}
		f.Close()
	}
	if len(snap.Tracks) != len(table) {
		return nil, fmt.Errorf("cluster: replica %d: %d tracks on disk, meta table lists %d", i, len(snap.Tracks), len(table))
	}
	return snap, nil
}

// Invalidate marks node i's replica untrusted in memory; the next
// Apply must be a full snapshot. Used when a shipped snapshot fails
// validation above the store layer.
func (r *ReplicaStore) Invalidate(i int) { r.nodes[i].valid = false }
