package cluster_test

// Transport-level heartbeat tests: the keep-alive must kill a link
// whose peer has gone silent (the failure no FIN announces) and must
// NOT kill a link that is merely idle while its peer still answers
// pings.

import (
	"errors"
	"net"
	"testing"
	"time"

	"embsp/internal/cluster"
	"embsp/internal/obs"
)

// tcpPair returns two connected TCP endpoints (real sockets, so writes
// into a silent peer land in kernel buffers instead of blocking).
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		dial.Close()
		t.Fatal(r.err)
	}
	return dial, r.c
}

func TestLinkHeartbeatDetectsSilentPeer(t *testing.T) {
	a, b := tcpPair(t)
	defer b.Close() // b stays a dead socket: accepts bytes, never answers
	metrics := obs.NewRegistry()
	link := cluster.NewLink(a, cluster.LinkConfig{
		Self: 0, Peer: 1, BackoffSeed: 1,
		Heartbeat: 20 * time.Millisecond,
		Metrics:   metrics,
	})
	defer link.Close()

	done := make(chan error, 1)
	go func() {
		_, err := link.Recv(0) // would block forever without keep-alives
		done <- err
	}()
	select {
	case err := <-done:
		var lost *cluster.LostError
		if !errors.As(err, &lost) {
			t.Fatalf("Recv ended with %v, want a *LostError heartbeat verdict", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent peer never detected; Recv still blocked after 5s")
	}
	if metrics.Counter("cluster_heartbeat_misses").Value() == 0 {
		t.Fatal("heartbeat fired but cluster_heartbeat_misses was not counted")
	}
}

func TestLinkHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	a, b := tcpPair(t)
	la := cluster.NewLink(a, cluster.LinkConfig{
		Self: 0, Peer: 1, BackoffSeed: 1, Heartbeat: 20 * time.Millisecond,
	})
	defer la.Close()
	lb := cluster.NewLink(b, cluster.LinkConfig{
		Self: 1, Peer: 0, BackoffSeed: 2, Heartbeat: 20 * time.Millisecond,
	})
	defer lb.Close()

	// Idle for many heartbeat timeouts: pings and pongs must keep both
	// ends convinced the other is alive.
	time.Sleep(400 * time.Millisecond)
	if err := la.Err(); err != nil {
		t.Fatalf("idle link a died: %v", err)
	}
	if err := lb.Err(); err != nil {
		t.Fatalf("idle link b died: %v", err)
	}
	// And the link still carries protocol traffic afterwards.
	msg := []uint64{42, 43}
	sendErr := make(chan error, 1)
	go func() { sendErr <- la.Send(msg) }()
	got, err := lb.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("payload %v corrupted across an idle-then-used link", got)
	}
}
