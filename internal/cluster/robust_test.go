package cluster_test

// PR 8 robustness battery: permanent worker loss. Where cluster_test.go
// kills processes and lets their journals bring them back, these tests
// destroy the state itself — wiped directories, machines that never
// return, links that die without a FIN — and check that commit-time
// replication, heartbeat detection, and migration (onto respawns and
// spares) still produce the oracle's exact Result.

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"embsp/internal/cluster"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

// TestClusterWipeKill is the kill-and-wipe matrix: worker 1 dies at
// every 2PC phase boundary — mid-compute, after PREPARE, after its
// local COMMIT — and its state directory dies with it. The respawned
// (empty) worker cannot reconcile by journal, so the coordinator must
// migrate it from the replica store; the Result stays bitwise
// identical to the oracle.
func TestClusterWipeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0] // sort
	for _, phase := range []string{"computed", "prepared", "committed"} {
		for _, step := range []int{0, 2} {
			phase, step := phase, step
			t.Run(fmt.Sprintf("%s/step%d", phase, step), func(t *testing.T) {
				t.Parallel()
				prog := buildSpec(t, spec)
				cfg := clusterMachine(2)
				want := oracleFingerprint(t, prog, cfg, spec.Seed)

				h := newHarness(t, prog, cfg, spec.Seed)
				h.replicate = true
				h.wipeKill = true
				h.killAt(fmt.Sprintf("worker1/%s", phase), step)
				metrics := obs.NewRegistry()
				res, err := h.run(metrics)
				if err != nil {
					t.Fatal(err)
				}
				h.mu.Lock()
				fired := h.kills[fmt.Sprintf("worker1/%s/%d", phase, step)]
				h.mu.Unlock()
				if !fired {
					t.Fatalf("kill at %s/step %d never fired; the run had no such window", phase, step)
				}
				if got := workload.Fingerprint(res); got != want {
					t.Fatalf("cluster fingerprint %x after wipe-kill, oracle %x", got, want)
				}
				if metrics.Counter("cluster_migrations").Value() == 0 {
					t.Fatal("wiped worker rejoined without a migration; replica restore never ran")
				}
				if metrics.Counter("cluster_replica_bytes").Value() == 0 {
					t.Fatal("replication enabled but no snapshot bytes were shipped")
				}
			})
		}
	}
}

// TestClusterWipeKillNoReplica pins the PR 7 contract: with
// replication off, losing a worker's state is unrecoverable and the
// run must say so loudly rather than produce a wrong Result.
func TestClusterWipeKillNoReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0]
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.replicate = false
	h.wipeKill = true
	h.killAt("worker1/computed", 1)
	_, err := h.run(nil)
	if err == nil {
		t.Fatal("run with a wiped worker and no replica succeeded; divergence went undetected")
	}
	if !strings.Contains(err.Error(), "state lost beyond 2PC recovery") {
		t.Fatalf("expected the loud divergence verdict, got: %v", err)
	}
}

// TestClusterSilentLinkDeath injects the failure no FIN announces: at
// connection epoch 0 the worker 1 → coordinator direction goes
// permanently dead mid-superstep (frames, ACKs, and pongs all vanish),
// like a died NIC. The coordinator's keep-alive is what must notice —
// its Recv would otherwise block for the full RecvTimeout — and the
// worker's redial (epoch 1 is healthy) reconciles the step. The Result
// stays bitwise identical.
func TestClusterSilentLinkDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0]
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)
	want := oracleFingerprint(t, prog, cfg, spec.Seed)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.replicate = true
	h.heartbeat = 40 * time.Millisecond
	h.workerMetrics = obs.NewRegistry()
	h.plan = fault.NetPlan{Deaths: []fault.LinkDeath{
		{From: 1, To: cfg.P, Epoch: 0, AfterSeq: 6},
	}}
	metrics := obs.NewRegistry()
	res, err := h.run(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := workload.Fingerprint(res); got != want {
		t.Fatalf("cluster fingerprint %x after silent link death, oracle %x", got, want)
	}
	misses := metrics.Counter("cluster_heartbeat_misses").Value() +
		h.workerMetrics.Counter("cluster_heartbeat_misses").Value()
	if misses == 0 {
		t.Fatal("link died silently but no heartbeat timeout fired; detection is dead")
	}
}

// TestClusterSpareTakeover is the machine-replacement drill: worker 1
// dies permanently (state wiped, never respawns), and a spare worker —
// parked at the coordinator since startup with no node of its own —
// must adopt node 1 from the replica and finish the run bitwise
// identical to the oracle.
func TestClusterSpareTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix is slow")
	}
	spec := battery[0]
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)
	want := oracleFingerprint(t, prog, cfg, spec.Seed)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.replicate = true
	h.wipeKill = true
	h.permaKill = true
	h.spares = 1
	h.spareDelay = 100 * time.Millisecond
	h.killAt("worker1/computed", 1)
	metrics := obs.NewRegistry()
	res, err := h.run(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := workload.Fingerprint(res); got != want {
		t.Fatalf("cluster fingerprint %x after spare takeover, oracle %x", got, want)
	}
	if metrics.Counter("cluster_migrations").Value() == 0 {
		t.Fatal("run completed without worker 1, yet no migration was counted")
	}
}

// TestClusterFingerprintMismatch pins welcome's first divergence
// verdict: a worker opened with the wrong run seed derives a different
// node fingerprint, and the coordinator must refuse it outright —
// not hang, not reset it into the roster.
func TestClusterFingerprintMismatch(t *testing.T) {
	spec := battery[2] // cc, the smallest
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.badSeed = map[int]uint64{1: spec.Seed + 1000}
	_, err := h.run(nil)
	if err == nil {
		t.Fatal("worker with a foreign fingerprint was accepted")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("expected a fingerprint divergence verdict, got: %v", err)
	}
}

// TestClusterAuth runs a full cluster with join authentication on,
// while an intruder with the wrong secret keeps knocking. The real
// workers (right secret) must complete the run bitwise identical; the
// intruder must be rejected and counted, never welcomed.
func TestClusterAuth(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster auth battery is slow")
	}
	spec := battery[1] // listrank
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)
	want := oracleFingerprint(t, prog, cfg, spec.Seed)

	h := newHarness(t, prog, cfg, spec.Seed)
	h.secret = "covenant"
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		w := &cluster.Worker{
			Prog: prog, Cfg: cfg, Opts: core.Options{Seed: spec.Seed},
			NodeID: 0, Dir: filepath.Join(h.root, "intruder"),
			Secret: "wrong-secret",
		}
		defer w.Close()
		for !h.done.Load() {
			conn, err := net.Dial("tcp", h.addr)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			link := cluster.NewLink(conn, cluster.LinkConfig{
				Self: 0, Peer: cfg.P, BackoffSeed: 99,
				AckTimeout: 50 * time.Millisecond,
			})
			w.Serve(link) //nolint:errcheck // rejection is the expected outcome
			link.Close()
			return
		}
	}()
	metrics := obs.NewRegistry()
	res, err := h.run(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := workload.Fingerprint(res); got != want {
		t.Fatalf("cluster fingerprint %x with auth on, oracle %x", got, want)
	}
	if metrics.Counter("cluster_auth_rejects").Value() == 0 {
		t.Fatal("intruder with the wrong secret was never rejected")
	}
}

// TestClusterShutdownClosesPendingHandshakes pins the acceptLoop leak
// fix: a connection that says HELLO never (a port scanner, a stalled
// dialer) parks a handshake goroutine in Recv; shutdown must close it
// rather than leak it and its connection past the run.
func TestClusterShutdownClosesPendingHandshakes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster battery is slow")
	}
	spec := battery[2] // cc, the smallest
	prog := buildSpec(t, spec)
	cfg := clusterMachine(2)

	h := newHarness(t, prog, cfg, spec.Seed)
	connC := make(chan net.Conn, 1)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for !h.done.Load() {
			conn, err := net.Dial("tcp", h.addr)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			connC <- conn // hold it open, silent: no HELLO ever
			return
		}
	}()
	res, err := h.run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	select {
	case conn := <-connC:
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("unexpected data on a silent handshake connection")
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("silent handshake connection was never closed at shutdown; acceptLoop leaked it")
		}
	default:
		t.Skip("run finished before the silent dialer connected")
	}
}
