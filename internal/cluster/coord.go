package cluster

import (
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// Config configures a cluster coordinator run.
type Config struct {
	Prog bsp.Program
	Cfg  core.MachineConfig
	Opts core.Options
	// Dir is the coordinator's state directory (decision journal).
	Dir string
	// Listener accepts worker connections; the coordinator owns it.
	Listener net.Listener
	// Net is the injected network fault plan (zero value: none).
	Net fault.NetPlan
	// BackoffSeed keys retransmission backoff (derived per link).
	BackoffSeed uint64
	// AckTimeout / Retries / RecvTimeout tune the transport (see
	// LinkConfig; RecvTimeout bounds a phase response, default 2m).
	AckTimeout  time.Duration
	RecvTimeout time.Duration
	Retries     int
	// StepRetries bounds how many times one superstep may be aborted
	// and replayed before the run gives up (default 5).
	StepRetries int
	// JoinTimeout bounds the wait for a worker to (re)join (default 60s).
	JoinTimeout time.Duration
	// Replicate enables barrier-time state replication: every PREPARED
	// (and SETUP_OUT) reply carries the worker's barrier snapshot
	// (usually a delta), which the coordinator folds into a replica
	// store under Dir the moment its decision record lands. A worker
	// whose own state is permanently gone is re-seeded from the replica
	// instead of failing the run with a divergence error.
	Replicate bool
	// Secret, when non-empty, requires every joining worker to answer
	// an HMAC-SHA256 challenge over a fresh nonce; joins that cannot
	// are dropped (and counted as cluster_auth_rejects).
	Secret string
	// Heartbeat / HeartbeatTimeout thread keep-alives into every
	// accepted link (see LinkConfig); zero disables them.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// SpareDelay is how long a worker slot may sit empty before a
	// parked spare is adopted for it (default JoinTimeout/4). Spares
	// only ever replace a slot whose replica is restorable.
	SpareDelay time.Duration
	// Respawn, when set, is invoked when worker id's connection died
	// and a rejoin is needed — spawn mode uses it to relaunch the
	// worker process. With Respawn nil the coordinator just waits for
	// an external rejoin (join mode).
	Respawn func(id int) error
	// Probe, when set, is called at coordinator decision boundaries
	// ("prepare", "decided", "recover") for crash tests.
	Probe func(phase string, step int)
	// Metrics receives comm counters and the barrier-wait histogram.
	Metrics *obs.Registry
}

// WorkerError is a worker-reported engine failure (program panic,
// real I/O failure). It is fatal: replaying cannot fix a
// deterministic engine error.
type WorkerError struct {
	Node int
	Msg  string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker %d: %s", e.Node, e.Msg)
}

func fatal(err error) bool {
	var we *WorkerError
	return errors.As(err, &we)
}

type coordinator struct {
	cc      Config
	core    *core.CoordCore
	links   []*Link // per worker slot; nil = disconnected
	epochs  []int   // connection incarnations seen per slot
	replica *ReplicaStore
	spares  []joinReq // parked spare workers, adopted on worker loss

	joins    chan joinReq
	acceptWG sync.WaitGroup
	closed   chan struct{}

	// pending tracks links whose handshake is still in flight, so
	// shutdown can cut them loose instead of leaking their goroutines
	// into the JoinTimeout.
	pmu     sync.Mutex
	pending map[*Link]struct{}

	stepOpen bool

	// replApply tracks the (at most one) background replica-apply
	// batch; see applySnapshots / replWait.
	replApply sync.WaitGroup

	barrierWait  *obs.Histogram
	replays      *obs.Counter
	migrations   *obs.Counter
	replicaBytes *obs.Counter
	authRejects  *obs.Counter
}

type joinReq struct {
	h    hello
	link *Link
}

// Run drives a full cluster run: accept P workers, reconcile their
// journals, drive compound supersteps under two-phase commit, survive
// worker deaths by abort-and-replay, and assemble the Result — which
// is bitwise identical to core.Run of the same configuration.
func Run(cc Config) (*core.Result, error) {
	if cc.RecvTimeout <= 0 {
		cc.RecvTimeout = 2 * time.Minute
	}
	if cc.StepRetries <= 0 {
		cc.StepRetries = 5
	}
	if cc.JoinTimeout <= 0 {
		cc.JoinTimeout = 60 * time.Second
	}
	resume := false
	if _, err := os.Stat(filepath.Join(cc.Dir, "journal.wal")); err == nil {
		resume = true
	}
	cco, err := core.OpenCoord(cc.Prog, cc.Cfg, cc.Opts, cc.Dir, resume)
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		cc:      cc,
		core:    cco,
		links:   make([]*Link, cc.Cfg.P),
		epochs:  make([]int, cc.Cfg.P),
		joins:   make(chan joinReq, 2*cc.Cfg.P),
		closed:  make(chan struct{}),
		pending: make(map[*Link]struct{}),
	}
	if m := cc.Metrics; m != nil {
		c.barrierWait = m.Histogram("cluster_barrier_wait_nanos")
		c.replays = m.Counter("cluster_step_replays")
		c.migrations = m.Counter("cluster_migrations")
		c.replicaBytes = m.Counter("cluster_replica_bytes")
		c.authRejects = m.Counter("cluster_auth_rejects")
	}
	if cc.Replicate {
		rs, err := OpenReplicas(filepath.Join(cc.Dir, "replica"), cc.Cfg.P, cc.Cfg.D, cc.Cfg.B)
		if err != nil {
			cco.Close()
			return nil, err
		}
		c.replica = rs
	}
	defer c.shutdown()
	if c.core.Committed() > 0 {
		if err := c.core.LoadCommitted(); err != nil {
			return nil, err
		}
	}
	c.acceptWG.Add(1)
	go c.acceptLoop()

	if err := c.gatherAll(); err != nil {
		return nil, err
	}
	if c.core.Committed() == 0 {
		if err := c.runSetup(); err != nil {
			return nil, err
		}
	}
	halted := c.core.Halted()
	for step := c.core.StepsDone(); !halted; step++ {
		if step >= c.core.MaxSupersteps() {
			return nil, fmt.Errorf("core: no convergence after %d supersteps", c.core.MaxSupersteps())
		}
		h, err := c.runStep(step)
		if err != nil {
			return nil, err
		}
		halted = h
	}
	return c.assemble()
}

func (c *coordinator) probe(phase string, step int) {
	if c.cc.Probe != nil {
		c.cc.Probe(phase, step)
	}
}

// acceptLoop admits connections and completes the HELLO half of the
// handshake; joins delivers them to whoever is waiting for workers.
// Every handshake goroutine is tracked by acceptWG and its link is
// registered in c.pending, so shutdown can close them out instead of
// leaking Recv waiters into the JoinTimeout.
func (c *coordinator) acceptLoop() {
	defer c.acceptWG.Done()
	for {
		conn, err := c.cc.Listener.Accept()
		if err != nil {
			return // listener closed
		}
		c.acceptWG.Add(1)
		go func() {
			defer c.acceptWG.Done()
			link := NewLink(conn, LinkConfig{
				Self:             c.cc.Cfg.P,
				Peer:             -1,
				Plan:             c.cc.Net,
				BackoffSeed:      prng.Derive(c.cc.BackoffSeed, uint64(c.cc.Cfg.P)),
				AckTimeout:       c.cc.AckTimeout,
				Retries:          c.cc.Retries,
				Heartbeat:        c.cc.Heartbeat,
				HeartbeatTimeout: c.cc.HeartbeatTimeout,
				Metrics:          c.cc.Metrics,
			})
			if !c.trackPending(link) {
				link.Close() // raced shutdown
				return
			}
			defer c.untrackPending(link)
			msg, err := link.Recv(c.cc.JoinTimeout)
			if err != nil {
				link.Close()
				return
			}
			dec, err := expect(msg, msgHello)
			if err != nil {
				link.Close()
				return
			}
			h := decodeHello(dec)
			if h.Spare {
				if h.NodeID != -1 {
					link.Close()
					return
				}
			} else {
				if h.NodeID < 0 || h.NodeID >= c.cc.Cfg.P {
					link.Close()
					return
				}
				link.SetPeer(h.NodeID)
				c.pmu.Lock()
				link.SetEpoch(c.epochs[h.NodeID])
				c.epochs[h.NodeID]++
				c.pmu.Unlock()
			}
			if c.cc.Secret != "" {
				if err := c.challenge(link); err != nil {
					link.Close()
					return
				}
			}
			// Untrack before handing over: once the join is delivered
			// the link belongs to the run, and shutdown must not close
			// an installed link out from under it.
			c.untrackPending(link)
			select {
			case c.joins <- joinReq{h: h, link: link}:
			case <-c.closed:
				link.Close()
			}
		}()
	}
}

func (c *coordinator) trackPending(l *Link) bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	select {
	case <-c.closed:
		return false
	default:
	}
	c.pending[l] = struct{}{}
	return true
}

func (c *coordinator) untrackPending(l *Link) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	delete(c.pending, l)
}

// challenge authenticates a joining worker: a fresh 32-byte nonce goes
// out, HMAC-SHA256(secret, nonce) must come back. A wrong answer is
// counted; a transport failure just drops the attempt.
func (c *coordinator) challenge(link *Link) error {
	nonce := make([]byte, 8*nonceWords)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	nw := bytesToWords(nonce)
	if err := link.Send(encodeChallenge(nw)); err != nil {
		return err
	}
	msg, err := link.Recv(c.cc.JoinTimeout)
	if err != nil {
		return err
	}
	dec, err := expect(msg, msgAuth)
	if err != nil {
		add(c.authRejects, 1)
		return err
	}
	if !hmac.Equal(wordsToBytes(dec.Uints()), wordsToBytes(authMAC(c.cc.Secret, nw))) {
		add(c.authRejects, 1)
		return fmt.Errorf("cluster: join authentication failed")
	}
	return nil
}

// welcome reconciles one worker's journal against the decision log
// and installs its link. The 2PC recovery rule: a prepared record is
// committed exactly when the coordinator's journal covers it;
// otherwise presumed abort.
func (c *coordinator) welcome(j joinReq) error {
	id := j.h.NodeID
	if want := c.core.NodeFpr(id); j.h.Fpr != want {
		j.link.Close()
		return fmt.Errorf("%w: worker %d fingerprint %x, want %x (different program, machine, or options?)", errDiverged, id, j.h.Fpr, want)
	}
	C := c.core.Committed()
	var req []uint64
	if C == 0 {
		req = welcome{Reset: true}.encode()
	} else {
		switch {
		case j.h.Committed == C:
			// Fully caught up; any pending tail is an unprepared next
			// step that must be presumed aborted.
			req = welcome{CommitPending: false}.encode()
		case j.h.Committed == C-1 && j.h.HasPending:
			req = welcome{CommitPending: true}.encode()
		default:
			// The worker's own journal cannot reach the committed
			// barrier — 2PC recovery is out. With a replica at exactly
			// this barrier the node migrates onto the connection (wiped
			// directory, fresh respawn, whatever it holds is discarded);
			// without one the loss is permanent and loud.
			c.replWait()
			if c.replica != nil && c.replica.Restorable(id, C) {
				return c.migrate(j.link, id)
			}
			j.link.Close()
			return fmt.Errorf("%w: worker %d journal has %d committed records (pending: %v), coordinator has %d — state lost beyond 2PC recovery",
				errDiverged, id, j.h.Committed, j.h.HasPending, C)
		}
	}
	if err := j.link.Send(req); err != nil {
		j.link.Close()
		return err
	}
	msg, err := j.link.Recv(c.cc.RecvTimeout)
	if err != nil {
		j.link.Close()
		return err
	}
	dec, err := expect(msg, msgWelcomeOut)
	if err != nil {
		j.link.Close()
		return err
	}
	out := decodeWelcomeOut(dec)
	if C > 0 && (out.Committed != C || out.StepsDone != c.core.StepsDone()) {
		j.link.Close()
		return fmt.Errorf("%w: worker %d reconciled to record %d / step %d, coordinator at record %d / step %d",
			errDiverged, id, out.Committed, out.StepsDone, C, c.core.StepsDone())
	}
	if old := c.links[id]; old != nil {
		old.Close()
	}
	c.links[id] = j.link
	return nil
}

// migrate re-seeds node id from its replica onto link — the RESTORE
// leg of the handshake — and installs the link on success. The replica
// must already have been checked Restorable at the coordinator's
// barrier.
func (c *coordinator) migrate(link *Link, id int) error {
	C := c.core.Committed()
	snap, err := c.replica.Load(id)
	if err != nil {
		// The replica lied about being clean; stop trusting it. With
		// the worker's own state also gone this run cannot continue.
		c.replica.Invalidate(id)
		link.Close()
		return fmt.Errorf("%w: worker %d state lost and replica unreadable: %v", errDiverged, id, err)
	}
	link.SetPeer(id)
	if err := link.Send(encodeRestore(id, snap)); err != nil {
		link.Close()
		return err
	}
	msg, err := link.Recv(c.cc.RecvTimeout)
	if err != nil {
		link.Close()
		return err
	}
	dec, err := expect(msg, msgWelcomeOut)
	if err != nil {
		link.Close()
		return err
	}
	out := decodeWelcomeOut(dec)
	if out.Committed != C || out.StepsDone != c.core.StepsDone() {
		link.Close()
		return fmt.Errorf("%w: worker %d restored to record %d / step %d, coordinator at record %d / step %d",
			errDiverged, id, out.Committed, out.StepsDone, C, c.core.StepsDone())
	}
	if old := c.links[id]; old != nil {
		old.Close()
	}
	c.links[id] = link
	add(c.migrations, 1)
	return nil
}

// adoptSpare hands worker slot id to a parked spare, if one is alive
// and the slot's replica is restorable. Reports whether a spare was
// installed.
func (c *coordinator) adoptSpare(id int) bool {
	c.replWait()
	if c.replica == nil || !c.replica.Restorable(id, c.core.Committed()) {
		return false
	}
	for len(c.spares) > 0 {
		j := c.spares[0]
		c.spares = c.spares[1:]
		if j.link.Err() != nil {
			j.link.Close()
			continue
		}
		if err := c.migrate(j.link, id); err != nil {
			if fatalJoin(err) {
				// Divergence during a spare restore means the replica is
				// bad; fall back to waiting for the real worker.
				return false
			}
			continue // spare died mid-restore; try the next one
		}
		return true
	}
	return false
}

// gatherAll waits until every worker slot has a reconciled link.
// Spares park; a slot still empty after SpareDelay is handed to one.
func (c *coordinator) gatherAll() error {
	spareDelay := c.cc.SpareDelay
	if spareDelay <= 0 {
		spareDelay = c.cc.JoinTimeout / 4
	}
	start := time.Now()
	for {
		missing := -1
		for i, l := range c.links {
			if l == nil {
				missing = i
				break
			}
		}
		if missing < 0 {
			return nil
		}
		select {
		case j := <-c.joins:
			if j.h.Spare {
				c.spares = append(c.spares, j)
				continue
			}
			if err := c.welcome(j); err != nil {
				if fatalJoin(err) {
					return err
				}
				// A stale or broken connection; keep waiting.
				continue
			}
			start = time.Now() // progress: restart the clock
		case <-time.After(spareDelay):
			if c.adoptSpare(missing) {
				start = time.Now()
				continue
			}
			if time.Since(start) >= c.cc.JoinTimeout {
				return &LostError{Peer: missing, Reason: fmt.Sprintf("did not join within %v and no spare could take over", c.cc.JoinTimeout)}
			}
		}
	}
}

// fatalJoin: divergence errors end the run; transport hiccups during
// a handshake just drop that connection attempt.
func fatalJoin(err error) bool {
	return errors.Is(err, errDiverged) || fatal(err)
}

var errDiverged = errors.New("cluster: state diverged")

// fanout sends req(i) to every worker concurrently and returns the
// typed responses. Any failure is joined with its worker attributed;
// the caller classifies and recovers.
func (c *coordinator) fanout(respKind uint64, req func(i int) []uint64) ([]*words.Decoder, error) {
	P := len(c.links)
	decs := make([]*words.Decoder, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := c.links[i]
			if l == nil {
				errs[i] = fmt.Errorf("cluster: worker %d disconnected", i)
				return
			}
			if err := l.Send(req(i)); err != nil {
				errs[i] = fmt.Errorf("cluster: worker %d: %w", i, err)
				return
			}
			msg, err := l.Recv(c.cc.RecvTimeout)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: worker %d: %w", i, err)
				return
			}
			dec, err := expect(msg, respKind)
			if err != nil {
				var we *WorkerError
				if errors.As(err, &we) {
					we.Node = i
				} else {
					err = fmt.Errorf("cluster: worker %d: %w", i, err)
				}
				errs[i] = err
			}
			decs[i] = dec
		}(i)
	}
	wg.Wait()
	return decs, errors.Join(errs...)
}

// runSetup drives the setup barrier (decision record 0). No barrier
// has committed yet, so recovery from any failure here is a full
// reset-and-retry of the setup on every worker.
func (c *coordinator) runSetup() error {
	for attempt := 0; ; attempt++ {
		err := c.trySetup()
		if err == nil {
			return nil
		}
		if fatal(err) || attempt >= c.cc.StepRetries {
			return err
		}
		add(c.replays, 1)
		c.probe("recover", -1)
		if err := c.resetAll(); err != nil {
			return err
		}
	}
}

func (c *coordinator) trySetup() error {
	c.replWait()
	decs, err := c.fanout(msgSetupOut, func(i int) []uint64 { return encodeSetup(c.replReq(i)) })
	if err != nil {
		return err
	}
	stats := make([]disk.Stats, len(decs))
	snaps := make([]*core.NodeSnapshot, len(decs))
	for i, dec := range decs {
		stats[i] = core.DecodeDiskStats(dec)
		snaps[i] = c.stageSnapshot(i, dec)
	}
	c.probe("prepare", -1)
	if err := c.core.CommitSetup(stats); err != nil {
		return err
	}
	c.applySnapshots(snaps)
	c.probe("decided", -1)
	return c.broadcastCommit()
}

// replReq builds worker i's replication piggyback for this barrier's
// phase-one request. The caller must have replWait()ed first so
// Version reflects the previous barrier's landed apply.
func (c *coordinator) replReq(i int) replReq {
	if c.replica == nil {
		return replReq{Base: -1}
	}
	return replReq{Replicate: true, Base: c.replica.Version(i)}
}

// stageSnapshot decodes the optional snapshot tail of worker i's
// phase-one reply. Staged, not applied: only a landed decision record
// promotes it into the replica store.
func (c *coordinator) stageSnapshot(i int, dec *words.Decoder) *core.NodeSnapshot {
	if c.replica == nil {
		return nil
	}
	snap, err := decodeSnapshotTail(dec)
	if err != nil {
		c.replica.Invalidate(i)
		return nil
	}
	return snap
}

// resetAll wipes every worker fresh (live ones via RESET, dead ones
// at rejoin, where the C == 0 handshake resets them).
func (c *coordinator) resetAll() error {
	for i, l := range c.links {
		if l == nil {
			continue
		}
		ok := l.Send(welcome{Reset: true}.encode()) == nil
		if ok {
			msg, err := l.Recv(c.cc.RecvTimeout)
			if err == nil {
				if _, err := expect(msg, msgWelcomeOut); err != nil {
					if fatal(err) {
						return err
					}
					ok = false
				}
			} else {
				ok = false
			}
		}
		if !ok {
			l.Close()
			c.links[i] = nil
		}
	}
	return c.reacquire()
}

// reacquire restores every empty worker slot: trigger the respawn
// hook and absorb rejoins until the roster is complete.
func (c *coordinator) reacquire() error {
	if c.cc.Respawn != nil {
		for i, l := range c.links {
			if l == nil {
				if err := c.cc.Respawn(i); err != nil {
					return fmt.Errorf("cluster: respawn worker %d: %w", i, err)
				}
			}
		}
	}
	return c.gatherAll()
}

// runStep drives one compound superstep with abort-and-replay
// recovery: any transport failure before the decision record lands
// aborts the attempt everywhere and replays it; failures after the
// decision only delay the commit broadcast, never the outcome.
func (c *coordinator) runStep(step int) (halted bool, err error) {
	for attempt := 0; ; attempt++ {
		halted, err = c.tryStep(step)
		if err == nil {
			return halted, nil
		}
		if fatal(err) || attempt >= c.cc.StepRetries {
			return false, err
		}
		add(c.replays, 1)
		c.probe("recover", step)
		if err := c.abortStep(); err != nil {
			return false, err
		}
	}
}

// abortStep rolls every participant back to the last committed
// barrier: the coordinator rewinds its accounting, live workers
// reload their journals, dead workers rejoin (their prepared tails
// are presumed aborted by the handshake).
func (c *coordinator) abortStep() error {
	if c.stepOpen {
		c.core.AbortStep()
		c.stepOpen = false
	}
	for i, l := range c.links {
		if l == nil {
			continue
		}
		ok := l.Send(encodeKind(msgAbort)) == nil
		if ok {
			msg, err := l.Recv(c.cc.RecvTimeout)
			if err == nil {
				if _, err := expect(msg, msgAborted); err != nil {
					if fatal(err) {
						return err
					}
					ok = false
				}
			} else {
				ok = false
			}
		}
		if !ok {
			l.Close()
			c.links[i] = nil
		}
	}
	return c.reacquire()
}

func (c *coordinator) tryStep(step int) (halted bool, err error) {
	P := len(c.links)
	c.core.BeginStep()
	c.stepOpen = true
	if _, err := c.fanout(msgOK, func(int) []uint64 {
		return encodeKindStep(msgStepBegin, int64(step))
	}); err != nil {
		return false, err
	}
	for j := 0; j < c.core.Batches(); j++ {
		// Fetching phase.
		decs, err := c.fanout(msgFetchOut, func(int) []uint64 {
			return encodeKindStep(msgFetch, int64(j), int64(step))
		})
		if err != nil {
			return false, err
		}
		outs := make([]fetchOut, P)
		for i, dec := range decs {
			outs[i] = decodeFetchOut(dec)
			if outs[i].Has {
				c.core.AddFetch(i, outs[i].NWords)
			}
		}
		// Computing phase: relay each worker its inbox column.
		decs, err = c.fanout(msgComputeOut, func(dst int) []uint64 {
			in := make([]core.BlockBatch, P)
			for src := 0; src < P; src++ {
				if outs[src].Has {
					in[src] = outs[src].Out[dst]
				}
			}
			return encodeCompute(j, step, in)
		})
		if err != nil {
			return false, err
		}
		bos := make([]*core.BatchOut, P)
		for i, dec := range decs {
			bos[i] = decodeComputeOut(dec)
			c.core.AddBatch(i, bos[i])
			c.core.RecordTraffic(bos[i].Traffic)
		}
		// Writing phase: relay the scattered packets.
		if _, err = c.fanout(msgOK, func(dst int) []uint64 {
			in := make([]core.BlockBatch, P)
			for src := 0; src < P; src++ {
				in[src] = bos[src].Scatter[dst]
			}
			return encodeWrite(j, step, in)
		}); err != nil {
			return false, err
		}
	}
	// Vote.
	decs, err := c.fanout(msgSumOut, func(int) []uint64 { return encodeKind(msgSum) })
	if err != nil {
		return false, err
	}
	var halts, sends int
	var maxOps int64
	for _, dec := range decs {
		s := decodeSumOut(dec)
		halts += s.Halts
		sends += s.Sends
		if s.Ops > maxOps {
			maxOps = s.Ops
		}
	}
	halted, err = c.core.Vote(step, halts, sends)
	if err != nil {
		return false, err // a program bug, not a fault: fatal
	}
	if !halted {
		// Step 2 of Algorithm 3 on every node.
		decs, err := c.fanout(msgRouteOut, func(int) []uint64 {
			return encodeKindStep(msgRoute, int64(step))
		})
		if err != nil {
			return false, err
		}
		maxOps = 0
		for _, dec := range decs {
			if ops := dec.Ints()[0]; ops > maxOps {
				maxOps = ops
			}
		}
	}
	c.core.FinishStep(maxOps)

	// Two-phase commit: PREPARE everywhere, then the decision record,
	// then COMMIT everywhere.
	haltWord := int64(0)
	if halted {
		haltWord = 1
	}
	c.probe("prepare", step)
	barrier := time.Now()
	c.replWait() // the previous barrier's apply had the whole superstep to land
	decs, err = c.fanout(msgPrepared, func(i int) []uint64 {
		return encodePrepare(step, haltWord != 0, c.replReq(i))
	})
	if err != nil {
		return false, err
	}
	snaps := make([]*core.NodeSnapshot, len(decs))
	for i, dec := range decs {
		snaps[i] = c.stageSnapshot(i, dec)
	}
	if err := c.core.CommitStep(step, halted); err != nil {
		return false, err
	}
	c.stepOpen = false
	c.applySnapshots(snaps)
	c.probe("decided", step)
	if err := c.broadcastCommit(); err != nil {
		return false, err
	}
	if c.barrierWait != nil {
		c.barrierWait.Observe(time.Since(barrier).Nanoseconds())
	}
	return halted, nil
}

// broadcastCommit is 2PC phase two: tell every worker the decision
// landed. The decision is already durable — and with replication on,
// the barrier's snapshots (shipped on PREPARED) are already in the
// replica store — so worker deaths here are absorbed without abort: a
// dead worker's rejoin handshake commits its prepared record, and a
// dead worker whose state died with it migrates from the replica.
func (c *coordinator) broadcastCommit() error {
	for {
		_, err := c.fanout(msgCommitted, func(int) []uint64 { return encodeKind(msgCommit) })
		if err == nil {
			return nil
		}
		if fatal(err) {
			return err
		}
		// Drop dead links; rejoining workers reconcile to the
		// committed record, which doubles as their COMMIT.
		for i, l := range c.links {
			if l != nil && l.Err() != nil {
				l.Close()
				c.links[i] = nil
			}
		}
		live := 0
		for _, l := range c.links {
			if l != nil {
				live++
			}
		}
		if live == len(c.links) {
			// Everyone is connected yet the broadcast failed — a
			// protocol error rather than a death; surface it.
			return err
		}
		if err := c.reacquire(); err != nil {
			return err
		}
	}
}

// applySnapshots folds the decided barrier's staged snapshots into
// the replica store. The fsync-heavy disk work runs in a background
// goroutine so it overlaps the next superstep's compute instead of
// sitting on the barrier critical path; at most one apply batch is
// ever in flight (preserving each node's delta chain), and every
// coordinator-side replica read waits for it first (replWait). A
// snapshot that fails to apply just invalidates that node's replica —
// the next PREPARE requests a full snapshot (Version reports -1) — it
// never fails the run.
func (c *coordinator) applySnapshots(snaps []*core.NodeSnapshot) {
	if c.replica == nil {
		return
	}
	c.replWait()
	for _, snap := range snaps {
		if snap != nil {
			add(c.replicaBytes, int64(8*snap.WireWords()))
		}
	}
	c.replApply.Add(1)
	go func() {
		defer c.replApply.Done()
		for i, snap := range snaps {
			if snap == nil {
				continue
			}
			c.replica.Apply(i, snap) //nolint:errcheck // a failed apply leaves the replica invalid, which is the handling
		}
	}()
}

// replWait blocks until the in-flight apply batch (if any) has landed.
// It must precede every coordinator-side touch of the replica store:
// Version reads when building the next barrier's requests, Restorable
// and Load on a migration, and shutdown.
func (c *coordinator) replWait() {
	if c.replica != nil {
		c.replApply.Wait()
	}
}

func (c *coordinator) assemble() (*core.Result, error) {
	decs, err := c.fanout(msgFinalOut, func(int) []uint64 { return encodeKind(msgFinal) })
	if err != nil {
		// The run is fully committed; losing a worker while reading
		// final contexts is recoverable by rejoin and retry.
		if fatal(err) {
			return nil, err
		}
		for i, l := range c.links {
			if l != nil && l.Err() != nil {
				l.Close()
				c.links[i] = nil
			}
		}
		if err := c.reacquire(); err != nil {
			return nil, err
		}
		if decs, err = c.fanout(msgFinalOut, func(int) []uint64 { return encodeKind(msgFinal) }); err != nil {
			return nil, err
		}
	}
	reports := make([]*core.NodeReport, len(decs))
	for i, dec := range decs {
		reports[i] = core.DecodeNodeReport(dec)
	}
	return c.core.Assemble(reports)
}

// shutdown releases every resource; workers (parked spares included)
// get a best-effort SHUTDOWN so join-mode processes exit cleanly.
func (c *coordinator) shutdown() {
	c.replWait() // don't leave a replica apply writing into a dying run
	close(c.closed)
	// Cut loose handshakes still waiting in Recv: their goroutines are
	// in acceptWG and would otherwise hold the shutdown hostage for a
	// full JoinTimeout.
	c.pmu.Lock()
	for l := range c.pending {
		l.Close()
	}
	c.pmu.Unlock()
	byebye := func(l *Link) {
		if l.Send(encodeKind(msgShutdown)) == nil {
			if msg, err := l.Recv(5 * time.Second); err == nil {
				expect(msg, msgBye) //nolint:errcheck
			}
		}
		l.Close()
	}
	for _, l := range c.links {
		if l == nil {
			continue
		}
		byebye(l)
	}
	for _, j := range c.spares {
		if j.link.Err() == nil {
			byebye(j.link)
		} else {
			j.link.Close()
		}
	}
	c.cc.Listener.Close()
	c.acceptWG.Wait()
	// Joins that raced the close and parked in the buffered channel
	// hold live connections; close them so their workers see the end
	// of the run instead of waiting forever for a WELCOME.
	for {
		select {
		case j := <-c.joins:
			byebye(j.link)
		default:
			c.core.Close()
			return
		}
	}
}
