package cluster

// White-box tests for the ReplicaStore: apply/load roundtrips, delta
// discipline, and the crash-marker contract that keeps a torn replica
// from ever being trusted.

import (
	"os"
	"strings"
	"testing"

	"embsp/internal/core"
)

const (
	replD = 2
	replB = 4
)

func replTrack(fill uint64) []uint64 {
	ws := make([]uint64, replB)
	for i := range ws {
		ws[i] = fill + uint64(i)
	}
	return ws
}

func openReplicasTest(t *testing.T) *ReplicaStore {
	t.Helper()
	r, err := OpenReplicas(t.TempDir(), 2, replD, replB)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReplicaApplyLoadRoundtrip(t *testing.T) {
	r := openReplicasTest(t)
	if v := r.Version(0); v != 0 {
		t.Fatalf("fresh replica version %d, want 0", v)
	}
	if r.Restorable(0, 0) {
		t.Fatal("an empty replica must not be restorable (version 0 is pre-setup)")
	}
	full := &core.NodeSnapshot{
		Version: 1, Full: true, Base: -1,
		Manifest: []uint64{7, 11, 13, 17, 19}, // >1 word: pins the meta codec's length accounting
		Tracks: []core.TrackImage{
			{Disk: 0, Track: 0, Payload: replTrack(100)},
			{Disk: 1, Track: 2, Payload: replTrack(200)},
		},
	}
	if err := r.Apply(0, full); err != nil {
		t.Fatal(err)
	}
	// A delta on the matching base: one changed track, one deletion.
	delta := &core.NodeSnapshot{
		Version: 2, Base: 1,
		Manifest: []uint64{7, 11, 23, 29, 31},
		Tracks: []core.TrackImage{
			{Disk: 0, Track: 0, Payload: replTrack(300)},
			{Disk: 1, Track: 2, Payload: nil}, // wiped at barrier 2
		},
	}
	if err := r.Apply(0, delta); err != nil {
		t.Fatal(err)
	}
	if !r.Restorable(0, 2) || r.Restorable(0, 1) {
		t.Fatalf("replica restorable(2)=%v restorable(1)=%v, want true/false", r.Restorable(0, 2), r.Restorable(0, 1))
	}
	snap, err := r.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || !snap.Full {
		t.Fatalf("loaded version %d full=%v, want 2/full", snap.Version, snap.Full)
	}
	if len(snap.Manifest) != 5 || snap.Manifest[4] != 31 {
		t.Fatalf("manifest %v did not survive the meta roundtrip", snap.Manifest)
	}
	if len(snap.Tracks) != 1 || snap.Tracks[0].Disk != 0 || snap.Tracks[0].Track != 0 {
		t.Fatalf("loaded tracks %+v, want exactly the surviving (0,0)", snap.Tracks)
	}
	if got := snap.Tracks[0].Payload[0]; got != 300 {
		t.Fatalf("track (0,0) payload starts %d, want the delta's 300", got)
	}

	// The durable state must survive a reopen (a coordinator restart).
	r2 := &ReplicaStore{root: r.root, p: r.p, d: r.d, b: r.b, nodes: make([]replicaNode, r.p)}
	for i := 0; i < r.p; i++ {
		r2.nodes[i] = r2.assess(i)
	}
	if !r2.Restorable(0, 2) {
		t.Fatalf("reopened replica version %d, want restorable at 2", r2.Version(0))
	}
}

func TestReplicaDeltaBaseMismatch(t *testing.T) {
	r := openReplicasTest(t)
	full := &core.NodeSnapshot{Version: 3, Full: true, Base: -1, Manifest: []uint64{1, 2}}
	if err := r.Apply(0, full); err != nil {
		t.Fatal(err)
	}
	wrong := &core.NodeSnapshot{Version: 5, Base: 4, Manifest: []uint64{1, 2}}
	if err := r.Apply(0, wrong); err == nil {
		t.Fatal("delta on base 4 applied over a replica at 3")
	}
	if r.Version(0) != -1 {
		t.Fatalf("after a refused delta the replica reports version %d, want -1 (invalid)", r.Version(0))
	}
	// A full snapshot re-seeds it.
	if err := r.Apply(0, &core.NodeSnapshot{Version: 5, Full: true, Base: -1, Manifest: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if !r.Restorable(0, 5) {
		t.Fatal("full snapshot did not re-validate the replica")
	}
}

func TestReplicaCrashMarkerInvalidates(t *testing.T) {
	r := openReplicasTest(t)
	full := &core.NodeSnapshot{Version: 2, Full: true, Base: -1, Manifest: []uint64{9}}
	if err := r.Apply(1, full); err != nil {
		t.Fatal(err)
	}
	// Simulate a coordinator that died mid-Apply: the marker survives.
	if err := r.setMarker(1); err != nil {
		t.Fatal(err)
	}
	r2 := &ReplicaStore{root: r.root, p: r.p, d: r.d, b: r.b, nodes: make([]replicaNode, r.p)}
	for i := 0; i < r.p; i++ {
		r2.nodes[i] = r2.assess(i)
	}
	if r2.Version(1) != -1 {
		t.Fatalf("torn replica reports version %d, want -1", r2.Version(1))
	}
	if _, err := r2.Load(1); err == nil {
		t.Fatal("torn replica loaded without complaint")
	}
	// A fresh full apply clears the marker and restores trust.
	if err := r2.Apply(1, full); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(r2.markerPath(1)); err == nil {
		t.Fatal("APPLYING marker survived a clean apply")
	}
	if !r2.Restorable(1, 2) {
		t.Fatal("replica not restorable after recovery apply")
	}
}

func TestReplicaLoadRejectsCorruptTrack(t *testing.T) {
	r := openReplicasTest(t)
	full := &core.NodeSnapshot{
		Version: 1, Full: true, Base: -1, Manifest: []uint64{3},
		Tracks: []core.TrackImage{{Disk: 0, Track: 0, Payload: replTrack(42)}},
	}
	if err := r.Apply(0, full); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk; the slot checksum must catch it.
	path := r.trackPath(0, 0)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[17] ^= 0xff
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt track loaded; err = %v", err)
	}
}

// TestReplicaLoadRejectsStaleTrack simulates the crash the unfsynced
// track-write path is exposed to: a slot holds a self-consistent image
// (magic and slot checksum agree) that is NOT the content the
// published meta table recorded — as when a newer, never-synced write
// survived in the file while the meta rename did not, or vice versa.
// The meta table is the ground truth; Load must refuse.
func TestReplicaLoadRejectsStaleTrack(t *testing.T) {
	r := openReplicasTest(t)
	full := &core.NodeSnapshot{
		Version: 1, Full: true, Base: -1, Manifest: []uint64{3},
		Tracks: []core.TrackImage{{Disk: 0, Track: 0, Payload: replTrack(42)}},
	}
	if err := r.Apply(0, full); err != nil {
		t.Fatal(err)
	}
	// Overwrite the slot with a different payload whose slot header is
	// internally consistent — only the meta table can tell it apart.
	stale := &core.NodeSnapshot{
		Version: 9, Full: true, Base: -1, Manifest: []uint64{3},
		Tracks: []core.TrackImage{{Disk: 0, Track: 0, Payload: replTrack(1000)}},
	}
	if err := r.applyTracks(0, stale, map[trackKey]uint64{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("stale-but-self-consistent track loaded; err = %v", err)
	}
}

func TestReplicaRejectsUncommittedSnapshot(t *testing.T) {
	r := openReplicasTest(t)
	if err := r.Apply(0, &core.NodeSnapshot{Version: 0, Full: true, Base: -1}); err == nil {
		t.Fatal("snapshot with no committed barrier applied")
	}
}
