package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/words"
)

// Worker is one real processor of a cluster run: a core.NodeEngine
// over its own state directory, serving the coordinator's lockstep
// requests. It never initiates anything except the HELLO handshake;
// after that the coordinator speaks first and the worker answers. A
// worker that loses its connection exits Serve with the error — the
// process around it decides whether to redial (join mode) or die and
// be respawned (spawn mode). Either way its journal carries the
// barrier state, so the rejoin handshake reconciles it exactly.
type Worker struct {
	Prog   bsp.Program
	Cfg    core.MachineConfig
	Opts   core.Options
	NodeID int
	Dir    string

	// Spare marks a worker that owns no node yet: it joins with
	// NodeID -1, parks at the coordinator, and only becomes node i when
	// a RESTORE assigns it a lost worker's replica.
	Spare bool

	// Secret, when the coordinator requires join authentication, is the
	// shared secret answering its HMAC challenge.
	Secret string

	// Probe, when set, is called at phase boundaries ("computed",
	// "prepared", "committed" — after the engine op, before the
	// response is sent). Crash tests use it to die in the windows the
	// 2PC must survive.
	Probe func(phase string, step int)

	engine *core.NodeEngine
}

func (w *Worker) probe(phase string, step int) {
	if w.Probe != nil {
		w.Probe(phase, step)
	}
}

// Open opens the worker's engine, resuming from the node journal when
// one exists (the respawn path) and starting fresh otherwise.
func (w *Worker) Open() error {
	if w.engine != nil {
		return nil
	}
	resume := false
	if _, err := os.Stat(filepath.Join(w.Dir, "journal.wal")); err == nil {
		resume = true
	}
	eng, err := core.OpenNode(w.Prog, w.Cfg, w.Opts, w.NodeID, w.Dir, resume)
	if err != nil {
		return err
	}
	w.engine = eng
	return nil
}

// Close releases the engine.
func (w *Worker) Close() error {
	if w.engine == nil {
		return nil
	}
	err := w.engine.Close()
	w.engine = nil
	return err
}

// reset wipes the node's state directory and reopens fresh — the
// coordinator's verdict when no barrier has ever committed.
func (w *Worker) reset() error {
	if w.engine != nil {
		w.engine.Close()
		w.engine = nil
	}
	if err := os.RemoveAll(w.Dir); err != nil {
		return err
	}
	if err := os.MkdirAll(w.Dir, 0o755); err != nil {
		return err
	}
	eng, err := core.OpenNode(w.Prog, w.Cfg, w.Opts, w.NodeID, w.Dir, false)
	if err != nil {
		return err
	}
	w.engine = eng
	return nil
}

// restore re-materializes node id from a replica snapshot — the
// migration path. Whatever state this worker held before (a wiped
// fresh open, a diverged journal, or nothing at all for a spare) is
// discarded; the directory is rebuilt from the snapshot.
func (w *Worker) restore(id int, snap *core.NodeSnapshot) error {
	if !w.Spare && id != w.NodeID {
		return fmt.Errorf("cluster: worker %d told to restore node %d", w.NodeID, id)
	}
	if w.engine != nil {
		w.engine.Close()
		w.engine = nil
	}
	eng, err := core.AdoptNode(w.Prog, w.Cfg, w.Opts, id, w.Dir, snap)
	if err != nil {
		return err
	}
	w.engine = eng
	w.NodeID = id
	w.Spare = false // from here on it is node id, redials and all
	return nil
}

func (w *Worker) welcomeOut() []uint64 {
	return welcomeOut{
		Committed: w.engine.Committed(),
		StepsDone: w.engine.StepsDone(),
		Halted:    w.engine.Halted(),
	}.encode()
}

// Serve runs the worker's side of the protocol over link until the
// coordinator says SHUTDOWN (returns nil) or the link dies (returns
// the error). The engine must be Open.
func (w *Worker) Serve(link *Link) error {
	var h hello
	if w.Spare {
		// A spare owns nothing until a RESTORE arrives; its hello is
		// just a parking request.
		h = hello{NodeID: -1, Spare: true}
	} else {
		if err := w.Open(); err != nil {
			return err
		}
		h = hello{
			NodeID:     w.NodeID,
			Committed:  w.engine.Committed(),
			HasPending: w.engine.HasPending(),
			Fpr:        w.engine.Fingerprint(),
		}
	}
	if err := link.Send(h.encode()); err != nil {
		return err
	}
	for {
		msg, err := link.Recv(0)
		if err != nil {
			return err
		}
		resp, done := w.handle(msg)
		if err := link.Send(resp); err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// handle performs one request and builds the response. Engine errors
// become ERR responses — the coordinator classifies them; the worker
// keeps serving.
func (w *Worker) handle(msg []uint64) (resp []uint64, done bool) {
	dec := words.NewDecoder(msg)
	kind := dec.Uint()
	fail := func(err error) ([]uint64, bool) { return encodeErr(err), false }
	if w.engine == nil {
		// A parked spare can only authenticate, adopt a node, or leave.
		switch kind {
		case msgChallenge, msgRestore, msgShutdown:
		default:
			return fail(fmt.Errorf("cluster: spare worker got %s before RESTORE", msgName(kind)))
		}
	}
	switch kind {
	case msgChallenge:
		return encodeAuth(authMAC(w.Secret, dec.Uints())), false
	case msgRestore:
		id := int(dec.Int())
		snap, err := core.DecodeSnapshot(dec)
		if err != nil {
			return fail(err)
		}
		if err := w.restore(id, snap); err != nil {
			return fail(err)
		}
		return w.welcomeOut(), false
	case msgReset:
		if err := w.reset(); err != nil {
			return fail(err)
		}
		return w.welcomeOut(), false
	case msgWelcome:
		commit := dec.Bool()
		if w.engine.HasPending() {
			if err := w.engine.ResolvePending(commit); err != nil {
				return fail(err)
			}
		}
		// Reload rather than a bare load: a reconnecting worker may
		// carry a half-run superstep in memory and on disk; reopening
		// from the journal discards every trace of it.
		if err := w.engine.Reload(); err != nil {
			return fail(err)
		}
		return w.welcomeOut(), false
	case msgSetup:
		req := decodeReplReq(dec)
		if err := w.engine.Setup(); err != nil {
			return fail(err)
		}
		stats, err := w.engine.PrepareSetup()
		if err != nil {
			return fail(err)
		}
		var snap *core.NodeSnapshot
		if req.Replicate {
			if snap, err = w.engine.ExportSnapshot(req.Base); err != nil {
				return fail(err)
			}
		}
		return encodeSetupOut(stats, snap), false
	case msgStepBegin:
		w.engine.BeginStep()
		return encodeKind(msgOK), false
	case msgFetch:
		f := dec.Ints()
		out, nwords, err := w.engine.Fetch(int(f[0]), int(f[1]))
		if err != nil {
			return fail(err)
		}
		return fetchOut{Has: out != nil, Out: out, NWords: nwords}.encode(), false
	case msgCompute:
		f := dec.Ints()
		in := decodeBatches(dec)
		bo, err := w.engine.Compute(int(f[0]), int(f[1]), in)
		if err != nil {
			return fail(err)
		}
		w.probe("computed", int(f[1]))
		return encodeComputeOut(bo), false
	case msgWrite:
		f := dec.Ints()
		in := decodeBatches(dec)
		if err := w.engine.Write(int(f[0]), int(f[1]), in); err != nil {
			return fail(err)
		}
		return encodeKind(msgOK), false
	case msgSum:
		halts, sends := w.engine.StepTotals()
		return sumOut{Halts: halts, Sends: sends, Ops: w.engine.StepOps()}.encode(), false
	case msgRoute:
		step := int(dec.Ints()[0])
		if err := w.engine.Route(step); err != nil {
			return fail(err)
		}
		return encodeKindStep(msgRouteOut, w.engine.StepOps()), false
	case msgPrepare:
		f := dec.Ints()
		req := decodeReplReq(dec)
		step := int(f[0])
		if err := w.engine.Prepare(step, f[1] != 0); err != nil {
			return fail(err)
		}
		w.probe("prepared", step)
		var snap *core.NodeSnapshot
		if req.Replicate {
			var err error
			if snap, err = w.engine.ExportSnapshot(req.Base); err != nil {
				return fail(err)
			}
		}
		return encodePrepared(snap), false
	case msgCommit:
		// Idempotent: a worker that reconciled at rejoin has already
		// committed; the broadcast's retry must still succeed.
		if w.engine.HasPending() {
			if err := w.engine.Commit(); err != nil {
				return fail(err)
			}
		}
		w.probe("committed", w.engine.StepsDone()-1)
		return encodeKind(msgCommitted), false
	case msgAbort:
		if err := w.engine.Reload(); err != nil {
			return fail(err)
		}
		return encodeKind(msgAborted), false
	case msgFinal:
		r, err := w.engine.Final()
		if err != nil {
			return fail(err)
		}
		return encodeFinalOut(r), false
	case msgShutdown:
		return encodeKind(msgBye), true
	}
	return fail(fmt.Errorf("cluster: worker %d: unexpected %s", w.NodeID, msgName(kind)))
}

// Run dials the coordinator and serves; with redial true it keeps
// reconnecting (with backoff) after connection loss until SHUTDOWN,
// which is the join-mode worker's whole life cycle.
func (w *Worker) Run(addr string, redial bool, lc LinkConfig) error {
	incarnation := lc.Epoch
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			if !redial || attempt > 60 {
				return err
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		// Each established connection is a new incarnation: the fault
		// plan's link streams re-key, so an injected death of epoch e
		// spares the replacement, exactly like a replaced machine.
		lc.Epoch = incarnation
		incarnation++
		link := NewLink(conn, lc)
		err = w.Serve(link)
		link.Close()
		if err == nil {
			return nil
		}
		if !redial {
			return err
		}
		attempt = 0
		time.Sleep(500 * time.Millisecond)
	}
}
