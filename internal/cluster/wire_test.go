package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"embsp/internal/fault"
	"embsp/internal/obs"
)

func TestFrameRoundtrip(t *testing.T) {
	frames := []frame{
		{kind: frameData, seq: 1, payload: nil},
		{kind: frameData, seq: 2, payload: []uint64{0}},
		{kind: frameAck, seq: 3, payload: nil},
		{kind: frameData, seq: 1 << 40, payload: []uint64{1, ^uint64(0), 42, 7}},
	}
	var buf []byte
	for _, f := range frames {
		buf = appendFrame(nil, f)
		br := bufio.NewReader(bytes.NewReader(buf))
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("readFrame(%+v): %v", f, err)
		}
		if got.kind != f.kind || got.seq != f.seq {
			t.Fatalf("roundtrip header: got %+v, want %+v", got, f)
		}
		if len(got.payload) != len(f.payload) || (len(f.payload) > 0 && !reflect.DeepEqual(got.payload, f.payload)) {
			t.Fatalf("roundtrip payload: got %v, want %v", got.payload, f.payload)
		}
	}
}

// A corrupted frame must be rejected by checksum AND fully consumed,
// so the following frame still parses: the ARQ depends on the stream
// staying frame-aligned after a rejection.
func TestFrameChecksumRejectKeepsAlignment(t *testing.T) {
	good := frame{kind: frameData, seq: 9, payload: []uint64{5, 6, 7}}
	bad := appendFrame(nil, frame{kind: frameData, seq: 8, payload: []uint64{1, 2}})
	bad[frameHeaderBytes] ^= 0xff // corrupt first payload byte
	stream := append(append([]byte{}, bad...), appendFrame(nil, good)...)

	br := bufio.NewReader(bytes.NewReader(stream))
	if _, err := readFrame(br); err != errChecksum {
		t.Fatalf("corrupt frame: got err %v, want errChecksum", err)
	}
	got, err := readFrame(br)
	if err != nil {
		t.Fatalf("frame after corruption: %v", err)
	}
	if got.seq != good.seq || !reflect.DeepEqual(got.payload, good.payload) {
		t.Fatalf("stream desynchronized after checksum reject: got %+v", got)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	buf := appendFrame(nil, frame{kind: frameData, seq: 1, payload: []uint64{1}})
	// Forge an absurd payload length in the header.
	buf[0], buf[1], buf[2], buf[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); err == nil || err == errChecksum {
		t.Fatalf("oversize frame: got %v, want hard error", err)
	}
}

// linkPair builds two Links over an in-memory connection.
func linkPair(t *testing.T, plan fault.NetPlan, ackTimeout time.Duration, m *obs.Registry) (*Link, *Link) {
	t.Helper()
	ca, cb := net.Pipe()
	a := NewLink(ca, LinkConfig{Self: 0, Peer: 1, Plan: plan, BackoffSeed: 1, AckTimeout: ackTimeout, Metrics: m})
	b := NewLink(cb, LinkConfig{Self: 1, Peer: 0, Plan: plan, BackoffSeed: 2, AckTimeout: ackTimeout, Metrics: m})
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestLinkLockstepClean(t *testing.T) {
	a, b := linkPair(t, fault.NetPlan{}, 0, nil)
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			msg, err := b.Recv(5 * time.Second)
			if err != nil {
				errc <- err
				return
			}
			if err := b.Send([]uint64{msg[0] * 2}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < 50; i++ {
		if err := a.Send([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
		resp, err := a.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] != uint64(2*i) {
			t.Fatalf("round %d: got %d, want %d", i, resp[0], 2*i)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// Under heavy injected drop/duplicate/delay on both directions the ARQ
// must still deliver every message exactly once, in order.
func TestLinkLockstepUnderFaults(t *testing.T) {
	plan := fault.NetPlan{
		Seed: 99, DropRate: 0.3, DupRate: 0.2,
		DelayRate: 0.1, Delay: time.Millisecond,
		CleanAfter: 4,
	}
	reg := obs.NewRegistry()
	a, b := linkPair(t, plan, 25*time.Millisecond, reg)
	const rounds = 40
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			msg, err := b.Recv(10 * time.Second)
			if err != nil {
				errc <- fmt.Errorf("server round %d: %w", i, err)
				return
			}
			if msg[0] != uint64(i) {
				errc <- fmt.Errorf("server round %d: got %d", i, msg[0])
				return
			}
			if err := b.Send([]uint64{msg[0] + 100}); err != nil {
				errc <- fmt.Errorf("server round %d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < rounds; i++ {
		if err := a.Send([]uint64{uint64(i)}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		resp, err := a.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if resp[0] != uint64(i+100) {
			t.Fatalf("round %d: got %d, want %d", i, resp[0], i+100)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if reg.Counter("cluster_faults_injected").Value() == 0 {
		t.Fatal("fault plan injected nothing; the test exercised no recovery")
	}
	if reg.Counter("cluster_retries").Value() == 0 {
		t.Fatal("no retransmissions under a 30% drop plan; ARQ untested")
	}
}

func TestLinkRetryBound(t *testing.T) {
	// Drop every data frame forever: Send must give up after its retry
	// bound instead of hanging.
	plan := fault.NetPlan{Seed: 1, DropRate: 1.0}
	ca, cb := net.Pipe()
	a := NewLink(ca, LinkConfig{Self: 0, Peer: 1, Plan: plan, AckTimeout: 5 * time.Millisecond, Retries: 3})
	b := NewLink(cb, LinkConfig{Self: 1, Peer: 0})
	defer a.Close()
	defer b.Close()
	if err := a.Send([]uint64{1}); err == nil {
		t.Fatal("Send with all frames dropped: want error, got nil")
	}
}
