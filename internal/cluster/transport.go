package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"embsp/internal/fault"
	"embsp/internal/jobs"
	"embsp/internal/obs"
	"embsp/internal/prng"
)

// LostError reports a peer the transport or coordinator considers
// permanently lost — a heartbeat timeout, an exhausted retransmission
// budget, or a liveness deadline — as opposed to an orderly close or
// a fatal protocol divergence. The coordinator treats it as the
// trigger for migration: abort the step, and re-seed the node from
// the replica if its own state never comes back.
type LostError struct {
	Peer   int
	Reason string
}

func (e *LostError) Error() string {
	return fmt.Sprintf("cluster: peer %d lost: %s", e.Peer, e.Reason)
}

// Link is a reliable, deduplicating message channel over one TCP
// connection: stop-and-wait ARQ with per-message deadlines, bounded
// retries, and deterministic exponential backoff between
// retransmissions. The cluster protocol is strict request/response
// lockstep, so one outstanding message per direction is exactly the
// pipelining it needs, and keeps the retransmission state trivial to
// reason about under injected faults.
//
// A fault.NetPlan is applied *below* the ARQ on this endpoint's own
// writes — data frames and ACKs both — so drops, delays, and
// duplicates exercise the retransmission and dedup machinery rather
// than bypassing it. Sequence numbers are per connection and start at
// 1; the receiver re-ACKs anything at or below its delivered
// watermark and rejects gaps (the lockstep protocol never has any).
type Link struct {
	conn net.Conn
	wmu  sync.Mutex // serializes whole-frame writes (protocol, pings, pongs)
	wbuf []byte     // guarded by wmu

	self  int
	peer  atomic.Int64 // settable post-handshake (SetPeer) while pings fly
	epoch atomic.Int64
	plan  fault.NetPlan
	seed  uint64

	ackTimeout time.Duration
	retries    int

	sendSeq uint64 // last sequence successfully ACKed by the peer
	recvSeq uint64 // last sequence delivered to the caller
	ackN    int    // times recvSeq has been ACKed (fault-stream clock)
	stash   *frame // data frame consumed by Send as an implicit ACK

	hbInterval time.Duration
	hbTimeout  time.Duration
	lastRecv   atomic.Int64 // UnixNano of the last intact frame read
	pingSeq    uint64       // heartbeat goroutine only

	in      chan frame
	done    chan struct{}
	errOnce sync.Once
	err     error

	txFrames, txBytes  *obs.Counter
	rxFrames, rxBytes  *obs.Counter
	retriesC, injected *obs.Counter
	checksumRejects    *obs.Counter
	hbMisses           *obs.Counter
}

// LinkConfig configures a Link. Self and Peer are the endpoint ids
// used to key the fault plan's per-direction streams (workers use
// their node id; the coordinator uses P).
type LinkConfig struct {
	Self, Peer  int
	Plan        fault.NetPlan
	BackoffSeed uint64
	// Epoch counts connection incarnations between the same endpoints
	// (first dial 0, first redial 1, ...). It keys the fault plan —
	// both the per-epoch rate streams and LinkDeath specs — so an
	// injected permanent death of epoch e spares the replacement
	// connection, exactly like a replaced machine.
	Epoch int
	// AckTimeout is how long a sent frame waits for its ACK before it
	// is retransmitted (default 250ms).
	AckTimeout time.Duration
	// Retries bounds retransmissions per message (default 10).
	Retries int
	// Heartbeat, when positive, pings the peer whenever the link has
	// been idle that long, and declares the peer lost (a *LostError
	// ends the link) after HeartbeatTimeout of silence. Zero disables
	// keep-alives: an idle link then blocks forever, as before PR 8.
	Heartbeat time.Duration
	// HeartbeatTimeout is the silence span that kills the link
	// (default 4× Heartbeat).
	HeartbeatTimeout time.Duration
	// Metrics receives the comm counters (nil for none).
	Metrics *obs.Registry
}

// ackBit keys ACK fates into a fault stream distinct from their data
// frame's.
const ackBit = uint64(1) << 63

// SetPeer fixes the peer's id once the handshake reveals it (the
// coordinator cannot know which worker dialed until HELLO arrives).
func (l *Link) SetPeer(id int) { l.peer.Store(int64(id)) }

// SetEpoch fixes the connection-incarnation number once the handshake
// reveals which worker (and therefore which incarnation) this is.
func (l *Link) SetEpoch(e int) { l.epoch.Store(int64(e)) }

func (l *Link) peerID() int { return int(l.peer.Load()) }
func (l *Link) epochN() int { return int(l.epoch.Load()) }

// NewLink wraps conn. The Link owns the connection: Close closes it.
func NewLink(conn net.Conn, cfg LinkConfig) *Link {
	if tc, ok := conn.(*net.TCPConn); ok {
		// Snapshot-bearing frames (PREPARED with a replica delta) run to
		// hundreds of kilobytes; with default socket buffers one Send
		// blocks and wakes through the netpoller several times per
		// frame. Buffers sized past the largest routine frame let a
		// whole frame land in one write.
		tc.SetWriteBuffer(1 << 20) //nolint:errcheck // best-effort tuning
		tc.SetReadBuffer(1 << 20)  //nolint:errcheck
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 250 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 10
	}
	l := &Link{
		conn:       conn,
		self:       cfg.Self,
		plan:       cfg.Plan,
		seed:       cfg.BackoffSeed,
		ackTimeout: cfg.AckTimeout,
		retries:    cfg.Retries,
		hbInterval: cfg.Heartbeat,
		hbTimeout:  cfg.HeartbeatTimeout,
		in:         make(chan frame, 64),
		done:       make(chan struct{}),
	}
	l.peer.Store(int64(cfg.Peer))
	l.epoch.Store(int64(cfg.Epoch))
	if l.hbInterval > 0 && l.hbTimeout <= 0 {
		l.hbTimeout = 4 * l.hbInterval
	}
	m := cfg.Metrics
	l.txFrames = counter(m, "cluster_tx_frames")
	l.txBytes = counter(m, "cluster_tx_bytes")
	l.rxFrames = counter(m, "cluster_rx_frames")
	l.rxBytes = counter(m, "cluster_rx_bytes")
	l.retriesC = counter(m, "cluster_retries")
	l.injected = counter(m, "cluster_faults_injected")
	l.checksumRejects = counter(m, "cluster_checksum_rejects")
	l.hbMisses = counter(m, "cluster_heartbeat_misses")
	l.lastRecv.Store(time.Now().UnixNano())
	go l.readLoop()
	if l.hbInterval > 0 {
		go l.heartbeat()
	}
	return l
}

// heartbeat keeps an idle link honest: a ping whenever nothing has
// arrived for an interval, and a *LostError (plus connection close, so
// every blocked goroutine wakes) after hbTimeout of silence. Protocol
// traffic counts as liveness — a busy link never pings.
func (l *Link) heartbeat() {
	t := time.NewTicker(l.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
		}
		idle := time.Duration(time.Now().UnixNano() - l.lastRecv.Load())
		if idle >= l.hbTimeout {
			add(l.hbMisses, 1)
			l.fail(&LostError{Peer: l.peerID(), Reason: fmt.Sprintf("no frame for %v (heartbeat timeout %v)", idle.Round(time.Millisecond), l.hbTimeout)})
			l.conn.Close()
			return
		}
		if idle >= l.hbInterval {
			l.pingSeq++
			l.writeFrame(framePing, l.pingSeq, nil, 0) //nolint:errcheck // the timeout above is the error path
		}
	}
}

func counter(m *obs.Registry, name string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Counter(name)
}

func add(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// readLoop is the connection's only reader: frames never race a
// deadline mid-read, so the stream cannot desynchronize. Checksum
// failures are consumed and dropped (the sender retransmits); real
// errors end the link.
func (l *Link) readLoop() {
	br := bufio.NewReaderSize(l.conn, 1<<16)
	for {
		f, err := readFrame(br)
		if err == errChecksum {
			add(l.checksumRejects, 1)
			continue
		}
		if err != nil {
			l.fail(err)
			return
		}
		add(l.rxFrames, 1)
		add(l.rxBytes, int64(frameHeaderBytes+8*len(f.payload)+frameChecksumSize))
		l.lastRecv.Store(time.Now().UnixNano())
		switch f.kind {
		case framePing:
			l.writeFrame(framePong, f.seq, nil, 0) //nolint:errcheck // peer's heartbeat timeout is the error path
			continue
		case framePong:
			continue // lastRecv already refreshed — that is the point
		}
		select {
		case l.in <- f:
		case <-l.done:
			return
		}
	}
}

func (l *Link) fail(err error) {
	l.errOnce.Do(func() {
		l.err = err
		close(l.done)
	})
}

// Err returns the error that ended the link, if any.
func (l *Link) Err() error {
	select {
	case <-l.done:
		return l.err
	default:
		return nil
	}
}

// Close tears the link down and closes the connection.
func (l *Link) Close() error {
	l.fail(fmt.Errorf("cluster: link closed"))
	return l.conn.Close()
}

// writeFrame sends one frame through the fault plan: a dropped frame
// is simply not written (the ARQ recovers it), a delayed one is held,
// a duplicated one is written twice back to back.
func (l *Link) writeFrame(kind byte, seq uint64, payload []uint64, attempt int) error {
	peer, epoch := l.peerID(), l.epochN()
	if kind == framePing || kind == framePong {
		// Keep-alives have their own sequence counter; on a dying link
		// they stop entirely (they are what detects the death).
		if l.plan.DeadLink(l.self, peer, epoch) {
			add(l.injected, 1)
			return nil
		}
	} else if l.plan.Dead(l.self, peer, epoch, seq) {
		add(l.injected, 1)
		return nil // permanently dead: nothing ever leaves this endpoint
	}
	key := seq
	if kind == frameAck {
		key |= ackBit
	}
	link := fault.Link(l.self, peer)
	if epoch > 0 {
		// Re-key the rate-fault streams per connection incarnation so a
		// redialed link draws fresh fates (sequence numbers restart).
		link = prng.Derive(link, uint64(epoch))
	}
	d := l.plan.Decide(link, key, attempt)
	if d.Drop {
		add(l.injected, 1)
		return nil
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if d.Delay > 0 {
		add(l.injected, 1)
		time.Sleep(d.Delay)
	}
	writes := 1
	if d.Duplicate {
		add(l.injected, 1)
		writes = 2
	}
	l.wbuf = appendFrame(l.wbuf, frame{kind: kind, seq: seq, payload: payload})
	for ; writes > 0; writes-- {
		if _, err := l.conn.Write(l.wbuf); err != nil {
			l.fail(err)
			return err
		}
		add(l.txFrames, 1)
		add(l.txBytes, int64(len(l.wbuf)))
	}
	return nil
}

func (l *Link) ack(seq uint64) error {
	if seq == l.recvSeq {
		l.ackN++
	}
	return l.writeFrame(frameAck, seq, nil, l.ackN-1)
}

// Send delivers msg to the peer, retransmitting on ACK timeout with
// jobs.BackoffDelay between attempts, up to the retry bound. Stale
// duplicate data arriving while the ACK is awaited is re-ACKed (the
// peer is retransmitting because our ACK was lost).
func (l *Link) Send(msg []uint64) error {
	seq := l.sendSeq + 1
	for attempt := 0; attempt <= l.retries; attempt++ {
		if attempt > 0 {
			add(l.retriesC, 1)
			time.Sleep(jobs.BackoffDelay(l.seed^seq, attempt))
		}
		if err := l.writeFrame(frameData, seq, msg, attempt); err != nil {
			return err
		}
		timer := time.NewTimer(l.ackTimeout)
	wait:
		for {
			select {
			case f := <-l.in:
				if f.kind == frameAck {
					if f.seq == seq {
						timer.Stop()
						l.sendSeq = seq
						return nil
					}
					continue // stale ACK of an older message
				}
				if f.seq <= l.recvSeq {
					if err := l.ack(f.seq); err != nil {
						return err
					}
					continue
				}
				if f.seq == l.recvSeq+1 {
					// The peer's *response* arrived while our ACK was
					// still pending: under lockstep it can only have
					// been sent after our message was delivered, so it
					// is an implicit ACK. Complete the send and stash
					// the frame for the next Recv.
					timer.Stop()
					l.sendSeq = seq
					l.stash = &f
					return nil
				}
				timer.Stop()
				return fmt.Errorf("cluster: peer %d sent data seq %d while seq %d unacknowledged", l.peerID(), f.seq, seq)
			case <-timer.C:
				break wait
			case <-l.done:
				timer.Stop()
				return l.err
			}
		}
	}
	return &LostError{Peer: l.peerID(), Reason: fmt.Sprintf("no ACK for message %d after %d attempts", seq, l.retries+1)}
}

// Recv waits up to timeout for the next message, re-ACKing duplicates
// of already-delivered frames. timeout <= 0 waits forever.
func (l *Link) Recv(timeout time.Duration) ([]uint64, error) {
	if f := l.stash; f != nil {
		l.stash = nil
		l.recvSeq = f.seq
		l.ackN = 0
		if err := l.ack(f.seq); err != nil {
			return nil, err
		}
		return f.payload, nil
	}
	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	for {
		select {
		case f := <-l.in:
			if f.kind == frameAck {
				continue // stale ACK (our last send already completed)
			}
			if f.seq <= l.recvSeq {
				if err := l.ack(f.seq); err != nil {
					return nil, err
				}
				continue
			}
			if f.seq != l.recvSeq+1 {
				return nil, fmt.Errorf("cluster: peer %d jumped from seq %d to %d", l.peerID(), l.recvSeq, f.seq)
			}
			l.recvSeq = f.seq
			l.ackN = 0
			if err := l.ack(f.seq); err != nil {
				return nil, err
			}
			return f.payload, nil
		case <-expire:
			return nil, fmt.Errorf("cluster: no message from peer %d within %v", l.peerID(), timeout)
		case <-l.done:
			return nil, l.err
		}
	}
}
