package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"embsp/internal/core"
	"embsp/internal/disk"
	"embsp/internal/words"
)

// The cluster protocol is strict request/response lockstep: the
// coordinator sends one request per worker per phase and waits for
// the typed response before the phase barrier. Every message is a
// word vector whose first word is the kind; payloads are encoded with
// internal/words, the same codec the manifests use.
//
// One compound superstep, coordinator's view (per worker, phases
// fanned out concurrently, folded in node order):
//
//	STEP_BEGIN → OK
//	per batch j:  FETCH → FETCH_OUT      (blocks by destination + word counts)
//	              COMPUTE → COMPUTE_OUT  (scattered packets + traffic)
//	              WRITE → OK
//	SUM → SUM_OUT                        (halt votes, sends, I/O ops)
//	if not halting:  ROUTE → ROUTE_OUT   (ops after reorganization)
//	PREPARE → PREPARED                   (2PC phase one: journal fsynced;
//	                                      with replication on, PREPARED
//	                                      carries the barrier snapshot)
//	-- coordinator appends its decision record,
//	   then folds the staged snapshots into the replica store --
//	COMMIT → COMMITTED                   (2PC phase two: HEAD advanced)
//
// A worker that cannot perform a request answers ERR; the coordinator
// turns it into an abort (pre-decision) or a fatal run error.
const (
	msgHello uint64 = iota + 1
	msgWelcome
	msgWelcomeOut
	msgReset
	msgSetup
	msgSetupOut
	msgStepBegin
	msgFetch
	msgFetchOut
	msgCompute
	msgComputeOut
	msgWrite
	msgSum
	msgSumOut
	msgRoute
	msgRouteOut
	msgPrepare
	msgPrepared
	msgCommit
	msgCommitted
	msgAbort
	msgAborted
	msgFinal
	msgFinalOut
	msgShutdown
	msgBye
	msgOK
	msgErr
	// PR 8 extensions. New kinds must append here — the values above
	// are load-bearing for mixed-version debugging of captures.
	msgChallenge // coordinator → worker: HMAC nonce (join authentication)
	msgAuth      // worker → coordinator: HMAC-SHA256(secret, nonce)
	msgRestore   // coordinator → worker: adopt this node from a replica snapshot
)

func msgName(k uint64) string {
	names := map[uint64]string{
		msgHello: "HELLO", msgWelcome: "WELCOME", msgWelcomeOut: "WELCOME_OUT",
		msgReset: "RESET", msgSetup: "SETUP", msgSetupOut: "SETUP_OUT",
		msgStepBegin: "STEP_BEGIN", msgFetch: "FETCH", msgFetchOut: "FETCH_OUT",
		msgCompute: "COMPUTE", msgComputeOut: "COMPUTE_OUT", msgWrite: "WRITE",
		msgSum: "SUM", msgSumOut: "SUM_OUT", msgRoute: "ROUTE", msgRouteOut: "ROUTE_OUT",
		msgPrepare: "PREPARE", msgPrepared: "PREPARED", msgCommit: "COMMIT",
		msgCommitted: "COMMITTED", msgAbort: "ABORT", msgAborted: "ABORTED",
		msgFinal: "FINAL", msgFinalOut: "FINAL_OUT", msgShutdown: "SHUTDOWN",
		msgBye: "BYE", msgOK: "OK", msgErr: "ERR",
		msgChallenge: "CHALLENGE", msgAuth: "AUTH", msgRestore: "RESTORE",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("msg(%d)", k)
}

func putString(enc *words.Encoder, s string) {
	b := []byte(s)
	enc.PutInt(int64(len(b)))
	for len(b) > 0 {
		var w uint64
		n := len(b)
		if n > 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			w |= uint64(b[i]) << (8 * i)
		}
		enc.PutUint(w)
		b = b[n:]
	}
}

func getString(dec *words.Decoder) string {
	n := int(dec.Int())
	b := make([]byte, 0, n)
	for len(b) < n {
		w := dec.Uint()
		for i := 0; i < 8 && len(b) < n; i++ {
			b = append(b, byte(w>>(8*i)))
		}
	}
	return string(b)
}

// hello is the worker's opening message: who it is and where its
// journal stands, for the coordinator's 2PC reconciliation. A spare
// (NodeID -1, Spare true) owns no node yet; it parks until the
// coordinator assigns it a lost node via RESTORE.
type hello struct {
	NodeID     int
	Committed  int
	HasPending bool
	Fpr        uint64
	Spare      bool
}

func (h hello) encode() []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgHello)
	enc.PutInts([]int64{int64(h.NodeID), int64(h.Committed)})
	enc.PutBool(h.HasPending)
	enc.PutUint(h.Fpr)
	enc.PutBool(h.Spare)
	return enc.Words()
}

func decodeHello(dec *words.Decoder) hello {
	f := dec.Ints()
	h := hello{
		NodeID: int(f[0]), Committed: int(f[1]),
		HasPending: dec.Bool(), Fpr: dec.Uint(),
	}
	if dec.Remaining() > 0 {
		h.Spare = dec.Bool()
	}
	return h
}

// welcome is the coordinator's reconciliation verdict: either reset
// (wipe and start fresh) or resolve — commit or abort any prepared
// tail, then reload the last committed barrier.
type welcome struct {
	Reset         bool
	CommitPending bool
}

func (w welcome) encode() []uint64 {
	enc := words.NewEncoder(nil)
	if w.Reset {
		enc.PutUint(msgReset)
		return enc.Words()
	}
	enc.PutUint(msgWelcome)
	enc.PutBool(w.CommitPending)
	return enc.Words()
}

// welcomeOut reports the worker's post-reconciliation barrier state.
type welcomeOut struct {
	Committed int
	StepsDone int
	Halted    bool
}

func (w welcomeOut) encode() []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgWelcomeOut)
	enc.PutInts([]int64{int64(w.Committed), int64(w.StepsDone)})
	enc.PutBool(w.Halted)
	return enc.Words()
}

func decodeWelcomeOut(dec *words.Decoder) welcomeOut {
	f := dec.Ints()
	return welcomeOut{Committed: int(f[0]), StepsDone: int(f[1]), Halted: dec.Bool()}
}

func encodeKind(k uint64) []uint64 { return []uint64{k} }

func encodeKindStep(k uint64, a ...int64) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(k)
	enc.PutInts(a)
	return enc.Words()
}

func encodeErr(err error) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgErr)
	putString(enc, err.Error())
	return enc.Words()
}

// replReq is the replication piggyback a SETUP or PREPARE request
// carries: when Replicate is set the worker's reply ships a snapshot
// of the barrier it just prepared — a delta on Base when its dirty-set
// coverage matches, a full snapshot otherwise. The snapshot rides 2PC
// phase one so the coordinator can fold it into the replica store the
// instant the decision record lands: a worker lost — state directory
// and all — at any point after the decision is then restorable at
// exactly the decided barrier, never one behind it.
type replReq struct {
	Replicate bool
	Base      int // replica's current version for this node; -1 forces full
}

func (r replReq) put(enc *words.Encoder) {
	enc.PutBool(r.Replicate)
	enc.PutInt(int64(r.Base))
}

// decodeReplReq reads the optional piggyback tail; a request without
// one (the pre-replication form) asks for no snapshot.
func decodeReplReq(dec *words.Decoder) replReq {
	if dec.Remaining() == 0 {
		return replReq{Base: -1}
	}
	return replReq{Replicate: dec.Bool(), Base: int(dec.Int())}
}

func encodeSetup(r replReq) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgSetup)
	r.put(enc)
	return enc.Words()
}

func encodePrepare(step int, halt bool, r replReq) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgPrepare)
	h := int64(0)
	if halt {
		h = 1
	}
	enc.PutInts([]int64{int64(step), h})
	r.put(enc)
	return enc.Words()
}

// putSnapshot appends the optional snapshot tail of a SETUP_OUT or
// PREPARED reply.
func putSnapshot(enc *words.Encoder, snap *core.NodeSnapshot) {
	if snap == nil {
		enc.PutBool(false)
		return
	}
	enc.PutBool(true)
	snap.Encode(enc)
}

// decodeSnapshotTail reads a reply's optional snapshot; replies from
// pre-replication workers have no tail at all.
func decodeSnapshotTail(dec *words.Decoder) (*core.NodeSnapshot, error) {
	if dec.Remaining() == 0 || !dec.Bool() {
		return nil, nil
	}
	return core.DecodeSnapshot(dec)
}

func encodePrepared(snap *core.NodeSnapshot) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgPrepared)
	putSnapshot(enc, snap)
	return enc.Words()
}

func encodeRestore(id int, snap *core.NodeSnapshot) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgRestore)
	enc.PutInt(int64(id))
	snap.Encode(enc)
	return enc.Words()
}

// nonceWords is the join-authentication nonce size (32 bytes).
const nonceWords = 4

func encodeChallenge(nonce []uint64) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgChallenge)
	enc.PutUints(nonce)
	return enc.Words()
}

func encodeAuth(mac []uint64) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgAuth)
	enc.PutUints(mac)
	return enc.Words()
}

// wordsToBytes / bytesToWords bridge the word codec and byte-oriented
// crypto (HMAC input and output), little-endian like the wire.
func wordsToBytes(ws []uint64) []byte {
	b := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}

func bytesToWords(b []byte) []uint64 {
	ws := make([]uint64, (len(b)+7)/8)
	for i := range ws {
		var w uint64
		for j := 0; j < 8 && 8*i+j < len(b); j++ {
			w |= uint64(b[8*i+j]) << (8 * j)
		}
		ws[i] = w
	}
	return ws
}

// authMAC is the worker's answer to a join challenge:
// HMAC-SHA256(secret, nonce).
func authMAC(secret string, nonce []uint64) []uint64 {
	h := hmac.New(sha256.New, []byte(secret))
	h.Write(wordsToBytes(nonce))
	return bytesToWords(h.Sum(nil))
}

func encodeSetupOut(s disk.Stats, snap *core.NodeSnapshot) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgSetupOut)
	core.EncodeDiskStats(enc, s)
	putSnapshot(enc, snap)
	return enc.Words()
}

func encodeBatches(enc *words.Encoder, bs []core.BlockBatch) {
	enc.PutInt(int64(len(bs)))
	for _, b := range bs {
		b.Encode(enc)
	}
}

func decodeBatches(dec *words.Decoder) []core.BlockBatch {
	n := int(dec.Int())
	bs := make([]core.BlockBatch, n)
	for i := range bs {
		bs[i] = core.DecodeBlockBatch(dec)
	}
	return bs
}

// fetchOut carries one worker's fetching-phase output: the batch's
// blocks grouped by destination (absent when the batch had no input)
// and the per-destination word counts for the cost model.
type fetchOut struct {
	Has    bool
	Out    []core.BlockBatch
	NWords []int64
}

func (f fetchOut) encode() []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgFetchOut)
	enc.PutBool(f.Has)
	if f.Has {
		encodeBatches(enc, f.Out)
		enc.PutInts(f.NWords)
	}
	return enc.Words()
}

func decodeFetchOut(dec *words.Decoder) fetchOut {
	var f fetchOut
	f.Has = dec.Bool()
	if f.Has {
		f.Out = decodeBatches(dec)
		f.NWords = dec.Ints()
	}
	return f
}

func encodeCompute(j, step int, in []core.BlockBatch) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgCompute)
	enc.PutInts([]int64{int64(j), int64(step)})
	encodeBatches(enc, in)
	return enc.Words()
}

func encodeComputeOut(bo *core.BatchOut) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgComputeOut)
	encodeBatches(enc, bo.Scatter)
	enc.PutInts(bo.Pkts)
	enc.PutInts(bo.Wrds)
	core.EncodeTraffic(enc, bo.Traffic)
	return enc.Words()
}

func decodeComputeOut(dec *words.Decoder) *core.BatchOut {
	return &core.BatchOut{
		Scatter: decodeBatches(dec),
		Pkts:    dec.Ints(),
		Wrds:    dec.Ints(),
		Traffic: core.DecodeTraffic(dec),
	}
}

func encodeWrite(j, step int, in []core.BlockBatch) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgWrite)
	enc.PutInts([]int64{int64(j), int64(step)})
	encodeBatches(enc, in)
	return enc.Words()
}

// sumOut carries the worker's superstep totals at the vote point.
type sumOut struct {
	Halts, Sends int
	Ops          int64
}

func (s sumOut) encode() []uint64 {
	return encodeKindStep(msgSumOut, int64(s.Halts), int64(s.Sends), s.Ops)
}

func decodeSumOut(dec *words.Decoder) sumOut {
	f := dec.Ints()
	return sumOut{Halts: int(f[0]), Sends: int(f[1]), Ops: f[2]}
}

func encodeFinalOut(r *core.NodeReport) []uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(msgFinalOut)
	core.EncodeNodeReport(enc, r)
	return enc.Words()
}

// expect decodes a message and demands the given kind, surfacing a
// worker's ERR as a *WorkerError (fatal: a deterministic engine
// failure will not go away on replay).
func expect(msg []uint64, kind uint64) (*words.Decoder, error) {
	dec := words.NewDecoder(msg)
	got := dec.Uint()
	if got == msgErr {
		return nil, &WorkerError{Node: -1, Msg: getString(dec)}
	}
	if got != kind {
		return nil, fmt.Errorf("cluster: expected %s, got %s", msgName(kind), msgName(got))
	}
	return dec, nil
}
