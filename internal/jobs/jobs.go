// Package jobs runs EM-BSP simulations as supervised jobs behind the
// embsp-serve daemon. A job is a named workload spec (algorithm, size,
// seed, machine shape) — everything needed to rebuild the Program
// deterministically — so the queue survives restarts: the supervisor
// persists a fsynced job manifest (same atomic-rename discipline as
// the superstep journal's HEAD) and on startup re-adopts every
// unfinished job, resuming runs from their journals.
//
// Robustness properties:
//
//   - Admission control: per-tenant memory quotas and a bounded queue
//     refuse work up front (HTTP 429 + Retry-After) instead of
//     accepting jobs the daemon cannot serve; a daemon-wide memory
//     budget gates dequeued jobs via mem.Accountant.ReserveCtx, so a
//     job waits for running jobs to release capacity — and stops
//     waiting the moment it is cancelled.
//   - Retry with exponential backoff and deterministic jitter for
//     failures embsp.Retriable classifies as transient; terminal
//     failures (program panics, journal damage, validation) are
//     reported, never retried.
//   - Per-job deadlines wired to the engines' barrier cancellation.
//   - Graceful drain: running jobs stop at their next journal commit
//     and are marked interrupted; a later supervisor finishes them
//     with Options.Resume, bitwise identical to an uninterrupted run.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"embsp"
	"embsp/internal/fault"
	"embsp/internal/journal"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/workload"
)

// State is a job's position in its lifecycle. Queued, running and
// backoff jobs are live; done, failed and cancelled are terminal;
// interrupted marks a job a draining supervisor stopped at a journal
// commit, to be resumed by the next supervisor over the same root.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateBackoff     State = "backoff"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final: the job holds no
// resources and will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Chaos is a fault-injection hook for exercising the retry machinery
// end to end: the first FailAttempts attempts fail with a recoverable
// fault before the engine starts (so the bookkeeping — backoff, state
// transitions, attempt counting — is tested, not the engine). Terminal
// makes every attempt fail with an unrecoverable fault instead.
type Chaos struct {
	FailAttempts int  `json:"fail_attempts,omitempty"`
	Terminal     bool `json:"terminal,omitempty"`
}

// Request is a job submission: which workload to run and on what
// simulated machine. Zero values select defaults (1 processor, 4
// drives, 64-word blocks, internal memory sized to the program, 3
// attempts, no redundancy, no deadline).
type Request struct {
	Workload workload.Spec `json:"workload"`
	// Tenant names the quota bucket the job is charged against;
	// empty is a tenant like any other.
	Tenant string `json:"tenant,omitempty"`
	Procs  int    `json:"procs,omitempty"`
	Disks  int    `json:"disks,omitempty"`
	Block  int    `json:"block,omitempty"`
	// MemWords fixes the simulated machine's internal memory M; 0
	// sizes it to the program (4·MaxContextWords, at least D·B).
	MemWords   int    `json:"mem_words,omitempty"`
	Redundancy string `json:"redundancy,omitempty"`
	// DeadlineMS bounds the job's total wall-clock time from
	// submission, enforced at superstep barriers; 0 means none.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxAttempts bounds runs of this job including retries; 0 means 3.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// DriveLatencyUS emulates per-track access time (wall-clock only,
	// outside the bitwise-identity contract); tests use it to keep a
	// job running long enough to cancel or drain.
	DriveLatencyUS int64  `json:"drive_latency_us,omitempty"`
	Chaos          *Chaos `json:"chaos,omitempty"`
}

func (r *Request) normalize() {
	if r.Procs <= 0 {
		r.Procs = 1
	}
	if r.Disks <= 0 {
		r.Disks = 4
	}
	if r.Block <= 0 {
		r.Block = 64
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
}

// machineFor derives the simulated machine from the request and the
// built program. The mapping is deterministic, so a restarted
// supervisor rebuilds the exact machine the original run journaled.
func (r Request) machineFor(prog embsp.Program) embsp.MachineConfig {
	m := r.MemWords
	if min := 4 * prog.MaxContextWords(); m < min {
		m = min
	}
	if min := r.Disks * r.Block; m < min {
		m = min
	}
	pkt := 64
	if r.Block > pkt {
		pkt = r.Block
	}
	return embsp.MachineConfig{
		P: r.Procs, M: m, D: r.Disks, B: r.Block, G: 100,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: pkt, L: 10},
	}
}

// options derives the run options for one attempt in stateDir.
func (r Request) options(stateDir string, resume bool) (embsp.Options, error) {
	mode, err := embsp.ParseRedundancy(r.Redundancy)
	if err != nil {
		return embsp.Options{}, err
	}
	return embsp.Options{
		Seed:         r.Workload.Seed,
		StateDir:     stateDir,
		Resume:       resume,
		Redundancy:   mode,
		DriveLatency: time.Duration(r.DriveLatencyUS) * time.Microsecond,
	}, nil
}

// RunOnce executes the request once in stateDir, outside any
// supervisor and without chaos or emulated latency — the clean
// baseline whose fingerprint a supervised job (however many times it
// was interrupted, killed and resumed) must reproduce exactly.
func (r Request) RunOnce(stateDir string) (*Summary, error) {
	r.normalize()
	inst, err := r.Workload.Build()
	if err != nil {
		return nil, err
	}
	cfg := r.machineFor(inst.Program)
	opts, err := r.options(stateDir, false)
	if err != nil {
		return nil, err
	}
	opts.DriveLatency = 0
	res, err := embsp.Run(inst.Program, cfg, opts)
	if err != nil {
		return nil, err
	}
	return summarize(inst, res), nil
}

// summarize digests a completed run into its served Summary.
func summarize(inst *workload.Instance, res *embsp.Result) *Summary {
	return &Summary{
		Fingerprint: fmt.Sprintf("%016x", workload.Fingerprint(res)),
		Supersteps:  res.Costs.Supersteps,
		IOOps:       res.EM.Setup.Ops + res.EM.Run.Ops + res.EM.Finish.Ops,
		Description: inst.Describe(res),
	}
}

// Summary is the result of a completed job. Fingerprint digests the
// final VP states and model statistics (EMStats.Overlap excluded, as
// everywhere); two runs of the same request always produce the same
// fingerprint, interrupted and resumed or not.
type Summary struct {
	Fingerprint string `json:"fingerprint"`
	Supersteps  int    `json:"supersteps"`
	IOOps       int64  `json:"io_ops"`
	Description string `json:"description"`
}

// Job is one supervised run, as persisted in the manifest and served
// over the HTTP API.
type Job struct {
	ID       string  `json:"id"`
	Request  Request `json:"request"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts"`
	// Error describes the failure for failed jobs, or the last
	// retriable failure while a retry is pending.
	Error  string   `json:"error,omitempty"`
	Result *Summary `json:"result,omitempty"`
	// StateDir is the job's state directory, relative to the
	// supervisor root. It holds the run's journal and drive files.
	StateDir        string `json:"state_dir"`
	SubmittedUnixMS int64  `json:"submitted_unix_ms"`
	StartedUnixMS   int64  `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64  `json:"finished_unix_ms,omitempty"`
	DeadlineUnixMS  int64  `json:"deadline_unix_ms,omitempty"`
	// Resumed records that some attempt continued from a committed
	// journal rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`
}

// AdmissionError is a refusal to accept a job right now — the queue is
// full or the tenant's quota is exhausted. The HTTP front end maps it
// to 429 with Retry-After.
type AdmissionError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string { return "jobs: not admitted: " + e.Reason }

// Sentinel errors of the supervisor API.
var (
	ErrNotFound = errors.New("jobs: no such job")
	ErrFinished = errors.New("jobs: job already finished")
	ErrDraining = errors.New("jobs: supervisor is draining")
)

// Cancellation causes, distinguished via context.Cause so a drained
// job (resume later) is never confused with a cancelled one (never
// run again).
var (
	errDrainCause  = errors.New("jobs: draining")
	errCancelCause = errors.New("jobs: cancelled by request")
)

// Config configures a Supervisor.
type Config struct {
	// Root is the state root: the manifest lives at Root/manifest.json
	// and each job's StateDir under Root/jobs/.
	Root string
	// Workers bounds concurrently running jobs; 0 means 4.
	Workers int
	// QueueDepth bounds live (queued+running+backoff) jobs; a full
	// queue refuses submissions with an AdmissionError. 0 means 64.
	QueueDepth int
	// GlobalMemWords is the daemon-wide simulated-memory budget
	// dequeued jobs reserve against (P·M words each); 0 is unlimited.
	GlobalMemWords int64
	// TenantMemWords is each tenant's quota, charged at admission and
	// released when the job reaches a terminal state; 0 is unlimited.
	TenantMemWords int64
	// TenantDiskBytes is each tenant's on-disk budget: every job is
	// charged its estimated StateDir footprint (D·tracks·trackBytes) at
	// admission, released at its terminal state; 0 is unlimited.
	TenantDiskBytes int64
	// Retain bounds how long terminal jobs survive in the manifest:
	// on startup, jobs that finished more than Retain ago are dropped
	// and their state directories deleted, so the manifest stops
	// growing without bound. 0 retains everything.
	Retain time.Duration
	// Metrics receives job-lifecycle counters and queue/run
	// histograms; nil disables.
	Metrics *obs.Registry
	// Sleep implements the backoff wait; nil uses a real timer that
	// aborts when ctx is done. Tests inject a recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
}

// Supervisor owns the job queue: admission, the worker pool, retry and
// deadline policy, the persistent manifest, and drain/resume.
type Supervisor struct {
	cfg      Config
	global   *mem.Accountant
	baseCtx  context.Context
	baseStop context.CancelCauseFunc
	kick     chan struct{} // wakes one idle worker; cap 1
	wg       sync.WaitGroup

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string // submission order
	queue       []string // runnable job IDs, FIFO
	nextID      int
	tenants     map[string]*mem.Accountant
	tenantsDisk map[string]*mem.Accountant
	charged     map[string]int64 // live jobs' admitted charge in words
	chargedDisk map[string]int64 // live jobs' admitted charge in disk bytes
	cancels     map[string]context.CancelCauseFunc
	draining    bool
	started     bool
}

// New opens (or creates) the state root, replays the manifest, and
// re-adopts every unfinished job: running, backoff and interrupted
// jobs go back to queued, to be resumed from their journals once
// Start is called. It does not start workers.
func New(cfg Config) (*Supervisor, error) {
	cfg.normalize()
	if cfg.Root == "" {
		return nil, errors.New("jobs: Config.Root is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Root, "jobs"), 0o777); err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Supervisor{
		cfg:         cfg,
		global:      mem.NewAccountant(cfg.GlobalMemWords),
		baseCtx:     ctx,
		baseStop:    stop,
		kick:        make(chan struct{}, 1),
		jobs:        make(map[string]*Job),
		tenants:     make(map[string]*mem.Accountant),
		tenantsDisk: make(map[string]*mem.Accountant),
		charged:     make(map[string]int64),
		chargedDisk: make(map[string]int64),
		cancels:     make(map[string]context.CancelCauseFunc),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics returns the configured registry (possibly nil).
func (s *Supervisor) Metrics() *obs.Registry { return s.cfg.Metrics }

func (s *Supervisor) tenant(name string) *mem.Accountant {
	a := s.tenants[name]
	if a == nil {
		a = mem.NewAccountant(s.cfg.TenantMemWords)
		s.tenants[name] = a
	}
	return a
}

func (s *Supervisor) tenantDisk(name string) *mem.Accountant {
	a := s.tenantsDisk[name]
	if a == nil {
		a = mem.NewAccountant(s.cfg.TenantDiskBytes)
		s.tenantsDisk[name] = a
	}
	return a
}

// charge computes a job's admission charge: the simulated machine's
// total internal memory, P·M words.
func (r Request) charge() (int64, error) {
	words, _, err := r.charges()
	return words, err
}

// charges computes both admission charges: the simulated machine's
// total internal memory (P·M words) and the estimated StateDir
// footprint (D·tracks·trackBytes). The disk estimate covers the blocks
// a run keeps live — double-buffered contexts plus in- and outbound
// message areas, 2·v·(⌈µ/B⌉+⌈γ/B⌉) blocks striped over D drives at
// B+2 words (payload, address tag, checksum) per track slot.
func (r Request) charges() (memWords, diskBytes int64, err error) {
	inst, err := r.Workload.Build()
	if err != nil {
		return 0, 0, err
	}
	prog := inst.Program
	cfg := r.machineFor(prog)
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	muBlocks := (prog.MaxContextWords() + cfg.B - 1) / cfg.B
	gammaBlocks := (prog.MaxCommWords() + cfg.B - 1) / cfg.B
	blocks := 2 * int64(prog.NumVPs()) * int64(muBlocks+gammaBlocks)
	tracks := (blocks + int64(cfg.D) - 1) / int64(cfg.D)
	diskBytes = int64(cfg.D) * tracks * int64(cfg.B+2) * 8
	return int64(cfg.P) * int64(cfg.M), diskBytes, nil
}

// load replays the manifest and re-adopts unfinished jobs.
func (s *Supervisor) load() error {
	m, err := readManifest(s.cfg.Root)
	if err != nil {
		return err
	}
	if m == nil {
		return s.persistLocked()
	}
	s.nextID = m.NextID
	adopted, compacted := 0, 0
	cutoff := time.Now().Add(-s.cfg.Retain).UnixMilli()
	for _, j := range m.Jobs {
		// Compaction: terminal jobs outside the retention window are
		// dropped from the manifest and their state reclaimed, so the
		// manifest stops growing without bound. Live jobs are always
		// kept — they hold resumable state.
		if s.cfg.Retain > 0 && j.State.Terminal() && j.FinishedUnixMS > 0 && j.FinishedUnixMS < cutoff {
			compacted++
			if j.StateDir != "" && !filepath.IsAbs(j.StateDir) {
				os.RemoveAll(filepath.Join(s.cfg.Root, j.StateDir)) //nolint:errcheck // best-effort reclaim
			}
			continue
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if j.State.Terminal() {
			continue
		}
		j.State = StateQueued
		adopted++
		// Re-admit against the (possibly re-configured) quotas. A job
		// that no longer fits stays adopted but uncharged — it was
		// admitted once, and refusing it now would strand its state.
		if c, dc, err := j.Request.charges(); err == nil {
			if s.tenant(j.Request.Tenant).Grab(c) == nil {
				s.charged[j.ID] = c
			}
			if s.tenantDisk(j.Request.Tenant).Grab(dc) == nil {
				s.chargedDisk[j.ID] = dc
			}
		}
	}
	if adopted > 0 {
		s.cfg.Metrics.Counter("jobs_adopted").Add(int64(adopted))
	}
	if compacted > 0 {
		s.cfg.Metrics.Counter("jobs_compacted").Add(int64(compacted))
	}
	return s.persistLocked()
}

// Start launches the worker pool and enqueues adopted jobs in
// submission order.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	for _, id := range s.order {
		if s.jobs[id].State == StateQueued {
			s.queue = append(s.queue, id)
		}
	}
	s.gaugesLocked()
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Admission backoff hints. A 429's Retry-After used to be a fixed
// second regardless of load; it is now derived from what the daemon
// has actually observed — the jobs_run histogram (how long a running
// job takes to free its capacity) and the jobs_queue_wait histogram
// (how long a queued job waits for a worker) — scaled by the backlog
// standing between the caller and free capacity. Before any job has
// completed there is no history, and the hint falls back to the old
// fixed second; it is always clamped to [100ms, 2m] so a degenerate
// histogram can neither tell clients to hammer nor to go away for
// hours.

const (
	minRetryAfter = 100 * time.Millisecond
	maxRetryAfter = 2 * time.Minute
)

func clampRetryAfter(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Second // no observed history yet
	}
	return min(max(d, minRetryAfter), maxRetryAfter)
}

// retryAfterSlotLocked estimates the wait for a queue slot: with
// Workers jobs retiring concurrently, one of the live jobs terminates
// roughly every meanRun/Workers. Caller holds s.mu.
func (s *Supervisor) retryAfterSlotLocked() time.Duration {
	mean := s.cfg.Metrics.Histogram("jobs_run").Snapshot().Mean()
	return clampRetryAfter(mean / time.Duration(s.cfg.Workers))
}

// retryAfterTenantLocked estimates the wait for the tenant's quota to
// free: one of the tenant's own jobs must terminate. A running job
// frees capacity after about one mean run time; if the tenant's
// backlog is entirely queued, the next release is a queue wait plus a
// run away. Caller holds s.mu.
func (s *Supervisor) retryAfterTenantLocked(tenant string) time.Duration {
	running := false
	for _, j := range s.jobs {
		if j.Request.Tenant == tenant && j.State == StateRunning {
			running = true
			break
		}
	}
	d := s.cfg.Metrics.Histogram("jobs_run").Snapshot().Mean()
	if !running {
		d += s.cfg.Metrics.Histogram("jobs_queue_wait").Snapshot().Mean()
	}
	return clampRetryAfter(d)
}

// Submit admits a job: validates the request, charges the tenant's
// quota, persists it queued, and hands it to the worker pool. The
// returned Job is a snapshot.
func (s *Supervisor) Submit(req Request) (Job, error) {
	req.normalize()
	if err := req.Workload.Validate(); err != nil {
		return Job{}, err
	}
	c, dc, err := req.charges()
	if err != nil {
		return Job{}, err
	}
	if _, err := req.options("x", false); err != nil {
		return Job{}, err
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, ErrDraining
	}
	live := 0
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			live++
		}
	}
	if live >= s.cfg.QueueDepth {
		s.cfg.Metrics.Counter("jobs_rejected").Add(1)
		return Job{}, &AdmissionError{
			Reason:     fmt.Sprintf("queue full (%d live jobs)", live),
			RetryAfter: s.retryAfterSlotLocked(),
		}
	}
	if err := s.tenant(req.Tenant).Grab(c); err != nil {
		s.cfg.Metrics.Counter("jobs_rejected").Add(1)
		return Job{}, &AdmissionError{
			Reason:     fmt.Sprintf("tenant %q quota exhausted: %v", req.Tenant, err),
			RetryAfter: s.retryAfterTenantLocked(req.Tenant),
		}
	}
	if err := s.tenantDisk(req.Tenant).Grab(dc); err != nil {
		s.tenant(req.Tenant).Release(c)
		s.cfg.Metrics.Counter("jobs_rejected").Add(1)
		return Job{}, &AdmissionError{
			Reason:     fmt.Sprintf("tenant %q disk quota exhausted: %v", req.Tenant, err),
			RetryAfter: s.retryAfterTenantLocked(req.Tenant),
		}
	}
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	j := &Job{
		ID:              id,
		Request:         req,
		State:           StateQueued,
		StateDir:        filepath.Join("jobs", id),
		SubmittedUnixMS: now.UnixMilli(),
	}
	if req.DeadlineMS > 0 {
		j.DeadlineUnixMS = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond).UnixMilli()
	}
	if err := os.MkdirAll(filepath.Join(s.cfg.Root, j.StateDir), 0o777); err != nil {
		s.tenant(req.Tenant).Release(c)
		s.tenantDisk(req.Tenant).Release(dc)
		return Job{}, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.charged[id] = c
	s.chargedDisk[id] = dc
	if err := s.persistLocked(); err != nil {
		// The job never becomes visible if its admission cannot be
		// made durable.
		delete(s.jobs, id)
		delete(s.charged, id)
		delete(s.chargedDisk, id)
		s.order = s.order[:len(s.order)-1]
		s.tenant(req.Tenant).Release(c)
		s.tenantDisk(req.Tenant).Release(dc)
		return Job{}, err
	}
	s.cfg.Metrics.Counter("jobs_submitted").Add(1)
	s.queue = append(s.queue, id)
	s.gaugesLocked()
	s.wake()
	return *j, nil
}

// Get returns a snapshot of the job.
func (s *Supervisor) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of all jobs in submission order.
func (s *Supervisor) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job is cancelled in place, a running or
// backing-off one is cancelled at its next superstep barrier. Returns
// ErrFinished if it already reached a terminal state.
func (s *Supervisor) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Job{}, ErrNotFound
	}
	if j.State.Terminal() {
		return *j, ErrFinished
	}
	if cancel := s.cancels[id]; cancel != nil {
		cancel(errCancelCause)
		return *j, nil
	}
	s.finishLocked(j, StateCancelled, "cancelled before start")
	return *j, nil
}

// Drain stops the supervisor gracefully: no new submissions, running
// jobs cancelled at their next journal commit and marked interrupted,
// manifest persisted. It returns once the workers have exited or ctx
// expires.
func (s *Supervisor) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseStop(errDrainCause)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", ctx.Err())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}

// wake nudges one idle worker; a pending nudge is enough, since a
// woken worker drains the queue before sleeping again.
func (s *Supervisor) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// worker pops runnable job IDs until the supervisor stops, sleeping
// only when the queue is empty.
func (s *Supervisor) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var id string
		if len(s.queue) > 0 {
			id = s.queue[0]
			s.queue = s.queue[1:]
		}
		rest := len(s.queue)
		s.mu.Unlock()
		if id != "" {
			if rest > 0 {
				// A single nudge can cover several submissions; pass it
				// on so another idle worker picks up the remainder.
				s.wake()
			}
			s.runJob(id)
			continue
		}
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.kick:
		}
	}
}

// runJob drives one job through admission to the global budget, its
// attempts, backoff, and its terminal (or interrupted) state.
func (s *Supervisor) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.State != StateQueued {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	defer cancel(nil)
	if j.DeadlineUnixMS > 0 {
		dctx, dcancel := context.WithDeadline(ctx, time.UnixMilli(j.DeadlineUnixMS))
		defer dcancel()
		ctx = dctx
	}
	s.cancels[id] = cancel
	charge := s.charged[id]
	submitted := time.UnixMilli(j.SubmittedUnixMS)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()

	// Admission to the daemon-wide budget: wait for running jobs to
	// release capacity, but never past cancellation or the deadline.
	if err := s.global.ReserveCtx(ctx, charge); err != nil {
		s.settleInterruption(j, ctx)
		return
	}
	defer s.global.Release(charge)
	s.cfg.Metrics.Histogram("jobs_queue_wait").Observe(time.Since(submitted).Nanoseconds())

	for {
		s.mu.Lock()
		j.State = StateRunning
		j.Attempts++
		j.StartedUnixMS = time.Now().UnixMilli()
		s.persistLocked() //nolint:errcheck // transition is safe to redo after a crash
		s.gaugesLocked()
		s.mu.Unlock()

		start := time.Now()
		err := s.attempt(ctx, j)
		s.cfg.Metrics.Histogram("jobs_run").Observe(time.Since(start).Nanoseconds())
		if err == nil {
			s.mu.Lock()
			s.finishLocked(j, StateDone, "")
			s.mu.Unlock()
			return
		}
		if ctx.Err() != nil {
			s.settleInterruption(j, ctx)
			return
		}
		if embsp.Retriable(err) && j.Attempts < j.Request.MaxAttempts {
			s.cfg.Metrics.Counter("jobs_retried").Add(1)
			d := BackoffDelay(j.Request.Workload.Seed, j.Attempts)
			s.mu.Lock()
			j.State = StateBackoff
			j.Error = fmt.Sprintf("attempt %d: %v (retrying in %v)", j.Attempts, err, d)
			s.persistLocked() //nolint:errcheck
			s.gaugesLocked()
			s.mu.Unlock()
			if s.cfg.Sleep(ctx, d) != nil {
				s.settleInterruption(j, ctx)
				return
			}
			continue
		}
		s.mu.Lock()
		s.finishLocked(j, StateFailed, fmt.Sprintf("attempt %d: %v", j.Attempts, err))
		s.mu.Unlock()
		return
	}
}

// attempt executes one run of the job, resuming from the journal when
// a previous attempt committed at least one barrier.
func (s *Supervisor) attempt(ctx context.Context, j *Job) error {
	if c := j.Request.Chaos; c != nil {
		if c.Terminal {
			return fmt.Errorf("chaos: %w",
				&fault.Error{Kind: fault.DriveLoss, Op: "read", Recoverable: false})
		}
		if j.Attempts <= c.FailAttempts {
			return fmt.Errorf("chaos attempt %d: %w", j.Attempts,
				&fault.Error{Kind: fault.TransientRead, Op: "read", Recoverable: true})
		}
	}
	inst, err := j.Request.Workload.Build()
	if err != nil {
		return err
	}
	cfg := j.Request.machineFor(inst.Program)
	dir := filepath.Join(s.cfg.Root, j.StateDir)
	committed, err := journal.Committed(dir)
	if err != nil {
		return err
	}
	opts, err := j.Request.options(dir, committed > 0)
	if err != nil {
		return err
	}
	if opts.Resume {
		s.cfg.Metrics.Counter("jobs_resumed").Add(1)
		s.mu.Lock()
		j.Resumed = true
		s.mu.Unlock()
	}
	res, err := embsp.RunContext(ctx, inst.Program, cfg, opts)
	if err != nil {
		return err
	}
	s.mu.Lock()
	j.Result = summarize(inst, res)
	s.mu.Unlock()
	return nil
}

// settleInterruption records why a job's context ended: a drain leaves
// it interrupted (resumable), a cancel makes it cancelled, a missed
// deadline makes it failed.
func (s *Supervisor) settleInterruption(j *Job, ctx context.Context) {
	cause := context.Cause(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case errors.Is(cause, errDrainCause):
		j.State = StateInterrupted
		s.cfg.Metrics.Counter("jobs_interrupted").Add(1)
		s.persistLocked() //nolint:errcheck // drain persists again after the pool exits
		s.gaugesLocked()
	case errors.Is(cause, context.DeadlineExceeded):
		s.finishLocked(j, StateFailed, "deadline exceeded")
	default:
		s.finishLocked(j, StateCancelled, "cancelled")
	}
}

// finishLocked moves a job to a terminal state, releases its quota
// charge, and persists the manifest. Callers hold s.mu.
func (s *Supervisor) finishLocked(j *Job, state State, msg string) {
	j.State = state
	j.Error = msg
	j.FinishedUnixMS = time.Now().UnixMilli()
	if c, ok := s.charged[j.ID]; ok {
		delete(s.charged, j.ID)
		s.tenant(j.Request.Tenant).Release(c)
	}
	if dc, ok := s.chargedDisk[j.ID]; ok {
		delete(s.chargedDisk, j.ID)
		s.tenantDisk(j.Request.Tenant).Release(dc)
	}
	switch state {
	case StateDone:
		s.cfg.Metrics.Counter("jobs_done").Add(1)
	case StateFailed:
		s.cfg.Metrics.Counter("jobs_failed").Add(1)
	case StateCancelled:
		s.cfg.Metrics.Counter("jobs_cancelled").Add(1)
	}
	s.persistLocked() //nolint:errcheck // state is re-derivable; the run itself is journaled
	s.gaugesLocked()
}

// gaugesLocked refreshes the queue-depth and running gauges.
func (s *Supervisor) gaugesLocked() {
	var queued, running int64
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued, StateBackoff:
			queued++
		case StateRunning:
			running++
		}
	}
	s.cfg.Metrics.Counter("jobs_queue_depth").Set(queued)
	s.cfg.Metrics.Counter("jobs_running").Set(running)
}

// BackoffDelay is the wait before retry attempt+1: exponential from
// 50ms, capped at 2s, with ±25% jitter drawn deterministically from
// the seed and attempt number. It is shared by the job supervisor and
// the cluster transport's resend loop. The exponent is clamped before
// shifting: 50ms<<6 already exceeds the 2s cap, and an unclamped shift
// wraps int64 around attempt 40, producing a bogus small-or-negative
// base before the cap could catch it.
func BackoffDelay(seed uint64, attempt int) time.Duration {
	k := attempt - 1
	switch {
	case k < 0:
		k = 0
	case k > 6:
		k = 6
	}
	base := 50 * time.Millisecond << k
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	r := prng.New(seed ^ (uint64(attempt) * 0x9e3779b97f4a7c15))
	return time.Duration((0.75 + 0.5*r.Float64()) * float64(base))
}
