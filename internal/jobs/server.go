package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"embsp/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /jobs             submit a Request, 202 + the queued Job
//	GET  /jobs             list all jobs in submission order
//	GET  /jobs/{id}        one job
//	POST /jobs/{id}/cancel cancel a job
//	GET  /healthz          200 while serving, 503 while draining
//	GET  /metrics          Prometheus text (also /metrics.json)
//
// Refused admissions are 429 with a Retry-After header; submissions
// during drain are 503; invalid requests are 400. All bodies are JSON.
func (s *Supervisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	obs.Mount(mux, s.cfg.Metrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Supervisor) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	j, err := s.Submit(req)
	var adm *AdmissionError
	switch {
	case errors.As(err, &adm):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((adm.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Supervisor) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]Job{"jobs": s.List()})
}

func (s *Supervisor) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Supervisor) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Supervisor) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
