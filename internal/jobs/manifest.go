package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// manifest is the persisted queue state: every job ever submitted plus
// the ID counter. It follows the same durability discipline as the
// superstep journal's HEAD: written to a temp file, fsynced, renamed
// over the old one, directory fsynced — a crash at any point leaves
// either the old manifest or the new one, never a torn mix.
type manifest struct {
	Version int    `json:"version"`
	NextID  int    `json:"next_id"`
	Jobs    []*Job `json:"jobs"`
}

const manifestVersion = 1

func manifestPath(root string) string { return filepath.Join(root, "manifest.json") }

// readManifest loads the manifest, returning nil (no error) when none
// exists yet.
func readManifest(root string) (*manifest, error) {
	buf, err := os.ReadFile(manifestPath(root))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("jobs: %s: %w", manifestPath(root), err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("jobs: %s: manifest version %d, want %d", manifestPath(root), m.Version, manifestVersion)
	}
	return &m, nil
}

// persistLocked writes the manifest durably. Callers hold s.mu.
func (s *Supervisor) persistLocked() error {
	m := manifest{Version: manifestVersion, NextID: s.nextID}
	for _, id := range s.order {
		m.Jobs = append(m.Jobs, s.jobs[id])
	}
	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := manifestPath(s.cfg.Root)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(s.cfg.Root)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
