package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"embsp/internal/journal"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

func testSpec(seed uint64) workload.Spec {
	return workload.Spec{Alg: "sort", N: 48, V: 4, Seed: seed}
}

// startSupervisor builds a running supervisor over a temp root and
// tears it down with the test.
func startSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

func waitJob(t *testing.T, s *Supervisor, id string, pred func(Job) bool) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if ok && pred(j) {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := s.Get(id)
	t.Fatalf("job %s stuck: state=%s attempts=%d err=%q", id, j.State, j.Attempts, j.Error)
	return Job{}
}

func TestJobRunsToDone(t *testing.T) {
	s := startSupervisor(t, Config{Metrics: obs.NewRegistry()})
	req := Request{Workload: testSpec(7)}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, s, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", j.State, j.Error)
	}
	if j.Attempts != 1 || j.Resumed {
		t.Errorf("attempts=%d resumed=%v, want 1/false", j.Attempts, j.Resumed)
	}
	want, err := req.RunOnce(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if j.Result == nil || j.Result.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint %+v, want %q", j.Result, want.Fingerprint)
	}
	if got := s.Metrics().Counter("jobs_done").Value(); got != 1 {
		t.Errorf("jobs_done = %d, want 1", got)
	}
	if len(s.List()) != 1 {
		t.Errorf("List returned %d jobs, want 1", len(s.List()))
	}
}

// TestAdmission locks in the quota and queue-depth refusals: a tenant
// over its memory quota is refused while another tenant's identical
// job proceeds, a full queue refuses everyone, and a cancelled job
// releases its charge. No workers run, so admissions stay admitted.
func TestAdmission(t *testing.T) {
	req := Request{Workload: testSpec(1), Tenant: "a"}
	req.normalize()
	charge, err := req.charge()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Root:           t.TempDir(),
		TenantMemWords: charge, // exactly one job per tenant
		QueueDepth:     3,
		Metrics:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	j1, err := s.Submit(req)
	if err != nil {
		t.Fatalf("first job refused: %v", err)
	}
	var adm *AdmissionError
	if _, err := s.Submit(req); !errors.As(err, &adm) {
		t.Fatalf("over-quota submit returned %v, want AdmissionError", err)
	} else if adm.RetryAfter != time.Second {
		// No job has ever completed, so the hint has no history to draw
		// on and must be the documented fixed-second fallback.
		t.Errorf("no-history RetryAfter = %v, want %v", adm.RetryAfter, time.Second)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "b"}); err != nil {
		t.Fatalf("under-quota tenant refused: %v", err)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "c"}); err != nil {
		t.Fatalf("third tenant refused: %v", err)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "d"}); !errors.As(err, &adm) {
		t.Fatalf("submit into a full queue returned %v, want AdmissionError", err)
	} else if adm.RetryAfter != time.Second {
		t.Errorf("no-history queue-full RetryAfter = %v, want %v", adm.RetryAfter, time.Second)
	}
	if got := s.Metrics().Counter("jobs_rejected").Value(); got != 2 {
		t.Errorf("jobs_rejected = %d, want 2", got)
	}

	// Cancelling the queued job releases its quota charge.
	if j, err := s.Cancel(j1.ID); err != nil || j.State != StateCancelled {
		t.Fatalf("cancel queued job: state=%s err=%v", j.State, err)
	}
	if _, err := s.Submit(req); err != nil {
		t.Fatalf("submit after cancel refused: %v", err)
	}
}

// TestClampRetryAfter pins the hint's guard rails: no history falls
// back to the old fixed second, and derived values are clamped to
// [100ms, 2m] so a degenerate histogram can neither tell clients to
// hammer nor to go away for hours.
func TestClampRetryAfter(t *testing.T) {
	cases := []struct{ in, want time.Duration }{
		{0, time.Second},
		{-5 * time.Second, time.Second},
		{time.Millisecond, minRetryAfter},
		{minRetryAfter, minRetryAfter},
		{5 * time.Second, 5 * time.Second},
		{maxRetryAfter, maxRetryAfter},
		{10 * time.Minute, maxRetryAfter},
	}
	for _, c := range cases {
		if got := clampRetryAfter(c.in); got != c.want {
			t.Errorf("clampRetryAfter(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRetryAfterDerivedFromHistory seeds the jobs_run and
// jobs_queue_wait histograms with known durations and checks that a
// refusal's Retry-After actually tracks them: a queue-full refusal
// hints one mean run time divided across the worker pool, and a
// quota refusal for a tenant with nothing running hints a queue wait
// plus a run. No workers run, so the histograms stay exactly as
// seeded and every admitted job stays queued.
func TestRetryAfterDerivedFromHistory(t *testing.T) {
	req := Request{Workload: testSpec(1), Tenant: "a"}
	req.normalize()
	charge, err := req.charge()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	// Two completed runs of 4s and 8s (mean 6s), queued for 2s each.
	reg.Histogram("jobs_run").Observe((4 * time.Second).Nanoseconds())
	reg.Histogram("jobs_run").Observe((8 * time.Second).Nanoseconds())
	reg.Histogram("jobs_queue_wait").Observe((2 * time.Second).Nanoseconds())
	s, err := New(Config{
		Root:           t.TempDir(),
		TenantMemWords: charge, // exactly one job per tenant
		QueueDepth:     2,
		Workers:        4,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Submit(req); err != nil {
		t.Fatalf("first job refused: %v", err)
	}
	// Tenant quota: nothing of tenant a's is running, so its next
	// release is a queue wait plus a run away: 2s + 6s.
	var adm *AdmissionError
	if _, err := s.Submit(req); !errors.As(err, &adm) {
		t.Fatalf("over-quota submit returned %v, want AdmissionError", err)
	} else if want := 8 * time.Second; adm.RetryAfter != want {
		t.Errorf("tenant-quota RetryAfter = %v, want mean wait + mean run = %v", adm.RetryAfter, want)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "b"}); err != nil {
		t.Fatalf("second tenant refused: %v", err)
	}
	// Queue slot: 4 workers retire a mean-6s job every 6s/4.
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "c"}); !errors.As(err, &adm) {
		t.Fatalf("submit into a full queue returned %v, want AdmissionError", err)
	} else if want := 6 * time.Second / 4; adm.RetryAfter != want {
		t.Errorf("queue-full RetryAfter = %v, want mean run / workers = %v", adm.RetryAfter, want)
	}

	// A pathological history is clamped, not forwarded: sub-millisecond
	// runs must not tell clients to hammer the endpoint.
	fast := obs.NewRegistry()
	fast.Histogram("jobs_run").Observe((100 * time.Microsecond).Nanoseconds())
	s2, err := New(Config{
		Root:       t.TempDir(),
		QueueDepth: 1,
		Workers:    4,
		Metrics:    fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Submit(req); err != nil {
		t.Fatalf("first job refused: %v", err)
	}
	if _, err := s2.Submit(req); !errors.As(err, &adm) {
		t.Fatalf("submit into a full queue returned %v, want AdmissionError", err)
	} else if adm.RetryAfter != minRetryAfter {
		t.Errorf("clamped RetryAfter = %v, want floor %v", adm.RetryAfter, minRetryAfter)
	}
}

func TestRetriableChaosSucceedsWithinBackoffBudget(t *testing.T) {
	var mu sync.Mutex
	var sleeps []time.Duration
	s := startSupervisor(t, Config{
		Metrics: obs.NewRegistry(),
		Sleep: func(_ context.Context, d time.Duration) error {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			return nil
		},
	})
	req := Request{Workload: testSpec(3), MaxAttempts: 3, Chaos: &Chaos{FailAttempts: 2}}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, s, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateDone || j.Attempts != 3 {
		t.Fatalf("state=%s attempts=%d (err %q), want done after 3 attempts", j.State, j.Attempts, j.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 2 {
		t.Fatalf("backoff slept %d times (%v), want 2", len(sleeps), sleeps)
	}
	if sleeps[1] <= sleeps[0] {
		t.Errorf("backoff not growing: %v then %v", sleeps[0], sleeps[1])
	}
	want, err := req.RunOnce(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if j.Result.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint after retries %q, want %q", j.Result.Fingerprint, want.Fingerprint)
	}
	if got := s.Metrics().Counter("jobs_retried").Value(); got != 2 {
		t.Errorf("jobs_retried = %d, want 2", got)
	}
}

func TestTerminalChaosNotRetried(t *testing.T) {
	s := startSupervisor(t, Config{Metrics: obs.NewRegistry()})
	j, err := s.Submit(Request{Workload: testSpec(4), Chaos: &Chaos{Terminal: true}})
	if err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, s, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateFailed || j.Attempts != 1 {
		t.Fatalf("state=%s attempts=%d, want failed on the first attempt", j.State, j.Attempts)
	}
	if !strings.Contains(j.Error, "chaos") {
		t.Errorf("error %q does not name the fault", j.Error)
	}
	if got := s.Metrics().Counter("jobs_retried").Value(); got != 0 {
		t.Errorf("jobs_retried = %d, want 0", got)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	s := startSupervisor(t, Config{})
	j, err := s.Submit(Request{
		Workload:       workload.Spec{Alg: "sort", N: 96, V: 6, Seed: 5},
		DriveLatencyUS: 3000,
		DeadlineMS:     250,
	})
	if err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, s, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateFailed || !strings.Contains(j.Error, "deadline") {
		t.Fatalf("state=%s err=%q, want failed with a deadline error", j.State, j.Error)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := startSupervisor(t, Config{Metrics: obs.NewRegistry()})
	j, err := s.Submit(Request{
		Workload:       workload.Spec{Alg: "sort", N: 96, V: 6, Seed: 6},
		DriveLatencyUS: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j.ID, func(j Job) bool { return j.State == StateRunning })
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	j = waitJob(t, s, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateCancelled {
		t.Fatalf("state = %s (err %q), want cancelled", j.State, j.Error)
	}
	if _, err := s.Cancel(j.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel returned %v, want ErrFinished", err)
	}
}

// TestDrainInterruptsAndResumes is the in-process half of the
// crash-resume story: a draining supervisor stops a running job at its
// next journal commit, and a new supervisor over the same root resumes
// it to a result bitwise identical to a clean uninterrupted run.
func TestDrainInterruptsAndResumes(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{Root: root, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	req := Request{
		Workload:       workload.Spec{Alg: "sort", N: 96, V: 6, Seed: 9},
		DriveLatencyUS: 1500,
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one committed barrier so there is something to
	// resume from, then drain.
	stateDir := filepath.Join(root, j.StateDir)
	waitJob(t, s, j.ID, func(j Job) bool {
		n, err := journal.Committed(stateDir)
		return err == nil && n > 0 && j.State == StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	j, _ = s.Get(j.ID)
	if j.State != StateInterrupted {
		t.Fatalf("state after drain = %s (err %q), want interrupted", j.State, j.Error)
	}
	if _, err := s.Submit(req); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain returned %v, want ErrDraining", err)
	}

	// Second supervisor: re-adopts the interrupted job and resumes it.
	s2, err := New(Config{Root: root, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Get(j.ID); got.State != StateQueued {
		t.Fatalf("adopted state = %s, want queued", got.State)
	}
	s2.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Drain(ctx) //nolint:errcheck
	})
	j = waitJob(t, s2, j.ID, func(j Job) bool { return j.State.Terminal() })
	if j.State != StateDone || !j.Resumed {
		t.Fatalf("state=%s resumed=%v (err %q), want done via resume", j.State, j.Resumed, j.Error)
	}
	want, err := req.RunOnce(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if j.Result.Fingerprint != want.Fingerprint {
		t.Errorf("resumed fingerprint %q != clean run %q", j.Result.Fingerprint, want.Fingerprint)
	}
	if got := s2.Metrics().Counter("jobs_resumed").Value(); got < 1 {
		t.Errorf("jobs_resumed = %d, want >= 1", got)
	}
}

func TestManifestRoundtrip(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Workload: testSpec(2), Tenant: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel("j2"); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	jobs := s2.List()
	if len(jobs) != 2 {
		t.Fatalf("reloaded %d jobs, want 2", len(jobs))
	}
	if jobs[0].State != StateQueued || jobs[1].State != StateCancelled {
		t.Errorf("reloaded states %s/%s, want queued/cancelled", jobs[0].State, jobs[1].State)
	}
	if jobs[1].Request.Tenant != "x" {
		t.Errorf("tenant %q lost in the roundtrip", jobs[1].Request.Tenant)
	}
	// The ID counter continues; a new submission never reuses an ID.
	j3, err := s2.Submit(Request{Workload: testSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "j3" {
		t.Errorf("next ID = %s, want j3", j3.ID)
	}
}

// TestHTTPAPI exercises the front end end to end against a live
// supervisor: submit, poll, list, cancel conflicts, health, metrics,
// and the 429 + Retry-After admission path.
func TestHTTPAPI(t *testing.T) {
	// Quota sized to exactly the slow job submitted first, so a second
	// same-tenant submission is over quota while it runs.
	slow := Request{Workload: workload.Spec{Alg: "sort", N: 96, V: 6, Seed: 11}, Tenant: "a"}
	slow.normalize()
	charge, err := slow.charge()
	if err != nil {
		t.Fatal(err)
	}
	s := startSupervisor(t, Config{
		Metrics:        obs.NewRegistry(),
		TenantMemWords: charge,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decodeJob := func(resp *http.Response) Job {
		t.Helper()
		defer resp.Body.Close()
		var j Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Submit a slow job so the quota stays held while we probe 429.
	resp := post("/jobs", `{"workload":{"alg":"sort","n":96,"v":6,"seed":11},"tenant":"a","drive_latency_us":2000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	j := decodeJob(resp)

	// Same tenant again: over quota, 429 with Retry-After.
	resp = post("/jobs", `{"workload":{"alg":"sort","n":48,"v":4,"seed":12},"tenant":"a"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	resp.Body.Close()

	// Another tenant proceeds.
	resp = post("/jobs", `{"workload":{"alg":"sort","n":48,"v":4,"seed":13},"tenant":"b"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("under-quota status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid bodies are 400.
	for _, bad := range []string{`{`, `{"workload":{"alg":"nosuch","n":48,"v":4}}`, `{"bogus":1}`} {
		resp = post("/jobs", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad submit %q status = %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Poll the slow job to completion over HTTP.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		j = decodeJob(resp)
		if j.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if j.State != StateDone || j.Result == nil {
		t.Fatalf("state=%s result=%v (err %q), want done", j.State, j.Result, j.Error)
	}

	// Cancelling a finished job conflicts.
	resp = post("/jobs/"+j.ID+"/cancel", "")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel done job status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown job is 404.
	if resp, err = http.Get(srv.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// List includes every submission.
	if resp, err = http.Get(srv.URL + "/jobs"); err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Errorf("list has %d jobs, want 2", len(list.Jobs))
	}

	// Health and metrics ride on the same mux.
	if resp, err = http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	if resp, err = http.Get(srv.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, want := range []string{"embsp_jobs_submitted", "embsp_jobs_done", "embsp_jobs_queue_wait_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	for attempt := 1; attempt <= 8; attempt++ {
		a := BackoffDelay(42, attempt)
		if b := BackoffDelay(42, attempt); a != b {
			t.Fatalf("attempt %d: %v vs %v — jitter not deterministic", attempt, a, b)
		}
		if a < 37*time.Millisecond || a > 2500*time.Millisecond {
			t.Errorf("attempt %d delay %v outside [37ms, 2.5s]", attempt, a)
		}
	}
	if BackoffDelay(1, 1) == BackoffDelay(2, 1) {
		t.Error("different seeds produced identical jitter")
	}
}

// TestBackoffOverflowClamped: the exponent must be clamped before the
// shift — 50ms<<39 wraps int64, and before the clamp the wrapped value
// could slip past the cap as a bogus small positive delay. Every
// attempt count, however large, must land in the jittered [1.5s, 2.5s]
// band once the cap is reached.
func TestBackoffOverflowClamped(t *testing.T) {
	for _, tc := range []struct {
		attempt  int
		min, max time.Duration
	}{
		{1, 37 * time.Millisecond, 63 * time.Millisecond},     // 50ms ±25%
		{2, 75 * time.Millisecond, 125 * time.Millisecond},    // 100ms ±25%
		{6, 1200 * time.Millisecond, 2000 * time.Millisecond}, // 1.6s ±25%
		{7, 1500 * time.Millisecond, 2500 * time.Millisecond}, // capped
		{40, 1500 * time.Millisecond, 2500 * time.Millisecond},
		{63, 1500 * time.Millisecond, 2500 * time.Millisecond},
		{64, 1500 * time.Millisecond, 2500 * time.Millisecond},
		{1 << 20, 1500 * time.Millisecond, 2500 * time.Millisecond},
	} {
		for seed := uint64(0); seed < 16; seed++ {
			d := BackoffDelay(seed, tc.attempt)
			if d < tc.min || d > tc.max {
				t.Errorf("BackoffDelay(%d, %d) = %v, want within [%v, %v]",
					seed, tc.attempt, d, tc.min, tc.max)
			}
		}
	}
}

// TestDiskQuotaAdmission: jobs are charged their estimated StateDir
// footprint against the per-tenant disk budget; an exhausted budget is
// an AdmissionError (429) that clears when a charged job ends.
func TestDiskQuotaAdmission(t *testing.T) {
	req := Request{Workload: testSpec(1), Tenant: "a"}
	req.normalize()
	_, dc, err := req.charges()
	if err != nil {
		t.Fatal(err)
	}
	if dc <= 0 {
		t.Fatalf("disk charge = %d, want > 0", dc)
	}
	s, err := New(Config{
		Root:            t.TempDir(),
		TenantDiskBytes: dc, // exactly one job per tenant
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	j1, err := s.Submit(req)
	if err != nil {
		t.Fatalf("first job refused: %v", err)
	}
	var adm *AdmissionError
	_, err = s.Submit(req)
	if !errors.As(err, &adm) {
		t.Fatalf("over-disk-quota submit returned %v, want AdmissionError", err)
	}
	if !strings.Contains(adm.Reason, "disk quota") {
		t.Errorf("refusal reason %q does not name the disk quota", adm.Reason)
	}
	if adm.RetryAfter != time.Second {
		t.Errorf("no-history disk-quota RetryAfter = %v, want %v", adm.RetryAfter, time.Second)
	}
	if _, err := s.Submit(Request{Workload: testSpec(1), Tenant: "b"}); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	// Terminal jobs release their disk charge.
	if _, err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req); err != nil {
		t.Fatalf("submit after release refused: %v", err)
	}
}

// TestManifestCompaction: with Retain set, a restarted supervisor drops
// terminal jobs older than the window — manifest entry and state dir
// both — while keeping recent and non-terminal ones.
func TestManifestCompaction(t *testing.T) {
	root := t.TempDir()
	s := startSupervisor(t, Config{Root: root, Metrics: obs.NewRegistry()})
	old, err := s.Submit(Request{Workload: testSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Submit(Request{Workload: testSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, old.ID, func(j Job) bool { return j.State == StateDone })
	waitJob(t, s, fresh.ID, func(j Job) bool { return j.State == StateDone })

	// Age the first job past the retention window.
	s.mu.Lock()
	s.jobs[old.ID].FinishedUnixMS = time.Now().Add(-48 * time.Hour).UnixMilli()
	oldDir := filepath.Join(root, s.jobs[old.ID].StateDir)
	err = s.persistLocked()
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldDir); err != nil {
		t.Fatalf("old job's state dir missing before compaction: %v", err)
	}

	s2, err := New(Config{Root: root, Retain: 24 * time.Hour, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(old.ID); ok {
		t.Error("job outside the retention window survived compaction")
	}
	if _, ok := s2.Get(fresh.ID); !ok {
		t.Error("job inside the retention window was compacted")
	}
	if _, err := os.Stat(oldDir); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("compacted job's state dir still present: %v", err)
	}
	if got := s2.Metrics().Counter("jobs_compacted").Value(); got != 1 {
		t.Errorf("jobs_compacted = %d, want 1", got)
	}

	// The survivor list must round-trip: a third supervisor with no
	// retention sees exactly the compacted manifest.
	s3, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s3.List()); n != 1 {
		t.Errorf("after compaction: %d jobs persisted, want 1", n)
	}
}
