package words

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.PutUint(42)
	e.PutInt(-7)
	e.PutFloat(3.25)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Words())
	if got := d.Uint(); got != 42 {
		t.Errorf("Uint = %d, want 42", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d, want -7", got)
	}
	if got := d.Float(); got != 3.25 {
		t.Errorf("Float = %v, want 3.25", got)
	}
	if !d.Bool() {
		t.Error("first Bool = false, want true")
	}
	if d.Bool() {
		t.Error("second Bool = true, want false")
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestSliceRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	us := []uint64{1, 2, 3}
	is := []int64{-1, 0, 9}
	fs := []float64{0.5, -2, math.Inf(1)}
	e.PutUints(us)
	e.PutInts(is)
	e.PutFloats(fs)
	e.PutUints(nil)
	d := NewDecoder(e.Words())
	if got := d.Uints(); !reflect.DeepEqual(got, us) {
		t.Errorf("Uints = %v, want %v", got, us)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, is) {
		t.Errorf("Ints = %v, want %v", got, is)
	}
	if got := d.Floats(); !reflect.DeepEqual(got, fs) {
		t.Errorf("Floats = %v, want %v", got, fs)
	}
	if got := d.Uints(); len(got) != 0 {
		t.Errorf("empty Uints = %v, want empty", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, flag bool, s []uint64, is []int64) bool {
		if math.IsNaN(c) {
			c = 0 // NaN != NaN; bits still round-trip but == comparison fails
		}
		e := NewEncoder(nil)
		e.PutUint(a)
		e.PutInt(b)
		e.PutFloat(c)
		e.PutBool(flag)
		e.PutUints(s)
		e.PutInts(is)
		d := NewDecoder(e.Words())
		if d.Uint() != a || d.Int() != b || d.Float() != c || d.Bool() != flag {
			return false
		}
		gs := d.Uints()
		gi := d.Ints()
		if len(gs) != len(s) || len(gi) != len(is) {
			return false
		}
		for i := range s {
			if gs[i] != s[i] {
				return false
			}
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(make([]uint64, 0, 8))
	e.PutUint(1)
	e.PutUint(2)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", e.Len())
	}
	e.PutUint(9)
	if got := e.Words()[0]; got != 9 {
		t.Errorf("Words[0] = %d, want 9", got)
	}
}

func TestDecodePastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("decoding past end did not panic")
		}
	}()
	d := NewDecoder([]uint64{1})
	d.Uint()
	d.Uint()
}

func TestCorruptSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("corrupt slice length did not panic")
		}
	}()
	d := NewDecoder([]uint64{100, 1, 2}) // claims 100 elements, has 2
	d.Uints()
}

func TestSizeUints(t *testing.T) {
	e := NewEncoder(nil)
	e.PutUints(make([]uint64, 17))
	if e.Len() != SizeUints(17) {
		t.Errorf("encoded %d words, SizeUints says %d", e.Len(), SizeUints(17))
	}
}
