// Package words provides a fixed-width (64-bit word) record codec.
//
// The external-memory machine model of Dehne, Dittrich and Hutchinson
// counts data in fixed-size records: a disk track stores exactly B
// records, a parallel I/O operation moves up to D·B records, and the
// context of a virtual processor occupies at most µ records. This
// package fixes the record to a 64-bit word (uint64) and provides an
// Encoder/Decoder pair used to marshal virtual-processor contexts and
// message payloads into word slices.
//
// Encoding is positional and fixed-width: every Put* call appends a
// known number of words, and the matching Get on the Decoder must be
// issued in the same order. Mismatched decodes are programming errors
// and panic, like an out-of-bounds slice index.
package words

import "math"

// Encoder appends values to a word buffer. The zero value is ready to
// use and grows as needed; NewEncoder can wrap a preallocated buffer to
// avoid allocation in hot paths.
type Encoder struct {
	buf []uint64
}

// NewEncoder returns an Encoder that appends to buf (length 0 slices
// of suitable capacity avoid reallocation).
func NewEncoder(buf []uint64) *Encoder {
	return &Encoder{buf: buf[:0]}
}

// Words returns the encoded words. The slice aliases the Encoder's
// internal buffer and is invalidated by further Put calls.
func (e *Encoder) Words() []uint64 { return e.buf }

// Len returns the number of words encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded words, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint appends one word.
func (e *Encoder) PutUint(u uint64) { e.buf = append(e.buf, u) }

// PutInt appends a signed integer as one word (two's complement).
func (e *Encoder) PutInt(i int64) { e.buf = append(e.buf, uint64(i)) }

// PutFloat appends a float64 as one word (IEEE-754 bits).
func (e *Encoder) PutFloat(f float64) { e.buf = append(e.buf, math.Float64bits(f)) }

// PutBool appends a boolean as one word (0 or 1).
func (e *Encoder) PutBool(b bool) {
	var u uint64
	if b {
		u = 1
	}
	e.buf = append(e.buf, u)
}

// PutUints appends a length prefix followed by the slice elements
// (len(s)+1 words).
func (e *Encoder) PutUints(s []uint64) {
	e.buf = append(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutInts appends a length prefix followed by the slice elements.
func (e *Encoder) PutInts(s []int64) {
	e.buf = append(e.buf, uint64(len(s)))
	for _, v := range s {
		e.buf = append(e.buf, uint64(v))
	}
}

// PutFloats appends a length prefix followed by the slice elements.
func (e *Encoder) PutFloats(s []float64) {
	e.buf = append(e.buf, uint64(len(s)))
	for _, v := range s {
		e.buf = append(e.buf, math.Float64bits(v))
	}
}

// Decoder reads values from a word buffer in the order they were
// encoded.
type Decoder struct {
	buf []uint64
	off int
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []uint64) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of words not yet consumed.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of words consumed so far.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) next() uint64 {
	if d.off >= len(d.buf) {
		panic("words: decode past end of buffer")
	}
	u := d.buf[d.off]
	d.off++
	return u
}

// Uint decodes one word.
func (d *Decoder) Uint() uint64 { return d.next() }

// Int decodes one word as a signed integer.
func (d *Decoder) Int() int64 { return int64(d.next()) }

// Float decodes one word as a float64.
func (d *Decoder) Float() float64 { return math.Float64frombits(d.next()) }

// Bool decodes one word as a boolean.
func (d *Decoder) Bool() bool { return d.next() != 0 }

// Uints decodes a length-prefixed slice. The result is a copy.
func (d *Decoder) Uints() []uint64 {
	n := int(d.next())
	if n < 0 || d.off+n > len(d.buf) {
		panic("words: corrupt slice length")
	}
	s := make([]uint64, n)
	copy(s, d.buf[d.off:d.off+n])
	d.off += n
	return s
}

// Ints decodes a length-prefixed slice of signed integers.
func (d *Decoder) Ints() []int64 {
	n := int(d.next())
	if n < 0 || d.off+n > len(d.buf) {
		panic("words: corrupt slice length")
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(d.buf[d.off+i])
	}
	d.off += n
	return s
}

// Floats decodes a length-prefixed slice of float64s.
func (d *Decoder) Floats() []float64 {
	n := int(d.next())
	if n < 0 || d.off+n > len(d.buf) {
		panic("words: corrupt slice length")
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Float64frombits(d.buf[d.off+i])
	}
	d.off += n
	return s
}

// SizeUints returns the encoded size in words of a []uint64 of length n
// (length prefix plus elements). SizeInts and SizeFloats are identical.
func SizeUints(n int) int { return 1 + n }
