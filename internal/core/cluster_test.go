package core_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/disk"
)

// These tests drive NodeEngine + CoordCore through the cluster
// protocol choreography in one process — the same phase sequence the
// networked coordinator runs, minus the wire — and hold the results
// bitwise identical to core.Run. The cluster package's own tests add
// real processes, TCP, faults, and SIGKILL on top; this layer pins the
// engine-side contract first.

type clusterRig struct {
	root  string
	coord *core.CoordCore
	nodes []*core.NodeEngine
}

func openRig(t *testing.T, prog *bsptest.RandomProgram, cfg core.MachineConfig, opts core.Options, root string) *clusterRig {
	t.Helper()
	coord, err := core.OpenCoord(prog, cfg, opts, filepath.Join(root, "coord"), false)
	if err != nil {
		t.Fatal(err)
	}
	rig := &clusterRig{root: root, coord: coord, nodes: make([]*core.NodeEngine, cfg.P)}
	for i := 0; i < cfg.P; i++ {
		rig.nodes[i], err = core.OpenNode(prog, cfg, opts, i, filepath.Join(root, fmt.Sprintf("node-%d", i)), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { rig.close() })
	return rig
}

func (r *clusterRig) close() {
	for i, n := range r.nodes {
		if n != nil {
			n.Close()
			r.nodes[i] = nil
		}
	}
	if r.coord != nil {
		r.coord.Close()
		r.coord = nil
	}
}

func (r *clusterRig) setup(t *testing.T) {
	t.Helper()
	stats := make([]disk.Stats, len(r.nodes))
	for i, n := range r.nodes {
		if err := n.Setup(); err != nil {
			t.Fatal(err)
		}
		var err error
		if stats[i], err = n.PrepareSetup(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.coord.CommitSetup(stats); err != nil {
		t.Fatal(err)
	}
	for _, n := range r.nodes {
		if err := n.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// runBatches runs the fetch/compute/write rounds of one superstep and
// returns the summed halt votes and sends.
func (r *clusterRig) runBatches(t *testing.T, step int) (halts, sends int) {
	t.Helper()
	P := len(r.nodes)
	r.coord.BeginStep()
	for _, n := range r.nodes {
		n.BeginStep()
	}
	for j := 0; j < r.coord.Batches(); j++ {
		outs := make([][]core.BlockBatch, P)
		for i, n := range r.nodes {
			out, nwords, err := n.Fetch(j, step)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = out
			r.coord.AddFetch(i, nwords)
		}
		bos := make([]*core.BatchOut, P)
		for i, n := range r.nodes {
			in := make([]core.BlockBatch, P)
			for src := 0; src < P; src++ {
				if outs[src] != nil {
					in[src] = outs[src][i]
				}
			}
			bo, err := n.Compute(j, step, in)
			if err != nil {
				t.Fatal(err)
			}
			bos[i] = bo
			r.coord.AddBatch(i, bo)
			r.coord.RecordTraffic(bo.Traffic)
		}
		for i, n := range r.nodes {
			in := make([]core.BlockBatch, P)
			for src := 0; src < P; src++ {
				in[src] = bos[src].Scatter[i]
			}
			if err := n.Write(j, step, in); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range r.nodes {
		h, s := n.StepTotals()
		halts += h
		sends += s
	}
	return halts, sends
}

// finishStep completes a superstep from the vote on: route, costs,
// PREPARE on every node, the coordinator's decision, COMMIT.
func (r *clusterRig) finishStep(t *testing.T, step, halts, sends int) (halted bool) {
	t.Helper()
	halted, err := r.coord.Vote(step, halts, sends)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		for _, n := range r.nodes {
			if err := n.Route(step); err != nil {
				t.Fatal(err)
			}
		}
	}
	var maxOps int64
	for _, n := range r.nodes {
		if d := n.StepOps(); d > maxOps {
			maxOps = d
		}
	}
	r.coord.FinishStep(maxOps)
	for _, n := range r.nodes {
		if err := n.Prepare(step, halted); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.coord.CommitStep(step, halted); err != nil {
		t.Fatal(err)
	}
	for _, n := range r.nodes {
		if err := n.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return halted
}

func (r *clusterRig) step(t *testing.T, step int) (halted bool) {
	t.Helper()
	halts, sends := r.runBatches(t, step)
	return r.finishStep(t, step, halts, sends)
}

// abortStep rolls a live rig back to the last barrier: every node
// reloads its committed state and the coordinator rewinds its
// accounting — the path a worker failure mid-superstep takes.
func (r *clusterRig) abortStep(t *testing.T) {
	t.Helper()
	for _, n := range r.nodes {
		if err := n.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	r.coord.AbortStep()
}

func (r *clusterRig) assemble(t *testing.T) *core.Result {
	t.Helper()
	reports := make([]*core.NodeReport, len(r.nodes))
	for i, n := range r.nodes {
		var err error
		if reports[i], err = n.Final(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.coord.Assemble(reports)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func (r *clusterRig) run(t *testing.T) *core.Result {
	t.Helper()
	r.setup(t)
	for step := 0; ; step++ {
		if step >= r.coord.MaxSupersteps() {
			t.Fatalf("no convergence after %d supersteps", step)
		}
		if r.step(t, step) {
			break
		}
	}
	return r.assemble(t)
}

func clusterProgram() *bsptest.RandomProgram {
	return &bsptest.RandomProgram{V: 16, Steps: 5, MsgsPerStep: 4, MaxLen: 12}
}

// TestClusterCoreMatchesInProcess: the protocol choreography is
// bitwise identical to the in-process parallel engine — VP states,
// model costs, and EM statistics — across processor counts, including
// P > V (empty nodes).
func TestClusterCoreMatchesInProcess(t *testing.T) {
	for _, tc := range []struct{ p, v int }{{2, 16}, {4, 16}, {4, 3}} {
		prog := clusterProgram()
		prog.V = tc.v
		cfg := parMachine(tc.p, 2, 8, 256)
		opts := core.Options{Seed: 7}
		oracle, err := core.Run(prog, cfg, core.Options{Seed: 7, StateDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		rig := openRig(t, prog, cfg, opts, t.TempDir())
		res := rig.run(t)
		resultsIdentical(t, res, oracle, fmt.Sprintf("cluster p=%d v=%d", tc.p, tc.v))
	}
}

// TestClusterCoreAbortReplay: aborting the attempt at every superstep
// in turn — batches done, routing done, or every node already PREPARED
// but no decision — then replaying leaves no trace: the final result
// is still bitwise identical to an undisturbed run.
func TestClusterCoreAbortReplay(t *testing.T) {
	prog := clusterProgram()
	cfg := parMachine(3, 2, 8, 256)
	opts := core.Options{Seed: 11}
	oracle, err := core.Run(prog, cfg, core.Options{Seed: 11, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	steps := oracle.Costs.Supersteps
	for abortAt := 0; abortAt < steps; abortAt++ {
		for _, phase := range []string{"batches", "routed", "prepared"} {
			rig := openRig(t, prog, cfg, opts, t.TempDir())
			rig.setup(t)
			aborted := false
			for step := 0; ; step++ {
				if step == abortAt && !aborted {
					halts, sends := rig.runBatches(t, step)
					if phase != "batches" {
						halted, err := rig.coord.Vote(step, halts, sends)
						if err != nil {
							t.Fatal(err)
						}
						if !halted {
							for _, n := range rig.nodes {
								if err := n.Route(step); err != nil {
									t.Fatal(err)
								}
							}
						}
						if phase == "prepared" {
							for _, n := range rig.nodes {
								if err := n.Prepare(step, halted); err != nil {
									t.Fatal(err)
								}
							}
						}
					}
					rig.abortStep(t)
					aborted = true
				}
				if rig.step(t, step) {
					break
				}
			}
			res := rig.assemble(t)
			resultsIdentical(t, res, oracle, fmt.Sprintf("abort@%d/%s", abortAt, phase))
			rig.close()
		}
	}
}

// reopen closes every engine and reopens them from their journals,
// then reconciles: each node with a prepared tail commits it exactly
// when the coordinator's decision journal covers it (presumed abort
// otherwise) — the restart path after a SIGKILL.
func (r *clusterRig) reopen(t *testing.T, prog *bsptest.RandomProgram, cfg core.MachineConfig, opts core.Options) {
	t.Helper()
	r.close()
	coord, err := core.OpenCoord(prog, cfg, opts, filepath.Join(r.root, "coord"), true)
	if err != nil {
		t.Fatal(err)
	}
	r.coord = coord
	if err := r.coord.LoadCommitted(); err != nil {
		t.Fatal(err)
	}
	for i := range r.nodes {
		n, err := core.OpenNode(prog, cfg, opts, i, filepath.Join(r.root, fmt.Sprintf("node-%d", i)), true)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[i] = n
		if n.HasPending() {
			if err := n.ResolvePending(r.coord.Committed() > n.Committed()); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.LoadCommitted(); err != nil {
			t.Fatal(err)
		}
		if got, want := n.Fingerprint(), r.coord.NodeFpr(i); got != want {
			t.Fatalf("node %d fingerprint %x, coordinator derives %x", i, got, want)
		}
	}
}

// TestClusterCoreCrashReopen: kill the whole cluster in either 2PC
// window — every node PREPARED but no decision (presumed abort), or
// the decision committed but no node told (commit on reconnect) — and
// the reopened run still finishes bitwise identical.
func TestClusterCoreCrashReopen(t *testing.T) {
	prog := clusterProgram()
	cfg := parMachine(3, 2, 8, 256)
	opts := core.Options{Seed: 13}
	oracle, err := core.Run(prog, cfg, core.Options{Seed: 13, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	steps := oracle.Costs.Supersteps
	for crashAt := 0; crashAt < steps; crashAt++ {
		for _, window := range []string{"prepared-undecided", "decided-untold"} {
			rig := openRig(t, prog, cfg, opts, t.TempDir())
			rig.setup(t)
			crashed := false
			for step := 0; ; step++ {
				if step == crashAt && !crashed {
					halts, sends := rig.runBatches(t, step)
					halted, err := rig.coord.Vote(step, halts, sends)
					if err != nil {
						t.Fatal(err)
					}
					if !halted {
						for _, n := range rig.nodes {
							if err := n.Route(step); err != nil {
								t.Fatal(err)
							}
						}
					}
					var maxOps int64
					for _, n := range rig.nodes {
						if d := n.StepOps(); d > maxOps {
							maxOps = d
						}
					}
					rig.coord.FinishStep(maxOps)
					for _, n := range rig.nodes {
						if err := n.Prepare(step, halted); err != nil {
							t.Fatal(err)
						}
					}
					if window == "decided-untold" {
						if err := rig.coord.CommitStep(step, halted); err != nil {
							t.Fatal(err)
						}
					}
					rig.reopen(t, prog, cfg, opts)
					crashed = true
					// After an undecided crash the step replays; after
					// a decided one it is already committed.
					if rig.coord.StepsDone() == step+1 {
						if rig.coord.Halted() {
							break
						}
						continue
					}
					step--
					continue
				}
				if rig.step(t, step) {
					break
				}
			}
			res := rig.assemble(t)
			resultsIdentical(t, res, oracle, fmt.Sprintf("crash@%d/%s", crashAt, window))
			rig.close()
		}
	}
}
