package core

import (
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/journal"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/redundancy"
	"embsp/internal/words"
)

// This file is the cluster runtime's view of the engine: a NodeEngine
// wraps exactly one real processor (one worker process) and a
// CoordCore holds the coordinator's global accounting. Both reuse the
// simShape phase bodies and manifest encoders the in-process parallel
// engine runs, so a cluster run is bitwise-identical to core.Run with
// the same (program, machine config, options) tuple — the in-process
// engine stays the p-node reference oracle.
//
// Durability is per process: every node journals its own barrier
// state, and the coordinator's journal holds the 2PC decision record.
// A node's record r is PREPAREd (fsynced, HEAD untouched) before the
// coordinator appends its own record r; the coordinator's append IS
// the commit decision, after which nodes advance HEAD. Recovery
// reconciles by count: a node holding c committed records and an
// optional prepared tail commits the tail iff the coordinator's
// journal covers record c (presumed abort otherwise).

// ClusterCheck rejects option combinations the cluster runtime does
// not support. The in-process engine remains the only runtime for
// disk-fault injection and redundancy layers; cluster runs take
// network faults instead (internal/fault.NetPlan, injected in the
// transport below the engine).
func ClusterCheck(cfg MachineConfig, opts Options) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := opts.Validate(cfg); err != nil {
		return err
	}
	if cfg.P < 2 {
		return fmt.Errorf("core: a cluster run needs P >= 2 real processors, have P = %d", cfg.P)
	}
	if opts.FaultPlan != nil && opts.FaultPlan.Enabled() {
		return fmt.Errorf("core: disk fault plans are not supported in cluster mode (use a network fault plan on the transport)")
	}
	if opts.effectiveRedundancy() != redundancy.None {
		return fmt.Errorf("core: redundancy layers are not supported in cluster mode")
	}
	if opts.NoRouting {
		return fmt.Errorf("core: NoRouting is a sequential-engine ablation; cluster mode requires routing")
	}
	return nil
}

// nodeFingerprint stamps a node's manifests: the shared config
// fingerprint folded with the node's identity, so resuming a node
// under another node's state directory is caught.
func nodeFingerprint(cfg MachineConfig, opts Options, v, mu, gamma, nodeID int) uint64 {
	return prng.Derive(configFingerprint(manifestNodeKind, cfg, opts, v, mu, gamma), 0x4e444944, uint64(nodeID))
}

// BlockBatch is an opaque sequence of message blocks in flight between
// real processors. Encode/DecodeBlockBatch are its wire form.
type BlockBatch struct {
	blocks []wireBlock
}

// Len returns the number of blocks in the batch.
func (b BlockBatch) Len() int { return len(b.blocks) }

// Encode appends the batch's wire form.
func (b BlockBatch) Encode(enc *words.Encoder) {
	enc.PutInt(int64(len(b.blocks)))
	for _, wb := range b.blocks {
		enc.PutInts([]int64{int64(wb.meta.dst), int64(wb.meta.src), int64(wb.meta.seq), int64(wb.meta.chunk)})
		enc.PutUints(wb.img)
	}
}

// DecodeBlockBatch reads a batch encoded by Encode.
func DecodeBlockBatch(dec *words.Decoder) BlockBatch {
	n := int(dec.Int())
	if n == 0 {
		return BlockBatch{}
	}
	blocks := make([]wireBlock, n)
	for i := range blocks {
		m := dec.Ints()
		blocks[i] = wireBlock{
			meta: blockMeta{dst: int(m[0]), src: int(m[1]), seq: int(m[2]), chunk: int(m[3])},
			img:  dec.Uints(),
		}
	}
	return BlockBatch{blocks: blocks}
}

// BatchOut is one processor's computing-phase output: scattered packet
// blocks per destination processor, the off-processor packet/word
// tallies for the communication model, and per-VP traffic records for
// the coordinator's cost recorder.
type BatchOut struct {
	Scatter []BlockBatch
	Pkts    []int64
	Wrds    []int64
	Traffic []bsp.VPTraffic
}

// EncodeTraffic / DecodeTraffic are the wire form of VP traffic
// records.
func EncodeTraffic(enc *words.Encoder, ts []bsp.VPTraffic) {
	enc.PutInt(int64(len(ts)))
	for _, t := range ts {
		enc.PutInts([]int64{int64(t.SendWords), int64(t.RecvWords), int64(t.SendPkts), int64(t.RecvPkts), int64(t.Messages), t.Charge})
	}
}

func DecodeTraffic(dec *words.Decoder) []bsp.VPTraffic {
	n := int(dec.Int())
	if n == 0 {
		return nil
	}
	ts := make([]bsp.VPTraffic, n)
	for i := range ts {
		f := dec.Ints()
		ts[i] = bsp.VPTraffic{
			SendWords: int(f[0]), RecvWords: int(f[1]),
			SendPkts: int(f[2]), RecvPkts: int(f[3]),
			Messages: int(f[4]), Charge: f[5],
		}
	}
	return ts
}

// NodeReport is a node's final accounting, shipped to the coordinator
// after the run halts.
type NodeReport struct {
	Lo, Hi           int
	RunStats         disk.Stats
	FinishOps        int64
	FinishReadOps    int64
	FinishBlocksRead int64
	Ctx              [][]uint64 // final contexts of VPs Lo..Hi, in order
	RouteOps         int64
	Ragged           int64
	MaxSkew          float64
	MemHigh          int64
	PeakLive         int64
}

// EncodeNodeReport / DecodeNodeReport are the report's wire form.
func EncodeNodeReport(enc *words.Encoder, r *NodeReport) {
	enc.PutInts([]int64{int64(r.Lo), int64(r.Hi)})
	encodeStats(enc, r.RunStats)
	enc.PutInts([]int64{r.FinishOps, r.FinishReadOps, r.FinishBlocksRead})
	enc.PutInt(int64(len(r.Ctx)))
	for _, c := range r.Ctx {
		enc.PutUints(c)
	}
	enc.PutInts([]int64{r.RouteOps, r.Ragged, r.MemHigh, r.PeakLive})
	enc.PutFloat(r.MaxSkew)
}

func DecodeNodeReport(dec *words.Decoder) *NodeReport {
	r := &NodeReport{}
	lh := dec.Ints()
	r.Lo, r.Hi = int(lh[0]), int(lh[1])
	r.RunStats = decodeStats(dec)
	f := dec.Ints()
	r.FinishOps, r.FinishReadOps, r.FinishBlocksRead = f[0], f[1], f[2]
	n := int(dec.Int())
	r.Ctx = make([][]uint64, n)
	for i := range r.Ctx {
		r.Ctx[i] = dec.Uints()
	}
	t := dec.Ints()
	r.RouteOps, r.Ragged, r.MemHigh, r.PeakLive = t[0], t[1], t[2], t[3]
	r.MaxSkew = dec.Float()
	return r
}

// EncodeDiskStats / DecodeDiskStats expose the manifest's disk.Stats
// wire form for the cluster protocol.
func EncodeDiskStats(enc *words.Encoder, s disk.Stats) { encodeStats(enc, s) }

// DecodeDiskStats reads stats encoded by EncodeDiskStats.
func DecodeDiskStats(dec *words.Decoder) disk.Stats { return decodeStats(dec) }

// --- NodeEngine --------------------------------------------------------

// NodeEngine is one real processor of a cluster run: the per-node
// superstep loop of Algorithm 3 over the node's own state directory,
// driven phase by phase by the coordinator's messages. The caller (the
// cluster worker) supplies the inboxes and forwards the outboxes; the
// engine never touches the network itself.
type NodeEngine struct {
	sh  simShape
	ps  *procState
	jrn *journal.Journal
	dir string
	fpr uint64

	stepsDone int
	halted    bool
	report    *NodeReport

	// Replication bookkeeping (snapshot.go): dirty accumulates the
	// store's changed-track set across Reloads; exportBase is the
	// barrier version that accumulation is known to cover changes
	// since, or -1 when coverage is unknown (forces a full export).
	dirty      map[disk.Addr]struct{}
	exportBase int
}

// OpenNode opens node nodeID's engine rooted at dir. With resume
// false, the state directory is initialized fresh; with resume true,
// the existing drives and journal are opened (the journal retaining an
// intact prepared tail for the coordinator's reconciliation) and the
// caller must ResolvePending and LoadCommitted before running.
func OpenNode(p bsp.Program, cfg MachineConfig, opts Options, nodeID int, dir string, resume bool) (*NodeEngine, error) {
	opts.defaults()
	if err := ClusterCheck(cfg, opts); err != nil {
		return nil, err
	}
	if err := bsp.CheckProgram(p); err != nil {
		return nil, err
	}
	if nodeID < 0 || nodeID >= cfg.P {
		return nil, fmt.Errorf("core: node id %d out of range for P = %d", nodeID, cfg.P)
	}
	if dir == "" {
		return nil, fmt.Errorf("core: a cluster node needs a state directory (its journal is the 2PC participant log)")
	}
	n := &NodeEngine{
		sh:  newSimShape(p, cfg, opts),
		dir: dir,
	}
	n.fpr = nodeFingerprint(cfg, opts, n.sh.v, n.sh.mu, n.sh.gamma, nodeID)
	ps, err := n.sh.newProcState(nodeID, procDir(dir, nodeID), resume)
	if err != nil {
		return nil, err
	}
	ps.ckptOn = true
	n.ps = ps
	if resume {
		n.jrn, err = journal.OpenPrepared(dir)
	} else {
		n.jrn, err = journal.Create(dir)
	}
	if err != nil {
		ps.store.Close()
		return nil, err
	}
	n.jrn.SetTracer(n.sh.tr, nodeID)
	// A fresh or resumed store's content is exactly its committed
	// barrier, and every write from here on lands in the dirty set —
	// so deltas may be exported against the opening version.
	n.dirty = make(map[disk.Addr]struct{})
	n.exportBase = n.Committed()
	return n, nil
}

// NodeID returns the node's processor index.
func (n *NodeEngine) NodeID() int { return n.ps.id }

// Batches returns the rounds per compound superstep.
func (n *NodeEngine) Batches() int { return n.sh.batches }

// Fingerprint returns the node's manifest fingerprint, which the
// coordinator checks against its own derivation during the handshake.
func (n *NodeEngine) Fingerprint() uint64 { return n.fpr }

// Committed returns the number of committed journal records.
func (n *NodeEngine) Committed() int { return len(n.jrn.Records()) }

// HasPending reports whether the journal holds a prepared,
// undecided record.
func (n *NodeEngine) HasPending() bool { return n.jrn.HasPending() }

// StepsDone returns the superstep count of the loaded barrier state.
func (n *NodeEngine) StepsDone() int { return n.stepsDone }

// Halted reports whether the loaded barrier state has all VPs halted.
func (n *NodeEngine) Halted() bool { return n.halted }

// ResolvePending applies the coordinator's 2PC decision to a prepared
// tail: commit advances HEAD over it, abort truncates it.
func (n *NodeEngine) ResolvePending(commit bool) error {
	if !n.jrn.HasPending() {
		return nil
	}
	if commit {
		// The pending record's writes happened before this process
		// opened the store, so the dirty set does not cover the barrier
		// being committed: delta coverage is unknown until the next
		// full export.
		n.exportBase = -1
		return n.jrn.CommitPending()
	}
	return n.jrn.AbortPending()
}

// LoadCommitted restores the node's processor state from the last
// committed journal record.
func (n *NodeEngine) LoadCommitted() error {
	recs := n.jrn.Records()
	if len(recs) == 0 {
		return &journal.Error{Path: n.dir, Record: -1,
			Reason: "no committed checkpoint to load (the node crashed before its first barrier; reset it fresh)"}
	}
	return n.decodeManifest(recs[len(recs)-1])
}

// Setup reserves the node's context areas and writes its VPs' initial
// contexts.
func (n *NodeEngine) Setup() error {
	n.sh.setupReserve(n.ps)
	sp := n.sh.tr.Begin(obs.CatEngine, phSetup, n.ps.id, 0)
	defer sp.End()
	return n.sh.writeInitialContexts(n.ps)
}

// PrepareSetup collects the setup-phase statistics (resetting the
// running counters, exactly at the boundary the in-process engine
// resets them), then prepares the setup barrier record.
func (n *NodeEngine) PrepareSetup() (disk.Stats, error) {
	stats := n.ps.dsk.Stats()
	n.ps.dsk.ResetStats()
	n.stepsDone = 0
	n.halted = false
	return stats, n.prepare(-1)
}

// BeginStep resets the node's superstep-scoped scratch.
func (n *NodeEngine) BeginStep() { n.sh.beginStep(n.ps) }

// Fetch runs the fetching phase of batch j: read the batch's blocks
// from the local disks and group them by destination processor. A nil
// out means the batch had no input. nwords[o] counts words addressed
// to processor o; the coordinator charges the off-diagonal entries.
func (n *NodeEngine) Fetch(j, step int) (out []BlockBatch, nwords []int64, err error) {
	sp := n.sh.tr.BeginStep(obs.CatEngine, phFetchMsg, n.ps.id, 0, step, j)
	defer sp.End()
	raw, nwords, err := n.sh.fetchForward(n.ps, j)
	if err != nil || raw == nil {
		return nil, nil, err
	}
	out = make([]BlockBatch, len(raw))
	for o := range raw {
		out[o] = BlockBatch{blocks: raw[o]}
	}
	return out, nwords, nil
}

// Compute runs the computing phase of batch j over the inbox (one
// batch per source processor, self included; a zero-value BlockBatch
// is an empty slot).
func (n *NodeEngine) Compute(j, step int, in []BlockBatch) (*BatchOut, error) {
	raw := make([][]wireBlock, n.sh.cfg.P)
	for src := range raw {
		if src < len(in) {
			raw[src] = in[src].blocks
		}
	}
	bo, err := n.sh.computeBatch(n.ps, j, step, raw)
	if err != nil {
		return nil, err
	}
	out := &BatchOut{
		Scatter: make([]BlockBatch, len(bo.scatter)),
		Pkts:    bo.pkts,
		Wrds:    bo.wrds,
		Traffic: bo.traffic,
	}
	for t := range bo.scatter {
		out.Scatter[t] = BlockBatch{blocks: bo.scatter[t]}
	}
	return out, nil
}

// Write runs the writing phase: store the scattered packets this node
// received (one batch per source processor, self included).
func (n *NodeEngine) Write(j, step int, in []BlockBatch) error {
	sp := n.sh.tr.BeginStep(obs.CatEngine, phWriteMsg, n.ps.id, 0, step, j)
	defer sp.End()
	raw := make([][]wireBlock, n.sh.cfg.P)
	for src := range raw {
		if src < len(in) {
			raw[src] = in[src].blocks
		}
	}
	return n.sh.receiveWrite(n.ps, raw)
}

// StepTotals returns the superstep's halt votes and messages sent by
// this node's VPs.
func (n *NodeEngine) StepTotals() (halts, sends int) { return n.ps.halts, n.ps.sends }

// Route runs Step 2 of Algorithm 3 on the node's received blocks; the
// result is parked until Prepare installs it.
func (n *NodeEngine) Route(step int) error {
	sp := n.sh.tr.BeginStep(obs.CatEngine, phRoute, n.ps.id, 0, step, -1)
	defer sp.End()
	return n.sh.routeLocal(n.ps)
}

// StepOps returns the parallel I/O operations this node consumed since
// BeginStep; the coordinator charges the slowest node's share.
func (n *NodeEngine) StepOps() int64 { return n.ps.dsk.Stats().Ops - n.ps.opsMark }

// Prepare is the node's PREPARE phase for superstep step: install the
// parked routing result and flip the context buffers (the local
// barrier commit), fsync the node's data, and journal the prepared —
// not yet committed — barrier record.
func (n *NodeEngine) Prepare(step int, halted bool) error {
	if err := n.sh.commitProc(n.ps); err != nil {
		return err
	}
	n.stepsDone = step + 1
	n.halted = halted
	return n.prepare(step)
}

func (n *NodeEngine) prepare(step int) error {
	sp := n.sh.tr.BeginStep(obs.CatEngine, phBarrier, n.ps.id, 0, step, -1)
	err := n.ps.store.Sync()
	sp.End()
	if err != nil {
		return err
	}
	enc := words.NewEncoder(nil)
	n.encodeManifest(enc)
	if err := n.jrn.Prepare(enc.Words()); err != nil {
		return err
	}
	n.sh.tr.Flush() //nolint:errcheck
	return nil
}

// Commit applies the coordinator's COMMIT decision: advance the
// journal HEAD over the prepared record.
func (n *NodeEngine) Commit() error { return n.jrn.CommitPending() }

// Reload is the node's ABORT path: discard every in-memory and
// uncommitted on-disk effect of the current superstep attempt by
// closing and reopening the store and journal, rolling back a prepared
// tail, and restoring the last committed barrier state. After Reload
// the node is bitwise-identical to one that never ran the attempt.
func (n *NodeEngine) Reload() error {
	// The aborted attempt's writes are logically dead, but its dirty
	// marks must outlive the store instance: the replay's writes are a
	// subset-rewrite of them, and earlier uncommitted-to-replica
	// barriers may still be in the accumulator.
	n.mergeDirty()
	var errs []error
	if err := n.jrn.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := n.ps.store.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := joinErrs(errs); err != nil {
		return err
	}
	ps, err := n.sh.newProcState(n.ps.id, procDir(n.dir, n.ps.id), true)
	if err != nil {
		return err
	}
	ps.ckptOn = true
	n.ps = ps
	jrn, err := journal.OpenPrepared(n.dir)
	if err != nil {
		return err
	}
	jrn.SetTracer(n.sh.tr, n.ps.id)
	n.jrn = jrn
	if err := n.jrn.AbortPending(); err != nil {
		return err
	}
	return n.LoadCommitted()
}

// Final reads the node's final VP contexts and returns its complete
// accounting report. It is idempotent: repeated calls (the
// coordinator retries collection after losing a peer) return the
// first report rather than re-charging the finish-phase reads.
func (n *NodeEngine) Final() (*NodeReport, error) {
	if n.report != nil {
		return n.report, nil
	}
	r := &NodeReport{
		Lo: n.ps.lo, Hi: n.ps.hi,
		RunStats: n.ps.dsk.Stats(),
		RouteOps: n.ps.routeOps,
		Ragged:   n.ps.ragged,
		MaxSkew:  n.ps.maxSkew,
		MemHigh:  n.ps.acct.High(),
		PeakLive: n.ps.peakLive,
	}
	sp := n.sh.tr.Begin(obs.CatEngine, phFinish, n.ps.id, 0)
	err := n.sh.readFinalContexts(n.ps, func(id int, ctx []uint64) error {
		cp := make([]uint64, len(ctx))
		copy(cp, ctx)
		r.Ctx = append(r.Ctx, cp)
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	s := n.ps.dsk.Stats()
	r.FinishOps = s.Ops - r.RunStats.Ops
	r.FinishReadOps = s.ReadOps - r.RunStats.ReadOps
	r.FinishBlocksRead = s.BlocksRead - r.RunStats.BlocksRead
	n.report = r
	return r, nil
}

// Close releases the node's journal and store.
func (n *NodeEngine) Close() error {
	var errs []error
	if n.jrn != nil {
		errs = append(errs, n.jrn.Close())
	}
	if n.ps != nil && n.ps.store != nil {
		errs = append(errs, n.ps.store.Close())
	}
	return joinErrs(errs)
}

func (n *NodeEngine) encodeManifest(enc *words.Encoder) {
	enc.PutUint(manifestNodeKind)
	enc.PutUint(n.fpr)
	enc.PutInt(int64(n.stepsDone))
	enc.PutBool(n.halted)
	encodeProcManifest(enc, n.ps)
}

func (n *NodeEngine) decodeManifest(payload []uint64) error {
	dec := words.NewDecoder(payload)
	if err := checkManifestHeader(dec, manifestNodeKind, n.fpr); err != nil {
		return err
	}
	n.stepsDone = int(dec.Int())
	n.halted = dec.Bool()
	return decodeProcManifest(dec, n.ps)
}

// --- CoordCore ---------------------------------------------------------

// CoordCore is the coordinator's share of a cluster run: the global
// cost accounting the in-process engine keeps on parEngine, the halt
// logic, the 2PC decision journal, and the final Result assembly. The
// cluster coordinator feeds it the per-node phase outputs in node
// order, which reproduces the in-process arithmetic exactly.
type CoordCore struct {
	sh  simShape
	jrn *journal.Journal
	dir string
	fpr uint64

	setup     disk.Stats
	stepsDone int
	halted    bool

	pktX  [][]int64
	wordX [][]int64

	commTime  float64
	commPkts  int64
	commWords int64
	ioTime    float64

	// Abort rollback marks, taken at BeginStep.
	recMark   int
	mkComm    float64
	mkPkts    int64
	mkWords   int64
	mkIO      float64
	stepState bool // a step is open (BeginStep without FinishStep/AbortStep)
}

// OpenCoord opens the coordinator core rooted at dir. With resume
// true, the existing decision journal is opened; the caller inspects
// Committed and calls LoadCommitted when it is nonzero.
func OpenCoord(p bsp.Program, cfg MachineConfig, opts Options, dir string, resume bool) (*CoordCore, error) {
	opts.defaults()
	if err := ClusterCheck(cfg, opts); err != nil {
		return nil, err
	}
	if err := bsp.CheckProgram(p); err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, fmt.Errorf("core: the coordinator needs a state directory (its journal holds the 2PC decisions)")
	}
	c := &CoordCore{
		sh:  newSimShape(p, cfg, opts),
		dir: dir,
	}
	c.fpr = configFingerprint(manifestCoordKind, cfg, opts, c.sh.v, c.sh.mu, c.sh.gamma)
	var err error
	if resume {
		c.jrn, err = journal.Open(dir)
	} else {
		c.jrn, err = journal.Create(dir)
	}
	if err != nil {
		return nil, err
	}
	c.jrn.SetTracer(c.sh.tr, cfg.P)
	return c, nil
}

// P returns the machine's real processor count.
func (c *CoordCore) P() int { return c.sh.cfg.P }

// V returns the program's virtual processor count.
func (c *CoordCore) V() int { return c.sh.v }

// Batches returns the rounds per compound superstep.
func (c *CoordCore) Batches() int { return c.sh.batches }

// MaxSupersteps returns the run's superstep bound.
func (c *CoordCore) MaxSupersteps() int { return c.sh.opts.MaxSupersteps }

// StepsDone returns the committed superstep count.
func (c *CoordCore) StepsDone() int { return c.stepsDone }

// Halted reports whether the committed state has all VPs halted.
func (c *CoordCore) Halted() bool { return c.halted }

// Committed returns the number of committed decision records.
func (c *CoordCore) Committed() int { return len(c.jrn.Records()) }

// NodeFpr derives the manifest fingerprint node id must present.
func (c *CoordCore) NodeFpr(id int) uint64 {
	return nodeFingerprint(c.sh.cfg, c.sh.opts, c.sh.v, c.sh.mu, c.sh.gamma, id)
}

// LoadCommitted restores the coordinator state from the last committed
// decision record.
func (c *CoordCore) LoadCommitted() error {
	recs := c.jrn.Records()
	if len(recs) == 0 {
		return &journal.Error{Path: c.dir, Record: -1,
			Reason: "no committed checkpoint to resume from (the run crashed before its first barrier; start it fresh)"}
	}
	dec := words.NewDecoder(recs[len(recs)-1])
	if err := checkManifestHeader(dec, manifestCoordKind, c.fpr); err != nil {
		return err
	}
	c.stepsDone = int(dec.Int())
	c.halted = dec.Bool()
	c.setup = decodeStats(dec)
	c.ioTime = dec.Float()
	c.commTime = dec.Float()
	t := dec.Ints()
	c.commPkts, c.commWords = t[0], t[1]
	c.sh.rec.Restore(decodeRecSteps(dec))
	return nil
}

func (c *CoordCore) encodeManifest(enc *words.Encoder) {
	enc.PutUint(manifestCoordKind)
	enc.PutUint(c.fpr)
	enc.PutInt(int64(c.stepsDone))
	enc.PutBool(c.halted)
	encodeStats(enc, c.setup)
	enc.PutFloat(c.ioTime)
	enc.PutFloat(c.commTime)
	enc.PutInts([]int64{c.commPkts, c.commWords})
	encodeRecSteps(enc, c.sh.rec.Steps())
}

func (c *CoordCore) appendDecision(step int) error {
	enc := words.NewEncoder(nil)
	c.encodeManifest(enc)
	if err := c.jrn.Append(enc.Words()); err != nil {
		return err
	}
	c.sh.tr.Flush() //nolint:errcheck
	if c.sh.opts.OnCommit != nil {
		c.sh.opts.OnCommit(step)
	}
	return nil
}

// CommitSetup folds the nodes' setup statistics (in node order) and
// appends the setup decision record.
func (c *CoordCore) CommitSetup(nodeStats []disk.Stats) error {
	for _, s := range nodeStats {
		c.setup.Add(s)
	}
	c.stepsDone = 0
	c.halted = false
	return c.appendDecision(-1)
}

// BeginStep opens superstep accounting: fresh exchange matrices and a
// rollback mark for AbortStep.
func (c *CoordCore) BeginStep() {
	P := c.sh.cfg.P
	c.recMark = c.sh.rec.Mark()
	c.mkComm, c.mkPkts, c.mkWords, c.mkIO = c.commTime, c.commPkts, c.commWords, c.ioTime
	c.sh.rec.BeginStep()
	c.pktX = make([][]int64, P)
	c.wordX = make([][]int64, P)
	for i := 0; i < P; i++ {
		c.pktX[i] = make([]int64, P)
		c.wordX[i] = make([]int64, P)
	}
	c.stepState = true
}

// AddFetch folds node src's fetching-phase word counts into the
// exchange matrices — the identical arithmetic the in-process driver
// applies to fetchForward's output.
func (c *CoordCore) AddFetch(src int, nwords []int64) {
	for o, w := range nwords {
		if o == src || w == 0 {
			continue
		}
		c.wordX[src][o] += w
		c.pktX[src][o] += c.sh.fetchPkts(w)
	}
}

// AddBatch folds node src's computing-phase packet/word tallies into
// the exchange matrices.
func (c *CoordCore) AddBatch(src int, bo *BatchOut) {
	for t := range bo.Pkts {
		c.pktX[src][t] += bo.Pkts[t]
		c.wordX[src][t] += bo.Wrds[t]
	}
}

// RecordTraffic folds VP traffic records into the cost recorder. The
// coordinator calls it per node in node order; the recorder's folds
// are commutative, so this reproduces the in-process totals.
func (c *CoordCore) RecordTraffic(ts []bsp.VPTraffic) {
	for _, t := range ts {
		c.sh.rec.RecordVP(t)
	}
}

// Vote applies the halt logic to the nodes' summed votes. The
// coordinator calls it before deciding whether to run the routing
// phase: a halting superstep skips reorganization.
func (c *CoordCore) Vote(step, halts, sends int) (halted bool, err error) {
	switch {
	case halts == c.sh.v:
		if sends > 0 {
			return false, fmt.Errorf("core: %d messages sent while halting in superstep %d", sends, step)
		}
		return true, nil
	case halts != 0:
		return false, fmt.Errorf("core: split halt vote in superstep %d: %d of %d VPs halted", step, halts, c.sh.v)
	}
	return false, nil
}

// FinishStep closes the superstep's cost accounting: the I/O time
// charge (maxOps is the slowest node's operations) and the
// communication charges from the exchange matrices.
func (c *CoordCore) FinishStep(maxOps int64) {
	c.sh.rec.EndStep()
	c.stepState = false
	c.ioTime += c.sh.cfg.G * float64(maxOps)
	ct, pkts, wrds := superstepCommCosts(c.sh.cfg, c.pktX, c.wordX)
	c.commTime += ct
	c.commPkts += pkts
	c.commWords += wrds
}

// AbortStep rewinds the coordinator's accounting to the BeginStep
// mark, leaving no trace of the aborted attempt — the cluster's
// replays stay invisible in Results and EMStats, like a clean run.
func (c *CoordCore) AbortStep() {
	c.sh.rec.Rewind(c.recMark)
	c.commTime, c.commPkts, c.commWords, c.ioTime = c.mkComm, c.mkPkts, c.mkWords, c.mkIO
	c.stepState = false
}

// CommitStep appends the superstep's decision record — the 2PC commit
// point. Every node must have PREPAREd before this is called.
func (c *CoordCore) CommitStep(step int, halted bool) error {
	c.stepsDone = step + 1
	c.halted = halted
	return c.appendDecision(step)
}

// Assemble builds the run Result from the nodes' final reports (in
// node order), reproducing the in-process engine's aggregation
// exactly. Overlap stays zero: it is wall-clock observability, outside
// the bitwise-identity contract, and is not shipped over the wire.
func (c *CoordCore) Assemble(reports []*NodeReport) (*Result, error) {
	if len(reports) != c.sh.cfg.P {
		return nil, fmt.Errorf("core: %d node reports for P = %d", len(reports), c.sh.cfg.P)
	}
	vps := make([]bsp.VP, c.sh.v)
	var runStats disk.Stats
	perProc := make([]disk.Stats, len(reports))
	var finish disk.Stats
	for i, r := range reports {
		perProc[i] = r.RunStats
		runStats.Add(r.RunStats)
		finish.Ops += r.FinishOps
		finish.ReadOps += r.FinishReadOps
		finish.BlocksRead += r.FinishBlocksRead
	}
	for _, r := range reports {
		if len(r.Ctx) != r.Hi-r.Lo {
			return nil, fmt.Errorf("core: node report covers %d contexts for VPs [%d, %d)", len(r.Ctx), r.Lo, r.Hi)
		}
		for idx, ctx := range r.Ctx {
			id := r.Lo + idx
			vp := c.sh.p.NewVP(id)
			vp.Load(words.NewDecoder(ctx))
			vps[id] = vp
		}
	}
	for _, vp := range vps {
		if vp == nil {
			return nil, fmt.Errorf("core: node reports leave VPs uncovered")
		}
	}
	res := &Result{VPs: vps, Costs: c.sh.rec.Costs()}
	em := EMStats{
		K:              c.sh.k,
		Groups:         c.sh.batches,
		CtxBlocksPerVP: c.sh.muBlocks,
		Setup:          c.setup,
		Run:            runStats,
		Finish:         finish,
		PerProc:        perProc,
		IOTime:         c.ioTime,
		CommTime:       c.commTime,
		CommPkts:       c.commPkts,
		CommWords:      c.commWords,
	}
	for _, r := range reports {
		em.RouteOps += r.RouteOps
		em.RaggedSlots += r.Ragged
		if r.MaxSkew > em.MaxBucketSkew {
			em.MaxBucketSkew = r.MaxSkew
		}
		if r.MemHigh > em.MemHigh {
			em.MemHigh = r.MemHigh
		}
		if r.PeakLive > em.LiveBlocksPerDrive {
			em.LiveBlocksPerDrive = r.PeakLive
		}
	}
	res.EM = em
	publishEMStats(c.sh.opts.Metrics, &res.EM)
	return res, nil
}

// Close releases the decision journal.
func (c *CoordCore) Close() error {
	if c.jrn != nil {
		return c.jrn.Close()
	}
	return nil
}

func joinErrs(errs []error) error {
	var first error
	for _, err := range errs {
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
