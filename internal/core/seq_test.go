package core_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/prng"
	"embsp/internal/words"
)

func tinyMachine(d, b, m int) core.MachineConfig {
	return core.MachineConfig{
		P: 1, M: m, D: d, B: b, G: 10,
		Cost: bsp.CostParams{GUnit: 1, GPkt: 2, Pkt: b, L: 5},
	}
}

func TestSeqRingMatchesReference(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		for _, v := range []int{1, 3, 8, 17} {
			p := &bsptest.RingProgram{V: v, Rounds: 5}
			ref, err := bsp.Run(p, bsp.RunOptions{Seed: 11, PktSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyMachine(d, 8, 64) // µ=4 ⇒ k=16, small B forces real blocking
			res, err := core.Run(p, cfg, core.Options{Seed: 11})
			if err != nil {
				t.Fatalf("D=%d v=%d: %v", d, v, err)
			}
			for id := 0; id < v; id++ {
				if got, want := bsptest.RingAcc(res.ToBSPResult(), id), bsptest.RingAcc(ref, id); got != want {
					t.Errorf("D=%d v=%d vp=%d: acc=%d, want %d", d, v, id, got, want)
				}
			}
			if res.Costs.Supersteps != ref.Costs.Supersteps {
				t.Errorf("D=%d v=%d: λ=%d, want %d", d, v, res.Costs.Supersteps, ref.Costs.Supersteps)
			}
		}
	}
}

func TestSeqRandomProgramEquivalence(t *testing.T) {
	// The central fidelity property: the EM engine produces bitwise
	// identical results to the in-memory reference on randomized
	// message traffic, for every machine shape.
	f := func(seed uint64) bool {
		r := prng.New(seed)
		v := r.Intn(20) + 1
		p := &bsptest.RandomProgram{
			V:           v,
			Steps:       r.Intn(4) + 1,
			MsgsPerStep: r.Intn(4),
			MaxLen:      r.Intn(20),
		}
		ref, err := bsp.Run(p, bsp.RunOptions{Seed: seed, PktSize: 8})
		if err != nil {
			return false
		}
		d := r.Intn(4) + 1
		b := 8 + r.Intn(8)
		m := d*b + r.Intn(200)
		cfg := tinyMachine(d, b, m)
		res, err := core.Run(p, cfg, core.Options{Seed: seed})
		if err != nil {
			return false
		}
		a, bb := bsptest.Checksums(ref), bsptest.Checksums(res.ToBSPResult())
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSeqDeterministicModeEquivalent(t *testing.T) {
	p := &bsptest.RandomProgram{V: 12, Steps: 3, MsgsPerStep: 3, MaxLen: 10}
	cfg := tinyMachine(4, 8, 128)
	a, err := core.Run(p, cfg, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(p, cfg, core.Options{Seed: 5, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := bsptest.Checksums(a.ToBSPResult()), bsptest.Checksums(b.ToBSPResult())
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("deterministic placement changed program output at VP %d", i)
		}
	}
	// Deterministic runs must be reproducible op-for-op.
	b2, err := core.Run(p, cfg, core.Options{Seed: 5, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.EM.Run.Ops != b2.EM.Run.Ops {
		t.Errorf("deterministic mode not reproducible: %d vs %d ops", b.EM.Run.Ops, b2.EM.Run.Ops)
	}
}

func TestSeqCostsMatchReference(t *testing.T) {
	p := &bsptest.RandomProgram{V: 10, Steps: 3, MsgsPerStep: 2, MaxLen: 6}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 3, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, tinyMachine(2, 8, 64), core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Costs.Supersteps != ref.Costs.Supersteps {
		t.Fatalf("λ: %d vs %d", res.Costs.Supersteps, ref.Costs.Supersteps)
	}
	for i := range ref.Costs.PerStep {
		a, b := res.Costs.PerStep[i], ref.Costs.PerStep[i]
		if a != b {
			t.Errorf("superstep %d cost differs:\n em: %+v\nref: %+v", i, a, b)
		}
	}
}

func TestSeqGroupSizing(t *testing.T) {
	// µ=4 words; M=9 words with D=1,B=8... M must be >= D*B, so use
	// B=8, M=9 invalid. Use M = 12 ⇒ k = 3.
	p := &bsptest.RingProgram{V: 10, Rounds: 1}
	cfg := tinyMachine(1, 8, 12)
	res, err := core.Run(p, cfg, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EM.K != 3 {
		t.Errorf("K = %d, want 3 (⌊12/4⌋)", res.EM.K)
	}
	if res.EM.Groups != 4 {
		t.Errorf("Groups = %d, want 4 (⌈10/3⌉)", res.EM.Groups)
	}
	if res.EM.CtxBlocksPerVP != 1 {
		t.Errorf("CtxBlocksPerVP = %d, want 1", res.EM.CtxBlocksPerVP)
	}
}

func TestSeqStatsSanity(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	cfg := tinyMachine(4, 8, 256)
	res, err := core.Run(p, cfg, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	em := res.EM
	if em.Run.Ops <= 0 {
		t.Error("no I/O ops recorded")
	}
	if em.IOTime != cfg.G*float64(em.Run.Ops) {
		t.Errorf("IOTime = %v, want G*Ops = %v", em.IOTime, cfg.G*float64(em.Run.Ops))
	}
	if em.RouteOps <= 0 || em.RouteOps > em.Run.Ops {
		t.Errorf("RouteOps = %d out of range (0, %d]", em.RouteOps, em.Run.Ops)
	}
	if em.Setup.Ops <= 0 || em.Finish.Ops <= 0 {
		t.Errorf("Setup.Ops = %d, Finish.Ops = %d, want > 0", em.Setup.Ops, em.Finish.Ops)
	}
	if em.MemHigh <= 0 {
		t.Error("memory accounting recorded nothing")
	}
	if em.MaxBucketSkew < 1 {
		t.Errorf("MaxBucketSkew = %v, want >= 1", em.MaxBucketSkew)
	}
	if em.LiveBlocksPerDrive <= 0 {
		t.Error("LiveBlocksPerDrive not tracked")
	}
	// Every drive should see traffic on a 4-drive machine with this
	// much messaging.
	for d, pd := range em.Run.PerDrive {
		if pd.BlocksRead+pd.BlocksWritten == 0 {
			t.Errorf("drive %d idle", d)
		}
	}
}

func TestSeqUtilizationHighForUniformTraffic(t *testing.T) {
	// An all-to-all with equal message sizes should keep all D drives
	// busy nearly all the time.
	p := &bsptest.RandomProgram{V: 32, Steps: 3, MsgsPerStep: 8, MaxLen: 8}
	cfg := tinyMachine(4, 8, 1024)
	res, err := core.Run(p, cfg, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.EM.Run.Utilization(); u < 0.5 {
		t.Errorf("drive utilization = %v, want >= 0.5", u)
	}
}

func TestSeqConfigValidation(t *testing.T) {
	p := &bsptest.RingProgram{V: 4, Rounds: 1}
	bad := []core.MachineConfig{
		{P: 0, M: 64, D: 1, B: 8, Cost: bsp.CostParams{Pkt: 8}},
		{P: 1, M: 64, D: 0, B: 8, Cost: bsp.CostParams{Pkt: 8}},
		{P: 1, M: 64, D: 1, B: 4, Cost: bsp.CostParams{Pkt: 8}},  // B < header+1
		{P: 1, M: 4, D: 1, B: 8, Cost: bsp.CostParams{Pkt: 8}},   // M < DB
		{P: 1, M: 64, D: 1, B: 16, Cost: bsp.CostParams{Pkt: 8}}, // b < B
	}
	for i, cfg := range bad {
		if _, err := core.Run(p, cfg, core.Options{}); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// bigCtxProgram exercises multi-block contexts: each VP holds
// ctxWords words of state, mutates them every superstep, and trades a
// summary with its ring neighbour.
type bigCtxProgram struct {
	v        int
	rounds   int
	ctxWords int
}

func (p *bigCtxProgram) NumVPs() int          { return p.v }
func (p *bigCtxProgram) MaxContextWords() int { return p.ctxWords + 2 }
func (p *bigCtxProgram) MaxCommWords() int    { return 4 }
func (p *bigCtxProgram) NewVP(id int) bsp.VP {
	vp := &bigCtxVP{p: p, id: id, data: make([]uint64, p.ctxWords)}
	for i := range vp.data {
		vp.data[i] = uint64(id*1000 + i)
	}
	return vp
}

type bigCtxVP struct {
	p    *bigCtxProgram
	id   int
	data []uint64
}

func (v *bigCtxVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	var incoming uint64
	for _, m := range in {
		incoming += m.Payload[0]
	}
	for i := range v.data {
		v.data[i] = v.data[i]*3 + incoming + uint64(i)
	}
	if env.Superstep() == v.p.rounds {
		return true, nil
	}
	var sum uint64
	for _, w := range v.data {
		sum += w
	}
	env.Send((v.id+1)%v.p.v, []uint64{sum})
	return false, nil
}

func (v *bigCtxVP) Save(enc *words.Encoder) { enc.PutUints(v.data) }
func (v *bigCtxVP) Load(dec *words.Decoder) { v.data = dec.Uints() }

func TestSeqLargeContexts(t *testing.T) {
	// Contexts spanning multiple blocks (µ > B).
	p := &bigCtxProgram{v: 6, rounds: 3, ctxWords: 50}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 4, PktSize: 8, ValidateContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, tinyMachine(2, 8, 200), core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.VPs {
		a := ref.VPs[i].(*bigCtxVP).data
		b := res.VPs[i].(*bigCtxVP).data
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("VP %d word %d: %d vs %d", i, j, a[j], b[j])
			}
		}
	}
	if res.EM.CtxBlocksPerVP != 7 { // ⌈52/8⌉ with µ=52
		t.Errorf("CtxBlocksPerVP = %d, want 7", res.EM.CtxBlocksPerVP)
	}
}
