// Package core implements the paper's central contribution: the
// simulation of BSP* / CGM algorithms as external-memory algorithms
// (Dehne–Dittrich–Hutchinson, Section 5).
//
// The sequential engine (p = 1) implements Algorithm 1
// (SeqCompoundSuperstep) and Algorithm 2 (SimulateRouting); the
// parallel engine (p > 1) implements Algorithm 3
// (ParCompoundSuperstep). Both execute any bsp.Program with contexts
// held on a simulated multi-disk subsystem, materializing only
// k = ⌊M/µ⌋ virtual processors at a time, and both are required to
// produce results bitwise identical to the in-memory reference runner
// bsp.Run.
package core

import (
	"context"
	"fmt"
	"time"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/obs"
	"embsp/internal/redundancy"
)

// MachineConfig describes the target EM-BSP* machine (Section 3).
type MachineConfig struct {
	// P is the number of real processors.
	P int
	// M is the internal memory per real processor, in words.
	M int
	// D is the number of disk drives per real processor.
	D int
	// B is the transfer block (track) size in words.
	B int
	// G is the model time of one parallel I/O operation.
	G float64
	// Cost holds the BSP*-level parameters (ĝ, g, b, L). The model
	// requires the packet size b ≥ B.
	Cost bsp.CostParams
	// MemSlack scales the engine's internal-memory budget to
	// MemSlack·M words, reflecting the Θ(kµ) = O(M) constant of the
	// theorems. 0 means 8.
	MemSlack int
}

// headerWords is the per-block header of a message block: destination
// VP, source VP, per-source sequence number, chunk index, and the
// total payload length of the message.
const headerWords = 5

// Validate checks the machine configuration against the model's
// constraints.
func (c MachineConfig) Validate() error {
	if c.P <= 0 {
		return fmt.Errorf("core: P = %d, want > 0", c.P)
	}
	if c.D <= 0 || c.B <= 0 {
		return fmt.Errorf("core: D = %d, B = %d, want > 0", c.D, c.B)
	}
	if c.B < headerWords+1 {
		return fmt.Errorf("core: B = %d, want >= %d (message block header plus one payload word)", c.B, headerWords+1)
	}
	if c.M < c.D*c.B {
		return fmt.Errorf("core: M = %d < D·B = %d; the model requires one block per disk to fit in memory", c.M, c.D*c.B)
	}
	if c.G < 0 {
		return fmt.Errorf("core: G = %v, want >= 0", c.G)
	}
	if c.Cost.Pkt != 0 && c.Cost.Pkt < c.B {
		return fmt.Errorf("core: packet size b = %d < block size B = %d; the simulation requires b >= B", c.Cost.Pkt, c.B)
	}
	if c.Cost.L < 0 || c.Cost.GPkt < 0 || c.Cost.GUnit < 0 {
		return fmt.Errorf("core: negative cost parameter (ĝ=%v, g=%v, L=%v); all must be >= 0", c.Cost.GUnit, c.Cost.GPkt, c.Cost.L)
	}
	if c.MemSlack < 0 {
		return fmt.Errorf("core: MemSlack = %d, want >= 0 (0 selects the default)", c.MemSlack)
	}
	return nil
}

func (c MachineConfig) memSlack() int {
	if c.MemSlack <= 0 {
		return 8
	}
	return c.MemSlack
}

// DefaultMachine returns a small laptop-scale machine useful in
// examples: one processor, 1 MiW memory, 4 disks, 1 KiW blocks, with
// the packet size matched to the block size (the model requires
// b >= B).
func DefaultMachine() MachineConfig {
	cost := bsp.DefaultCostParams()
	cost.Pkt = 1 << 10
	cost.GPkt = float64(cost.Pkt)
	return MachineConfig{P: 1, M: 1 << 20, D: 4, B: 1 << 10, G: 1 << 12, Cost: cost}
}

// Options configures a simulation run.
type Options struct {
	// Seed keys all randomness: the Env.Rand streams of the program
	// and the engine's own disk/processor permutations.
	Seed uint64
	// MaxSupersteps aborts runaway programs; 0 means 1 << 20.
	MaxSupersteps int
	// Deterministic selects the deterministic placement variant the
	// paper notes is possible for communication of predetermined size
	// (CGM): blocks are assigned to disks round-robin instead of by
	// random permutation.
	Deterministic bool
	// NoRouting is an ablation of Algorithm 2 (sequential engine
	// only): generated blocks are left where the randomized writing
	// phase put them, and the next fetch phase reads each group's
	// blocks from their scattered tracks with greedy per-drive
	// batching. Lemma 2 says the random placement is already balanced
	// whp, so this mode usually performs well — the paper's two-pass
	// reorganization buys the worst-case guarantee and physically
	// consecutive tracks. The ablate/routing bench quantifies the
	// trade.
	NoRouting bool
	// FaultPlan, when non-nil and enabled, wraps every processor's disk
	// array in the fault-injection layer and turns on the engines'
	// superstep checkpoint/replay machinery (contexts double-buffered,
	// input-area frees deferred to the barrier commit). The simulation
	// result remains bitwise identical to the fault-free run; the extra
	// work appears in EMStats as RecoveryOps/Replays/MirrorOps.
	// Incompatible with NoRouting (the ablation releases its scattered
	// blocks while reading them, destroying the replay source).
	FaultPlan *fault.Plan
	// MaxRetries bounds the fault layer's transparent charged retries
	// per operation: 0 means fault.DefaultMaxRetries, -1 disables
	// retries so every transient fault escalates to a superstep replay
	// (useful for exercising the rollback path). Values below -1 are
	// rejected.
	MaxRetries int
	// StateDir, when non-empty, makes the run durable: every simulated
	// drive is backed by a real file under this directory and every
	// compound-superstep barrier is committed to a write-ahead journal
	// there, so a crashed or killed run can be continued with Resume.
	// Incompatible with NoRouting (the ablation releases its scattered
	// blocks while reading them, leaving nothing durable to resume
	// from).
	StateDir string
	// Resume continues the run recorded in StateDir from its last
	// committed barrier instead of starting fresh. The program, machine
	// configuration and options must match the original run; the
	// journal records a fingerprint and the engines refuse a mismatch.
	Resume bool
	// OnCommit, when non-nil, is invoked after every durable barrier
	// commit with the superstep index just committed (-1 for the
	// initial-context commit). Tests use it to interrupt runs at exact
	// barriers; it is ignored without a StateDir.
	OnCommit func(step int)
	// Redundancy selects how each processor's disk array survives a
	// permanent drive loss: RedundancyNone (no protection — a scheduled
	// FailDriveOp is rejected by Validate), RedundancyMirror (the fault
	// layer keeps a full copy of every written track, 2× capacity), or
	// RedundancyParity (rotated XOR parity groups across the D drives,
	// ~1/(D-1) overhead, with degraded reads, background scrub and
	// online rebuild). For backwards compatibility, a zero Redundancy
	// with FaultPlan.Mirror set behaves as RedundancyMirror.
	Redundancy redundancy.Mode
	// Scrub enables the background scrub pass between compound
	// supersteps (RedundancyParity only): a budgeted slice of tracks is
	// checksum-verified per barrier and latent corruption is repaired
	// from parity, with the cursor carried in the superstep manifest.
	Scrub bool
	// IOWorkers controls the per-drive I/O worker goroutines of the
	// file-backed store (StateDir runs): 0 selects the default of one
	// worker per drive, -1 disables them (synchronous physical I/O),
	// and n > 0 asks for n workers (clamped to D). In-memory arrays
	// have no physical transfers to overlap, so the knob is ignored
	// there. The setting changes wall-clock behaviour only — results
	// and every model-visible statistic are bitwise identical either
	// way — so a durable run may be resumed with a different value
	// (the knob is deliberately left out of the config fingerprint).
	IOWorkers int
	// Pipeline controls the engines' group pipeline: while group g
	// computes, group g+1's context and message blocks are prefetched
	// into the store's physical cache, and group g-1's writes drain in
	// the background through the store's write-behind. 0 (auto) turns
	// the pipeline on exactly when the store is file-backed with I/O
	// workers enabled; 1 forces it on (a no-op over in-memory arrays,
	// which have nothing to prefetch into); -1 forces it off.
	// Like IOWorkers, the pipeline is invisible to the model: all
	// accounting happens at the logical operation in program order, so
	// results and cost statistics are bitwise identical on and off.
	Pipeline int
	// DriveLatency emulates the access time of one physical track
	// transfer on the file-backed store: every slot read, write or wipe
	// sleeps this long on the goroutine moving the bytes. It models the
	// EM machine's independent drives on hosts whose page cache hides
	// real device latency, making schedule quality (D-parallel access,
	// I/O–compute overlap) measurable; embsp-bench's perf/pipeline
	// experiment uses it. Purely wall-clock: results and every model
	// statistic are unchanged, and like IOWorkers the knob stays out of
	// the config fingerprint. Zero emulates nothing; ignored by
	// in-memory arrays.
	DriveLatency time.Duration
	// MappedStore selects the mmap-backed store variant for durable
	// runs: checksummed track slots are mapped into memory instead of
	// accessed with pread/pwrite, so a read is one copy from the
	// mapping into the engine's group buffer and a write is one copy
	// back — the zero-copy fast path for page-cache-fast storage. The
	// on-disk layout is identical to the default file store, so the
	// knob stays out of the config fingerprint like IOWorkers and
	// Pipeline do: a crashed run may resume with either store kind.
	// Mapped pages are page-cache memory, not engine memory, and are
	// accounted separately (store_mapped_high_words metric), never
	// against M. On platforms without mmap support the engines fall
	// back to the file store — results are bitwise identical either
	// way; the backend actually opened is reported in
	// EMStats.StoreBackend and counted by the store_mapped_fallbacks
	// metric so a benchmark cannot silently measure the wrong store.
	// Requires StateDir; ignored without one.
	MappedStore bool
	// Tiers stacks bounded cache tiers above the durable store,
	// outermost first: Tiers[0] is closest to the engine, the last
	// entry sits directly on the file or mapped backend. Each tier is
	// a track-granular, budget-bounded staging cache (disk.Tier) that
	// the group pipeline fills one group ahead and drains one group
	// behind — the configurable memory-hierarchy chain of ROADMAP
	// item 5 (scratch → M → D disks). Tier contents are cache, never
	// durable state: a resumed run re-fills empty tiers from the
	// backend, so the chain may change freely across a resume and the
	// spec stays out of the config fingerprint. Like IOWorkers and
	// Pipeline the tiers are invisible to the model — results and
	// every model statistic are bitwise identical with any chain,
	// including none. Requires StateDir.
	Tiers []TierSpec
	// Trace, when non-nil, records the run's wall-clock phase spans:
	// per-superstep/per-group engine phases (context fetch/writeback,
	// message read/write, compute, SimulateRouting, parity
	// flush/scrub/rebuild, barrier fsync, journal commit) on every
	// engine, plus the file-backed store's worker-level physical
	// transfers, exportable as Chrome trace_event JSON. Tracing is pure
	// observability: it is deliberately left out of the config
	// fingerprint and of the bitwise-identity contract (the same
	// carve-out as EMStats.Overlap), so traced, untraced, and
	// traced-resumed runs all produce bitwise-identical results. nil
	// (the default) takes a no-op fast path that skips even the clock
	// reads.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the run's counters as named
	// metrics at the end of the run: the EMStats aggregates plus the
	// overlap, fault and redundancy counters, and (when Trace is also
	// set) per-phase duration histograms. Same observability carve-out
	// as Trace: out of the fingerprint, out of the identity contract,
	// nil costs nothing.
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.MaxSupersteps == 0 {
		o.MaxSupersteps = 1 << 20
	}
}

// effectiveRedundancy resolves the run's redundancy mode: the explicit
// Options.Redundancy if set, else RedundancyMirror when the fault plan
// asks for mirror copies.
func (o Options) effectiveRedundancy() redundancy.Mode {
	if o.Redundancy != redundancy.None {
		return o.Redundancy
	}
	if o.FaultPlan != nil && o.FaultPlan.Mirror {
		return redundancy.Mirror
	}
	return redundancy.None
}

// UnprotectedDriveLossError reports a fault plan that schedules a
// permanent drive death while the run has no redundancy to survive it.
// Options.Validate returns it so the impossible run is rejected up
// front instead of dying mid-simulation with an unrecoverable
// DriveLoss.
type UnprotectedDriveLossError struct {
	FailDrive int
	FailOp    int64
}

func (e *UnprotectedDriveLossError) Error() string {
	return fmt.Sprintf("core: fault plan kills drive %d at op %d but Redundancy is none; a drive loss without mirror or parity protection is unrecoverable (set Options.Redundancy)", e.FailDrive, e.FailOp)
}

// Validate checks the options against each other and against the
// machine configuration, turning invalid combinations into descriptive
// errors up front instead of deep engine failures.
func (o Options) Validate(cfg MachineConfig) error {
	if o.MaxSupersteps < 0 {
		return fmt.Errorf("core: MaxSupersteps = %d, want >= 0 (0 selects the default)", o.MaxSupersteps)
	}
	if o.MaxRetries < -1 {
		return fmt.Errorf("core: MaxRetries = %d, want >= -1 (-1 disables retries, 0 selects the default)", o.MaxRetries)
	}
	if o.IOWorkers < -1 {
		return fmt.Errorf("core: IOWorkers = %d, want >= -1 (-1 disables workers, 0 selects the default)", o.IOWorkers)
	}
	if o.Pipeline < -1 || o.Pipeline > 1 {
		return fmt.Errorf("core: Pipeline = %d, want -1 (off), 0 (auto) or 1 (on)", o.Pipeline)
	}
	if o.DriveLatency < 0 {
		return fmt.Errorf("core: DriveLatency = %v, want >= 0", o.DriveLatency)
	}
	if o.NoRouting && cfg.P != 1 {
		return fmt.Errorf("core: the NoRouting ablation is implemented for P = 1 only")
	}
	if o.NoRouting && o.StateDir != "" {
		return fmt.Errorf("core: the NoRouting ablation cannot run durably (scattered blocks are released as they are read, leaving nothing to resume from)")
	}
	if o.Resume && o.StateDir == "" {
		return fmt.Errorf("core: Resume requires a StateDir")
	}
	if o.MappedStore && o.StateDir == "" {
		return fmt.Errorf("core: MappedStore requires a StateDir (the mapped store maps durable drive files)")
	}
	if len(o.Tiers) > 0 && o.StateDir == "" {
		return fmt.Errorf("core: Tiers requires a StateDir (tiers stack above a durable backend)")
	}
	for i, t := range o.Tiers {
		if t.Words < -1 {
			return fmt.Errorf("core: Tiers[%d].Words = %d, want >= -1 (-1 unbounded, 0 default)", i, t.Words)
		}
		if t.Latency < 0 {
			return fmt.Errorf("core: Tiers[%d].Latency = %v, want >= 0", i, t.Latency)
		}
	}
	switch o.Redundancy {
	case redundancy.None, redundancy.Mirror, redundancy.Parity:
	default:
		return fmt.Errorf("core: Redundancy = %d, want none, mirror or parity", int(o.Redundancy))
	}
	if o.effectiveRedundancy() != redundancy.None && cfg.D < 2 {
		return fmt.Errorf("core: Redundancy = %s requires D >= 2, have D = %d", o.effectiveRedundancy(), cfg.D)
	}
	if o.Redundancy == redundancy.Parity && o.FaultPlan != nil && o.FaultPlan.Mirror {
		return fmt.Errorf("core: Redundancy = parity is incompatible with FaultPlan.Mirror")
	}
	if o.Scrub && o.effectiveRedundancy() != redundancy.Parity {
		return fmt.Errorf("core: Scrub requires Redundancy = parity (scrub repairs from parity groups)")
	}
	if o.FaultPlan != nil {
		if err := o.FaultPlan.Validate(); err != nil {
			return err
		}
		if o.NoRouting && o.FaultPlan.Enabled() {
			return fmt.Errorf("core: the NoRouting ablation cannot run under a fault plan (scattered blocks are released as they are read, leaving nothing to replay from)")
		}
		if o.FaultPlan.FailProc >= cfg.P {
			return fmt.Errorf("core: FaultPlan.FailProc = %d, machine has %d processors", o.FaultPlan.FailProc, cfg.P)
		}
		if o.FaultPlan.FailDriveOp > 0 {
			if o.FaultPlan.FailDrive >= cfg.D {
				return fmt.Errorf("core: FaultPlan.FailDrive = %d, machine has %d drives", o.FaultPlan.FailDrive, cfg.D)
			}
			if o.effectiveRedundancy() == redundancy.None {
				return &UnprotectedDriveLossError{FailDrive: o.FaultPlan.FailDrive, FailOp: o.FaultPlan.FailDriveOp}
			}
		}
	}
	return nil
}

// EMStats reports the external-memory behaviour of a run.
type EMStats struct {
	// K is the group size k = max(1, ⌊M/µ⌋) (capped at v).
	K int
	// Groups is ⌈v/k⌉, the number of rounds per compound superstep.
	Groups int
	// CtxBlocksPerVP is ⌈µ/B⌉.
	CtxBlocksPerVP int
	// Setup / Run / Finish are disk statistics for writing the initial
	// contexts, the simulation proper, and reading back the final
	// contexts. For P > 1 they aggregate all processors.
	Setup  disk.Stats
	Run    disk.Stats
	Finish disk.Stats
	// PerProc holds each real processor's Run statistics (P entries).
	PerProc []disk.Stats
	// IOTime is the model I/O time of the simulation proper:
	// G · Σ_steps max_proc (ops in step). For P = 1 it is G·Run.Ops.
	IOTime float64
	// RouteOps counts the parallel I/O operations spent inside
	// SimulateRouting (a subset of Run.Ops).
	RouteOps int64
	// RaggedSlots counts read slots skipped because a bucket had no
	// block on the scheduled disk — positions the paper's analysis
	// fills with dummy blocks.
	RaggedSlots int64
	// MaxBucketSkew is the largest observed ratio between the maximum
	// per-drive share of a bucket and the even share R/D (Lemma 2's l).
	MaxBucketSkew float64
	// MemHigh is the engine's internal-memory high-water mark in words
	// (max over processors).
	MemHigh int64
	// LiveBlocksPerDrive is the peak number of simultaneously live
	// blocks per drive (contexts + staged and delivered messages),
	// the paper's O(vµ/DB) disk-space quantity. Max over processors.
	LiveBlocksPerDrive int64
	// CommWords / CommPkts / CommTime describe real inter-processor
	// traffic (P > 1 only): total words and packets exchanged between
	// real processors, and the model time Σ_steps max(L, g·maxpkts).
	CommWords int64
	CommPkts  int64
	CommTime  float64
	// Fault-tolerance accounting (all zero without a fault plan;
	// aggregated over processors for P > 1).
	//
	// FaultsInjected totals injected faults of every kind;
	// ChecksumFailures counts corrupted blocks detected on read;
	// DriveFailures counts permanent drive deaths.
	FaultsInjected   int64
	ChecksumFailures int64
	DriveFailures    int64
	// Retries / RetriedBlocks count the fault layer's transparent
	// re-issued operations and the blocks they re-transferred; Replays
	// counts compound supersteps (or setup/finish phases) rolled back
	// and replayed by the engine.
	Retries       int64
	RetriedBlocks int64
	Replays       int64
	// RecoveryOps is the total charged parallel I/O spent on recovery:
	// retry re-issues, redirect splits after a drive loss, and every
	// operation consumed by rolled-back superstep attempts. MirrorOps
	// counts the extra writes maintaining mirror copies.
	RecoveryOps int64
	MirrorOps   int64
	// Parity-redundancy accounting (all zero unless Redundancy is
	// parity; aggregated over processors for P > 1).
	//
	// ParityOps counts the extra charged parallel I/O spent maintaining
	// parity groups (striping fresh tracks, read-modify-write parity
	// updates); ParityBlocks and StripedBlocks are gauges of the
	// current parity tracks held and data tracks protected — their
	// ratio is the storage overhead, ≤ ⌈tracks/(D-1)⌉ versus the 2× of
	// mirroring.
	ParityOps     int64
	ParityBlocks  int64
	StripedBlocks int64
	// DegradedOps counts extra parallel I/O forced by operating without
	// a drive (reconstruction reads, collision splits onto survivors);
	// ReconstructedBlocks counts blocks rebuilt from parity on the read
	// path; RepairedBlocks counts tracks rewritten with reconstructed
	// data after a checksum failure.
	DegradedOps         int64
	ReconstructedBlocks int64
	RepairedBlocks      int64
	// ScrubbedBlocks / ScrubRepairs count the background scrub's
	// verified tracks and the latent-corruption repairs it made;
	// RebuiltBlocks counts dead-drive tracks reconstructed onto spare
	// capacity by the online rebuild.
	ScrubbedBlocks int64
	ScrubRepairs   int64
	RebuiltBlocks  int64
	// Overlap reports the file-backed store's I/O–compute overlap
	// observability counters (prefetch hits, async writes, stall time,
	// concurrent-transfer high-water mark), aggregated over processors
	// for P > 1. These measure wall-clock scheduling, not model work:
	// they are zero for in-memory arrays, depend on timing, and are
	// deliberately EXCLUDED from the bitwise-identity contract that
	// covers every other EMStats field.
	Overlap disk.OverlapStats
	// StoreBackend names the durable backend the run actually opened:
	// "file", "mapped", "mapped→file" (MappedStore requested but
	// unsupported on this platform), or "" for in-memory runs. It
	// exists so library callers can detect the mapped-store fallback
	// that embsp-run refuses interactively. Same carve-out as Overlap:
	// outside the bitwise-identity contract.
	StoreBackend string
	// Tiers reports each configured store tier's cache traffic
	// (hits, misses, fills, drains, budget high-water), outermost
	// first, aggregated over processors for P > 1. Wall-clock
	// observability like Overlap: EXCLUDED from the bitwise-identity
	// contract.
	Tiers []disk.TierStats
}

// TierSpec configures one store tier of Options.Tiers.
type TierSpec struct {
	// Words bounds the tier's staging cache in payload words. 0 picks
	// the engine default (a quarter of the engine memory budget, like
	// the file store's physical cache); -1 means unbounded.
	Words int64
	// Latency emulates the access time of the tier's medium: every
	// block served from the tier sleeps this long. Purely wall-clock,
	// like DriveLatency.
	Latency time.Duration
}

// Result is the outcome of an EM simulation run.
type Result struct {
	// VPs holds the final virtual processor states, indexed by id.
	VPs []bsp.VP
	// Costs holds the BSP-level model costs, measured exactly as the
	// in-memory runner measures them.
	Costs bsp.Costs
	// EM holds the external-memory statistics.
	EM EMStats
}

// ToBSPResult adapts the Result for code that consumes the reference
// runner's result type (same VPs and costs, no EM statistics).
func (r *Result) ToBSPResult() *bsp.Result { return &bsp.Result{VPs: r.VPs, Costs: r.Costs} }

// Run executes the program on the configured machine, dispatching to
// the sequential (P = 1) or parallel (P > 1) engine.
func Run(p bsp.Program, cfg MachineConfig, opts Options) (*Result, error) {
	return RunContext(context.Background(), p, cfg, opts)
}

// RunContext is Run with cooperative cancellation: the engines check
// ctx at every compound-superstep barrier and abort cleanly when it is
// done, returning an error wrapping ctx.Err(). A durable run's journal
// is left at the last committed barrier, so a cancelled run can be
// continued later with Options.Resume.
func RunContext(ctx context.Context, p bsp.Program, cfg MachineConfig, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(cfg); err != nil {
		return nil, err
	}
	if err := bsp.CheckProgram(p); err != nil {
		return nil, err
	}
	if cfg.P == 1 {
		return runSeq(ctx, p, cfg, opts)
	}
	return runPar(ctx, p, cfg, opts)
}
