package core

import (
	"embsp/internal/disk"
	"embsp/internal/obs"
)

// The group pipeline overlaps physical I/O with compute without
// touching the model: while group g runs its computation phase, the
// engine stages group g+1's context and incoming-message blocks into
// the file store's physical cache (disk.File.Prefetch), and group
// g-1's context and message writes drain through the store's
// write-behind queues. Every logical ReadOp/WriteOp still happens in
// exact serial order with its accounting applied at call time, so
// results and every cost statistic are bitwise identical with the
// pipeline on or off — only wall-clock time changes. See DESIGN.md
// §11 for the full determinism argument.
//
// Prefetch addresses are logical. While every drive lives, logical
// and physical coincide and the staged blocks are direct hits; after
// a drive death the fault or parity layer redirects reads elsewhere
// and the staged entries simply go unused (a later miss, never a
// wrong byte) — prefetching is pure cache priming with zero model
// accounting either way.

// fileStore is the surface the engines need from a durable store
// beyond disk.Store: wall-clock overlap observability and the raw
// track import/export hooks the cluster runtime replicates through.
// It is exactly disk.Backend — the pread/pwrite *disk.File, the
// mmap-backed *disk.Mapped, and any *disk.Tier chain stacked above
// either all implement it; in-memory runs leave the field nil.
type fileStore = disk.Backend

// Store backend names reported in EMStats.StoreBackend.
const (
	backendFile   = "file"
	backendMapped = "mapped"
	// backendMappedFallback marks a run that asked for the mapped
	// store on a platform without mmap support and got the (on-disk
	// compatible, bitwise-identical) file store instead.
	backendMappedFallback = "mapped→file"
)

// openRunStore opens the durable store chain for one processor: the
// mmap-backed backend when Options.MappedStore is set and the
// platform supports it (falling back to the file store otherwise, so
// mapped runs degrade gracefully on foreign platforms — the two
// stores share one on-disk format, so the fallback is invisible to
// results and resume; the returned backend name and the
// store_mapped_fallbacks metric make it visible to observability),
// else the file store with the run's I/O-worker options — then any
// Options.Tiers stacked above it, innermost last. The second result
// is the group pipeline's prefetch target: the outermost tier when
// tiers are configured (which is how a mapped backend, synchronous on
// its own, gains a pipeline), else the file store, else nil.
func openRunStore(dir string, cfg MachineConfig, opts Options, resume bool, k, mu, gamma, pid int) (fileStore, disk.Prefetcher, string, error) {
	dcfg := disk.Config{D: cfg.D, B: cfg.B}
	var base fileStore
	var pf disk.Prefetcher
	backend := backendFile
	if opts.MappedStore && disk.MmapSupported() {
		m, err := disk.OpenMapped(dir, dcfg, resume, disk.MappedOptions{
			AccessLatency: opts.DriveLatency,
			Tracer:        opts.Trace,
			TracePID:      pid,
		})
		if err != nil {
			return nil, nil, "", err
		}
		base, backend = m, backendMapped
	} else {
		if opts.MappedStore {
			backend = backendMappedFallback
			opts.Metrics.Counter("store_mapped_fallbacks").Add(1)
		}
		f, err := disk.OpenFileOpts(dir, dcfg, resume, fileStoreOpts(cfg, opts, k, mu, gamma, pid))
		if err != nil {
			return nil, nil, "", err
		}
		base, pf = f, pipelineFor(opts, f)
	}
	// Stack the tier chain, innermost (last spec) first. A tier's
	// fill workers only run when the pipeline is on and there is
	// emulated latency below it to hide — at page-cache speed a
	// staging copy costs more than the read it saves, mirroring the
	// file store's own zero-latency fill skip.
	latBelow := opts.DriveLatency
	for i := len(opts.Tiers) - 1; i >= 0; i-- {
		spec := opts.Tiers[i]
		words := spec.Words
		if words == 0 {
			words = engineMemLimit(cfg, k, mu, gamma) / 4
		}
		fill := 0
		if opts.Pipeline >= 0 && latBelow > 0 {
			fill = cfg.D
		}
		t := disk.NewTier(base, disk.TierOptions{
			CacheWords:    words,
			AccessLatency: spec.Latency,
			FillWorkers:   fill,
			Tracer:        opts.Trace,
			TracePID:      pid,
			Level:         i,
		})
		base = t
		latBelow += spec.Latency
		if opts.Pipeline >= 0 {
			pf = t
		}
	}
	return base, pf, backend, nil
}

// publishMappedWords surfaces the mmap-backed store's page-cache
// footprint (high-water mapped words) as a metric. Mapped pages are
// deliberately outside the engine's internal-memory budget M — they
// are kernel page cache, the EM model's "disk" — so the accounting
// lives in its own gauge rather than the engine accountant. The
// backend is found under any tier chain.
func publishMappedWords(r *obs.Registry, s fileStore) {
	if r == nil {
		return
	}
	if m, ok := baseBackend(s).(*disk.Mapped); ok {
		r.Counter("store_mapped_high_words").Max(m.MappedHigh())
	}
}

// baseBackend unwraps a tier chain down to the durable backend.
func baseBackend(s fileStore) fileStore {
	for {
		t, ok := s.(*disk.Tier)
		if !ok {
			return s
		}
		s = t.Backend()
	}
}

// collectTierStats reports the tier chain's cache-traffic counters
// (outermost first), or nil for an unstacked store.
func collectTierStats(s fileStore) []disk.TierStats {
	if t, ok := s.(*disk.Tier); ok {
		return t.Tiers()
	}
	return nil
}

// addTierStats folds one processor's tier counters into a run
// aggregate (index-aligned: every processor runs the same chain).
func addTierStats(agg []disk.TierStats, ts []disk.TierStats) []disk.TierStats {
	if agg == nil {
		agg = make([]disk.TierStats, len(ts))
		for i := range ts {
			agg[i].Level = ts[i].Level
			agg[i].CapWords = ts[i].CapWords
		}
	}
	for i := range ts {
		if i >= len(agg) {
			break
		}
		agg[i].Hits += ts[i].Hits
		agg[i].Misses += ts[i].Misses
		agg[i].Fills += ts[i].Fills
		agg[i].Drains += ts[i].Drains
		agg[i].HighWords = max(agg[i].HighWords, ts[i].HighWords)
	}
	return agg
}

// fileStoreOpts resolves the run options' I/O-worker knob and the
// engine memory budget into the file store's options. The prefetch /
// write-behind cache gets a quarter of the engine's internal-memory
// budget, so the pipeline is bounded by the same O(M) constant as the
// engine itself (internal/mem enforces it inside the store). pid
// labels the store's trace spans with the owning processor.
func fileStoreOpts(cfg MachineConfig, opts Options, k, mu, gamma, pid int) disk.FileOptions {
	w := opts.IOWorkers
	switch w {
	case -1:
		w = 0 // synchronous
	case 0:
		w = cfg.D // default: one worker per drive
	}
	return disk.FileOptions{
		Workers:       w,
		CacheWords:    engineMemLimit(cfg, k, mu, gamma) / 4,
		AccessLatency: opts.DriveLatency,
		Tracer:        opts.Trace,
		TracePID:      pid,
	}
}

// pipelineFor resolves Options.Pipeline against the store actually in
// use: the pipeline runs exactly when there is a file-backed store
// under the run (f non-nil) and the option does not force it off.
// With workers disabled the store's Prefetch is a no-op, so "auto"
// degrades gracefully to the serial schedule.
func pipelineFor(opts Options, f *disk.File) disk.Prefetcher {
	if f == nil || opts.Pipeline < 0 {
		return nil
	}
	return f
}

// areaAddrs appends the addresses of blocks [lo, hi) of an area.
func areaAddrs(addrs []disk.Addr, ar disk.Area, lo, hi int) []disk.Addr {
	for i := lo; i < hi; i++ {
		addrs = append(addrs, ar.Addr(i))
	}
	return addrs
}

// prefetchAddrs collects the blocks group g's fetching phase will
// read: its slice of the committed context area plus its incoming
// message blocks (routed regions, or the scattered directory in the
// NoRouting ablation).
func (e *seqEngine) prefetchAddrs(g int) []disk.Addr {
	lo, hi := e.groupBounds(g)
	addrs := areaAddrs(nil, e.ctxRead(), lo*e.muBlocks, hi*e.muBlocks)
	if e.opts.NoRouting {
		if e.inDir != nil {
			for d, refs := range e.inDir.q[g] {
				for _, ref := range refs {
					addrs = append(addrs, disk.Addr{Disk: d, Track: ref.track})
				}
			}
		}
		return addrs
	}
	if g < len(e.inRegions) {
		for _, r := range e.inRegions[g] {
			addrs = areaAddrs(addrs, r.area, r.lo, r.hi)
		}
	}
	return addrs
}

// prefetchBatch collects the blocks processor ps will read for batch
// j: its slice of the committed context area plus the routed regions
// of the batch.
func (sh *simShape) prefetchBatch(ps *procState, j int) []disk.Addr {
	lo, hi := sh.batchBounds(ps, j)
	if lo == hi {
		return nil
	}
	addrs := areaAddrs(nil, ps.ctxRead(), (lo-ps.lo)*sh.muBlocks, (hi-ps.lo)*sh.muBlocks)
	if j < len(ps.inRegions) {
		for _, r := range ps.inRegions[j] {
			addrs = areaAddrs(addrs, r.area, r.lo, r.hi)
		}
	}
	return addrs
}
