package core

import (
	"embsp/internal/disk"
	"embsp/internal/obs"
)

// The group pipeline overlaps physical I/O with compute without
// touching the model: while group g runs its computation phase, the
// engine stages group g+1's context and incoming-message blocks into
// the file store's physical cache (disk.File.Prefetch), and group
// g-1's context and message writes drain through the store's
// write-behind queues. Every logical ReadOp/WriteOp still happens in
// exact serial order with its accounting applied at call time, so
// results and every cost statistic are bitwise identical with the
// pipeline on or off — only wall-clock time changes. See DESIGN.md
// §11 for the full determinism argument.
//
// Prefetch addresses are logical. While every drive lives, logical
// and physical coincide and the staged blocks are direct hits; after
// a drive death the fault or parity layer redirects reads elsewhere
// and the staged entries simply go unused (a later miss, never a
// wrong byte) — prefetching is pure cache priming with zero model
// accounting either way.

// fileStore is the surface the engines need from a durable store
// beyond disk.Store: wall-clock overlap observability and the raw
// track import/export hooks the cluster runtime replicates through.
// Both the pread/pwrite *disk.File and the mmap-backed *disk.Mapped
// implement it; in-memory runs leave the field nil.
type fileStore interface {
	disk.Store
	Overlap() disk.OverlapStats
	ResetOverlap()
	TakeDirty() []disk.Addr
	ExportTrack(d, t int) ([]uint64, error)
	ImportTrack(d, t int, payload []uint64) error
}

// openRunStore opens the durable store for one processor: the
// mmap-backed variant when Options.MappedStore is set and the
// platform supports it (falling back to the file store otherwise, so
// mapped runs degrade gracefully on foreign platforms — the two
// stores share one on-disk format, so the fallback is invisible to
// results and resume), else the file store with the run's I/O-worker
// options. The second result is the group pipeline's prefetch target:
// nil for the mapped store, which is fully synchronous and has no
// physical queue to stage into — the pipeline degrades to the serial
// schedule exactly as on the in-memory Array.
func openRunStore(dir string, cfg MachineConfig, opts Options, resume bool, k, mu, gamma, pid int) (fileStore, disk.Prefetcher, error) {
	dcfg := disk.Config{D: cfg.D, B: cfg.B}
	if opts.MappedStore && disk.MmapSupported() {
		m, err := disk.OpenMapped(dir, dcfg, resume, disk.MappedOptions{
			AccessLatency: opts.DriveLatency,
			Tracer:        opts.Trace,
			TracePID:      pid,
		})
		if err != nil {
			return nil, nil, err
		}
		return m, nil, nil
	}
	f, err := disk.OpenFileOpts(dir, dcfg, resume, fileStoreOpts(cfg, opts, k, mu, gamma, pid))
	if err != nil {
		return nil, nil, err
	}
	return f, pipelineFor(opts, f), nil
}

// publishMappedWords surfaces the mmap-backed store's page-cache
// footprint (high-water mapped words) as a metric. Mapped pages are
// deliberately outside the engine's internal-memory budget M — they
// are kernel page cache, the EM model's "disk" — so the accounting
// lives in its own gauge rather than the engine accountant.
func publishMappedWords(r *obs.Registry, s fileStore) {
	if r == nil {
		return
	}
	if m, ok := s.(*disk.Mapped); ok {
		r.Counter("store_mapped_high_words").Max(m.MappedHigh())
	}
}

// fileStoreOpts resolves the run options' I/O-worker knob and the
// engine memory budget into the file store's options. The prefetch /
// write-behind cache gets a quarter of the engine's internal-memory
// budget, so the pipeline is bounded by the same O(M) constant as the
// engine itself (internal/mem enforces it inside the store). pid
// labels the store's trace spans with the owning processor.
func fileStoreOpts(cfg MachineConfig, opts Options, k, mu, gamma, pid int) disk.FileOptions {
	w := opts.IOWorkers
	switch w {
	case -1:
		w = 0 // synchronous
	case 0:
		w = cfg.D // default: one worker per drive
	}
	return disk.FileOptions{
		Workers:       w,
		CacheWords:    engineMemLimit(cfg, k, mu, gamma) / 4,
		AccessLatency: opts.DriveLatency,
		Tracer:        opts.Trace,
		TracePID:      pid,
	}
}

// pipelineFor resolves Options.Pipeline against the store actually in
// use: the pipeline runs exactly when there is a file-backed store
// under the run (f non-nil) and the option does not force it off.
// With workers disabled the store's Prefetch is a no-op, so "auto"
// degrades gracefully to the serial schedule.
func pipelineFor(opts Options, f *disk.File) disk.Prefetcher {
	if f == nil || opts.Pipeline < 0 {
		return nil
	}
	return f
}

// areaAddrs appends the addresses of blocks [lo, hi) of an area.
func areaAddrs(addrs []disk.Addr, ar disk.Area, lo, hi int) []disk.Addr {
	for i := lo; i < hi; i++ {
		addrs = append(addrs, ar.Addr(i))
	}
	return addrs
}

// prefetchAddrs collects the blocks group g's fetching phase will
// read: its slice of the committed context area plus its incoming
// message blocks (routed regions, or the scattered directory in the
// NoRouting ablation).
func (e *seqEngine) prefetchAddrs(g int) []disk.Addr {
	lo, hi := e.groupBounds(g)
	addrs := areaAddrs(nil, e.ctxRead(), lo*e.muBlocks, hi*e.muBlocks)
	if e.opts.NoRouting {
		if e.inDir != nil {
			for d, refs := range e.inDir.q[g] {
				for _, ref := range refs {
					addrs = append(addrs, disk.Addr{Disk: d, Track: ref.track})
				}
			}
		}
		return addrs
	}
	if g < len(e.inRegions) {
		for _, r := range e.inRegions[g] {
			addrs = areaAddrs(addrs, r.area, r.lo, r.hi)
		}
	}
	return addrs
}

// prefetchBatch collects the blocks processor ps will read for batch
// j: its slice of the committed context area plus the routed regions
// of the batch.
func (sh *simShape) prefetchBatch(ps *procState, j int) []disk.Addr {
	lo, hi := sh.batchBounds(ps, j)
	if lo == hi {
		return nil
	}
	addrs := areaAddrs(nil, ps.ctxRead(), (lo-ps.lo)*sh.muBlocks, (hi-ps.lo)*sh.muBlocks)
	if j < len(ps.inRegions) {
		for _, r := range ps.inRegions[j] {
			addrs = areaAddrs(addrs, r.area, r.lo, r.hi)
		}
	}
	return addrs
}
