package core

import (
	"fmt"
	"path/filepath"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// This file is the per-node extraction of the parallel engine: every
// phase of Algorithm 3 that touches exactly one real processor's state
// lives here as a method on simShape, taking the processor's procState
// plus explicit inbox/outbox slices instead of the engine's shared
// exchange matrices. Two drivers run these phases:
//
//   - parEngine (par.go) keeps all p processors in one address space
//     and exchanges blocks through in-memory matrices — the reference
//     oracle;
//   - NodeEngine (cluster.go) wraps a single processor for the
//     multi-process cluster runtime, which exchanges the same blocks
//     over the wire.
//
// The phase bodies are shared verbatim, so the two runtimes are
// bitwise-identical by construction wherever the same (config,
// options, program) tuple is presented.

// simShape is the derived shape of a run — everything that follows
// deterministically from (program, machine config, options) — plus the
// tracer and a cost recorder. The recorder is authoritative only on
// the driver that owns global cost aggregation; node-local phases use
// just its pure packet arithmetic.
type simShape struct {
	p    bsp.Program
	cfg  MachineConfig
	opts Options

	v        int
	mu       int
	gamma    int
	k        int
	vpp      int // VPs per real processor (ceiling)
	batches  int // rounds per compound superstep
	muBlocks int
	pktBlk   int // blocks per packet: max(1, ⌊b/B⌋)

	rec *bsp.CostRecorder
	tr  *obs.Tracer // trace sink; nil-safe no-op when tracing is off
}

func newSimShape(p bsp.Program, cfg MachineConfig, opts Options) simShape {
	v := p.NumVPs()
	mu := p.MaxContextWords()
	gamma := p.MaxCommWords()
	k := cfg.M / mu
	if k < 1 {
		k = 1
	}
	vpp := (v + cfg.P - 1) / cfg.P
	if k > vpp {
		k = vpp
	}
	return simShape{
		p: p, cfg: cfg, opts: opts,
		v: v, mu: mu, gamma: gamma, k: k, vpp: vpp,
		batches:  (vpp + k - 1) / k,
		muBlocks: (mu + cfg.B - 1) / cfg.B,
		pktBlk:   maxInt(1, cfg.Cost.Pkt/cfg.B),
		rec:      bsp.NewCostRecorder(cfg.Cost.Pkt),
		tr:       opts.Trace,
	}
}

// owner returns the real processor owning VP id.
func (sh *simShape) owner(id int) int { return id / sh.vpp }

// batchOf returns the batch (round index) in which VP id is simulated.
func (sh *simShape) batchOf(id int) int { return (id % sh.vpp) / sh.k }

// bucketKey maps a block to its bucket: each bucket covers
// ⌈batches/D⌉ consecutive batches, as Algorithm 3 prescribes.
func (sh *simShape) bucketKey(m blockMeta) int {
	per := (sh.batches + sh.cfg.D - 1) / sh.cfg.D
	return sh.batchOf(m.dst) / per
}

// batchBounds returns the VP range [lo, hi) of processor ps in round j.
func (sh *simShape) batchBounds(ps *procState, j int) (lo, hi int) {
	lo = ps.lo + j*sh.k
	hi = lo + sh.k
	if hi > ps.hi {
		hi = ps.hi
	}
	if lo > ps.hi {
		lo = ps.hi
	}
	return lo, hi
}

// newProcState builds processor i's base state: VP range, accountant,
// per-processor RNG, and the backing store (file-backed under dir, or
// in-memory when dir is empty). Redundancy and fault layers, when the
// run asks for them, are stacked on top by the caller.
func (sh *simShape) newProcState(i int, dir string, resume bool) (*procState, error) {
	lo := i * sh.vpp
	hi := lo + sh.vpp
	if lo > sh.v {
		lo = sh.v
	}
	if hi > sh.v {
		hi = sh.v
	}
	ps := &procState{
		id: i, lo: lo, hi: hi,
		acct: mem.NewAccountant(engineMemLimit(sh.cfg, sh.k, sh.mu, sh.gamma)),
		rng:  prng.New(prng.Derive(sh.opts.Seed, 0xFA12, uint64(i))),
	}
	diskCfg := disk.Config{D: sh.cfg.D, B: sh.cfg.B}
	if dir != "" {
		f, pf, backend, err := openRunStore(dir, sh.cfg, sh.opts, resume, sh.k, sh.mu, sh.gamma, i)
		if err != nil {
			return nil, err
		}
		ps.store = f
		ps.bfile = f
		ps.pf = pf
		ps.backend = backend
	} else {
		ps.store = disk.MustNewArray(diskCfg)
	}
	ps.dsk = ps.store
	return ps, nil
}

// procDir is the per-processor drive directory under a state root.
func procDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("proc-%02d", i))
}

// setupReserve reserves the processor's context area(s).
func (sh *simShape) setupReserve(ps *procState) {
	ps.ctxAreas[0] = disk.Reserve(ps.dsk, ps.ownCount()*sh.muBlocks)
	if ps.ckptOn {
		ps.ctxAreas[1] = disk.Reserve(ps.dsk, ps.ownCount()*sh.muBlocks)
	}
	ps.noteLive(sh.muBlocks, 0)
}

func (sh *simShape) writeInitialContexts(ps *procState) error {
	if ps.ownCount() == 0 {
		return nil
	}
	bufWords := sh.k * sh.muBlocks * sh.cfg.B
	if err := ps.acct.Grab(int64(bufWords)); err != nil {
		return err
	}
	defer ps.acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)
	enc := words.NewEncoder(nil)
	for j := 0; j < sh.batches; j++ {
		lo, hi := sh.batchBounds(ps, j)
		if lo == hi {
			continue
		}
		clear(buf[:(hi-lo)*sh.muBlocks*sh.cfg.B])
		for id := lo; id < hi; id++ {
			enc.Reset()
			sh.p.NewVP(id).Save(enc)
			if enc.Len() > sh.mu {
				return fmt.Errorf("core: VP %d initial context is %d words, exceeding µ=%d", id, enc.Len(), sh.mu)
			}
			copy(buf[(id-lo)*sh.muBlocks*sh.cfg.B:], enc.Words())
		}
		cl, ch := (lo-ps.lo)*sh.muBlocks, (hi-ps.lo)*sh.muBlocks
		if err := disk.WriteRange(ps.dsk, ps.ctxRead(), cl, ch, buf[:(hi-lo)*sh.muBlocks*sh.cfg.B]); err != nil {
			return err
		}
	}
	return nil
}

// readFinalContexts streams the committed context words of every owned
// VP to emit in VP order. The slice passed to emit aliases an internal
// buffer; emit must consume or copy it before returning.
func (sh *simShape) readFinalContexts(ps *procState, emit func(id int, ctx []uint64) error) error {
	if ps.ownCount() == 0 {
		return nil
	}
	bufWords := sh.k * sh.muBlocks * sh.cfg.B
	if err := ps.acct.Grab(int64(bufWords)); err != nil {
		return err
	}
	defer ps.acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)
	for j := 0; j < sh.batches; j++ {
		lo, hi := sh.batchBounds(ps, j)
		if lo == hi {
			continue
		}
		cl, ch := (lo-ps.lo)*sh.muBlocks, (hi-ps.lo)*sh.muBlocks
		if err := disk.ReadRange(ps.dsk, ps.ctxRead(), cl, ch, buf[:(hi-lo)*sh.muBlocks*sh.cfg.B]); err != nil {
			return err
		}
		for id := lo; id < hi; id++ {
			if err := emit(id, buf[(id-lo)*sh.muBlocks*sh.cfg.B:(id-lo+1)*sh.muBlocks*sh.cfg.B]); err != nil {
				return err
			}
		}
	}
	return nil
}

// beginStep resets the processor's superstep-scoped scratch: halt/send
// tallies, the outgoing bucket directory, the ops watermark, and the
// block writer with its flush buffer.
func (sh *simShape) beginStep(ps *procState) {
	ps.halts, ps.sends = 0, 0
	ps.dir = newOutDirectory(sh.cfg.D, sh.cfg.D)
	ps.opsMark = ps.dsk.Stats().Ops
	flushBuf := make([]uint64, sh.cfg.D*sh.cfg.B)
	var down func(int) bool
	if ps.fd != nil {
		down = ps.fd.Down
	}
	ps.writer = newBlockWriter(ps.dsk, ps.dir, sh.bucketKey, ps.rng, sh.opts.Deterministic, down, flushBuf)
	ps.scratch = make([]uint64, sh.cfg.B)
}

// fetchPkts is the packet count for w words combined into size-b
// packets on one channel.
func (sh *simShape) fetchPkts(w int64) int64 {
	return (w + int64(sh.rec.PktSize()) - 1) / int64(sh.rec.PktSize())
}

// fetchForward reads the blocks of batch j from the local disks and
// groups each under the processor simulating its destination VP. out
// is indexed by destination processor (self included); nwords counts
// the words per destination. A nil out means the batch had no input.
func (sh *simShape) fetchForward(ps *procState, j int) (out [][]wireBlock, nwords []int64, err error) {
	var regions []groupRegion
	if j < len(ps.inRegions) {
		regions = ps.inRegions[j]
	}
	buf, metas, grabbed, err := readRegions(ps.dsk, ps.acct, regions)
	if err != nil {
		return nil, nil, err
	}
	if metas == nil {
		return nil, nil, nil
	}
	B := sh.cfg.B
	out = make([][]wireBlock, sh.cfg.P)
	nwords = make([]int64, sh.cfg.P)
	for i, m := range metas {
		o := sh.owner(m.dst)
		img := make([]uint64, B)
		copy(img, buf[i*B:(i+1)*B])
		out[o] = append(out[o], wireBlock{meta: m, img: img})
		nwords[o] += int64(B)
	}
	if grabbed > 0 {
		ps.acct.Release(grabbed)
	}
	return out, nwords, nil
}

// batchOut is one processor's output from a computing phase: the
// scattered packet blocks per destination processor, the off-processor
// packet/word tallies the communication model charges, and the per-VP
// traffic records for the cost recorder (in VP order).
type batchOut struct {
	scatter [][]wireBlock
	pkts    []int64
	wrds    []int64
	traffic []bsp.VPTraffic
}

// computeBatch reassembles the batch's messages from the inbox (one
// slice per source processor, self included), simulates the k current
// VPs, and scatters the generated messages — as packets of ⌊b/B⌋
// blocks — to randomly chosen processors. Halt and send tallies
// accumulate on ps; everything addressed to other processors is
// returned in the batchOut.
func (sh *simShape) computeBatch(ps *procState, j, step int, in [][]wireBlock) (*batchOut, error) {
	lo, hi := sh.batchBounds(ps, j)
	n := hi - lo
	B := sh.cfg.B
	P := sh.cfg.P

	bo := &batchOut{
		scatter: make([][]wireBlock, P),
		pkts:    make([]int64, P),
		wrds:    make([]int64, P),
	}

	// Gather the wire blocks addressed to this processor.
	var metas []blockMeta
	var total int
	for src := 0; src < P; src++ {
		total += len(in[src])
	}
	if n == 0 {
		if total != 0 {
			return nil, fmt.Errorf("core: processor %d received %d blocks for an empty batch %d", ps.id, total, j)
		}
		return bo, nil
	}
	spMsg := sh.tr.BeginStep(obs.CatEngine, phFetchMsg, ps.id, 0, step, j)
	inGrab := int64(total * B)
	if err := ps.acct.Grab(inGrab); err != nil {
		return nil, err
	}
	buf := make([]uint64, total*B)
	idx := 0
	for src := 0; src < P; src++ {
		for _, wb := range in[src] {
			copy(buf[idx*B:(idx+1)*B], wb.img)
			metas = append(metas, wb.meta)
			idx++
		}
	}
	var inbox [][]bsp.Message
	var err error
	if total == 0 {
		inbox = make([][]bsp.Message, n)
	} else {
		inbox, err = reassemble(buf, metas, B, lo, hi)
		if err != nil {
			return nil, err
		}
	}
	spMsg.End()

	// Contexts of the current k VPs.
	spFetch := sh.tr.BeginStep(obs.CatEngine, phFetchCtx, ps.id, 0, step, j)
	ctxWords := n * sh.muBlocks * B
	if err := ps.acct.Grab(int64(ctxWords)); err != nil {
		return nil, err
	}
	ctxBuf := make([]uint64, ctxWords)
	cl, ch := (lo-ps.lo)*sh.muBlocks, (hi-ps.lo)*sh.muBlocks
	if err := disk.ReadRange(ps.dsk, ps.ctxRead(), cl, ch, ctxBuf); err != nil {
		return nil, err
	}
	vps := make([]bsp.VP, n)
	for i := 0; i < n; i++ {
		vps[i] = sh.p.NewVP(lo + i)
		vps[i].Load(words.NewDecoder(ctxBuf[i*sh.muBlocks*B : (i+1)*sh.muBlocks*B]))
	}
	spFetch.End()

	// The compute span also covers the pipeline's prefetch hint, so
	// the engine phases tile this processor's lane with no gap.
	spComp := sh.tr.BeginStep(obs.CatEngine, phCompute, ps.id, 0, step, j)

	// Group pipeline: stage batch j+1's context and message blocks
	// into the local store's physical cache while this batch computes
	// (purely physical, no accounting — see pipeline.go).
	if ps.pf != nil && j+1 < sh.batches {
		ps.pf.Prefetch(sh.prefetchBatch(ps, j+1))
	}

	// Simulate the computation supersteps.
	var outs []outMsg
	var outWords int64
	for i := 0; i < n; i++ {
		id := lo + i
		recvWords, recvPkts := 0, 0
		for _, m := range inbox[i] {
			w := len(m.Payload) + 1
			recvWords += w
			recvPkts += sh.rec.MsgPkts(w)
		}
		if recvWords > sh.gamma {
			return nil, fmt.Errorf("core: VP %d received %d words in superstep %d, exceeding γ=%d", id, recvWords, step, sh.gamma)
		}
		seq := 0
		sendPkts := 0
		env := bsp.NewEnv(id, sh.v, step, sh.opts.Seed, func(dst int, payload []uint64) {
			outs = append(outs, outMsg{dst: dst, src: id, seq: seq, payload: payload})
			seq++
			sendPkts += sh.rec.MsgPkts(len(payload) + 1)
			outWords += int64(len(payload) + 1)
		})
		halt, err := bsp.SafeStep(vps[i], env, inbox[i])
		if err != nil {
			return nil, fmt.Errorf("core: VP %d superstep %d: %w", id, step, err)
		}
		sw, msgs, charge := env.SendTotals()
		if sw > sh.gamma {
			return nil, fmt.Errorf("core: VP %d sent %d words in superstep %d, exceeding γ=%d", id, sw, step, sh.gamma)
		}
		if halt {
			ps.halts++
		}
		ps.sends += msgs
		bo.traffic = append(bo.traffic, bsp.VPTraffic{
			SendWords: sw, RecvWords: recvWords,
			SendPkts: sendPkts, RecvPkts: recvPkts,
			Messages: msgs, Charge: charge,
		})
	}
	spComp.End()

	// Write contexts back.
	spCtx := sh.tr.BeginStep(obs.CatEngine, phWriteCtx, ps.id, 0, step, j)
	clear(ctxBuf)
	enc := words.NewEncoder(nil)
	for i := 0; i < n; i++ {
		enc.Reset()
		vps[i].Save(enc)
		if enc.Len() > sh.mu {
			return nil, fmt.Errorf("core: VP %d context is %d words after superstep %d, exceeding µ=%d", lo+i, enc.Len(), step, sh.mu)
		}
		copy(ctxBuf[i*sh.muBlocks*B:], enc.Words())
	}
	if err := disk.WriteRange(ps.dsk, ps.ctxWrite(), cl, ch, ctxBuf); err != nil {
		return nil, err
	}
	ps.acct.Release(int64(ctxWords))
	spCtx.End()

	spScatter := sh.tr.BeginStep(obs.CatEngine, phScatter, ps.id, 0, step, j)
	// Scatter: cut each message into blocks, group ⌊b/B⌋ consecutive
	// blocks of one message into a packet, and send every packet to a
	// uniformly random processor. In deterministic (CGM) mode the
	// packet goes straight to a rotation determined by its message
	// identity, which is balanced for predetermined communication.
	if err := ps.acct.Grab(outWords); err != nil {
		return nil, err
	}
	rng := prng.New(prng.Derive(sh.opts.Seed, 0x5CA7, uint64(ps.id), uint64(step)))
	for _, m := range outs {
		pktLeft := 0
		target := 0
		npkt := 0
		err := cutMessage(m, B, ps.scratch, func(meta blockMeta, img []uint64) error {
			if pktLeft == 0 {
				if sh.opts.Deterministic {
					target = (meta.dst + meta.src + npkt) % P
				} else {
					target = rng.Intn(P)
				}
				npkt++
				pktLeft = sh.pktBlk
				if target != ps.id {
					bo.pkts[target]++
				}
			}
			pktLeft--
			cp := make([]uint64, B)
			copy(cp, img)
			bo.scatter[target] = append(bo.scatter[target], wireBlock{meta: meta, img: cp})
			if target != ps.id {
				bo.wrds[target] += int64(B)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	ps.acct.Release(outWords)
	ps.acct.Release(inGrab)
	spScatter.End()
	return bo, nil
}

// receiveWrite writes the scattered packets this processor received
// (one slice per source processor, self included) to its local disks,
// D blocks per parallel operation under a random drive permutation,
// maintaining the bucket directory.
func (sh *simShape) receiveWrite(ps *procState, in [][]wireBlock) error {
	for src := 0; src < sh.cfg.P; src++ {
		for _, wb := range in[src] {
			if err := ps.writer.add(wb.meta, wb.img); err != nil {
				return err
			}
		}
	}
	return ps.writer.flush()
}

// routeLocal is Step 2 of Algorithm 3: reorganize this processor's
// received blocks so each batch is evenly distributed over the local
// disks in standard consecutive format. In normal operation the result
// is installed immediately; under the checkpoint discipline it is
// parked until the engine-level barrier commit, because a fault on
// another processor (or a crash before the journal record lands) can
// still roll this superstep back.
func (sh *simShape) routeLocal(ps *procState) error {
	if !ps.ckptOn {
		for _, ar := range ps.inAreas {
			if err := disk.FreeArea(ps.dsk, ar); err != nil {
				return err
			}
		}
	}
	ps.noteLive(sh.muBlocks, ps.inBlocks+ps.dir.total)
	route, err := simulateRouting(ps.dsk, ps.acct, ps.dir, func(m blockMeta) int { return sh.batchOf(m.dst) }, sh.batches)
	if err != nil {
		return err
	}
	if ps.ckptOn {
		ps.pendingRoute = route
		return nil
	}
	ps.routeOps += route.stats.ops
	ps.ragged += route.stats.ragged
	if route.stats.maxSkew > ps.maxSkew {
		ps.maxSkew = route.stats.maxSkew
	}
	ps.inRegions, ps.inAreas, ps.inBlocks = route.regions, route.areas, route.total
	ps.noteLive(sh.muBlocks, route.total)
	return nil
}

// commitProc is the processor's share of the barrier commit: free the
// consumed input areas, install the parked routing result, and flip
// the context double buffer.
func (sh *simShape) commitProc(ps *procState) error {
	if ps.pendingRoute != nil {
		for _, ar := range ps.inAreas {
			if err := disk.FreeArea(ps.dsk, ar); err != nil {
				return err
			}
		}
		route := ps.pendingRoute
		ps.pendingRoute = nil
		ps.routeOps += route.stats.ops
		ps.ragged += route.stats.ragged
		if route.stats.maxSkew > ps.maxSkew {
			ps.maxSkew = route.stats.maxSkew
		}
		ps.inRegions, ps.inAreas, ps.inBlocks = route.regions, route.areas, route.total
		ps.noteLive(sh.muBlocks, route.total)
	}
	ps.ctxCur ^= 1
	return nil
}

// redProc is the processor's share of the parity-aware commit point:
// stripe the fresh tracks into parity groups, then a budgeted slice of
// online rebuild and (when enabled) scrub. Returns the I/O operations
// consumed so the driver can charge the slowest processor's share.
func (sh *simShape) redProc(ps *procState) (int64, error) {
	if ps.red == nil {
		return 0, nil
	}
	before := ps.dsk.Stats().Ops
	sp := sh.tr.Begin(obs.CatEngine, phParity, ps.id, 0)
	err := ps.red.FlushParity()
	sp.End()
	if err != nil {
		return 0, err
	}
	if ps.red.Rebuilding() {
		sp := sh.tr.Begin(obs.CatEngine, phRebuild, ps.id, 0)
		err := ps.red.RebuildStep(redBudget(sh.cfg.D))
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	if sh.opts.Scrub {
		sp := sh.tr.Begin(obs.CatEngine, phScrub, ps.id, 0)
		_, err := ps.red.Scrub(redBudget(sh.cfg.D))
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	return ps.dsk.Stats().Ops - before, nil
}

// superstepCommCosts folds one superstep's exchange matrices into the
// model's communication charges: the off-diagonal packet and word
// totals, and the superstep communication time max(L, g·max_i(sent_i +
// received_i packets)). Shared by the in-process driver and the
// cluster coordinator so both charge bitwise-identical costs.
func superstepCommCosts(cfg MachineConfig, pktX, wordX [][]int64) (ct float64, pkts, wrds int64) {
	P := cfg.P
	var maxPkts int64
	for i := 0; i < P; i++ {
		var sent, recv int64
		for o := 0; o < P; o++ {
			if o != i {
				sent += pktX[i][o]
				recv += pktX[o][i]
				wrds += wordX[i][o]
				pkts += pktX[i][o]
			}
		}
		if sent+recv > maxPkts {
			maxPkts = sent + recv
		}
	}
	ct = cfg.Cost.GPkt * float64(maxPkts)
	if ct < cfg.Cost.L {
		ct = cfg.Cost.L
	}
	return ct, pkts, wrds
}
