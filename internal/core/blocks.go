package core

import (
	"fmt"
	"sort"

	"embsp/internal/bsp"
)

// Message blocks. Step 1(d) of Algorithm SeqCompoundSuperstep cuts
// every generated message into blocks of size B; each block inherits
// the destination address of its message. A block image is laid out
// as
//
//	word 0: destination VP
//	word 1: source VP
//	word 2: per-source sequence number of the message
//	word 3: chunk index within the message
//	word 4: total payload length of the message, in words
//	words 5..B-1: payload chunk (zero padded)
//
// so a block is self-describing: the fetch phase reconstructs
// messages from block contents alone. Chunk i carries payload words
// [i·C, min((i+1)·C, len)) with C = B - 5; a message of payload
// length len occupies max(1, ⌈len/C⌉) blocks.

// blockMeta is the engine's directory entry for one message block.
type blockMeta struct {
	dst   int
	src   int
	seq   int
	chunk int
}

// chunkCap returns C, the payload capacity of one message block.
func chunkCap(B int) int { return B - headerWords }

// numChunks returns the number of blocks a payload of length n cuts
// into.
func numChunks(n, B int) int {
	c := chunkCap(B)
	if n <= 0 {
		return 1
	}
	return (n + c - 1) / c
}

// outMsg is a message collected during the computation phase, before
// the writing phase cuts it into blocks.
type outMsg struct {
	dst     int
	src     int
	seq     int
	payload []uint64
}

// cutMessage appends the block images of m to the pending writer via
// emit. img is valid only for the duration of the call.
func cutMessage(m outMsg, B int, scratch []uint64, emit func(meta blockMeta, img []uint64) error) error {
	c := chunkCap(B)
	n := len(m.payload)
	chunks := numChunks(n, B)
	for i := 0; i < chunks; i++ {
		img := scratch[:B]
		img[0] = uint64(m.dst)
		img[1] = uint64(m.src)
		img[2] = uint64(m.seq)
		img[3] = uint64(i)
		img[4] = uint64(n)
		lo := i * c
		hi := lo + c
		if hi > n {
			hi = n
		}
		copy(img[headerWords:], m.payload[lo:hi])
		for j := headerWords + (hi - lo); j < B; j++ {
			img[j] = 0
		}
		if err := emit(blockMeta{dst: m.dst, src: m.src, seq: m.seq, chunk: i}, img); err != nil {
			return err
		}
	}
	return nil
}

// parseBlock reads a block image's header.
func parseBlock(img []uint64) (meta blockMeta, totalLen int) {
	return blockMeta{
		dst:   int(img[0]),
		src:   int(img[1]),
		seq:   int(img[2]),
		chunk: int(img[3]),
	}, int(img[4])
}

// metaLess is the canonical block order: by destination VP, then
// source, sequence, chunk. Blocks sorted this way concatenate directly
// into the canonical (Src, Seq) message delivery order.
func metaLess(a, b blockMeta) bool {
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.chunk < b.chunk
}

// reassemble turns the sorted block images of one group's incoming
// traffic into per-VP message lists. blocks[i] is the i-th block image
// (length B each, concatenated in buf); metas[i] its parsed header.
// The result maps local VP offsets (dst - loVP) to messages in
// canonical delivery order.
func reassemble(buf []uint64, metas []blockMeta, B, loVP, hiVP int) ([][]bsp.Message, error) {
	order := make([]int, len(metas))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return metaLess(metas[order[i]], metas[order[j]]) })

	out := make([][]bsp.Message, hiVP-loVP)
	c := chunkCap(B)
	i := 0
	for i < len(order) {
		idx := order[i]
		m := metas[idx]
		if m.dst < loVP || m.dst >= hiVP {
			return nil, fmt.Errorf("core: block for VP %d routed to group [%d,%d)", m.dst, loVP, hiVP)
		}
		if m.chunk != 0 {
			return nil, fmt.Errorf("core: message (dst %d, src %d, seq %d) starts at chunk %d", m.dst, m.src, m.seq, m.chunk)
		}
		totalLen := int(buf[idx*B+4])
		chunks := numChunks(totalLen, B)
		payload := make([]uint64, 0, totalLen)
		for j := 0; j < chunks; j++ {
			if i+j >= len(order) {
				return nil, fmt.Errorf("core: message (dst %d, src %d, seq %d) truncated at chunk %d of %d", m.dst, m.src, m.seq, j, chunks)
			}
			bidx := order[i+j]
			bm := metas[bidx]
			if bm.dst != m.dst || bm.src != m.src || bm.seq != m.seq || bm.chunk != j {
				return nil, fmt.Errorf("core: message (dst %d, src %d, seq %d) missing chunk %d", m.dst, m.src, m.seq, j)
			}
			lo := j * c
			hi := lo + c
			if hi > totalLen {
				hi = totalLen
			}
			payload = append(payload, buf[bidx*B+headerWords:bidx*B+headerWords+(hi-lo)]...)
		}
		i += chunks
		out[m.dst-loVP] = append(out[m.dst-loVP], bsp.Message{Src: m.src, Dst: m.dst, Seq: m.seq, Payload: payload})
	}
	return out, nil
}

// sortSlice sorts s by less.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// bucketOf maps a destination VP to its bucket: bucket i contains the
// blocks destined for the i-th range of ⌈v/D⌉ consecutive VPs.
func bucketOf(dst, v, D int) int {
	per := (v + D - 1) / D
	return dst / per
}

// groupOf maps a destination VP to its simulation group of k
// consecutive VPs.
func groupOf(dst, k int) int { return dst / k }
