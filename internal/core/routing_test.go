package core

import (
	"testing"
	"testing/quick"

	"embsp/internal/disk"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
)

// TestRoutingInvariants checks Definition 2 (standard consecutive
// format) and data conservation on the output of simulateRouting, for
// random traffic patterns and machine shapes.
func TestRoutingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		d := r.Intn(6) + 1
		b := 8 + r.Intn(8)
		v := r.Intn(20) + 1
		k := r.Intn(v) + 1
		nBlocks := r.Intn(100)

		arr := disk.MustNewArray(disk.Config{D: d, B: b})
		acct := mem.NewAccountant(0)
		dir := newOutDirectory(d, d)
		writer := newBlockWriter(arr, dir,
			func(m blockMeta) int { return bucketOf(m.dst, v, d) },
			r, false, nil, make([]uint64, d*b))

		// Random blocks with a payload checksum derived from their
		// identity, so reads can be validated.
		img := make([]uint64, b)
		type key struct{ dst, src, seq int }
		expected := make(map[key]bool)
		for i := 0; i < nBlocks; i++ {
			m := blockMeta{dst: r.Intn(v), src: r.Intn(v), seq: i}
			img[0], img[1], img[2], img[3], img[4] = uint64(m.dst), uint64(m.src), uint64(m.seq), 0, 1
			img[5] = prng.Derive(seed, uint64(m.dst), uint64(m.seq))
			if err := writer.add(m, img); err != nil {
				return false
			}
			expected[key{m.dst, m.src, m.seq}] = true
		}
		if err := writer.flush(); err != nil {
			return false
		}

		groups := (v + k - 1) / k
		route, err := simulateRouting(arr, acct, dir, func(m blockMeta) int { return groupOf(m.dst, k) }, groups)
		if err != nil {
			return false
		}
		total := 0
		buf := make([]uint64, b)
		for g, regions := range route.regions {
			for _, reg := range regions {
				// Definition 2 within the region: any D consecutive
				// slots hit D distinct drives with per-drive
				// consecutive tracks.
				lastTrack := make(map[int]int)
				for i := reg.lo; i < reg.hi; i++ {
					ad := reg.area.Addr(i)
					if prev, ok := lastTrack[ad.Disk]; ok && ad.Track != prev+1 {
						return false
					}
					lastTrack[ad.Disk] = ad.Track
					// Block contents: right group, identity checksum.
					if err := arr.ReadOp([]disk.ReadReq{{Disk: ad.Disk, Track: ad.Track, Dst: buf}}); err != nil {
						return false
					}
					meta, _ := parseBlock(buf)
					if groupOf(meta.dst, k) != g {
						return false
					}
					if buf[5] != prng.Derive(seed, uint64(meta.dst), uint64(meta.seq)) {
						return false
					}
					if !expected[key{meta.dst, meta.src, meta.seq}] {
						return false
					}
					total++
				}
			}
		}
		return total == nBlocks && route.total == nBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRoutingParallelism checks that for balanced traffic the
// reorganization stays close to full drive parallelism.
func TestRoutingParallelism(t *testing.T) {
	const d, b, v, k, perVP = 4, 16, 32, 8, 8
	arr := disk.MustNewArray(disk.Config{D: d, B: b})
	acct := mem.NewAccountant(0)
	dir := newOutDirectory(d, d)
	r := prng.New(7)
	writer := newBlockWriter(arr, dir,
		func(m blockMeta) int { return bucketOf(m.dst, v, d) },
		r, false, nil, make([]uint64, d*b))
	img := make([]uint64, b)
	for c := 0; c < perVP; c++ {
		for dst := 0; dst < v; dst++ {
			img[0], img[1], img[2], img[3], img[4] = uint64(dst), uint64(c), uint64(c), 0, 0
			if err := writer.add(blockMeta{dst: dst, src: c, seq: c}, img); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := writer.flush(); err != nil {
		t.Fatal(err)
	}
	arr.ResetStats()
	route, err := simulateRouting(arr, acct, dir, func(m blockMeta) int { return groupOf(m.dst, k) }, v/k)
	if err != nil {
		t.Fatal(err)
	}
	st := arr.Stats()
	util := float64(st.Blocks()) / float64(st.Ops*int64(d))
	if util < 0.7 {
		t.Errorf("routing utilization %.2f, want >= 0.7 for balanced traffic", util)
	}
	if route.stats.maxSkew > 3 {
		t.Errorf("bucket skew %.2f unexpectedly high", route.stats.maxSkew)
	}
}

func TestDemoRoutingRuns(t *testing.T) {
	var sink nopWriter
	tr := obs.New()
	if err := DemoRouting(&sink, tr, 8, 4, 8, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if ph := tr.Phases(); len(ph) != 2 {
		t.Errorf("demo recorded %d phases, want write-msg and route: %+v", len(ph), ph)
	}
	if sink.n == 0 {
		t.Error("demo produced no output")
	}
}

type nopWriter struct{ n int }

func (w *nopWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
