package core_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/prng"
)

// transientPlan injects all three transient fault kinds at rates high
// enough that every nontrivial run sees several of each.
func transientPlan(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed:           seed,
		ReadErrorRate:  0.02,
		WriteErrorRate: 0.02,
		CorruptRate:    0.02,
	}
}

func checksumsEqual(t *testing.T, ref *bsp.Result, res *core.Result, label string) {
	t.Helper()
	a, b := bsptest.Checksums(ref), bsptest.Checksums(res.ToBSPResult())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: VP %d state differs from reference under faults", label, i)
		}
	}
}

// TestFaultTransientBitwise is the issue's acceptance property at
// fixed shape: with transient faults injected at >= 1% per block, both
// engines still produce results bitwise identical to the in-memory
// reference, and the recovery work is visible in EMStats.
func TestFaultTransientBitwise(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 9, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		res, err := core.Run(p, cfg, core.Options{Seed: 9, FaultPlan: transientPlan(77)})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "transient")
		em := res.EM
		if em.FaultsInjected == 0 {
			t.Errorf("P=%d: no faults injected at 2%% rates", procs)
		}
		if em.Retries == 0 || em.RecoveryOps == 0 {
			t.Errorf("P=%d: Retries=%d RecoveryOps=%d, want both > 0", procs, em.Retries, em.RecoveryOps)
		}
		// Every fault-layer retry re-issues one charged operation, so
		// RecoveryOps accounts for at least the retries.
		if em.RecoveryOps < em.Retries {
			t.Errorf("P=%d: RecoveryOps=%d < Retries=%d", procs, em.RecoveryOps, em.Retries)
		}
		if em.ChecksumFailures == 0 {
			t.Errorf("P=%d: corruption injected but never detected", procs)
		}
	}
}

// TestFaultReplayPath disables the fault layer's transparent retries
// so every transient fault escalates to a full superstep rollback, and
// checks the replay machinery preserves bitwise fidelity.
func TestFaultReplayPath(t *testing.T) {
	p := &bsptest.RandomProgram{V: 12, Steps: 3, MsgsPerStep: 3, MaxLen: 10}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 4, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// With retries disabled a superstep attempt only succeeds when every
	// processor is fault-free for the whole attempt, so the clean
	// probability shrinks exponentially in P times the per-attempt
	// traffic. 0.5% per block keeps the expected replay count per
	// superstep in the tens while making replay exhaustion vanishingly
	// unlikely.
	plan := &fault.Plan{Seed: 5, ReadErrorRate: 0.005, WriteErrorRate: 0.005, CorruptRate: 0.005}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		res, err := core.Run(p, cfg, core.Options{Seed: 4, FaultPlan: plan, MaxRetries: -1})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "replay")
		em := res.EM
		if em.Replays == 0 {
			t.Errorf("P=%d: retries disabled and faults injected, but no superstep was replayed", procs)
		}
		if em.Retries != 0 {
			t.Errorf("P=%d: retries disabled but Retries=%d", procs, em.Retries)
		}
		if em.RecoveryOps == 0 {
			t.Errorf("P=%d: replays happened but RecoveryOps=0", procs)
		}
	}
}

// TestFaultDriveLoss kills one drive mid-run and checks the engines
// degrade gracefully: the run completes bitwise identical on the
// surviving drives, with the mirroring and redirection overhead
// reported.
func TestFaultDriveLoss(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 21, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		plan := &fault.Plan{Seed: 13, FailDriveOp: 40, FailDrive: 2, Mirror: true}
		res, err := core.Run(p, cfg, core.Options{Seed: 21, FaultPlan: plan})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "drive loss")
		em := res.EM
		if em.DriveFailures != 1 {
			t.Errorf("P=%d: DriveFailures=%d, want 1", procs, em.DriveFailures)
		}
		if em.MirrorOps == 0 {
			t.Errorf("P=%d: mirroring enabled but MirrorOps=0", procs)
		}
		// A death whose op touches the dying drive forces a replay;
		// either way the post-death redirection must charge extra ops.
		if em.RecoveryOps == 0 {
			t.Errorf("P=%d: degraded operation should charge recovery ops", procs)
		}
		// Compare against the same plan without the drive death: the
		// degradation overhead must be measurable, not free.
		mirrorOnly := &fault.Plan{Seed: 13, Mirror: true}
		base, err := core.Run(p, cfg, core.Options{Seed: 21, FaultPlan: mirrorOnly})
		if err != nil {
			t.Fatalf("P=%d baseline: %v", procs, err)
		}
		if res.EM.Run.Ops <= base.EM.Run.Ops {
			t.Errorf("P=%d: drive loss run took %d ops, mirrored baseline %d — expected measurable overhead",
				procs, res.EM.Run.Ops, base.EM.Run.Ops)
		}
	}
}

// TestFaultDeterminism: the same seed must produce the same fault
// schedule, the same recovery work and the same I/O counts.
func TestFaultDeterminism(t *testing.T) {
	p := &bsptest.RandomProgram{V: 14, Steps: 3, MsgsPerStep: 3, MaxLen: 10}
	for _, procs := range []int{1, 2} {
		cfg := parMachine(procs, 3, 8, 200)
		opts := core.Options{Seed: 8, FaultPlan: transientPlan(42)}
		a, err := core.Run(p, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Run(p, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.EM.FaultsInjected != b.EM.FaultsInjected ||
			a.EM.Retries != b.EM.Retries ||
			a.EM.RecoveryOps != b.EM.RecoveryOps ||
			a.EM.Replays != b.EM.Replays ||
			a.EM.Run.Ops != b.EM.Run.Ops {
			t.Errorf("P=%d: same seed, different runs:\n a: faults=%d retries=%d recovery=%d replays=%d ops=%d\n b: faults=%d retries=%d recovery=%d replays=%d ops=%d",
				procs,
				a.EM.FaultsInjected, a.EM.Retries, a.EM.RecoveryOps, a.EM.Replays, a.EM.Run.Ops,
				b.EM.FaultsInjected, b.EM.Retries, b.EM.RecoveryOps, b.EM.Replays, b.EM.Run.Ops)
		}
	}
}

// TestFaultRandomizedEquivalence drives random programs, machine
// shapes and fault plans through both engines and checks bitwise
// fidelity every time.
func TestFaultRandomizedEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		v := r.Intn(16) + 1
		p := &bsptest.RandomProgram{
			V:           v,
			Steps:       r.Intn(3) + 1,
			MsgsPerStep: r.Intn(4),
			MaxLen:      r.Intn(16),
		}
		ref, err := bsp.Run(p, bsp.RunOptions{Seed: seed, PktSize: 8})
		if err != nil {
			return false
		}
		procs := r.Intn(3) + 1
		d := r.Intn(3) + 2
		b := 8 + r.Intn(8)
		m := d*b + r.Intn(200)
		cfg := parMachine(procs, d, b, m)
		plan := &fault.Plan{
			Seed:           r.Uint64(),
			ReadErrorRate:  r.Float64() * 0.05,
			WriteErrorRate: r.Float64() * 0.05,
			CorruptRate:    r.Float64() * 0.05,
		}
		if r.Bool() {
			plan.FailDriveOp = int64(r.Intn(100) + 1)
			plan.FailDrive = r.Intn(d)
			plan.FailProc = r.Intn(procs)
			plan.Mirror = true // a scheduled death needs explicit redundancy
		}
		res, err := core.Run(p, cfg, core.Options{Seed: seed, FaultPlan: plan})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		a, bb := bsptest.Checksums(ref), bsptest.Checksums(res.ToBSPResult())
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFaultNoRoutingRejected: the ablation frees its replay source
// while reading, so combining it with fault injection is an error.
func TestFaultNoRoutingRejected(t *testing.T) {
	p := &bsptest.RingProgram{V: 4, Rounds: 1}
	cfg := tinyMachine(2, 8, 64)
	_, err := core.Run(p, cfg, core.Options{NoRouting: true, FaultPlan: transientPlan(1)})
	if err == nil {
		t.Fatal("NoRouting + FaultPlan accepted")
	}
}

// TestFaultStatsCleanWithoutPlan: runs without a fault plan must not
// report any fault accounting.
func TestFaultStatsCleanWithoutPlan(t *testing.T) {
	p := &bsptest.RingProgram{V: 6, Rounds: 2}
	res, err := core.Run(p, tinyMachine(2, 8, 64), core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	em := res.EM
	if em.FaultsInjected != 0 || em.RecoveryOps != 0 || em.Replays != 0 || em.MirrorOps != 0 {
		t.Errorf("fault stats nonzero without a plan: %+v", em)
	}
}
