package core

import (
	"reflect"
	"strings"
	"testing"

	"embsp/internal/words"
)

// Codec tests for NodeSnapshot, the replication wire unit: encode and
// decode must be exact inverses (deletion markers included), WireWords
// must match the actual encoded length (it is what the replication
// byte counters charge), and a payload corrupted anywhere between the
// exporting worker and the restore must fail the per-track checksum.

func codecSnapshot() *NodeSnapshot {
	return &NodeSnapshot{
		Version:  7,
		Full:     false,
		Base:     6,
		Manifest: []uint64{3, 1, 4, 1, 5},
		Tracks: []TrackImage{
			{Disk: 0, Track: 2, Payload: []uint64{10, 20, 30}},
			{Disk: 1, Track: 0, Payload: nil}, // deletion marker
			{Disk: 1, Track: 5, Payload: []uint64{0, 0, 9}},
		},
	}
}

func TestSnapshotCodecRoundtrip(t *testing.T) {
	want := codecSnapshot()
	enc := words.NewEncoder(nil)
	want.Encode(enc)
	buf := enc.Words()
	if got := want.WireWords(); got != len(buf) {
		t.Fatalf("WireWords = %d, encoded length %d; the byte counters would lie", got, len(buf))
	}
	got, err := DecodeSnapshot(words.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip\n got %+v\nwant %+v", got, want)
	}
	if got.Tracks[1].Payload != nil {
		t.Fatal("deletion marker came back as a payload")
	}
}

func TestSnapshotCodecRejectsCorruptTrack(t *testing.T) {
	s := codecSnapshot()
	enc := words.NewEncoder(nil)
	s.Encode(enc)
	buf := enc.Words()
	// Flip one bit in the last word — part of the final track's payload —
	// and the decode must refuse rather than restore garbage.
	buf[len(buf)-1] ^= 1
	if _, err := DecodeSnapshot(words.NewDecoder(buf)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload decoded; err = %v", err)
	}
}

func TestSnapshotCodecRejectsBogusTrackCount(t *testing.T) {
	enc := words.NewEncoder(nil)
	enc.PutInt(1)          // Version
	enc.PutBool(true)      // Full
	enc.PutInt(-1)         // Base
	enc.PutUints(nil)      // Manifest
	enc.PutInt(1 << 40)    // absurd track count
	if _, err := DecodeSnapshot(words.NewDecoder(enc.Words())); err == nil {
		t.Fatal("snapshot claiming 2^40 tracks decoded")
	}
}
