package core_test

// Engine-level acceptance tests for the parity redundancy layer: a
// permanent single-drive failure mid-run, with Redundancy == parity,
// must yield a Result bitwise identical to the fault-free reference —
// degraded reads, online rebuild and all — on both engines; a crash
// during the rebuild must resume and still match; and the parity
// storage overhead must stay near 1/(D-1) instead of mirroring's 2x.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/redundancy"
)

// deathPlan schedules a permanent, unmirrored drive death early enough
// that most of the run executes in degraded or rebuilt state.
func deathPlan() *fault.Plan {
	return &fault.Plan{Seed: 13, FailDriveOp: 40, FailDrive: 2}
}

// TestParityDriveLossBitwise is the issue's acceptance property: with
// Redundancy == parity a permanent single-drive failure mid-run, at
// P = 1 and P = 3, yields a Result bitwise identical to the fault-free
// reference run, with the degraded reads and the rebuild visible in
// EMStats.
func TestParityDriveLossBitwise(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 21, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		res, err := core.Run(p, cfg, core.Options{
			Seed:       21,
			FaultPlan:  deathPlan(),
			Redundancy: redundancy.Parity,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "parity drive loss")
		em := res.EM
		if em.DriveFailures != 1 {
			t.Errorf("P=%d: DriveFailures=%d, want 1", procs, em.DriveFailures)
		}
		if em.MirrorOps != 0 {
			t.Errorf("P=%d: parity mode charged MirrorOps=%d", procs, em.MirrorOps)
		}
		if em.ParityOps == 0 {
			t.Errorf("P=%d: parity enabled but ParityOps=0", procs)
		}
		if em.ReconstructedBlocks == 0 {
			t.Errorf("P=%d: drive died but no block was reconstructed", procs)
		}
		if em.DegradedOps == 0 {
			t.Errorf("P=%d: drive died but DegradedOps=0", procs)
		}
		if em.RebuiltBlocks == 0 {
			t.Errorf("P=%d: drive died but RebuiltBlocks=0 — online rebuild never ran", procs)
		}
	}
}

// TestParityOverhead: the storage cost of parity protection stays near
// ceil(striped/(D-1)) parity tracks — far below mirroring's 2x — with
// slack only for stripes left partially filled by barrier flushes and
// releases.
func TestParityOverhead(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	for _, procs := range []int{1, 3} {
		const d = 4
		cfg := parMachine(procs, d, 8, 256)
		res, err := core.Run(p, cfg, core.Options{Seed: 21, Redundancy: redundancy.Parity})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		em := res.EM
		if em.StripedBlocks == 0 || em.ParityBlocks == 0 {
			t.Fatalf("P=%d: no striping happened: striped=%d parity=%d",
				procs, em.StripedBlocks, em.ParityBlocks)
		}
		// Gauges are summed over processors. Each processor's steady
		// state is ceil(striped/(D-1)) parity tracks, but every barrier
		// flush can finalize partially filled stripes and the release
		// of input areas shrinks stripes without freeing their parity
		// track, so allow a few partial stripes of slack per processor.
		maxParity := (em.StripedBlocks+int64(d-2))/int64(d-1) + int64(procs*3*d)
		if em.ParityBlocks > maxParity {
			t.Errorf("P=%d: ParityBlocks=%d, want <= %d (striped=%d)",
				procs, em.ParityBlocks, maxParity, em.StripedBlocks)
		}
		// Mirroring would have doubled the footprint: its redundant
		// block count equals the striped count. Parity must be well
		// under half of that.
		if em.ParityBlocks*2 >= em.StripedBlocks {
			t.Errorf("P=%d: ParityBlocks=%d not below half of striped=%d — no better than mirroring",
				procs, em.ParityBlocks, em.StripedBlocks)
		}
	}
}

// TestParityScrubClean: with scrubbing enabled and no corruption, the
// scrub verifies tracks between supersteps, repairs nothing, and the
// run stays bitwise identical to the reference.
func TestParityScrubClean(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 21, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		res, err := core.Run(p, cfg, core.Options{
			Seed:       21,
			Redundancy: redundancy.Parity,
			Scrub:      true,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "scrub")
		em := res.EM
		if em.ScrubbedBlocks == 0 {
			t.Errorf("P=%d: scrub enabled but ScrubbedBlocks=0", procs)
		}
		if em.ScrubRepairs != 0 || em.ChecksumFailures != 0 {
			t.Errorf("P=%d: clean run but repairs=%d checksum failures=%d",
				procs, em.ScrubRepairs, em.ChecksumFailures)
		}
	}
}

// TestParityTransientFaults: parity and the fault layer's transient
// injection compose — retries and replays above, parity maintenance
// below — without losing bitwise fidelity.
func TestParityTransientFaults(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 9, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		res, err := core.Run(p, cfg, core.Options{
			Seed:       9,
			FaultPlan:  transientPlan(77),
			Redundancy: redundancy.Parity,
			Scrub:      true,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		checksumsEqual(t, ref, res, "parity+transient")
		if res.EM.FaultsInjected == 0 {
			t.Errorf("P=%d: no faults injected at 2%% rates", procs)
		}
		if res.EM.ParityOps == 0 {
			t.Errorf("P=%d: parity enabled but ParityOps=0", procs)
		}
	}
}

// TestParityKillDuringRebuildResume is the crash-consistency half of
// the acceptance property: a run hard-stopped while the online rebuild
// is still in progress, then resumed from its journal, produces a
// Result bitwise identical to the uninterrupted run.
func TestParityKillDuringRebuildResume(t *testing.T) {
	p := testProgram()
	for _, procs := range []int{1, 3} {
		label := fmt.Sprintf("P=%d", procs)
		cfg := parMachine(procs, 4, 8, 256)
		opts := func(dir string) core.Options {
			return core.Options{
				Seed:       3,
				StateDir:   dir,
				FaultPlan:  deathPlan(),
				Redundancy: redundancy.Parity,
				Scrub:      true,
			}
		}
		clean, err := core.Run(p, cfg, opts(t.TempDir()))
		if err != nil {
			t.Fatalf("%s clean: %v", label, err)
		}
		if clean.EM.RebuiltBlocks == 0 {
			t.Fatalf("%s: shape produced no rebuild work; the kill would not land mid-rebuild", label)
		}

		// Stop at the first barrier after the drive death (the death at
		// op 40 lands in superstep 0, and the rebuild budget spreads the
		// rebuild over several barriers), then resume to completion.
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		killed := opts(dir)
		killed.OnCommit = func(step int) {
			if step == 1 {
				cancel()
			}
		}
		_, err = core.RunContext(ctx, p, cfg, killed)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: killed run returned %v, want context.Canceled", label, err)
		}

		resumed := opts(dir)
		resumed.Resume = true
		res, err := core.Run(p, cfg, resumed)
		if err != nil {
			t.Fatalf("%s resume: %v", label, err)
		}
		resultsIdentical(t, clean, res, label+" kill during rebuild")
	}
}

// TestParityCrashAndResume: the in-process stand-in for SIGKILL — a
// Program panic mid-superstep — leaves the journal at the last
// committed barrier; resuming a parity-protected, scrubbed, fault-
// injected run still reproduces the uninterrupted Result exactly.
func TestParityCrashAndResume(t *testing.T) {
	p := testProgram()
	for _, procs := range []int{1, 3} {
		label := fmt.Sprintf("P=%d", procs)
		cfg := parMachine(procs, 4, 8, 256)
		opts := func(dir string) core.Options {
			return core.Options{
				Seed:       3,
				StateDir:   dir,
				FaultPlan:  deathPlan(),
				Redundancy: redundancy.Parity,
				Scrub:      true,
			}
		}
		clean, err := core.Run(p, cfg, opts(t.TempDir()))
		if err != nil {
			t.Fatalf("%s clean: %v", label, err)
		}

		dir := t.TempDir()
		crashed := &panicProgram{Program: p, panicStep: 2}
		_, err = core.Run(crashed, cfg, opts(dir))
		var pe *bsp.ProgramError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: crashed run returned %v, want *bsp.ProgramError", label, err)
		}

		resumed := opts(dir)
		resumed.Resume = true
		res, err := core.Run(p, cfg, resumed)
		if err != nil {
			t.Fatalf("%s resume: %v", label, err)
		}
		resultsIdentical(t, clean, res, label+" parity crash")
	}
}

// TestRedundancyValidation: the redundancy-mode surface of
// Options.Validate — unprotected death plans are a typed error, and
// incoherent mode combinations are rejected up front.
func TestRedundancyValidation(t *testing.T) {
	p := testProgram()
	good := parMachine(1, 4, 8, 256)

	_, err := core.Run(p, good, core.Options{Seed: 3, FaultPlan: deathPlan()})
	var ue *core.UnprotectedDriveLossError
	if !errors.As(err, &ue) {
		t.Fatalf("unprotected death plan: got %v, want *core.UnprotectedDriveLossError", err)
	}
	if ue.FailDrive != 2 || ue.FailOp != 40 {
		t.Errorf("error carries drive %d op %d, want drive 2 op 40", ue.FailDrive, ue.FailOp)
	}

	cases := []struct {
		name string
		cfg  core.MachineConfig
		opts core.Options
	}{
		{"invalid mode", good, core.Options{Redundancy: redundancy.Mode(99)}},
		{"parity on one drive", parMachine(1, 1, 8, 64), core.Options{Redundancy: redundancy.Parity}},
		{"scrub without parity", good, core.Options{Scrub: true}},
		{"scrub with mirror", good, core.Options{Scrub: true, Redundancy: redundancy.Mirror}},
		{"parity plus mirror plan", good, core.Options{
			Redundancy: redundancy.Parity,
			FaultPlan:  &fault.Plan{Seed: 1, Mirror: true},
		}},
	}
	for _, tc := range cases {
		if _, err := core.Run(p, tc.cfg, tc.opts); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}

	// Mirror via the explicit option (no plan flag) still protects a
	// death plan.
	if _, err := core.Run(p, good, core.Options{
		Seed: 3, FaultPlan: deathPlan(), Redundancy: redundancy.Mirror,
	}); err != nil {
		t.Errorf("explicit mirror with death plan: %v", err)
	}
}

// TestParityCrashThenDriveLoss closes the RAID write hole end to end:
// the run crashes mid-superstep (in-place context rewrites on disk,
// journal at the previous barrier, the layer's in-memory barrier-value
// cache lost), resumes, and only THEN loses a drive — so the
// reconstruction runs over state the resume-time reconciliation had to
// repair or adopt. The resumed Result must stay bitwise identical to
// the uninterrupted run. The death op indices were measured so the
// death lands in superstep 3, strictly after the superstep-2 crash.
// FailDriveOp counts drive 2's own attempt clock (fault schedules are
// per drive); the measured per-barrier clock of drive 2 is 672/900 at
// the superstep-2/3 barriers for P=1, and 123/167 on proc 0 for P=3.
func TestParityCrashThenDriveLoss(t *testing.T) {
	p := testProgram()
	for _, tc := range []struct {
		procs   int
		deathOp int64
	}{{1, 800}, {3, 145}} {
		label := fmt.Sprintf("P=%d", tc.procs)
		cfg := parMachine(tc.procs, 4, 8, 256)
		opts := func(dir string) core.Options {
			return core.Options{
				Seed:       3,
				StateDir:   dir,
				FaultPlan:  &fault.Plan{Seed: 13, FailDriveOp: tc.deathOp, FailDrive: 2},
				Redundancy: redundancy.Parity,
				Scrub:      true,
			}
		}
		clean, err := core.Run(p, cfg, opts(t.TempDir()))
		if err != nil {
			t.Fatalf("%s clean: %v", label, err)
		}
		if clean.EM.DriveFailures != 1 {
			t.Fatalf("%s: DriveFailures=%d, want 1 — death op %d never fired", label, clean.EM.DriveFailures, tc.deathOp)
		}
		if clean.EM.ReconstructedBlocks == 0 {
			t.Fatalf("%s: no reconstruction — the death landed too late to matter", label)
		}

		dir := t.TempDir()
		crashed := &panicProgram{Program: p, panicStep: 2}
		_, err = core.Run(crashed, cfg, opts(dir))
		var pe *bsp.ProgramError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: crashed run returned %v, want *bsp.ProgramError", label, err)
		}

		resumed := opts(dir)
		resumed.Resume = true
		res, err := core.Run(p, cfg, resumed)
		if err != nil {
			t.Fatalf("%s resume: %v", label, err)
		}
		resultsIdentical(t, clean, res, label+" crash before drive loss")
	}
}
