package core

import (
	"fmt"
	"os"
	"sort"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/journal"
	"embsp/internal/words"
)

// Node snapshots are the unit of cluster-level replication: everything
// needed to re-materialize a node on another machine at a committed
// barrier. A node's journal manifest alone is metadata (PRNG, areas,
// allocator, stats) — the payload lives in the drive files — so a
// snapshot pairs the manifest with track images: the full set of
// non-blank tracks, or, between consecutive barriers, just the tracks
// the barrier logically touched (a delta).

// TrackImage is one track of a snapshot. A nil Payload is a deletion
// marker: the track read as blank at the snapshot's barrier and any
// replicated copy must be wiped.
type TrackImage struct {
	Disk, Track int
	Payload     []uint64
}

// NodeSnapshot is a node's state at committed barrier Version. Full
// snapshots stand alone; deltas apply on top of a copy at barrier
// Base, which the exporting engine guarantees covers every track whose
// content changed between Base and Version (a superset is allowed —
// images are current content, not diffs).
type NodeSnapshot struct {
	Version  int
	Full     bool
	Base     int // -1 for full snapshots
	Manifest []uint64
	Tracks   []TrackImage
}

// WireWords returns the snapshot's encoded size in words, the unit the
// replication counters charge.
func (s *NodeSnapshot) WireWords() int {
	n := 5 + len(s.Manifest)
	for _, t := range s.Tracks {
		n += 3
		if t.Payload != nil {
			n += 2 + len(t.Payload)
		}
	}
	return n
}

// Encode appends the snapshot's wire form: header, manifest, then each
// track image with its own FNV checksum (the transport's frame
// checksum guards the hop; the per-track checksum guards the image
// end-to-end, through the replica store and back out of a restore).
func (s *NodeSnapshot) Encode(enc *words.Encoder) {
	enc.PutInt(int64(s.Version))
	enc.PutBool(s.Full)
	enc.PutInt(int64(s.Base))
	enc.PutUints(s.Manifest)
	enc.PutInt(int64(len(s.Tracks)))
	for _, t := range s.Tracks {
		enc.PutInt(int64(t.Disk))
		enc.PutInt(int64(t.Track))
		if t.Payload == nil {
			enc.PutBool(false)
			continue
		}
		enc.PutBool(true)
		enc.PutUint(disk.Checksum(t.Payload))
		enc.PutUints(t.Payload)
	}
}

// DecodeSnapshot reads a snapshot encoded by Encode, verifying every
// track image's checksum.
func DecodeSnapshot(dec *words.Decoder) (*NodeSnapshot, error) {
	s := &NodeSnapshot{
		Version: int(dec.Int()),
		Full:    dec.Bool(),
		Base:    int(dec.Int()),
	}
	s.Manifest = dec.Uints()
	nt := int(dec.Int())
	if nt < 0 || nt > dec.Remaining() {
		return nil, fmt.Errorf("core: snapshot claims %d track images", nt)
	}
	for i := 0; i < nt; i++ {
		t := TrackImage{Disk: int(dec.Int()), Track: int(dec.Int())}
		if dec.Bool() {
			sum := dec.Uint()
			t.Payload = dec.Uints()
			if disk.Checksum(t.Payload) != sum {
				return nil, fmt.Errorf("core: snapshot track (%d,%d) fails its checksum", t.Disk, t.Track)
			}
		}
		s.Tracks = append(s.Tracks, t)
	}
	return s, nil
}

// mergeDirty folds the store's dirty-track set into the engine's
// accumulator. The accumulator survives Reload (which discards the
// store instance, and with it the store-level set), preserving the
// invariant that dirty ⊇ every track changed since barrier exportBase.
func (n *NodeEngine) mergeDirty() {
	if n.ps == nil || n.ps.bfile == nil {
		return
	}
	for _, a := range n.ps.bfile.TakeDirty() {
		n.dirty[a] = struct{}{}
	}
}

// ExportSnapshot captures the node's state at its latest barrier —
// the prepared one when a 2PC record is pending (its track data is
// already durable; only HEAD lags), the committed one otherwise — for
// shipment to the coordinator's replica store. Exporting at PREPARE is
// what makes post-decision losses survivable: the coordinator folds
// the snapshot into the replica the moment the decision record lands,
// so a worker wiped any time after never leaves the replica a barrier
// behind. base is the barrier version the coordinator's replica
// currently holds; when it matches the engine's dirty-set coverage the
// export is a delta (current content of every track touched since
// base), otherwise a full snapshot. The store must be quiesced —
// ExportSnapshot is only valid between a Prepare (or commit) and the
// next superstep's first write, which is when the cluster worker
// calls it.
func (n *NodeEngine) ExportSnapshot(base int) (*NodeSnapshot, error) {
	version := n.Committed()
	recs := n.jrn.Records()
	var manifest []uint64
	if n.jrn.HasPending() {
		version++
		manifest = n.jrn.Pending()
	} else if version > 0 {
		manifest = recs[version-1]
	} else {
		return nil, fmt.Errorf("core: nothing committed or prepared to export")
	}
	if n.ps.bfile == nil {
		return nil, fmt.Errorf("core: snapshot export needs a file-backed store")
	}
	snap := &NodeSnapshot{Version: version, Manifest: append([]uint64(nil), manifest...)}
	n.mergeDirty()
	if base >= 0 && base == n.exportBase {
		snap.Full, snap.Base = false, base
		addrs := make([]disk.Addr, 0, len(n.dirty))
		for a := range n.dirty {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool {
			if addrs[i].Disk != addrs[j].Disk {
				return addrs[i].Disk < addrs[j].Disk
			}
			return addrs[i].Track < addrs[j].Track
		})
		for _, a := range addrs {
			img, err := n.ps.bfile.ExportTrack(a.Disk, a.Track)
			if err != nil {
				return nil, err
			}
			snap.Tracks = append(snap.Tracks, TrackImage{Disk: a.Disk, Track: a.Track, Payload: img})
		}
	} else {
		snap.Full, snap.Base = true, -1
		st := n.ps.store.State()
		for d := range st.Next {
			for t := 0; t < st.Next[d]; t++ {
				img, err := n.ps.bfile.ExportTrack(d, t)
				if err != nil {
					return nil, err
				}
				if img == nil {
					continue
				}
				snap.Tracks = append(snap.Tracks, TrackImage{Disk: d, Track: t, Payload: img})
			}
		}
	}
	n.exportBase = version
	clear(n.dirty)
	return snap, nil
}

// AdoptNode re-materializes node nodeID at dir from a full snapshot —
// the migration path for a worker whose own state is gone. The
// directory is wiped, the drive files are rebuilt from the snapshot's
// track images, and the journal is seeded to the snapshot's committed
// record count so the rejoin reconciliation sees exactly the barrier
// the replica captured. The snapshot's manifest fingerprint must match
// the one derived from (cfg, opts, nodeID) — adopting another node's
// (or another run's) state is refused before anything touches disk.
func AdoptNode(p bsp.Program, cfg MachineConfig, opts Options, nodeID int, dir string, snap *NodeSnapshot) (*NodeEngine, error) {
	opts.defaults()
	if err := ClusterCheck(cfg, opts); err != nil {
		return nil, err
	}
	if err := bsp.CheckProgram(p); err != nil {
		return nil, err
	}
	if nodeID < 0 || nodeID >= cfg.P {
		return nil, fmt.Errorf("core: node id %d out of range for P = %d", nodeID, cfg.P)
	}
	if dir == "" {
		return nil, fmt.Errorf("core: a cluster node needs a state directory (its journal is the 2PC participant log)")
	}
	if !snap.Full {
		return nil, fmt.Errorf("core: AdoptNode needs a full snapshot, got a delta on base %d", snap.Base)
	}
	if snap.Version < 1 {
		return nil, fmt.Errorf("core: AdoptNode of snapshot with no committed barrier")
	}
	n := &NodeEngine{
		sh:         newSimShape(p, cfg, opts),
		dir:        dir,
		dirty:      make(map[disk.Addr]struct{}),
		exportBase: snap.Version,
	}
	n.fpr = nodeFingerprint(cfg, opts, n.sh.v, n.sh.mu, n.sh.gamma, nodeID)
	if len(snap.Manifest) < 2 || snap.Manifest[0] != manifestNodeKind || snap.Manifest[1] != n.fpr {
		return nil, fmt.Errorf("core: snapshot manifest fingerprint does not match node %d of this run", nodeID)
	}
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	ps, err := n.sh.newProcState(nodeID, procDir(dir, nodeID), false)
	if err != nil {
		return nil, err
	}
	ps.ckptOn = true
	n.ps = ps
	for _, t := range snap.Tracks {
		if t.Payload == nil {
			continue // a fresh store is blank everywhere
		}
		if err := ps.bfile.ImportTrack(t.Disk, t.Track, t.Payload); err != nil {
			ps.store.Close()
			return nil, err
		}
	}
	// Track data must be durable before the seeded journal claims the
	// barrier committed — the same write-ahead discipline as Prepare.
	if err := ps.bfile.Sync(); err != nil {
		ps.store.Close()
		return nil, err
	}
	ps.bfile.TakeDirty()
	jrn, err := journal.Seed(dir, snap.Version, snap.Manifest)
	if err != nil {
		ps.store.Close()
		return nil, err
	}
	jrn.SetTracer(n.sh.tr, nodeID)
	n.jrn = jrn
	if err := n.LoadCommitted(); err != nil {
		n.Close()
		return nil, err
	}
	return n, nil
}
