package core

import (
	"embsp/internal/disk"
	"embsp/internal/mem"
	"embsp/internal/prng"
)

// blockWriter implements Step 1(d) of Algorithm 1 (and the disk-write
// part of Step 1(c) of Algorithm 3): it accepts block images, buffers
// up to D of them, and flushes each full buffer in one parallel write
// operation, assigning blocks to drives by a fresh random permutation
// (or round-robin rotation in deterministic mode). Every written block
// is appended to its bucket's standard-linked-format list.
type blockWriter struct {
	arr       *disk.Array
	dir       *outDirectory
	bucketKey func(blockMeta) int
	rng       *prng.Rand
	det       bool
	rr        int

	buf     []uint64 // D·B words
	metas   []blockMeta
	perm    []int
	pending int
}

func newBlockWriter(arr *disk.Array, dir *outDirectory, bucketKey func(blockMeta) int, rng *prng.Rand, det bool, buf []uint64) *blockWriter {
	D := arr.Config().D
	return &blockWriter{
		arr: arr, dir: dir, bucketKey: bucketKey, rng: rng, det: det,
		buf: buf, metas: make([]blockMeta, D), perm: make([]int, D),
	}
}

func (w *blockWriter) add(meta blockMeta, img []uint64) error {
	B := w.arr.Config().B
	copy(w.buf[w.pending*B:(w.pending+1)*B], img)
	w.metas[w.pending] = meta
	w.pending++
	if w.pending == w.arr.Config().D {
		return w.flush()
	}
	return nil
}

func (w *blockWriter) flush() error {
	if w.pending == 0 {
		return nil
	}
	D, B := w.arr.Config().D, w.arr.Config().B
	if w.det {
		for i := 0; i < D; i++ {
			w.perm[i] = (w.rr + i) % D
		}
		w.rr = (w.rr + w.pending) % D
	} else {
		w.rng.PermInto(w.perm)
	}
	reqs := make([]disk.WriteReq, 0, w.pending)
	for i := 0; i < w.pending; i++ {
		d := w.perm[i]
		t := w.arr.Alloc(d)
		reqs = append(reqs, disk.WriteReq{Disk: d, Track: t, Src: w.buf[i*B : (i+1)*B]})
		b := w.bucketKey(w.metas[i])
		w.dir.q[b][d] = append(w.dir.q[b][d], blockRef{track: t, meta: w.metas[i]})
		w.dir.total++
	}
	w.pending = 0
	return w.arr.WriteOp(reqs)
}

// routeStats reports the behaviour of one SimulateRouting invocation.
type routeStats struct {
	ops     int64   // parallel I/O operations performed
	ragged  int64   // scheduled slots with no block (paper: dummy blocks)
	maxSkew float64 // max over buckets of (max per-drive share)·D/R — Lemma 2's l
}

// routeResult is the reorganized layout: for every group (keyed by
// groupKey), the list of consecutive-format regions holding its
// blocks, plus the areas backing them.
type routeResult struct {
	regions [][]groupRegion
	areas   []disk.Area
	total   int
	stats   routeStats
}

// simulateRouting implements Algorithm 2 on one disk array:
// reorganize the blocks of dir from standard linked format into
// standard consecutive format per group, where a block's group is
// groupKey(meta) ∈ [0, numGroups).
//
// Step 1 gathers bucket b onto drive b: parallel operation j reads one
// block of bucket b from drive (b+j) mod D for all b simultaneously.
// Step 2 stripes each gathered bucket — sorted by (group, destination,
// source, sequence, chunk) — across the drives into a rotated
// consecutive area: operation j writes bucket b's j-th block to drive
// (b+j) mod D, the paper's track formula d·⌈vγ/D²B⌉ + ⌊j/D⌋.
func simulateRouting(arr *disk.Array, acct *mem.Accountant, dir *outDirectory, groupKey func(blockMeta) int, numGroups int) (*routeResult, error) {
	D, B := arr.Config().D, arr.Config().B
	res := &routeResult{total: dir.total}

	// Lemma 2 observation: per-drive share of each bucket.
	for b := 0; b < D; b++ {
		R, maxPer := 0, 0
		for s := 0; s < D; s++ {
			n := len(dir.q[b][s])
			R += n
			if n > maxPer {
				maxPer = n
			}
		}
		if R > 0 {
			if skew := float64(maxPer) * float64(D) / float64(R); skew > res.stats.maxSkew {
				res.stats.maxSkew = skew
			}
		}
	}

	bufWords := D * B
	if err := acct.Grab(int64(bufWords)); err != nil {
		return nil, err
	}
	defer acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)

	type rel struct{ d, t int }

	// Step 1: gather bucket b onto drive b.
	staged := make([][]blockRef, D)
	cursors := make([][]int, D)
	for b := 0; b < D; b++ {
		cursors[b] = make([]int, D)
	}
	remaining := dir.total
	for j := 0; remaining > 0; j++ {
		reads := make([]disk.ReadReq, 0, D)
		writes := make([]disk.WriteReq, 0, D)
		var toRelease []rel
		for b := 0; b < D; b++ {
			s := (b + j) % D
			q := dir.q[b][s]
			cur := cursors[b][s]
			if cur >= len(q) {
				continue
			}
			ref := q[cur]
			cursors[b][s]++
			seg := buf[len(reads)*B : (len(reads)+1)*B]
			reads = append(reads, disk.ReadReq{Disk: s, Track: ref.track, Dst: seg})
			t := arr.Alloc(b)
			writes = append(writes, disk.WriteReq{Disk: b, Track: t, Src: seg})
			staged[b] = append(staged[b], blockRef{track: t, meta: ref.meta})
			toRelease = append(toRelease, rel{s, ref.track})
			remaining--
		}
		if len(reads) == 0 {
			continue
		}
		res.stats.ragged += int64(D - len(reads))
		if err := arr.ReadOp(reads); err != nil {
			return nil, err
		}
		if err := arr.WriteOp(writes); err != nil {
			return nil, err
		}
		res.stats.ops += 2
		for _, r := range toRelease {
			arr.Release(r.d, r.t)
		}
	}

	// Step 2: stripe each bucket into a rotated consecutive area in
	// (group, destination, source, sequence, chunk) order.
	res.areas = make([]disk.Area, D)
	maxLen := 0
	for b := 0; b < D; b++ {
		sortSlice(staged[b], func(x, y blockRef) bool {
			gx, gy := groupKey(x.meta), groupKey(y.meta)
			if gx != gy {
				return gx < gy
			}
			return metaLess(x.meta, y.meta)
		})
		res.areas[b] = arr.ReserveRot(len(staged[b]), b)
		if len(staged[b]) > maxLen {
			maxLen = len(staged[b])
		}
	}
	for j := 0; j < maxLen; j++ {
		reads := make([]disk.ReadReq, 0, D)
		writes := make([]disk.WriteReq, 0, D)
		var toRelease []rel
		for b := 0; b < D; b++ {
			if j >= len(staged[b]) {
				continue
			}
			ref := staged[b][j]
			seg := buf[len(reads)*B : (len(reads)+1)*B]
			reads = append(reads, disk.ReadReq{Disk: b, Track: ref.track, Dst: seg})
			addr := res.areas[b].Addr(j)
			writes = append(writes, disk.WriteReq{Disk: addr.Disk, Track: addr.Track, Src: seg})
			toRelease = append(toRelease, rel{b, ref.track})
		}
		res.stats.ragged += int64(D - len(reads))
		if err := arr.ReadOp(reads); err != nil {
			return nil, err
		}
		if err := arr.WriteOp(writes); err != nil {
			return nil, err
		}
		res.stats.ops += 2
		for _, r := range toRelease {
			arr.Release(r.d, r.t)
		}
	}

	// Record every group's contiguous slices.
	res.regions = make([][]groupRegion, numGroups)
	for b := 0; b < D; b++ {
		i := 0
		for i < len(staged[b]) {
			g := groupKey(staged[b][i].meta)
			j := i + 1
			for j < len(staged[b]) && groupKey(staged[b][j].meta) == g {
				j++
			}
			res.regions[g] = append(res.regions[g], groupRegion{area: res.areas[b], lo: i, hi: j})
			i = j
		}
	}
	return res, nil
}

// readScattered reads the blocks listed per drive (the NoRouting
// ablation's fetch path) with greedy batching: every parallel read
// operation takes the next pending block of each drive, so the op
// count equals the maximum per-drive share — exactly the quantity
// Lemma 2 bounds. Source tracks are released after reading. Returns
// like readRegions; the caller releases the grab.
func readScattered(arr *disk.Array, acct *mem.Accountant, perDrive [][]blockRef) (buf []uint64, metas []blockMeta, grabbed int64, err error) {
	B := arr.Config().B
	total := 0
	for _, refs := range perDrive {
		total += len(refs)
	}
	if total == 0 {
		return nil, nil, 0, nil
	}
	grabbed = int64(total * B)
	if err := acct.Grab(grabbed); err != nil {
		return nil, nil, 0, err
	}
	buf = make([]uint64, total*B)
	metas = make([]blockMeta, 0, total)
	cursors := make([]int, len(perDrive))
	idx := 0
	for idx < total {
		reqs := make([]disk.ReadReq, 0, len(perDrive))
		type rel struct{ d, t int }
		var toRelease []rel
		for d, refs := range perDrive {
			if cursors[d] >= len(refs) {
				continue
			}
			ref := refs[cursors[d]]
			cursors[d]++
			reqs = append(reqs, disk.ReadReq{Disk: d, Track: ref.track, Dst: buf[idx*B : (idx+1)*B]})
			metas = append(metas, ref.meta)
			toRelease = append(toRelease, rel{d, ref.track})
			idx++
		}
		if err := arr.ReadOp(reqs); err != nil {
			acct.Release(grabbed)
			return nil, nil, 0, err
		}
		for _, r := range toRelease {
			arr.Release(r.d, r.t)
		}
	}
	return buf, metas, grabbed, nil
}

// readRegions reads all blocks of the given regions into a freshly
// grabbed buffer and parses their directory entries. The caller
// releases the returned grab.
func readRegions(arr *disk.Array, acct *mem.Accountant, regions []groupRegion) (buf []uint64, metas []blockMeta, grabbed int64, err error) {
	B := arr.Config().B
	total := 0
	for _, r := range regions {
		total += r.hi - r.lo
	}
	if total == 0 {
		return nil, nil, 0, nil
	}
	grabbed = int64(total * B)
	if err := acct.Grab(grabbed); err != nil {
		return nil, nil, 0, err
	}
	buf = make([]uint64, total*B)
	off := 0
	for _, r := range regions {
		nb := r.hi - r.lo
		if err := arr.ReadRange(r.area, r.lo, r.hi, buf[off*B:(off+nb)*B]); err != nil {
			acct.Release(grabbed)
			return nil, nil, 0, err
		}
		off += nb
	}
	metas = make([]blockMeta, total)
	for i := 0; i < total; i++ {
		metas[i], _ = parseBlock(buf[i*B : (i+1)*B])
	}
	return buf, metas, grabbed, nil
}
