package core

import (
	"embsp/internal/disk"
	"embsp/internal/mem"
	"embsp/internal/prng"
)

// blockWriter implements Step 1(d) of Algorithm 1 (and the disk-write
// part of Step 1(c) of Algorithm 3): it accepts block images, buffers
// up to D of them, and flushes each full buffer in one parallel write
// operation, assigning blocks to drives by a fresh random permutation
// (or round-robin rotation in deterministic mode). Every written block
// is appended to its bucket's standard-linked-format list.
//
// When the fault layer reports a dead drive (down != nil), the writer
// scatters only over the surviving drives, splitting a full buffer
// into as many parallel operations as needed — the engine's graceful
// degradation after a permanent drive loss.
type blockWriter struct {
	dsk       disk.Disk
	dir       *outDirectory
	bucketKey func(blockMeta) int
	rng       *prng.Rand
	det       bool
	down      func(d int) bool // nil when no fault layer is present
	rr        int

	buf     []uint64 // D·B words
	metas   []blockMeta
	perm    []int
	pending int
}

func newBlockWriter(dsk disk.Disk, dir *outDirectory, bucketKey func(blockMeta) int, rng *prng.Rand, det bool, down func(int) bool, buf []uint64) *blockWriter {
	D := dsk.Config().D
	return &blockWriter{
		dsk: dsk, dir: dir, bucketKey: bucketKey, rng: rng, det: det, down: down,
		buf: buf, metas: make([]blockMeta, D), perm: make([]int, D),
	}
}

func (w *blockWriter) add(meta blockMeta, img []uint64) error {
	B := w.dsk.Config().B
	copy(w.buf[w.pending*B:(w.pending+1)*B], img)
	w.metas[w.pending] = meta
	w.pending++
	if w.pending == w.dsk.Config().D {
		return w.flush()
	}
	return nil
}

// liveInto fills dst with the drives still serving I/O and returns the
// filled prefix. With no fault layer that is simply [0, D).
func (w *blockWriter) liveInto(dst []int) []int {
	D := w.dsk.Config().D
	dst = dst[:0]
	for d := 0; d < D; d++ {
		if w.down == nil || !w.down(d) {
			dst = append(dst, d)
		}
	}
	return dst
}

func (w *blockWriter) flush() error {
	if w.pending == 0 {
		return nil
	}
	B := w.dsk.Config().B
	var liveBuf [64]int
	live := w.liveInto(liveBuf[:0])
	L := len(live)
	if L == 0 {
		return &engineError{msg: "no live drives"}
	}
	for base := 0; base < w.pending; {
		n := w.pending - base
		if n > L {
			n = L
		}
		if w.det {
			for i := 0; i < L; i++ {
				w.perm[i] = (w.rr + i) % L
			}
			w.rr = (w.rr + n) % L
		} else {
			w.rng.PermInto(w.perm[:L])
		}
		reqs := make([]disk.WriteReq, 0, n)
		for i := 0; i < n; i++ {
			d := live[w.perm[i]]
			t := w.dsk.Alloc(d)
			reqs = append(reqs, disk.WriteReq{Disk: d, Track: t, Src: w.buf[(base+i)*B : (base+i+1)*B]})
			b := w.bucketKey(w.metas[base+i])
			w.dir.q[b][d] = append(w.dir.q[b][d], blockRef{track: t, meta: w.metas[base+i]})
			w.dir.total++
		}
		if err := w.dsk.WriteOp(reqs); err != nil {
			return err
		}
		base += n
	}
	w.pending = 0
	return nil
}

// engineError is a plain internal failure (not a fault, not a model
// violation).
type engineError struct{ msg string }

func (e *engineError) Error() string { return "core: " + e.msg }

// routeStats reports the behaviour of one SimulateRouting invocation.
type routeStats struct {
	ops     int64   // parallel I/O operations performed
	ragged  int64   // scheduled slots with no block (paper: dummy blocks)
	maxSkew float64 // max over buckets of (max per-drive share)·D/R — Lemma 2's l
}

// routeResult is the reorganized layout: for every group (keyed by
// groupKey), the list of consecutive-format regions holding its
// blocks, plus the areas backing them.
type routeResult struct {
	regions [][]groupRegion
	areas   []disk.Area
	total   int
	stats   routeStats
}

// simulateRouting implements Algorithm 2 on one disk array:
// reorganize the blocks of dir from standard linked format into
// standard consecutive format per group, where a block's group is
// groupKey(meta) ∈ [0, numGroups).
//
// Step 1 gathers bucket b onto drive b: parallel operation j reads one
// block of bucket b from drive (b+j) mod D for all b simultaneously.
// Step 2 stripes each gathered bucket — sorted by (group, destination,
// source, sequence, chunk) — across the drives into a rotated
// consecutive area: operation j writes bucket b's j-th block to drive
// (b+j) mod D, the paper's track formula d·⌈vγ/D²B⌉ + ⌊j/D⌋.
//
// Under the fault layer a dead drive's tracks are served transparently
// from their mirror copies; the extra operations the redirection costs
// are charged by the layer and surfaced as RecoveryOps.
func simulateRouting(dsk disk.Disk, acct *mem.Accountant, dir *outDirectory, groupKey func(blockMeta) int, numGroups int) (*routeResult, error) {
	D, B := dsk.Config().D, dsk.Config().B
	res := &routeResult{total: dir.total}

	// Lemma 2 observation: per-drive share of each bucket.
	for b := 0; b < D; b++ {
		R, maxPer := 0, 0
		for s := 0; s < D; s++ {
			n := len(dir.q[b][s])
			R += n
			if n > maxPer {
				maxPer = n
			}
		}
		if R > 0 {
			if skew := float64(maxPer) * float64(D) / float64(R); skew > res.stats.maxSkew {
				res.stats.maxSkew = skew
			}
		}
	}

	bufWords := D * B
	if err := acct.Grab(int64(bufWords)); err != nil {
		return nil, err
	}
	defer acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)

	type rel struct{ d, t int }

	// Step 1: gather bucket b onto drive b.
	staged := make([][]blockRef, D)
	cursors := make([][]int, D)
	for b := 0; b < D; b++ {
		cursors[b] = make([]int, D)
	}
	remaining := dir.total
	for j := 0; remaining > 0; j++ {
		reads := make([]disk.ReadReq, 0, D)
		writes := make([]disk.WriteReq, 0, D)
		var toRelease []rel
		for b := 0; b < D; b++ {
			s := (b + j) % D
			q := dir.q[b][s]
			cur := cursors[b][s]
			if cur >= len(q) {
				continue
			}
			ref := q[cur]
			cursors[b][s]++
			seg := buf[len(reads)*B : (len(reads)+1)*B]
			reads = append(reads, disk.ReadReq{Disk: s, Track: ref.track, Dst: seg})
			t := dsk.Alloc(b)
			writes = append(writes, disk.WriteReq{Disk: b, Track: t, Src: seg})
			staged[b] = append(staged[b], blockRef{track: t, meta: ref.meta})
			toRelease = append(toRelease, rel{s, ref.track})
			remaining--
		}
		if len(reads) == 0 {
			continue
		}
		res.stats.ragged += int64(D - len(reads))
		if err := dsk.ReadOp(reads); err != nil {
			return nil, err
		}
		if err := dsk.WriteOp(writes); err != nil {
			return nil, err
		}
		res.stats.ops += 2
		for _, r := range toRelease {
			if err := dsk.Release(r.d, r.t); err != nil {
				return nil, err
			}
		}
	}

	// Step 2: stripe each bucket into a rotated consecutive area in
	// (group, destination, source, sequence, chunk) order.
	res.areas = make([]disk.Area, D)
	maxLen := 0
	for b := 0; b < D; b++ {
		sortSlice(staged[b], func(x, y blockRef) bool {
			gx, gy := groupKey(x.meta), groupKey(y.meta)
			if gx != gy {
				return gx < gy
			}
			return metaLess(x.meta, y.meta)
		})
		res.areas[b] = dsk.ReserveRot(len(staged[b]), b)
		if len(staged[b]) > maxLen {
			maxLen = len(staged[b])
		}
	}
	for j := 0; j < maxLen; j++ {
		reads := make([]disk.ReadReq, 0, D)
		writes := make([]disk.WriteReq, 0, D)
		var toRelease []rel
		for b := 0; b < D; b++ {
			if j >= len(staged[b]) {
				continue
			}
			ref := staged[b][j]
			seg := buf[len(reads)*B : (len(reads)+1)*B]
			reads = append(reads, disk.ReadReq{Disk: b, Track: ref.track, Dst: seg})
			addr := res.areas[b].Addr(j)
			writes = append(writes, disk.WriteReq{Disk: addr.Disk, Track: addr.Track, Src: seg})
			toRelease = append(toRelease, rel{b, ref.track})
		}
		res.stats.ragged += int64(D - len(reads))
		if err := dsk.ReadOp(reads); err != nil {
			return nil, err
		}
		if err := dsk.WriteOp(writes); err != nil {
			return nil, err
		}
		res.stats.ops += 2
		for _, r := range toRelease {
			if err := dsk.Release(r.d, r.t); err != nil {
				return nil, err
			}
		}
	}

	// Record every group's contiguous slices.
	res.regions = make([][]groupRegion, numGroups)
	for b := 0; b < D; b++ {
		i := 0
		for i < len(staged[b]) {
			g := groupKey(staged[b][i].meta)
			j := i + 1
			for j < len(staged[b]) && groupKey(staged[b][j].meta) == g {
				j++
			}
			res.regions[g] = append(res.regions[g], groupRegion{area: res.areas[b], lo: i, hi: j})
			i = j
		}
	}
	return res, nil
}

// readScattered reads the blocks listed per drive (the NoRouting
// ablation's fetch path) with greedy batching: every parallel read
// operation takes the next pending block of each drive, so the op
// count equals the maximum per-drive share — exactly the quantity
// Lemma 2 bounds. Source tracks are released after reading. Returns
// like readRegions; the caller releases the grab.
func readScattered(dsk disk.Disk, acct *mem.Accountant, perDrive [][]blockRef) (buf []uint64, metas []blockMeta, grabbed int64, err error) {
	B := dsk.Config().B
	total := 0
	for _, refs := range perDrive {
		total += len(refs)
	}
	if total == 0 {
		return nil, nil, 0, nil
	}
	grabbed = int64(total * B)
	if err := acct.Grab(grabbed); err != nil {
		return nil, nil, 0, err
	}
	buf = make([]uint64, total*B)
	metas = make([]blockMeta, 0, total)
	cursors := make([]int, len(perDrive))
	idx := 0
	for idx < total {
		reqs := make([]disk.ReadReq, 0, len(perDrive))
		type rel struct{ d, t int }
		var toRelease []rel
		for d, refs := range perDrive {
			if cursors[d] >= len(refs) {
				continue
			}
			ref := refs[cursors[d]]
			cursors[d]++
			reqs = append(reqs, disk.ReadReq{Disk: d, Track: ref.track, Dst: buf[idx*B : (idx+1)*B]})
			metas = append(metas, ref.meta)
			toRelease = append(toRelease, rel{d, ref.track})
			idx++
		}
		if err := dsk.ReadOp(reqs); err != nil {
			acct.Release(grabbed)
			return nil, nil, 0, err
		}
		for _, r := range toRelease {
			if err := dsk.Release(r.d, r.t); err != nil {
				acct.Release(grabbed)
				return nil, nil, 0, err
			}
		}
	}
	return buf, metas, grabbed, nil
}

// readRegions reads all blocks of the given regions into a freshly
// grabbed buffer and parses their directory entries. The caller
// releases the returned grab.
func readRegions(dsk disk.Disk, acct *mem.Accountant, regions []groupRegion) (buf []uint64, metas []blockMeta, grabbed int64, err error) {
	B := dsk.Config().B
	total := 0
	for _, r := range regions {
		total += r.hi - r.lo
	}
	if total == 0 {
		return nil, nil, 0, nil
	}
	grabbed = int64(total * B)
	if err := acct.Grab(grabbed); err != nil {
		return nil, nil, 0, err
	}
	buf = make([]uint64, total*B)
	off := 0
	for _, r := range regions {
		nb := r.hi - r.lo
		if err := disk.ReadRange(dsk, r.area, r.lo, r.hi, buf[off*B:(off+nb)*B]); err != nil {
			acct.Release(grabbed)
			return nil, nil, 0, err
		}
		off += nb
	}
	metas = make([]blockMeta, total)
	for i := 0; i < total; i++ {
		metas[i], _ = parseBlock(buf[i*B : (i+1)*B])
	}
	return buf, metas, grabbed, nil
}
