package core

import (
	"context"
	"errors"
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/redundancy"
	"embsp/internal/words"
)

// redBudget returns the per-barrier track budget for background
// redundancy maintenance (rebuild and scrub): a deterministic slice of
// work per committed superstep, proportional to the drive count so the
// maintenance rate scales with the machine.
func redBudget(D int) int { return 4 * D }

// maxReplays bounds how many times one compound superstep may be
// rolled back and replayed before the engine gives up. Each replay
// draws a fresh fault schedule, so the replay count is geometric in
// the probability of one clean attempt; the bound is a runaway
// backstop set far above anything a survivable plan produces (with
// retries disabled entirely, a large superstep can legitimately need
// dozens of attempts).
const maxReplays = 1000

// blockRef locates one staged message block together with its
// directory entry.
type blockRef struct {
	track int
	meta  blockMeta
}

// outDirectory holds the standard-linked-format state of Step 1(d):
// for every (bucket, drive) pair, the ordered list of tracks on that
// drive holding blocks of that bucket. Algorithm 2 uses D buckets; the
// NoRouting ablation buckets directly by destination group.
type outDirectory struct {
	q     [][][]blockRef // [bucket][drive]
	total int
}

func newOutDirectory(buckets, D int) *outDirectory {
	d := &outDirectory{q: make([][][]blockRef, buckets)}
	for b := range d.q {
		d.q[b] = make([][]blockRef, D)
	}
	return d
}

// groupRegion is a slice [lo, hi) of an area holding one group's
// incoming message blocks.
type groupRegion struct {
	area disk.Area
	lo   int
	hi   int
}

// seqEngine simulates a BSP* program on a single-processor EM-BSP*
// machine: Algorithm 1 (SeqCompoundSuperstep) plus Algorithm 2
// (SimulateRouting).
//
// With a fault plan configured, the engine checkpoints at every
// compound-superstep barrier: the contexts of the previous superstep
// and the routed input regions stay on disk untouched while the next
// superstep runs (contexts are double-buffered between two areas;
// input-area frees are deferred to commit), so a recoverable fault
// rolls the allocator, checksum directory, PRNG, cost recorder and
// memory accountant back to the barrier and replays the superstep
// from identical inputs.
type seqEngine struct {
	p    bsp.Program
	cfg  MachineConfig
	opts Options

	v        int
	mu       int
	gamma    int
	k        int
	groups   int
	muBlocks int

	store   disk.Store        // outermost store: raw array/file/mapped, or the parity layer over it
	bfile   fileStore         // the durable store chain (tiers over file/mapped), nil for in-memory runs
	backend string            // name of the durable backend actually opened ("" in-memory)
	pf      disk.Prefetcher   // group-pipeline prefetch target, nil when off
	red     *redundancy.Store // nil unless Redundancy is parity
	fd      *fault.Disk       // nil without a fault plan
	dsk     disk.Disk         // store, or fd wrapping it
	jrn     *journal.Journal  // nil without a StateDir
	tr      *obs.Tracer       // nil = tracing off (no-op fast path)
	goctx   context.Context
	acct    *mem.Accountant
	rec     *bsp.CostRecorder
	rng     *prng.Rand
	fpr     uint64 // config fingerprint stamped into every manifest

	setup     disk.Stats // setup-phase statistics (journaled for resume)
	stepsDone int        // supersteps committed so far
	halted    bool       // all VPs voted halt (committed)

	ctxAreas  [2]disk.Area // fault mode double-buffers; [1] unused otherwise
	ctxCur    int          // context area holding the committed contexts
	inRegions [][]groupRegion
	inAreas   []disk.Area
	inBlocks  int
	inDir     *outDirectory // NoRouting ablation: scattered blocks

	routeOps int64
	ragged   int64
	maxSkew  float64
	peakLive int64

	replays     int64
	recoveryOps int64 // I/O ops consumed by rolled-back attempts
}

// groupBounds returns the VP id range [lo, hi) of group g.
func (e *seqEngine) groupBounds(g int) (lo, hi int) {
	lo = g * e.k
	hi = lo + e.k
	if hi > e.v {
		hi = e.v
	}
	return lo, hi
}

func (e *seqEngine) noteLive(extraBlocks int) {
	live := int64(e.v*e.muBlocks + extraBlocks)
	per := live / int64(e.cfg.D)
	if per > e.peakLive {
		e.peakLive = per
	}
}

func runSeq(ctx context.Context, p bsp.Program, cfg MachineConfig, opts Options) (*Result, error) {
	opts.defaults()
	v := p.NumVPs()
	mu := p.MaxContextWords()
	gamma := p.MaxCommWords()
	k := cfg.M / mu
	if k < 1 {
		k = 1
	}
	if k > v {
		k = v
	}
	e := &seqEngine{
		p: p, cfg: cfg, opts: opts, goctx: ctx, tr: opts.Trace,
		v: v, mu: mu, gamma: gamma, k: k,
		groups:   (v + k - 1) / k,
		muBlocks: (mu + cfg.B - 1) / cfg.B,
		rec:      bsp.NewCostRecorder(cfg.Cost.Pkt),
		rng:      prng.New(prng.Derive(opts.Seed, 0xE19)),
		fpr:      configFingerprint(manifestSeqKind, cfg, opts, v, mu, gamma),
	}
	diskCfg := disk.Config{D: cfg.D, B: cfg.B}
	if opts.StateDir != "" {
		f, pf, backend, err := openRunStore(opts.StateDir, cfg, opts, opts.Resume, k, mu, gamma, 0)
		if err != nil {
			return nil, err
		}
		e.store = f
		e.bfile = f
		e.pf = pf
		e.backend = backend
	} else {
		e.store = disk.MustNewArray(diskCfg)
	}
	mode := opts.effectiveRedundancy()
	if mode == redundancy.Parity {
		red, err := redundancy.Wrap(e.store)
		if err != nil {
			e.store.Close()
			return nil, err
		}
		e.red = red
		e.store = red
	}
	e.dsk = e.store
	var plan fault.Plan
	if opts.FaultPlan != nil {
		plan = *opts.FaultPlan
		if plan.FailProc != 0 {
			// The failing processor does not exist on this one-processor
			// machine; its drive death cannot happen here.
			plan.FailDriveOp = 0
		}
	}
	// Redundancy mode is explicit: the fault layer mirrors exactly when
	// the run asked for mirror redundancy (parity protection lives in
	// the layer below it).
	plan.Mirror = mode == redundancy.Mirror
	if plan.Enabled() {
		fd, err := fault.Wrap(e.store, plan, opts.MaxRetries)
		if err != nil {
			e.store.Close()
			return nil, err
		}
		e.fd = fd
		e.dsk = fd
	}
	if opts.StateDir != "" {
		var err error
		if opts.Resume {
			e.jrn, err = journal.Open(opts.StateDir)
		} else {
			e.jrn, err = journal.Create(opts.StateDir)
		}
		if err != nil {
			e.store.Close()
			return nil, err
		}
		e.jrn.SetTracer(e.tr, 0)
	}
	// The theorems assume γ = O(µ) (a VP's messages fit in its local
	// memory), so the engine footprint is Θ(k·µ) = Θ(M). The budget
	// below makes that concrete — M plus the group's contexts and
	// physically encoded messages (≤ 3γ words per VP each way) and one
	// block per drive — scaled by the configured slack constant.
	// Programs honouring γ = O(µ) stay within O(M); others are still
	// tracked and bounded.
	e.acct = mem.NewAccountant(engineMemLimit(cfg, k, mu, gamma))
	res, err := e.run()
	if cerr := e.closeState(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ckpt reports whether the engine runs under the barrier checkpoint
// discipline: contexts double-buffered and input-area frees deferred
// to the commit. Fault replays need it to keep a rollback source;
// durable runs need it so the state the last journal record references
// is never overwritten before the next record is committed.
func (e *seqEngine) ckpt() bool { return e.fd != nil || e.jrn != nil }

// redBarrier is the parity-aware commit point: at every barrier the
// superstep's fresh tracks are striped into parity groups, then a
// budgeted slice of background maintenance runs — online rebuild of a
// dead drive, and (when enabled) the latent-corruption scrub. All
// before the journal commit, so the manifest always captures a
// parity-consistent state.
func (e *seqEngine) redBarrier() error {
	if e.red == nil {
		return nil
	}
	sp := e.tr.Begin(obs.CatEngine, phParity, 0, 0)
	err := e.red.FlushParity()
	sp.End()
	if err != nil {
		return err
	}
	if e.red.Rebuilding() {
		sp := e.tr.Begin(obs.CatEngine, phRebuild, 0, 0)
		err := e.red.RebuildStep(redBudget(e.cfg.D))
		sp.End()
		if err != nil {
			return err
		}
	}
	if e.opts.Scrub {
		sp := e.tr.Begin(obs.CatEngine, phScrub, 0, 0)
		_, err := e.red.Scrub(redBudget(e.cfg.D))
		sp.End()
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *seqEngine) closeState() error {
	var errs []error
	if e.jrn != nil {
		errs = append(errs, e.jrn.Close())
	}
	if e.store != nil {
		errs = append(errs, e.store.Close())
	}
	return errors.Join(errs...)
}

// checkCtx implements cooperative cancellation at barriers.
func (e *seqEngine) checkCtx() error {
	if err := e.goctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled at superstep barrier %d: %w", e.stepsDone, err)
	}
	return nil
}

// commitJournal makes the barrier durable: data first (fsync the
// store), then the commit record (write-ahead journal append).
func (e *seqEngine) commitJournal(step int) error {
	if e.jrn == nil {
		return nil
	}
	sp := e.tr.BeginStep(obs.CatEngine, phBarrier, 0, 0, step, -1)
	err := e.store.Sync()
	sp.End()
	if err != nil {
		return err
	}
	enc := words.NewEncoder(nil)
	e.encodeManifest(enc)
	if err := e.jrn.Append(enc.Words()); err != nil {
		return err
	}
	// Flush the trace at every durable barrier so a killed run's trace
	// survives to the same superstep as its journal.
	e.tr.Flush() //nolint:errcheck // observability must not fail the run
	if e.opts.OnCommit != nil {
		e.opts.OnCommit(step)
	}
	return nil
}

// resume restores the engine from the last committed journal record.
func (e *seqEngine) resume() error {
	recs := e.jrn.Records()
	if len(recs) == 0 {
		return &journal.Error{Path: e.opts.StateDir, Record: -1,
			Reason: "no committed checkpoint to resume from (the run crashed before its first barrier; start it fresh)"}
	}
	if err := e.decodeManifest(recs[len(recs)-1]); err != nil {
		return err
	}
	if e.red != nil {
		// The crashed attempt may have left in-place rewrites (or torn
		// writes) the manifest's parity does not encode; repair or adopt
		// them before the replay's parity arithmetic trusts the disk.
		return e.red.Reconcile()
	}
	return nil
}

// engineMemLimit computes the internal-memory budget for one
// processor simulating groups of k VPs.
func engineMemLimit(cfg MachineConfig, k, mu, gamma int) int64 {
	return int64(cfg.memSlack()) * (int64(cfg.M) + int64(k)*int64(mu+6*gamma) + int64(cfg.D*cfg.B))
}

func (e *seqEngine) run() (*Result, error) {
	if e.opts.Resume {
		if err := e.resume(); err != nil {
			return nil, err
		}
	} else {
		// Reserve the context area: v·⌈µ/B⌉ blocks in standard
		// consecutive format, VP j's i-th context block at global block
		// index i + j·(µ/B), as the paper's Step 1(a)/1(e) details
		// prescribe. Under the checkpoint discipline a second area
		// double-buffers the contexts so the barrier state survives a
		// mid-superstep rollback or crash.
		sp := e.tr.Begin(obs.CatEngine, phSetup, 0, 0)
		e.ctxAreas[0] = disk.Reserve(e.dsk, e.v*e.muBlocks)
		if e.ckpt() {
			e.ctxAreas[1] = disk.Reserve(e.dsk, e.v*e.muBlocks)
		}

		e.noteLive(0)
		err := e.replayPhase(e.writeInitialContexts)
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := e.redBarrier(); err != nil {
			return nil, err
		}
		e.setup = e.dsk.Stats()
		e.dsk.ResetStats()
		if err := e.commitJournal(-1); err != nil {
			return nil, err
		}
	}

	for step := e.stepsDone; !e.halted; step++ {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		if step >= e.opts.MaxSupersteps {
			return nil, fmt.Errorf("core: no convergence after %d supersteps", e.opts.MaxSupersteps)
		}
		halts, sends, err := e.runStep(step)
		if err != nil {
			return nil, err
		}
		switch {
		case halts == e.v:
			if sends > 0 {
				return nil, fmt.Errorf("core: %d messages sent while halting in superstep %d", sends, step)
			}
			e.halted = true
		case halts != 0:
			return nil, fmt.Errorf("core: split halt vote in superstep %d: %d of %d VPs halted", step, halts, e.v)
		}
		if err := e.redBarrier(); err != nil {
			return nil, err
		}
		e.stepsDone = step + 1
		if err := e.commitJournal(step); err != nil {
			return nil, err
		}
	}
	runStats := e.dsk.Stats()

	var vps []bsp.VP
	spFin := e.tr.Begin(obs.CatEngine, phFinish, 0, 0)
	err := e.replayPhase(func() error {
		var err error
		vps, err = e.readFinalContexts()
		return err
	})
	spFin.End()
	if err != nil {
		return nil, err
	}
	finish := e.dsk.Stats()
	finish.Ops -= runStats.Ops
	finish.ReadOps -= runStats.ReadOps
	finish.WriteOps -= runStats.WriteOps
	finish.BlocksRead -= runStats.BlocksRead
	finish.BlocksWritten -= runStats.BlocksWritten
	finish.PerDrive = nil

	res := &Result{VPs: vps, Costs: e.rec.Costs()}
	res.EM = EMStats{
		K:                  e.k,
		Groups:             e.groups,
		CtxBlocksPerVP:     e.muBlocks,
		Setup:              e.setup,
		Run:                runStats,
		Finish:             finish,
		PerProc:            []disk.Stats{runStats},
		IOTime:             e.cfg.G * float64(runStats.Ops),
		RouteOps:           e.routeOps,
		RaggedSlots:        e.ragged,
		MaxBucketSkew:      e.maxSkew,
		MemHigh:            e.acct.High(),
		LiveBlocksPerDrive: e.peakLive,
	}
	if e.fd != nil {
		c := e.fd.Counters()
		res.EM.FaultsInjected = c.Injected()
		res.EM.ChecksumFailures = c.ChecksumFailures
		res.EM.DriveFailures = c.DriveFailures
		res.EM.Retries = c.Retries
		res.EM.RetriedBlocks = c.RetriedBlocks
		res.EM.MirrorOps = c.MirrorOps
		res.EM.Replays = e.replays
		res.EM.RecoveryOps = c.RecoveryOps + e.recoveryOps
		c.Publish(e.opts.Metrics)
	}
	if e.red != nil {
		c := e.red.Counters()
		addRedStats(&res.EM, c)
		c.Publish(e.opts.Metrics)
	}
	if e.bfile != nil {
		// Accumulate (not assign): the same semantics as the parallel
		// engine's per-processor fold, so any overlap already present —
		// or added by future multi-store configurations — is never lost.
		ov := e.bfile.Overlap()
		res.EM.Overlap.Add(ov)
		ov.Publish(e.opts.Metrics)
		publishMappedWords(e.opts.Metrics, e.bfile)
		res.EM.StoreBackend = e.backend
		res.EM.Tiers = collectTierStats(e.bfile)
		publishTierStats(e.opts.Metrics, res.EM.Tiers)
	}
	publishEMStats(e.opts.Metrics, &res.EM)
	return res, nil
}

// addRedStats folds one parity layer's counters into the run's EMStats
// (called once per processor).
func addRedStats(em *EMStats, c redundancy.Counters) {
	em.ChecksumFailures += c.ChecksumFailures
	em.ParityOps += c.ParityOps
	em.ParityBlocks += c.ParityBlocks
	em.StripedBlocks += c.StripedBlocks
	em.DegradedOps += c.DegradedOps
	em.ReconstructedBlocks += c.ReconstructedBlocks
	em.RepairedBlocks += c.RepairedBlocks
	em.ScrubbedBlocks += c.ScrubbedBlocks
	em.ScrubRepairs += c.ScrubRepairs
	em.RebuiltBlocks += c.RebuiltBlocks
}

// seqSnapshot is the superstep checkpoint manifest: everything needed
// to roll the engine back to the last compound-superstep barrier.
type seqSnapshot struct {
	fd       *fault.Snapshot
	red      *redundancy.Snapshot
	rng      [4]uint64
	recMark  int
	acctMark int64
	opsMark  int64
	routeOps int64
	ragged   int64
	maxSkew  float64
	peakLive int64
}

func (e *seqEngine) snapshot() seqSnapshot {
	s := seqSnapshot{
		fd:       e.fd.Snapshot(),
		rng:      e.rng.State(),
		recMark:  e.rec.Mark(),
		acctMark: e.acct.Mark(),
		opsMark:  e.dsk.Stats().Ops,
		routeOps: e.routeOps,
		ragged:   e.ragged,
		maxSkew:  e.maxSkew,
		peakLive: e.peakLive,
	}
	if e.red != nil {
		s.red = e.red.Snapshot()
	}
	return s
}

func (e *seqEngine) restore(s seqSnapshot) {
	e.fd.Restore(s.fd) // rolls the shared allocator back first
	if e.red != nil {
		e.red.Restore(s.red)
	}
	e.rng.SetState(s.rng)
	e.rec.Rewind(s.recMark)
	e.acct.Rewind(s.acctMark)
	// The rolled-back attempt's charged operations were real work the
	// model paid for recovery.
	e.recoveryOps += e.dsk.Stats().Ops - s.opsMark
	e.routeOps = s.routeOps
	e.ragged = s.ragged
	e.maxSkew = s.maxSkew
	e.peakLive = s.peakLive
}

// replayPhase runs an idempotent whole-area phase (initial context
// distribution, final context collection), re-running it when a
// recoverable fault escapes the fault layer's own retries. The phases
// neither allocate tracks nor leave partial state, so re-running is
// the complete rollback.
func (e *seqEngine) replayPhase(phase func() error) error {
	err := phase()
	r := 0
	for ; err != nil && e.fd != nil && fault.Replayable(err) && r < maxReplays; r++ {
		e.replays++
		err = phase()
	}
	if err != nil && r >= maxReplays {
		return fmt.Errorf("core: phase unrecoverable after %d replays: %w", r, err)
	}
	return err
}

// runStep runs one compound superstep (plus its routing phase). In
// fault mode every recoverable fault that escaped the fault layer's
// own retries rolls the engine back to the barrier and replays.
func (e *seqEngine) runStep(step int) (halts, sends int, err error) {
	if e.fd == nil {
		return e.stepOnce(step)
	}
	for attempt := 0; ; attempt++ {
		snap := e.snapshot()
		halts, sends, err = e.stepOnce(step)
		if err == nil {
			return halts, sends, nil
		}
		if !fault.Replayable(err) {
			return 0, 0, err
		}
		if attempt >= maxReplays {
			return 0, 0, fmt.Errorf("core: superstep %d unrecoverable after %d replays: %w", step, attempt, err)
		}
		e.restore(snap)
		e.replays++
	}
}

// stepOnce runs one attempt of superstep step: the compound superstep,
// then (when the program continues) the routing reorganization, then
// the barrier commit.
func (e *seqEngine) stepOnce(step int) (halts, sends int, err error) {
	halts, sends, dir, err := e.compoundSuperstep(step)
	if err != nil {
		return 0, 0, err
	}
	if e.opts.NoRouting {
		// Ablation: leave the blocks where the writing phase put
		// them; the next fetch reads them scattered.
		if halts == 0 {
			e.noteLive(dir.total)
			e.inDir = dir
			// Observe the balance the fetch will pay for (Lemma 2).
			for g := 0; g < e.groups; g++ {
				R, maxPer := 0, 0
				for d := 0; d < e.cfg.D; d++ {
					n := len(dir.q[g][d])
					R += n
					if n > maxPer {
						maxPer = n
					}
				}
				if R > 0 {
					if skew := float64(maxPer) * float64(e.cfg.D) / float64(R); skew > e.maxSkew {
						e.maxSkew = skew
					}
				}
			}
		}
		return halts, sends, nil
	}
	if halts != 0 {
		// Unanimous halt (or a split vote the caller will reject):
		// nothing left to route; commit the final contexts.
		e.commitCtx()
		return halts, sends, nil
	}
	// In normal operation the consumed input areas are freed before
	// routing (they are dead weight); under the checkpoint discipline
	// they are the replay/resume source, so their release waits for the
	// barrier commit below.
	if !e.ckpt() {
		for _, ar := range e.inAreas {
			if err := disk.FreeArea(e.dsk, ar); err != nil {
				return 0, 0, err
			}
		}
	}
	e.noteLive(e.inBlocks + dir.total)
	spRoute := e.tr.BeginStep(obs.CatEngine, phRoute, 0, 0, step, -1)
	route, err := simulateRouting(e.dsk, e.acct, dir, func(m blockMeta) int { return groupOf(m.dst, e.k) }, e.groups)
	spRoute.End()
	if err != nil {
		return 0, 0, err
	}
	// Barrier commit: from here on the superstep is durable.
	if e.ckpt() {
		for _, ar := range e.inAreas {
			if err := disk.FreeArea(e.dsk, ar); err != nil {
				return 0, 0, err
			}
		}
	}
	e.routeOps += route.stats.ops
	e.ragged += route.stats.ragged
	if route.stats.maxSkew > e.maxSkew {
		e.maxSkew = route.stats.maxSkew
	}
	e.inRegions, e.inAreas, e.inBlocks = route.regions, route.areas, route.total
	e.noteLive(route.total)
	e.commitCtx()
	return halts, sends, nil
}

// commitCtx makes the contexts written by the superstep the committed
// generation (under the checkpoint discipline, by flipping the double
// buffer).
func (e *seqEngine) commitCtx() {
	if e.ckpt() {
		e.ctxCur ^= 1
	}
}

// ctxRead returns the area holding the committed contexts; ctxWrite
// the area the running superstep writes to. They coincide unless
// checkpoint double-buffering is on.
func (e *seqEngine) ctxRead() disk.Area { return e.ctxAreas[e.ctxCur] }
func (e *seqEngine) ctxWrite() disk.Area {
	if e.ckpt() {
		return e.ctxAreas[e.ctxCur^1]
	}
	return e.ctxAreas[e.ctxCur]
}

// writeInitialContexts marshals every VP's initial state to the
// context area, one group at a time (the input-distribution phase).
func (e *seqEngine) writeInitialContexts() error {
	bufWords := e.k * e.muBlocks * e.cfg.B
	if err := e.acct.Grab(int64(bufWords)); err != nil {
		return err
	}
	defer e.acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)
	enc := words.NewEncoder(nil)
	for g := 0; g < e.groups; g++ {
		lo, hi := e.groupBounds(g)
		clear(buf[:(hi-lo)*e.muBlocks*e.cfg.B])
		for id := lo; id < hi; id++ {
			enc.Reset()
			e.p.NewVP(id).Save(enc)
			if enc.Len() > e.mu {
				return fmt.Errorf("core: VP %d initial context is %d words, exceeding µ=%d", id, enc.Len(), e.mu)
			}
			copy(buf[(id-lo)*e.muBlocks*e.cfg.B:], enc.Words())
		}
		if err := disk.WriteRange(e.dsk, e.ctxRead(), lo*e.muBlocks, hi*e.muBlocks, buf[:(hi-lo)*e.muBlocks*e.cfg.B]); err != nil {
			return err
		}
	}
	return nil
}

// readFinalContexts loads every VP from disk after the program halted.
func (e *seqEngine) readFinalContexts() ([]bsp.VP, error) {
	vps := make([]bsp.VP, e.v)
	bufWords := e.k * e.muBlocks * e.cfg.B
	if err := e.acct.Grab(int64(bufWords)); err != nil {
		return nil, err
	}
	defer e.acct.Release(int64(bufWords))
	buf := make([]uint64, bufWords)
	for g := 0; g < e.groups; g++ {
		lo, hi := e.groupBounds(g)
		if err := disk.ReadRange(e.dsk, e.ctxRead(), lo*e.muBlocks, hi*e.muBlocks, buf[:(hi-lo)*e.muBlocks*e.cfg.B]); err != nil {
			return nil, err
		}
		for id := lo; id < hi; id++ {
			vp := e.p.NewVP(id)
			vp.Load(words.NewDecoder(buf[(id-lo)*e.muBlocks*e.cfg.B : (id-lo+1)*e.muBlocks*e.cfg.B]))
			vps[id] = vp
		}
	}
	return vps, nil
}

// compoundSuperstep simulates one compound superstep (Algorithm 1,
// Step 1): for each group, fetch contexts and messages, run the
// computation phase, and write generated blocks and changed contexts.
// It returns the number of halt votes, the number of messages sent,
// and the output directory for SimulateRouting.
//
// On error the cost recorder's current step stays open and buffers
// grabbed by the aborted attempt stay held; either the run aborts, or
// fault-mode restore rewinds both to the barrier.
func (e *seqEngine) compoundSuperstep(step int) (halts, sends int, dir *outDirectory, err error) {
	nbuckets := e.cfg.D
	bucketKey := func(m blockMeta) int { return bucketOf(m.dst, e.v, e.cfg.D) }
	if e.opts.NoRouting {
		nbuckets = e.groups
		bucketKey = func(m blockMeta) int { return groupOf(m.dst, e.k) }
	}
	dir = newOutDirectory(nbuckets, e.cfg.D)
	e.rec.BeginStep()

	ctxWords := e.k * e.muBlocks * e.cfg.B
	if err := e.acct.Grab(int64(ctxWords)); err != nil {
		return 0, 0, nil, err
	}
	defer e.acct.Release(int64(ctxWords))
	ctxBuf := make([]uint64, ctxWords)

	// Scratch for one pending parallel write (D block images).
	flushWords := e.cfg.D * e.cfg.B
	if err := e.acct.Grab(int64(flushWords)); err != nil {
		return 0, 0, nil, err
	}
	defer e.acct.Release(int64(flushWords))
	var down func(int) bool
	if e.fd != nil {
		down = e.fd.Down
	}
	writer := newBlockWriter(e.dsk, dir, bucketKey, e.rng, e.opts.Deterministic, down, make([]uint64, flushWords))

	enc := words.NewEncoder(nil)
	scratch := make([]uint64, e.cfg.B)
	for g := 0; g < e.groups; g++ {
		lo, hi := e.groupBounds(g)
		n := hi - lo

		// Fetching phase: contexts (Step 1(a)).
		spFetch := e.tr.BeginStep(obs.CatEngine, phFetchCtx, 0, 0, step, g)
		if err := disk.ReadRange(e.dsk, e.ctxRead(), lo*e.muBlocks, hi*e.muBlocks, ctxBuf[:n*e.muBlocks*e.cfg.B]); err != nil {
			return 0, 0, nil, err
		}
		vps := make([]bsp.VP, n)
		for i := 0; i < n; i++ {
			vps[i] = e.p.NewVP(lo + i)
			vps[i].Load(words.NewDecoder(ctxBuf[i*e.muBlocks*e.cfg.B : (i+1)*e.muBlocks*e.cfg.B]))
		}
		spFetch.End()

		// Fetching phase: incoming messages (Step 1(b)).
		spMsg := e.tr.BeginStep(obs.CatEngine, phFetchMsg, 0, 0, step, g)
		var buf []uint64
		var metas []blockMeta
		var grabbed int64
		var err error
		if e.opts.NoRouting {
			if e.inDir != nil {
				buf, metas, grabbed, err = readScattered(e.dsk, e.acct, e.inDir.q[g])
			}
		} else {
			var regions []groupRegion
			if g < len(e.inRegions) {
				regions = e.inRegions[g]
			}
			buf, metas, grabbed, err = readRegions(e.dsk, e.acct, regions)
		}
		if err != nil {
			return 0, 0, nil, err
		}
		var inbox [][]bsp.Message
		if metas == nil {
			inbox = make([][]bsp.Message, n)
		} else {
			inbox, err = reassemble(buf, metas, e.cfg.B, lo, hi)
			if err != nil {
				return 0, 0, nil, err
			}
		}
		spMsg.End()

		// Computation phase (Step 1(c)) — collect generated messages
		// in internal memory, as the paper prescribes. The span covers
		// the pipeline's prefetch hint too: it is part of what overlaps
		// with this group's computation.
		spComp := e.tr.BeginStep(obs.CatEngine, phCompute, 0, 0, step, g)

		// Group pipeline: stage group g+1's context and message blocks
		// into the store's physical cache while group g computes (the
		// write-behind of group g-1 drains concurrently). Purely
		// physical — no accounting happens here (see pipeline.go).
		if e.pf != nil && g+1 < e.groups {
			e.pf.Prefetch(e.prefetchAddrs(g + 1))
		}
		var outs []outMsg
		var outWords int64
		for i := 0; i < n; i++ {
			id := lo + i
			recvWords, recvPkts := 0, 0
			for _, m := range inbox[i] {
				w := len(m.Payload) + 1
				recvWords += w
				recvPkts += e.rec.MsgPkts(w)
			}
			if recvWords > e.gamma {
				return 0, 0, nil, fmt.Errorf("core: VP %d received %d words in superstep %d, exceeding γ=%d", id, recvWords, step, e.gamma)
			}
			seq := 0
			sendPkts := 0
			env := bsp.NewEnv(id, e.v, step, e.opts.Seed, func(dst int, payload []uint64) {
				outs = append(outs, outMsg{dst: dst, src: id, seq: seq, payload: payload})
				seq++
				sendPkts += e.rec.MsgPkts(len(payload) + 1)
				outWords += int64(len(payload) + 1)
			})
			halt, err := bsp.SafeStep(vps[i], env, inbox[i])
			if err != nil {
				return 0, 0, nil, fmt.Errorf("core: VP %d superstep %d: %w", id, step, err)
			}
			sw, msgs, charge := env.SendTotals()
			if sw > e.gamma {
				return 0, 0, nil, fmt.Errorf("core: VP %d sent %d words in superstep %d, exceeding γ=%d", id, sw, step, e.gamma)
			}
			if halt {
				halts++
			}
			sends += msgs
			e.rec.RecordVP(bsp.VPTraffic{
				SendWords: sw,
				RecvWords: recvWords,
				SendPkts:  sendPkts,
				RecvPkts:  recvPkts,
				Messages:  msgs,
				Charge:    charge,
			})
		}
		if err := e.acct.Grab(outWords); err != nil {
			return 0, 0, nil, err
		}
		spComp.End()

		// Writing phase: generated messages (Step 1(d)).
		spWrite := e.tr.BeginStep(obs.CatEngine, phWriteMsg, 0, 0, step, g)
		for _, m := range outs {
			if err := cutMessage(m, e.cfg.B, scratch, writer.add); err != nil {
				return 0, 0, nil, err
			}
		}
		if err := writer.flush(); err != nil {
			return 0, 0, nil, err
		}
		e.acct.Release(outWords)
		if grabbed > 0 {
			e.acct.Release(grabbed)
		}
		spWrite.End()

		// Writing phase: changed contexts (Step 1(e)).
		spCtx := e.tr.BeginStep(obs.CatEngine, phWriteCtx, 0, 0, step, g)
		clear(ctxBuf[:n*e.muBlocks*e.cfg.B])
		for i := 0; i < n; i++ {
			enc.Reset()
			vps[i].Save(enc)
			if enc.Len() > e.mu {
				return 0, 0, nil, fmt.Errorf("core: VP %d context is %d words after superstep %d, exceeding µ=%d", lo+i, enc.Len(), step, e.mu)
			}
			copy(ctxBuf[i*e.muBlocks*e.cfg.B:], enc.Words())
		}
		if err := disk.WriteRange(e.dsk, e.ctxWrite(), lo*e.muBlocks, hi*e.muBlocks, ctxBuf[:n*e.muBlocks*e.cfg.B]); err != nil {
			return 0, 0, nil, err
		}
		spCtx.End()
	}
	e.rec.EndStep()
	return halts, sends, dir, nil
}
