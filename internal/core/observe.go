package core

import (
	"fmt"

	"embsp/internal/disk"
	"embsp/internal/obs"
)

// Engine trace-phase names. Engine-category spans are emitted so that
// they tile each processor's timeline exclusively — no two engine
// spans of one processor overlap — which is what makes the per-phase
// report's shares of wall clock meaningful. The file store's physical
// transfers (obs.CatIO) run concurrently underneath them.
const (
	phSetup    = "setup"        // reserve + write initial contexts
	phFinish   = "finish"       // read back final contexts
	phFetchCtx = "fetch-ctx"    // read a group's context blocks
	phFetchMsg = "fetch-msg"    // read + reassemble a group's messages
	phCompute  = "compute"      // simulate the group's virtual processors
	phScatter  = "scatter"      // cut messages into blocks (par engine CPU phase)
	phWriteMsg = "write-msg"    // write generated message blocks
	phWriteCtx = "write-ctx"    // write back a group's contexts
	phRoute    = "route"        // SimulateRouting / local delivery
	phParity   = "parity-flush" // redundancy.FlushParity at the barrier
	phRebuild  = "rebuild"      // online rebuild slice at the barrier
	phScrub    = "scrub"        // background scrub slice at the barrier
	phBarrier  = "barrier-sync" // store.Sync before the journal append
	// The journal itself emits "journal-append" (see journal.SetTracer).
)

// publishEMStats exposes the run's final model aggregates as named
// metrics (Set: these are end-of-run totals, not increments). The
// fault, redundancy and overlap counters are published by their own
// layers' Publish methods; this covers the EM-simulation quantities.
func publishEMStats(r *obs.Registry, em *EMStats) {
	if r == nil {
		return
	}
	set := func(name string, v int64) { r.Counter(name).Set(v) }
	set("em_group_size_k", int64(em.K))
	set("em_groups", int64(em.Groups))
	set("em_setup_ops", em.Setup.Ops)
	set("em_run_ops", em.Run.Ops)
	set("em_run_read_ops", em.Run.ReadOps)
	set("em_run_write_ops", em.Run.WriteOps)
	set("em_run_blocks_read", em.Run.BlocksRead)
	set("em_run_blocks_written", em.Run.BlocksWritten)
	set("em_finish_ops", em.Finish.Ops)
	set("em_route_ops", em.RouteOps)
	set("em_ragged_slots", em.RaggedSlots)
	set("em_mem_high_words", em.MemHigh)
	set("em_live_blocks_per_drive", em.LiveBlocksPerDrive)
	set("em_comm_words", em.CommWords)
	set("em_comm_pkts", em.CommPkts)
	set("em_replays", em.Replays)
}

// publishTierStats exposes the tier chain's cache-traffic totals as
// per-level metrics (tier0 is the outermost tier).
func publishTierStats(r *obs.Registry, tiers []disk.TierStats) {
	if r == nil {
		return
	}
	for _, ts := range tiers {
		p := fmt.Sprintf("store_tier%d_", ts.Level)
		r.Counter(p + "cap_words").Set(ts.CapWords)
		r.Counter(p + "hits").Set(ts.Hits)
		r.Counter(p + "misses").Set(ts.Misses)
		r.Counter(p + "fills").Set(ts.Fills)
		r.Counter(p + "drains").Set(ts.Drains)
		r.Counter(p + "high_words").Max(ts.HighWords)
	}
}
