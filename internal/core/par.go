package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
	"embsp/internal/redundancy"
	"embsp/internal/words"
)

// The parallel engine implements Algorithm 3 (ParCompoundSuperstep):
// a v-processor BSP* program on a p-processor EM-BSP* machine.
//
// Virtual processors are assigned in blocks: real processor i owns
// VPs [i·⌈v/p⌉, (i+1)·⌈v/p⌉). A compound superstep runs in
// ⌈(v/p)/k⌉ rounds; in round j, batch j — the j-th group of k VPs of
// every real processor, kp VPs in total — is simulated.
//
//   - Fetching phase: each processor reads the blocks pertaining to
//     batch j from its local disks, combines the blocks destined for a
//     common simulating processor into packets, and routes them in one
//     real communication superstep.
//   - Computing phase: each processor simulates its k current VPs.
//   - Writing phase: generated messages are split into packets of
//     size b, each packet is sent to a RANDOMLY chosen processor (the
//     paper's disk-load balancing step), and every receiver cuts its
//     packets into blocks and writes them to its local disks under a
//     random drive permutation, maintaining D buckets keyed by
//     destination batch.
//
// At the end of the superstep each processor reorganizes its received
// blocks with the local SimulateRouting (Algorithm 2), so that the
// next superstep's fetch phase reads every batch fully blocked and
// D-parallel.
//
// Real processors run as goroutines separated by phase barriers. All
// communication cells are owned by a single writer per phase and all
// deliveries are sorted canonically, so results are bitwise
// deterministic and identical to the in-memory reference runner.
//
// The per-processor phase bodies live on simShape (node.go); this file
// is the in-process driver that exchanges blocks through in-memory
// matrices. The cluster runtime (cluster.go, internal/cluster) drives
// the identical phases over the wire.
//
// With a fault plan configured, each processor's disk array is wrapped
// in its own fault layer (fault schedules keyed per processor); the
// whole compound superstep is one recovery unit: a recoverable fault
// on any processor rolls all of them back to the barrier and replays
// the superstep. Contexts are double-buffered and input-area frees
// deferred to the barrier commit, exactly as in the sequential engine,
// and after a permanent drive loss the block writer remaps its packet
// scatter onto the surviving drives.

// wireBlock is a message block in flight between real processors.
type wireBlock struct {
	meta blockMeta
	img  []uint64
}

type procState struct {
	id int
	lo int // first owned VP
	hi int // one past last owned VP

	store   disk.Store        // outermost store: raw array/file/mapped, or the parity layer over it
	bfile   fileStore         // the durable store chain (tiers over file/mapped), nil for in-memory runs
	backend string            // name of the durable backend actually opened ("" in-memory)
	pf      disk.Prefetcher   // group-pipeline prefetch target, nil when off
	red     *redundancy.Store // nil unless Redundancy is parity
	fd      *fault.Disk       // nil without a fault plan
	dsk     disk.Disk         // store, or fd wrapping it
	ckptOn  bool              // barrier checkpoint discipline active
	acct    *mem.Accountant
	rng     *prng.Rand

	ctxAreas  [2]disk.Area // checkpoint mode double-buffers; [1] unused otherwise
	ctxCur    int
	inRegions [][]groupRegion // per batch
	inAreas   []disk.Area
	inBlocks  int

	// Superstep-scoped scratch.
	halts        int
	sends        int
	dir          *outDirectory
	writer       *blockWriter
	scratch      []uint64
	pendingRoute *routeResult // fault mode: routing result awaiting commit

	// Accounting.
	opsMark  int64
	routeOps int64
	ragged   int64
	maxSkew  float64
	peakLive int64
}

func (ps *procState) ownCount() int { return ps.hi - ps.lo }

func (ps *procState) noteLive(muBlocks, extraBlocks int) {
	live := int64(ps.ownCount()*muBlocks + extraBlocks)
	per := live / int64(ps.dsk.Config().D)
	if per > ps.peakLive {
		ps.peakLive = per
	}
}

// ctxRead returns the area holding the committed contexts; ctxWrite
// the area the running superstep writes to. They coincide unless
// checkpoint double-buffering is on.
func (ps *procState) ctxRead() disk.Area { return ps.ctxAreas[ps.ctxCur] }
func (ps *procState) ctxWrite() disk.Area {
	if ps.ckptOn {
		return ps.ctxAreas[ps.ctxCur^1]
	}
	return ps.ctxAreas[ps.ctxCur]
}

type parEngine struct {
	simShape

	procs []*procState

	jrn   *journal.Journal // nil without a StateDir
	goctx context.Context
	fpr   uint64 // config fingerprint stamped into every manifest

	setup     disk.Stats // setup-phase statistics (journaled for resume)
	stepsDone int        // supersteps committed so far
	halted    bool       // all VPs voted halt (committed)

	recMu sync.Mutex

	// Exchange matrices, reallocated each phase; cell [src][dst] is
	// written only by src's goroutine and read only after the barrier.
	fetchX   [][][]wireBlock
	scatterX [][][]wireBlock
	pktX     [][]int64 // packets per channel this superstep
	wordX    [][]int64 // words per channel this superstep

	commTime  float64
	commPkts  int64
	commWords int64
	ioTime    float64

	replays     int64
	recoveryOps int64 // I/O ops consumed by rolled-back attempts
}

// faulty reports whether the engine runs under a fault plan.
func (e *parEngine) faulty() bool { return e.procs[0].fd != nil }

// ckpt reports whether the barrier checkpoint discipline is active:
// under a fault plan (replays need a rollback source) or a StateDir
// (the journal needs the committed barrier state kept intact).
func (e *parEngine) ckpt() bool { return e.faulty() || e.jrn != nil }

func runPar(ctx context.Context, p bsp.Program, cfg MachineConfig, opts Options) (*Result, error) {
	opts.defaults()
	e := &parEngine{
		simShape: newSimShape(p, cfg, opts),
		goctx:    ctx,
	}
	e.fpr = configFingerprint(manifestParKind, cfg, opts, e.v, e.mu, e.gamma)
	e.procs = make([]*procState, cfg.P)
	for i := range e.procs {
		var dir string
		if opts.StateDir != "" {
			// Each real processor's drives live in their own
			// subdirectory; the journal is shared and lives at the root.
			dir = procDir(opts.StateDir, i)
		}
		ps, err := e.newProcState(i, dir, opts.Resume)
		if err != nil {
			e.closeState()
			return nil, err
		}
		mode := opts.effectiveRedundancy()
		if mode == redundancy.Parity {
			red, rerr := redundancy.Wrap(ps.store)
			if rerr != nil {
				e.procs[i] = ps
				e.closeState()
				return nil, rerr
			}
			ps.red = red
			ps.store = red
		}
		ps.dsk = ps.store
		// Each processor's disk array gets its own fault layer with an
		// independently keyed schedule; the planned drive death strikes
		// only processor FailProc. Redundancy mode is explicit: mirror
		// copies exactly when the run asked for mirror redundancy.
		var plan fault.Plan
		if opts.FaultPlan != nil {
			plan = *opts.FaultPlan
			plan.Seed = prng.Derive(plan.Seed, 0xFA17, uint64(i))
			if plan.FailProc != i {
				plan.FailDriveOp = 0
			}
		}
		plan.Mirror = mode == redundancy.Mirror
		// The wrap decision must be uniform across processors — the
		// engine treats fd as all-or-nothing — so it depends on the
		// original plan, not the per-processor pruned copy.
		if (opts.FaultPlan != nil && opts.FaultPlan.Enabled()) || plan.Mirror {
			fd, err := fault.Wrap(ps.store, plan, opts.MaxRetries)
			if err != nil {
				e.procs[i] = ps
				e.closeState()
				return nil, err
			}
			ps.fd = fd
			ps.dsk = fd
		}
		e.procs[i] = ps
	}
	if opts.StateDir != "" {
		var err error
		if opts.Resume {
			e.jrn, err = journal.Open(opts.StateDir)
		} else {
			e.jrn, err = journal.Create(opts.StateDir)
		}
		if err != nil {
			e.closeState()
			return nil, err
		}
		// The shared journal's append spans are attributed to a
		// synthetic coordinator lane, one past the last processor.
		e.jrn.SetTracer(e.tr, cfg.P)
	}
	for _, ps := range e.procs {
		ps.ckptOn = e.ckpt()
	}
	res, err := e.run()
	if cerr := e.closeState(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (e *parEngine) closeState() error {
	var errs []error
	if e.jrn != nil {
		errs = append(errs, e.jrn.Close())
	}
	for _, ps := range e.procs {
		if ps != nil && ps.store != nil {
			errs = append(errs, ps.store.Close())
		}
	}
	return errors.Join(errs...)
}

// checkCtx implements cooperative cancellation at barriers.
func (e *parEngine) checkCtx() error {
	if err := e.goctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled at superstep barrier %d: %w", e.stepsDone, err)
	}
	return nil
}

// commitJournal makes the barrier durable: every processor's data
// first (fsync), then the commit record (write-ahead journal append).
func (e *parEngine) commitJournal(step int) error {
	if e.jrn == nil {
		return nil
	}
	for _, ps := range e.procs {
		sp := e.tr.BeginStep(obs.CatEngine, phBarrier, ps.id, 0, step, -1)
		err := ps.store.Sync()
		sp.End()
		if err != nil {
			return err
		}
	}
	enc := words.NewEncoder(nil)
	e.encodeManifest(enc)
	if err := e.jrn.Append(enc.Words()); err != nil {
		return err
	}
	// Align trace durability with journal durability: a killed run's
	// trace then reaches the same barrier its resume starts from.
	e.tr.Flush() //nolint:errcheck
	if e.opts.OnCommit != nil {
		e.opts.OnCommit(step)
	}
	return nil
}

// resume restores the engine from the last committed journal record.
func (e *parEngine) resume() error {
	recs := e.jrn.Records()
	if len(recs) == 0 {
		return &journal.Error{Path: e.opts.StateDir, Record: -1,
			Reason: "no committed checkpoint to resume from (the run crashed before its first barrier; start it fresh)"}
	}
	if err := e.decodeManifest(recs[len(recs)-1]); err != nil {
		return err
	}
	// The crashed attempt may have left in-place rewrites (or torn
	// writes) the manifest's parity does not encode; repair or adopt
	// them before the replay's parity arithmetic trusts the disk.
	for _, ps := range e.procs {
		if ps.red != nil {
			if err := ps.red.Reconcile(); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// parallel runs f once per real processor, concurrently, and joins
// errors.
func (e *parEngine) parallel(f func(ps *procState) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(e.procs))
	for i := range e.procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(e.procs[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// replayPhase runs an idempotent whole-area phase across all
// processors, re-running it when a recoverable fault escapes the fault
// layer's retries (the phases neither allocate tracks nor leave
// partial state).
func (e *parEngine) replayPhase(phase func(ps *procState) error) error {
	err := e.parallel(phase)
	r := 0
	for ; err != nil && e.faulty() && fault.Replayable(err) && r < maxReplays; r++ {
		e.replays++
		err = e.parallel(phase)
	}
	if err != nil && r >= maxReplays {
		return fmt.Errorf("core: phase unrecoverable after %d replays: %w", r, err)
	}
	return err
}

func (e *parEngine) run() (*Result, error) {
	if e.opts.Resume {
		if err := e.resume(); err != nil {
			return nil, err
		}
	} else {
		// Setup: every processor reserves its context area(s) and writes
		// its VPs' initial contexts.
		for _, ps := range e.procs {
			e.setupReserve(ps)
		}
		if err := e.replayPhase(func(ps *procState) error {
			sp := e.tr.Begin(obs.CatEngine, phSetup, ps.id, 0)
			defer sp.End()
			return e.writeInitialContexts(ps)
		}); err != nil {
			return nil, err
		}
		if err := e.redBarrier(); err != nil {
			return nil, err
		}
		for _, ps := range e.procs {
			e.setup.Add(ps.dsk.Stats())
			ps.dsk.ResetStats()
		}
		if err := e.commitJournal(-1); err != nil {
			return nil, err
		}
	}

	for step := e.stepsDone; !e.halted; step++ {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		if step >= e.opts.MaxSupersteps {
			return nil, fmt.Errorf("core: no convergence after %d supersteps", e.opts.MaxSupersteps)
		}
		halts, sends, err := e.runStep(step)
		if err != nil {
			return nil, err
		}
		switch {
		case halts == e.v:
			if sends > 0 {
				return nil, fmt.Errorf("core: %d messages sent while halting in superstep %d", sends, step)
			}
			e.halted = true
		case halts != 0:
			return nil, fmt.Errorf("core: split halt vote in superstep %d: %d of %d VPs halted", step, halts, e.v)
		}
		if err := e.redBarrier(); err != nil {
			return nil, err
		}
		e.stepsDone = step + 1
		if err := e.commitJournal(step); err != nil {
			return nil, err
		}
	}

	var runStats disk.Stats
	perProc := make([]disk.Stats, len(e.procs))
	for i, ps := range e.procs {
		perProc[i] = ps.dsk.Stats()
		runStats.Add(perProc[i])
	}

	vps := make([]bsp.VP, e.v)
	if err := e.replayPhase(func(ps *procState) error {
		sp := e.tr.Begin(obs.CatEngine, phFinish, ps.id, 0)
		defer sp.End()
		return e.readFinalContexts(ps, func(id int, ctx []uint64) error {
			vp := e.p.NewVP(id)
			vp.Load(words.NewDecoder(ctx))
			vps[id] = vp
			return nil
		})
	}); err != nil {
		return nil, err
	}
	var finish disk.Stats
	for i, ps := range e.procs {
		s := ps.dsk.Stats()
		finish.Ops += s.Ops - perProc[i].Ops
		finish.ReadOps += s.ReadOps - perProc[i].ReadOps
		finish.BlocksRead += s.BlocksRead - perProc[i].BlocksRead
	}

	res := &Result{VPs: vps, Costs: e.rec.Costs()}
	em := EMStats{
		K:              e.k,
		Groups:         e.batches,
		CtxBlocksPerVP: e.muBlocks,
		Setup:          e.setup,
		Run:            runStats,
		Finish:         finish,
		PerProc:        perProc,
		IOTime:         e.ioTime,
		CommTime:       e.commTime,
		CommPkts:       e.commPkts,
		CommWords:      e.commWords,
	}
	for _, ps := range e.procs {
		em.RouteOps += ps.routeOps
		em.RaggedSlots += ps.ragged
		if ps.maxSkew > em.MaxBucketSkew {
			em.MaxBucketSkew = ps.maxSkew
		}
		if h := ps.acct.High(); h > em.MemHigh {
			em.MemHigh = h
		}
		if ps.peakLive > em.LiveBlocksPerDrive {
			em.LiveBlocksPerDrive = ps.peakLive
		}
	}
	if e.faulty() {
		var c fault.Counters
		for _, ps := range e.procs {
			c.Add(ps.fd.Counters())
		}
		em.FaultsInjected = c.Injected()
		em.ChecksumFailures = c.ChecksumFailures
		em.DriveFailures = c.DriveFailures
		em.Retries = c.Retries
		em.RetriedBlocks = c.RetriedBlocks
		em.MirrorOps = c.MirrorOps
		em.Replays = e.replays
		em.RecoveryOps = c.RecoveryOps + e.recoveryOps
		c.Publish(e.opts.Metrics)
	}
	for _, ps := range e.procs {
		if ps.red != nil {
			c := ps.red.Counters()
			addRedStats(&em, c)
			c.Publish(e.opts.Metrics)
		}
		if ps.bfile != nil {
			ov := ps.bfile.Overlap()
			em.Overlap.Add(ov)
			ov.Publish(e.opts.Metrics)
			publishMappedWords(e.opts.Metrics, ps.bfile)
			em.StoreBackend = ps.backend
			em.Tiers = addTierStats(em.Tiers, collectTierStats(ps.bfile))
		}
	}
	publishTierStats(e.opts.Metrics, em.Tiers)
	res.EM = em
	publishEMStats(e.opts.Metrics, &res.EM)
	return res, nil
}

// parSnapshot is the superstep checkpoint manifest across all
// processors plus the engine's shared accounting.
type parSnapshot struct {
	procs     []procSnapshot
	recMark   int
	commTime  float64
	commPkts  int64
	commWords int64
	ioTime    float64
}

type procSnapshot struct {
	fd       *fault.Snapshot
	red      *redundancy.Snapshot
	rng      [4]uint64
	acctMark int64
	opsMark  int64
	routeOps int64
	ragged   int64
	maxSkew  float64
	peakLive int64
}

func (e *parEngine) snapshot() parSnapshot {
	s := parSnapshot{
		procs:     make([]procSnapshot, len(e.procs)),
		recMark:   e.rec.Mark(),
		commTime:  e.commTime,
		commPkts:  e.commPkts,
		commWords: e.commWords,
		ioTime:    e.ioTime,
	}
	for i, ps := range e.procs {
		s.procs[i] = procSnapshot{
			fd:       ps.fd.Snapshot(),
			rng:      ps.rng.State(),
			acctMark: ps.acct.Mark(),
			opsMark:  ps.dsk.Stats().Ops,
			routeOps: ps.routeOps,
			ragged:   ps.ragged,
			maxSkew:  ps.maxSkew,
			peakLive: ps.peakLive,
		}
		if ps.red != nil {
			s.procs[i].red = ps.red.Snapshot()
		}
	}
	return s
}

func (e *parEngine) restore(s parSnapshot) {
	// The rolled-back attempt's charged operations were real work; the
	// model pays its wall-clock as the slowest processor's share.
	var maxAborted int64
	for i, ps := range e.procs {
		p := s.procs[i]
		aborted := ps.dsk.Stats().Ops - p.opsMark
		e.recoveryOps += aborted
		if aborted > maxAborted {
			maxAborted = aborted
		}
		ps.fd.Restore(p.fd) // rolls the shared allocator back first
		if ps.red != nil {
			ps.red.Restore(p.red)
		}
		ps.rng.SetState(p.rng)
		ps.acct.Rewind(p.acctMark)
		ps.routeOps = p.routeOps
		ps.ragged = p.ragged
		ps.maxSkew = p.maxSkew
		ps.peakLive = p.peakLive
		ps.pendingRoute = nil
	}
	e.rec.Rewind(s.recMark)
	e.commTime = s.commTime
	e.commPkts = s.commPkts
	e.commWords = s.commWords
	e.ioTime = s.ioTime + e.cfg.G*float64(maxAborted)
}

// runStep runs one compound superstep. In fault mode the whole
// superstep — all processors, all batches, the routing phase — is one
// recovery unit: a recoverable fault anywhere rolls every processor
// back to the barrier and replays.
func (e *parEngine) runStep(step int) (halts, sends int, err error) {
	if !e.faulty() {
		halts, sends, err = e.compoundSuperstep(step)
		if err == nil && e.ckpt() {
			err = e.commitSuperstep()
		}
		if err != nil {
			return 0, 0, err
		}
		return halts, sends, nil
	}
	for attempt := 0; ; attempt++ {
		snap := e.snapshot()
		halts, sends, err = e.compoundSuperstep(step)
		if err == nil {
			if err := e.commitSuperstep(); err != nil {
				return 0, 0, err
			}
			return halts, sends, nil
		}
		if !fault.Replayable(err) {
			return 0, 0, err
		}
		if attempt >= maxReplays {
			return 0, 0, fmt.Errorf("core: superstep %d unrecoverable after %d replays: %w", step, attempt, err)
		}
		e.restore(snap)
		e.replays++
	}
}

// redBarrier is the parity-aware commit point, run on every processor
// after the superstep committed. The extra parallel I/O is charged to
// the model at cost G as the slowest processor's share.
func (e *parEngine) redBarrier() error {
	if e.procs[0].red == nil {
		return nil
	}
	var maxOps int64
	for _, ps := range e.procs {
		d, err := e.redProc(ps)
		if err != nil {
			return err
		}
		if d > maxOps {
			maxOps = d
		}
	}
	e.ioTime += e.cfg.G * float64(maxOps)
	return nil
}

// commitSuperstep is the barrier commit in fault mode: free the
// consumed input areas, install the routing results, and flip the
// context double buffers. Single-threaded; runs only after every
// processor finished the superstep.
func (e *parEngine) commitSuperstep() error {
	for _, ps := range e.procs {
		if err := e.commitProc(ps); err != nil {
			return err
		}
	}
	return nil
}

// compoundSuperstep runs Algorithm 3 for one compound superstep. On
// error the cost recorder's current step stays open and superstep
// buffers stay grabbed; either the run aborts, or fault-mode restore
// rewinds both to the barrier.
func (e *parEngine) compoundSuperstep(step int) (halts, sends int, err error) {
	P := e.cfg.P
	e.rec.BeginStep()

	e.pktX = make([][]int64, P)
	e.wordX = make([][]int64, P)
	for i := 0; i < P; i++ {
		e.pktX[i] = make([]int64, P)
		e.wordX[i] = make([]int64, P)
	}
	for _, ps := range e.procs {
		e.beginStep(ps)
	}

	for j := 0; j < e.batches; j++ {
		// Fetching phase: read batch-j blocks and route them to the
		// simulating processors.
		e.fetchX = freshMatrix(P)
		if err := e.parallel(func(ps *procState) error {
			sp := e.tr.BeginStep(obs.CatEngine, phFetchMsg, ps.id, 0, step, j)
			defer sp.End()
			out, nwords, err := e.fetchForward(ps, j)
			if err != nil || out == nil {
				return err
			}
			e.fetchX[ps.id] = out
			for o, w := range nwords {
				if o == ps.id || w == 0 {
					continue
				}
				e.wordX[ps.id][o] += w
				e.pktX[ps.id][o] += e.fetchPkts(w)
			}
			return nil
		}); err != nil {
			return 0, 0, err
		}
		// Computing phase (and cutting generated messages into packets
		// scattered to random processors).
		e.scatterX = freshMatrix(P)
		if err := e.parallel(func(ps *procState) error {
			in := make([][]wireBlock, P)
			for src := 0; src < P; src++ {
				in[src] = e.fetchX[src][ps.id]
			}
			bo, err := e.computeBatch(ps, j, step, in)
			if err != nil {
				return err
			}
			e.scatterX[ps.id] = bo.scatter
			for t := 0; t < P; t++ {
				e.pktX[ps.id][t] += bo.pkts[t]
				e.wordX[ps.id][t] += bo.wrds[t]
			}
			e.recMu.Lock()
			for _, tr := range bo.traffic {
				e.rec.RecordVP(tr)
			}
			e.recMu.Unlock()
			return nil
		}); err != nil {
			return 0, 0, err
		}
		// Writing phase: every processor writes the packets it
		// received to its local disks, maintaining the D buckets.
		if err := e.parallel(func(ps *procState) error {
			sp := e.tr.BeginStep(obs.CatEngine, phWriteMsg, ps.id, 0, step, j)
			defer sp.End()
			in := make([][]wireBlock, P)
			for src := 0; src < P; src++ {
				in[src] = e.scatterX[src][ps.id]
			}
			return e.receiveWrite(ps, in)
		}); err != nil {
			return 0, 0, err
		}
	}
	for _, ps := range e.procs {
		halts += ps.halts
		sends += ps.sends
	}

	if halts != e.v {
		// Step 2 of Algorithm 3: reorganize the received batches with
		// the local SimulateRouting.
		if err := e.parallel(func(ps *procState) error {
			sp := e.tr.BeginStep(obs.CatEngine, phRoute, ps.id, 0, step, -1)
			defer sp.End()
			return e.routeLocal(ps)
		}); err != nil {
			return 0, 0, err
		}
	}
	e.rec.EndStep()

	// Superstep model costs: I/O time is the max over processors; real
	// communication is max(L, g·max_i(sent+received packets)).
	var maxOps int64
	for _, ps := range e.procs {
		if d := ps.dsk.Stats().Ops - ps.opsMark; d > maxOps {
			maxOps = d
		}
	}
	e.ioTime += e.cfg.G * float64(maxOps)
	ct, pkts, wrds := superstepCommCosts(e.cfg, e.pktX, e.wordX)
	e.commTime += ct
	e.commPkts += pkts
	e.commWords += wrds
	return halts, sends, nil
}

func freshMatrix(p int) [][][]wireBlock {
	m := make([][][]wireBlock, p)
	for i := range m {
		m[i] = make([][]wireBlock, p)
	}
	return m
}
