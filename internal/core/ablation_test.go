package core_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/prng"
)

// TestNoRoutingEquivalence: the ablation must still compute exactly
// the reference results — only the I/O schedule differs.
func TestNoRoutingEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		v := r.Intn(16) + 1
		p := &bsptest.RandomProgram{
			V:           v,
			Steps:       r.Intn(3) + 1,
			MsgsPerStep: r.Intn(4),
			MaxLen:      r.Intn(16),
		}
		ref, err := bsp.Run(p, bsp.RunOptions{Seed: seed, PktSize: 8})
		if err != nil {
			return false
		}
		cfg := tinyMachine(r.Intn(4)+1, 8+r.Intn(8), 0)
		cfg.M = cfg.D*cfg.B + 100
		cfg.Cost.Pkt = cfg.B
		res, err := core.Run(p, cfg, core.Options{Seed: seed, NoRouting: true})
		if err != nil {
			return false
		}
		a, b := bsptest.Checksums(ref), bsptest.Checksums(res.ToBSPResult())
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNoRoutingSkipsReorganization: the ablation performs no routing
// ops and typically fewer total ops, at somewhat lower guaranteed
// parallelism.
func TestNoRoutingSkipsReorganization(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 4, MsgsPerStep: 4, MaxLen: 12}
	cfg := tinyMachine(4, 8, 256)
	routed, err := core.Run(p, cfg, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := core.Run(p, cfg, core.Options{Seed: 5, NoRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	if ablated.EM.RouteOps != 0 {
		t.Errorf("ablation recorded %d routing ops", ablated.EM.RouteOps)
	}
	if routed.EM.RouteOps <= 0 {
		t.Errorf("routed run recorded no routing ops")
	}
	if ablated.EM.Run.Ops >= routed.EM.Run.Ops {
		t.Errorf("ablation ops %d >= routed ops %d (expected cheaper: no double move)",
			ablated.EM.Run.Ops, routed.EM.Run.Ops)
	}
}

// TestMemoryBudgetTight: the engines must run within their documented
// internal-memory footprint — M + k·(µ + 6γ) + D·B words — even at
// slack factor 1, on both the sequential and parallel engines. The
// accountant rejects any grab beyond the budget, so success here
// proves the Θ(k·µ)-style working-set claim holds with constant 1.
func TestMemoryBudgetTight(t *testing.T) {
	p := &bsptest.RandomProgram{V: 16, Steps: 3, MsgsPerStep: 6, MaxLen: 40}
	for _, procs := range []int{1, 3} {
		cfg := tinyMachine(4, 8, 256)
		cfg.P = procs
		cfg.MemSlack = 1
		res, err := core.Run(p, cfg, core.Options{Seed: 1})
		if err != nil {
			t.Fatalf("P=%d: engine exceeded its own footprint formula at slack 1: %v", procs, err)
		}
		if res.EM.MemHigh <= 0 {
			t.Errorf("P=%d: memory accounting recorded nothing", procs)
		}
	}
}

func TestNoRoutingRejectedForMultiProc(t *testing.T) {
	p := &bsptest.RingProgram{V: 4, Rounds: 1}
	cfg := parMachine(2, 1, 8, 32)
	if _, err := core.Run(p, cfg, core.Options{NoRouting: true}); err == nil {
		t.Error("NoRouting accepted with P > 1")
	}
}
