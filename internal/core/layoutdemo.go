package core

import (
	"fmt"
	"io"

	"embsp/internal/disk"
	"embsp/internal/mem"
	"embsp/internal/obs"
	"embsp/internal/prng"
)

// DemoRouting reproduces Figure 2 of the paper observably: it fills
// the writing-phase structures of one compound superstep with a
// synthetic all-to-all message pattern (every VP receives
// blocksPerVP blocks), prints the standard linked format (the
// per-drive bucket lists produced by the randomized writing phase),
// runs Algorithm 2 (SimulateRouting), and prints the resulting
// standard consecutive format, in which every group's blocks occupy
// consecutive tracks striped across all drives. tr (nil for none)
// records the demo's writing and routing phases as trace spans.
func DemoRouting(w io.Writer, tr *obs.Tracer, v, d, b, blocksPerVP, k int, seed uint64) error {
	cfg := disk.Config{D: d, B: b}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if b < headerWords+1 {
		return fmt.Errorf("core: B = %d too small for the block header", b)
	}
	if k < 1 || k > v {
		return fmt.Errorf("core: group size k = %d out of range [1, %d]", k, v)
	}
	arr := disk.MustNewArray(cfg)
	acct := mem.NewAccountant(0)
	dir := newOutDirectory(d, d)
	rng := prng.New(seed)
	writer := newBlockWriter(arr, dir,
		func(m blockMeta) int { return bucketOf(m.dst, v, d) },
		rng, false, nil, make([]uint64, d*b))

	// Writing phase: every VP sends blocksPerVP single-block messages
	// to every... one block per (src, dst) round-robin pattern.
	spWrite := tr.Begin(obs.CatEngine, phWriteMsg, 0, 0)
	img := make([]uint64, b)
	for c := 0; c < blocksPerVP; c++ {
		for dst := 0; dst < v; dst++ {
			src := (dst + c) % v
			img[0], img[1], img[2], img[3], img[4] = uint64(dst), uint64(src), uint64(c), 0, uint64(b-headerWords)
			for i := headerWords; i < b; i++ {
				img[i] = rng.Uint64()
			}
			if err := writer.add(blockMeta{dst: dst, src: src, seq: c}, img); err != nil {
				return err
			}
		}
	}
	if err := writer.flush(); err != nil {
		return err
	}
	spWrite.End()

	fmt.Fprintf(w, "Figure 2 demo: v=%d VPs, D=%d drives, B=%d words, %d blocks per VP, groups of k=%d\n\n", v, d, b, blocksPerVP, k)
	fmt.Fprintln(w, "Standard linked format after the randomized writing phase")
	fmt.Fprintln(w, "(bucket lists per drive; entry = dst VP of the block):")
	for drive := 0; drive < d; drive++ {
		fmt.Fprintf(w, "  drive %d:", drive)
		for bucket := 0; bucket < d; bucket++ {
			refs := dir.q[bucket][drive]
			if len(refs) == 0 {
				continue
			}
			fmt.Fprintf(w, "  bucket %d ->", bucket)
			for _, ref := range refs {
				fmt.Fprintf(w, " %d", ref.meta.dst)
			}
		}
		fmt.Fprintln(w)
	}

	before := arr.Stats()
	groups := (v + k - 1) / k
	spRoute := tr.Begin(obs.CatEngine, phRoute, 0, 0)
	route, err := simulateRouting(arr, acct, dir, func(m blockMeta) int { return groupOf(m.dst, k) }, groups)
	spRoute.End()
	if err != nil {
		return err
	}
	after := arr.Stats()

	fmt.Fprintln(w, "\nStandard consecutive format after SimulateRouting")
	fmt.Fprintln(w, "(per group: block slots with their physical (drive, track) addresses):")
	for g, regions := range route.regions {
		fmt.Fprintf(w, "  group %d (VPs %d..%d):", g, g*k, minDemo((g+1)*k, v)-1)
		for _, reg := range regions {
			for i := reg.lo; i < reg.hi; i++ {
				ad := reg.area.Addr(i)
				fmt.Fprintf(w, " (d%d,t%d)", ad.Disk, ad.Track)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nrouting I/O: %d parallel operations for %d blocks (utilization %.2f)\n",
		after.Ops-before.Ops, route.total, float64(after.Blocks()-before.Blocks())/float64((after.Ops-before.Ops)*int64(d)))
	fmt.Fprintf(w, "max bucket skew (Lemma 2's l): %.2f; ragged slots (paper: dummy blocks): %d\n",
		route.stats.maxSkew, route.stats.ragged)
	return nil
}

func minDemo(a, b int) int {
	if a < b {
		return a
	}
	return b
}
