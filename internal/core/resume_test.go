package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
)

// panicProgram wraps a Program so one VP panics when it starts
// computing superstep panicStep — an in-process stand-in for a crash
// mid-superstep: the journal is left at the last committed barrier
// with the failed superstep's partial writes in the state directory.
type panicProgram struct {
	bsp.Program
	panicStep int
}

func (p *panicProgram) NewVP(id int) bsp.VP {
	vp := p.Program.NewVP(id)
	if id == p.Program.NumVPs()/2 {
		return &panicVP{VP: vp, panicStep: p.panicStep}
	}
	return vp
}

type panicVP struct {
	bsp.VP
	panicStep int
}

func (v *panicVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	if env.Superstep() == v.panicStep {
		panic(fmt.Sprintf("injected crash in superstep %d", v.panicStep))
	}
	return v.VP.Step(env, in)
}

func testProgram() *bsptest.RandomProgram {
	return &bsptest.RandomProgram{V: 16, Steps: 5, MsgsPerStep: 4, MaxLen: 12}
}

func resultsIdentical(t *testing.T, a, b *core.Result, label string) {
	t.Helper()
	ca, cb := bsptest.Checksums(a.ToBSPResult()), bsptest.Checksums(b.ToBSPResult())
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("%s: VP states differ", label)
	}
	if !reflect.DeepEqual(a.Costs, b.Costs) {
		t.Errorf("%s: model costs differ:\na: %+v\nb: %+v", label, a.Costs, b.Costs)
	}
	// Overlap, the opened-backend name, and the tier cache counters
	// are wall-clock/configuration observability, explicitly outside
	// the bitwise-identity contract (see EMStats.Overlap,
	// EMStats.StoreBackend, EMStats.Tiers); compare the rest of
	// EMStats exactly.
	ea, eb := a.EM, b.EM
	ea.Overlap, eb.Overlap = disk.OverlapStats{}, disk.OverlapStats{}
	ea.StoreBackend, eb.StoreBackend = "", ""
	ea.Tiers, eb.Tiers = nil, nil
	if !reflect.DeepEqual(ea, eb) {
		t.Errorf("%s: EM statistics differ:\na: %+v\nb: %+v", label, ea, eb)
	}
}

// TestDurableMatchesReference: a durable (file-backed, journaled) run
// is still bitwise identical to the in-memory reference semantics, on
// both engines, with and without faults.
func TestDurableMatchesReference(t *testing.T) {
	p := testProgram()
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 3, PktSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 3} {
		for _, plan := range []*fault.Plan{nil, transientPlan(41)} {
			cfg := parMachine(procs, 4, 8, 256)
			opts := core.Options{Seed: 3, StateDir: t.TempDir(), FaultPlan: plan}
			res, err := core.Run(p, cfg, opts)
			if err != nil {
				t.Fatalf("P=%d faults=%v: %v", procs, plan != nil, err)
			}
			checksumsEqual(t, ref, res, fmt.Sprintf("durable P=%d", procs))
		}
	}
}

// TestCrashAndResumeBitwise is the issue's acceptance property: a run
// hard-stopped mid-superstep and resumed from its journal produces a
// Result bitwise identical to the uninterrupted run — including model
// costs and EM statistics, including under an active fault plan, on
// both engines.
func TestCrashAndResumeBitwise(t *testing.T) {
	p := testProgram()
	for _, procs := range []int{1, 3} {
		for _, plan := range []*fault.Plan{nil, transientPlan(41)} {
			label := fmt.Sprintf("P=%d faults=%v", procs, plan != nil)
			cfg := parMachine(procs, 4, 8, 256)

			clean, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: t.TempDir(), FaultPlan: plan})
			if err != nil {
				t.Fatalf("%s clean: %v", label, err)
			}

			dir := t.TempDir()
			crashed := &panicProgram{Program: p, panicStep: 2}
			_, err = core.Run(crashed, cfg, core.Options{Seed: 3, StateDir: dir, FaultPlan: plan})
			var pe *bsp.ProgramError
			if !errors.As(err, &pe) {
				t.Fatalf("%s: crashed run returned %v, want *bsp.ProgramError", label, err)
			}
			if pe.Superstep != 2 || pe.VP != p.V/2 {
				t.Errorf("%s: panic attributed to VP %d superstep %d, want VP %d superstep 2",
					label, pe.VP, pe.Superstep, p.V/2)
			}

			res, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true, FaultPlan: plan})
			if err != nil {
				t.Fatalf("%s resume: %v", label, err)
			}
			resultsIdentical(t, clean, res, label)
		}
	}
}

// TestTieredCrashAndResumeBitwise extends the crash-resume property to
// tiered store chains, crossing the tier configuration over the crash
// boundary in both directions: a tiered run resumed flat and a flat
// run resumed tiered must both be bitwise identical to an
// uninterrupted FLAT run. Tier contents are cache, never durable
// state, so the journal carries no trace of the chain that wrote it.
func TestTieredCrashAndResumeBitwise(t *testing.T) {
	p := testProgram()
	tiers := []core.TierSpec{{}}
	for _, procs := range []int{1, 3} {
		for _, plan := range []*fault.Plan{nil, transientPlan(41)} {
			label := fmt.Sprintf("P=%d faults=%v", procs, plan != nil)
			cfg := parMachine(procs, 4, 8, 256)

			clean, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: t.TempDir(), FaultPlan: plan})
			if err != nil {
				t.Fatalf("%s clean: %v", label, err)
			}

			crash := func(dir string, tiered bool) {
				t.Helper()
				var tt []core.TierSpec
				if tiered {
					tt = tiers
				}
				crashed := &panicProgram{Program: p, panicStep: 2}
				_, err := core.Run(crashed, cfg, core.Options{Seed: 3, StateDir: dir, FaultPlan: plan, Tiers: tt})
				var pe *bsp.ProgramError
				if !errors.As(err, &pe) {
					t.Fatalf("%s: crashed run returned %v, want *bsp.ProgramError", label, err)
				}
			}

			// Crash tiered, resume flat.
			dir := t.TempDir()
			crash(dir, true)
			res, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true, FaultPlan: plan})
			if err != nil {
				t.Fatalf("%s tiered→flat resume: %v", label, err)
			}
			resultsIdentical(t, clean, res, label+" tiered→flat")

			// Crash flat, resume tiered (pipelined, so the resumed leg
			// prefetches through the tier).
			dir = t.TempDir()
			crash(dir, false)
			res, err = core.Run(p, cfg, core.Options{
				Seed: 3, StateDir: dir, Resume: true, FaultPlan: plan, Tiers: tiers, Pipeline: 1,
			})
			if err != nil {
				t.Fatalf("%s flat→tiered resume: %v", label, err)
			}
			resultsIdentical(t, clean, res, label+" flat→tiered")

			// Crash tiered, resume tiered.
			dir = t.TempDir()
			crash(dir, true)
			res, err = core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true, FaultPlan: plan, Tiers: tiers})
			if err != nil {
				t.Fatalf("%s tiered→tiered resume: %v", label, err)
			}
			resultsIdentical(t, clean, res, label+" tiered→tiered")
		}
	}
}

// TestCancelAndResume: cooperative cancellation stops the run at a
// superstep barrier with the journal at the last commit; resuming
// completes it with a bitwise identical Result.
func TestCancelAndResume(t *testing.T) {
	p := testProgram()
	for _, procs := range []int{1, 3} {
		cfg := parMachine(procs, 4, 8, 256)
		clean, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}

		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		opts := core.Options{Seed: 3, StateDir: dir}
		opts.OnCommit = func(step int) {
			if step == 1 {
				cancel()
			}
		}
		_, err = core.RunContext(ctx, p, cfg, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: cancelled run returned %v, want context.Canceled", procs, err)
		}

		res, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true})
		if err != nil {
			t.Fatalf("P=%d resume: %v", procs, err)
		}
		resultsIdentical(t, clean, res, fmt.Sprintf("P=%d cancel", procs))
	}
}

// TestResumeCompletedRun: resuming a state directory whose run already
// finished just reloads the final contexts — same Result again.
func TestResumeCompletedRun(t *testing.T) {
	p := testProgram()
	cfg := parMachine(1, 4, 8, 256)
	dir := t.TempDir()
	clean, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, clean, res, "completed")
}

// TestResumeTornJournal: a crash between a record's fsync and its HEAD
// advance leaves a durable but uncommitted tail. Resume must roll it
// back and still produce the uninterrupted run's exact Result.
func TestResumeTornJournal(t *testing.T) {
	p := testProgram()
	cfg := parMachine(1, 4, 8, 256)
	clean, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, err = core.Run(&panicProgram{Program: p, panicStep: 2}, cfg, core.Options{Seed: 3, StateDir: dir})
	var pe *bsp.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("crashed run returned %v, want *bsp.ProgramError", err)
	}
	// Simulate the torn append of the never-committed record.
	wal, err := os.OpenFile(filepath.Join(dir, "journal.wal"), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write(make([]byte, 57)); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	res, err := core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume after torn tail: %v", err)
	}
	resultsIdentical(t, clean, res, "torn tail")
}

// TestResumeCorruptJournal: a committed record that fails its checksum
// is a typed journal error — never silently replayed.
func TestResumeCorruptJournal(t *testing.T) {
	p := testProgram()
	cfg := parMachine(1, 4, 8, 256)
	dir := t.TempDir()
	_, err := core.Run(&panicProgram{Program: p, panicStep: 2}, cfg, core.Options{Seed: 3, StateDir: dir})
	var pe *bsp.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("crashed run returned %v, want *bsp.ProgramError", err)
	}

	path := filepath.Join(dir, "journal.wal")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	_, err = core.Run(p, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true})
	var je *journal.Error
	if !errors.As(err, &je) {
		t.Fatalf("resume of corrupt journal returned %v, want *journal.Error", err)
	}
}

// TestResumeNoCheckpoint: a run that died before its first barrier
// commit has nothing to resume from, and says so.
func TestResumeNoCheckpoint(t *testing.T) {
	cfg := parMachine(1, 4, 8, 256)
	dir := t.TempDir()
	f, err := disk.OpenFile(dir, disk.Config{D: cfg.D, B: cfg.B}, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err := journal.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, err = core.Run(testProgram(), cfg, core.Options{Seed: 3, StateDir: dir, Resume: true})
	var je *journal.Error
	if !errors.As(err, &je) {
		t.Fatalf("got %v, want *journal.Error", err)
	}
}

// TestResumeConfigMismatch: a journal records a fingerprint of the
// program shape, machine and options; resuming under anything else is
// refused rather than silently producing garbage.
func TestResumeConfigMismatch(t *testing.T) {
	p := testProgram()
	cfg := parMachine(1, 4, 8, 256)
	dir := t.TempDir()
	_, err := core.Run(&panicProgram{Program: p, panicStep: 2}, cfg, core.Options{Seed: 3, StateDir: dir})
	var pe *bsp.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("crashed run returned %v, want *bsp.ProgramError", err)
	}

	if _, err := core.Run(p, cfg, core.Options{Seed: 4, StateDir: dir, Resume: true}); err == nil {
		t.Error("resume with a different seed: want error, got nil")
	}
	if _, err := core.Run(p, cfg, core.Options{Seed: 3, Deterministic: true, StateDir: dir, Resume: true}); err == nil {
		t.Error("resume with different options: want error, got nil")
	}
	// The fingerprint sees the program's shape (v, µ, γ), not its code:
	// a different MaxLen changes γ and is caught.
	other := &bsptest.RandomProgram{V: 16, Steps: 5, MsgsPerStep: 4, MaxLen: 20}
	if _, err := core.Run(other, cfg, core.Options{Seed: 3, StateDir: dir, Resume: true}); err == nil {
		t.Error("resume with a different-shaped program: want error, got nil")
	}
	// A different engine (P) is caught by the manifest kind.
	if _, err := core.Run(p, parMachine(3, 4, 8, 256), core.Options{Seed: 3, StateDir: dir, Resume: true}); err == nil {
		t.Error("resume with a different P: want error, got nil")
	}
}

// TestPanicIsolation: a panicking Program comes back as a typed
// ProgramError from all three engines, with the process alive.
func TestPanicIsolation(t *testing.T) {
	p := &panicProgram{Program: testProgram(), panicStep: 1}
	check := func(label string, err error) {
		t.Helper()
		var pe *bsp.ProgramError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: got %v, want *bsp.ProgramError", label, err)
		}
		if pe.Superstep != 1 {
			t.Errorf("%s: Superstep = %d, want 1", label, pe.Superstep)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("%s: no stack captured", label)
		}
	}
	_, err := bsp.Run(p, bsp.RunOptions{Seed: 3, PktSize: 8})
	check("reference", err)
	for _, procs := range []int{1, 3} {
		_, err := core.Run(p, parMachine(procs, 4, 8, 256), core.Options{Seed: 3})
		check(fmt.Sprintf("P=%d", procs), err)
	}
}

// TestValidation: malformed machine configurations and options are
// rejected up front with descriptive errors.
func TestValidation(t *testing.T) {
	good := parMachine(1, 4, 8, 256)
	p := testProgram()
	cases := []struct {
		name string
		cfg  core.MachineConfig
		opts core.Options
	}{
		{"negative MaxSupersteps", good, core.Options{MaxSupersteps: -1}},
		{"MaxRetries below -1", good, core.Options{MaxRetries: -2}},
		{"NoRouting P>1", parMachine(2, 4, 8, 256), core.Options{NoRouting: true}},
		{"NoRouting durable", good, core.Options{NoRouting: true, StateDir: "x"}},
		{"Resume without StateDir", good, core.Options{Resume: true}},
		{"NoRouting with faults", good, core.Options{NoRouting: true, FaultPlan: transientPlan(1)}},
		{"FailProc out of range", good, core.Options{FaultPlan: &fault.Plan{Seed: 1, ReadErrorRate: 0.1, FailProc: 3}}},
		{"FailDrive out of range", good, core.Options{FaultPlan: &fault.Plan{Seed: 1, FailDriveOp: 5, FailDrive: 9}}},
		{"fault rate out of range", good, core.Options{FaultPlan: &fault.Plan{Seed: 1, ReadErrorRate: 1.5}}},
		{"negative L", core.MachineConfig{P: 1, M: 256, D: 4, B: 8, G: 10, Cost: bsp.CostParams{GUnit: 1, GPkt: 2, Pkt: 16, L: -1}}, core.Options{}},
		{"negative MemSlack", func() core.MachineConfig { c := good; c.MemSlack = -1; return c }(), core.Options{}},
	}
	for _, tc := range cases {
		if _, err := core.Run(p, tc.cfg, tc.opts); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}
