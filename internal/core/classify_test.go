package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
)

func TestRetriable(t *testing.T) {
	recoverable := &fault.Error{Kind: fault.TransientRead, Disk: 1, Track: 2, Op: "read", Recoverable: true}
	permanent := &fault.Error{Kind: fault.DriveLoss, Disk: 0, Recoverable: false}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"recoverable fault", recoverable, true},
		{"wrapped recoverable fault", fmt.Errorf("superstep 3: %w", recoverable), true},
		{"joined recoverable fault", errors.Join(errors.New("other"), recoverable), true},
		{"unrecoverable fault", permanent, false},
		{"wrapped unrecoverable fault", fmt.Errorf("superstep 3: %w", permanent), false},
		{"program panic", &bsp.ProgramError{VP: 4, Superstep: 2, Value: "boom"}, false},
		{"wrapped program panic", fmt.Errorf("run: %w", &bsp.ProgramError{VP: 0}), false},
		{"journal damage", &journal.Error{Path: "HEAD", Record: -1, Reason: "not a journal HEAD"}, false},
		{"wrapped journal damage", fmt.Errorf("resume: %w", &journal.Error{Record: 7, Reason: "bad checksum"}), false},
		{"corrupt track", &disk.CorruptTrackError{Path: "d0", Disk: 0, Track: 9}, false},
		{"unprotected drive loss", &UnprotectedDriveLossError{FailDrive: 1, FailOp: 40}, false},
		{"cancellation", context.Canceled, false},
		{"wrapped cancellation", fmt.Errorf("run: %w", context.Canceled), false},
		{"deadline", context.DeadlineExceeded, false},
		{"generic error", errors.New("unknown"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Retriable(tc.err); got != tc.want {
				t.Errorf("Retriable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// A cancellation that arrives while the fault layer is mid-retry can
// surface wrapped around a recoverable fault; the decision (stop) must
// win over the fault (retry).
func TestRetriableCancellationWins(t *testing.T) {
	err := fmt.Errorf("superstep 2: %w: %w", context.Canceled,
		&fault.Error{Kind: fault.TransientRead, Recoverable: true})
	if Retriable(err) {
		t.Error("cancellation wrapped around a recoverable fault classified retriable")
	}
}
