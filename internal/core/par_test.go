package core_test

import (
	"runtime"
	"testing"
	"testing/quick"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/core"
	"embsp/internal/prng"
)

func parMachine(p, d, b, m int) core.MachineConfig {
	return core.MachineConfig{
		P: p, M: m, D: d, B: b, G: 10,
		Cost: bsp.CostParams{GUnit: 1, GPkt: 2, Pkt: 2 * b, L: 5},
	}
}

func TestParRingMatchesReference(t *testing.T) {
	for _, p := range []int{2, 3, 4} {
		for _, v := range []int{1, 4, 9, 16} {
			prog := &bsptest.RingProgram{V: v, Rounds: 4}
			ref, err := bsp.Run(prog, bsp.RunOptions{Seed: 21, PktSize: 16})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(prog, parMachine(p, 2, 8, 64), core.Options{Seed: 21})
			if err != nil {
				t.Fatalf("p=%d v=%d: %v", p, v, err)
			}
			for id := 0; id < v; id++ {
				if got, want := bsptest.RingAcc(res.ToBSPResult(), id), bsptest.RingAcc(ref, id); got != want {
					t.Errorf("p=%d v=%d vp=%d: acc=%d, want %d", p, v, id, got, want)
				}
			}
		}
	}
}

func TestParRandomProgramEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		v := r.Intn(24) + 1
		prog := &bsptest.RandomProgram{
			V:           v,
			Steps:       r.Intn(3) + 1,
			MsgsPerStep: r.Intn(4),
			MaxLen:      r.Intn(16),
		}
		ref, err := bsp.Run(prog, bsp.RunOptions{Seed: seed, PktSize: 16})
		if err != nil {
			return false
		}
		p := r.Intn(4) + 2
		d := r.Intn(3) + 1
		b := 8 + r.Intn(8)
		m := d*b + r.Intn(100)
		res, err := core.Run(prog, parMachine(p, d, b, m), core.Options{Seed: seed})
		if err != nil {
			return false
		}
		a, bb := bsptest.Checksums(ref), bsptest.Checksums(res.ToBSPResult())
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParMatchesSeqCosts(t *testing.T) {
	// BSP-level program costs must be engine independent.
	prog := &bsptest.RandomProgram{V: 12, Steps: 3, MsgsPerStep: 3, MaxLen: 8}
	seq, err := core.Run(prog, parMachine(1, 2, 8, 96), core.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Run(prog, parMachine(3, 2, 8, 96), core.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Costs.Supersteps != par.Costs.Supersteps {
		t.Fatalf("λ: %d vs %d", seq.Costs.Supersteps, par.Costs.Supersteps)
	}
	for i := range seq.Costs.PerStep {
		if seq.Costs.PerStep[i] != par.Costs.PerStep[i] {
			t.Errorf("superstep %d: seq %+v vs par %+v", i, seq.Costs.PerStep[i], par.Costs.PerStep[i])
		}
	}
}

func TestParRealCommunicationCounted(t *testing.T) {
	prog := &bsptest.RandomProgram{V: 16, Steps: 3, MsgsPerStep: 3, MaxLen: 8}
	res, err := core.Run(prog, parMachine(4, 2, 8, 64), core.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.EM.CommPkts <= 0 || res.EM.CommWords <= 0 {
		t.Errorf("no real communication recorded: pkts=%d words=%d", res.EM.CommPkts, res.EM.CommWords)
	}
	if res.EM.CommTime <= 0 {
		t.Errorf("CommTime = %v, want > 0", res.EM.CommTime)
	}
	if res.EM.IOTime <= 0 {
		t.Errorf("IOTime = %v, want > 0", res.EM.IOTime)
	}
	// IOTime uses the per-superstep max over processors, so it must
	// be at most G times the total ops and at least G times ops/p.
	total := float64(res.EM.Run.Ops)
	if res.EM.IOTime > 10*total || res.EM.IOTime < 10*total/4 {
		t.Errorf("IOTime = %v not within [G·ops/p, G·ops] = [%v, %v]", res.EM.IOTime, 10*total/4, 10*total)
	}
}

func TestParDeterministicModeReproducible(t *testing.T) {
	prog := &bsptest.RandomProgram{V: 12, Steps: 3, MsgsPerStep: 2, MaxLen: 6}
	cfg := parMachine(3, 2, 8, 64)
	a, err := core.Run(prog, cfg, core.Options{Seed: 4, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(prog, cfg, core.Options{Seed: 4, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.EM.Run.Ops != b.EM.Run.Ops || a.EM.CommPkts != b.EM.CommPkts {
		t.Errorf("deterministic par mode not reproducible: ops %d/%d pkts %d/%d",
			a.EM.Run.Ops, b.EM.Run.Ops, a.EM.CommPkts, b.EM.CommPkts)
	}
	ca, cb := bsptest.Checksums(a.ToBSPResult()), bsptest.Checksums(b.ToBSPResult())
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("VP %d diverged", i)
		}
	}
}

// TestParSchedulingIndependence: results and op counts must not
// depend on goroutine scheduling. Running the same configuration with
// GOMAXPROCS=1 (fully serialized goroutines) must reproduce the
// parallel execution exactly.
func TestParSchedulingIndependence(t *testing.T) {
	prog := &bsptest.RandomProgram{V: 18, Steps: 3, MsgsPerStep: 3, MaxLen: 10}
	cfg := parMachine(4, 2, 8, 96)
	wide, err := core.Run(prog, cfg, core.Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	narrow, err := core.Run(prog, cfg, core.Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	a, b := bsptest.Checksums(wide.ToBSPResult()), bsptest.Checksums(narrow.ToBSPResult())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("VP %d output depends on scheduling", i)
		}
	}
	if wide.EM.Run.Ops != narrow.EM.Run.Ops {
		t.Errorf("op counts depend on scheduling: %d vs %d", wide.EM.Run.Ops, narrow.EM.Run.Ops)
	}
	if wide.EM.CommPkts != narrow.EM.CommPkts {
		t.Errorf("packet counts depend on scheduling: %d vs %d", wide.EM.CommPkts, narrow.EM.CommPkts)
	}
	for i := range wide.Costs.PerStep {
		if wide.Costs.PerStep[i] != narrow.Costs.PerStep[i] {
			t.Errorf("superstep %d costs depend on scheduling", i)
		}
	}
}

// TestParDiskLoadBalanced: Algorithm 3 scatters packets to random
// processors precisely so that disk load stays balanced across the
// real machines. On uniform traffic the per-processor ops must be
// within a small factor of the mean.
func TestParDiskLoadBalanced(t *testing.T) {
	prog := &bsptest.RandomProgram{V: 32, Steps: 4, MsgsPerStep: 6, MaxLen: 16}
	res, err := core.Run(prog, parMachine(4, 2, 8, 128), core.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	maxOps := int64(0)
	for _, ps := range res.EM.PerProc {
		total += ps.Ops
		if ps.Ops > maxOps {
			maxOps = ps.Ops
		}
	}
	mean := float64(total) / float64(len(res.EM.PerProc))
	if float64(maxOps) > 1.5*mean {
		t.Errorf("per-processor ops skewed: max %d vs mean %.0f", maxOps, mean)
	}
}

func TestParMoreProcsThanVPs(t *testing.T) {
	prog := &bsptest.RingProgram{V: 2, Rounds: 3}
	res, err := core.Run(prog, parMachine(4, 1, 8, 32), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if got, want := bsptest.RingAcc(res.ToBSPResult(), id), bsptest.ExpectedRingAcc(2, 3, id); got != want {
			t.Errorf("vp %d: %d, want %d", id, got, want)
		}
	}
}

func TestParLargeContexts(t *testing.T) {
	p := &bigCtxProgram{v: 9, rounds: 3, ctxWords: 40}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 6, PktSize: 16, ValidateContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, parMachine(3, 2, 8, 120), core.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.VPs {
		a := ref.VPs[i].(*bigCtxVP).data
		b := res.VPs[i].(*bigCtxVP).data
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("VP %d word %d: %d vs %d", i, j, a[j], b[j])
			}
		}
	}
}
