package core

import (
	"context"
	"errors"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/fault"
	"embsp/internal/journal"
)

// Retriable classifies an error returned by Run / RunContext for a
// caller deciding whether to run the job again: true means a fresh
// attempt (typically resuming the StateDir journal) has a real chance
// of succeeding, false means the failure is terminal and retrying
// only repeats it.
//
// The taxonomy is the one the engines themselves use mid-run.
// fault.Replayable drives the superstep rollback/replay loop; a
// *fault.Error that escapes to the caller is retriable exactly when
// that loop would have considered it replayable — transient kinds and
// drive losses covered by redundancy (a later attempt continues the
// per-drive fault clocks from the journal, so it faces a fresh
// schedule, not a rerun of the same one). Everything else is terminal:
//
//   - *bsp.ProgramError — the user program panicked; retrying executes
//     the same deterministic program over the same state.
//   - *journal.Error — the write-ahead journal itself is damaged; no
//     replay source exists.
//   - *disk.CorruptTrackError escaping the fault layer — at-rest
//     corruption with no redundancy left to repair it from.
//   - *UnprotectedDriveLossError and other validation errors — the
//     configuration can never run.
//   - context.Canceled / context.DeadlineExceeded — a decision, not a
//     fault.
//   - anything unrecognized — fail safe, report instead of looping.
func Retriable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *bsp.ProgramError
	if errors.As(err, &pe) {
		return false
	}
	var je *journal.Error
	if errors.As(err, &je) {
		return false
	}
	var ue *UnprotectedDriveLossError
	if errors.As(err, &ue) {
		return false
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		return fe.Recoverable
	}
	var ce *disk.CorruptTrackError
	if errors.As(err, &ce) {
		return false
	}
	return false
}
