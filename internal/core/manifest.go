package core

import (
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/words"
)

// This file implements the engines' commit-journal manifests: the
// payload of one journal record is one manifest — a complete,
// self-contained checkpoint of everything the engine needs to continue
// from a compound-superstep barrier. Record 0 checkpoints the setup
// phase (initial contexts written, no superstep run); record i+1
// checkpoints superstep i. Resume decodes only the LAST committed
// record: each manifest carries full state, not a delta, so recovery
// cost is independent of run length.
//
// A manifest begins with an engine-kind tag and a fingerprint of the
// (machine configuration, options, program shape) tuple. A resumed run
// must present the identical tuple — the simulation is deterministic
// in it — and the engines refuse to continue from a manifest whose
// fingerprint disagrees, which catches resuming with a different
// program, seed, fault plan or machine.

const (
	manifestSeqKind   = 0x5345513  // "SEQ" tag
	manifestParKind   = 0x5041523  // "PAR" tag
	manifestNodeKind  = 0x4e4f4445 // "NODE" tag — one cluster worker's processor state
	manifestCoordKind = 0x434f5244 // "CORD" tag — the cluster coordinator's global state
)

// configFingerprint folds everything a resumed run must agree on into
// one checksum word.
func configFingerprint(kind uint64, cfg MachineConfig, opts Options, v, mu, gamma int) uint64 {
	enc := words.NewEncoder(nil)
	enc.PutUint(kind)
	enc.PutInts([]int64{int64(cfg.P), int64(cfg.M), int64(cfg.D), int64(cfg.B), int64(cfg.MemSlack)})
	enc.PutFloat(cfg.G)
	enc.PutFloat(cfg.Cost.GUnit)
	enc.PutFloat(cfg.Cost.GPkt)
	enc.PutInt(int64(cfg.Cost.Pkt))
	enc.PutFloat(cfg.Cost.L)
	enc.PutUint(opts.Seed)
	enc.PutInt(int64(opts.MaxSupersteps))
	enc.PutBool(opts.Deterministic)
	enc.PutInt(int64(opts.MaxRetries))
	plan := opts.FaultPlan
	enc.PutBool(plan != nil && plan.Enabled())
	if plan != nil && plan.Enabled() {
		enc.PutUint(plan.Seed)
		enc.PutFloat(plan.ReadErrorRate)
		enc.PutFloat(plan.WriteErrorRate)
		enc.PutFloat(plan.CorruptRate)
		enc.PutInts([]int64{plan.FirstOp, plan.FailDriveOp, int64(plan.FailDrive), int64(plan.FailProc)})
		enc.PutBool(plan.Mirror)
	}
	enc.PutInt(int64(opts.effectiveRedundancy()))
	enc.PutBool(opts.Scrub)
	enc.PutInts([]int64{int64(v), int64(mu), int64(gamma)})
	return disk.Checksum(enc.Words())
}

func encodeStats(enc *words.Encoder, s disk.Stats) {
	enc.PutInts([]int64{s.Ops, s.ReadOps, s.WriteOps, s.BlocksRead, s.BlocksWritten})
	enc.PutInt(int64(len(s.PerDrive)))
	for _, d := range s.PerDrive {
		enc.PutInts([]int64{d.BlocksRead, d.BlocksWritten, d.SeqAccesses, d.RandAccesses})
	}
}

func decodeStats(dec *words.Decoder) disk.Stats {
	t := dec.Ints()
	s := disk.Stats{Ops: t[0], ReadOps: t[1], WriteOps: t[2], BlocksRead: t[3], BlocksWritten: t[4]}
	n := int(dec.Int())
	if n > 0 {
		s.PerDrive = make([]disk.DriveStats, n)
		for i := range s.PerDrive {
			d := dec.Ints()
			s.PerDrive[i] = disk.DriveStats{BlocksRead: d[0], BlocksWritten: d[1], SeqAccesses: d[2], RandAccesses: d[3]}
		}
	}
	return s
}

func encodeStoreState(enc *words.Encoder, s disk.StoreState) {
	encodeStats(enc, s.Stats)
	enc.PutInt(int64(len(s.Next)))
	for d := range s.Next {
		enc.PutInt(int64(s.Next[d]))
		enc.PutInt(int64(s.Last[d]))
		free := make([]int64, len(s.Free[d]))
		for i, t := range s.Free[d] {
			free[i] = int64(t)
		}
		enc.PutInts(free)
	}
}

func decodeStoreState(dec *words.Decoder) disk.StoreState {
	s := disk.StoreState{Stats: decodeStats(dec)}
	n := int(dec.Int())
	s.Next = make([]int, n)
	s.Last = make([]int, n)
	s.Free = make([][]int, n)
	for d := 0; d < n; d++ {
		s.Next[d] = int(dec.Int())
		s.Last[d] = int(dec.Int())
		free := dec.Ints()
		s.Free[d] = make([]int, len(free))
		for i, t := range free {
			s.Free[d][i] = int(t)
		}
	}
	return s
}

// encodeRegions writes the per-group (per-batch) input regions. Each
// region is encoded as its full area plus the [lo, hi) block window —
// regions may reference sliced or derived areas, so no indirection
// through the owning area list is possible.
func encodeRegions(enc *words.Encoder, regions [][]groupRegion) {
	enc.PutInt(int64(len(regions)))
	for _, rs := range regions {
		enc.PutInt(int64(len(rs)))
		for _, r := range rs {
			r.area.Encode(enc)
			enc.PutInt(int64(r.lo))
			enc.PutInt(int64(r.hi))
		}
	}
}

func decodeRegions(dec *words.Decoder) [][]groupRegion {
	n := int(dec.Int())
	if n == 0 {
		return nil
	}
	regions := make([][]groupRegion, n)
	for g := range regions {
		m := int(dec.Int())
		for i := 0; i < m; i++ {
			ar := disk.DecodeArea(dec)
			lo := int(dec.Int())
			hi := int(dec.Int())
			regions[g] = append(regions[g], groupRegion{area: ar, lo: lo, hi: hi})
		}
	}
	return regions
}

func encodeAreas(enc *words.Encoder, areas []disk.Area) {
	enc.PutInt(int64(len(areas)))
	for _, ar := range areas {
		ar.Encode(enc)
	}
}

func decodeAreas(dec *words.Decoder) []disk.Area {
	n := int(dec.Int())
	if n == 0 {
		return nil
	}
	areas := make([]disk.Area, n)
	for i := range areas {
		areas[i] = disk.DecodeArea(dec)
	}
	return areas
}

func encodeRecSteps(enc *words.Encoder, steps []bsp.SuperstepCost) {
	enc.PutInt(int64(len(steps)))
	for _, s := range steps {
		enc.PutInts([]int64{
			int64(s.MaxSendWords), int64(s.MaxRecvWords),
			int64(s.MaxSendPkts), int64(s.MaxRecvPkts),
			s.TotalWords, s.Messages, s.MaxCharge, s.TotalCharge,
		})
	}
}

func decodeRecSteps(dec *words.Decoder) []bsp.SuperstepCost {
	n := int(dec.Int())
	steps := make([]bsp.SuperstepCost, n)
	for i := range steps {
		t := dec.Ints()
		steps[i] = bsp.SuperstepCost{
			MaxSendWords: int(t[0]), MaxRecvWords: int(t[1]),
			MaxSendPkts: int(t[2]), MaxRecvPkts: int(t[3]),
			TotalWords: t[4], Messages: t[5], MaxCharge: t[6], TotalCharge: t[7],
		}
	}
	return steps
}

// checkManifestHeader verifies the kind tag and fingerprint leading
// every manifest.
func checkManifestHeader(dec *words.Decoder, kind uint64, fpr uint64) error {
	gotKind := dec.Uint()
	if gotKind != kind {
		return fmt.Errorf("core: journal was written by a different engine (kind %#x, want %#x); resume with the original P", gotKind, kind)
	}
	if got := dec.Uint(); got != fpr {
		return fmt.Errorf("core: journal fingerprint mismatch: the state directory was written under a different program, machine configuration or options")
	}
	return nil
}

// --- sequential engine -------------------------------------------------

func (e *seqEngine) encodeManifest(enc *words.Encoder) {
	enc.PutUint(manifestSeqKind)
	enc.PutUint(e.fpr)
	enc.PutInt(int64(e.stepsDone))
	enc.PutBool(e.halted)
	encodeStats(enc, e.setup)
	st := e.rng.State()
	for _, w := range st[:] {
		enc.PutUint(w)
	}
	enc.PutInt(int64(e.ctxCur))
	e.ctxAreas[0].Encode(enc)
	e.ctxAreas[1].Encode(enc)
	enc.PutInt(int64(e.inBlocks))
	encodeRegions(enc, e.inRegions)
	encodeAreas(enc, e.inAreas)
	enc.PutInts([]int64{e.routeOps, e.ragged, e.peakLive, e.replays, e.recoveryOps})
	enc.PutFloat(e.maxSkew)
	enc.PutInt(e.acct.High())
	encodeRecSteps(enc, e.rec.Steps())
	encodeStoreState(enc, e.store.State())
	enc.PutBool(e.fd != nil)
	if e.fd != nil {
		e.fd.EncodeState(enc)
	}
	enc.PutBool(e.red != nil)
	if e.red != nil {
		e.red.EncodeState(enc)
	}
}

func (e *seqEngine) decodeManifest(payload []uint64) error {
	dec := words.NewDecoder(payload)
	if err := checkManifestHeader(dec, manifestSeqKind, e.fpr); err != nil {
		return err
	}
	e.stepsDone = int(dec.Int())
	e.halted = dec.Bool()
	e.setup = decodeStats(dec)
	var st [4]uint64
	for i := range st {
		st[i] = dec.Uint()
	}
	e.rng.SetState(st)
	e.ctxCur = int(dec.Int())
	e.ctxAreas[0] = disk.DecodeArea(dec)
	e.ctxAreas[1] = disk.DecodeArea(dec)
	e.inBlocks = int(dec.Int())
	e.inRegions = decodeRegions(dec)
	e.inAreas = decodeAreas(dec)
	t := dec.Ints()
	e.routeOps, e.ragged, e.peakLive, e.replays, e.recoveryOps = t[0], t[1], t[2], t[3], t[4]
	e.maxSkew = dec.Float()
	e.acct.AdoptHigh(dec.Int())
	e.rec.Restore(decodeRecSteps(dec))
	if err := e.store.AdoptState(decodeStoreState(dec)); err != nil {
		return err
	}
	hadFault := dec.Bool()
	if hadFault != (e.fd != nil) {
		return fmt.Errorf("core: journal fault-layer presence (%v) disagrees with the resuming options (%v)", hadFault, e.fd != nil)
	}
	if e.fd != nil {
		if err := e.fd.DecodeState(dec); err != nil {
			return err
		}
	}
	hadRed := dec.Bool()
	if hadRed != (e.red != nil) {
		return fmt.Errorf("core: journal parity-layer presence (%v) disagrees with the resuming options (%v)", hadRed, e.red != nil)
	}
	if e.red != nil {
		if err := e.red.DecodeState(dec); err != nil {
			return err
		}
	}
	return nil
}

// --- parallel engine ---------------------------------------------------

func (e *parEngine) encodeManifest(enc *words.Encoder) {
	enc.PutUint(manifestParKind)
	enc.PutUint(e.fpr)
	enc.PutInt(int64(e.stepsDone))
	enc.PutBool(e.halted)
	encodeStats(enc, e.setup)
	enc.PutFloat(e.ioTime)
	enc.PutFloat(e.commTime)
	enc.PutInts([]int64{e.commPkts, e.commWords, e.replays, e.recoveryOps})
	encodeRecSteps(enc, e.rec.Steps())
	enc.PutInt(int64(len(e.procs)))
	for _, ps := range e.procs {
		encodeProcManifest(enc, ps)
	}
}

// encodeProcManifest writes one processor's complete barrier state —
// the per-processor section of the parallel manifest, and the whole
// body of a cluster node's manifest.
func encodeProcManifest(enc *words.Encoder, ps *procState) {
	st := ps.rng.State()
	for _, w := range st[:] {
		enc.PutUint(w)
	}
	enc.PutInt(int64(ps.ctxCur))
	ps.ctxAreas[0].Encode(enc)
	ps.ctxAreas[1].Encode(enc)
	enc.PutInt(int64(ps.inBlocks))
	encodeRegions(enc, ps.inRegions)
	encodeAreas(enc, ps.inAreas)
	enc.PutInts([]int64{ps.routeOps, ps.ragged, ps.peakLive})
	enc.PutFloat(ps.maxSkew)
	enc.PutInt(ps.acct.High())
	encodeStoreState(enc, ps.store.State())
	enc.PutBool(ps.fd != nil)
	if ps.fd != nil {
		ps.fd.EncodeState(enc)
	}
	enc.PutBool(ps.red != nil)
	if ps.red != nil {
		ps.red.EncodeState(enc)
	}
}

func decodeProcManifest(dec *words.Decoder, ps *procState) error {
	var st [4]uint64
	for i := range st {
		st[i] = dec.Uint()
	}
	ps.rng.SetState(st)
	ps.ctxCur = int(dec.Int())
	ps.ctxAreas[0] = disk.DecodeArea(dec)
	ps.ctxAreas[1] = disk.DecodeArea(dec)
	ps.inBlocks = int(dec.Int())
	ps.inRegions = decodeRegions(dec)
	ps.inAreas = decodeAreas(dec)
	pt := dec.Ints()
	ps.routeOps, ps.ragged, ps.peakLive = pt[0], pt[1], pt[2]
	ps.maxSkew = dec.Float()
	ps.acct.AdoptHigh(dec.Int())
	if err := ps.store.AdoptState(decodeStoreState(dec)); err != nil {
		return err
	}
	hadFault := dec.Bool()
	if hadFault != (ps.fd != nil) {
		return fmt.Errorf("core: journal fault-layer presence (%v) disagrees with the resuming options (%v)", hadFault, ps.fd != nil)
	}
	if ps.fd != nil {
		if err := ps.fd.DecodeState(dec); err != nil {
			return err
		}
	}
	hadRed := dec.Bool()
	if hadRed != (ps.red != nil) {
		return fmt.Errorf("core: journal parity-layer presence (%v) disagrees with the resuming options (%v)", hadRed, ps.red != nil)
	}
	if ps.red != nil {
		if err := ps.red.DecodeState(dec); err != nil {
			return err
		}
	}
	return nil
}

func (e *parEngine) decodeManifest(payload []uint64) error {
	dec := words.NewDecoder(payload)
	if err := checkManifestHeader(dec, manifestParKind, e.fpr); err != nil {
		return err
	}
	e.stepsDone = int(dec.Int())
	e.halted = dec.Bool()
	e.setup = decodeStats(dec)
	e.ioTime = dec.Float()
	e.commTime = dec.Float()
	t := dec.Ints()
	e.commPkts, e.commWords, e.replays, e.recoveryOps = t[0], t[1], t[2], t[3]
	e.rec.Restore(decodeRecSteps(dec))
	if n := int(dec.Int()); n != len(e.procs) {
		return fmt.Errorf("core: journal records %d processors, machine has %d", n, len(e.procs))
	}
	for _, ps := range e.procs {
		if err := decodeProcManifest(dec, ps); err != nil {
			return err
		}
	}
	return nil
}
