package disk

import (
	"testing"
	"testing/quick"

	"embsp/internal/prng"
)

func TestAreaStriping(t *testing.T) {
	a := newTest(t, 3, 2)
	ar := a.Reserve(7)
	if ar.Blocks() != 7 {
		t.Fatalf("Blocks = %d, want 7", ar.Blocks())
	}
	// Block i lives on drive i mod D with consecutive tracks per drive.
	perDriveTracks := make(map[int][]int)
	for i := 0; i < 7; i++ {
		ad := ar.Addr(i)
		if ad.Disk != i%3 {
			t.Errorf("block %d on drive %d, want %d", i, ad.Disk, i%3)
		}
		perDriveTracks[ad.Disk] = append(perDriveTracks[ad.Disk], ad.Track)
	}
	for d, tracks := range perDriveTracks {
		for i := 1; i < len(tracks); i++ {
			if tracks[i] != tracks[i-1]+1 {
				t.Errorf("drive %d tracks not consecutive: %v", d, tracks)
			}
		}
	}
	// Per-drive block counts differ by at most one (Definition 2).
	minC, maxC := 7, 0
	for d := 0; d < 3; d++ {
		c := len(perDriveTracks[d])
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Errorf("per-drive block counts differ by %d > 1", maxC-minC)
	}
}

func TestTwoAreasDisjoint(t *testing.T) {
	a := newTest(t, 2, 2)
	ar1 := a.Reserve(5)
	ar2 := a.Reserve(5)
	used := make(map[Addr]bool)
	for i := 0; i < 5; i++ {
		used[ar1.Addr(i)] = true
	}
	for i := 0; i < 5; i++ {
		if used[ar2.Addr(i)] {
			t.Fatalf("areas overlap at %v", ar2.Addr(i))
		}
	}
}

func TestReadWriteRange(t *testing.T) {
	a := newTest(t, 3, 4)
	ar := a.Reserve(10)
	src := make([]uint64, 10*4)
	for i := range src {
		src[i] = uint64(i * 3)
	}
	if err := a.WriteRange(ar, 0, 10, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 10*4)
	if err := a.ReadRange(ar, 0, 10, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: got %d, want %d", i, dst[i], src[i])
		}
	}
	// Partial range.
	part := make([]uint64, 3*4)
	if err := a.ReadRange(ar, 4, 7, part); err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != src[4*4+i] {
			t.Fatalf("partial word %d: got %d, want %d", i, part[i], src[4*4+i])
		}
	}
}

func TestRangeOpCounts(t *testing.T) {
	a := newTest(t, 4, 2)
	ar := a.Reserve(10)
	buf := make([]uint64, 10*2)
	if err := a.WriteRange(ar, 0, 10, buf); err != nil {
		t.Fatal(err)
	}
	// 10 blocks over 4 drives => ceil(10/4) = 3 parallel write ops.
	if s := a.Stats(); s.WriteOps != 3 {
		t.Errorf("WriteOps = %d, want 3", s.WriteOps)
	}
	a.ResetStats()
	if err := a.ReadRange(ar, 0, 10, buf); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.ReadOps != 3 {
		t.Errorf("ReadOps = %d, want 3", s.ReadOps)
	}
}

func TestRangeValidation(t *testing.T) {
	a := newTest(t, 2, 2)
	ar := a.Reserve(4)
	if err := a.ReadRange(ar, 0, 5, make([]uint64, 10)); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := a.ReadRange(ar, 0, 2, make([]uint64, 3)); err == nil {
		t.Error("wrong buffer size accepted")
	}
	if err := a.WriteRange(ar, 3, 2, nil); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRangeRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		d := r.Intn(5) + 1
		b := r.Intn(6) + 1
		n := r.Intn(30) + 1
		a := MustNewArray(Config{D: d, B: b})
		ar := a.Reserve(n)
		src := make([]uint64, n*b)
		for i := range src {
			src[i] = r.Uint64()
		}
		if err := a.WriteRange(ar, 0, n, src); err != nil {
			return false
		}
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo) + 1
		if hi > n {
			hi = n
		}
		dst := make([]uint64, (hi-lo)*b)
		if err := a.ReadRange(ar, lo, hi, dst); err != nil {
			return false
		}
		for i := range dst {
			if dst[i] != src[lo*b+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceAddressesMatchParent(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		d := r.Intn(6) + 1
		a := MustNewArray(Config{D: d, B: 4})
		n := r.Intn(50) + 1
		rot := r.Intn(d)
		ar := a.ReserveRot(n, rot)
		off := r.Intn(n)
		cnt := r.Intn(n-off) + 1
		if off+cnt > n {
			cnt = n - off
		}
		sl := Slice(ar, off, cnt)
		if sl.Blocks() != cnt {
			return false
		}
		for i := 0; i < cnt; i++ {
			if sl.Addr(i) != ar.Addr(off+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSliceRejectsBadRange(t *testing.T) {
	a := newTest(t, 2, 2)
	ar := a.Reserve(4)
	for _, c := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Slice(ar, c[0], c[1])
		}()
	}
}

func TestBuckets(t *testing.T) {
	a := newTest(t, 3, 2)
	b := NewBuckets(a, 4)
	if b.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d, want 4", b.NumBuckets())
	}
	b.Append(0, 1, 10)
	b.Append(0, 1, 11)
	b.Append(2, 1, 5)
	b.Append(1, 3, 0)
	if got := b.Len(0, 1); got != 2 {
		t.Errorf("Len(0,1) = %d, want 2", got)
	}
	if got := b.Total(1); got != 3 {
		t.Errorf("Total(1) = %d, want 3", got)
	}
	if got := b.MaxPerDrive(1); got != 2 {
		t.Errorf("MaxPerDrive(1) = %d, want 2", got)
	}
	if got := b.Total(0); got != 0 {
		t.Errorf("Total(0) = %d, want 0", got)
	}
	tracks := b.Tracks(0, 1)
	if len(tracks) != 2 || tracks[0] != 10 || tracks[1] != 11 {
		t.Errorf("Tracks(0,1) = %v, want [10 11]", tracks)
	}
}

func TestPeekTrackDoesNotCount(t *testing.T) {
	a := newTest(t, 1, 2)
	_ = a.WriteOp([]WriteReq{{Disk: 0, Track: 0, Src: []uint64{5, 6}}})
	before := a.Stats().Ops
	got := a.PeekTrack(0, 0)
	if got[0] != 5 || got[1] != 6 {
		t.Errorf("PeekTrack = %v, want [5 6]", got)
	}
	if a.Stats().Ops != before {
		t.Error("PeekTrack counted as an I/O op")
	}
}

func TestTracksHighWaterMark(t *testing.T) {
	a := newTest(t, 2, 2)
	a.Reserve(6) // 3 tracks per drive
	_ = a.Alloc(0)
	if got := a.Tracks(0); got != 4 {
		t.Errorf("Tracks(0) = %d, want 4", got)
	}
	if got := a.Tracks(1); got != 3 {
		t.Errorf("Tracks(1) = %d, want 3", got)
	}
}
