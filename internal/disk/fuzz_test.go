package disk

// Fuzzing the resume surface of the file store: the geometry file and
// the drive images are exactly what a crash (or an adversary) can
// corrupt, so for arbitrary bytes in both, OpenFile(resume) must
// either refuse with an error or open a store whose reads each yield
// intact data, zeros, or a typed *CorruptTrackError — never a panic
// and never silently delivered garbage. Both physical schedules are
// exercised: the synchronous store and the worker-backed one behind
// Prefetch, so fill-path error propagation is fuzzed too.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Fixed fuzz geometry — the seed corpus carries a matching geometry
// file so the interesting mutations happen past the open check.
const (
	fuzzD = 2
	fuzzB = 8
)

// seedStore builds a real store with three written tracks per drive
// and returns its geometry and drive-000 image bytes.
func seedStore(f *testing.F) (geom, drive0 []byte) {
	f.Helper()
	dir := f.TempDir()
	st, err := OpenFile(dir, Config{D: fuzzD, B: fuzzB}, false)
	if err != nil {
		f.Fatal(err)
	}
	src := make([]uint64, fuzzB)
	for round := 0; round < 3; round++ {
		reqs := make([]WriteReq, fuzzD)
		for d := 0; d < fuzzD; d++ {
			for i := range src {
				src[i] = uint64(round<<8 | d<<4 | i)
			}
			reqs[d] = WriteReq{Disk: d, Track: st.Alloc(d), Src: src}
		}
		if err := st.WriteOp(reqs); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		f.Fatal(err)
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	geom, err = os.ReadFile(filepath.Join(dir, "geometry"))
	if err != nil {
		f.Fatal(err)
	}
	drive0, err = os.ReadFile(filepath.Join(dir, "drive-000.dat"))
	if err != nil {
		f.Fatal(err)
	}
	return geom, drive0
}

func FuzzGeometry(f *testing.F) {
	geom, drive0 := seedStore(f)
	slotB := int((2 + fuzzB) * 8)
	f.Add(geom, drive0)
	f.Add([]byte{}, drive0)             // no geometry at all
	f.Add(geom[:8], drive0)             // truncated geometry
	f.Add(drive0[:24], drive0)          // wrong magic, right length
	f.Add(geom, drive0[:len(drive0)-9]) // torn final slot (mid-pwrite crash)
	flip := bytes.Clone(drive0)
	flip[slotB+16] ^= 0xFF // payload word of track 1: checksum must catch it
	f.Add(geom, flip)
	flip = bytes.Clone(drive0)
	flip[8] ^= 0x01 // stored checksum of track 0
	f.Add(geom, flip)
	wrongGeom := bytes.Clone(geom)
	binary.LittleEndian.PutUint64(wrongGeom[8:], 11) // claims D=11
	f.Add(wrongGeom, drive0)

	f.Fuzz(func(t *testing.T, geom, drive []byte) {
		for _, workers := range []int{0, fuzzD} {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "geometry"), geom, 0o666); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "drive-000.dat"), drive, 0o666); err != nil {
				t.Fatal(err)
			}
			cfg := Config{D: fuzzD, B: fuzzB}
			// The worker variant gets a small emulated latency so the
			// hostile bytes flow through the queued fill path — at zero
			// latency prefetch no-ops and reads go inline, which the
			// workers=0 variant already covers.
			var lat time.Duration
			if workers > 0 {
				lat = 50 * time.Microsecond
			}
			st, err := OpenFileOpts(dir, cfg, true, FileOptions{Workers: workers, AccessLatency: lat})
			if err != nil {
				continue // refused the directory — the safe outcome
			}
			// Make every track the fuzzed image could cover reachable, as
			// an adopted resume state would.
			tracks := len(drive)/slotB + 2
			st.mu.Lock()
			for d := range st.drives {
				st.drives[d].next = tracks
			}
			st.mu.Unlock()
			addrs := make([]Addr, 0, fuzzD*tracks)
			for d := 0; d < fuzzD; d++ {
				for tr := 0; tr < tracks; tr++ {
					addrs = append(addrs, Addr{Disk: d, Track: tr})
				}
			}
			st.Prefetch(addrs) // hostile bytes through the fill path too
			dst := make([]uint64, fuzzB)
			for _, a := range addrs {
				err := st.ReadOp([]ReadReq{{Disk: a.Disk, Track: a.Track, Dst: dst}})
				if err != nil {
					if _, ok := err.(*CorruptTrackError); !ok {
						t.Fatalf("workers=%d: ReadOp(%d/%d) returned untyped error %T: %v",
							workers, a.Disk, a.Track, err, err)
					}
				}
			}
			if err := st.Close(); err != nil {
				t.Fatalf("workers=%d: Close after fuzzed reads: %v", workers, err)
			}
		}
	})
}
