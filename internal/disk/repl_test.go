package disk

import (
	"reflect"
	"testing"
)

// TestTakeDirtySortedAndReset pins the replication contract on the
// dirty-track set: every logical mutation since the previous TakeDirty
// is listed exactly once, in deterministic (disk, track) order, and
// the call resets the set.
func TestTakeDirtySortedAndReset(t *testing.T) {
	const D, B = 2, 8
	f := newFileTest(t, D, B)
	t1 := f.Alloc(1)
	t0 := f.Alloc(0)
	if err := f.WriteOp([]WriteReq{
		{Disk: 1, Track: t1, Src: track(B, 10)},
		{Disk: 0, Track: t0, Src: track(B, 20)},
	}); err != nil {
		t.Fatal(err)
	}
	got := f.TakeDirty()
	want := []Addr{{Disk: 0, Track: t0}, {Disk: 1, Track: t1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeDirty = %v, want %v (sorted by disk then track)", got, want)
	}
	if again := f.TakeDirty(); len(again) != 0 {
		t.Fatalf("second TakeDirty = %v, want empty (set not reset)", again)
	}
	// Release is metadata-only (reads of free tracks return zeros by
	// the allocator) and must NOT dirty; the wipe that recycling does
	// at Alloc is what re-dirties the track.
	if err := f.Release(0, t0); err != nil {
		t.Fatal(err)
	}
	if got = f.TakeDirty(); len(got) != 0 {
		t.Fatalf("TakeDirty after a metadata-only release = %v, want empty", got)
	}
	if re := f.Alloc(0); re != t0 {
		t.Fatalf("allocator recycled track %d, want %d", re, t0)
	}
	got = f.TakeDirty()
	if !reflect.DeepEqual(got, []Addr{{Disk: 0, Track: t0}}) {
		t.Fatalf("TakeDirty after recycling = %v, want the wiped track", got)
	}
}

// TestExportImportTrackRoundtrip drives the raw side-effect-free path
// the replica store uses: export after Sync sees committed payloads,
// blank tracks export as nil, import seeds a fresh store bitwise, and
// a nil import wipes the slot.
func TestExportImportTrackRoundtrip(t *testing.T) {
	const D, B = 2, 8
	f := newFileTest(t, D, B)
	tr := f.Alloc(0)
	payload := track(B, 77)
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: tr, Src: payload}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	got, err := f.ExportTrack(0, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, payload) {
		t.Fatalf("ExportTrack = %v, want %v", got, payload)
	}
	if !reflect.DeepEqual(f.Stats(), stats) {
		t.Fatal("ExportTrack perturbed the model statistics; replication must be accounting-invisible")
	}
	// A never-written track within the bump mark is blank: nil, no error.
	t2 := f.Alloc(0)
	if blank, err := f.ExportTrack(0, t2); err != nil || blank != nil {
		t.Fatalf("blank track exported (%v, %v), want (nil, nil)", blank, err)
	}

	// Import into a second store and read it back through the front door.
	g := newFileTest(t, D, B)
	gt := g.Alloc(0) // raise the bump mark so the slot is in range
	if gt != tr {
		t.Fatalf("allocator gave track %d, want %d (fresh stores allocate identically)", gt, tr)
	}
	if err := g.Sync(); err != nil { // quiesce Alloc's queued wipe before the raw write
		t.Fatal(err)
	}
	if err := g.ImportTrack(0, tr, payload); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, B)
	if err := g.ReadOp([]ReadReq{{Disk: 0, Track: tr, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, payload) {
		t.Fatalf("imported track reads back %v, want %v", dst, payload)
	}
	// A nil import wipes the magic word: the track reads as blank again.
	if err := g.ImportTrack(0, tr, nil); err != nil {
		t.Fatal(err)
	}
	if blank, err := g.ExportTrack(0, tr); err != nil || blank != nil {
		t.Fatalf("wiped track exported (%v, %v), want (nil, nil)", blank, err)
	}
}

func TestExportImportTrackRejectsBadArgs(t *testing.T) {
	const D, B = 2, 8
	f := newFileTest(t, D, B)
	if _, err := f.ExportTrack(D, 0); err == nil {
		t.Error("ExportTrack beyond D accepted")
	}
	if _, err := f.ExportTrack(0, -1); err == nil {
		t.Error("ExportTrack with negative track accepted")
	}
	if err := f.ImportTrack(D, 0, track(B, 1)); err == nil {
		t.Error("ImportTrack beyond D accepted")
	}
	if err := f.ImportTrack(0, 0, track(B-1, 1)); err == nil {
		t.Error("ImportTrack with a short payload accepted")
	}
}
