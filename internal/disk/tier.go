package disk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"embsp/internal/mem"
	"embsp/internal/obs"
)

// Backend is the full store surface the engines (and the cluster
// runtime) need from a durable backend: a checkpointable Store plus
// wall-clock overlap observability and the raw track import/export
// hooks replication ships state through. *Array, *File, *Mapped and
// *Tier all implement it, which is what makes stores stackable: a
// Tier wraps any Backend — including another Tier — and is itself a
// Backend.
type Backend interface {
	Store
	// Overlap returns the store's wall-clock overlap counters. Pure
	// observability: model statistics are independent of them.
	Overlap() OverlapStats
	// ResetOverlap zeroes the overlap counters, leaving model
	// statistics alone.
	ResetOverlap()
	// TakeDirty returns (and resets) the set of tracks logically
	// mutated since the previous TakeDirty, sorted by drive then track.
	TakeDirty() []Addr
	// ExportTrack reads one track's committed payload raw — no model
	// accounting, no emulated latency. nil payload means blank.
	ExportTrack(d, t int) ([]uint64, error)
	// ImportTrack writes one track payload raw (nil payload wipes).
	ImportTrack(d, t int, payload []uint64) error
}

var (
	_ Backend = (*Array)(nil)
	_ Backend = (*File)(nil)
	_ Backend = (*Mapped)(nil)
	_ Backend = (*Tier)(nil)
)

// TierOptions configures one cache tier above a Backend.
type TierOptions struct {
	// CacheWords bounds the tier's staging cache in words (payload
	// words; one track costs B). 0 picks a small default of 4·D
	// tracks; negative means unbounded.
	CacheWords int64
	// AccessLatency emulates the access time of the tier's own medium:
	// every block served from the tier cache sleeps this long, the way
	// a scratchpad or NVMe device one level above the backend would.
	// Zero (the default) emulates nothing.
	AccessLatency time.Duration
	// FillWorkers is the number of background fill goroutines serving
	// Prefetch. 0 disables tier-level fills entirely: Prefetch then
	// forwards to the backend's own prefetcher (if any) and the tier
	// degrades to a pure accounting shim — the right choice when the
	// backend is page-cache fast, where staging a copy costs more than
	// the read it saves. Values above D are clamped to D.
	FillWorkers int
	// Tracer, when non-nil, records every fill as an "io"-category
	// "tier-fill" span labelled with TracePID and 1+drive.
	Tracer *obs.Tracer
	// TracePID labels the tier's spans with the owning processor id.
	TracePID int
	// Level labels the tier's statistics (0 = outermost).
	Level int
}

// TierStats is the wall-clock observability of one tier: cache traffic
// and capacity. Like OverlapStats these are outside the model
// contract — bitwise identity between tiered and flat runs is over
// everything except these counters.
type TierStats struct {
	// Level is the tier's position in the chain (0 = outermost).
	Level int `json:"level"`
	// CapWords is the configured cache capacity (0 = unbounded).
	CapWords int64 `json:"cap_words"`
	// Hits counts logical block reads served from the tier cache
	// (including reads that waited on an in-flight fill); Misses those
	// forwarded to the backend.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Fills counts blocks staged into the tier by Prefetch.
	Fills int64 `json:"fills"`
	// Drains counts blocks written through to the backend.
	Drains int64 `json:"drains"`
	// HighWords is the cache budget's high-water mark.
	HighWords int64 `json:"high_words"`
}

// tentry is one staged track in a tier's cache: a completed or
// in-flight prefetch fill. data is immutable once done; all other
// fields are guarded by Tier.mu. Entries are consumed on first read
// (pseudo-streaming: a staged group flows through once), dropped on
// any logical mutation of their track, and release their budget when
// done, unreachable and unreferenced.
type tentry struct {
	data  []uint64
	err   error
	done  bool
	gone  bool // no longer reachable from the cache map
	refs  int  // ReadOp waiters still aliasing data
	ready chan struct{}
	words int64
}

// Tier is a bounded intermediate store tier above any Backend: a
// track-granular, mem.Accountant-charged staging cache that streams
// group-sized working sets between the engine and a slower backend.
// It is the generalized memory hierarchy of ROADMAP item 5 (scratch →
// M → D disks, in the bulk-synchronous pseudo-streaming sense of
// Buurlage et al.): Prefetch stages the next group's blocks into the
// tier while the current group computes, reads consume staged blocks
// at tier speed, and writes pass through to the backend, whose own
// write-behind machinery drains them while the next group fills.
//
// The tier owns the model: all Stats — parallel I/O operation counts
// and the per-drive sequential/random access chains — are applied by
// the tier itself, synchronously at call time in request order, with
// exactly Array's semantics. The backend's Stats are a physical
// by-product (fills and forwarded traffic) and carry no model meaning
// under a tier; State() therefore composes the tier's Stats and access
// chains with the backend's allocator. The allocator itself is
// forwarded 1:1 (Alloc, Release, ReserveRot, AllocSnapshot/Restore go
// straight through), so layout decisions are byte-identical to a flat
// store's.
//
// Tier contents are cache, never durable state: every write goes
// through to the backend inside the WriteOp call, so the tier holds
// only clean copies of backend data. A crash loses nothing — resume
// re-opens the chain with an empty tier and re-fills on demand — and
// the commit journal's StoreState needs no tier fields beyond what a
// flat store records. Sync and durability are entirely the backend's.
//
// Error-path contract: a backend write failure surfaces at the next
// Sync or Close with accounting as if the write succeeded, and
// malformed request lists are rejected before any accounting — the
// same two documented deviations as the worker-backed File.
//
// All methods are safe for concurrent use, with File's contract:
// racing operations on the same track are ordered by whatever the
// race decides.
type Tier struct {
	be    Backend
	cfg   Config
	lat   time.Duration
	tr    *obs.Tracer
	tpid  int
	level int
	nfill int

	mu     sync.Mutex // guards last, stats, cache, counters, werr
	last   []int      // per-drive previously accessed track (-1 initially)
	stats  Stats
	cache  map[Addr]*tentry
	acct   *mem.Accountant
	ov     OverlapStats
	hits   int64
	misses int64
	fills  int64
	drains int64
	werr   error // first deferred write-through error, surfaced at Sync/Close

	fmu   sync.Mutex // guards the fill queue; acquired inside mu
	fcond *sync.Cond
	fq    []fillReq
	fstop bool

	wg      sync.WaitGroup
	running atomic.Int64
	peak    atomic.Int64
}

type fillReq struct {
	a Addr
	e *tentry
}

// NewTier wraps a backend with one cache tier. The backend must be
// otherwise unused: all traffic has to flow through the tier, or its
// cache could serve stale data.
func NewTier(be Backend, opt TierOptions) *Tier {
	cfg := be.Config()
	budget := opt.CacheWords
	if budget == 0 {
		budget = int64(4*cfg.D) * int64(cfg.B)
	}
	if budget < 0 {
		budget = 0 // mem: non-positive limit = unlimited
	}
	t := &Tier{
		be:    be,
		cfg:   cfg,
		lat:   opt.AccessLatency,
		tr:    opt.Tracer,
		tpid:  opt.TracePID,
		level: opt.Level,
		last:  make([]int, cfg.D),
		cache: make(map[Addr]*tentry),
		acct:  mem.NewAccountant(budget),
	}
	for d := range t.last {
		t.last[d] = -1
	}
	t.stats.PerDrive = make([]DriveStats, cfg.D)
	if opt.FillWorkers > 0 {
		t.nfill = min(opt.FillWorkers, cfg.D)
		t.fcond = sync.NewCond(&t.fmu)
		t.wg.Add(t.nfill)
		for i := 0; i < t.nfill; i++ {
			go t.fillWorker()
		}
	}
	return t
}

// Backend returns the store the tier is stacked on.
func (t *Tier) Backend() Backend { return t.be }

// Config returns the (shared) drive configuration.
func (t *Tier) Config() Config { return t.cfg }

// Level returns the tier's chain position label.
func (t *Tier) Level() int { return t.level }

func (t *Tier) touch(d, tr int) {
	if tr == t.last[d]+1 {
		t.stats.PerDrive[d].SeqAccesses++
	} else {
		t.stats.PerDrive[d].RandAccesses++
	}
	t.last[d] = tr
}

// retire releases e's budget once it is completed, unreachable from
// the cache map and unreferenced. Called under t.mu; idempotent.
func (t *Tier) retire(e *tentry) {
	if !e.done || !e.gone || e.refs > 0 {
		return
	}
	if e.words > 0 {
		t.acct.Release(e.words)
		e.words = 0
	}
	e.data = nil
}

// dropEntry unlinks the cache entry for a, if any (its track was
// logically mutated, freed or rolled back). Called under t.mu.
func (t *Tier) dropEntry(a Addr) {
	if e, ok := t.cache[a]; ok {
		delete(t.cache, a)
		e.gone = true
		t.retire(e)
	}
}

// dropAll empties the tier cache. Called under t.mu.
func (t *Tier) dropAll() {
	for a := range t.cache {
		t.dropEntry(a)
	}
}

// delayHits emulates the tier medium's access time for n blocks
// served from the cache, sequentially as a single device would pay
// them. Called without t.mu held.
func (t *Tier) delayHits(n int) {
	if t.lat > 0 && n > 0 {
		time.Sleep(t.lat * time.Duration(n))
	}
}

// ReadOp performs one parallel read with Array's validation,
// accounting and blank-track semantics, applied by the tier itself in
// request order. Blocks staged in the tier cache are served (and
// consumed) from it; the rest are forwarded to the backend as one
// batched read straight into the caller's buffers.
func (t *Tier) ReadOp(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(t.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	for _, r := range reqs {
		if len(r.Dst) != t.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), t.cfg.B)
		}
	}

	prev := make([]int, len(reqs))
	t.mu.Lock()
	if len(t.cache) == 0 {
		// Fast path: nothing is staged, so every request misses and the
		// caller's batch forwards to the backend as-is — no staging
		// bookkeeping, no miss list to build. This is the steady state
		// whenever the fill workers are off (the tier as a pure
		// accounting shim), and what keeps the tier within a few percent
		// of the flat store there (TestTierNoRegression).
		for i, r := range reqs {
			prev[i] = t.last[r.Disk]
			t.touch(r.Disk, r.Track)
			t.stats.PerDrive[r.Disk].BlocksRead++
		}
		t.misses += int64(len(reqs))
		t.ov.PrefetchMisses += int64(len(reqs))
		t.mu.Unlock()

		failIdx, failErr := len(reqs), error(nil)
		if err := t.be.ReadOp(reqs); err != nil {
			// Localize the failure as the slow path does, so the
			// rollback matches a flat store's partial accounting.
			failIdx, failErr = 0, err
			for j := range reqs {
				if e2 := t.be.ReadOp(reqs[j : j+1]); e2 != nil {
					failIdx, failErr = j, e2
					break
				}
			}
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if failErr != nil {
			for i := failIdx; i < len(reqs); i++ {
				t.last[reqs[i].Disk] = prev[i]
				t.stats.PerDrive[reqs[i].Disk].BlocksRead--
			}
			return failErr
		}
		t.stats.Ops++
		t.stats.ReadOps++
		t.stats.BlocksRead += int64(len(reqs))
		return nil
	}

	// Phase 1, under the lock: apply all model accounting in request
	// order (drives are pairwise distinct, so the rollback below is
	// exact), serve completed staged entries immediately, register on
	// in-flight fills, and collect the misses.
	type pending struct {
		i int
		e *tentry
	}
	var waits []pending
	var misses []ReadReq
	var missIdx []int
	served := 0
	for i, r := range reqs {
		prev[i] = t.last[r.Disk]
		t.touch(r.Disk, r.Track)
		t.stats.PerDrive[r.Disk].BlocksRead++
		a := Addr{Disk: r.Disk, Track: r.Track}
		if e, ok := t.cache[a]; ok {
			t.hits++
			t.ov.PrefetchHits++
			if e.done {
				// Consume the staged block: copy and unlink (a staged
				// group streams through the tier once).
				copy(r.Dst, e.data)
				served++
				t.dropEntry(a)
				continue
			}
			e.refs++
			waits = append(waits, pending{i, e})
			continue
		}
		t.misses++
		t.ov.PrefetchMisses++
		misses = append(misses, r)
		missIdx = append(missIdx, i)
	}
	t.mu.Unlock()

	// Phase 2, no lock: pay the tier's emulated access time for the
	// blocks it served, forward the misses to the backend in one
	// parallel op (their Dst buffers are the caller's — no staging
	// copy), and wait out in-flight fills.
	t.delayHits(served)
	failIdx, failErr := len(reqs), error(nil)
	if len(misses) > 0 {
		if err := t.be.ReadOp(misses); err != nil {
			// The batched error does not say which request failed;
			// replay the misses one by one to localize it, so the
			// rollback below matches what a flat store would have left
			// (requests before the failure accounted, the rest not).
			failIdx, failErr = missIdx[0], err
			for j, r := range misses {
				if e2 := t.be.ReadOp([]ReadReq{r}); e2 != nil {
					failIdx, failErr = missIdx[j], e2
					break
				}
			}
		}
	}
	var stall time.Duration
	nwaited := 0
	for _, w := range waits {
		select {
		case <-w.e.ready:
		default:
			t0 := time.Now()
			<-w.e.ready
			stall += time.Since(t0)
		}
		nwaited++
	}
	t.delayHits(nwaited)

	// Phase 3, under the lock again: deliver waited fills and either
	// commit the op counters or roll back from the first failure.
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range waits {
		if w.e.err != nil {
			if w.i < failIdx {
				failIdx, failErr = w.i, w.e.err
			}
		} else {
			copy(reqs[w.i].Dst, w.e.data)
		}
		w.e.refs--
		if !w.e.gone {
			a := Addr{Disk: reqs[w.i].Disk, Track: reqs[w.i].Track}
			if t.cache[a] == w.e {
				delete(t.cache, a)
			}
			w.e.gone = true
		}
		t.retire(w.e)
	}
	t.ov.StallNanos += stall.Nanoseconds()
	if failErr != nil {
		for i := failIdx; i < len(reqs); i++ {
			t.last[reqs[i].Disk] = prev[i]
			t.stats.PerDrive[reqs[i].Disk].BlocksRead--
		}
		return failErr
	}
	t.stats.Ops++
	t.stats.ReadOps++
	t.stats.BlocksRead += int64(len(reqs))
	return nil
}

// WriteOp performs one parallel write, accounted by the tier and
// written through to the backend inside the call: the tier never
// holds dirty data (that is the cache-not-state crash argument —
// see the type comment). Stale staged copies of the written tracks
// are invalidated first. A backend write error is deferred to the
// next Sync or Close, with accounting as if the write succeeded
// (File's documented deviation (1)).
func (t *Tier) WriteOp(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(t.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	for _, r := range reqs {
		if len(r.Src) != t.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), t.cfg.B)
		}
	}
	t.mu.Lock()
	for _, r := range reqs {
		t.touch(r.Disk, r.Track)
		t.stats.PerDrive[r.Disk].BlocksWritten++
		t.dropEntry(Addr{Disk: r.Disk, Track: r.Track})
	}
	t.stats.Ops++
	t.stats.WriteOps++
	t.stats.BlocksWritten += int64(len(reqs))
	t.drains += int64(len(reqs))
	t.mu.Unlock()
	if err := t.be.WriteOp(reqs); err != nil {
		t.mu.Lock()
		if t.werr == nil {
			t.werr = fmt.Errorf("disk: tier write-through failed: %w", err)
		}
		t.mu.Unlock()
	}
	return nil
}

// Alloc forwards to the backend (the single authoritative allocator
// of the chain) and invalidates any staged copy of the recycled
// track.
func (t *Tier) Alloc(d int) int {
	tr := t.be.Alloc(d)
	t.mu.Lock()
	t.dropEntry(Addr{Disk: d, Track: tr})
	t.mu.Unlock()
	return tr
}

// Release forwards to the backend and, on success, invalidates any
// staged copy of the freed track.
func (t *Tier) Release(d, tr int) error {
	if err := t.be.Release(d, tr); err != nil {
		return err
	}
	t.mu.Lock()
	t.dropEntry(Addr{Disk: d, Track: tr})
	t.mu.Unlock()
	return nil
}

// ReserveRot forwards to the backend and invalidates any staged
// copies in the reserved range (none can exist under the engines'
// allocation discipline; the sweep is defensive).
func (t *Tier) ReserveRot(nBlocks, rot int) Area {
	ar := t.be.ReserveRot(nBlocks, rot)
	per := (nBlocks + t.cfg.D - 1) / t.cfg.D
	t.mu.Lock()
	for a := range t.cache {
		if a.Track >= ar.base[a.Disk] && a.Track < ar.base[a.Disk]+per {
			t.dropEntry(a)
		}
	}
	t.mu.Unlock()
	return ar
}

// AllocSnapshot captures the backend's allocator state.
func (t *Tier) AllocSnapshot() AllocMark { return t.be.AllocSnapshot() }

// AllocRestore rolls the backend's allocator back and empties the
// tier cache: staged copies of rolled-back tracks (including fills
// still in flight) must not survive the rollback, and a wholesale
// drop is exact for a cache whose every entry is clean.
func (t *Tier) AllocRestore(m AllocMark) {
	t.be.AllocRestore(m)
	t.mu.Lock()
	t.dropAll()
	t.mu.Unlock()
}

// Stats returns a copy of the tier's model statistics — the
// authoritative accounting of the chain.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.PerDrive = append([]DriveStats(nil), t.stats.PerDrive...)
	return s
}

// ResetStats zeroes the tier's model statistics and forwards to the
// backend so its physical by-product counters stay aligned with the
// measured window. Overlap and tier counters are untouched.
func (t *Tier) ResetStats() {
	t.mu.Lock()
	t.stats = Stats{PerDrive: make([]DriveStats, t.cfg.D)}
	t.mu.Unlock()
	t.be.ResetStats()
}

// State composes the chain's checkpoint: the tier's model statistics
// and access chains over the backend's allocator. It is exactly what
// a flat store's State would hold for the same logical history, so
// journals written by tiered and flat runs are interchangeable.
func (t *Tier) State() StoreState {
	bs := t.be.State()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := StoreState{
		Stats: t.stats,
		Next:  bs.Next,
		Last:  make([]int, t.cfg.D),
		Free:  bs.Free,
	}
	s.Stats.PerDrive = append([]DriveStats(nil), t.stats.PerDrive...)
	copy(s.Last, t.last)
	return s
}

// AdoptState adopts a checkpoint into the chain: model statistics and
// access chains into the tier, the full state (allocator included)
// into the backend, and an emptied cache — adopted metadata must
// describe a tier with nothing staged.
func (t *Tier) AdoptState(s StoreState) error {
	if len(s.Next) != t.cfg.D || len(s.Last) != t.cfg.D || len(s.Free) != t.cfg.D {
		return fmt.Errorf("disk: AdoptState of %d/%d/%d-drive state into %d-drive tier", len(s.Next), len(s.Last), len(s.Free), t.cfg.D)
	}
	if err := t.be.AdoptState(s); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropAll()
	st := s.Stats
	st.PerDrive = append([]DriveStats(nil), s.Stats.PerDrive...)
	t.stats = st
	copy(t.last, s.Last)
	return nil
}

// Sync surfaces any deferred write-through error and makes the
// backend durable. The tier itself holds only clean data, so there is
// nothing of its own to flush.
func (t *Tier) Sync() error {
	t.mu.Lock()
	werr := t.werr
	t.mu.Unlock()
	if werr != nil {
		return werr
	}
	return t.be.Sync()
}

// Close stops the fill workers, fails any still-queued fills, and
// closes the backend. A deferred write-through error surfaces here if
// no Sync caught it first.
func (t *Tier) Close() error {
	if t.nfill > 0 {
		t.fmu.Lock()
		t.fstop = true
		t.fcond.Broadcast()
		t.fmu.Unlock()
		t.wg.Wait()
		t.nfill = 0
		// Fail leftover queued fills so no reader waits forever and
		// their budget is returned.
		t.fmu.Lock()
		left := t.fq
		t.fq = nil
		t.fmu.Unlock()
		t.mu.Lock()
		for _, fr := range left {
			fr.e.err = fmt.Errorf("disk: tier closed with fill of track %d on drive %d queued", fr.a.Track, fr.a.Disk)
			fr.e.done = true
			close(fr.e.ready)
			t.dropEntry(fr.a)
		}
		t.mu.Unlock()
	}
	t.mu.Lock()
	t.dropAll() // staged blocks die with the tier; return their budget
	werr := t.werr
	t.mu.Unlock()
	err := t.be.Close()
	if werr != nil {
		return werr
	}
	return err
}

// Overlap returns the chain's wall-clock overlap counters: the tier's
// own (fills issued, staged hits and misses, stalls, fill
// concurrency) folded with the backend's.
func (t *Tier) Overlap() OverlapStats {
	t.mu.Lock()
	o := t.ov
	t.mu.Unlock()
	o.ConcurrentPeak = t.peak.Load()
	o.Add(t.be.Overlap())
	return o
}

// ResetOverlap zeroes the chain's overlap counters.
func (t *Tier) ResetOverlap() {
	t.mu.Lock()
	t.ov = OverlapStats{}
	t.mu.Unlock()
	t.peak.Store(0)
	t.be.ResetOverlap()
}

// TierStats returns the tier's cache-traffic counters.
func (t *Tier) TierStats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TierStats{
		Level:     t.level,
		CapWords:  t.acct.Limit(),
		Hits:      t.hits,
		Misses:    t.misses,
		Fills:     t.fills,
		Drains:    t.drains,
		HighWords: t.acct.High(),
	}
}

// Tiers returns the cache-traffic counters of the whole chain,
// outermost first.
func (t *Tier) Tiers() []TierStats {
	out := []TierStats{t.TierStats()}
	if inner, ok := t.be.(*Tier); ok {
		out = append(out, inner.Tiers()...)
	}
	return out
}

// TakeDirty forwards to the backend: write-through means the backend
// sees every logical mutation, so its dirty set is the chain's.
func (t *Tier) TakeDirty() []Addr { return t.be.TakeDirty() }

// ExportTrack forwards to the backend (the tier holds only clean
// copies of backend data, so the backend's view is authoritative).
func (t *Tier) ExportTrack(d, tr int) ([]uint64, error) { return t.be.ExportTrack(d, tr) }

// ImportTrack invalidates any staged copy and forwards to the
// backend.
func (t *Tier) ImportTrack(d, tr int, payload []uint64) error {
	t.mu.Lock()
	t.dropEntry(Addr{Disk: d, Track: tr})
	t.mu.Unlock()
	return t.be.ImportTrack(d, tr, payload)
}

// Prefetch stages the given blocks into the tier cache on the fill
// workers, so a later ReadOp consumes them at tier speed. Purely
// physical: no model accounting, and a fill that cannot be admitted
// (budget exhausted, address out of range, already staged) is
// silently skipped — the later read simply misses. With no fill
// workers the hint is forwarded to the backend's own prefetcher
// unchanged; with fill workers the backend prefetcher still gets the
// empty hint that kicks its flush-behind machinery, but the staging
// itself happens here (one staging layer per chain link, not two for
// the same bytes).
func (t *Tier) Prefetch(addrs []Addr) {
	if t.nfill == 0 {
		if p, ok := t.be.(Prefetcher); ok {
			p.Prefetch(addrs)
		}
		return
	}
	if p, ok := t.be.(Prefetcher); ok {
		p.Prefetch(nil)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range addrs {
		if a.Disk < 0 || a.Disk >= t.cfg.D || a.Track < 0 {
			continue
		}
		if _, ok := t.cache[a]; ok {
			continue
		}
		words := int64(t.cfg.B)
		if t.acct.Grab(words) != nil {
			break
		}
		e := &tentry{words: words, ready: make(chan struct{})}
		t.cache[a] = e
		t.fills++
		t.ov.PrefetchIssued++
		t.fmu.Lock()
		t.fq = append(t.fq, fillReq{a: a, e: e})
		t.fcond.Signal()
		t.fmu.Unlock()
	}
}

// fillWorker serves queued fills: one backend read per staged block,
// concurrently with the engine and with other fills (the backend is
// safe for concurrent use, and fill traffic carries no model
// accounting the tier cares about).
func (t *Tier) fillWorker() {
	defer t.wg.Done()
	for {
		t.fmu.Lock()
		for len(t.fq) == 0 && !t.fstop {
			t.fcond.Wait()
		}
		if t.fstop {
			// Exit immediately; Close fails whatever is left queued.
			t.fmu.Unlock()
			return
		}
		fr := t.fq[0]
		t.fq = t.fq[1:]
		t.fmu.Unlock()
		t.runFill(fr)
	}
}

func (t *Tier) runFill(fr fillReq) {
	n := t.running.Add(1)
	for p := t.peak.Load(); n > p && !t.peak.CompareAndSwap(p, n); p = t.peak.Load() {
	}
	defer t.running.Add(-1)
	sp := t.tr.Begin(obs.CatIO, "tier-fill", t.tpid, 1+fr.a.Disk)
	data := make([]uint64, t.cfg.B)
	err := t.be.ReadOp([]ReadReq{{Disk: fr.a.Disk, Track: fr.a.Track, Dst: data}})
	sp.End()
	t.mu.Lock()
	e := fr.e
	e.data, e.err = data, err
	e.done = true
	close(e.ready)
	if err != nil && !e.gone {
		// A failed fill must not be served; the next read misses and
		// takes the error (if still real) from the backend directly.
		if t.cache[fr.a] == e {
			delete(t.cache, fr.a)
		}
		e.gone = true
	}
	t.retire(e)
	t.mu.Unlock()
}
