//go:build !linux

package disk

import "os"

// mmapSupported is false on platforms without the Linux mmap/msync
// surface the Mapped store relies on; OpenMapped fails cleanly and
// callers (see MmapSupported) fall back to the File store.
const mmapSupported = false

func mmapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap() }

func munmapFile([]byte) error { return errNoMmap() }

func msyncFile([]byte) error { return errNoMmap() }
