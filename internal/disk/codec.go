package disk

import (
	"encoding/binary"
	"unsafe"
)

// The slot codec moves words between track payloads ([]uint64) and
// their on-disk little-endian byte representation. On little-endian
// hosts an 8-byte-aligned byte slice can be reinterpreted as a word
// slice and moved with one copy; other hosts (or unaligned buffers,
// which Go's allocator never produces for slot-sized slices but mmap
// offsets could in principle) fall back to the portable per-word
// encoding. Both directions are drop-in equivalent: the bytes written
// and the words read are identical either way.

// hostLittleEndian reports whether the host's native word order
// matches the on-disk (little-endian) order.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// wordView reinterprets b as a []uint64 of n words without copying.
// ok is false when the reinterpretation would be incorrect (big-endian
// host) or unsafe (misaligned base, short buffer).
func wordView(b []byte, n int) (w []uint64, ok bool) {
	if !hostLittleEndian || n <= 0 || len(b) < 8*n {
		return nil, false
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
}

// getWords decodes len(dst) little-endian words from b into dst.
func getWords(dst []uint64, b []byte) {
	if w, ok := wordView(b, len(dst)); ok {
		copy(dst, w)
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// putWords encodes src as little-endian words into b.
func putWords(b []byte, src []uint64) {
	if w, ok := wordView(b, len(src)); ok {
		copy(w, src)
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
}
