package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"embsp/internal/mem"
	"embsp/internal/obs"
)

// File is a file-backed Store: one regular file per simulated drive,
// accessed with track-aligned pread/pwrite. It is the durable backend
// behind Options.StateDir — the direction Robillard's EM-BSP
// simulation takes, backing the simulated drives with real files — and
// it implements exactly the same model semantics and I/O accounting as
// the in-memory Array, so a durable run is bitwise identical to an
// in-memory one.
//
// On-disk layout: drive d is the sparse file drive-NNN.dat, whose
// track t occupies the fixed-size slot [t·slot, (t+1)·slot) with
//
//	word 0: track magic (marks the slot as ever written)
//	word 1: Checksum of the payload
//	words 2..B+1: the payload (B words)
//
// all little-endian. The per-track checksum detects torn writes: a
// slot whose payload does not match its checksum (e.g. after a crash
// mid-pwrite) reads back as a typed *CorruptTrackError instead of
// silently delivering garbage. A small geometry file pins (D, B) so a
// resume with a mismatched machine configuration fails up front.
//
// Allocator metadata (free lists, bump marks, access statistics) lives
// in memory and is persisted by the engines' commit journal, not by
// the store itself: reads of free or never-allocated tracks return
// zeros based on that metadata, so releasing a track needs no physical
// wipe — which keeps Release crash-safe (the freed track's bytes stay
// intact on disk until a commit record that no longer references the
// track is durable).
//
// # Physical concurrency
//
// With FileOptions.Workers > 0 the store runs that many I/O worker
// goroutines; drive d's physical transfers are served by worker
// d mod Workers, so every drive keeps strict FIFO order while distinct
// drives proceed concurrently. One ReadOp/WriteOp call fans its
// request list (at most one track per drive) out across the workers.
// Writes are absorbed by a write-behind cache and made durable
// asynchronously; Prefetch schedules reads ahead of need. Crucially,
// none of this is visible to the model: all accounting — Stats, the
// sequential/random access chains, allocation order — is applied
// synchronously at call time in request order, so a run with workers
// is bitwise identical to a run without them. Only the physical byte
// movement is rescheduled; the cache is bounded by a mem.Accountant
// (a soft high-water bound: an operation in flight may overshoot it by
// up to one block per drive, and writes that cannot grab budget fall
// back to stalling until their own transfers complete).
//
// When accesses are page-cache fast (AccessLatency zero), the worker
// round-trip costs more than the transfer it reschedules, so reads,
// writes and wipes whose track has no queued physical work short-cut
// to an inline pread/pwrite on the calling goroutine; with emulated
// latency everything queues so one op's transfers sleep on D workers
// concurrently. The fast path is invisible to the model (same
// accounting, same bytes) — it only removes scheduler overhead. The
// payload buffers that do flow through the queues are recycled
// through a free list (see blockPool); a per-entry refcount keeps a
// buffer out of the pool while any reader still aliases it.
//
// fsync work is coalesced: every physical byte-landing marks its
// drive as needing fsync, Sync flushes only marked drives, and a
// completed fsync (barrier or flush-behind) unmarks the drive unless
// new bytes landed while it ran — tracked with a per-drive epoch
// counter, so the durability contract is exactly as before: when Sync
// returns, every byte landed before the call is on disk.
//
// Two deliberate deviations exist on error paths, both documented
// here: (1) a physical write error (e.g. a full disk) surfaces at the
// next Sync or Close rather than from the WriteOp that issued it
// (inline fast-path writes included), with accounting as if the write
// succeeded; (2) with workers on, malformed request lists are
// rejected before any accounting, whereas the synchronous path (like
// Array) accounts requests preceding the malformed one. Neither is
// reachable from a correct engine.
//
// All methods are safe for concurrent use. Operations that race on the
// same drive serialize in lock order (their relative order, and hence
// the access statistics, are whatever the race decides — exactly the
// indeterminacy the caller asked for); operations on distinct drives
// are independent.
type File struct {
	cfg    Config
	dir    string
	files  []*os.File
	slotB  int64         // slot size in bytes: (2+B)*8
	nworks int           // I/O worker goroutines (0 = fully synchronous)
	lat    time.Duration // emulated per-access latency (FileOptions.AccessLatency)
	tr     *obs.Tracer   // physical-transfer spans; nil = no tracing
	tpid   int           // trace pid label (owning processor)

	mu       sync.Mutex // guards drives, stats, cache, acct, ov, werr
	drives   []drive    // tracks field unused; metadata only
	stats    Stats
	buf      []byte // scratch for one slot (synchronous + inline-write paths, under mu)
	cache    map[Addr]*centry
	acct     *mem.Accountant // cache budget in words, used under mu
	ov       OverlapStats
	dirty    []bool       // drives written since their last flush-behind
	flushing []bool       // drives with a background flush in flight
	needSync []bool       // drives with bytes landed since their last completed fsync
	wepoch   []int64      // bumped per byte-landing; guards needSync against racing fsyncs
	pend     map[Addr]int // queued-but-unlanded physical writes + wipes per address
	repl     map[Addr]struct{} // tracks logically mutated since TakeDirty (replication deltas)
	werr     error        // first deferred write error, surfaced at Sync/Close
	pool     *blockPool   // recycled payload buffers for the worker path
	scr      *bytePool    // recycled slot scratch for inline reads (outside mu)

	queues  []*ioQueue
	wg      sync.WaitGroup
	flushWG sync.WaitGroup // in-flight background flushes
	running atomic.Int64   // physical transfers executing right now
	peak    atomic.Int64   // high-water mark of running
}

// FileOptions tunes the physical I/O engine of a file-backed store.
// The zero value is the fully synchronous store (every transfer
// performed inside the ReadOp/WriteOp call), which is also what
// OpenFile gives.
type FileOptions struct {
	// Workers is the number of I/O worker goroutines. 0 keeps the
	// store synchronous; n > 0 serves drive d on worker d mod n (values
	// above D are clamped to D — extra workers would sit idle). Model
	// accounting is identical either way.
	Workers int
	// CacheWords bounds the prefetch + write-behind cache in words
	// (slot-sized units of B+2 words per track). 0 picks a small
	// default of 4·D tracks; negative means unbounded. Ignored when
	// Workers == 0.
	CacheWords int64
	// AccessLatency emulates the access time of one physical track
	// transfer: every pread/pwrite of a slot sleeps this long first.
	// It models the EM machine's independent physical drives on hosts
	// whose page cache hides real device latency, so schedule quality
	// (D-parallel access, I/O–compute overlap) becomes measurable.
	// Both the synchronous and the worker store pay the same per-access
	// cost; zero (the default) emulates nothing.
	AccessLatency time.Duration
	// Tracer, when non-nil, records every physical transfer (track
	// reads, writes, wipes, fsyncs) as an "io"-category span, labelled
	// with TracePID as the trace process id and 1+drive as the thread
	// id. Pure wall-clock observability: model accounting and results
	// are unaffected; nil (the default) costs nothing.
	Tracer *obs.Tracer
	// TracePID labels the store's spans with the owning processor id.
	TracePID int
}

const (
	trackMagic = 0x454d425354524b31 // "EMBSTRK1"
	geomMagic  = 0x454d424747454f4d // "EMBGGEOM"
)

// CorruptTrackError reports a track whose stored payload does not
// match its per-track checksum — a torn or corrupted write detected by
// the file-backed store.
type CorruptTrackError struct {
	Path  string
	Disk  int
	Track int
}

func (e *CorruptTrackError) Error() string {
	return fmt.Sprintf("disk: torn or corrupt track %d of drive %d (%s): stored checksum does not match payload", e.Track, e.Disk, e.Path)
}

// task kinds of the per-drive I/O queues.
const (
	taskFill    uint8 = iota // physical read into a cache entry
	taskWrite                // physical write of a cache entry's payload
	taskWipe                 // clear a slot's magic word (best-effort)
	taskBarrier              // completion fence: signal wg, move no bytes
)

type ioTask struct {
	kind  uint8
	d, t  int
	entry *centry
	wg    *sync.WaitGroup
}

// centry is one track in the physical cache: a prefetched (or
// in-flight) read, or a write-behind payload on its way to disk. data
// is immutable once done; all other fields are guarded by File.mu.
// data buffers come from the store's blockPool, so an entry is only
// retired to the pool once it is done, unreachable from the cache map
// and no reader holds a reference (refs counts ReadOp waiters between
// their registration and their delivery copy).
type centry struct {
	data  []uint64
	err   error
	write bool
	done  bool          // physical transfer completed
	gone  bool          // no longer reachable from the cache map
	refs  int           // ReadOp waiters still aliasing data
	ready chan struct{} // closed when done
	words int64         // budget words held (0 when none)
}

// ioQueue is one worker's task queue: a growable ring, so steady-state
// pushes and pops recycle the same backing array instead of appending
// a fresh slice element per physical transfer.
type ioQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []ioTask
	head int
	n    int
	stop bool
}

// push appends a task. Caller holds q.mu.
func (q *ioQueue) push(t ioTask) {
	if q.n == len(q.buf) {
		nb := make([]ioTask, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = nb, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

// pop removes the oldest task. Caller holds q.mu and has checked n > 0.
func (q *ioQueue) pop() ioTask {
	t := q.buf[q.head]
	q.buf[q.head] = ioTask{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t
}

// OpenFile opens (resume) or creates (fresh) a synchronous file-backed
// store under dir. A fresh open truncates any previous drive files and
// records the geometry; a resuming open requires the directory to
// exist with a matching geometry and leaves all track contents in
// place (the caller restores allocator metadata via AdoptState from
// its commit journal).
func OpenFile(dir string, cfg Config, resume bool) (*File, error) {
	return OpenFileOpts(dir, cfg, resume, FileOptions{})
}

// OpenFileOpts is OpenFile with physical-concurrency options.
func OpenFileOpts(dir string, cfg Config, resume bool, opt FileOptions) (*File, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	geomPath := filepath.Join(dir, "geometry")
	if resume {
		if err := checkGeometry(geomPath, cfg); err != nil {
			return nil, err
		}
	} else if err := writeGeometry(geomPath, cfg); err != nil {
		return nil, err
	}
	f := &File{
		cfg:    cfg,
		dir:    dir,
		files:  make([]*os.File, cfg.D),
		drives: make([]drive, cfg.D),
		slotB:  int64(2+cfg.B) * 8,
		lat:    opt.AccessLatency,
		tr:     opt.Tracer,
		tpid:   opt.TracePID,
		buf:    make([]byte, int64(2+cfg.B)*8),
		repl:   make(map[Addr]struct{}),
	}
	f.stats.PerDrive = make([]DriveStats, cfg.D)
	f.needSync = make([]bool, cfg.D)
	f.wepoch = make([]int64, cfg.D)
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	for d := 0; d < cfg.D; d++ {
		fh, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("drive-%03d.dat", d)), flags, 0o666)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.files[d] = fh
		f.drives[d].lastTrack = -1
	}
	if opt.Workers > 0 {
		f.nworks = min(opt.Workers, cfg.D)
		budget := opt.CacheWords
		if budget == 0 {
			budget = int64(4*cfg.D) * int64(cfg.B+2)
		}
		if budget < 0 {
			budget = 0 // mem: non-positive limit = unlimited
		}
		f.acct = mem.NewAccountant(budget)
		f.cache = make(map[Addr]*centry)
		f.dirty = make([]bool, cfg.D)
		f.flushing = make([]bool, cfg.D)
		f.pend = make(map[Addr]int)
		f.pool = newBlockPool(cfg.B, 8*cfg.D)
		f.scr = newBytePool(int(f.slotB), cfg.D)
		f.queues = make([]*ioQueue, f.nworks)
		for i := range f.queues {
			q := &ioQueue{}
			q.cond = sync.NewCond(&q.mu)
			f.queues[i] = q
		}
		f.wg.Add(f.nworks)
		for i := 0; i < f.nworks; i++ {
			go f.worker(f.queues[i], make([]byte, f.slotB))
		}
	}
	return f, nil
}

func writeGeometry(path string, cfg Config) error {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], geomMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(cfg.D))
	binary.LittleEndian.PutUint64(buf[16:], uint64(cfg.B))
	tmp := path + ".tmp"
	fh, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := fh.Write(buf); err != nil {
		fh.Close()
		return err
	}
	// The geometry must be durable before any journal record can refer
	// to this state directory: fsync the content before the rename makes
	// it visible, and the directory after, so a crash can never leave a
	// visible-but-empty (or torn) geometry file that a resume would
	// misread as a foreign directory.
	if err := fh.Sync(); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	dh, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = dh.Sync()
	if cerr := dh.Close(); err == nil {
		err = cerr
	}
	return err
}

func checkGeometry(path string, cfg Config) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("disk: state directory has no readable geometry (is this a previous run's -state-dir?): %w", err)
	}
	if len(buf) != 24 || binary.LittleEndian.Uint64(buf[0:]) != geomMagic {
		return fmt.Errorf("disk: %s is not a store geometry file", path)
	}
	d, b := int(binary.LittleEndian.Uint64(buf[8:])), int(binary.LittleEndian.Uint64(buf[16:]))
	if d != cfg.D || b != cfg.B {
		return fmt.Errorf("disk: state directory was written with D=%d B=%d, resuming run wants D=%d B=%d", d, b, cfg.D, cfg.B)
	}
	return nil
}

// Config returns the store configuration.
func (f *File) Config() Config { return f.cfg }

// Workers returns the number of I/O worker goroutines (0 when the
// store is synchronous).
func (f *File) Workers() int { return f.nworks }

// Stats returns a copy of the accumulated I/O statistics.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.PerDrive = append([]DriveStats(nil), f.stats.PerDrive...)
	return s
}

// ResetStats zeroes the model statistics. Stored data is untouched,
// and so are the wall-clock OverlapStats: overlap counters are
// observability, explicitly outside the model contract, so a mid-run
// model reset (the engines reset after the setup phase to split setup
// from run accounting) must not discard the overlap history
// accumulated so far. Use ResetOverlap to clear them explicitly.
func (f *File) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = Stats{PerDrive: make([]DriveStats, f.cfg.D)}
}

// ResetOverlap zeroes the wall-clock overlap counters (including the
// concurrency peak), leaving the model statistics alone — the
// observability-side complement of ResetStats.
func (f *File) ResetOverlap() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ov = OverlapStats{}
	f.peak.Store(0)
}

// Overlap returns a copy of the accumulated physical-overlap counters.
// They describe wall-clock behaviour only; model statistics are
// independent of them.
func (f *File) Overlap() OverlapStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	o := f.ov
	o.ConcurrentPeak = f.peak.Load()
	return o
}

func (f *File) touch(d, t int) {
	dr := &f.drives[d]
	if t == dr.lastTrack+1 {
		f.stats.PerDrive[d].SeqAccesses++
	} else {
		f.stats.PerDrive[d].RandAccesses++
	}
	dr.lastTrack = t
}

// blank reports whether the track currently reads as zeros by
// allocator metadata alone: released, or beyond the bump mark (which
// covers tracks dirtied by a crashed attempt and later rolled back).
func (f *File) blank(d, t int) bool {
	dr := &f.drives[d]
	if t >= dr.next {
		return true
	}
	_, free := dr.freeSet[t]
	return free
}

// delay emulates one physical track access when AccessLatency is set:
// the goroutine performing the transfer sleeps first, exactly as a
// drive head would spend its access time. The sleep happens on
// whichever goroutine moves the bytes, so the synchronous store pays
// D sequential access times per parallel op while the worker store
// pays them concurrently — the schedule difference the option exists
// to expose.
func (f *File) delay() {
	if f.lat > 0 {
		time.Sleep(f.lat)
	}
}

// readSlotBuf reads and decodes one slot through the given scratch
// buffer (one per worker, plus f.buf for the synchronous path).
func (f *File) readSlotBuf(buf []byte, d, t int, dst []uint64) error {
	sp := f.tr.Begin(obs.CatIO, "phys-read", f.tpid, 1+d)
	defer sp.End()
	f.delay()
	n, err := f.files[d].ReadAt(buf, int64(t)*f.slotB)
	if err != nil && err != io.EOF {
		return err
	}
	if n < 8 || binary.LittleEndian.Uint64(buf[0:]) != trackMagic {
		// Never physically written (or wiped by a rollback): blank.
		clear(dst)
		return nil
	}
	if n < int(f.slotB) {
		return &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	getWords(dst, buf[16:])
	if Checksum(dst) != binary.LittleEndian.Uint64(buf[8:]) {
		return &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	return nil
}

func (f *File) writeSlotBuf(buf []byte, d, t int, src []uint64) error {
	sp := f.tr.Begin(obs.CatIO, "phys-write", f.tpid, 1+d)
	defer sp.End()
	f.delay()
	binary.LittleEndian.PutUint64(buf[0:], trackMagic)
	binary.LittleEndian.PutUint64(buf[8:], Checksum(src))
	putWords(buf[16:], src)
	_, err := f.files[d].WriteAt(buf, int64(t)*f.slotB)
	return err
}

// wipeSlot clears a slot's magic word so the track reads as blank
// again (used by AllocRestore to discard an aborted attempt's writes).
func (f *File) wipeSlot(d, t int) error {
	sp := f.tr.Begin(obs.CatIO, "phys-wipe", f.tpid, 1+d)
	defer sp.End()
	f.delay()
	var zero [8]byte
	_, err := f.files[d].WriteAt(zero[:], int64(t)*f.slotB)
	return err
}

// --- worker machinery --------------------------------------------------

func (f *File) worker(q *ioQueue, scratch []byte) {
	defer f.wg.Done()
	for {
		q.mu.Lock()
		for q.n == 0 && !q.stop {
			q.cond.Wait()
		}
		if q.n == 0 {
			q.mu.Unlock()
			return
		}
		t := q.pop()
		q.mu.Unlock()
		f.runTask(t, scratch)
	}
}

func (f *File) runTask(t ioTask, scratch []byte) {
	if t.kind == taskBarrier {
		t.wg.Done()
		return
	}
	n := f.running.Add(1)
	for p := f.peak.Load(); n > p && !f.peak.CompareAndSwap(p, n); p = f.peak.Load() {
	}
	defer f.running.Add(-1)
	switch t.kind {
	case taskFill:
		data := f.pool.get()
		err := f.readSlotBuf(scratch, t.d, t.t, data)
		f.mu.Lock()
		e := t.entry
		e.data, e.err = data, err
		e.done = true
		close(e.ready)
		f.retire(e)
		f.mu.Unlock()
	case taskWrite:
		err := f.writeSlotBuf(scratch, t.d, t.t, t.entry.data)
		f.mu.Lock()
		a := Addr{Disk: t.d, Track: t.t}
		if f.pend[a]--; f.pend[a] == 0 {
			delete(f.pend, a)
		}
		f.markWritten(t.d)
		e := t.entry
		e.done = true
		if err != nil {
			e.err = err
			if f.werr == nil {
				f.werr = fmt.Errorf("disk: deferred write of track %d on drive %d failed: %w", t.t, t.d, err)
			}
		}
		close(e.ready)
		// Retire the write-behind entry: from here on a reader goes to
		// the drive file, which now holds the same bytes.
		if !e.gone {
			if f.cache[a] == e {
				delete(f.cache, a)
			}
			e.gone = true
		}
		f.retire(e)
		f.mu.Unlock()
	case taskWipe:
		// Best-effort, exactly like the synchronous path's wipes.
		_ = f.wipeSlot(t.d, t.t)
		f.mu.Lock()
		a := Addr{Disk: t.d, Track: t.t}
		if f.pend[a]--; f.pend[a] == 0 {
			delete(f.pend, a)
		}
		f.markWritten(t.d)
		f.mu.Unlock()
	}
}

// markWritten records that bytes just landed on drive d's file: the
// drive needs an fsync before the next durability point, and the epoch
// bump invalidates any fsync already in flight (its snapshot no longer
// covers these bytes). Called under f.mu, at the moment a pwrite
// completes — not when it is queued — so a cleared needSync flag
// always means "every landed byte is durable".
func (f *File) markWritten(d int) {
	f.needSync[d] = true
	f.wepoch[d]++
}

// retire releases e's budget and recycles its payload buffer once it
// is completed, unreachable from the cache map, and unreferenced by
// any reader. Called under f.mu; idempotent.
func (f *File) retire(e *centry) {
	if !e.done || !e.gone || e.refs > 0 {
		return
	}
	if e.words > 0 {
		f.acct.Release(e.words)
		e.words = 0
	}
	if e.data != nil {
		f.pool.put(e.data)
		e.data = nil
	}
}

// dropEntry unlinks the cache entry for a, if any (written track
// invalidated, freed, or rolled back). Called under f.mu.
func (f *File) dropEntry(a Addr) {
	if e, ok := f.cache[a]; ok {
		delete(f.cache, a)
		e.gone = true
		f.retire(e)
	}
}

// enqueue appends a physical task to its drive's queue. Must be called
// with f.mu held: the lock is what serializes metadata updates and
// queue order, keeping per-drive physical order identical to the
// accounting order.
func (f *File) enqueue(t ioTask) {
	q := f.queues[t.d%f.nworks]
	q.mu.Lock()
	q.push(t)
	q.cond.Signal()
	q.mu.Unlock()
}

// drain blocks until every physical task queued so far has completed.
// Must be called without f.mu held.
func (f *File) drain() {
	if f.nworks == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(f.queues))
	for _, q := range f.queues {
		q.mu.Lock()
		q.push(ioTask{kind: taskBarrier, wg: &wg})
		q.cond.Signal()
		q.mu.Unlock()
	}
	wg.Wait()
}

// Prefetch schedules asynchronous physical reads of the given blocks
// into the cache, so a later ReadOp finds their bytes already in
// memory. It is purely a physical hint: no model accounting happens,
// Stats are untouched, and a prefetch that cannot be satisfied (budget
// exhausted, address out of range, track blank or already cached) is
// silently skipped — the later logical read simply misses. Safe to
// call concurrently with operations; a no-op on a synchronous store.
//
// Prefetch doubles as the pipeline's group-boundary hint: every drive
// written since its last flush starts a background fsync on its own
// goroutine (flush-behind, off the task queues so fills never wait
// behind an fsync), making the drive durable while the caller computes
// so the next barrier Sync finds it mostly clean. This moves fsync
// latency — the dominant physical cost on a real filesystem — off the
// critical path without weakening the durability contract, which is
// still established only by Sync. At most one flush per drive is in
// flight; a flush error surfaces at the next Sync or Close like any
// deferred write error.
func (f *File) Prefetch(addrs []Addr) {
	if f.nworks == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for d, dirty := range f.dirty {
		if dirty && !f.flushing[d] {
			f.dirty[d] = false
			f.flushing[d] = true
			f.flushWG.Add(1)
			go f.bgFlush(d)
		}
	}
	// At zero emulated latency a fill is pure overhead: the engine's
	// eventual inline pread costs less than the worker round-trip,
	// budget traffic and cache bookkeeping of staging the same
	// page-cache-resident bytes. Prefetch then only kicks flush-behind
	// (above); with emulated latency the fills are the entire point.
	if f.lat == 0 {
		return
	}
	for _, a := range addrs {
		if a.Disk < 0 || a.Disk >= f.cfg.D || a.Track < 0 {
			continue
		}
		if f.blank(a.Disk, a.Track) {
			continue
		}
		if _, ok := f.cache[a]; ok {
			continue
		}
		words := int64(f.cfg.B + 2)
		if f.acct.Grab(words) != nil {
			break
		}
		e := &centry{words: words, ready: make(chan struct{})}
		f.cache[a] = e
		f.enqueue(ioTask{kind: taskFill, d: a.Disk, t: a.Track, entry: e})
		f.ov.PrefetchIssued++
	}
}

// bgFlush is one flush-behind fsync of drive d, running concurrently
// with the engine and the I/O workers. A successful flush clears the
// drive's needSync mark — letting the next barrier Sync skip the
// drive entirely — but only when no new bytes landed while the fsync
// ran: the epoch is snapshotted under the lock before the fsync, and
// any pwrite completing after that snapshot bumps it, so a stale
// snapshot can never hide un-durable bytes from Sync.
func (f *File) bgFlush(d int) {
	defer f.flushWG.Done()
	f.mu.Lock()
	epoch := f.wepoch[d]
	f.mu.Unlock()
	sp := f.tr.Begin(obs.CatIO, "phys-fsync", f.tpid, 1+d)
	err := f.files[d].Sync()
	sp.End()
	f.mu.Lock()
	f.flushing[d] = false
	if err == nil && f.wepoch[d] == epoch {
		f.needSync[d] = false
	}
	if err != nil && f.werr == nil {
		f.werr = fmt.Errorf("disk: flush-behind of drive %d failed: %w", d, err)
	}
	f.mu.Unlock()
}

// ReadOp performs one parallel read, at most one track per drive, with
// the same validation, accounting and blank-track semantics as
// Array.ReadOp.
func (f *File) ReadOp(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(f.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	if f.nworks == 0 {
		return f.readSync(reqs)
	}
	for _, r := range reqs {
		if len(r.Dst) != f.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), f.cfg.B)
		}
	}

	// Phase 1, under the lock: apply all model accounting in request
	// order (the drives are pairwise distinct, so per-request rollback
	// below is exact), serve blank tracks and write-behind hits
	// immediately, and pick how to serve everything else. When accesses
	// are page-cache fast (no emulated latency), a miss whose track has
	// no queued wipe reads the drive file directly on this goroutine
	// (an uncached track has no write in flight — a queued write is
	// visible in the cache until its bytes land — so the file holds
	// current data and the inline pread skips a worker round-trip).
	// With per-access latency the opposite holds: the misses of one op
	// should sleep on D workers concurrently, not sequentially here, so
	// they queue. Misses shadowed by a pending wipe always queue a fill
	// behind it in drive FIFO order.
	type pending struct {
		i int
		e *centry
	}
	var waits []pending
	var inline []int
	prev := make([]int, len(reqs))
	f.mu.Lock()
	for i, r := range reqs {
		prev[i] = f.drives[r.Disk].lastTrack
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksRead++
		if f.blank(r.Disk, r.Track) {
			clear(r.Dst)
			continue
		}
		if e, ok := f.cache[Addr{Disk: r.Disk, Track: r.Track}]; ok {
			f.ov.PrefetchHits++
			if e.write {
				// Read-your-write: the payload is the cached data,
				// regardless of whether the physical write landed yet.
				copy(r.Dst, e.data)
				continue
			}
			e.refs++
			waits = append(waits, pending{i, e})
			continue
		}
		f.ov.PrefetchMisses++
		if f.lat == 0 && f.pend[Addr{Disk: r.Disk, Track: r.Track}] == 0 {
			inline = append(inline, i)
			continue
		}
		// A private fill (never in the map): queued in drive FIFO
		// order, which in particular sequences it behind any pending
		// wipe or write so it delivers current bytes.
		e := &centry{gone: true, refs: 1, ready: make(chan struct{})}
		f.enqueue(ioTask{kind: taskFill, d: r.Disk, t: r.Track, entry: e})
		waits = append(waits, pending{i, e})
	}
	f.mu.Unlock()

	// Phase 2, no lock: inline misses read the drive files directly;
	// then wait for any queued transfers.
	inlineErr := make(map[int]error, len(inline))
	if len(inline) > 0 {
		scratch := f.scr.get()
		for _, i := range inline {
			if err := f.readSlotBuf(scratch, reqs[i].Disk, reqs[i].Track, reqs[i].Dst); err != nil {
				inlineErr[i] = err
			}
		}
		f.scr.put(scratch)
	}
	var stall time.Duration
	for _, w := range waits {
		select {
		case <-w.e.ready:
		default:
			t0 := time.Now()
			<-w.e.ready
			stall += time.Since(t0)
		}
	}

	// Phase 3, under the lock again: deliver data, consume prefetched
	// entries, and either commit the operation counters or — on the
	// first failing request — roll accounting back to what the
	// synchronous path would have left behind (requests before the
	// failure accounted, the rest untouched).
	f.mu.Lock()
	defer f.mu.Unlock()
	failIdx, failErr := len(reqs), error(nil)
	for i, err := range inlineErr {
		if i < failIdx {
			failIdx, failErr = i, err
		}
	}
	for _, w := range waits {
		if w.e.err != nil {
			if w.i < failIdx {
				failIdx, failErr = w.i, w.e.err
			}
			continue
		}
		copy(reqs[w.i].Dst, w.e.data)
	}
	// Delivery copies done: release the references taken in phase 1,
	// unlink consumed entries, and retire whatever nobody needs — the
	// refcount is what keeps the pooled payload buffer alive between a
	// concurrent reader's registration and its copy above.
	for _, w := range waits {
		w.e.refs--
		if !w.e.gone {
			a := Addr{Disk: reqs[w.i].Disk, Track: reqs[w.i].Track}
			if f.cache[a] == w.e {
				delete(f.cache, a)
			}
			w.e.gone = true
		}
		f.retire(w.e)
	}
	f.ov.StallNanos += stall.Nanoseconds()
	if failErr != nil {
		for i := failIdx; i < len(reqs); i++ {
			f.drives[reqs[i].Disk].lastTrack = prev[i]
			f.stats.PerDrive[reqs[i].Disk].BlocksRead--
		}
		return failErr
	}
	f.stats.Ops++
	f.stats.ReadOps++
	f.stats.BlocksRead += int64(len(reqs))
	return nil
}

// readSync is the workerless read path, identical to the pre-worker
// store (and to Array.ReadOp's semantics).
func (f *File) readSync(reqs []ReadReq) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range reqs {
		if len(r.Dst) != f.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), f.cfg.B)
		}
		if f.blank(r.Disk, r.Track) {
			clear(r.Dst)
		} else if err := f.readSlotBuf(f.buf, r.Disk, r.Track, r.Dst); err != nil {
			return err
		}
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksRead++
	}
	f.stats.Ops++
	f.stats.ReadOps++
	f.stats.BlocksRead += int64(len(reqs))
	return nil
}

// WriteOp performs one parallel write, at most one track per drive.
// With workers, the payload is captured into the write-behind cache
// and the physical write completes asynchronously (read-your-writes is
// preserved via the cache; durability is established by Sync).
func (f *File) WriteOp(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(f.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	if f.nworks == 0 {
		return f.writeSync(reqs)
	}
	for _, r := range reqs {
		if len(r.Src) != f.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), f.cfg.B)
		}
	}
	var mine []*centry
	stalled := false
	queued := int64(0)
	f.mu.Lock()
	for _, r := range reqs {
		a := Addr{Disk: r.Disk, Track: r.Track}
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksWritten++
		f.dirty[r.Disk] = true
		f.repl[a] = struct{}{}
		if f.lat == 0 && f.pend[a] == 0 {
			// Page-cache-fast write with no queued physical work on the
			// track: pwrite inline, skipping the capture copy and the
			// worker round-trip. A failure is deferred to Sync/Close
			// exactly like a queued write's (deviation (1) above).
			f.dropEntry(a)
			if err := f.writeSlotBuf(f.buf, r.Disk, r.Track, r.Src); err != nil && f.werr == nil {
				f.werr = fmt.Errorf("disk: write of track %d on drive %d failed: %w", r.Track, r.Disk, err)
			}
			f.markWritten(r.Disk)
			continue
		}
		words := int64(f.cfg.B + 2)
		data := f.pool.get()
		copy(data, r.Src)
		e := &centry{data: data, write: true, words: words, ready: make(chan struct{})}
		if f.acct.Grab(words) != nil {
			// Budget exhausted: the write still goes through the queue
			// (ordering!), but this call stalls until its own transfers
			// land, which bounds the backlog.
			e.words = 0
			stalled = true
		}
		f.dropEntry(a)
		f.cache[a] = e
		f.pend[a]++
		f.enqueue(ioTask{kind: taskWrite, d: r.Disk, t: r.Track, entry: e})
		queued++
		mine = append(mine, e)
	}
	f.stats.Ops++
	f.stats.WriteOps++
	f.stats.BlocksWritten += int64(len(reqs))
	if !stalled {
		f.ov.AsyncWrites += queued
	}
	f.mu.Unlock()
	if stalled {
		t0 := time.Now()
		for _, e := range mine {
			<-e.ready
		}
		d := time.Since(t0)
		f.mu.Lock()
		f.ov.StallNanos += d.Nanoseconds()
		f.mu.Unlock()
	}
	return nil
}

// writeSync is the workerless write path, identical to the pre-worker
// store.
func (f *File) writeSync(reqs []WriteReq) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range reqs {
		if len(r.Src) != f.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), f.cfg.B)
		}
		err := f.writeSlotBuf(f.buf, r.Disk, r.Track, r.Src)
		f.markWritten(r.Disk) // even on error: bytes may have partially landed
		if err != nil {
			return err
		}
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksWritten++
		f.repl[Addr{Disk: r.Disk, Track: r.Track}] = struct{}{}
	}
	f.stats.Ops++
	f.stats.WriteOps++
	f.stats.BlocksWritten += int64(len(reqs))
	return nil
}

// Alloc returns a free track on drive d, reusing freed tracks before
// extending the drive — identical allocation order to Array.Alloc, so
// durable and in-memory runs lay data out identically.
func (f *File) Alloc(d int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	dr := &f.drives[d]
	var t int
	if n := len(dr.freeList); n > 0 {
		t = dr.freeList[n-1]
		dr.freeList = dr.freeList[:n-1]
		delete(dr.freeSet, t)
	} else {
		t = dr.next
		dr.next++
	}
	// Array clears a track at Release; File defers the clear to here so
	// releases stay metadata-only (crash safety). A track being handed
	// out is free in the last durable commit record, so wiping its magic
	// word destroys no committed data — and makes recycled tracks (and
	// slots holding stale bytes from a crashed run) read blank, exactly
	// like Array. Best-effort, like AllocRestore's wipes.
	f.wipeTrack(d, t)
	return t
}

// wipeTrack invalidates any cache entry for (d, t) and clears the
// slot's magic word — through the drive queue when workers are on and
// the track has queued physical work (the wipe must keep its place in
// the drive's FIFO order behind it); otherwise inline, which at zero
// latency is both cheaper than a worker round-trip and what keeps the
// queues idle on the fast path. Called under f.mu.
func (f *File) wipeTrack(d, t int) {
	a := Addr{Disk: d, Track: t}
	f.repl[a] = struct{}{}
	if f.nworks == 0 {
		f.wipeSlot(d, t) //nolint:errcheck
		f.markWritten(d)
		return
	}
	f.dropEntry(a)
	if f.lat == 0 && f.pend[a] == 0 {
		f.wipeSlot(d, t) //nolint:errcheck
		f.markWritten(d)
		return
	}
	f.pend[a]++
	f.enqueue(ioTask{kind: taskWipe, d: d, t: t})
}

// Release returns a track to the drive's free list. The release is
// metadata-only (reads of free tracks return zeros by the allocator,
// not by a physical wipe), which is what makes the engines' commit
// ordering crash-safe: data referenced by the last durable commit
// record is never physically destroyed before the next record lands.
func (f *File) Release(d, t int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 || d >= f.cfg.D {
		return fmt.Errorf("disk: Release drive %d out of range [0,%d)", d, f.cfg.D)
	}
	dr := &f.drives[d]
	if t < 0 || t >= dr.next {
		return fmt.Errorf("disk: Release track %d on drive %d outside allocated range [0,%d)", t, d, dr.next)
	}
	if _, free := dr.freeSet[t]; free {
		return fmt.Errorf("disk: double release of track %d on drive %d", t, d)
	}
	if dr.freeSet == nil {
		dr.freeSet = make(map[int]struct{})
	}
	dr.freeSet[t] = struct{}{}
	dr.freeList = append(dr.freeList, t)
	// A freed track reads as zeros from here on; drop any cached copy
	// so the budget is returned (the physical bytes may stay).
	if f.nworks > 0 {
		f.dropEntry(Addr{Disk: d, Track: t})
	}
	return nil
}

// ReserveRot allocates a standard-consecutive-format area with the
// given drive rotation, exactly as Array.ReserveRot does.
func (f *File) ReserveRot(nBlocks, rot int) Area {
	f.mu.Lock()
	defer f.mu.Unlock()
	if nBlocks < 0 {
		panic("disk: Reserve with negative size")
	}
	per := (nBlocks + f.cfg.D - 1) / f.cfg.D
	ar := Area{d: f.cfg.D, n: nBlocks, rot: ((rot % f.cfg.D) + f.cfg.D) % f.cfg.D, base: make([]int, f.cfg.D)}
	for d := range f.drives {
		dr := &f.drives[d]
		ar.base[d] = dr.next
		dr.next += per
		// Reserved slots sit beyond the last committed high-water mark,
		// so they may hold stale (even torn) bytes from a crashed
		// attempt; wipe their magic words so ragged never-written slots
		// read blank, as on Array. See Alloc.
		for t := ar.base[d]; t < dr.next; t++ {
			f.wipeTrack(d, t)
		}
	}
	return ar
}

// AllocSnapshot captures the allocator state for a later AllocRestore.
func (f *File) AllocSnapshot() AllocMark {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := AllocMark{next: make([]int, f.cfg.D), free: make([][]int, f.cfg.D)}
	for d := range f.drives {
		m.next[d] = f.drives[d].next
		m.free[d] = append([]int(nil), f.drives[d].freeList...)
	}
	return m
}

// AllocRestore rolls the allocator back to a snapshot and wipes the
// magic word of every track the rollback unallocates, mirroring
// Array.AllocRestore's clearing semantics. The wiped tracks are, by
// the engines' checkpoint discipline, never referenced by committed
// state, so the wipe is safe at any crash point. The wipes keep their
// FIFO position behind any of the aborted attempt's still-queued
// writes, so the rollback is correct even mid-pipeline.
func (f *File) AllocRestore(m AllocMark) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for d := range f.drives {
		dr := &f.drives[d]
		for t := m.next[d]; t < dr.next; t++ {
			// Best-effort wipe: a failed wipe only leaves stale bytes
			// that metadata already reads as blank.
			f.wipeTrack(d, t)
		}
		dr.next = m.next[d]
		dr.freeList = append(dr.freeList[:0], m.free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			f.wipeTrack(d, t)
			dr.freeSet[t] = struct{}{}
		}
	}
}

// State captures the store's persistent metadata.
func (f *File) State() StoreState {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := StoreState{
		Stats: f.stats,
		Next:  make([]int, f.cfg.D),
		Last:  make([]int, f.cfg.D),
		Free:  make([][]int, f.cfg.D),
	}
	s.Stats.PerDrive = append([]DriveStats(nil), f.stats.PerDrive...)
	for d := range f.drives {
		s.Next[d] = f.drives[d].next
		s.Last[d] = f.drives[d].lastTrack
		s.Free[d] = append([]int(nil), f.drives[d].freeList...)
	}
	return s
}

// AdoptState replaces the store's metadata with a captured State — the
// resume path. Track contents stay as the drive files hold them; any
// bytes written after the adopted state was captured are unreachable
// (free or beyond the bump mark) and read as zeros. Queued physical
// work is drained and the cache cleared first: adopted metadata must
// describe quiesced drives.
func (f *File) AdoptState(s StoreState) error {
	f.drain()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(s.Next) != f.cfg.D || len(s.Last) != f.cfg.D || len(s.Free) != f.cfg.D {
		return fmt.Errorf("disk: AdoptState of %d/%d/%d-drive state into %d-drive store", len(s.Next), len(s.Last), len(s.Free), f.cfg.D)
	}
	for a := range f.cache {
		f.dropEntry(a)
	}
	st := s.Stats
	st.PerDrive = append([]DriveStats(nil), s.Stats.PerDrive...)
	f.stats = st
	for d := range f.drives {
		dr := &f.drives[d]
		dr.next = s.Next[d]
		dr.lastTrack = s.Last[d]
		dr.freeList = append([]int(nil), s.Free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			dr.freeSet[t] = struct{}{}
		}
	}
	return nil
}

// Sync drains all queued physical work and fsyncs every drive file
// with un-durable landed bytes. The engines call it before each
// journal append: write-ahead discipline requires the data a commit
// record references to be durable before the record itself. Any
// deferred write error surfaces here. With workers on, the per-drive
// fsyncs run concurrently — on a real filesystem the fsync is by far
// the slowest physical operation, and D independent drives can flush
// in the time of one. The fsyncs are also coalesced: a drive whose
// needSync mark is clear (nothing landed since its last completed
// fsync, barrier or flush-behind) is skipped, so a pipelined run
// whose flush-behind kept up pays nothing here and a serial run pays
// one fsync per dirtied drive per barrier instead of one per drive.
// The durability contract is unchanged: when Sync returns, every byte
// landed before the call is on disk.
func (f *File) Sync() error {
	t0 := time.Now()
	f.drain()
	if f.nworks > 0 {
		f.mu.Lock()
		err := f.werr
		f.mu.Unlock()
		if err != nil {
			f.mu.Lock()
			f.ov.StallNanos += time.Since(t0).Nanoseconds()
			f.mu.Unlock()
			return err
		}
	}
	// Snapshot which drives need an fsync and at which write epoch;
	// after the fsyncs, clear only marks whose epoch is unchanged (a
	// racing writer's bytes stay marked for the next Sync).
	f.mu.Lock()
	epochs := make([]int64, f.cfg.D)
	for d := range epochs {
		epochs[d] = -1
		if f.files[d] != nil && f.needSync[d] {
			epochs[d] = f.wepoch[d]
		}
	}
	f.mu.Unlock()
	errs := make([]error, f.cfg.D)
	if f.nworks > 0 {
		var wg sync.WaitGroup
		for d := range epochs {
			if epochs[d] < 0 {
				continue
			}
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				n := f.running.Add(1)
				for p := f.peak.Load(); n > p && !f.peak.CompareAndSwap(p, n); p = f.peak.Load() {
				}
				defer f.running.Add(-1)
				sp := f.tr.Begin(obs.CatIO, "phys-fsync", f.tpid, 1+d)
				errs[d] = f.files[d].Sync()
				sp.End()
			}(d)
		}
		wg.Wait()
	} else {
		for d := range epochs {
			if epochs[d] < 0 {
				continue
			}
			sp := f.tr.Begin(obs.CatIO, "phys-fsync", f.tpid, 1+d)
			errs[d] = f.files[d].Sync()
			sp.End()
		}
	}
	f.mu.Lock()
	for d := range epochs {
		if epochs[d] >= 0 && errs[d] == nil && f.wepoch[d] == epochs[d] {
			f.needSync[d] = false
		}
	}
	if f.nworks > 0 {
		f.ov.StallNanos += time.Since(t0).Nanoseconds()
	}
	f.mu.Unlock()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close drains and stops the I/O workers, waits out any background
// flush, and closes every drive file.
func (f *File) Close() error {
	var first error
	if f.nworks > 0 {
		f.drain()
		f.flushWG.Wait()
		for _, q := range f.queues {
			q.mu.Lock()
			q.stop = true
			q.cond.Signal()
			q.mu.Unlock()
		}
		f.wg.Wait()
		f.nworks = 0
		f.mu.Lock()
		first = f.werr
		f.mu.Unlock()
	}
	for i, fh := range f.files {
		if fh == nil {
			continue
		}
		if err := fh.Close(); err != nil && first == nil {
			first = err
		}
		f.files[i] = nil
	}
	return first
}
