package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is a file-backed Store: one regular file per simulated drive,
// accessed with track-aligned pread/pwrite. It is the durable backend
// behind Options.StateDir — the direction Robillard's EM-BSP
// simulation takes, backing the simulated drives with real files — and
// it implements exactly the same model semantics and I/O accounting as
// the in-memory Array, so a durable run is bitwise identical to an
// in-memory one.
//
// On-disk layout: drive d is the sparse file drive-NNN.dat, whose
// track t occupies the fixed-size slot [t·slot, (t+1)·slot) with
//
//	word 0: track magic (marks the slot as ever written)
//	word 1: Checksum of the payload
//	words 2..B+1: the payload (B words)
//
// all little-endian. The per-track checksum detects torn writes: a
// slot whose payload does not match its checksum (e.g. after a crash
// mid-pwrite) reads back as a typed *CorruptTrackError instead of
// silently delivering garbage. A small geometry file pins (D, B) so a
// resume with a mismatched machine configuration fails up front.
//
// Allocator metadata (free lists, bump marks, access statistics) lives
// in memory and is persisted by the engines' commit journal, not by
// the store itself: reads of free or never-allocated tracks return
// zeros based on that metadata, so releasing a track needs no physical
// wipe — which keeps Release crash-safe (the freed track's bytes stay
// intact on disk until a commit record that no longer references the
// track is durable).
//
// File is not safe for concurrent use, exactly like Array: each
// simulated processor owns its store. Nor does it lock the directory;
// running two simulations over one state directory is undefined.
type File struct {
	cfg    Config
	dir    string
	files  []*os.File
	drives []drive // tracks field unused; metadata only
	stats  Stats
	slotB  int64  // slot size in bytes: (2+B)*8
	buf    []byte // scratch for one slot
}

const (
	trackMagic = 0x454d425354524b31 // "EMBSTRK1"
	geomMagic  = 0x454d424747454f4d // "EMBGGEOM"
)

// CorruptTrackError reports a track whose stored payload does not
// match its per-track checksum — a torn or corrupted write detected by
// the file-backed store.
type CorruptTrackError struct {
	Path  string
	Disk  int
	Track int
}

func (e *CorruptTrackError) Error() string {
	return fmt.Sprintf("disk: torn or corrupt track %d of drive %d (%s): stored checksum does not match payload", e.Track, e.Disk, e.Path)
}

// OpenFile opens (resume) or creates (fresh) a file-backed store under
// dir. A fresh open truncates any previous drive files and records the
// geometry; a resuming open requires the directory to exist with a
// matching geometry and leaves all track contents in place (the caller
// restores allocator metadata via AdoptState from its commit journal).
func OpenFile(dir string, cfg Config, resume bool) (*File, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	geomPath := filepath.Join(dir, "geometry")
	if resume {
		if err := checkGeometry(geomPath, cfg); err != nil {
			return nil, err
		}
	} else if err := writeGeometry(geomPath, cfg); err != nil {
		return nil, err
	}
	f := &File{
		cfg:    cfg,
		dir:    dir,
		files:  make([]*os.File, cfg.D),
		drives: make([]drive, cfg.D),
		slotB:  int64(2+cfg.B) * 8,
		buf:    make([]byte, int64(2+cfg.B)*8),
	}
	f.stats.PerDrive = make([]DriveStats, cfg.D)
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	for d := 0; d < cfg.D; d++ {
		fh, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("drive-%03d.dat", d)), flags, 0o666)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.files[d] = fh
		f.drives[d].lastTrack = -1
	}
	return f, nil
}

func writeGeometry(path string, cfg Config) error {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], geomMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(cfg.D))
	binary.LittleEndian.PutUint64(buf[16:], uint64(cfg.B))
	tmp := path + ".tmp"
	fh, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := fh.Write(buf); err != nil {
		fh.Close()
		return err
	}
	// The geometry must be durable before any journal record can refer
	// to this state directory: fsync the content before the rename makes
	// it visible, and the directory after, so a crash can never leave a
	// visible-but-empty (or torn) geometry file that a resume would
	// misread as a foreign directory.
	if err := fh.Sync(); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	dh, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = dh.Sync()
	if cerr := dh.Close(); err == nil {
		err = cerr
	}
	return err
}

func checkGeometry(path string, cfg Config) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("disk: state directory has no readable geometry (is this a previous run's -state-dir?): %w", err)
	}
	if len(buf) != 24 || binary.LittleEndian.Uint64(buf[0:]) != geomMagic {
		return fmt.Errorf("disk: %s is not a store geometry file", path)
	}
	d, b := int(binary.LittleEndian.Uint64(buf[8:])), int(binary.LittleEndian.Uint64(buf[16:]))
	if d != cfg.D || b != cfg.B {
		return fmt.Errorf("disk: state directory was written with D=%d B=%d, resuming run wants D=%d B=%d", d, b, cfg.D, cfg.B)
	}
	return nil
}

// Config returns the store configuration.
func (f *File) Config() Config { return f.cfg }

// Stats returns a copy of the accumulated I/O statistics.
func (f *File) Stats() Stats {
	s := f.stats
	s.PerDrive = append([]DriveStats(nil), f.stats.PerDrive...)
	return s
}

// ResetStats zeroes the statistics. Stored data is untouched.
func (f *File) ResetStats() {
	f.stats = Stats{PerDrive: make([]DriveStats, f.cfg.D)}
}

func (f *File) touch(d, t int) {
	dr := &f.drives[d]
	if t == dr.lastTrack+1 {
		f.stats.PerDrive[d].SeqAccesses++
	} else {
		f.stats.PerDrive[d].RandAccesses++
	}
	dr.lastTrack = t
}

// blank reports whether the track currently reads as zeros by
// allocator metadata alone: released, or beyond the bump mark (which
// covers tracks dirtied by a crashed attempt and later rolled back).
func (f *File) blank(d, t int) bool {
	dr := &f.drives[d]
	if t >= dr.next {
		return true
	}
	_, free := dr.freeSet[t]
	return free
}

func (f *File) readSlot(d, t int, dst []uint64) error {
	n, err := f.files[d].ReadAt(f.buf, int64(t)*f.slotB)
	if err != nil && err != io.EOF {
		return err
	}
	if n < 8 || binary.LittleEndian.Uint64(f.buf[0:]) != trackMagic {
		// Never physically written (or wiped by a rollback): blank.
		clear(dst)
		return nil
	}
	if n < int(f.slotB) {
		return &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(f.buf[16+8*i:])
	}
	if Checksum(dst) != binary.LittleEndian.Uint64(f.buf[8:]) {
		return &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	return nil
}

func (f *File) writeSlot(d, t int, src []uint64) error {
	binary.LittleEndian.PutUint64(f.buf[0:], trackMagic)
	binary.LittleEndian.PutUint64(f.buf[8:], Checksum(src))
	for i, w := range src {
		binary.LittleEndian.PutUint64(f.buf[16+8*i:], w)
	}
	_, err := f.files[d].WriteAt(f.buf, int64(t)*f.slotB)
	return err
}

// wipeSlot clears a slot's magic word so the track reads as blank
// again (used by AllocRestore to discard an aborted attempt's writes).
func (f *File) wipeSlot(d, t int) error {
	var zero [8]byte
	_, err := f.files[d].WriteAt(zero[:], int64(t)*f.slotB)
	return err
}

// ReadOp performs one parallel read, at most one track per drive, with
// the same validation, accounting and blank-track semantics as
// Array.ReadOp.
func (f *File) ReadOp(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(f.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	for _, r := range reqs {
		if len(r.Dst) != f.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), f.cfg.B)
		}
		if f.blank(r.Disk, r.Track) {
			clear(r.Dst)
		} else if err := f.readSlot(r.Disk, r.Track, r.Dst); err != nil {
			return err
		}
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksRead++
	}
	f.stats.Ops++
	f.stats.ReadOps++
	f.stats.BlocksRead += int64(len(reqs))
	return nil
}

// WriteOp performs one parallel write, at most one track per drive.
func (f *File) WriteOp(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(f.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	for _, r := range reqs {
		if len(r.Src) != f.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), f.cfg.B)
		}
		if err := f.writeSlot(r.Disk, r.Track, r.Src); err != nil {
			return err
		}
		f.touch(r.Disk, r.Track)
		f.stats.PerDrive[r.Disk].BlocksWritten++
	}
	f.stats.Ops++
	f.stats.WriteOps++
	f.stats.BlocksWritten += int64(len(reqs))
	return nil
}

// Alloc returns a free track on drive d, reusing freed tracks before
// extending the drive — identical allocation order to Array.Alloc, so
// durable and in-memory runs lay data out identically.
func (f *File) Alloc(d int) int {
	dr := &f.drives[d]
	var t int
	if n := len(dr.freeList); n > 0 {
		t = dr.freeList[n-1]
		dr.freeList = dr.freeList[:n-1]
		delete(dr.freeSet, t)
	} else {
		t = dr.next
		dr.next++
	}
	// Array clears a track at Release; File defers the clear to here so
	// releases stay metadata-only (crash safety). A track being handed
	// out is free in the last durable commit record, so wiping its magic
	// word destroys no committed data — and makes recycled tracks (and
	// slots holding stale bytes from a crashed run) read blank, exactly
	// like Array. Best-effort, like AllocRestore's wipes.
	f.wipeSlot(d, t) //nolint:errcheck
	return t
}

// Release returns a track to the drive's free list. The release is
// metadata-only (reads of free tracks return zeros by the allocator,
// not by a physical wipe), which is what makes the engines' commit
// ordering crash-safe: data referenced by the last durable commit
// record is never physically destroyed before the next record lands.
func (f *File) Release(d, t int) error {
	if d < 0 || d >= f.cfg.D {
		return fmt.Errorf("disk: Release drive %d out of range [0,%d)", d, f.cfg.D)
	}
	dr := &f.drives[d]
	if t < 0 || t >= dr.next {
		return fmt.Errorf("disk: Release track %d on drive %d outside allocated range [0,%d)", t, d, dr.next)
	}
	if _, free := dr.freeSet[t]; free {
		return fmt.Errorf("disk: double release of track %d on drive %d", t, d)
	}
	if dr.freeSet == nil {
		dr.freeSet = make(map[int]struct{})
	}
	dr.freeSet[t] = struct{}{}
	dr.freeList = append(dr.freeList, t)
	return nil
}

// ReserveRot allocates a standard-consecutive-format area with the
// given drive rotation, exactly as Array.ReserveRot does.
func (f *File) ReserveRot(nBlocks, rot int) Area {
	if nBlocks < 0 {
		panic("disk: Reserve with negative size")
	}
	per := (nBlocks + f.cfg.D - 1) / f.cfg.D
	ar := Area{d: f.cfg.D, n: nBlocks, rot: ((rot % f.cfg.D) + f.cfg.D) % f.cfg.D, base: make([]int, f.cfg.D)}
	for d := range f.drives {
		dr := &f.drives[d]
		ar.base[d] = dr.next
		dr.next += per
		// Reserved slots sit beyond the last committed high-water mark,
		// so they may hold stale (even torn) bytes from a crashed
		// attempt; wipe their magic words so ragged never-written slots
		// read blank, as on Array. See Alloc.
		for t := ar.base[d]; t < dr.next; t++ {
			f.wipeSlot(d, t) //nolint:errcheck
		}
	}
	return ar
}

// AllocSnapshot captures the allocator state for a later AllocRestore.
func (f *File) AllocSnapshot() AllocMark {
	m := AllocMark{next: make([]int, f.cfg.D), free: make([][]int, f.cfg.D)}
	for d := range f.drives {
		m.next[d] = f.drives[d].next
		m.free[d] = append([]int(nil), f.drives[d].freeList...)
	}
	return m
}

// AllocRestore rolls the allocator back to a snapshot and wipes the
// magic word of every track the rollback unallocates, mirroring
// Array.AllocRestore's clearing semantics. The wiped tracks are, by
// the engines' checkpoint discipline, never referenced by committed
// state, so the wipe is safe at any crash point.
func (f *File) AllocRestore(m AllocMark) {
	for d := range f.drives {
		dr := &f.drives[d]
		for t := m.next[d]; t < dr.next; t++ {
			// Best-effort wipe: a failed wipe only leaves stale bytes
			// that metadata already reads as blank.
			_ = f.wipeSlot(d, t)
		}
		dr.next = m.next[d]
		dr.freeList = append(dr.freeList[:0], m.free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			_ = f.wipeSlot(d, t)
			dr.freeSet[t] = struct{}{}
		}
	}
}

// State captures the store's persistent metadata.
func (f *File) State() StoreState {
	s := StoreState{
		Stats: f.Stats(),
		Next:  make([]int, f.cfg.D),
		Last:  make([]int, f.cfg.D),
		Free:  make([][]int, f.cfg.D),
	}
	for d := range f.drives {
		s.Next[d] = f.drives[d].next
		s.Last[d] = f.drives[d].lastTrack
		s.Free[d] = append([]int(nil), f.drives[d].freeList...)
	}
	return s
}

// AdoptState replaces the store's metadata with a captured State — the
// resume path. Track contents stay as the drive files hold them; any
// bytes written after the adopted state was captured are unreachable
// (free or beyond the bump mark) and read as zeros.
func (f *File) AdoptState(s StoreState) error {
	if len(s.Next) != f.cfg.D || len(s.Last) != f.cfg.D || len(s.Free) != f.cfg.D {
		return fmt.Errorf("disk: AdoptState of %d/%d/%d-drive state into %d-drive store", len(s.Next), len(s.Last), len(s.Free), f.cfg.D)
	}
	st := s.Stats
	st.PerDrive = append([]DriveStats(nil), s.Stats.PerDrive...)
	f.stats = st
	for d := range f.drives {
		dr := &f.drives[d]
		dr.next = s.Next[d]
		dr.lastTrack = s.Last[d]
		dr.freeList = append([]int(nil), s.Free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			dr.freeSet[t] = struct{}{}
		}
	}
	return nil
}

// Sync fsyncs every drive file. The engines call it before each
// journal append: write-ahead discipline requires the data a commit
// record references to be durable before the record itself.
func (f *File) Sync() error {
	for _, fh := range f.files {
		if fh == nil {
			continue
		}
		if err := fh.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every drive file.
func (f *File) Close() error {
	var first error
	for i, fh := range f.files {
		if fh == nil {
			continue
		}
		if err := fh.Close(); err != nil && first == nil {
			first = err
		}
		f.files[i] = nil
	}
	return first
}
