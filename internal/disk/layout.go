package disk

import (
	"fmt"

	"embsp/internal/words"
)

// Area is a reserved region of the array holding a collection of
// blocks in standard consecutive format (Definition 2 of the paper):
// block i of the collection lives on drive i mod D, and on each drive
// the area's blocks occupy consecutive tracks starting at the drive's
// base. Any D consecutive block indices therefore address D distinct
// drives, so the area can be streamed with fully parallel I/O.
//
// The paper's context layout (details of Steps 1(a)/1(e) of Algorithm
// SeqCompoundSuperstep) stores the i-th block of virtual processor j's
// context at global block index i + j·(µ/B) of one big area, which is
// exactly Area.Addr of that index.
type Area struct {
	d    int
	n    int
	rot  int
	base []int
}

// Reserve allocates an area of nBlocks blocks in standard consecutive
// format. Each drive contributes ⌈nBlocks/D⌉ consecutive fresh tracks
// (per-drive block counts thus differ by at most one, as Definition 2
// requires).
func (a *Array) Reserve(nBlocks int) Area { return a.ReserveRot(nBlocks, 0) }

// Reserve allocates an area of nBlocks blocks on any Disk.
func Reserve(dsk Disk, nBlocks int) Area { return dsk.ReserveRot(nBlocks, 0) }

// ReserveRot allocates an area whose block-to-drive mapping is rotated
// by rot: block i lives on drive (rot + i) mod D. Algorithm
// SimulateRouting (Step 2) writes D bucket areas concurrently, one
// block of each per parallel I/O operation; giving bucket d's area
// rotation d makes the D concurrent writes of operation j land on the
// D distinct drives (d + j) mod D, exactly as the paper's track
// formula d·⌈vγ/D²B⌉ + ⌊j/D⌋ on disk (d+j) mod D prescribes.
func (a *Array) ReserveRot(nBlocks, rot int) Area {
	if nBlocks < 0 {
		panic("disk: Reserve with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	per := (nBlocks + a.cfg.D - 1) / a.cfg.D
	ar := Area{d: a.cfg.D, n: nBlocks, rot: ((rot % a.cfg.D) + a.cfg.D) % a.cfg.D, base: make([]int, a.cfg.D)}
	for d := range a.drives {
		dr := &a.drives[d]
		ar.base[d] = dr.next
		dr.next += per
	}
	return ar
}

// Blocks returns the area's capacity in blocks.
func (ar Area) Blocks() int { return ar.n }

// Encode appends the area's full description (drive count, size,
// rotation, per-drive bases) to enc. The engines use it to journal
// their context and input areas at every barrier commit.
func (ar Area) Encode(enc *words.Encoder) {
	enc.PutInt(int64(ar.d))
	enc.PutInt(int64(ar.n))
	enc.PutInt(int64(ar.rot))
	base := make([]int64, len(ar.base))
	for i, b := range ar.base {
		base[i] = int64(b)
	}
	enc.PutInts(base)
}

// DecodeArea reads an area previously written by Encode.
func DecodeArea(dec *words.Decoder) Area {
	ar := Area{
		d:   int(dec.Int()),
		n:   int(dec.Int()),
		rot: int(dec.Int()),
	}
	base := dec.Ints()
	ar.base = make([]int, len(base))
	for i, b := range base {
		ar.base[i] = int(b)
	}
	return ar
}

// Addr returns the address of block index i of the area.
func (ar Area) Addr(i int) Addr {
	if i < 0 || i >= ar.n {
		panic(fmt.Sprintf("disk: area block index %d out of range [0,%d)", i, ar.n))
	}
	d := (ar.rot + i) % ar.d
	return Addr{Disk: d, Track: ar.base[d] + i/ar.d}
}

// Slice returns a view of blocks [off, off+n) of an area as an Area
// of its own: Slice(ar, off, n).Addr(i) == ar.Addr(off+i) for every
// i in [0, n).
func Slice(ar Area, off, n int) Area {
	if off < 0 || n < 0 || off+n > ar.n {
		panic(fmt.Sprintf("disk: Slice [%d,%d) of %d-block area", off, off+n, ar.n))
	}
	D := ar.d
	out := Area{d: D, n: n, rot: (ar.rot + off) % D, base: make([]int, D)}
	for dd := 0; dd < D; dd++ {
		a := ((dd-ar.rot)%D + D) % D
		a2 := ((a-off)%D + D) % D
		out.base[dd] = ar.base[dd] + (off+a2-a)/D
	}
	return out
}

// FreeArea releases every track of the area back to the drives' free
// lists (contents cleared). The Area must not be used afterwards.
func (a *Array) FreeArea(ar Area) error { return FreeArea(a, ar) }

// FreeArea releases every track of the area on any Disk.
func FreeArea(dsk Disk, ar Area) error {
	for i := 0; i < ar.n; i++ {
		ad := ar.Addr(i)
		if err := dsk.Release(ad.Disk, ad.Track); err != nil {
			return err
		}
	}
	return nil
}

// ReadRange reads blocks [lo, hi) of the area into dst, which must
// have length (hi-lo)·B, issuing ⌈(hi-lo)/D⌉ maximally parallel I/O
// operations (each group of D consecutive block indices addresses D
// distinct drives).
func (a *Array) ReadRange(ar Area, lo, hi int, dst []uint64) error {
	return ReadRange(a, ar, lo, hi, dst)
}

// ReadRange reads blocks [lo, hi) of the area on any Disk.
func ReadRange(dsk Disk, ar Area, lo, hi int, dst []uint64) error {
	cfg := dsk.Config()
	if hi < lo || lo < 0 || hi > ar.n {
		return fmt.Errorf("disk: ReadRange [%d,%d) out of area range [0,%d)", lo, hi, ar.n)
	}
	if len(dst) != (hi-lo)*cfg.B {
		return fmt.Errorf("disk: ReadRange buffer has %d words, want %d", len(dst), (hi-lo)*cfg.B)
	}
	reqs := make([]ReadReq, 0, cfg.D)
	for i := lo; i < hi; i += cfg.D {
		reqs = reqs[:0]
		for j := i; j < hi && j < i+cfg.D; j++ {
			addr := ar.Addr(j)
			off := (j - lo) * cfg.B
			reqs = append(reqs, ReadReq{Disk: addr.Disk, Track: addr.Track, Dst: dst[off : off+cfg.B]})
		}
		if err := dsk.ReadOp(reqs); err != nil {
			return err
		}
	}
	return nil
}

// WriteRange writes src to blocks [lo, hi) of the area with maximally
// parallel I/O operations.
func (a *Array) WriteRange(ar Area, lo, hi int, src []uint64) error {
	return WriteRange(a, ar, lo, hi, src)
}

// WriteRange writes src to blocks [lo, hi) of the area on any Disk.
func WriteRange(dsk Disk, ar Area, lo, hi int, src []uint64) error {
	cfg := dsk.Config()
	if hi < lo || lo < 0 || hi > ar.n {
		return fmt.Errorf("disk: WriteRange [%d,%d) out of area range [0,%d)", lo, hi, ar.n)
	}
	if len(src) != (hi-lo)*cfg.B {
		return fmt.Errorf("disk: WriteRange buffer has %d words, want %d", len(src), (hi-lo)*cfg.B)
	}
	reqs := make([]WriteReq, 0, cfg.D)
	for i := lo; i < hi; i += cfg.D {
		reqs = reqs[:0]
		for j := i; j < hi && j < i+cfg.D; j++ {
			addr := ar.Addr(j)
			off := (j - lo) * cfg.B
			reqs = append(reqs, WriteReq{Disk: addr.Disk, Track: addr.Track, Src: src[off : off+cfg.B]})
		}
		if err := dsk.WriteOp(reqs); err != nil {
			return err
		}
	}
	return nil
}

// Buckets maintains the paper's standard linked format: for each
// drive, a table with one entry per bucket pointing at the list of
// tracks on that drive holding blocks of that bucket (Step 1(d) of
// Algorithm SeqCompoundSuperstep). Whenever a block of bucket i is
// written to drive j, a free track on j is allocated and appended to
// list (j, i).
//
// The paper stores the D-pointer tables on the disks themselves; here
// the directory is in-memory metadata of size O(D·buckets) words (a
// documented deviation — see DESIGN.md §5). The data blocks live on
// the simulated disks and all their movement is counted.
type Buckets struct {
	d     int
	lists [][][]int // [drive][bucket] -> ordered track list
}

// NewBuckets returns an empty directory for nBuckets buckets over the
// D drives of a.
func NewBuckets(a *Array, nBuckets int) *Buckets {
	b := &Buckets{d: a.cfg.D, lists: make([][][]int, a.cfg.D)}
	for d := range b.lists {
		b.lists[d] = make([][]int, nBuckets)
	}
	return b
}

// Append records that track t on drive d now holds a block of bucket i.
func (b *Buckets) Append(d, bucket, t int) { b.lists[d][bucket] = append(b.lists[d][bucket], t) }

// Len returns the number of blocks of bucket i stored on drive d.
func (b *Buckets) Len(d, bucket int) int { return len(b.lists[d][bucket]) }

// Tracks returns the ordered track list of bucket i on drive d.
// The caller must not modify the returned slice.
func (b *Buckets) Tracks(d, bucket int) []int { return b.lists[d][bucket] }

// Total returns the total number of blocks in bucket i across drives.
func (b *Buckets) Total(bucket int) int {
	n := 0
	for d := 0; d < b.d; d++ {
		n += len(b.lists[d][bucket])
	}
	return n
}

// MaxPerDrive returns the largest number of blocks any single drive
// holds for bucket i — the quantity bounded by Lemma 2.
func (b *Buckets) MaxPerDrive(bucket int) int {
	m := 0
	for d := 0; d < b.d; d++ {
		if n := len(b.lists[d][bucket]); n > m {
			m = n
		}
	}
	return m
}

// NumBuckets returns the number of buckets.
func (b *Buckets) NumBuckets() int {
	if b.d == 0 {
		return 0
	}
	return len(b.lists[0])
}
