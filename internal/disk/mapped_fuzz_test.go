package disk

// FuzzMappedGeometry is FuzzGeometry's twin for the mmap-backed
// store: the two stores share one on-disk format (geometry file +
// slotted drive images), so the mapped resume path must uphold the
// identical contract over arbitrary bytes — refuse the directory, or
// open a store whose reads each yield intact data, zeros, or a typed
// *CorruptTrackError. Never a panic (in particular never a SIGBUS
// from reading past a short mapping — OpenMapped rounds every file up
// to its mapped capacity first) and never silently delivered garbage.
// Writes are fuzzed too: overwriting hostile slots and growing the
// image past its mapped capacity must leave the slots readable.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func FuzzMappedGeometry(f *testing.F) {
	if !MmapSupported() {
		f.Skip("mmap is unsupported on this platform")
	}
	geom, drive0 := seedStore(f)
	slotB := int((2 + fuzzB) * 8)
	f.Add(geom, drive0)
	f.Add([]byte{}, drive0)             // no geometry at all
	f.Add(geom[:8], drive0)             // truncated geometry
	f.Add(drive0[:24], drive0)          // wrong magic, right length
	f.Add(geom, drive0[:len(drive0)-9]) // torn final slot (mid-pwrite crash)
	flip := bytes.Clone(drive0)
	flip[slotB+16] ^= 0xFF // payload word of track 1: checksum must catch it
	f.Add(geom, flip)
	flip = bytes.Clone(drive0)
	flip[8] ^= 0x01 // stored checksum of track 0
	f.Add(geom, flip)
	wrongGeom := bytes.Clone(geom)
	binary.LittleEndian.PutUint64(wrongGeom[8:], 11) // claims D=11
	f.Add(wrongGeom, drive0)

	f.Fuzz(func(t *testing.T, geom, drive []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "geometry"), geom, 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "drive-000.dat"), drive, 0o666); err != nil {
			t.Fatal(err)
		}
		cfg := Config{D: fuzzD, B: fuzzB}
		st, err := OpenMapped(dir, cfg, true, MappedOptions{})
		if err != nil {
			return // refused the directory — the safe outcome
		}
		// Make every track the fuzzed image could cover reachable, as
		// an adopted resume state would.
		tracks := len(drive)/slotB + 2
		st.mu.Lock()
		for d := range st.drives {
			st.drives[d].next = tracks
		}
		st.mu.Unlock()
		dst := make([]uint64, fuzzB)
		src := make([]uint64, fuzzB)
		for d := 0; d < fuzzD; d++ {
			for tr := 0; tr < tracks; tr++ {
				err := st.ReadOp([]ReadReq{{Disk: d, Track: tr, Dst: dst}})
				if err != nil {
					if _, ok := err.(*CorruptTrackError); !ok {
						t.Fatalf("ReadOp(%d/%d) returned untyped error %T: %v", d, tr, err, err)
					}
				}
			}
		}
		// Overwrite the first fuzzed track and one past the image's
		// mapped capacity (forcing growth over hostile bytes); both
		// must read back exactly what was written.
		for i := range src {
			src[i] = uint64(0xA0<<8 | i)
		}
		for _, tr := range []int{0, tracks - 1} {
			if err := st.WriteOp([]WriteReq{{Disk: 0, Track: tr, Src: src}}); err != nil {
				t.Fatalf("WriteOp(0/%d): %v", tr, err)
			}
			if err := st.ReadOp([]ReadReq{{Disk: 0, Track: tr, Dst: dst}}); err != nil {
				t.Fatalf("ReadOp(0/%d) after write: %v", tr, err)
			}
			for i := range dst {
				if dst[i] != src[i] {
					t.Fatalf("track 0/%d word %d: got %#x want %#x", tr, i, dst[i], src[i])
				}
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatalf("Sync after fuzzed writes: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close after fuzzed reads: %v", err)
		}
	})
}
