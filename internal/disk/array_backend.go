package disk

import (
	"fmt"
	"sort"
)

// The in-memory Array's side of the Backend contract: the Array moves
// no physical bytes, so the overlap counters are identically zero,
// and the replication hooks operate directly on the in-memory tracks.
// They exist so a Tier (and tests, and the cluster runtime's replica
// machinery) can treat every store uniformly; like File's, none of
// them touch model accounting.

// Overlap reports zeros: the in-memory array overlaps nothing.
func (a *Array) Overlap() OverlapStats { return OverlapStats{} }

// ResetOverlap is a no-op: there are no overlap counters to reset.
func (a *Array) ResetOverlap() {}

// TakeDirty returns the addresses of every track logically mutated
// (written, released, or rolled back) since the previous TakeDirty,
// and resets the set — the same superset semantics as File.TakeDirty.
func (a *Array) TakeDirty() []Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Addr, 0, len(a.repl))
	for ad := range a.repl {
		out = append(out, ad)
	}
	clear(a.repl)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Disk != out[j].Disk {
			return out[i].Disk < out[j].Disk
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// ExportTrack returns a copy of one track's payload without model
// accounting, or nil when the track reads as blank (free, beyond the
// bump mark, or never written).
func (a *Array) ExportTrack(d, t int) ([]uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= a.cfg.D || t < 0 {
		return nil, fmt.Errorf("disk: ExportTrack (%d,%d) out of range", d, t)
	}
	dr := &a.drives[d]
	if t >= dr.next {
		return nil, nil
	}
	if _, free := dr.freeSet[t]; free {
		return nil, nil
	}
	if t >= len(dr.tracks) || dr.tracks[t] == nil {
		return nil, nil
	}
	return append([]uint64(nil), dr.tracks[t]...), nil
}

// ImportTrack replaces one track's contents raw (nil payload clears
// it), without model accounting — the adoption path of a replica
// snapshot.
func (a *Array) ImportTrack(d, t int, payload []uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= a.cfg.D || t < 0 {
		return fmt.Errorf("disk: ImportTrack (%d,%d) out of range", d, t)
	}
	dr := &a.drives[d]
	if payload == nil {
		if t < len(dr.tracks) {
			dr.tracks[t] = nil
		}
		return nil
	}
	if len(payload) != a.cfg.B {
		return fmt.Errorf("disk: ImportTrack payload has %d words, want B=%d", len(payload), a.cfg.B)
	}
	for t >= len(dr.tracks) {
		dr.tracks = append(dr.tracks, nil)
	}
	if dr.tracks[t] == nil {
		dr.tracks[t] = make([]uint64, a.cfg.B)
	}
	copy(dr.tracks[t], payload)
	return nil
}
