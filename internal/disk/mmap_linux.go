//go:build linux

package disk

import (
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported gates the Mapped store at runtime. The implementation
// needs a unified page cache with a dependable fsync/msync story, so
// it is built for Linux only; other platforms get the stub and the
// engines fall back to the pread/pwrite File store.
const mmapSupported = true

// mmapFile maps length bytes of f read-write and shared. The caller
// must have extended the file to at least length bytes first (a store
// never touches pages beyond the file size, so SIGBUS is unreachable).
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// msyncFile schedules writeback of the mapping's dirty pages
// (MS_ASYNC: starts writeback and returns). Durability comes from the
// fsync that Sync issues right after — Linux's unified page cache
// makes fsync on the fd cover mmap-dirtied pages — so a synchronous
// MS_SYNC here would write every page back twice per barrier. The
// stdlib syscall package does not wrap msync, so this issues it raw.
func msyncFile(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_ASYNC))
	if errno != 0 {
		return errno
	}
	return nil
}
