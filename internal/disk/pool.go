package disk

import (
	"sync"
	"sync/atomic"
)

// poolCanary, when non-zero, is stamped into every payload buffer on
// its way back to the block pool. Tests set it (via SetPoolCanary) to
// prove the pooled worker path never recycles a buffer a reader still
// aliases: if delivered data ever shows the canary, a buffer was
// returned to the pool while live.
var poolCanary atomic.Uint64

// SetPoolCanary installs (or, with 0, removes) the canary word stamped
// into pooled payload buffers on release. Testing hook only; it has no
// effect on correctness, just makes use-after-release loud.
func SetPoolCanary(w uint64) { poolCanary.Store(w) }

// blockPool recycles the B-word payload buffers that flow through the
// worker path (prefetch fills, private fills, write-behind captures).
// Fills and retires happen once per physically-touched track, so
// without recycling the worker store allocates (and the collector
// chases) one B-word slice per track per pass — measurable garbage at
// zero drive latency. A bounded free list under its own mutex keeps
// the hot path allocation-free without sync.Pool's per-Put boxing.
type blockPool struct {
	mu    sync.Mutex
	words int // buffer length (B)
	cap   int // max buffers kept
	free  [][]uint64
}

func newBlockPool(words, capacity int) *blockPool {
	return &blockPool{words: words, cap: capacity}
}

// get returns a payload buffer of the pool's word count. The contents
// are unspecified (possibly a canary fill); every consumer overwrites
// the buffer in full before attaching it to a cache entry.
func (p *blockPool) get() []uint64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return make([]uint64, p.words)
}

// put recycles a buffer. Callers must guarantee no reader still holds
// a reference (File.retire enforces this with a per-entry refcount).
func (p *blockPool) put(b []uint64) {
	if cap(b) < p.words {
		return
	}
	b = b[:p.words]
	if c := poolCanary.Load(); c != 0 {
		for i := range b {
			b[i] = c
		}
	}
	p.mu.Lock()
	if len(p.free) < p.cap {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// bytePool is the blockPool's byte-slice sibling, recycling the
// slot-sized scratch buffers of inline reads (which run outside
// File.mu and so cannot share the store's single scratch slot).
type bytePool struct {
	mu    sync.Mutex
	bytes int
	cap   int
	free  [][]byte
}

func newBytePool(bytes, capacity int) *bytePool {
	return &bytePool{bytes: bytes, cap: capacity}
}

func (p *bytePool) get() []byte {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return make([]byte, p.bytes)
}

func (p *bytePool) put(b []byte) {
	if cap(b) < p.bytes {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.cap {
		p.free = append(p.free, b[:p.bytes])
	}
	p.mu.Unlock()
}
