package disk

import (
	"testing"
	"time"
)

// TestResetStatsLeavesOverlapIntact pins the split between the model
// statistics and the wall-clock overlap counters: the engines call
// ResetStats after the setup phase to separate setup from run
// accounting, and before this split existed that reset silently
// discarded the overlap history too, making EMStats.Overlap undercount
// any run with a mid-run reset.
func TestResetStatsLeavesOverlapIntact(t *testing.T) {
	// A small emulated latency routes writes and prefetches through
	// the worker queues — at zero latency both take the inline fast
	// path and generate no overlap activity to preserve.
	const D, B = 2, 8
	f, err := OpenFileOpts(t.TempDir(), Config{D: D, B: B}, false, FileOptions{
		Workers:       D,
		AccessLatency: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Generate model and overlap activity: async writes through the
	// write-behind cache, then a prefetch served back from it.
	var addrs []Addr
	for i := 0; i < 2*D; i++ {
		d := i % D
		tr := f.Alloc(d)
		if err := f.WriteOp([]WriteReq{{Disk: d, Track: tr, Src: track(B, uint64(i))}}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, Addr{Disk: d, Track: tr})
	}
	f.Prefetch(addrs)
	dst := make([]uint64, B)
	for _, a := range addrs {
		if err := f.ReadOp([]ReadReq{{Disk: a.Disk, Track: a.Track, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	before := f.Overlap()
	if before.AsyncWrites == 0 && before.PrefetchIssued == 0 {
		t.Fatalf("workload generated no overlap activity: %+v", before)
	}
	if f.Stats().Ops == 0 {
		t.Fatal("workload generated no model operations")
	}

	f.ResetStats()
	if got := f.Stats(); got.Ops != 0 || got.BlocksRead != 0 || got.BlocksWritten != 0 {
		t.Errorf("ResetStats left model stats: %+v", got)
	}
	if got := f.Overlap(); got != before {
		t.Errorf("ResetStats changed the overlap counters:\nbefore %+v\nafter  %+v", before, got)
	}

	// The counters stay monotone across the reset: more traffic only
	// adds to the preserved history.
	d0 := addrs[0]
	if err := f.ReadOp([]ReadReq{{Disk: d0.Disk, Track: d0.Track, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	after := f.Overlap()
	if after.PrefetchHits+after.PrefetchMisses < before.PrefetchHits+before.PrefetchMisses {
		t.Errorf("overlap history went backwards: before %+v, after %+v", before, after)
	}

	// ResetOverlap is the explicit observability-side reset.
	f.ResetOverlap()
	if got := f.Overlap(); got != (OverlapStats{}) {
		t.Errorf("ResetOverlap left counters: %+v", got)
	}
}
