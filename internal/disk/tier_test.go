package disk

import (
	"testing"
	"time"

	"embsp/internal/prng"
)

func newTierTest(t *testing.T, d, b int, opt TierOptions) *Tier {
	t.Helper()
	tr := NewTier(newTest(t, d, b), opt)
	t.Cleanup(func() { tr.Close() })
	return tr
}

// driveScript runs one deterministic mixed op sequence (writes, reads,
// allocs, releases, an area reservation) against any store and returns
// the payload of every read, so two stores can be compared both on
// accounting and on bytes.
func driveScript(t *testing.T, s Store, d, b int) []uint64 {
	t.Helper()
	r := prng.New(0x7137)
	var got []uint64
	buf := make([]uint64, b)
	write := func(disk, track int) {
		src := make([]uint64, b)
		for i := range src {
			src[i] = r.Uint64()
		}
		if err := s.WriteOp([]WriteReq{{Disk: disk, Track: track, Src: src}}); err != nil {
			t.Fatal(err)
		}
	}
	read := func(disk, track int) {
		if err := s.ReadOp([]ReadReq{{Disk: disk, Track: track, Dst: buf}}); err != nil {
			t.Fatal(err)
		}
		got = append(got, append([]uint64(nil), buf...)...)
	}
	ar := s.ReserveRot(2*d, 1)
	for i := 0; i < 2*d; i++ {
		write(ar.Addr(i).Disk, ar.Addr(i).Track)
	}
	for i := 2*d - 1; i >= 0; i-- {
		read(ar.Addr(i).Disk, ar.Addr(i).Track)
	}
	tr0 := s.Alloc(0)
	write(0, tr0)
	read(0, tr0)
	read(0, tr0+100) // blank
	if err := s.Release(0, tr0); err != nil {
		t.Fatal(err)
	}
	read(0, tr0) // blank again after release
	mark := s.AllocSnapshot()
	tr1 := s.Alloc(d - 1)
	write(d-1, tr1)
	s.AllocRestore(mark)
	read(d-1, tr1) // rolled back: blank
	return got
}

// TestTierMatchesFlatAccounting is the tier's model contract: for one
// op sequence, a tier-over-Array chain produces byte-identical reads,
// identical Stats (ops, blocks, per-drive seq/rand access chains) and
// an identical composed State to the flat Array — so journals written
// through a tier are interchangeable with flat ones.
func TestTierMatchesFlatAccounting(t *testing.T) {
	const d, b = 3, 8
	flat := newTest(t, d, b)
	tier := newTierTest(t, d, b, TierOptions{})

	fb := driveScript(t, flat, d, b)
	tb := driveScript(t, tier, d, b)
	if len(fb) != len(tb) {
		t.Fatalf("read %d words through the tier, %d flat", len(tb), len(fb))
	}
	for i := range fb {
		if fb[i] != tb[i] {
			t.Fatalf("read word %d = %d through the tier, %d flat", i, tb[i], fb[i])
		}
	}
	fs, ts := flat.Stats(), tier.Stats()
	if fs.Ops != ts.Ops || fs.ReadOps != ts.ReadOps || fs.WriteOps != ts.WriteOps ||
		fs.BlocksRead != ts.BlocksRead || fs.BlocksWritten != ts.BlocksWritten {
		t.Fatalf("op stats differ:\nflat: %+v\ntier: %+v", fs, ts)
	}
	for i := range fs.PerDrive {
		if fs.PerDrive[i] != ts.PerDrive[i] {
			t.Fatalf("drive %d stats differ:\nflat: %+v\ntier: %+v", i, fs.PerDrive[i], ts.PerDrive[i])
		}
	}
	fst, tst := flat.State(), tier.State()
	if len(fst.Next) != len(tst.Next) || len(fst.Last) != len(tst.Last) {
		t.Fatalf("state shapes differ")
	}
	for i := range fst.Next {
		if fst.Next[i] != tst.Next[i] || fst.Last[i] != tst.Last[i] || len(fst.Free[i]) != len(tst.Free[i]) {
			t.Fatalf("state differs at drive %d:\nflat: next=%d last=%d free=%v\ntier: next=%d last=%d free=%v",
				i, fst.Next[i], fst.Last[i], fst.Free[i], tst.Next[i], tst.Last[i], tst.Free[i])
		}
	}
}

// waitStaged spins until the tier has n completed staged entries (fill
// workers run asynchronously).
func waitStaged(t *testing.T, tr *Tier, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.mu.Lock()
		done := int64(0)
		for _, e := range tr.cache {
			if e.done && e.err == nil {
				done++
			}
		}
		tr.mu.Unlock()
		if done >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged %d blocks, want %d", done, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTierPrefetchHitAndConsume: a prefetched block is served from the
// tier (a hit) and consumed by that read — the next read of the same
// track misses to the backend with the same bytes. Pseudo-streaming:
// a staged group flows through the tier once.
func TestTierPrefetchHitAndConsume(t *testing.T) {
	const d, b = 2, 4
	tr := newTierTest(t, d, b, TierOptions{FillWorkers: d})
	src := []uint64{9, 8, 7, 6}
	if err := tr.WriteOp([]WriteReq{{Disk: 1, Track: 5, Src: src}}); err != nil {
		t.Fatal(err)
	}
	tr.Prefetch([]Addr{{Disk: 1, Track: 5}})
	waitStaged(t, tr, 1)

	dst := make([]uint64, b)
	for pass := 0; pass < 2; pass++ { // staged, then consumed
		if err := tr.ReadOp([]ReadReq{{Disk: 1, Track: 5, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("pass %d: read %v, want %v", pass, dst, src)
			}
		}
	}
	ts := tr.TierStats()
	if ts.Fills != 1 || ts.Hits != 1 || ts.Misses != 1 {
		t.Fatalf("tier stats = %+v, want 1 fill, 1 hit (first read), 1 miss (second read)", ts)
	}
	if got := tr.acct.Used(); got != 0 {
		t.Fatalf("consumed entry still holds %d budget words", got)
	}
}

// TestTierBudgetBoundsFills: with a one-track budget, prefetching many
// blocks admits exactly one fill; the rest are silently skipped and the
// later reads just miss.
func TestTierBudgetBoundsFills(t *testing.T) {
	const d, b = 2, 4
	tr := newTierTest(t, d, b, TierOptions{FillWorkers: d, CacheWords: b})
	var addrs []Addr
	for i := 0; i < 6; i++ {
		if err := tr.WriteOp([]WriteReq{{Disk: i % d, Track: 10 + i/d, Src: make([]uint64, b)}}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, Addr{Disk: i % d, Track: 10 + i/d})
	}
	tr.Prefetch(addrs)
	if ts := tr.TierStats(); ts.Fills != 1 {
		t.Fatalf("admitted %d fills into a one-track budget, want 1", ts.Fills)
	}
	if high := tr.acct.High(); high != b {
		t.Fatalf("budget high water = %d words, want %d", high, b)
	}
	dst := make([]uint64, b)
	for _, a := range addrs {
		if err := tr.ReadOp([]ReadReq{{Disk: a.Disk, Track: a.Track, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTierWriteInvalidatesStaged: writing a track drops its staged
// copy, so the next read returns the new bytes (served by the backend,
// not the stale staging entry).
func TestTierWriteInvalidatesStaged(t *testing.T) {
	const d, b = 2, 4
	tr := newTierTest(t, d, b, TierOptions{FillWorkers: d})
	old := []uint64{1, 1, 1, 1}
	if err := tr.WriteOp([]WriteReq{{Disk: 0, Track: 3, Src: old}}); err != nil {
		t.Fatal(err)
	}
	tr.Prefetch([]Addr{{Disk: 0, Track: 3}})
	waitStaged(t, tr, 1)
	fresh := []uint64{2, 2, 2, 2}
	if err := tr.WriteOp([]WriteReq{{Disk: 0, Track: 3, Src: fresh}}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, b)
	if err := tr.ReadOp([]ReadReq{{Disk: 0, Track: 3, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if dst[i] != fresh[i] {
			t.Fatalf("read %v after overwrite, want %v (stale staged copy served)", dst, fresh)
		}
	}
	if got := tr.acct.Used(); got != 0 {
		t.Fatalf("invalidated entry still holds %d budget words", got)
	}
}

// TestTierAllocRestoreDropsCache: an allocator rollback empties the
// staging cache wholesale and returns its budget.
func TestTierAllocRestoreDropsCache(t *testing.T) {
	const d, b = 2, 4
	tr := newTierTest(t, d, b, TierOptions{FillWorkers: d})
	mark := tr.AllocSnapshot()
	track := tr.Alloc(0)
	if err := tr.WriteOp([]WriteReq{{Disk: 0, Track: track, Src: []uint64{5, 5, 5, 5}}}); err != nil {
		t.Fatal(err)
	}
	tr.Prefetch([]Addr{{Disk: 0, Track: track}})
	waitStaged(t, tr, 1)
	tr.AllocRestore(mark)
	if got := tr.acct.Used(); got != 0 {
		t.Fatalf("rolled-back cache still holds %d budget words", got)
	}
	dst := []uint64{7, 7, 7, 7}
	if err := tr.ReadOp([]ReadReq{{Disk: 0, Track: track, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	for i, w := range dst {
		if w != 0 {
			t.Fatalf("word %d of a rolled-back track = %d, want 0", i, w)
		}
	}
}

// TestTierStacked: a two-tier chain is itself a Backend; ops account
// identically to flat, and Tiers() reports both levels outermost
// first.
func TestTierStacked(t *testing.T) {
	const d, b = 2, 4
	inner := NewTier(newTest(t, d, b), TierOptions{Level: 1})
	outer := NewTier(inner, TierOptions{Level: 0})
	defer outer.Close()

	flat := newTest(t, d, b)
	fb := driveScript(t, flat, d, b)
	ob := driveScript(t, outer, d, b)
	for i := range fb {
		if fb[i] != ob[i] {
			t.Fatalf("read word %d = %d through the chain, %d flat", i, ob[i], fb[i])
		}
	}
	fs, cs := flat.Stats(), outer.Stats()
	if fs.Ops != cs.Ops || fs.BlocksRead != cs.BlocksRead || fs.BlocksWritten != cs.BlocksWritten {
		t.Fatalf("op stats differ:\nflat:  %+v\nchain: %+v", fs, cs)
	}
	tiers := outer.Tiers()
	if len(tiers) != 2 || tiers[0].Level != 0 || tiers[1].Level != 1 {
		t.Fatalf("Tiers() = %+v, want levels [0 1]", tiers)
	}
}

// TestTierStateRoundTripOverFile: the composed State of a tier over a
// file store survives an AdoptState round trip into a fresh chain,
// byte-for-byte and stat-for-stat — the crash-resume path.
func TestTierStateRoundTripOverFile(t *testing.T) {
	const d, b = 2, 4
	dir := t.TempDir()
	f, err := OpenFileOpts(dir, Config{D: d, B: b}, false, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTier(f, TierOptions{})
	driveScript(t, tr, d, b)
	st := tr.State()
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFileOpts(dir, Config{D: d, B: b}, true, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewTier(f2, TierOptions{})
	defer tr2.Close()
	if err := tr2.AdoptState(st); err != nil {
		t.Fatal(err)
	}
	st2 := tr2.State()
	if st.Stats.Ops != st2.Stats.Ops || st.Stats.BlocksRead != st2.Stats.BlocksRead ||
		st.Stats.BlocksWritten != st2.Stats.BlocksWritten {
		t.Fatalf("adopted stats differ: %+v vs %+v", st.Stats, st2.Stats)
	}
	for i := 0; i < d; i++ {
		if st.Next[i] != st2.Next[i] || st.Last[i] != st2.Last[i] {
			t.Fatalf("adopted allocator/chain state differs at drive %d", i)
		}
	}
}

// TestTierCloseFailsQueuedFills: Close with fills still queued must not
// hang, must fail the queued entries (so no reader could wait forever)
// and must return the staging budget.
func TestTierCloseFailsQueuedFills(t *testing.T) {
	const d, b = 2, 4
	tr := NewTier(newTest(t, d, b), TierOptions{FillWorkers: 1})
	var addrs []Addr
	for i := 0; i < 32; i++ {
		a := Addr{Disk: i % d, Track: i / d}
		if err := tr.WriteOp([]WriteReq{{Disk: a.Disk, Track: a.Track, Src: make([]uint64, b)}}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	tr.Prefetch(addrs)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.acct.Used(); got != 0 {
		t.Fatalf("closed tier still holds %d budget words", got)
	}
}

// TestTierLatencyServesHitsSlower: a tier with emulated access latency
// delays staged hits by roughly lat per block — the emulation knob the
// bench rows use.
func TestTierLatencyServesHitsSlower(t *testing.T) {
	const d, b, lat = 1, 4, 5 * time.Millisecond
	tr := newTierTest(t, d, b, TierOptions{FillWorkers: d, AccessLatency: lat})
	if err := tr.WriteOp([]WriteReq{{Disk: 0, Track: 0, Src: make([]uint64, b)}}); err != nil {
		t.Fatal(err)
	}
	tr.Prefetch([]Addr{{Disk: 0, Track: 0}})
	waitStaged(t, tr, 1)
	dst := make([]uint64, b)
	t0 := time.Now()
	if err := tr.ReadOp([]ReadReq{{Disk: 0, Track: 0, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < lat {
		t.Fatalf("staged hit served in %v, want >= %v of emulated latency", el, lat)
	}
}
