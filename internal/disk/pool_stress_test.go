package disk

// Pool-correctness stress: the worker store recycles payload buffers
// through blockPool, and the one catastrophic failure mode is a
// buffer returning to the pool while a reader still aliases it — the
// next fill would scribble over data already promised to the caller.
// These tests make that failure loud: a canary word is stamped into
// every buffer on release (SetPoolCanary), so any use-after-release
// surfaces as canary values in delivered payloads instead of a silent
// rare corruption. Run with -race they also explore the refcount and
// free-list lock discipline under real contention.

import (
	"sync"
	"testing"
	"time"
)

const canaryWord uint64 = 0xBADC0DE5BADC0DE5

// canaryStore opens a worker-backed store with emulated access latency
// so every read, write and wipe takes the queued path (the inline
// fast path bypasses the pool), plus a small cache to force budget
// stalls and entry retirement under pressure.
func canaryStore(t *testing.T, d, b int) *File {
	t.Helper()
	SetPoolCanary(canaryWord)
	t.Cleanup(func() { SetPoolCanary(0) })
	f, err := OpenFileOpts(t.TempDir(), Config{D: d, B: b}, false, FileOptions{
		Workers:       d,
		CacheWords:    int64(3 * d * (b + 2)),
		AccessLatency: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return f
}

// TestPoolCanaryReadBack cycles writes and read-backs through the
// queued worker path and verifies every word of every delivered
// payload. Write-behind captures, prefetch fills and private fills
// all recycle buffers between rounds; a single canary word in a
// read-back means a buffer was pooled while still referenced.
func TestPoolCanaryReadBack(t *testing.T) {
	const d, b, workers, rounds = 4, 32, 6, 25
	f := canaryStore(t, d, b)

	tracks := make([][]int, workers)
	for w := range tracks {
		tracks[w] = make([]int, d)
		for dr := 0; dr < d; dr++ {
			tracks[w][dr] = f.Alloc(dr)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			srcs := make([][]uint64, d)
			for dr := range srcs {
				srcs[dr] = make([]uint64, b)
			}
			dst := make([]uint64, b)
			for r := 0; r < rounds; r++ {
				wreqs := make([]WriteReq, 0, d)
				for dr := 0; dr < d; dr++ {
					for i := range srcs[dr] {
						srcs[dr][i] = uint64(w)<<40 | uint64(r)<<20 | uint64(dr)<<10 | uint64(i)
					}
					wreqs = append(wreqs, WriteReq{Disk: dr, Track: tracks[w][dr], Src: srcs[dr]})
				}
				if err := f.WriteOp(wreqs); err != nil {
					t.Errorf("worker %d: WriteOp: %v", w, err)
					return
				}
				// Prefetch everybody's tracks so fills race the
				// write-behind captures for pooled buffers.
				var addrs []Addr
				for _, ts := range tracks {
					for dr, tr := range ts {
						addrs = append(addrs, Addr{Disk: dr, Track: tr})
					}
				}
				f.Prefetch(addrs)
				for dr := 0; dr < d; dr++ {
					if err := f.ReadOp([]ReadReq{{Disk: dr, Track: tracks[w][dr], Dst: dst}}); err != nil {
						t.Errorf("worker %d: ReadOp: %v", w, err)
						return
					}
					for i, got := range dst {
						want := uint64(w)<<40 | uint64(r)<<20 | uint64(dr)<<10 | uint64(i)
						if got == canaryWord && want != canaryWord {
							t.Errorf("worker %d round %d drive %d word %d: CANARY delivered — buffer recycled while live", w, r, dr, i)
							return
						}
						if got != want {
							t.Errorf("worker %d round %d drive %d word %d: got %#x want %#x", w, r, dr, i, got, want)
							return
						}
					}
				}
				if r%5 == 0 {
					if err := f.Sync(); err != nil {
						t.Errorf("worker %d: Sync: %v", w, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolCanaryWipeReuse interleaves allocator churn (queued wipes
// recycle buffers through the same task path) with reads of stable
// data: rollback wipes from AllocRestore must never bleed canaries or
// zeros into tracks a reader holds.
func TestPoolCanaryWipeReuse(t *testing.T) {
	const d, b = 3, 16
	f := canaryStore(t, d, b)

	stable := make([]int, d)
	src := make([]uint64, b)
	for dr := 0; dr < d; dr++ {
		stable[dr] = f.Alloc(dr)
		for i := range src {
			src[i] = uint64(7000*dr + i + 1)
		}
		if err := f.WriteOp([]WriteReq{{Disk: dr, Track: stable[dr], Src: src}}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		buf := make([]uint64, b)
		for i := range buf {
			buf[i] = 0xF00D
		}
		for i := 0; i < 20; i++ {
			m := f.AllocSnapshot()
			var reqs []WriteReq
			for dr := 0; dr < d; dr++ {
				reqs = append(reqs, WriteReq{Disk: dr, Track: f.Alloc(dr), Src: buf})
			}
			if err := f.WriteOp(reqs); err != nil {
				t.Errorf("burst write: %v", err)
				return
			}
			f.AllocRestore(m) // queues one wipe per burst track
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]uint64, b)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for dr := 0; dr < d; dr++ {
				if err := f.ReadOp([]ReadReq{{Disk: dr, Track: stable[dr], Dst: dst}}); err != nil {
					t.Errorf("stable read: %v", err)
					return
				}
				for i, got := range dst {
					if want := uint64(7000*dr + i + 1); got != want {
						t.Errorf("stable track %d/%d word %d: got %#x want %#x", dr, stable[dr], i, got, want)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockPoolBasics pins the pool contract itself: recycled buffers
// come back full-length, the canary is stamped on release, and the
// free list respects its retention bound.
func TestBlockPoolBasics(t *testing.T) {
	SetPoolCanary(canaryWord)
	defer SetPoolCanary(0)
	p := newBlockPool(8, 2)
	a, b, c := p.get(), p.get(), p.get()
	for i := range a {
		a[i] = 1
	}
	p.put(a)
	p.put(b)
	p.put(c) // over capacity: dropped
	if len(p.free) != 2 {
		t.Fatalf("free list holds %d buffers, want 2 (bounded retention)", len(p.free))
	}
	got := p.get()
	if len(got) != 8 {
		t.Fatalf("recycled buffer has len %d, want 8", len(got))
	}
	for i, w := range got {
		if w != canaryWord {
			t.Fatalf("recycled buffer word %d = %#x, want canary %#x", i, w, canaryWord)
		}
	}
	// Undersized foreign buffers must be rejected, not kept.
	p.put(make([]uint64, 4))
	if len(p.free) != 1 {
		t.Fatalf("free list holds %d buffers after get + undersized put, want 1", len(p.free))
	}

	bp := newBytePool(16, 1)
	s := bp.get()
	if len(s) != 16 {
		t.Fatalf("byte scratch has len %d, want 16", len(s))
	}
	bp.put(s)
	bp.put(make([]byte, 16)) // over capacity: dropped
	if len(bp.free) != 1 {
		t.Fatalf("byte free list holds %d buffers, want 1", len(bp.free))
	}
	bp.put(make([]byte, 8)) // undersized: rejected
	if len(bp.free) != 1 {
		t.Fatalf("undersized byte buffer entered the pool")
	}
}
