// Package disk simulates the secondary-memory subsystem of the EM-BSP
// machine model (Section 3 of Dehne–Dittrich–Hutchinson).
//
// Each real processor owns D disk drives. A drive is a sequence of
// tracks, consecutively numbered from 0, accessed by direct random
// access. A track stores exactly one block of B records (here: 64-bit
// words). In a single parallel I/O operation the processor may
// transfer at most one track per drive — up to D·B words — at cost G.
// An operation involving fewer drives incurs the same cost; the model
// thereby gives an incentive to keep all drives busy, which is exactly
// what the paper's layout formats (standard consecutive format,
// standard linked format) achieve.
//
// The Array type enforces the one-track-per-drive rule and counts
// parallel I/O operations, block transfers, per-drive load, and
// physically sequential vs. non-sequential track accesses. All counts
// are exact; the quantities proved about in the paper's lemmas
// (numbers of parallel I/O operations, per-drive block balance) are
// read directly off these statistics.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"embsp/internal/obs"
)

// Config describes the disk subsystem of one processor.
type Config struct {
	// D is the number of drives.
	D int
	// B is the track (block) size in words.
	B int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.D <= 0 {
		return fmt.Errorf("disk: D = %d, want > 0", c.D)
	}
	if c.B <= 0 {
		return fmt.Errorf("disk: B = %d, want > 0", c.B)
	}
	return nil
}

// Addr identifies one block: a (drive, track) pair.
type Addr struct {
	Disk  int
	Track int
}

// ReadReq asks one drive for one track. Dst must have length B; the
// track contents are copied into it. Reading a never-written track
// yields zeros (the drive is formatted but blank).
type ReadReq struct {
	Disk  int
	Track int
	Dst   []uint64
}

// WriteReq writes one track on one drive. Src must have length B.
type WriteReq struct {
	Disk  int
	Track int
	Src   []uint64
}

// DriveStats holds per-drive transfer counts.
type DriveStats struct {
	BlocksRead    int64
	BlocksWritten int64
	// SeqAccesses counts accesses whose track number immediately
	// follows the previously accessed track on the same drive;
	// RandAccesses counts the rest. The ratio indicates how well a
	// layout preserves physical locality.
	SeqAccesses  int64
	RandAccesses int64
}

// Stats aggregates I/O accounting for an Array. Ops is the number of
// parallel I/O operations: the model time spent on I/O is G·Ops.
type Stats struct {
	Ops           int64
	ReadOps       int64
	WriteOps      int64
	BlocksRead    int64
	BlocksWritten int64
	PerDrive      []DriveStats
}

// Blocks returns the total number of blocks transferred.
func (s Stats) Blocks() int64 { return s.BlocksRead + s.BlocksWritten }

// Utilization returns the mean number of drives used per parallel I/O
// operation divided by D: 1.0 means every operation moved D blocks.
// A Stats with no operations or no per-drive table reports 0.
func (s Stats) Utilization() float64 {
	if s.Ops == 0 || len(s.PerDrive) == 0 {
		return 0
	}
	return float64(s.Blocks()) / float64(s.Ops*int64(len(s.PerDrive)))
}

// Add accumulates other into s. The two must have the same drive count
// (or s may be zero-valued); merging mismatched drive counts would
// silently attribute traffic to the wrong drives, so it panics.
func (s *Stats) Add(other Stats) {
	if s.PerDrive != nil && other.PerDrive != nil && len(s.PerDrive) != len(other.PerDrive) {
		panic(fmt.Sprintf("disk: Stats.Add of %d-drive stats into %d-drive stats", len(other.PerDrive), len(s.PerDrive)))
	}
	s.Ops += other.Ops
	s.ReadOps += other.ReadOps
	s.WriteOps += other.WriteOps
	s.BlocksRead += other.BlocksRead
	s.BlocksWritten += other.BlocksWritten
	if s.PerDrive == nil {
		s.PerDrive = make([]DriveStats, len(other.PerDrive))
	}
	for i := range other.PerDrive {
		s.PerDrive[i].BlocksRead += other.PerDrive[i].BlocksRead
		s.PerDrive[i].BlocksWritten += other.PerDrive[i].BlocksWritten
		s.PerDrive[i].SeqAccesses += other.PerDrive[i].SeqAccesses
		s.PerDrive[i].RandAccesses += other.PerDrive[i].RandAccesses
	}
}

// OverlapStats reports how much physical I/O a store overlapped with
// its caller's computation. These are wall-clock observability
// counters, not model quantities: the model Stats of a run are bitwise
// independent of them (the file-backed store reschedules only physical
// byte movement, never accounting). The in-memory Array moves no
// physical bytes and always reports zeros.
type OverlapStats struct {
	// PrefetchIssued counts blocks submitted for asynchronous
	// prefetch; PrefetchHits counts logical block reads served from
	// the prefetch or write-behind cache, and PrefetchMisses those
	// that had to touch the drive file inside the call.
	PrefetchIssued int64
	PrefetchHits   int64
	PrefetchMisses int64
	// AsyncWrites counts blocks absorbed by the write-behind cache
	// without stalling the writer.
	AsyncWrites int64
	// StallNanos is the wall-clock time logical operations spent
	// waiting for physical transfers (including barrier drains).
	StallNanos int64
	// ConcurrentPeak is the high-water mark of physical transfers
	// executing at the same instant.
	ConcurrentPeak int64
}

// Add accumulates other into o (ConcurrentPeak takes the maximum).
func (o *OverlapStats) Add(other OverlapStats) {
	o.PrefetchIssued += other.PrefetchIssued
	o.PrefetchHits += other.PrefetchHits
	o.PrefetchMisses += other.PrefetchMisses
	o.AsyncWrites += other.AsyncWrites
	o.StallNanos += other.StallNanos
	o.ConcurrentPeak = max(o.ConcurrentPeak, other.ConcurrentPeak)
}

// Publish folds the counters into the metrics registry under
// overlap_* names, with the same accumulation semantics as Add (sums
// for the monotone counters, a high-water fold for the concurrency
// peak) so multi-store and multi-processor runs aggregate correctly.
// A nil registry is a no-op.
func (o OverlapStats) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("overlap_prefetch_issued").Add(o.PrefetchIssued)
	r.Counter("overlap_prefetch_hits").Add(o.PrefetchHits)
	r.Counter("overlap_prefetch_misses").Add(o.PrefetchMisses)
	r.Counter("overlap_async_writes").Add(o.AsyncWrites)
	r.Counter("overlap_stall_nanos").Add(o.StallNanos)
	r.Counter("overlap_concurrent_peak").Max(o.ConcurrentPeak)
}

// Prefetcher is implemented by stores that can pull blocks toward
// memory ahead of the logical read that will consume them (*File with
// workers). Purely physical: no model accounting results.
type Prefetcher interface {
	Prefetch(addrs []Addr)
	Overlap() OverlapStats
}

// Checksum is an FNV-1a-style fold over a block's words; any single
// bit flip changes it. It is the one checksum of the whole stack: the
// fault layer uses it to detect in-flight corruption, the file-backed
// store to detect torn writes, and the commit journal to frame its
// records.
func Checksum(ws []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range ws {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// Disk is the device-level contract of the simulated disk subsystem:
// parallel track transfers, dynamic track allocation, and I/O
// accounting. *Array is the perfect-hardware implementation; the
// fault-injection layer (internal/fault) wraps any Disk with
// checksums, retries and failure simulation. The layout helpers
// (Reserve, ReadRange, WriteRange, FreeArea) are package functions
// over this interface, so engines work identically on either.
type Disk interface {
	// Config returns the drive-count/block-size configuration.
	Config() Config
	// ReadOp performs one parallel read of at most one track per drive.
	ReadOp(reqs []ReadReq) error
	// WriteOp performs one parallel write of at most one track per drive.
	WriteOp(reqs []WriteReq) error
	// Alloc returns a free track on drive d.
	Alloc(d int) int
	// Release returns a track to drive d's free list, clearing it.
	Release(d, t int) error
	// ReserveRot allocates a standard-consecutive-format area with the
	// given drive rotation.
	ReserveRot(nBlocks, rot int) Area
	// Stats returns a copy of the accumulated I/O statistics.
	Stats() Stats
	// ResetStats zeroes the model statistics. Implementations that also
	// track wall-clock observability counters (e.g. *File's
	// OverlapStats) must leave those untouched: they are outside the
	// model contract and mid-run model resets must not discard them.
	ResetStats()
}

// Store is the contract of a disk backend the engines can checkpoint:
// a Disk plus allocator snapshot/rollback (the fault layer's superstep
// replay) and whole-state capture/adoption (the durable engines'
// journal commit and resume). *Array and *File both implement it; the
// fault layer wraps any Store.
type Store interface {
	Disk
	// AllocSnapshot captures the allocator for a later AllocRestore.
	AllocSnapshot() AllocMark
	// AllocRestore rolls the allocator back to a snapshot, discarding
	// every track allocated since.
	AllocRestore(m AllocMark)
	// State captures the store's complete persistent metadata: I/O
	// statistics plus per-drive allocator state. Together with the
	// track contents (which a *File keeps on real disk) it defines the
	// store exactly; the engines journal it at every barrier commit.
	State() StoreState
	// AdoptState replaces the store's metadata with a previously
	// captured State — the resume path's inverse of State.
	AdoptState(s StoreState) error
	// Sync makes all written track contents durable (fsync for *File,
	// a no-op for the in-memory *Array). The engines call it before
	// appending a commit record to the journal, so a journal record
	// never refers to data that could still be lost.
	Sync() error
	// Close releases the store's resources. The store must not be used
	// afterwards.
	Close() error
}

// StoreState is the persistent metadata of a Store: everything except
// the track contents themselves. The fields mirror the per-drive
// allocator (bump high-water mark, last accessed track, free list) and
// the accumulated statistics; the engines serialize it into the commit
// journal and feed it back via AdoptState on resume.
type StoreState struct {
	Stats Stats
	// Next holds each drive's bump-allocator high-water mark.
	Next []int
	// Last holds each drive's previously accessed track (-1 initially);
	// it feeds the sequential-vs-random access statistics, so restoring
	// it keeps resumed runs' Stats bitwise identical.
	Last []int
	// Free holds each drive's free list, in stack order.
	Free [][]int
}

type drive struct {
	tracks    [][]uint64
	freeList  []int
	freeSet   map[int]struct{} // mirrors freeList for O(1) double-free checks
	next      int              // bump allocator high-water mark
	lastTrack int              // previously accessed track, -1 initially
}

// Array simulates the D drives of one processor. All methods are safe
// for concurrent use (the same contract as the file-backed File):
// operations serialize on an internal mutex, and racing operations on
// the same drive are ordered by whatever the race decides.
type Array struct {
	cfg    Config
	mu     sync.Mutex // guards drives, stats and repl
	drives []drive
	stats  Stats
	repl   map[Addr]struct{} // tracks logically mutated since TakeDirty
}

// NewArray returns a blank disk subsystem.
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, drives: make([]drive, cfg.D), repl: make(map[Addr]struct{})}
	for i := range a.drives {
		a.drives[i].lastTrack = -1
	}
	a.stats.PerDrive = make([]DriveStats, cfg.D)
	return a, nil
}

// MustNewArray is NewArray for statically valid configurations.
func MustNewArray(cfg Config) *Array {
	a, err := NewArray(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a copy of the accumulated I/O statistics.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.PerDrive = append([]DriveStats(nil), a.stats.PerDrive...)
	return s
}

// ResetStats zeroes the statistics, e.g. to exclude input staging from
// a measured experiment. Allocated data is untouched.
func (a *Array) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{PerDrive: make([]DriveStats, a.cfg.D)}
}

var errDriveConflict = errors.New("disk: parallel I/O op addresses one drive twice")

func checkAddr(cfg Config, d, t int) error {
	if d < 0 || d >= cfg.D {
		return fmt.Errorf("disk: drive %d out of range [0,%d)", d, cfg.D)
	}
	if t < 0 {
		return fmt.Errorf("disk: negative track %d", t)
	}
	return nil
}

func (a *Array) touch(d, t int) {
	dr := &a.drives[d]
	if t == dr.lastTrack+1 {
		a.stats.PerDrive[d].SeqAccesses++
	} else {
		a.stats.PerDrive[d].RandAccesses++
	}
	dr.lastTrack = t
}

// ReadOp performs one parallel I/O operation reading len(reqs) tracks,
// at most one per drive. It costs one operation regardless of how many
// drives participate (the model's flat cost G). An empty request list
// is a no-op and costs nothing.
func (a *Array) ReadOp(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(a.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range reqs {
		if len(r.Dst) != a.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), a.cfg.B)
		}
		dr := &a.drives[r.Disk]
		if r.Track < len(dr.tracks) && dr.tracks[r.Track] != nil {
			copy(r.Dst, dr.tracks[r.Track])
		} else {
			clear(r.Dst)
		}
		a.touch(r.Disk, r.Track)
		a.stats.PerDrive[r.Disk].BlocksRead++
	}
	a.stats.Ops++
	a.stats.ReadOps++
	a.stats.BlocksRead += int64(len(reqs))
	return nil
}

// WriteOp performs one parallel I/O operation writing len(reqs) tracks,
// at most one per drive.
func (a *Array) WriteOp(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(a.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range reqs {
		if len(r.Src) != a.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), a.cfg.B)
		}
		dr := &a.drives[r.Disk]
		for r.Track >= len(dr.tracks) {
			dr.tracks = append(dr.tracks, nil)
		}
		if dr.tracks[r.Track] == nil {
			dr.tracks[r.Track] = make([]uint64, a.cfg.B)
		}
		copy(dr.tracks[r.Track], r.Src)
		a.repl[Addr{Disk: r.Disk, Track: r.Track}] = struct{}{}
		a.touch(r.Disk, r.Track)
		a.stats.PerDrive[r.Disk].BlocksWritten++
	}
	a.stats.Ops++
	a.stats.WriteOps++
	a.stats.BlocksWritten += int64(len(reqs))
	return nil
}

func validateDistinct(cfg Config, n int, at func(int) (disk, track int)) error {
	var seenLow uint64 // bitmask fast path for D <= 64
	var seen map[int]bool
	for i := 0; i < n; i++ {
		d, t := at(i)
		if err := checkAddr(cfg, d, t); err != nil {
			return err
		}
		if d < 64 {
			bit := uint64(1) << uint(d)
			if seenLow&bit != 0 {
				return errDriveConflict
			}
			seenLow |= bit
			continue
		}
		if seen == nil {
			seen = make(map[int]bool)
		}
		if seen[d] {
			return errDriveConflict
		}
		seen[d] = true
	}
	return nil
}

// Alloc returns a free track on the given drive, reusing freed tracks
// before extending the drive. Used for standard-linked-format bucket
// blocks, whose placement is dynamic.
func (a *Array) Alloc(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	dr := &a.drives[d]
	if n := len(dr.freeList); n > 0 {
		t := dr.freeList[n-1]
		dr.freeList = dr.freeList[:n-1]
		delete(dr.freeSet, t)
		return t
	}
	t := dr.next
	dr.next++
	return t
}

// Release returns a track to the drive's free list. The track contents
// are cleared so stale data cannot leak into later reads. Releasing a
// track that was never allocated, or releasing the same track twice,
// is an error: a double free would hand the same track to two
// allocations and silently corrupt the bucket structures built on it.
func (a *Array) Release(d, t int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= a.cfg.D {
		return fmt.Errorf("disk: Release drive %d out of range [0,%d)", d, a.cfg.D)
	}
	dr := &a.drives[d]
	if t < 0 || t >= dr.next {
		return fmt.Errorf("disk: Release track %d on drive %d outside allocated range [0,%d)", t, d, dr.next)
	}
	if _, free := dr.freeSet[t]; free {
		return fmt.Errorf("disk: double release of track %d on drive %d", t, d)
	}
	if t < len(dr.tracks) {
		dr.tracks[t] = nil
	}
	a.repl[Addr{Disk: d, Track: t}] = struct{}{}
	if dr.freeSet == nil {
		dr.freeSet = make(map[int]struct{})
	}
	dr.freeSet[t] = struct{}{}
	dr.freeList = append(dr.freeList, t)
	return nil
}

// AllocMark is a snapshot of the array's track allocator, captured by
// AllocSnapshot and restored by AllocRestore. It backs the engines'
// superstep checkpoint manifests: rolling the allocator back to the
// last compound-superstep barrier discards every track allocated by an
// aborted attempt.
type AllocMark struct {
	next []int
	free [][]int
}

// AllocSnapshot captures the allocator state (per-drive high-water
// marks and free lists) for a later AllocRestore.
func (a *Array) AllocSnapshot() AllocMark {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := AllocMark{next: make([]int, a.cfg.D), free: make([][]int, a.cfg.D)}
	for d := range a.drives {
		m.next[d] = a.drives[d].next
		m.free[d] = append([]int(nil), a.drives[d].freeList...)
	}
	return m
}

// AllocRestore rolls the allocator back to a snapshot and clears the
// contents of every track that becomes unallocated by the rollback, so
// data written by an aborted attempt cannot leak into later reads. The
// caller must guarantee that no track that was allocated at snapshot
// time has been released since (the engines' checkpoint discipline:
// committed barrier state is only freed after the next barrier).
func (a *Array) AllocRestore(m AllocMark) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for d := range a.drives {
		dr := &a.drives[d]
		// Tracks allocated after the snapshot: wipe and retract.
		for t := m.next[d]; t < dr.next; t++ {
			if t < len(dr.tracks) {
				dr.tracks[t] = nil
			}
			a.repl[Addr{Disk: d, Track: t}] = struct{}{}
		}
		dr.next = m.next[d]
		dr.freeList = append(dr.freeList[:0], m.free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			// Tracks the attempt popped off the free list and wrote:
			// wipe on their way back to free.
			if t < len(dr.tracks) {
				dr.tracks[t] = nil
			}
			a.repl[Addr{Disk: d, Track: t}] = struct{}{}
			dr.freeSet[t] = struct{}{}
		}
	}
}

// State captures the array's persistent metadata (statistics and
// per-drive allocator state).
func (a *Array) State() StoreState {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := StoreState{
		Stats: a.stats,
		Next:  make([]int, a.cfg.D),
		Last:  make([]int, a.cfg.D),
		Free:  make([][]int, a.cfg.D),
	}
	for d := range a.drives {
		s.Next[d] = a.drives[d].next
		s.Last[d] = a.drives[d].lastTrack
		s.Free[d] = append([]int(nil), a.drives[d].freeList...)
	}
	return s
}

// AdoptState replaces the array's metadata with a captured State. Track
// contents are untouched; the in-memory array cannot survive a process
// restart, so engine-level resume always pairs AdoptState with a *File
// — the Array implementation exists for interface completeness and
// tests.
func (a *Array) AdoptState(s StoreState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(s.Next) != a.cfg.D || len(s.Last) != a.cfg.D || len(s.Free) != a.cfg.D {
		return fmt.Errorf("disk: AdoptState of %d/%d/%d-drive state into %d-drive array", len(s.Next), len(s.Last), len(s.Free), a.cfg.D)
	}
	st := s.Stats
	st.PerDrive = append([]DriveStats(nil), s.Stats.PerDrive...)
	a.stats = st
	for d := range a.drives {
		dr := &a.drives[d]
		dr.next = s.Next[d]
		dr.lastTrack = s.Last[d]
		dr.freeList = append([]int(nil), s.Free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			dr.freeSet[t] = struct{}{}
		}
	}
	return nil
}

// Sync is a no-op: the in-memory array has nothing to make durable.
func (a *Array) Sync() error { return nil }

// Close is a no-op for the in-memory array.
func (a *Array) Close() error { return nil }

// Tracks returns the bump-allocator high-water mark of drive d: the
// number of tracks ever allocated on it (peak disk space in blocks).
func (a *Array) Tracks(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drives[d].next
}

// PeekTrack returns a copy of a track's contents without performing a
// model I/O operation. It exists for tests, assertions and layout
// visualization only; engine code must use ReadOp.
func (a *Array) PeekTrack(d, t int) []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]uint64, a.cfg.B)
	dr := &a.drives[d]
	if t < len(dr.tracks) && dr.tracks[t] != nil {
		copy(out, dr.tracks[t])
	}
	return out
}
