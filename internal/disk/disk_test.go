package disk

import (
	"testing"
	"testing/quick"

	"embsp/internal/prng"
)

func newTest(t *testing.T, d, b int) *Array {
	t.Helper()
	a, err := NewArray(Config{D: d, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{D: 1, B: 1}, true},
		{Config{D: 4, B: 64}, true},
		{Config{D: 0, B: 64}, false},
		{Config{D: 4, B: 0}, false},
		{Config{D: -1, B: 8}, false},
		{Config{D: 2, B: -8}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := newTest(t, 2, 4)
	src := []uint64{1, 2, 3, 4}
	if err := a.WriteOp([]WriteReq{{Disk: 1, Track: 3, Src: src}}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	if err := a.ReadOp([]ReadReq{{Disk: 1, Track: 3, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst = %v, want %v", dst, src)
		}
	}
}

func TestUnwrittenTrackReadsZero(t *testing.T) {
	a := newTest(t, 1, 3)
	dst := []uint64{7, 7, 7}
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: 100, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("blank track read %v, want zeros", dst)
		}
	}
}

func TestOneTrackPerDriveEnforced(t *testing.T) {
	a := newTest(t, 2, 2)
	buf := make([]uint64, 2)
	err := a.ReadOp([]ReadReq{
		{Disk: 0, Track: 0, Dst: buf},
		{Disk: 0, Track: 1, Dst: make([]uint64, 2)},
	})
	if err == nil {
		t.Error("two tracks on one drive in a single op: want error")
	}
	err = a.WriteOp([]WriteReq{
		{Disk: 1, Track: 0, Src: buf},
		{Disk: 1, Track: 5, Src: buf},
	})
	if err == nil {
		t.Error("two writes to one drive in a single op: want error")
	}
}

func TestBadAddressesRejected(t *testing.T) {
	a := newTest(t, 2, 2)
	buf := make([]uint64, 2)
	if err := a.ReadOp([]ReadReq{{Disk: 2, Track: 0, Dst: buf}}); err == nil {
		t.Error("drive out of range accepted")
	}
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: -1, Dst: buf}}); err == nil {
		t.Error("negative track accepted")
	}
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: 0, Dst: make([]uint64, 3)}}); err == nil {
		t.Error("wrong buffer size accepted")
	}
}

func TestOpCounting(t *testing.T) {
	a := newTest(t, 4, 2)
	buf := make([]uint64, 2)
	// One op with 4 blocks, one op with 1 block.
	var reqs []WriteReq
	for d := 0; d < 4; d++ {
		reqs = append(reqs, WriteReq{Disk: d, Track: 0, Src: buf})
	}
	if err := a.WriteOp(reqs); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteOp(reqs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadOp([]ReadReq{{Disk: 2, Track: 0, Dst: buf}}); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Ops != 3 || s.WriteOps != 2 || s.ReadOps != 1 {
		t.Errorf("Ops=%d WriteOps=%d ReadOps=%d, want 3/2/1", s.Ops, s.WriteOps, s.ReadOps)
	}
	if s.BlocksWritten != 5 || s.BlocksRead != 1 {
		t.Errorf("BlocksWritten=%d BlocksRead=%d, want 5/1", s.BlocksWritten, s.BlocksRead)
	}
	if got := s.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5 (6 blocks / 3 ops / 4 drives)", got)
	}
}

func TestEmptyOpIsFree(t *testing.T) {
	a := newTest(t, 2, 2)
	if err := a.ReadOp(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteOp(nil); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.Ops != 0 {
		t.Errorf("empty ops counted: Ops = %d", s.Ops)
	}
}

func TestSeqVsRandomAccounting(t *testing.T) {
	a := newTest(t, 1, 1)
	buf := []uint64{0}
	for _, track := range []int{0, 1, 2, 9, 10, 3} {
		if err := a.WriteOp([]WriteReq{{Disk: 0, Track: track, Src: buf}}); err != nil {
			t.Fatal(err)
		}
	}
	// Head starts before track 0, so 0,1,2 are sequential; 9 random;
	// 10 sequential; 3 random.
	pd := a.Stats().PerDrive[0]
	if pd.SeqAccesses != 4 || pd.RandAccesses != 2 {
		t.Errorf("Seq=%d Rand=%d, want 4/2", pd.SeqAccesses, pd.RandAccesses)
	}
}

func TestAllocReleaseReuse(t *testing.T) {
	a := newTest(t, 2, 2)
	t0 := a.Alloc(0)
	t1 := a.Alloc(0)
	if t0 == t1 {
		t.Fatalf("Alloc returned %d twice", t0)
	}
	// Write then release: data must not survive into a reuse.
	if err := a.WriteOp([]WriteReq{{Disk: 0, Track: t0, Src: []uint64{9, 9}}}); err != nil {
		t.Fatal(err)
	}
	a.Release(0, t0)
	t2 := a.Alloc(0)
	if t2 != t0 {
		t.Fatalf("Alloc after Release = %d, want reused %d", t2, t0)
	}
	dst := make([]uint64, 2)
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: t2, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("released track retained data: %v", dst)
	}
}

func TestResetStats(t *testing.T) {
	a := newTest(t, 2, 2)
	buf := make([]uint64, 2)
	if err := a.WriteOp([]WriteReq{{Disk: 0, Track: 0, Src: buf}}); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	s := a.Stats()
	if s.Ops != 0 || s.BlocksWritten != 0 || len(s.PerDrive) != 2 {
		t.Errorf("ResetStats left %+v", s)
	}
	// Data survives the reset.
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: 0, Dst: buf}}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := newTest(t, 2, 2)
	buf := make([]uint64, 2)
	_ = a.WriteOp([]WriteReq{{Disk: 0, Track: 0, Src: buf}})
	_ = a.ReadOp([]ReadReq{{Disk: 1, Track: 0, Dst: buf}})
	var total Stats
	total.Add(a.Stats())
	total.Add(a.Stats())
	if total.Ops != 4 || total.BlocksRead != 2 || total.BlocksWritten != 2 {
		t.Errorf("Add gave %+v", total)
	}
	if total.PerDrive[0].BlocksWritten != 2 || total.PerDrive[1].BlocksRead != 2 {
		t.Errorf("per-drive Add gave %+v", total.PerDrive)
	}
}

func TestReadWriteRoundTripProperty(t *testing.T) {
	// Random write/read sequences against a map-based oracle.
	f := func(seed uint64) bool {
		r := prng.New(seed)
		d := r.Intn(4) + 1
		b := r.Intn(8) + 1
		a := MustNewArray(Config{D: d, B: b})
		oracle := make(map[Addr][]uint64)
		for op := 0; op < 50; op++ {
			disk := r.Intn(d)
			track := r.Intn(20)
			if r.Bool() {
				src := make([]uint64, b)
				for i := range src {
					src[i] = r.Uint64()
				}
				if err := a.WriteOp([]WriteReq{{Disk: disk, Track: track, Src: src}}); err != nil {
					return false
				}
				oracle[Addr{disk, track}] = src
			} else {
				dst := make([]uint64, b)
				if err := a.ReadOp([]ReadReq{{Disk: disk, Track: track, Dst: dst}}); err != nil {
					return false
				}
				want := oracle[Addr{disk, track}]
				for i := range dst {
					w := uint64(0)
					if want != nil {
						w = want[i]
					}
					if dst[i] != w {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReleaseGuards(t *testing.T) {
	a := newTest(t, 2, 2)
	t0 := a.Alloc(0)
	if err := a.Release(0, t0); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(0, t0); err == nil {
		t.Error("double release accepted")
	}
	if err := a.Release(0, 99); err == nil {
		t.Error("release of never-allocated track accepted")
	}
	if err := a.Release(-1, 0); err == nil {
		t.Error("release on negative drive accepted")
	}
	if err := a.Release(2, 0); err == nil {
		t.Error("release on out-of-range drive accepted")
	}
	if err := a.Release(0, -1); err == nil {
		t.Error("release of negative track accepted")
	}
}

func TestAllocReuseOrder(t *testing.T) {
	// Freed tracks are reused LIFO, newest first, before the drive grows.
	a := newTest(t, 1, 1)
	t0, t1, t2 := a.Alloc(0), a.Alloc(0), a.Alloc(0)
	for _, tr := range []int{t0, t1, t2} {
		if err := a.Release(0, tr); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Alloc(0); got != t2 {
		t.Errorf("first reuse = %d, want %d", got, t2)
	}
	if got := a.Alloc(0); got != t1 {
		t.Errorf("second reuse = %d, want %d", got, t1)
	}
	if got := a.Alloc(0); got != t0 {
		t.Errorf("third reuse = %d, want %d", got, t0)
	}
	if got := a.Alloc(0); got != 3 {
		t.Errorf("post-reuse Alloc = %d, want fresh track 3", got)
	}
}

func TestUtilizationEmptyIsZero(t *testing.T) {
	var s Stats
	if got := s.Utilization(); got != 0 {
		t.Errorf("zero-value Stats Utilization = %v, want 0", got)
	}
	s = Stats{Ops: 3}
	if got := s.Utilization(); got != 0 {
		t.Errorf("Stats without PerDrive Utilization = %v, want 0", got)
	}
}

func TestStatsAddMismatchPanics(t *testing.T) {
	a2 := newTest(t, 2, 2)
	a3 := newTest(t, 3, 2)
	defer func() {
		if recover() == nil {
			t.Error("Stats.Add of mismatched drive counts did not panic")
		}
	}()
	s := a2.Stats()
	s.Add(a3.Stats())
}

func TestAllocSnapshotRestore(t *testing.T) {
	a := newTest(t, 2, 2)
	committed := a.Alloc(0)
	if err := a.WriteOp([]WriteReq{{Disk: 0, Track: committed, Src: []uint64{5, 6}}}); err != nil {
		t.Fatal(err)
	}
	freed := a.Alloc(1)
	if err := a.Release(1, freed); err != nil {
		t.Fatal(err)
	}
	m := a.AllocSnapshot()

	// An "aborted attempt": allocate fresh tracks and pop the free list,
	// write to all of them.
	fresh := a.Alloc(0)
	reused := a.Alloc(1)
	if reused != freed {
		t.Fatalf("Alloc after Release = %d, want %d", reused, freed)
	}
	for _, w := range []WriteReq{
		{Disk: 0, Track: fresh, Src: []uint64{7, 8}},
		{Disk: 1, Track: reused, Src: []uint64{9, 10}},
	} {
		if err := a.WriteOp([]WriteReq{w}); err != nil {
			t.Fatal(err)
		}
	}

	a.AllocRestore(m)
	// The committed track survives; the attempt's tracks are wiped and
	// available again.
	dst := make([]uint64, 2)
	if err := a.ReadOp([]ReadReq{{Disk: 0, Track: committed, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 5 || dst[1] != 6 {
		t.Errorf("committed track lost by rollback: %v", dst)
	}
	if got := a.Alloc(0); got != fresh {
		t.Errorf("Alloc after rollback = %d, want %d again", got, fresh)
	}
	if got := a.Alloc(1); got != freed {
		t.Errorf("free list not restored: Alloc = %d, want %d", got, freed)
	}
	for _, ad := range []Addr{{0, fresh}, {1, freed}} {
		if err := a.ReadOp([]ReadReq{{Disk: ad.Disk, Track: ad.Track, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
		if dst[0] != 0 || dst[1] != 0 {
			t.Errorf("aborted attempt's data leaked through rollback at %v: %v", ad, dst)
		}
	}
}
