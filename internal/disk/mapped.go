package disk

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"embsp/internal/mem"
	"embsp/internal/obs"
)

// Mapped is an mmap-backed Store: the same on-disk layout as File —
// one drive-NNN.dat per simulated drive, fixed (2+B)-word checksummed
// slots, the same geometry file — but the drive files are mapped into
// memory instead of accessed with pread/pwrite. A read decodes the
// mapped slot straight into the caller's buffer (one copy, no syscall,
// no scratch encode/decode round-trip) and a write encodes straight
// into the mapping; durability is established by Sync via msync+fsync.
//
// Because the byte format is identical to File's, the store kinds are
// interchangeable under the engines' commit journal: a run killed on
// one store kind resumes on the other (the config fingerprint
// deliberately excludes the store kind, like it excludes the I/O
// schedule). Crash safety is also File's, unchanged: the per-track
// checksum makes a torn mapped write — the page writeback equivalent
// of a torn pwrite — detectable instead of silently delivering
// garbage, releases stay metadata-only, and wipe-on-alloc still
// clears stale magic words before a slot is reused. The one hazard
// specific to mmap, SIGBUS on access beyond end-of-file, is
// unreachable by construction: the file is always ftruncated to the
// mapped capacity before the mapping is created.
//
// Mapped is fully synchronous (every transfer happens inside the
// call, under one lock) and does not implement Prefetcher: there is
// no physical queue to overlap, which is the point — on page-cache
// fast storage the zero-copy path *is* the fast path, and the group
// pipeline degrades gracefully to the serial schedule exactly as on
// the in-memory Array. Model accounting is identical to Array and
// File, so runs are bitwise identical across all three.
//
// The words of mapped capacity are tracked in a mem.Accountant
// (MappedWords/MappedHigh) for observability: mapped pages are backed
// by the page cache, not the engine's internal memory M, so they are
// accounted separately and never charged against the engine budget.
type Mapped struct {
	cfg   Config
	dir   string
	slotB int64
	lat   time.Duration
	tr    *obs.Tracer
	tpid  int

	mu       sync.Mutex
	files    []*os.File
	maps     [][]byte // drive d's file, mapped; len = capT[d]*slotB
	capT     []int    // mapped capacity of drive d, in tracks
	needSync []bool   // drives with writes (or growth) since their last Sync
	drives   []drive  // allocator metadata (tracks field unused)
	stats    Stats
	repl     map[Addr]struct{} // tracks logically mutated since TakeDirty
	acct     *mem.Accountant   // mapped words, observability only
}

// MappedOptions tunes an mmap-backed store.
type MappedOptions struct {
	// AccessLatency emulates the access time of one track transfer,
	// exactly as FileOptions.AccessLatency does for the synchronous
	// File store: each mapped slot access sleeps this long first,
	// inside the call.
	AccessLatency time.Duration
	// Tracer, when non-nil, records every mapped transfer as an
	// "io"-category span ("map-read", "map-write", "map-sync"),
	// labelled with TracePID and 1+drive like File's spans.
	Tracer *obs.Tracer
	// TracePID labels the store's spans with the owning processor id.
	TracePID int
}

// MmapSupported reports whether this platform can open a Mapped store.
// Callers that want the mmap fast path opportunistically (the engines'
// Options.MappedStore) fall back to OpenFileOpts when it is false.
func MmapSupported() bool { return mmapSupported }

// minMappedTracks is the initial per-drive mapped capacity; growth
// doubles from there, so remaps are O(log tracks) per drive.
const minMappedTracks = 64

// OpenMapped opens (resume) or creates (fresh) an mmap-backed store
// under dir, with the same directory contract as OpenFile: a fresh
// open truncates previous drive files and records the geometry, a
// resuming open requires a matching geometry and leaves all track
// contents in place — including contents written by a File store,
// which uses the identical layout.
func OpenMapped(dir string, cfg Config, resume bool, opt MappedOptions) (*Mapped, error) {
	if !mmapSupported {
		return nil, errNoMmap()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	geomPath := filepath.Join(dir, "geometry")
	if resume {
		if err := checkGeometry(geomPath, cfg); err != nil {
			return nil, err
		}
	} else if err := writeGeometry(geomPath, cfg); err != nil {
		return nil, err
	}
	m := &Mapped{
		cfg:      cfg,
		dir:      dir,
		slotB:    int64(2+cfg.B) * 8,
		lat:      opt.AccessLatency,
		tr:       opt.Tracer,
		tpid:     opt.TracePID,
		files:    make([]*os.File, cfg.D),
		maps:     make([][]byte, cfg.D),
		capT:     make([]int, cfg.D),
		needSync: make([]bool, cfg.D),
		drives:   make([]drive, cfg.D),
		repl:     make(map[Addr]struct{}),
		acct:     mem.NewAccountant(0), // non-positive limit: track, never block
	}
	m.stats.PerDrive = make([]DriveStats, cfg.D)
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	for d := 0; d < cfg.D; d++ {
		fh, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("drive-%03d.dat", d)), flags, 0o666)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.files[d] = fh
		m.drives[d].lastTrack = -1
		// Map at least the existing contents (a resume may adopt a
		// store a File run grew track by track), rounded up to whole
		// slots and the minimum capacity.
		st, err := fh.Stat()
		if err != nil {
			m.Close()
			return nil, err
		}
		capT := int((st.Size() + m.slotB - 1) / m.slotB)
		if capT < minMappedTracks {
			capT = minMappedTracks
		}
		if err := m.remap(d, capT); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// errNoMmap exists so the non-Linux build's stubs and the portable
// OpenMapped guard share one definition site.
func errNoMmap() error {
	return fmt.Errorf("disk: mmap-backed store is not supported on %s", runtime.GOOS)
}

// remap grows drive d's mapping to newCap tracks: extend the file
// first (so no mapped page is ever beyond end-of-file), then replace
// the mapping. Called under m.mu (or during Open, single-threaded).
func (m *Mapped) remap(d, newCap int) error {
	if err := m.files[d].Truncate(int64(newCap) * m.slotB); err != nil {
		return fmt.Errorf("disk: growing mapped drive %d to %d tracks: %w", d, newCap, err)
	}
	nb, err := mmapFile(m.files[d], newCap*int(m.slotB))
	if err != nil {
		return fmt.Errorf("disk: mapping drive %d (%d tracks): %w", d, newCap, err)
	}
	if m.maps[d] != nil {
		old := int64(len(m.maps[d]) / 8)
		if err := munmapFile(m.maps[d]); err != nil {
			_ = munmapFile(nb)
			return err
		}
		m.acct.Release(old)
	}
	if err := m.acct.Grab(int64(len(nb) / 8)); err != nil {
		// Unlimited accountant: only reachable on arithmetic overflow.
		_ = munmapFile(nb)
		return err
	}
	m.maps[d] = nb
	m.capT[d] = newCap
	// The file grew: its new size must reach disk with the next Sync.
	m.needSync[d] = true
	return nil
}

// slot returns the mapped bytes of track t on drive d. Caller holds
// m.mu and has ensured t < m.capT[d].
func (m *Mapped) slot(d, t int) []byte {
	off := int64(t) * m.slotB
	return m.maps[d][off : off+m.slotB]
}

// Config returns the store configuration.
func (m *Mapped) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated I/O statistics.
func (m *Mapped) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.PerDrive = append([]DriveStats(nil), m.stats.PerDrive...)
	return s
}

// ResetStats zeroes the model statistics, leaving stored data alone.
func (m *Mapped) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{PerDrive: make([]DriveStats, m.cfg.D)}
}

// Overlap returns zeroes: the mapped store is fully synchronous, so
// there is no physical overlap to observe. It exists so the engines
// can treat File and Mapped uniformly.
func (m *Mapped) Overlap() OverlapStats { return OverlapStats{} }

// ResetOverlap is a no-op for the synchronous mapped store.
func (m *Mapped) ResetOverlap() {}

// MappedWords returns the current mapped capacity across all drives,
// in words. Page-cache memory, not engine memory: reported for
// observability, never charged against the engine's M budget.
func (m *Mapped) MappedWords() int64 { return m.acct.Used() }

// MappedHigh returns the high-water mark of MappedWords.
func (m *Mapped) MappedHigh() int64 { return m.acct.High() }

func (m *Mapped) touch(d, t int) {
	dr := &m.drives[d]
	if t == dr.lastTrack+1 {
		m.stats.PerDrive[d].SeqAccesses++
	} else {
		m.stats.PerDrive[d].RandAccesses++
	}
	dr.lastTrack = t
}

// blank reports whether the track reads as zeros by allocator
// metadata alone — same rule as Array and File.
func (m *Mapped) blank(d, t int) bool {
	dr := &m.drives[d]
	if t >= dr.next {
		return true
	}
	_, free := dr.freeSet[t]
	return free
}

func (m *Mapped) delay() {
	if m.lat > 0 {
		time.Sleep(m.lat)
	}
}

// readTrack decodes the mapped slot (d, t) into dst. Caller holds
// m.mu; the track is not blank by metadata.
func (m *Mapped) readTrack(d, t int, dst []uint64) error {
	sp := m.tr.Begin(obs.CatIO, "map-read", m.tpid, 1+d)
	defer sp.End()
	m.delay()
	if t >= m.capT[d] {
		// Beyond the mapped (= physical) capacity: never written.
		clear(dst)
		return nil
	}
	s := m.slot(d, t)
	if binary.LittleEndian.Uint64(s[0:]) != trackMagic {
		// Never physically written, or wiped by a rollback: blank.
		clear(dst)
		return nil
	}
	getWords(dst, s[16:])
	if Checksum(dst) != binary.LittleEndian.Uint64(s[8:]) {
		return &CorruptTrackError{Path: m.files[d].Name(), Disk: d, Track: t}
	}
	return nil
}

// writeTrack encodes src into the mapped slot (d, t), growing the
// mapping as needed. Caller holds m.mu.
func (m *Mapped) writeTrack(d, t int, src []uint64) error {
	sp := m.tr.Begin(obs.CatIO, "map-write", m.tpid, 1+d)
	defer sp.End()
	m.delay()
	if t >= m.capT[d] {
		newCap := m.capT[d] * 2
		if newCap <= t {
			newCap = t + 1
		}
		if err := m.remap(d, newCap); err != nil {
			return err
		}
	}
	s := m.slot(d, t)
	binary.LittleEndian.PutUint64(s[0:], trackMagic)
	binary.LittleEndian.PutUint64(s[8:], Checksum(src))
	putWords(s[16:], src)
	m.needSync[d] = true
	return nil
}

// wipeTrack clears the slot's magic word so the track reads as blank
// again. A track beyond the mapped capacity has no bytes at all and
// needs no wipe. Caller holds m.mu.
func (m *Mapped) wipeTrack(d, t int) {
	m.repl[Addr{Disk: d, Track: t}] = struct{}{}
	if t >= m.capT[d] {
		return
	}
	binary.LittleEndian.PutUint64(m.slot(d, t)[0:], 0)
	m.needSync[d] = true
}

// ReadOp performs one parallel read, at most one track per drive, with
// the same validation, accounting and blank-track semantics as
// Array.ReadOp and File.ReadOp.
func (m *Mapped) ReadOp(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(m.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range reqs {
		if len(r.Dst) != m.cfg.B {
			return fmt.Errorf("disk: read buffer has %d words, want B=%d", len(r.Dst), m.cfg.B)
		}
		if m.blank(r.Disk, r.Track) {
			clear(r.Dst)
		} else if err := m.readTrack(r.Disk, r.Track, r.Dst); err != nil {
			return err
		}
		m.touch(r.Disk, r.Track)
		m.stats.PerDrive[r.Disk].BlocksRead++
	}
	m.stats.Ops++
	m.stats.ReadOps++
	m.stats.BlocksRead += int64(len(reqs))
	return nil
}

// WriteOp performs one parallel write, at most one track per drive.
// Fully synchronous: when it returns, the mapping holds the new
// payload (durability still requires Sync).
func (m *Mapped) WriteOp(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	if err := validateDistinct(m.cfg, len(reqs), func(i int) (int, int) { return reqs[i].Disk, reqs[i].Track }); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range reqs {
		if len(r.Src) != m.cfg.B {
			return fmt.Errorf("disk: write buffer has %d words, want B=%d", len(r.Src), m.cfg.B)
		}
		if err := m.writeTrack(r.Disk, r.Track, r.Src); err != nil {
			return err
		}
		m.touch(r.Disk, r.Track)
		m.stats.PerDrive[r.Disk].BlocksWritten++
		m.repl[Addr{Disk: r.Disk, Track: r.Track}] = struct{}{}
	}
	m.stats.Ops++
	m.stats.WriteOps++
	m.stats.BlocksWritten += int64(len(reqs))
	return nil
}

// Alloc returns a free track on drive d — identical allocation order
// to Array and File, and like File it wipes the slot's stale magic
// word so recycled tracks (and slots left by a crashed run) read
// blank.
func (m *Mapped) Alloc(d int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	dr := &m.drives[d]
	var t int
	if n := len(dr.freeList); n > 0 {
		t = dr.freeList[n-1]
		dr.freeList = dr.freeList[:n-1]
		delete(dr.freeSet, t)
	} else {
		t = dr.next
		dr.next++
	}
	m.wipeTrack(d, t)
	return t
}

// Release returns a track to the drive's free list, metadata-only —
// the same crash-safety property as File.Release.
func (m *Mapped) Release(d, t int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 || d >= m.cfg.D {
		return fmt.Errorf("disk: Release drive %d out of range [0,%d)", d, m.cfg.D)
	}
	dr := &m.drives[d]
	if t < 0 || t >= dr.next {
		return fmt.Errorf("disk: Release track %d on drive %d outside allocated range [0,%d)", t, d, dr.next)
	}
	if _, free := dr.freeSet[t]; free {
		return fmt.Errorf("disk: double release of track %d on drive %d", t, d)
	}
	if dr.freeSet == nil {
		dr.freeSet = make(map[int]struct{})
	}
	dr.freeSet[t] = struct{}{}
	dr.freeList = append(dr.freeList, t)
	return nil
}

// ReserveRot allocates a standard-consecutive-format area with the
// given drive rotation, exactly as Array.ReserveRot does, wiping the
// reserved slots' stale magic words like File.ReserveRot.
func (m *Mapped) ReserveRot(nBlocks, rot int) Area {
	m.mu.Lock()
	defer m.mu.Unlock()
	if nBlocks < 0 {
		panic("disk: Reserve with negative size")
	}
	per := (nBlocks + m.cfg.D - 1) / m.cfg.D
	ar := Area{d: m.cfg.D, n: nBlocks, rot: ((rot % m.cfg.D) + m.cfg.D) % m.cfg.D, base: make([]int, m.cfg.D)}
	for d := range m.drives {
		dr := &m.drives[d]
		ar.base[d] = dr.next
		dr.next += per
		for t := ar.base[d]; t < dr.next; t++ {
			m.wipeTrack(d, t)
		}
	}
	return ar
}

// AllocSnapshot captures the allocator state for a later AllocRestore.
func (m *Mapped) AllocSnapshot() AllocMark {
	m.mu.Lock()
	defer m.mu.Unlock()
	mk := AllocMark{next: make([]int, m.cfg.D), free: make([][]int, m.cfg.D)}
	for d := range m.drives {
		mk.next[d] = m.drives[d].next
		mk.free[d] = append([]int(nil), m.drives[d].freeList...)
	}
	return mk
}

// AllocRestore rolls the allocator back to a snapshot, wiping the
// magic word of every track the rollback unallocates — the same
// clearing semantics as Array and File.
func (m *Mapped) AllocRestore(mk AllocMark) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := range m.drives {
		dr := &m.drives[d]
		for t := mk.next[d]; t < dr.next; t++ {
			m.wipeTrack(d, t)
		}
		dr.next = mk.next[d]
		dr.freeList = append(dr.freeList[:0], mk.free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			m.wipeTrack(d, t)
			dr.freeSet[t] = struct{}{}
		}
	}
}

// State captures the store's persistent metadata.
func (m *Mapped) State() StoreState {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := StoreState{
		Stats: m.stats,
		Next:  make([]int, m.cfg.D),
		Last:  make([]int, m.cfg.D),
		Free:  make([][]int, m.cfg.D),
	}
	s.Stats.PerDrive = append([]DriveStats(nil), m.stats.PerDrive...)
	for d := range m.drives {
		s.Next[d] = m.drives[d].next
		s.Last[d] = m.drives[d].lastTrack
		s.Free[d] = append([]int(nil), m.drives[d].freeList...)
	}
	return s
}

// AdoptState replaces the store's metadata with a captured State — the
// resume path, identical to File.AdoptState (there is no queued
// physical work to drain: the mapped store is synchronous).
func (m *Mapped) AdoptState(s StoreState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(s.Next) != m.cfg.D || len(s.Last) != m.cfg.D || len(s.Free) != m.cfg.D {
		return fmt.Errorf("disk: AdoptState of %d/%d/%d-drive state into %d-drive store", len(s.Next), len(s.Last), len(s.Free), m.cfg.D)
	}
	st := s.Stats
	st.PerDrive = append([]DriveStats(nil), s.Stats.PerDrive...)
	m.stats = st
	for d := range m.drives {
		dr := &m.drives[d]
		dr.next = s.Next[d]
		dr.lastTrack = s.Last[d]
		dr.freeList = append([]int(nil), s.Free[d]...)
		dr.freeSet = make(map[int]struct{}, len(dr.freeList))
		for _, t := range dr.freeList {
			dr.freeSet[t] = struct{}{}
		}
	}
	return nil
}

// Sync makes all stored track contents durable: kick writeback of the
// dirty mappings (msync MS_ASYNC), then fsync the files. On Linux's
// unified page cache the fsync alone covers mmap-dirtied pages — it
// is what establishes durability; the asynchronous msync just starts
// the writeback early. (A synchronous MS_SYNC here would write every
// dirty page back twice per barrier.) The fsync also makes the file
// size from any growth ftruncate durable. Drives with no stores since
// their last Sync are skipped.
func (m *Mapped) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := range m.files {
		if m.files[d] == nil || !m.needSync[d] {
			continue
		}
		sp := m.tr.Begin(obs.CatIO, "map-sync", m.tpid, 1+d)
		err := msyncFile(m.maps[d])
		if err == nil {
			err = m.files[d].Sync()
		}
		sp.End()
		if err != nil {
			return err
		}
		m.needSync[d] = false
	}
	return nil
}

// Close unmaps and closes every drive file.
func (m *Mapped) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for d := range m.files {
		if m.maps[d] != nil {
			if err := munmapFile(m.maps[d]); err != nil && first == nil {
				first = err
			}
			m.acct.Release(int64(len(m.maps[d]) / 8))
			m.maps[d] = nil
			m.capT[d] = 0
		}
		if m.files[d] != nil {
			if err := m.files[d].Close(); err != nil && first == nil {
				first = err
			}
			m.files[d] = nil
		}
	}
	return first
}

// TakeDirty returns the addresses of every track logically mutated
// since the previous TakeDirty and resets the set — the replication
// delta surface, identical in contract to File.TakeDirty.
func (m *Mapped) TakeDirty() []Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Addr, 0, len(m.repl))
	for a := range m.repl {
		out = append(out, a)
	}
	clear(m.repl)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Disk != out[j].Disk {
			return out[i].Disk < out[j].Disk
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// ExportTrack reads the committed payload of one track, bypassing all
// model accounting and emulated latency — File.ExportTrack's contract
// on the mapped store. There is no write-behind cache to quiesce, but
// callers Sync first anyway for the durability half of the contract.
func (m *Mapped) ExportTrack(d, t int) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 || d >= m.cfg.D || t < 0 {
		return nil, fmt.Errorf("disk: ExportTrack (%d,%d) out of range", d, t)
	}
	if m.blank(d, t) || t >= m.capT[d] {
		return nil, nil
	}
	s := m.slot(d, t)
	if binary.LittleEndian.Uint64(s[0:]) != trackMagic {
		return nil, nil // never physically written (or wiped): blank
	}
	dst := make([]uint64, m.cfg.B)
	getWords(dst, s[16:])
	if Checksum(dst) != binary.LittleEndian.Uint64(s[8:]) {
		return nil, &CorruptTrackError{Path: m.files[d].Name(), Disk: d, Track: t}
	}
	return dst, nil
}

// ImportTrack writes one track payload raw, or wipes the slot when
// payload is nil — File.ImportTrack's contract on the mapped store.
func (m *Mapped) ImportTrack(d, t int, payload []uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 || d >= m.cfg.D || t < 0 {
		return fmt.Errorf("disk: ImportTrack (%d,%d) out of range", d, t)
	}
	if payload == nil {
		if t < m.capT[d] {
			binary.LittleEndian.PutUint64(m.slot(d, t)[0:], 0)
			m.needSync[d] = true
		}
		return nil
	}
	if len(payload) != m.cfg.B {
		return fmt.Errorf("disk: ImportTrack payload has %d words, want B=%d", len(payload), m.cfg.B)
	}
	if t >= m.capT[d] {
		newCap := m.capT[d] * 2
		if newCap <= t {
			newCap = t + 1
		}
		if err := m.remap(d, newCap); err != nil {
			return err
		}
	}
	s := m.slot(d, t)
	binary.LittleEndian.PutUint64(s[0:], trackMagic)
	binary.LittleEndian.PutUint64(s[8:], Checksum(payload))
	putWords(s[16:], payload)
	m.needSync[d] = true
	return nil
}
