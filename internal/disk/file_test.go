package disk

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"embsp/internal/prng"
)

func newFileTest(t *testing.T, d, b int) *File {
	t.Helper()
	f, err := OpenFile(t.TempDir(), Config{D: d, B: b}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func track(b int, fill uint64) []uint64 {
	ws := make([]uint64, b)
	for i := range ws {
		ws[i] = fill + uint64(i)
	}
	return ws
}

// TestFileMatchesArray drives a File and an Array through an identical
// random operation sequence and checks that data, statistics and
// allocator state stay bitwise equal — the property the durable
// engines rely on for resumed-vs-uninterrupted result identity.
func TestFileMatchesArray(t *testing.T) {
	const D, B = 3, 16
	f := newFileTest(t, D, B)
	a := MustNewArray(Config{D: D, B: B})
	r := prng.New(11)
	type addr struct{ d, t int }
	var live []addr
	for op := 0; op < 400; op++ {
		switch {
		case len(live) > 0 && r.Intn(4) == 0: // release
			i := r.Intn(len(live))
			ad := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := f.Release(ad.d, ad.t); err != nil {
				t.Fatal(err)
			}
			if err := a.Release(ad.d, ad.t); err != nil {
				t.Fatal(err)
			}
		case len(live) > 0 && r.Intn(3) == 0: // read back and compare
			ad := live[r.Intn(len(live))]
			fw, aw := make([]uint64, B), make([]uint64, B)
			if err := f.ReadOp([]ReadReq{{Disk: ad.d, Track: ad.t, Dst: fw}}); err != nil {
				t.Fatal(err)
			}
			if err := a.ReadOp([]ReadReq{{Disk: ad.d, Track: ad.t, Dst: aw}}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fw, aw) {
				t.Fatalf("op %d: track (%d,%d) differs between File and Array", op, ad.d, ad.t)
			}
		default: // allocate and write
			d := r.Intn(D)
			ft, at := f.Alloc(d), a.Alloc(d)
			if ft != at {
				t.Fatalf("op %d: File allocated track %d, Array %d", op, ft, at)
			}
			ws := track(B, r.Uint64())
			if err := f.WriteOp([]WriteReq{{Disk: d, Track: ft, Src: ws}}); err != nil {
				t.Fatal(err)
			}
			if err := a.WriteOp([]WriteReq{{Disk: d, Track: at, Src: ws}}); err != nil {
				t.Fatal(err)
			}
			live = append(live, addr{d, ft})
		}
	}
	if !reflect.DeepEqual(f.Stats(), a.Stats()) {
		t.Errorf("statistics diverged:\nfile:  %+v\narray: %+v", f.Stats(), a.Stats())
	}
	if !reflect.DeepEqual(f.State(), a.State()) {
		t.Errorf("allocator state diverged:\nfile:  %+v\narray: %+v", f.State(), a.State())
	}
}

// TestFileReopen checks that synced track contents survive Close and a
// resume reopen, and that allocator metadata adoption reproduces the
// original store exactly.
func TestFileReopen(t *testing.T) {
	const D, B = 2, 8
	dir := t.TempDir()
	cfg := Config{D: D, B: B}
	f, err := OpenFile(dir, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	want := track(B, 42)
	tr := f.Alloc(1)
	if err := f.WriteOp([]WriteReq{{Disk: 1, Track: tr, Src: want}}); err != nil {
		t.Fatal(err)
	}
	state := f.State()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(dir, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AdoptState(state); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.State(), state) {
		t.Errorf("adopted state mismatch:\ngot  %+v\nwant %+v", g.State(), state)
	}
	got := make([]uint64, B)
	if err := g.ReadOp([]ReadReq{{Disk: 1, Track: tr, Dst: got}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("track content not preserved across reopen: got %v want %v", got, want)
	}
}

// TestFileGeometryMismatch: resuming a state directory with a
// different drive count or block size must fail up front.
func TestFileGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, Config{D: 2, B: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, cfg := range []Config{{D: 3, B: 8}, {D: 2, B: 16}} {
		if _, err := OpenFile(dir, cfg, true); err == nil {
			t.Errorf("resume with geometry %+v: want error, got nil", cfg)
		}
	}
	if _, err := OpenFile(t.TempDir(), Config{D: 2, B: 8}, true); err == nil {
		t.Error("resume from an empty directory: want error, got nil")
	}
}

// TestFileBlankTracks: allocated-but-never-written and released tracks
// read as zeros, regardless of stale bytes in the backing file.
func TestFileBlankTracks(t *testing.T) {
	const B = 8
	f := newFileTest(t, 1, B)
	t0 := f.Alloc(0)
	got := make([]uint64, B)
	if err := f.ReadOp([]ReadReq{{Disk: 0, Track: t0, Dst: got}}); err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w != 0 {
			t.Fatalf("fresh track reads %v, want zeros", got)
		}
	}
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: t0, Src: track(B, 7)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(0, t0); err != nil {
		t.Fatal(err)
	}
	if t1 := f.Alloc(0); t1 != t0 {
		t.Fatalf("free list recycling broken: got track %d, want %d", t1, t0)
	}
	if err := f.ReadOp([]ReadReq{{Disk: 0, Track: t0, Dst: got}}); err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w != 0 {
			t.Fatalf("recycled track reads %v, want zeros", got)
		}
	}
}

// TestFileCorruptTrack flips one byte of a committed track on the real
// filesystem and checks the read reports a typed CorruptTrackError
// instead of returning damaged data.
func TestFileCorruptTrack(t *testing.T) {
	const B = 8
	dir := t.TempDir()
	f, err := OpenFile(dir, Config{D: 1, B: B}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	t0 := f.Alloc(0)
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: t0, Src: track(B, 3)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "drive-000.dat")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // inside the track payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	err = f.ReadOp([]ReadReq{{Disk: 0, Track: t0, Dst: make([]uint64, B)}})
	var ce *CorruptTrackError
	if !errors.As(err, &ce) {
		t.Fatalf("read of corrupted track: got %v, want *CorruptTrackError", err)
	}
	if ce.Disk != 0 || ce.Track != t0 {
		t.Errorf("error names track (%d,%d), want (0,%d)", ce.Disk, ce.Track, t0)
	}
}

// TestFileAllocRestore: rolling the allocator back invalidates the
// tracks allocated since the snapshot — they must read as blank even
// though their bytes were physically written.
func TestFileAllocRestore(t *testing.T) {
	const B = 8
	f := newFileTest(t, 1, B)
	keep := f.Alloc(0)
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: keep, Src: track(B, 1)}}); err != nil {
		t.Fatal(err)
	}
	mark := f.AllocSnapshot()
	scratch := f.Alloc(0)
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: scratch, Src: track(B, 2)}}); err != nil {
		t.Fatal(err)
	}
	f.AllocRestore(mark)

	got := make([]uint64, B)
	if err := f.ReadOp([]ReadReq{{Disk: 0, Track: keep, Dst: got}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, track(B, 1)) {
		t.Errorf("kept track damaged by rollback: %v", got)
	}
	if again := f.Alloc(0); again != scratch {
		t.Fatalf("rollback did not retract track %d (got %d)", scratch, again)
	}
	if err := f.ReadOp([]ReadReq{{Disk: 0, Track: scratch, Dst: got}}); err != nil {
		t.Fatal(err)
	}
	for _, w := range got {
		if w != 0 {
			t.Fatalf("rolled-back track still holds data: %v", got)
		}
	}
}

// TestFileCloseIdempotent: Close must be callable any number of times
// (the engines close on both success and error unwind paths), and the
// store must stay usable up to the first Close.
func TestFileCloseIdempotent(t *testing.T) {
	const D, B = 2, 8
	f, err := OpenFile(t.TempDir(), Config{D: D, B: B}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteOp([]WriteReq{{Disk: 0, Track: f.Alloc(0), Src: track(B, 1)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Close(); err != nil {
			t.Fatalf("Close #%d after close: %v", i+2, err)
		}
	}
	// Sync after Close skips the nil handles rather than crashing.
	if err := f.Sync(); err != nil {
		t.Errorf("Sync after Close: %v", err)
	}
}

// TestFileOpenErrorPaths: every constructor failure must return a
// typed, actionable error and never leak open drive files (OpenFile
// closes the partially built store itself).
func TestFileOpenErrorPaths(t *testing.T) {
	if _, err := OpenFile(t.TempDir(), Config{D: 0, B: 8}, false); err == nil {
		t.Error("invalid config: want error, got nil")
	}

	// Resume of a directory that was never a store.
	if _, err := OpenFile(t.TempDir(), Config{D: 2, B: 8}, true); err == nil {
		t.Error("resume of empty directory: want error, got nil")
	}

	// A drive path occupied by a directory forces the per-drive open to
	// fail after the geometry landed; OpenFile must clean up after
	// itself and report the failure.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "drive-001.dat"), 0o777); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir, Config{D: 2, B: 8}, false); err == nil {
		t.Error("unopenable drive file: want error, got nil")
	}
	// drive-000.dat was opened (and must have been closed) before
	// drive-001 failed; if the close happened we can recreate freely.
	if err := os.Remove(filepath.Join(dir, "drive-000.dat")); err != nil {
		t.Fatal(err)
	}
}

// TestFileGeometryDurability: the geometry file is written atomically
// (no .tmp residue) and a rewrite of the same directory replaces it.
func TestFileGeometryDurability(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, Config{D: 2, B: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := os.Stat(filepath.Join(dir, "geometry.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("geometry.tmp left behind (err=%v)", err)
	}
	g, err := OpenFile(dir, Config{D: 2, B: 8}, true)
	if err != nil {
		t.Fatalf("resume with matching geometry: %v", err)
	}
	g.Close()
}
