package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Replication support. The cluster runtime ships a node's state to the
// coordinator's replica store at every committed barrier; what it
// needs from the store is (a) the set of tracks whose logical content
// may have changed since the last shipment and (b) raw, side-effect
// free access to track payloads. Both live here, deliberately outside
// the model-accounting surface: none of these methods touch Stats, the
// fault clock, emulated latency or the cache, so a run that exports
// its tracks stays bitwise identical to one that does not.

// TakeDirty returns the addresses of every track logically mutated
// (written, wiped on alloc/reserve, or rolled back) since the previous
// TakeDirty, and resets the set. The set is a superset of the tracks
// whose content differs from the last capture — wipes of already-blank
// tracks and writes later rolled back are included; that is harmless
// for replication, which re-reads the current content per address.
func (f *File) TakeDirty() []Addr {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Addr, 0, len(f.repl))
	for a := range f.repl {
		out = append(out, a)
	}
	clear(f.repl)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Disk != out[j].Disk {
			return out[i].Disk < out[j].Disk
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// ExportTrack reads the committed payload of one track, bypassing all
// model accounting, emulated latency and the write-behind cache. It
// returns nil (no error) when the track reads as blank — released,
// beyond the bump mark, or never physically written. The caller must
// have quiesced the store with Sync first: queued writes that have not
// landed are not visible to the raw read.
func (f *File) ExportTrack(d, t int) ([]uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 || d >= f.cfg.D || t < 0 {
		return nil, fmt.Errorf("disk: ExportTrack (%d,%d) out of range", d, t)
	}
	if f.blank(d, t) {
		return nil, nil
	}
	buf := make([]byte, f.slotB)
	n, err := f.files[d].ReadAt(buf, int64(t)*f.slotB)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n < 8 || binary.LittleEndian.Uint64(buf[0:]) != trackMagic {
		return nil, nil // never physically written (or wiped): blank
	}
	if n < int(f.slotB) {
		return nil, &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	dst := make([]uint64, f.cfg.B)
	getWords(dst, buf[16:])
	if Checksum(dst) != binary.LittleEndian.Uint64(buf[8:]) {
		return nil, &CorruptTrackError{Path: f.files[d].Name(), Disk: d, Track: t}
	}
	return dst, nil
}

// ImportTrack writes one track payload raw — magic word, checksum,
// payload — bypassing all model accounting and the cache, or wipes the
// slot's magic word when payload is nil. It exists for adopting a
// replica snapshot into a fresh store; using it on a store with queued
// physical work is a caller bug.
func (f *File) ImportTrack(d, t int, payload []uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 || d >= f.cfg.D || t < 0 {
		return fmt.Errorf("disk: ImportTrack (%d,%d) out of range", d, t)
	}
	if payload == nil {
		var zero [8]byte
		_, err := f.files[d].WriteAt(zero[:], int64(t)*f.slotB)
		f.markWritten(d)
		return err
	}
	if len(payload) != f.cfg.B {
		return fmt.Errorf("disk: ImportTrack payload has %d words, want B=%d", len(payload), f.cfg.B)
	}
	buf := make([]byte, f.slotB)
	binary.LittleEndian.PutUint64(buf[0:], trackMagic)
	binary.LittleEndian.PutUint64(buf[8:], Checksum(payload))
	putWords(buf[16:], payload)
	_, err := f.files[d].WriteAt(buf, int64(t)*f.slotB)
	f.markWritten(d)
	return err
}
