package disk

// Concurrency stress for the worker-backed file store, aimed at the
// race detector: many goroutines hammer every public entry point of
// one store at once. The assertions are deliberately weak (no panics,
// no lost writes on private tracks) — the point is that `go test
// -race ./...` explores the lock discipline of the cache, the queues,
// the flush-behind goroutines and the overlap counters under real
// contention.

import (
	"sync"
	"testing"
)

// raceStore opens a worker-backed store with a deliberately tiny cache
// so budget-exhausted write stalls and prefetch rejections are hit.
func raceStore(t *testing.T, d, b int) *File {
	t.Helper()
	f, err := OpenFileOpts(t.TempDir(), Config{D: d, B: b}, false, FileOptions{
		Workers:    d,
		CacheWords: int64(2 * d * (b + 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return f
}

// TestFileConcurrentOps runs readers, writers, prefetchers, allocator
// traffic and barrier syncs concurrently. Each worker goroutine owns a
// private track per drive (so its read-back values are deterministic)
// while all of them share the store's drives, queues and cache.
func TestFileConcurrentOps(t *testing.T) {
	const d, b, workers, rounds = 4, 16, 8, 40
	f := raceStore(t, d, b)

	// Pre-allocate a private track per (worker, drive).
	tracks := make([][]int, workers)
	for w := range tracks {
		tracks[w] = make([]int, d)
		for dr := 0; dr < d; dr++ {
			tracks[w][dr] = f.Alloc(dr)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]uint64, b)
			dst := make([]uint64, b)
			for r := 0; r < rounds; r++ {
				wreqs := make([]WriteReq, d)
				for dr := 0; dr < d; dr++ {
					for i := range src {
						src[i] = uint64(w<<24 | r<<12 | i)
					}
					wreqs[dr] = WriteReq{Disk: dr, Track: tracks[w][dr], Src: src}
				}
				if err := f.WriteOp(wreqs); err != nil {
					t.Errorf("worker %d: WriteOp: %v", w, err)
					return
				}
				// Prefetch everyone's tracks — hits, misses and budget
				// rejections all race with the writes above.
				var addrs []Addr
				for _, ts := range tracks {
					for dr, tr := range ts {
						addrs = append(addrs, Addr{Disk: dr, Track: tr})
					}
				}
				f.Prefetch(addrs)
				for dr := 0; dr < d; dr++ {
					if err := f.ReadOp([]ReadReq{{Disk: dr, Track: tracks[w][dr], Dst: dst}}); err != nil {
						t.Errorf("worker %d: ReadOp: %v", w, err)
						return
					}
					if dst[1] != uint64(w<<24|r<<12|1) {
						t.Errorf("worker %d round %d: read back %#x, want %#x", w, r, dst[1], w<<24|r<<12|1)
						return
					}
				}
				switch r % 4 {
				case 0:
					if err := f.Sync(); err != nil {
						t.Errorf("worker %d: Sync: %v", w, err)
						return
					}
				case 1:
					_ = f.Stats()
					_ = f.Overlap()
				case 2:
					// Allocator churn on a scratch track.
					tr := f.Alloc(w % d)
					if err := f.Release(w%d, tr); err != nil {
						t.Errorf("worker %d: Release: %v", w, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestFileConcurrentAllocRestore interleaves snapshot/restore cycles
// (the retry path's rollback, with its queued wipes) with reads and
// writes on stable tracks from other goroutines.
func TestFileConcurrentAllocRestore(t *testing.T) {
	const d, b = 3, 8
	f := raceStore(t, d, b)

	stable := make([]int, d)
	src := make([]uint64, b)
	for dr := 0; dr < d; dr++ {
		stable[dr] = f.Alloc(dr)
		for i := range src {
			src[i] = uint64(1000*dr + i)
		}
		if err := f.WriteOp([]WriteReq{{Disk: dr, Track: stable[dr], Src: src}}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Rollback loop: allocate a burst of tracks, write them, roll back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]uint64, b)
		for i := range buf {
			buf[i] = 0xDEAD
		}
		for i := 0; i < 30; i++ {
			m := f.AllocSnapshot()
			var reqs []WriteReq
			for dr := 0; dr < d; dr++ {
				reqs = append(reqs, WriteReq{Disk: dr, Track: f.Alloc(dr), Src: buf})
			}
			if err := f.WriteOp(reqs); err != nil {
				t.Errorf("burst write: %v", err)
				return
			}
			f.AllocRestore(m)
		}
		close(stop)
	}()
	// Reader loop: the stable tracks must read back unchanged through
	// every concurrent rollback.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]uint64, b)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for dr := 0; dr < d; dr++ {
				if err := f.ReadOp([]ReadReq{{Disk: dr, Track: stable[dr], Dst: dst}}); err != nil {
					t.Errorf("stable read: %v", err)
					return
				}
				if dst[1] != uint64(1000*dr+1) {
					t.Errorf("stable track %d/%d corrupted: %#x", dr, stable[dr], dst[1])
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestFileConcurrentSyncClose races barrier syncs against ongoing
// write traffic, then closes mid-flight queues via Close — the drain
// in Close must win cleanly.
func TestFileConcurrentSyncClose(t *testing.T) {
	const d, b = 4, 8
	f, err := OpenFileOpts(t.TempDir(), Config{D: d, B: b}, false, FileOptions{Workers: d})
	if err != nil {
		t.Fatal(err)
	}
	tracks := make([]int, d)
	for dr := range tracks {
		tracks[dr] = f.Alloc(dr)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]uint64, b)
			for i := 0; i < 20; i++ {
				var reqs []WriteReq
				for dr := 0; dr < d; dr++ {
					reqs = append(reqs, WriteReq{Disk: dr, Track: tracks[dr], Src: src})
				}
				if err := f.WriteOp(reqs); err != nil {
					t.Errorf("WriteOp: %v", err)
					return
				}
				if i%5 == 0 {
					if err := f.Sync(); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
