// Package pdm implements the previously-known sequential EM baselines
// the paper's Table 1 compares against (its second column), on the
// same simulated disk substrate as the EM-CGM simulation:
//
//   - external multiway merge sort in Vitter's parallel disk model
//     (Aggarwal–Vitter / Vitter–Shriver shape, with D-parallel striped
//     runs and forecast buffers) [1], [31], [33];
//   - permutation, directly (one random access per record) and by
//     sorting — the paper's min(n/D, sort) bound;
//   - matrix transpose (by sorting);
//   - the PRAM-simulation technique of Chiang et al. [14]: one sort
//     per pointer-jumping step, for list ranking;
//   - a Sibeyn–Kaufmann-style one-VP-at-a-time unblocked simulation
//     [26] of arbitrary bsp.Programs (see sksim.go), the paper's
//     closest prior simulation technique.
//
// All I/O is counted by the shared disk.Array, so baseline and
// simulation numbers are directly comparable.
package pdm

import (
	"fmt"

	"embsp/internal/disk"
	"embsp/internal/mem"
)

// Machine is a single-processor PDM machine: M words of internal
// memory over a D-disk array with block size B.
type Machine struct {
	M    int
	Arr  *disk.Array
	Acct *mem.Accountant
}

// NewMachine returns a machine with a fresh disk array.
func NewMachine(m, d, b int) (*Machine, error) {
	arr, err := disk.NewArray(disk.Config{D: d, B: b})
	if err != nil {
		return nil, err
	}
	if m < 4*d*b {
		return nil, fmt.Errorf("pdm: M = %d, want >= 4·D·B = %d (merge buffers)", m, 4*d*b)
	}
	return &Machine{M: m, Arr: arr, Acct: mem.NewAccountant(int64(m))}, nil
}

// File is a sequence of words stored in standard consecutive format.
type File struct {
	area  disk.Area
	words int
}

// Words returns the file length in words.
func (f File) Words() int { return f.words }

// Blocks returns the file length in blocks.
func (f File) Blocks(b int) int { return (f.words + b - 1) / b }

// chunkWords returns the streaming buffer size: half the memory,
// rounded down to whole D·B stripes (at least one stripe).
func (m *Machine) chunkWords() int {
	db := m.Arr.Config().D * m.Arr.Config().B
	c := m.M / 2 / db * db
	if c < db {
		c = db
	}
	return c
}

// WriteFile streams data onto a fresh consecutive area.
func (m *Machine) WriteFile(data []uint64) (File, error) {
	B := m.Arr.Config().B
	nb := (len(data) + B - 1) / B
	area := m.Arr.Reserve(nb)
	chunk := m.chunkWords()
	if err := m.Acct.Grab(int64(chunk)); err != nil {
		return File{}, err
	}
	defer m.Acct.Release(int64(chunk))
	buf := make([]uint64, chunk)
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		nw := end - off
		nbk := (nw + B - 1) / B
		clear(buf[:nbk*B])
		copy(buf, data[off:end])
		if err := m.Arr.WriteRange(area, off/B, off/B+nbk, buf[:nbk*B]); err != nil {
			return File{}, err
		}
	}
	return File{area: area, words: len(data)}, nil
}

// ReadFile streams a file back into memory (counted I/O).
func (m *Machine) ReadFile(f File) ([]uint64, error) {
	B := m.Arr.Config().B
	out := make([]uint64, f.words)
	chunk := m.chunkWords()
	if err := m.Acct.Grab(int64(chunk)); err != nil {
		return nil, err
	}
	defer m.Acct.Release(int64(chunk))
	buf := make([]uint64, chunk)
	for off := 0; off < f.words; off += chunk {
		end := off + chunk
		if end > f.words {
			end = f.words
		}
		nbk := (end - off + B - 1) / B
		if err := m.Arr.ReadRange(f.area, off/B, off/B+nbk, buf[:nbk*B]); err != nil {
			return nil, err
		}
		copy(out[off:end], buf)
	}
	return out, nil
}

// Free releases the file's blocks.
func (m *Machine) Free(f File) { m.Arr.FreeArea(f.area) }
