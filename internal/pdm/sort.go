package pdm

import (
	"container/heap"
	"fmt"

	"embsp/internal/alg/cgm"
)

// MergeSort sorts a file of W-word records lexicographically with the
// classic PDM external merge sort: run formation with memory-sized
// runs, then repeated F-way merging with per-run forecast buffers of
// one full stripe (D blocks), so every refill is one fully parallel
// I/O operation. The I/O cost is Θ((n/DB)·log_{M/B}(n/B)) parallel
// operations — the Table 1 "previous results" column for sorting.
func (m *Machine) MergeSort(f File, w int) (File, error) {
	if w <= 0 || f.words%w != 0 {
		return File{}, fmt.Errorf("pdm: file of %d words is not %d-word records", f.words, w)
	}
	B := m.Arr.Config().B
	db := m.Arr.Config().D * B

	// Pass 0: run formation.
	runWords := m.chunkWords() / w * w
	if runWords == 0 {
		runWords = w
	}
	var runs []File
	if err := m.Acct.Grab(int64(runWords + B + db + w)); err != nil {
		return File{}, err
	}
	buf := make([]uint64, runWords+B) // block padding for w ∤ B
	rr := m.newRunReader(f, w)
	for {
		fill := 0
		for fill+w <= runWords {
			rec, err := rr.next(w)
			if err != nil {
				return File{}, err
			}
			if rec == nil {
				break
			}
			copy(buf[fill:], rec)
			fill += w
		}
		if fill == 0 {
			break
		}
		cgm.SortRecords(buf[:fill], w)
		nbk := (fill + B - 1) / B
		clear(buf[fill : nbk*B])
		run, err := m.writeRun(buf[:nbk*B], fill)
		if err != nil {
			return File{}, err
		}
		runs = append(runs, run)
	}
	m.Acct.Release(int64(runWords + B + db + w))
	if len(runs) == 0 {
		return m.WriteFile(nil)
	}

	// Merge passes: fan-in limited by one stripe of buffer per run
	// plus one output stripe.
	fanIn := (m.M/2)/db - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		var next []File
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := m.mergeRuns(runs[lo:hi], w)
			if err != nil {
				return File{}, err
			}
			for _, r := range runs[lo:hi] {
				m.Free(r)
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs[0], nil
}

// writeRun writes a block-padded buffer holding words valid words.
func (m *Machine) writeRun(buf []uint64, words int) (File, error) {
	B := m.Arr.Config().B
	nbk := len(buf) / B
	area := m.Arr.Reserve(nbk)
	if err := m.Arr.WriteRange(area, 0, nbk, buf); err != nil {
		return File{}, err
	}
	return File{area: area, words: words}, nil
}

// runReader streams one sorted run, refilling a stripe (D blocks) per
// parallel read operation. Records may straddle block boundaries, so
// a partial record tail is carried across refills.
type runReader struct {
	m      *Machine
	f      File
	buf    []uint64
	pos    int // next word within buf
	valid  int // valid words in buf
	blkOff int // next file block to read
	left   int // file words not yet buffered
}

func (m *Machine) newRunReader(f File, w int) *runReader {
	db := m.Arr.Config().D * m.Arr.Config().B
	return &runReader{m: m, f: f, buf: make([]uint64, db+w), left: f.words}
}

// next returns the next record (aliasing an internal buffer, valid
// until the following call) or nil at end of run.
func (r *runReader) next(w int) ([]uint64, error) {
	if r.valid-r.pos < w {
		// Carry the partial tail, then refill with one stripe.
		rem := r.valid - r.pos
		copy(r.buf, r.buf[r.pos:r.valid])
		r.pos, r.valid = 0, rem
		if r.left > 0 {
			B := r.m.Arr.Config().B
			db := len(r.buf) - w
			nb := db / B
			if maxBlk := (r.f.words + B - 1) / B; r.blkOff+nb > maxBlk {
				nb = maxBlk - r.blkOff
			}
			if err := r.m.Arr.ReadRange(r.f.area, r.blkOff, r.blkOff+nb, r.buf[rem:rem+nb*B]); err != nil {
				return nil, err
			}
			r.blkOff += nb
			got := nb * B
			if got > r.left {
				got = r.left
			}
			r.valid += got
			r.left -= got
		}
		if r.valid-r.pos < w {
			return nil, nil
		}
	}
	rec := r.buf[r.pos : r.pos+w]
	r.pos += w
	return rec, nil
}

// mergeHeap orders run heads lexicographically (ties by run index for
// determinism).
type mergeHeap struct {
	heads [][]uint64
	order []int
}

func (h *mergeHeap) Len() int { return len(h.order) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.heads[h.order[i]], h.heads[h.order[j]]
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return h.order[i] < h.order[j]
}
func (h *mergeHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *mergeHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *mergeHeap) Pop() interface{} {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeRuns merges sorted runs into one sorted run.
func (m *Machine) mergeRuns(runs []File, w int) (File, error) {
	B := m.Arr.Config().B
	db := m.Arr.Config().D * B
	total := 0
	for _, r := range runs {
		total += r.words
	}
	nbk := (total + B - 1) / B
	out := m.Arr.Reserve(nbk)

	grab := int64((len(runs) + 1) * db)
	if err := m.Acct.Grab(grab); err != nil {
		return File{}, err
	}
	defer m.Acct.Release(grab)

	readers := make([]*runReader, len(runs))
	h := &mergeHeap{heads: make([][]uint64, len(runs))}
	for i, r := range runs {
		readers[i] = m.newRunReader(r, w)
		head, err := readers[i].next(w)
		if err != nil {
			return File{}, err
		}
		if head != nil {
			h.heads[i] = append([]uint64(nil), head...)
			h.order = append(h.order, i)
		}
	}
	heap.Init(h)

	// Output double buffer: flush whole blocks, carrying the partial
	// tail so the written word stream stays contiguous.
	outBuf := make([]uint64, db+w)
	outPos := 0
	outBlk := 0
	flushFull := func() error {
		nb := outPos / B
		if nb == 0 {
			return nil
		}
		if err := m.Arr.WriteRange(out, outBlk, outBlk+nb, outBuf[:nb*B]); err != nil {
			return err
		}
		outBlk += nb
		copy(outBuf, outBuf[nb*B:outPos])
		outPos -= nb * B
		return nil
	}
	for h.Len() > 0 {
		i := h.order[0]
		copy(outBuf[outPos:], h.heads[i])
		outPos += w
		if outPos+w > len(outBuf) {
			if err := flushFull(); err != nil {
				return File{}, err
			}
		}
		head, err := readers[i].next(w)
		if err != nil {
			return File{}, err
		}
		if head == nil {
			heap.Pop(h)
		} else {
			copy(h.heads[i], head)
			heap.Fix(h, 0)
		}
	}
	if outPos > 0 {
		clear(outBuf[outPos : (outPos+B-1)/B*B])
		nb := (outPos + B - 1) / B
		if err := m.Arr.WriteRange(out, outBlk, outBlk+nb, outBuf[:nb*B]); err != nil {
			return File{}, err
		}
	}
	return File{area: out, words: total}, nil
}
