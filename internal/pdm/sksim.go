package pdm

import (
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/disk"
	"embsp/internal/words"
)

// SKSim simulates a BSP program one virtual processor at a time with
// a v×v on-disk mailbox matrix, in the style of Sibeyn and Kaufmann
// [26] (the concurrent simulation technique reviewed in Section 2.1):
// cell (i, j) holds the messages sent by VP i to VP j in the current
// superstep. The simulation is correct and simple, but — as the paper
// points out — it has no mechanism for the disk blocking factor or
// for multiple disks: every access moves one block per I/O operation,
// and fetching VP j's messages touches one cell per sender. Run it
// next to core.Run on the same program to measure exactly the
// blocking/striping gap the paper's technique closes.
type SKOptions struct {
	// Seed keys the program's Env.Rand streams (same convention as
	// the other engines, so results are comparable bit for bit).
	Seed uint64
	// MaxSupersteps aborts runaway programs; 0 means 1 << 20.
	MaxSupersteps int
	// ProbeEmptyCells reads every mailbox cell header even when the
	// cell is empty (the fully oblivious v² behaviour). Off by
	// default: the simulation keeps an in-memory occupancy directory.
	ProbeEmptyCells bool
}

// SKResult is the outcome of an SKSim run.
type SKResult struct {
	VPs        []bsp.VP
	Supersteps int
	Disk       disk.Stats
}

// SKSim executes the program on a D-disk array with block size b.
func SKSim(p bsp.Program, d, b int, opts SKOptions) (*SKResult, error) {
	if err := bsp.CheckProgram(p); err != nil {
		return nil, err
	}
	if opts.MaxSupersteps == 0 {
		opts.MaxSupersteps = 1 << 20
	}
	arr, err := disk.NewArray(disk.Config{D: d, B: b})
	if err != nil {
		return nil, err
	}
	v := p.NumVPs()
	mu := p.MaxContextWords()
	gamma := p.MaxCommWords()
	muBlocks := (mu + b - 1) / b
	// A cell stores one sender's traffic to one receiver: payload plus
	// 2 header words per message; 3γ words bound both.
	cellBlocks := (3*gamma+b-1)/b + 1

	ctxArea := arr.Reserve(v * muBlocks)
	// Double-buffered mailbox matrix: VPs simulated later in the same
	// superstep must still read the previous superstep's cells, so
	// writes go to the other matrix.
	var cells [2][]disk.Area
	for k := range cells {
		cells[k] = make([]disk.Area, v*v)
		for i := range cells[k] {
			cells[k][i] = arr.Reserve(cellBlocks)
		}
	}
	used := make([]int, v*v) // occupancy directory, in words

	// blockwise I/O: one block per operation — deliberately no
	// D-parallel batching, that is the point of this baseline.
	readWords := func(area disk.Area, nWords int, buf []uint64) error {
		for blk := 0; blk*b < nWords; blk++ {
			ad := area.Addr(blk)
			if err := arr.ReadOp([]disk.ReadReq{{Disk: ad.Disk, Track: ad.Track, Dst: buf[blk*b : (blk+1)*b]}}); err != nil {
				return err
			}
		}
		return nil
	}
	writeWords := func(area disk.Area, nWords int, buf []uint64) error {
		for blk := 0; blk*b < nWords; blk++ {
			ad := area.Addr(blk)
			if err := arr.WriteOp([]disk.WriteReq{{Disk: ad.Disk, Track: ad.Track, Src: buf[blk*b : (blk+1)*b]}}); err != nil {
				return err
			}
		}
		return nil
	}

	// Write initial contexts.
	ctxBuf := make([]uint64, muBlocks*b)
	enc := words.NewEncoder(nil)
	for id := 0; id < v; id++ {
		enc.Reset()
		p.NewVP(id).Save(enc)
		if enc.Len() > mu {
			return nil, fmt.Errorf("pdm: VP %d initial context exceeds µ", id)
		}
		clear(ctxBuf)
		copy(ctxBuf, enc.Words())
		sub := subArea(ctxArea, id*muBlocks, muBlocks)
		if err := writeWords(sub, muBlocks*b, ctxBuf); err != nil {
			return nil, err
		}
	}

	cellBuf := make([]uint64, cellBlocks*b)
	for step := 0; ; step++ {
		if step >= opts.MaxSupersteps {
			return nil, fmt.Errorf("pdm: no convergence after %d supersteps", opts.MaxSupersteps)
		}
		halts := 0
		sends := 0
		nextUsed := make([]int, v*v)
		outBufs := make([][]uint64, v) // per-destination encoding for current VP
		for j := 0; j < v; j++ {
			// Fetch context.
			sub := subArea(ctxArea, j*muBlocks, muBlocks)
			if err := readWords(sub, muBlocks*b, ctxBuf); err != nil {
				return nil, err
			}
			vp := p.NewVP(j)
			vp.Load(words.NewDecoder(ctxBuf))

			// Fetch messages: one cell per sender.
			var inbox []bsp.Message
			for i := 0; i < v; i++ {
				w := used[i*v+j]
				if w == 0 && !opts.ProbeEmptyCells {
					continue
				}
				rd := w
				if rd == 0 {
					rd = 1 // oblivious probe: one block to discover emptiness
				}
				if err := readWords(cells[step%2][i*v+j], rd, cellBuf); err != nil {
					return nil, err
				}
				for off := 0; off < w; {
					seq := int(cellBuf[off])
					l := int(cellBuf[off+1])
					payload := make([]uint64, l)
					copy(payload, cellBuf[off+2:off+2+l])
					inbox = append(inbox, bsp.Message{Src: i, Dst: j, Seq: seq, Payload: payload})
					off += 2 + l
				}
			}

			// Compute.
			for d := range outBufs {
				outBufs[d] = nil
			}
			seq := 0
			env := bsp.NewEnv(j, v, step, opts.Seed, func(dst int, payload []uint64) {
				outBufs[dst] = append(outBufs[dst], uint64(seq), uint64(len(payload)))
				outBufs[dst] = append(outBufs[dst], payload...)
				seq++
			})
			halt, err := vp.Step(env, inbox)
			if err != nil {
				return nil, fmt.Errorf("pdm: VP %d superstep %d: %w", j, step, err)
			}
			_, msgs, _ := env.SendTotals()
			sends += msgs
			if halt {
				halts++
			}

			// Write generated messages to cells (j, d).
			for dIdx, ob := range outBufs {
				if len(ob) == 0 {
					continue
				}
				if len(ob) > cellBlocks*b {
					return nil, fmt.Errorf("pdm: cell (%d,%d) overflow: %d words", j, dIdx, len(ob))
				}
				clear(cellBuf[:((len(ob)+b-1)/b)*b])
				copy(cellBuf, ob)
				if err := writeWords(cells[(step+1)%2][j*v+dIdx], len(ob), cellBuf); err != nil {
					return nil, err
				}
				nextUsed[j*v+dIdx] = len(ob)
			}

			// Write context back.
			enc.Reset()
			vp.Save(enc)
			if enc.Len() > mu {
				return nil, fmt.Errorf("pdm: VP %d context exceeds µ after superstep %d", j, step)
			}
			clear(ctxBuf)
			copy(ctxBuf, enc.Words())
			if err := writeWords(sub, muBlocks*b, ctxBuf); err != nil {
				return nil, err
			}
		}
		used = nextUsed
		if halts == v {
			if sends > 0 {
				return nil, fmt.Errorf("pdm: messages sent while halting in superstep %d", step)
			}
			// Collect final VPs.
			vps := make([]bsp.VP, v)
			for id := 0; id < v; id++ {
				sub := subArea(ctxArea, id*muBlocks, muBlocks)
				if err := readWords(sub, muBlocks*b, ctxBuf); err != nil {
					return nil, err
				}
				vps[id] = p.NewVP(id)
				vps[id].Load(words.NewDecoder(ctxBuf))
			}
			return &SKResult{VPs: vps, Supersteps: step + 1, Disk: arr.Stats()}, nil
		}
		if halts != 0 {
			return nil, fmt.Errorf("pdm: split halt vote in superstep %d", step)
		}
	}
}

// subArea views a block range of an area as its own area-like
// accessor. The disk.Area type has no slicing, so we reconstruct
// addresses via the parent (blocks off..off+n-1).
func subArea(parent disk.Area, off, n int) disk.Area {
	return disk.Slice(parent, off, n)
}
