package pdm_test

import (
	"sort"
	"testing"
	"testing/quick"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/pdm"
	"embsp/internal/prng"
)

func newMachine(t *testing.T, m, d, b int) *pdm.Machine {
	t.Helper()
	mach, err := pdm.NewMachine(m, d, b)
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

func randWords(r *prng.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	m := newMachine(t, 1024, 2, 16)
	r := prng.New(1)
	for _, n := range []int{0, 1, 15, 16, 17, 1000} {
		data := randWords(r, n)
		f, err := m.WriteFile(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("n=%d: word %d = %d, want %d", n, i, got[i], data[i])
			}
		}
		m.Free(f)
	}
}

func TestMergeSort(t *testing.T) {
	r := prng.New(2)
	for _, n := range []int{0, 1, 7, 100, 5000} {
		for _, w := range []int{1, 3} {
			m := newMachine(t, 2048, 4, 16)
			data := randWords(r, n*w)
			f, err := m.WriteFile(data)
			if err != nil {
				t.Fatal(err)
			}
			sorted, err := m.MergeSort(f, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.ReadFile(sorted)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]uint64(nil), data...)
			cgm.SortRecords(want, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d: word %d differs", n, w, i)
				}
			}
		}
	}
}

func TestMergeSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(3000)
		m, err := pdm.NewMachine(1024+r.Intn(4096), 1+r.Intn(4), 8+r.Intn(24))
		if err != nil {
			return true // invalid combo (M < 4DB); skip
		}
		data := randWords(r, n)
		file, err := m.WriteFile(data)
		if err != nil {
			return false
		}
		sorted, err := m.MergeSort(file, 1)
		if err != nil {
			return false
		}
		got, err := m.ReadFile(sorted)
		if err != nil {
			return false
		}
		want := append([]uint64(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortIOShape(t *testing.T) {
	// I/O ops should scale near-linearly in n/DB for fixed memory
	// (one level of merging), and the utilization should be high.
	const d, b = 4, 64
	m := newMachine(t, 1<<14, d, b)
	n := 1 << 16
	data := randWords(prng.New(3), n)
	f, err := m.WriteFile(data)
	if err != nil {
		t.Fatal(err)
	}
	m.Arr.ResetStats()
	if _, err := m.MergeSort(f, 1); err != nil {
		t.Fatal(err)
	}
	s := m.Arr.Stats()
	passes := float64(s.Blocks()) / float64(2*n/b)
	if passes < 1.5 || passes > 8 {
		t.Errorf("merge sort made %.1f effective passes, want a small constant", passes)
	}
	if u := s.Utilization(); u < 0.5 {
		t.Errorf("drive utilization %.2f, want >= 0.5", u)
	}
}

func TestPermute(t *testing.T) {
	r := prng.New(5)
	for _, n := range []int{0, 1, 50, 700} {
		m := newMachine(t, 4096, 2, 16)
		data := randWords(r, n)
		targets := r.Perm(n)
		f, err := m.WriteFile(data)
		if err != nil {
			t.Fatal(err)
		}
		bySort, err := m.PermuteBySort(f, func(i int) int { return targets[i] })
		if err != nil {
			t.Fatal(err)
		}
		direct, err := m.PermuteDirect(f, func(i int) int { return targets[i] })
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, n)
		for i, tgt := range targets {
			want[tgt] = data[i]
		}
		for name, file := range map[string]pdm.File{"bySort": bySort, "direct": direct} {
			got, err := m.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d %s: word %d = %d, want %d", n, name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	r := prng.New(7)
	for _, dims := range [][2]int{{1, 1}, {4, 8}, {16, 16}, {5, 13}} {
		rows, cols := dims[0], dims[1]
		m := newMachine(t, 4096, 2, 16)
		data := randWords(r, rows*cols)
		f, err := m.WriteFile(data)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := m.Transpose(f, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadFile(tf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got[j*rows+i] != data[i*cols+j] {
					t.Fatalf("%dx%d: element (%d,%d) wrong", rows, cols, i, j)
				}
			}
		}
	}
}

func seqRank(succ []int) []uint64 {
	rank := make([]uint64, len(succ))
	done := make([]bool, len(succ))
	var solve func(i int) uint64
	solve = func(i int) uint64 {
		if done[i] {
			return rank[i]
		}
		done[i] = true
		if succ[i] >= 0 {
			rank[i] = 1 + solve(succ[i])
		}
		return rank[i]
	}
	for i := range succ {
		solve(i)
	}
	return rank
}

func TestPRAMListRank(t *testing.T) {
	r := prng.New(11)
	for _, n := range []int{0, 1, 2, 64, 500} {
		m := newMachine(t, 4096, 2, 16)
		perm := r.Perm(n)
		succ := make([]int, n)
		for i := range succ {
			succ[i] = -1
		}
		for i := 0; i+1 < n; i++ {
			succ[perm[i]] = perm[i+1]
		}
		got, err := m.PRAMListRank(succ)
		if err != nil {
			t.Fatal(err)
		}
		want := seqRank(succ)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSKSimMatchesReference(t *testing.T) {
	p := &bsptest.RandomProgram{V: 10, Steps: 3, MsgsPerStep: 3, MaxLen: 8}
	ref, err := bsp.Run(p, bsp.RunOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pdm.SKSim(p, 2, 16, pdm.SKOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a := bsptest.Checksums(ref)
	bb := bsptest.Checksums(&bsp.Result{VPs: res.VPs})
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("VP %d: %x vs %x", i, a[i], bb[i])
		}
	}
	if res.Supersteps != ref.Costs.Supersteps {
		t.Errorf("λ = %d, want %d", res.Supersteps, ref.Costs.Supersteps)
	}
	if res.Disk.Ops <= 0 {
		t.Error("no I/O counted")
	}
	// The whole point: SKSim never uses more than one block per op.
	if u := res.Disk.Utilization(); u > 0.51 {
		t.Errorf("SKSim utilization %.2f, expected ~1/D", u)
	}
}

func TestSKSimRing(t *testing.T) {
	p := &bsptest.RingProgram{V: 7, Rounds: 5}
	res, err := pdm.SKSim(p, 1, 16, pdm.SKOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 7; id++ {
		want := bsptest.ExpectedRingAcc(7, 5, id)
		if got := bsptest.RingAcc(&bsp.Result{VPs: res.VPs}, id); got != want {
			t.Errorf("vp %d: %d, want %d", id, got, want)
		}
	}
}

func TestSKSimProbeEmptyCellsCostsMore(t *testing.T) {
	p := &bsptest.RingProgram{V: 8, Rounds: 3}
	lazy, err := pdm.SKSim(p, 1, 16, pdm.SKOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probing, err := pdm.SKSim(p, 1, 16, pdm.SKOptions{Seed: 1, ProbeEmptyCells: true})
	if err != nil {
		t.Fatal(err)
	}
	if probing.Disk.Ops <= lazy.Disk.Ops {
		t.Errorf("probing ops %d <= lazy ops %d", probing.Disk.Ops, lazy.Disk.Ops)
	}
}
