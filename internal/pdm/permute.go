package pdm

import "fmt"

// fileWriter streams words into a fresh consecutive area using a
// stripe-sized double buffer (every flush is one fully parallel write
// operation).
type fileWriter struct {
	m      *Machine
	area   fileArea
	buf    []uint64
	pos    int
	blk    int
	words  int
	target int
}

type fileArea = File

func (m *Machine) newFileWriter(totalWords int) (*fileWriter, error) {
	B := m.Arr.Config().B
	db := m.Arr.Config().D * B
	nb := (totalWords + B - 1) / B
	w := &fileWriter{
		m:      m,
		area:   File{area: m.Arr.Reserve(nb), words: totalWords},
		buf:    make([]uint64, db),
		target: totalWords,
	}
	if err := m.Acct.Grab(int64(db)); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *fileWriter) emit(words ...uint64) error {
	B := w.m.Arr.Config().B
	for len(words) > 0 {
		n := copy(w.buf[w.pos:], words)
		w.pos += n
		w.words += n
		words = words[n:]
		if w.pos == len(w.buf) {
			if err := w.m.Arr.WriteRange(w.area.area, w.blk, w.blk+w.pos/B, w.buf); err != nil {
				return err
			}
			w.blk += w.pos / B
			w.pos = 0
		}
	}
	return nil
}

func (w *fileWriter) finish() (File, error) {
	defer w.m.Acct.Release(int64(len(w.buf)))
	if w.words != w.target {
		return File{}, fmt.Errorf("pdm: writer got %d words, expected %d", w.words, w.target)
	}
	if w.pos > 0 {
		B := w.m.Arr.Config().B
		nb := (w.pos + B - 1) / B
		clear(w.buf[w.pos : nb*B])
		if err := w.m.Arr.WriteRange(w.area.area, w.blk, w.blk+nb, w.buf[:nb*B]); err != nil {
			return File{}, err
		}
	}
	return w.area, nil
}

// scanFile streams a file of w-word records through fn.
func (m *Machine) scanFile(f File, w int, fn func(i int, rec []uint64) error) error {
	r := m.newRunReader(f, w)
	db := m.Arr.Config().D * m.Arr.Config().B
	if err := m.Acct.Grab(int64(db + w)); err != nil {
		return err
	}
	defer m.Acct.Release(int64(db + w))
	for i := 0; ; i++ {
		rec, err := r.next(w)
		if err != nil {
			return err
		}
		if rec == nil {
			return nil
		}
		if err := fn(i, rec); err != nil {
			return err
		}
	}
}

// PermuteBySort routes record i of f to position target(i) using the
// sort-based method: tag, external-sort by tag, strip. Its I/O cost
// is Θ(sort(n)) — the second branch of the paper's
// min(n/D, (n/DB)·log_{M/B}(n/B)) permutation bound.
func (m *Machine) PermuteBySort(f File, target func(i int) int) (File, error) {
	tagged, err := m.newFileWriter(f.words * 2)
	if err != nil {
		return File{}, err
	}
	err = m.scanFile(f, 1, func(i int, rec []uint64) error {
		return tagged.emit(uint64(target(i)), rec[0])
	})
	if err != nil {
		return File{}, err
	}
	tf, err := tagged.finish()
	if err != nil {
		return File{}, err
	}
	sorted, err := m.MergeSort(tf, 2)
	if err != nil {
		return File{}, err
	}
	m.Free(tf)
	out, err := m.newFileWriter(f.words)
	if err != nil {
		return File{}, err
	}
	err = m.scanFile(sorted, 2, func(i int, rec []uint64) error {
		return out.emit(rec[1])
	})
	if err != nil {
		return File{}, err
	}
	m.Free(sorted)
	return out.finish()
}

// PermuteDirect routes record i of f to position target(i) with one
// random read-modify-write per record — the naive method whose I/O
// cost is Θ(n) operations (the paper's n/D branch assumes D
// independent accesses per operation; here each RMW is two single-
// block operations, which preserves the Θ(n)-vs-Θ(sort) crossover
// shape).
func (m *Machine) PermuteDirect(f File, target func(i int) int) (File, error) {
	B := m.Arr.Config().B
	nb := (f.words + B - 1) / B
	out := m.Arr.Reserve(nb)
	blockBuf := make([]uint64, B)
	if err := m.Acct.Grab(int64(B)); err != nil {
		return File{}, err
	}
	defer m.Acct.Release(int64(B))
	err := m.scanFile(f, 1, func(i int, rec []uint64) error {
		t := target(i)
		blk := t / B
		if err := m.Arr.ReadRange(out, blk, blk+1, blockBuf); err != nil {
			return err
		}
		blockBuf[t%B] = rec[0]
		return m.Arr.WriteRange(out, blk, blk+1, blockBuf)
	})
	if err != nil {
		return File{}, err
	}
	return File{area: out, words: f.words}, nil
}

// Transpose transposes an r×c row-major matrix file via the
// sort-based permutation.
func (m *Machine) Transpose(f File, r, c int) (File, error) {
	if f.words != r*c {
		return File{}, fmt.Errorf("pdm: file has %d words, want %d×%d", f.words, r, c)
	}
	return m.PermuteBySort(f, func(i int) int { return (i%c)*r + i/c })
}
