package pdm

import (
	"fmt"
	"math/bits"
)

// PRAMListRank ranks a linked list with the PRAM-simulation technique
// of Chiang et al. [14]: every PRAM pointer-jumping step
//
//	rank(i) += rank(succ(i)); succ(i) = succ(succ(i))
//
// is simulated by a constant number of external sorts and scans, for
// a total of Θ(sort(n)·log n) I/O — the Table 1 "previous results"
// baseline that the EM-CGM list ranking improves on.
//
// succ[i] = -1 marks a chain tail. The result is each node's hop
// distance to its chain's tail.
func (m *Machine) PRAMListRank(succ []int) ([]uint64, error) {
	n := len(succ)
	if n == 0 {
		return nil, nil
	}
	sentinel := uint64(n) // "no successor"

	// State file A: (i, succ_i, rank_i) sorted by i.
	aw, err := m.newFileWriter(3 * n)
	if err != nil {
		return nil, err
	}
	for i, s := range succ {
		su := sentinel
		rank := uint64(0)
		if s >= 0 {
			su = uint64(s)
			rank = 1
		} else if s != -1 {
			return nil, fmt.Errorf("pdm: succ[%d] = %d invalid", i, s)
		}
		if err := aw.emit(uint64(i), su, rank); err != nil {
			return nil, err
		}
	}
	a, err := aw.finish()
	if err != nil {
		return nil, err
	}

	rounds := bits.Len(uint(n))
	for round := 0; round < rounds; round++ {
		// Q: (succ_i, i) for nodes still pointing somewhere, sorted
		// by successor so it can be joined against A.
		cnt := 0
		if err := m.scanFile(a, 3, func(_ int, rec []uint64) error {
			if rec[1] != sentinel {
				cnt++
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if cnt == 0 {
			break
		}
		qw, err := m.newFileWriter(2 * cnt)
		if err != nil {
			return nil, err
		}
		if err := m.scanFile(a, 3, func(_ int, rec []uint64) error {
			if rec[1] != sentinel {
				return qw.emit(rec[1], rec[0])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		qf, err := qw.finish()
		if err != nil {
			return nil, err
		}
		qs, err := m.MergeSort(qf, 2)
		if err != nil {
			return nil, err
		}
		m.Free(qf)

		// Join: stream A (sorted by node id) against Q (sorted by
		// successor id): for each query (s, i) emit (i, succ_s,
		// rank_s).
		uw, err := m.newFileWriter(3 * cnt)
		if err != nil {
			return nil, err
		}
		qr := m.newRunReader(qs, 2)
		q, err := qr.next(2)
		if err != nil {
			return nil, err
		}
		var qbuf [2]uint64
		if q != nil {
			copy(qbuf[:], q)
			q = qbuf[:]
		}
		if err := m.scanFile(a, 3, func(_ int, rec []uint64) error {
			for q != nil && q[0] == rec[0] {
				if err := uw.emit(q[1], rec[1], rec[2]); err != nil {
					return err
				}
				nq, err := qr.next(2)
				if err != nil {
					return err
				}
				if nq == nil {
					q = nil
				} else {
					copy(qbuf[:], nq)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		uf, err := uw.finish()
		if err != nil {
			return nil, err
		}
		m.Free(qs)
		us, err := m.MergeSort(uf, 3)
		if err != nil {
			return nil, err
		}
		m.Free(uf)

		// Update pass: merge A with U (both sorted by node id).
		aw, err := m.newFileWriter(3 * n)
		if err != nil {
			return nil, err
		}
		ur := m.newRunReader(us, 3)
		u, err := ur.next(3)
		if err != nil {
			return nil, err
		}
		var ubuf [3]uint64
		if u != nil {
			copy(ubuf[:], u)
			u = ubuf[:]
		}
		if err := m.scanFile(a, 3, func(_ int, rec []uint64) error {
			id, su, rank := rec[0], rec[1], rec[2]
			if u != nil && u[0] == id {
				su = u[1]
				rank += u[2]
				nu, err := ur.next(3)
				if err != nil {
					return err
				}
				if nu == nil {
					u = nil
				} else {
					copy(ubuf[:], nu)
				}
			}
			return aw.emit(id, su, rank)
		}); err != nil {
			return nil, err
		}
		m.Free(us)
		m.Free(a)
		a, err = aw.finish()
		if err != nil {
			return nil, err
		}
	}

	ranks := make([]uint64, n)
	if err := m.scanFile(a, 3, func(i int, rec []uint64) error {
		ranks[rec[0]] = rec[2]
		return nil
	}); err != nil {
		return nil, err
	}
	m.Free(a)
	return ranks, nil
}
