package bsp

import (
	"fmt"
	"runtime/debug"
)

// ProgramError reports a panic raised inside user Program/VP code
// during a Step call. All engines — the in-memory reference runner and
// both EM engines — recover such panics and return a ProgramError
// instead of crashing the process, so a long durable run survives a
// buggy program: the state directory stays at the last committed
// barrier and remains resumable (e.g. with a fixed program binary).
type ProgramError struct {
	// VP is the id of the virtual processor whose Step panicked.
	VP int
	// Superstep is the superstep index the panic occurred in.
	Superstep int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("bsp: program panicked in VP %d, superstep %d: %v", e.VP, e.Superstep, e.Value)
}

// SafeStep invokes vp.Step with panic isolation: a panic inside the
// user's Step becomes a *ProgramError return. Engines call their VPs
// exclusively through it.
func SafeStep(vp VP, env *Env, in []Message) (halt bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ProgramError{VP: env.ID(), Superstep: env.Superstep(), Value: r, Stack: debug.Stack()}
		}
	}()
	return vp.Step(env, in)
}
