package bsp

// CostRecorder accumulates model costs superstep by superstep. It is
// shared by the in-memory runner and the EM engines so that all of
// them measure BSP/BSP* costs identically: for every superstep, each
// virtual processor reports its traffic once via RecordVP.
type CostRecorder struct {
	pkt   int
	steps []SuperstepCost
	cur   SuperstepCost
	open  bool
}

// NewCostRecorder returns a recorder using packet size pkt (the
// model's b) for BSP* packet counting.
func NewCostRecorder(pkt int) *CostRecorder {
	if pkt <= 0 {
		pkt = 1
	}
	return &CostRecorder{pkt: pkt}
}

// PktSize returns the packet size b used for packet accounting.
func (c *CostRecorder) PktSize() int { return c.pkt }

// BeginStep starts accumulation for the next superstep.
func (c *CostRecorder) BeginStep() {
	if c.open {
		panic("bsp: BeginStep without EndStep")
	}
	c.cur = SuperstepCost{}
	c.open = true
}

// VPTraffic describes one virtual processor's activity in one
// superstep, as observed by an engine.
type VPTraffic struct {
	SendWords int // total payload+header words sent
	RecvWords int // total payload+header words received
	SendPkts  int // Σ ⌈message/b⌉ over sent messages
	RecvPkts  int // Σ ⌈message/b⌉ over received messages
	Messages  int // number of messages sent
	Charge    int64
}

// RecordVP folds one VP's superstep activity into the current step.
func (c *CostRecorder) RecordVP(t VPTraffic) {
	if !c.open {
		panic("bsp: RecordVP outside a step")
	}
	if t.SendWords > c.cur.MaxSendWords {
		c.cur.MaxSendWords = t.SendWords
	}
	if t.RecvWords > c.cur.MaxRecvWords {
		c.cur.MaxRecvWords = t.RecvWords
	}
	if t.SendPkts > c.cur.MaxSendPkts {
		c.cur.MaxSendPkts = t.SendPkts
	}
	if t.RecvPkts > c.cur.MaxRecvPkts {
		c.cur.MaxRecvPkts = t.RecvPkts
	}
	if t.Charge > c.cur.MaxCharge {
		c.cur.MaxCharge = t.Charge
	}
	c.cur.TotalWords += int64(t.SendWords)
	c.cur.Messages += int64(t.Messages)
	c.cur.TotalCharge += t.Charge
}

// EndStep closes the current superstep.
func (c *CostRecorder) EndStep() {
	if !c.open {
		panic("bsp: EndStep without BeginStep")
	}
	c.steps = append(c.steps, c.cur)
	c.open = false
}

// Mark returns the number of closed supersteps, for a later Rewind.
func (c *CostRecorder) Mark() int { return len(c.steps) }

// Rewind discards every superstep recorded after the given Mark and
// any open step. The EM engines use it to roll the cost accounting
// back to the last compound-superstep barrier when a fault aborts an
// attempt that is then replayed.
func (c *CostRecorder) Rewind(mark int) {
	if mark < 0 || mark > len(c.steps) {
		panic("bsp: Rewind past recorded steps")
	}
	c.steps = c.steps[:mark]
	c.cur = SuperstepCost{}
	c.open = false
}

// Steps returns a copy of the closed supersteps recorded so far. The
// EM engines serialize it into their commit journal so a resumed run
// reports the same per-superstep costs as an uninterrupted one.
func (c *CostRecorder) Steps() []SuperstepCost {
	return append([]SuperstepCost(nil), c.steps...)
}

// Restore replaces the recorded supersteps with a list previously
// captured by Steps — the resume path's inverse. It panics if a step
// is open: restoring mid-step would silently drop its traffic.
func (c *CostRecorder) Restore(steps []SuperstepCost) {
	if c.open {
		panic("bsp: Restore with an open step")
	}
	c.steps = append(c.steps[:0], steps...)
	c.cur = SuperstepCost{}
}

// Costs returns the accumulated run costs.
func (c *CostRecorder) Costs() Costs {
	return Costs{Supersteps: len(c.steps), PerStep: append([]SuperstepCost(nil), c.steps...)}
}

// MsgPkts returns the BSP* packet count ⌈words/b⌉ of one message of
// the given payload+header size, with the model's minimum of one
// packet.
func (c *CostRecorder) MsgPkts(wordCount int) int { return pkts(wordCount, c.pkt) }
