package bsp

// CostParams holds the BSP*-level machine parameters used to turn
// measured superstep traffic into model time (Section 2.2 of the
// paper). Field comments give the paper's symbol.
type CostParams struct {
	GUnit float64 // ĝ: time to route one word (plain BSP accounting)
	GPkt  float64 // g: time to route one packet of size Pkt (BSP*)
	Pkt   int     // b: packet size in words
	L     float64 // L: barrier synchronization time
}

// DefaultCostParams returns a plausible parameter set used by examples
// and benchmarks when the caller does not care: b = 64 words, g = 64
// (one word per time unit once blocked), ĝ = 4, L = 1000.
func DefaultCostParams() CostParams {
	return CostParams{GUnit: 4, GPkt: 64, Pkt: 64, L: 1000}
}

// SuperstepCost records the traffic and computation of one superstep,
// maximized/summed over virtual processors as the model prescribes.
type SuperstepCost struct {
	// MaxSendWords / MaxRecvWords are the largest per-VP totals of
	// message words sent / received (including one header word per
	// message).
	MaxSendWords int
	MaxRecvWords int
	// MaxSendPkts / MaxRecvPkts are the largest per-VP totals of
	// ⌈message/b⌉ packets, for BSP* accounting.
	MaxSendPkts int
	MaxRecvPkts int
	// TotalWords is the total traffic of the superstep over all VPs
	// (send side).
	TotalWords int64
	// Messages is the number of messages sent in the superstep.
	Messages int64
	// MaxCharge / TotalCharge are per-VP max and total computation
	// charges (the model's w_comp).
	MaxCharge   int64
	TotalCharge int64
}

// HWords returns the superstep's h-relation size in words: the larger
// of the max per-VP send and receive totals.
func (s SuperstepCost) HWords() int {
	if s.MaxSendWords > s.MaxRecvWords {
		return s.MaxSendWords
	}
	return s.MaxRecvWords
}

// Costs aggregates the model cost of a whole run.
type Costs struct {
	Supersteps int // λ
	PerStep    []SuperstepCost
}

// MaxH returns the largest h-relation (in words) over all supersteps —
// the CGM model requires h ≤ n/p for every communication round.
func (c Costs) MaxH() int {
	h := 0
	for _, s := range c.PerStep {
		if v := s.HWords(); v > h {
			h = v
		}
	}
	return h
}

// TotalWords returns the total communication volume in words.
func (c Costs) TotalWords() int64 {
	var t int64
	for _, s := range c.PerStep {
		t += s.TotalWords
	}
	return t
}

// TotalCharge returns the total computation charge over all VPs and
// supersteps.
func (c Costs) TotalCharge() int64 {
	var t int64
	for _, s := range c.PerStep {
		t += s.TotalCharge
	}
	return t
}

// MaxChargeSum returns Σ_i max_j t_j^i: the BSP computation time
// (without the λ·L term).
func (c Costs) MaxChargeSum() int64 {
	var t int64
	for _, s := range c.PerStep {
		t += s.MaxCharge
	}
	return t
}

// CommTimeBSP evaluates T_comm under plain BSP accounting:
// Σ_i max(L, ĝ·h_i) with h_i in words.
func (c Costs) CommTimeBSP(p CostParams) float64 {
	var t float64
	for _, s := range c.PerStep {
		w := p.GUnit * float64(s.MaxSendWords+s.MaxRecvWords)
		if w < p.L {
			w = p.L
		}
		t += w
	}
	return t
}

// CommTimeBSPStar evaluates T_comm under BSP* accounting:
// Σ_i max(L, g·(send packets + receive packets)).
func (c Costs) CommTimeBSPStar(p CostParams) float64 {
	var t float64
	for _, s := range c.PerStep {
		w := p.GPkt * float64(s.MaxSendPkts+s.MaxRecvPkts)
		if w < p.L {
			w = p.L
		}
		t += w
	}
	return t
}

// CompTime evaluates T_comp = Σ_i max(L, max_j t_j^i).
func (c Costs) CompTime(p CostParams) float64 {
	var t float64
	for _, s := range c.PerStep {
		w := float64(s.MaxCharge)
		if w < p.L {
			w = p.L
		}
		t += w
	}
	return t
}

// pkts returns ⌈w/b⌉ with the model's convention that a message
// shorter than b still costs one packet.
func pkts(w, b int) int {
	if w <= 0 {
		return 1
	}
	return (w + b - 1) / b
}
