// Package bsptest provides small deterministic BSP programs used to
// test the runners: the in-memory reference runner and the EM
// simulation engines must produce bitwise identical results on them.
package bsptest

import (
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/words"
)

// mix folds a value into a running checksum (order-sensitive).
func mix(sum, v uint64) uint64 {
	sum ^= v + 0x9e3779b97f4a7c15 + (sum << 6) + (sum >> 2)
	return sum * 0xff51afd7ed558ccd
}

// RingProgram circulates values around a directed ring for Rounds
// rounds. VP id starts holding the value id; each round it sends its
// value to (id+1) mod V and adopts the value received from its left
// neighbour, accumulating the sum of adopted values. The final
// accumulator of VP id is Σ_{r=1..Rounds} ((id - r) mod V), which
// tests can compute independently.
type RingProgram struct {
	V      int
	Rounds int
}

func (p *RingProgram) NumVPs() int          { return p.V }
func (p *RingProgram) MaxContextWords() int { return 4 }
func (p *RingProgram) MaxCommWords() int    { return 2 }

func (p *RingProgram) NewVP(id int) bsp.VP {
	return &ringVP{p: p, id: id, val: uint64(id)}
}

type ringVP struct {
	p   *RingProgram
	id  int
	val uint64
	acc uint64
}

func (v *ringVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	if env.Superstep() > 0 {
		if len(in) != 1 {
			return false, fmt.Errorf("ring VP %d got %d messages, want 1", v.id, len(in))
		}
		v.val = in[0].Payload[0]
		v.acc += v.val
	}
	if env.Superstep() == v.p.Rounds {
		return true, nil
	}
	env.Send((v.id+1)%v.p.V, []uint64{v.val})
	env.Charge(1)
	return false, nil
}

func (v *ringVP) Save(enc *words.Encoder) {
	enc.PutUint(v.val)
	enc.PutUint(v.acc)
}

func (v *ringVP) Load(dec *words.Decoder) {
	v.val = dec.Uint()
	v.acc = dec.Uint()
}

// RingAcc returns the accumulator of VP id after a completed run.
func RingAcc(res *bsp.Result, id int) uint64 { return res.VPs[id].(*ringVP).acc }

// ExpectedRingAcc computes the expected accumulator analytically.
func ExpectedRingAcc(v, rounds, id int) uint64 {
	var acc uint64
	for r := 1; r <= rounds; r++ {
		acc += uint64(((id-r)%v + v) % v)
	}
	return acc
}

// RandomProgram is a randomized traffic generator: in each of Steps
// supersteps every VP sends MsgsPerStep messages of random length up
// to MaxLen words to random destinations, and folds everything it
// receives (source, sequence and payload) into an order-sensitive
// checksum. Because Env.Rand is keyed by (seed, vp, superstep), the
// traffic — and hence every checksum — is a pure function of the run
// seed, independent of the engine executing the program.
type RandomProgram struct {
	V           int
	Steps       int
	MsgsPerStep int
	MaxLen      int
}

func (p *RandomProgram) NumVPs() int          { return p.V }
func (p *RandomProgram) MaxContextWords() int { return 4 }

// MaxCommWords bounds the worst case: every VP in the system sends all
// its messages to one victim.
func (p *RandomProgram) MaxCommWords() int {
	return p.V * p.MsgsPerStep * (p.MaxLen + 1)
}

func (p *RandomProgram) NewVP(id int) bsp.VP { return &randomVP{p: p, id: id} }

type randomVP struct {
	p   *RandomProgram
	id  int
	sum uint64
}

func (v *randomVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	for _, m := range in {
		v.sum = mix(v.sum, uint64(m.Src))
		v.sum = mix(v.sum, uint64(m.Seq))
		for _, w := range m.Payload {
			v.sum = mix(v.sum, w)
		}
	}
	if env.Superstep() == v.p.Steps {
		return true, nil
	}
	r := env.Rand()
	buf := make([]uint64, v.p.MaxLen)
	for i := 0; i < v.p.MsgsPerStep; i++ {
		dst := r.Intn(v.p.V)
		n := r.Intn(v.p.MaxLen + 1)
		for j := 0; j < n; j++ {
			buf[j] = r.Uint64()
		}
		env.Send(dst, buf[:n])
	}
	env.Charge(int64(v.p.MsgsPerStep))
	return false, nil
}

func (v *randomVP) Save(enc *words.Encoder) { enc.PutUint(v.sum) }
func (v *randomVP) Load(dec *words.Decoder) { v.sum = dec.Uint() }

// Checksums extracts all VP checksums from a completed RandomProgram
// run.
func Checksums(res *bsp.Result) []uint64 {
	out := make([]uint64, len(res.VPs))
	for i, vp := range res.VPs {
		out[i] = vp.(*randomVP).sum
	}
	return out
}
