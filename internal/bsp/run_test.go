package bsp_test

import (
	"errors"
	"testing"

	"embsp/internal/bsp"
	"embsp/internal/bsp/bsptest"
	"embsp/internal/words"
)

func TestRingProgram(t *testing.T) {
	for _, v := range []int{1, 2, 5, 16} {
		for _, rounds := range []int{0, 1, 7} {
			p := &bsptest.RingProgram{V: v, Rounds: rounds}
			res, err := bsp.Run(p, bsp.RunOptions{Seed: 1})
			if err != nil {
				t.Fatalf("v=%d rounds=%d: %v", v, rounds, err)
			}
			for id := 0; id < v; id++ {
				want := bsptest.ExpectedRingAcc(v, rounds, id)
				if got := bsptest.RingAcc(res, id); got != want {
					t.Errorf("v=%d rounds=%d vp=%d: acc=%d, want %d", v, rounds, id, got, want)
				}
			}
			if res.Costs.Supersteps != rounds+1 {
				t.Errorf("v=%d rounds=%d: λ=%d, want %d", v, rounds, res.Costs.Supersteps, rounds+1)
			}
		}
	}
}

func TestValidateContextsMatchesPlainRun(t *testing.T) {
	p := &bsptest.RandomProgram{V: 9, Steps: 4, MsgsPerStep: 3, MaxLen: 5}
	plain, err := bsp.Run(p, bsp.RunOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := bsp.Run(p, bsp.RunOptions{Seed: 42, ValidateContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := bsptest.Checksums(plain), bsptest.Checksums(checked)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("checksum %d differs: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestSeedChangesResult(t *testing.T) {
	p := &bsptest.RandomProgram{V: 8, Steps: 3, MsgsPerStep: 2, MaxLen: 4}
	r1, err := bsp.Run(p, bsp.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bsp.Run(p, bsp.RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := bsptest.Checksums(r1), bsptest.Checksums(r2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical checksums")
	}
}

func TestRunDeterminism(t *testing.T) {
	p := &bsptest.RandomProgram{V: 8, Steps: 3, MsgsPerStep: 2, MaxLen: 4}
	r1, _ := bsp.Run(p, bsp.RunOptions{Seed: 7})
	r2, _ := bsp.Run(p, bsp.RunOptions{Seed: 7})
	a, b := bsptest.Checksums(r1), bsptest.Checksums(r2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at VP %d", i)
		}
	}
}

// errProg wires arbitrary Step behavior for protocol tests.
type errProg struct {
	v    int
	mu   int
	gam  int
	step func(id int, env *bsp.Env, in []bsp.Message) (bool, error)
}

func (p *errProg) NumVPs() int          { return p.v }
func (p *errProg) MaxContextWords() int { return p.mu }
func (p *errProg) MaxCommWords() int    { return p.gam }
func (p *errProg) NewVP(id int) bsp.VP  { return &errVP{p: p, id: id} }

type errVP struct {
	p  *errProg
	id int
}

func (v *errVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	return v.p.step(v.id, env, in)
}
func (v *errVP) Save(enc *words.Encoder) { enc.PutUint(uint64(v.id)) }
func (v *errVP) Load(dec *words.Decoder) { _ = dec.Uint() }

func TestSplitHaltVoteFails(t *testing.T) {
	p := &errProg{v: 2, mu: 2, gam: 8, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		return id == 0, nil // VP 0 halts, VP 1 does not
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1}); err == nil {
		t.Error("split halt vote not rejected")
	}
}

func TestSendWhileHaltingFails(t *testing.T) {
	p := &errProg{v: 2, mu: 2, gam: 8, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		env.Send(0, []uint64{1})
		return true, nil
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1}); err == nil {
		t.Error("send-while-halting not rejected")
	}
}

func TestGammaSendViolation(t *testing.T) {
	p := &errProg{v: 2, mu: 2, gam: 3, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		env.Send(0, []uint64{1, 2, 3, 4, 5}) // 6 words > γ=3
		return false, nil
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1}); err == nil {
		t.Error("γ send violation not rejected")
	}
}

func TestGammaRecvViolation(t *testing.T) {
	// Both VPs send 2 words to VP 0 each superstep: recv = 4 > γ = 3.
	p := &errProg{v: 2, mu: 2, gam: 3, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		if env.Superstep() >= 2 {
			return true, nil
		}
		env.Send(0, []uint64{1})
		return false, nil
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1}); err == nil {
		t.Error("γ recv violation not rejected")
	}
}

func TestContextOverflowCaught(t *testing.T) {
	p := &errProg{v: 1, mu: 0, gam: 4, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		return true, nil
	}}
	p.mu = 1 // Save writes 1 word, fits; set to 0 would fail CheckProgram
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1, ValidateContexts: true}); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	// Now a program whose Save exceeds its declared µ... reuse errVP
	// (Save writes 1 word) with a wrapper declaring µ=1 but writing 2.
	big := &bigCtxProg{}
	if _, err := bsp.Run(big, bsp.RunOptions{Seed: 1, ValidateContexts: true}); err == nil {
		t.Error("context overflow not rejected")
	}
}

type bigCtxProg struct{}

func (p *bigCtxProg) NumVPs() int          { return 1 }
func (p *bigCtxProg) MaxContextWords() int { return 1 }
func (p *bigCtxProg) MaxCommWords() int    { return 1 }
func (p *bigCtxProg) NewVP(id int) bsp.VP  { return &bigCtxVP{} }

type bigCtxVP struct{}

func (v *bigCtxVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) { return true, nil }
func (v *bigCtxVP) Save(enc *words.Encoder)                           { enc.PutUint(0); enc.PutUint(0) }
func (v *bigCtxVP) Load(dec *words.Decoder)                           { _, _ = dec.Uint(), dec.Uint() }

func TestVPErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	p := &errProg{v: 2, mu: 2, gam: 4, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		if id == 1 {
			return false, boom
		}
		return false, nil
	}}
	_, err := bsp.Run(p, bsp.RunOptions{Seed: 1})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	p := &errProg{v: 1, mu: 2, gam: 4, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		return false, nil // never halts
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1, MaxSupersteps: 10}); err == nil {
		t.Error("runaway program not aborted")
	}
}

func TestMessageOrderingBySrcSeq(t *testing.T) {
	// VPs 1 and 2 each send three numbered messages to VP 0, which
	// checks canonical (Src, Seq) order.
	type rec struct{ src, seq, val int }
	var got []rec
	p := &errProg{v: 3, mu: 2, gam: 64, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		switch env.Superstep() {
		case 0:
			if id != 0 {
				for i := 0; i < 3; i++ {
					env.Send(0, []uint64{uint64(id*10 + i)})
				}
			}
			return false, nil
		default:
			if id == 0 {
				for _, m := range in {
					got = append(got, rec{m.Src, m.Seq, int(m.Payload[0])})
				}
			}
			return true, nil
		}
	}}
	if _, err := bsp.Run(p, bsp.RunOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	want := []rec{{1, 0, 10}, {1, 1, 11}, {1, 2, 12}, {2, 0, 20}, {2, 1, 21}, {2, 2, 22}}
	if len(got) != len(want) {
		t.Fatalf("got %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("message %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCostAccounting(t *testing.T) {
	// Superstep 0: VP 0 sends one 9-word payload (10 words with
	// header) to VP 1 and charges 5 ops. Superstep 1: halt.
	p := &errProg{v: 2, mu: 2, gam: 32, step: func(id int, env *bsp.Env, in []bsp.Message) (bool, error) {
		if env.Superstep() == 0 {
			if id == 0 {
				env.Send(1, make([]uint64, 9))
				env.Charge(5)
			}
			return false, nil
		}
		return true, nil
	}}
	res, err := bsp.Run(p, bsp.RunOptions{Seed: 1, PktSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Costs
	if c.Supersteps != 2 {
		t.Fatalf("λ = %d, want 2", c.Supersteps)
	}
	s0, s1 := c.PerStep[0], c.PerStep[1]
	if s0.MaxSendWords != 10 || s0.TotalWords != 10 || s0.Messages != 1 {
		t.Errorf("step0 send accounting: %+v", s0)
	}
	if s0.MaxSendPkts != 3 { // ⌈10/4⌉
		t.Errorf("step0 MaxSendPkts = %d, want 3", s0.MaxSendPkts)
	}
	if s0.MaxCharge != 5 || s0.TotalCharge != 5 {
		t.Errorf("step0 charge: %+v", s0)
	}
	if s1.MaxRecvWords != 10 || s1.MaxRecvPkts != 3 {
		t.Errorf("step1 recv accounting: %+v", s1)
	}
	if got := c.MaxH(); got != 10 {
		t.Errorf("MaxH = %d, want 10", got)
	}
	if got := c.TotalWords(); got != 10 {
		t.Errorf("TotalWords = %d, want 10", got)
	}
	// Model evaluation sanity: BSP* comm time with g=2, L=1 is
	// max(1, 2*3) + max(1, 2*3) = 12.
	params := bsp.CostParams{GUnit: 1, GPkt: 2, Pkt: 4, L: 1}
	if got := c.CommTimeBSPStar(params); got != 12 {
		t.Errorf("CommTimeBSPStar = %v, want 12", got)
	}
	if got := c.CompTime(params); got != 6 { // max(1,5) + max(1,0)
		t.Errorf("CompTime = %v, want 6", got)
	}
}

func TestCheckProgram(t *testing.T) {
	bad := &errProg{v: 0, mu: 1, gam: 1}
	if _, err := bsp.Run(bad, bsp.RunOptions{}); err == nil {
		t.Error("v=0 accepted")
	}
	bad = &errProg{v: 1, mu: 0, gam: 1}
	if _, err := bsp.Run(bad, bsp.RunOptions{}); err == nil {
		t.Error("µ=0 accepted")
	}
}
