// Package bsp defines the BSP / BSP* / CGM programming model used by
// both the in-memory reference runner and the external-memory
// simulation engines, together with the model cost accounting of
// Section 2 of Dehne–Dittrich–Hutchinson.
//
// A Program describes an algorithm for v virtual processors. Execution
// proceeds in compound supersteps (receive, compute, send): in each
// superstep every virtual processor receives the messages sent to it
// in the previous superstep, performs local computation, and sends
// messages that will be received in the next superstep. The program
// ends when every virtual processor votes to halt in the same
// superstep.
//
// Virtual processor state (the paper's context) must be serializable
// to 64-bit words: the EM engines keep contexts on simulated disk
// between supersteps and only materialize k = ⌊M/µ⌋ of them at a time.
// A Program declares µ (MaxContextWords) and γ (MaxCommWords) up
// front; the engines preallocate disk areas from these bounds exactly
// as the paper's simulation does, and enforce them at run time.
package bsp

import (
	"embsp/internal/prng"
	"embsp/internal/words"
)

// Message is a point-to-point message between virtual processors.
// Seq is the per-source send order; deliveries to a virtual processor
// are always sorted by (Src, Seq), so program results are independent
// of which engine (in-memory, sequential EM, parallel EM) ran them.
type Message struct {
	Src     int
	Dst     int
	Seq     int
	Payload []uint64
}

// Program describes a BSP-like algorithm.
type Program interface {
	// NumVPs returns v, the number of virtual processors.
	NumVPs() int
	// MaxContextWords returns µ: an upper bound, in words, on the
	// marshaled context of any virtual processor at any superstep.
	MaxContextWords() int
	// MaxCommWords returns γ: an upper bound, in words, on the total
	// message payload sent by one virtual processor in one superstep,
	// and likewise on the total received. Payload accounting includes
	// one header word per message (destination bookkeeping), mirroring
	// the paper's "messages inherit the destination address".
	MaxCommWords() int
	// NewVP returns virtual processor id in its initial state.
	NewVP(id int) VP
}

// VP is one virtual processor of a Program.
type VP interface {
	// Step executes the computation phase of one compound superstep.
	// in holds the messages sent to this VP in the previous superstep
	// in canonical (Src, Seq) order; the VP may keep the payload
	// slices. Returning halt=true votes to end the program: the run
	// finishes when all VPs vote halt in the same superstep, and it is
	// an error to send a message while voting halt.
	Step(env *Env, in []Message) (halt bool, err error)
	// Save marshals the VP's context. The encoding must be at most
	// MaxContextWords() words and must capture all state the VP needs
	// across supersteps.
	Save(enc *words.Encoder)
	// Load restores the VP's context from a previous Save.
	Load(dec *words.Decoder)
}

// NewEnv constructs the Env for one VP's Step call. It is the hook
// through which execution engines (the in-memory runner and the EM
// simulation engines) provide the messaging fabric: emit is invoked
// once per Send with the copied payload.
func NewEnv(id, v, superstep int, seed uint64, emit func(dst int, payload []uint64)) *Env {
	return &Env{id: id, v: v, superstep: superstep, seed: seed, emit: emit}
}

// SendTotals reports the traffic generated through this Env: total
// payload+header words sent, number of messages, and the accumulated
// computation charge. Engines use it for cost accounting and γ
// enforcement.
func (e *Env) SendTotals() (sendWords, msgs int, charge int64) {
	return e.sendWords, e.sends, e.charge
}

// Env gives a VP access to its execution environment during Step.
type Env struct {
	id        int
	v         int
	superstep int
	seed      uint64
	rng       *prng.Rand
	sendWords int
	sends     int
	charge    int64
	emit      func(dst int, payload []uint64)
}

// ID returns the VP's id in [0, NumVPs).
func (e *Env) ID() int { return e.id }

// NumVPs returns v.
func (e *Env) NumVPs() int { return e.v }

// Superstep returns the zero-based index of the current superstep.
func (e *Env) Superstep() int { return e.superstep }

// Send sends payload to VP dst; it is received in the next superstep.
// The payload is copied, so the caller may reuse the slice. An empty
// payload still forms a message (one header word of traffic).
func (e *Env) Send(dst int, payload []uint64) {
	if dst < 0 || dst >= e.v {
		panic("bsp: Send to VP out of range")
	}
	p := make([]uint64, len(payload))
	copy(p, payload)
	e.sendWords += len(payload) + 1 // header word, per model accounting
	e.sends++
	e.emit(dst, p)
}

// Charge adds ops basic computation operations to the VP's cost for
// this superstep (the model's t_j). Engines add their own simulation
// overhead separately; Charge expresses the algorithm's own work.
func (e *Env) Charge(ops int64) {
	if ops > 0 {
		e.charge += ops
	}
}

// Rand returns a deterministic random stream keyed by (run seed, VP
// id, superstep). The stream is identical across all engines, so
// randomized programs still produce engine-independent results.
func (e *Env) Rand() *prng.Rand {
	if e.rng == nil {
		e.rng = prng.New(prng.Derive(e.seed, uint64(e.id), uint64(e.superstep)))
	}
	return e.rng
}
