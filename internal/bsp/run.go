package bsp

import (
	"fmt"
	"sort"

	"embsp/internal/words"
)

// RunOptions configures a run of a Program.
type RunOptions struct {
	// Seed keys all Env.Rand streams. Runs with equal seeds produce
	// identical results on every engine.
	Seed uint64
	// MaxSupersteps aborts runaway programs; 0 means 1 << 20.
	MaxSupersteps int
	// PktSize is the BSP* packet size b used for packet accounting;
	// 0 means 64.
	PktSize int
	// ValidateContexts makes the runner marshal every VP's context
	// after every superstep, check it against MaxContextWords, and
	// replace the VP by a fresh instance restored from the encoding.
	// This makes the in-memory runner exercise exactly the Save/Load
	// path the EM engines rely on, at some cost in speed.
	ValidateContexts bool
}

func (o *RunOptions) defaults() {
	if o.MaxSupersteps == 0 {
		o.MaxSupersteps = 1 << 20
	}
	if o.PktSize == 0 {
		o.PktSize = 64
	}
}

// Result is the outcome of a program run.
type Result struct {
	// VPs holds the final virtual processor states, indexed by id.
	VPs []VP
	// Costs holds the measured model costs.
	Costs Costs
}

// CheckProgram validates a Program's static declarations.
func CheckProgram(p Program) error {
	if p.NumVPs() <= 0 {
		return fmt.Errorf("bsp: program has %d VPs, want > 0", p.NumVPs())
	}
	if p.MaxContextWords() <= 0 {
		return fmt.Errorf("bsp: MaxContextWords = %d, want > 0", p.MaxContextWords())
	}
	if p.MaxCommWords() < 0 {
		return fmt.Errorf("bsp: MaxCommWords = %d, want >= 0", p.MaxCommWords())
	}
	return nil
}

// SortMessages puts messages into canonical delivery order (Src, Seq).
func SortMessages(ms []Message) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Src != ms[j].Src {
			return ms[i].Src < ms[j].Src
		}
		return ms[i].Seq < ms[j].Seq
	})
}

// Run executes a Program entirely in memory. It is the reference
// semantics: the EM engines are required (and property-tested) to
// produce bitwise identical VP states and message traffic.
func Run(p Program, opts RunOptions) (*Result, error) {
	opts.defaults()
	if err := CheckProgram(p); err != nil {
		return nil, err
	}
	v := p.NumVPs()
	gamma := p.MaxCommWords()
	mu := p.MaxContextWords()

	vps := make([]VP, v)
	for i := range vps {
		vps[i] = p.NewVP(i)
	}
	inboxes := make([][]Message, v)
	rec := NewCostRecorder(opts.PktSize)
	enc := words.NewEncoder(nil)

	for step := 0; ; step++ {
		if step >= opts.MaxSupersteps {
			return nil, fmt.Errorf("bsp: no convergence after %d supersteps", opts.MaxSupersteps)
		}
		next := make([][]Message, v)
		rec.BeginStep()
		halts := 0
		for id := 0; id < v; id++ {
			in := inboxes[id]
			recvWords, recvPkts := 0, 0
			for _, m := range in {
				w := len(m.Payload) + 1
				recvWords += w
				recvPkts += rec.MsgPkts(w)
			}
			if recvWords > gamma {
				return nil, fmt.Errorf("bsp: VP %d received %d words in superstep %d, exceeding γ=%d", id, recvWords, step, gamma)
			}
			seq := 0
			sendPkts := 0
			env := NewEnv(id, v, step, opts.Seed, func(dst int, payload []uint64) {
				next[dst] = append(next[dst], Message{Src: id, Dst: dst, Seq: seq, Payload: payload})
				seq++
				sendPkts += rec.MsgPkts(len(payload) + 1)
			})
			halt, err := SafeStep(vps[id], env, in)
			if err != nil {
				return nil, fmt.Errorf("bsp: VP %d superstep %d: %w", id, step, err)
			}
			if env.sendWords > gamma {
				return nil, fmt.Errorf("bsp: VP %d sent %d words in superstep %d, exceeding γ=%d", id, env.sendWords, step, gamma)
			}
			if halt {
				if env.sends > 0 {
					return nil, fmt.Errorf("bsp: VP %d sent %d messages while halting in superstep %d", id, env.sends, step)
				}
				halts++
			}
			rec.RecordVP(VPTraffic{
				SendWords: env.sendWords,
				RecvWords: recvWords,
				SendPkts:  sendPkts,
				RecvPkts:  recvPkts,
				Messages:  env.sends,
				Charge:    env.charge,
			})
			if opts.ValidateContexts {
				enc.Reset()
				vps[id].Save(enc)
				if enc.Len() > mu {
					return nil, fmt.Errorf("bsp: VP %d context is %d words after superstep %d, exceeding µ=%d", id, enc.Len(), step, mu)
				}
				fresh := p.NewVP(id)
				fresh.Load(words.NewDecoder(enc.Words()))
				vps[id] = fresh
			}
		}
		rec.EndStep()
		if halts == v {
			return &Result{VPs: vps, Costs: rec.Costs()}, nil
		}
		if halts != 0 {
			return nil, fmt.Errorf("bsp: split halt vote in superstep %d: %d of %d VPs halted", step, halts, v)
		}
		inboxes = next
	}
}
