package journal

import (
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"
)

// TestJournalPrepareCommit: Prepare leaves HEAD untouched (a plain Open
// rolls the record back), CommitPending advances it, and OpenPrepared
// retains a prepared tail across a simulated crash.
func TestJournalPrepareCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Prepare([]uint64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if got := j.Pending(); !reflect.DeepEqual(got, []uint64{2, 2}) {
		t.Fatalf("Pending() = %v, want [2 2]", got)
	}
	// A second Prepare while one is pending is an error.
	if err := j.Prepare([]uint64{3}); err == nil {
		t.Fatal("double Prepare: want error, got nil")
	}
	j.Close() // crash between PREPARE and the decision

	// The commit pointer still only covers the committed record.
	if n, err := Committed(dir); err != nil || n != 1 {
		t.Fatalf("Committed = %d, %v; want 1, nil", n, err)
	}

	// A plain Open rolls the prepared record back...
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Torn() || len(j2.Records()) != 1 {
		t.Fatalf("Open: torn=%v records=%d, want torn rollback to 1", j2.Torn(), len(j2.Records()))
	}
	j2.Close()

	// ...so re-prepare and this time recover via OpenPrepared + commit.
	j3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Prepare([]uint64{2, 2}); err != nil {
		t.Fatal(err)
	}
	j3.Close()

	j4, err := OpenPrepared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := j4.Pending(); !reflect.DeepEqual(got, []uint64{2, 2}) {
		t.Fatalf("OpenPrepared Pending() = %v, want [2 2]", got)
	}
	if err := j4.CommitPending(); err != nil {
		t.Fatal(err)
	}
	j4.Close()
	if n, err := Committed(dir); err != nil || n != 2 {
		t.Fatalf("after recovery commit: Committed = %d, %v; want 2, nil", n, err)
	}
}

// TestJournalAbortPending: the ABORT decision truncates the prepared
// record and the journal accepts a fresh prepare at the same sequence.
func TestJournalAbortPending(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := j.AbortPending(); err != nil { // no-op with nothing pending
		t.Fatal(err)
	}
	if err := j.Prepare([]uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := j.AbortPending(); err != nil {
		t.Fatal(err)
	}
	if j.Pending() != nil {
		t.Fatal("Pending() non-nil after abort")
	}
	if fi, _ := os.Stat(walPath(dir)); fi.Size() != j.off {
		t.Fatalf("wal is %d bytes after abort, want %d", fi.Size(), j.off)
	}
	if err := j.Prepare([]uint64{8}); err != nil {
		t.Fatal(err)
	}
	if err := j.CommitPending(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenPrepared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != 2 || got[1][0] != 8 {
		t.Fatalf("records = %v, want [[1] [8]]", got)
	}
	if j2.Pending() != nil {
		t.Fatal("clean journal reports a pending record")
	}
}

// TestJournalOpenPreparedTornTail: a tail that is not exactly one
// intact record (a frame cut mid-payload) must be rolled back by
// OpenPrepared just as Open would.
func TestJournalOpenPreparedTornTail(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1})

	wal, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write(make([]byte, 41)); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	j, err := OpenPrepared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after garbage-tail rollback")
	}
	if j.Pending() != nil {
		t.Error("garbage tail surfaced as a pending record")
	}
	if fi, _ := os.Stat(walPath(dir)); fi.Size() != j.off {
		t.Errorf("wal is %d bytes after rollback, want %d", fi.Size(), j.off)
	}
}

// TestCommittedEmptyDir: a directory with no journal at all (and a
// nonexistent directory) report 0 committed records with a nil error.
func TestCommittedEmptyDir(t *testing.T) {
	if n, err := Committed(t.TempDir()); n != 0 || err != nil {
		t.Fatalf("empty dir: Committed = %d, %v; want 0, nil", n, err)
	}
	if n, err := Committed(t.TempDir() + "/nope"); n != 0 || err != nil {
		t.Fatalf("missing dir: Committed = %d, %v; want 0, nil", n, err)
	}
}

// TestCommittedTornHead: a HEAD that is the wrong size, has bad magic,
// or fails its checksum is a typed *Error from Committed, not a count.
func TestCommittedTornHead(t *testing.T) {
	for name, mutate := range map[string]func([]byte) []byte{
		"short":        func(h []byte) []byte { return h[:12] },
		"bad-magic":    func(h []byte) []byte { h[0] ^= 0xff; return h },
		"bad-checksum": func(h []byte) []byte { h[9] ^= 0x01; return h },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			mustCreate(t, dir, []uint64{1})
			head, err := os.ReadFile(headPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(headPath(dir), mutate(head), 0o666); err != nil {
				t.Fatal(err)
			}
			_, err = Committed(dir)
			var je *Error
			if !errors.As(err, &je) {
				t.Fatalf("got %v, want *journal.Error", err)
			}
			if je.Record != -1 {
				t.Errorf("error names record %d, want -1 (HEAD)", je.Record)
			}
		})
	}
}

// TestCommittedHeadPastLog: a HEAD whose byte length exceeds the log —
// a silently truncated wal — must surface as corruption from Committed,
// not as a resumable count.
func TestCommittedHeadPastLog(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1}, []uint64{2})

	fi, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath(dir), fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	_, err = Committed(dir)
	var je *Error
	if !errors.As(err, &je) {
		t.Fatalf("got %v, want *journal.Error", err)
	}

	// A deleted wal with a surviving HEAD is the same class of damage.
	if err := os.Remove(walPath(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := Committed(dir); !errors.As(err, &je) {
		t.Fatalf("missing wal: got %v, want *journal.Error", err)
	}
}

// TestCommittedDuringCommit: Committed racing an in-flight Append must
// always observe a consistent journal — some prefix count, never an
// error — because the record fsync strictly precedes the atomic HEAD
// replacement.
func TestCommittedDuringCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const appends = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := Committed(dir)
			if err != nil {
				t.Errorf("Committed during commit: %v", err)
				return
			}
			if n < last || n > appends {
				t.Errorf("Committed went backwards or past the end: %d after %d", n, last)
				return
			}
			last = n
		}
	}()
	for i := 0; i < appends; i++ {
		if err := j.Append([]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if n, err := Committed(dir); err != nil || n != appends {
		t.Fatalf("final Committed = %d, %v; want %d, nil", n, err, appends)
	}
}
