package journal

import (
	"encoding/binary"
	"os"

	"embsp/internal/disk"
)

// Seed creates a journal in dir holding count committed records, of
// which only the last carries a payload; records 0..count-2 are valid
// zero-length stubs. It exists for node migration in the cluster
// runtime: a restored node's durable state is entirely described by
// its latest checkpoint manifest, but the rejoin handshake reconciles
// on the committed record *count*, so the seeded journal must agree
// with the coordinator's. Everything is fsynced before Seed returns;
// reopening with Open or OpenPrepared yields exactly count committed
// records and no tail.
func Seed(dir string, count int, last []uint64) (*Journal, error) {
	if count < 1 {
		return nil, &Error{Path: walPath(dir), Record: -1, Reason: "seed with no records"}
	}
	j, err := Create(dir)
	if err != nil {
		return nil, err
	}
	var buf []byte
	for seq := 0; seq < count; seq++ {
		payload := []uint64{}
		if seq == count-1 {
			payload = last
		}
		ws := make([]uint64, 2+len(payload))
		ws[0] = uint64(seq)
		ws[1] = uint64(len(payload))
		copy(ws[2:], payload)
		frame := make([]byte, 8*(4+len(payload)))
		binary.LittleEndian.PutUint64(frame[0:], recMagic)
		for i, w := range ws {
			binary.LittleEndian.PutUint64(frame[8+8*i:], w)
		}
		binary.LittleEndian.PutUint64(frame[len(frame)-8:], disk.Checksum(ws))
		buf = append(buf, frame...)
		j.records = append(j.records, append([]uint64{}, payload...))
	}
	if _, err := j.wal.WriteAt(buf, 0); err != nil {
		j.Close()
		os.Remove(walPath(dir))
		return nil, err
	}
	if err := j.wal.Sync(); err != nil {
		j.Close()
		return nil, err
	}
	j.off = int64(len(buf))
	if err := j.writeHead(count); err != nil {
		j.Close()
		return nil, err
	}
	return j, nil
}
