package journal

// Fuzzing the journal decode path: Open reads two files an adversary
// (or a crashed kernel) may have scribbled over, so for arbitrary
// journal.wal and HEAD bytes it must either load the journal or refuse
// with a typed *Error — never panic, and never accept bytes it cannot
// then replay consistently. The seed corpus includes a genuine
// committed journal, its torn/flipped/truncated mutants, and a HEAD
// whose checksummed length word overflows int64 (the crafted input
// that pins the negative-slice-bound guard in Open).

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"

	"embsp/internal/disk"
)

// seedJournal builds a real two-record journal and returns its raw
// wal and HEAD bytes.
func seedJournal(f *testing.F) (wal, head []byte) {
	f.Helper()
	dir := f.TempDir()
	j, err := Create(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Append([]uint64{1, 2, 3, 0xDEADBEEF}); err != nil {
		f.Fatal(err)
	}
	if err := j.Append(make([]uint64, 40)); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	wal, err = os.ReadFile(walPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	head, err = os.ReadFile(headPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	return wal, head
}

// craftedHead builds a structurally valid, correctly checksummed HEAD
// claiming the given record count and wal byte length — the only way
// to reach Open's post-checksum validation with hostile numbers.
func craftedHead(count, length uint64) []byte {
	buf := make([]byte, headBytes)
	binary.LittleEndian.PutUint64(buf[0:], headMagic)
	binary.LittleEndian.PutUint64(buf[8:], count)
	binary.LittleEndian.PutUint64(buf[16:], length)
	binary.LittleEndian.PutUint64(buf[24:], disk.Checksum([]uint64{count, length}))
	return buf
}

func FuzzJournalDecode(f *testing.F) {
	wal, head := seedJournal(f)
	f.Add(wal, head)
	f.Add(wal[:len(wal)-5], head)                              // log shorter than HEAD promises
	f.Add(append(bytes.Clone(wal), make([]byte, 64)...), head) // uncommitted tail
	f.Add([]byte{}, []byte{})
	flip := bytes.Clone(wal)
	flip[9] ^= 0xFF // sequence word of record 0
	f.Add(flip, head)
	flip = bytes.Clone(wal)
	flip[len(flip)-1] ^= 0x01 // checksum of the last record
	f.Add(flip, head)
	// Checksummed HEAD words that overflow int64/int: historically a
	// negative slice bound panic, now a typed error.
	f.Add(wal, craftedHead(1, 1<<63))
	f.Add(wal, craftedHead(1<<63, uint64(len(wal))))

	f.Fuzz(func(t *testing.T, wal, head []byte) {
		// parseRecord is the frame decoder Open loops over; it must be
		// total on arbitrary bytes.
		_, _, _ = parseRecord(wal, 0)

		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir), wal, 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(headPath(dir), head, 0o666); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir)
		if err != nil {
			if _, ok := err.(*Error); !ok {
				t.Fatalf("Open rejected fuzzed bytes with untyped error %T: %v", err, err)
			}
			return
		}
		// Open accepted the bytes: the journal must now behave — the
		// committed records append and reopen cleanly, with no torn tail
		// left behind.
		n := len(j.Records())
		if err := j.Append([]uint64{42, 43}); err != nil {
			j.Close()
			t.Fatalf("Append to accepted journal: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen of accepted journal: %v", err)
		}
		defer j2.Close()
		if j2.Torn() {
			t.Error("reopen after a clean Append reports a torn tail")
		}
		recs := j2.Records()
		if len(recs) != n+1 {
			t.Fatalf("reopen sees %d records, want %d", len(recs), n+1)
		}
		if !bytes.Equal(u64bytes(recs[n]), u64bytes([]uint64{42, 43})) {
			t.Errorf("appended record read back as %v", recs[n])
		}
	})
}

func u64bytes(ws []uint64) []byte {
	buf := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}
