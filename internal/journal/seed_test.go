package journal

import (
	"reflect"
	"testing"
)

// TestSeedRoundtrip pins the migration contract: a seeded journal must
// reopen as exactly count committed records — stubs for all but the
// last, which carries the checkpoint manifest — with no pending tail.
func TestSeedRoundtrip(t *testing.T) {
	dir := t.TempDir()
	last := []uint64{5, 6, 7, 8}
	j, err := Seed(dir, 3, last)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("seeded journal reopened with %d records, want 3", len(recs))
	}
	for i := 0; i < 2; i++ {
		if len(recs[i]) != 0 {
			t.Fatalf("stub record %d has payload %v, want empty", i, recs[i])
		}
	}
	if !reflect.DeepEqual(recs[2], last) {
		t.Fatalf("last record %v, want %v", recs[2], last)
	}
	if r.HasPending() {
		t.Fatal("seeded journal reopened with a pending tail")
	}
	if r.Torn() {
		t.Fatal("seeded journal reopened torn")
	}
}

// TestSeedThenTwoPhase checks a seeded journal keeps participating in
// the 2PC protocol: prepare, commit, reopen, counts line up.
func TestSeedThenTwoPhase(t *testing.T) {
	dir := t.TempDir()
	j, err := Seed(dir, 2, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Prepare([]uint64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if !j.HasPending() {
		t.Fatal("prepared record not pending")
	}
	if err := j.CommitPending(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Records()) != 3 {
		t.Fatalf("journal has %d records after seed+commit, want 3", len(r.Records()))
	}
	if !reflect.DeepEqual(r.Records()[2], []uint64{2, 3}) {
		t.Fatalf("committed record %v, want [2 3]", r.Records()[2])
	}
}

func TestSeedRejectsEmpty(t *testing.T) {
	if _, err := Seed(t.TempDir(), 0, nil); err == nil {
		t.Fatal("Seed with zero records succeeded")
	}
}
