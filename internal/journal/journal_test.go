package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"reflect"
	"testing"
)

func mustCreate(t *testing.T, dir string, payloads ...[]uint64) {
	t.Helper()
	j, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := [][]uint64{{1, 2, 3}, {}, {0xdeadbeef}, {9, 9, 9, 9}}
	mustCreate(t, dir, want...)

	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := j.Records()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) == 0 && len(want[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
	if j.Torn() {
		t.Error("clean journal reported torn")
	}

	// Appending after reopen continues the sequence.
	if err := j.Append([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.Records()); n != len(want)+1 {
		t.Fatalf("after reopen-append: %d records, want %d", n, len(want)+1)
	}
}

// TestJournalTornTail simulates a crash between a record's fsync and
// its HEAD advance: durable bytes beyond HEAD must be rolled back
// (truncated), reported via Torn, and the committed prefix preserved.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1}, []uint64{2})

	wal, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write(make([]byte, 41)); err != nil { // partial third record
		t.Fatal(err)
	}
	wal.Close()

	j, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must roll back cleanly, got: %v", err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after tail truncation")
	}
	if n := len(j.Records()); n != 2 {
		t.Fatalf("got %d records, want the 2 committed ones", n)
	}
	if fi, _ := os.Stat(walPath(dir)); fi.Size() != j.off {
		t.Errorf("wal is %d bytes after rollback, want %d", fi.Size(), j.off)
	}
	// The rolled-back journal accepts new commits at the old position.
	if err := j.Append([]uint64{3}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalUnsyncedRenameWindow simulates a crash in which the HEAD
// rename itself was lost (the rename hit the directory but the crash
// landed before — or despite — the directory fsync, so the old HEAD
// reappears after reboot): the journal must come back as the OLD
// commit point, with every later record rolled back as an uncommitted
// tail, and keep accepting appends from there.
func TestJournalUnsyncedRenameWindow(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1}, []uint64{2})
	oldHead, err := os.ReadFile(headPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]uint64{3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]uint64{4}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// The reboot resurrects the pre-append HEAD.
	if err := os.WriteFile(headPath(dir), oldHead, 0o666); err != nil {
		t.Fatal(err)
	}

	j, err = Open(dir)
	if err != nil {
		t.Fatalf("lost HEAD rename must roll back cleanly, got: %v", err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after rolling back records beyond the old HEAD")
	}
	if n := len(j.Records()); n != 2 {
		t.Fatalf("got %d records, want the 2 the old HEAD covers", n)
	}
	if fi, _ := os.Stat(walPath(dir)); fi.Size() != j.off {
		t.Errorf("wal is %d bytes after rollback, want %d", fi.Size(), j.off)
	}
	if err := j.Append([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	if got := j.Records(); len(got) != 3 || got[2][0] != 5 {
		t.Fatalf("after re-append: records = %v, want [[1] [2] [5]]", got)
	}
}

// TestJournalCorruptRecord flips a byte inside a committed record: Open
// must report a typed *Error naming that record, never replay it.
func TestJournalCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1, 1}, []uint64{2, 2})

	buf, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-12] ^= 0x01 // inside record 1's payload
	if err := os.WriteFile(walPath(dir), buf, 0o666); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir)
	var je *Error
	if !errors.As(err, &je) {
		t.Fatalf("got %v, want *journal.Error", err)
	}
	if je.Record != 1 {
		t.Errorf("error names record %d, want 1", je.Record)
	}
}

// TestJournalShortLog: HEAD promising more bytes than the log holds is
// corruption (a silently truncated log), not a clean rollback.
func TestJournalShortLog(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1}, []uint64{2})

	fi, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath(dir), fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	var je *Error
	if !errors.As(err, &je) {
		t.Fatalf("got %v, want *journal.Error", err)
	}
}

// TestJournalBadHead: a damaged commit pointer is a typed error with
// Record == -1.
func TestJournalBadHead(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, []uint64{1})

	head, err := os.ReadFile(headPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(head[8:], 99) // count no longer matches checksum
	if err := os.WriteFile(headPath(dir), head, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	var je *Error
	if !errors.As(err, &je) {
		t.Fatalf("got %v, want *journal.Error", err)
	}
	if je.Record != -1 {
		t.Errorf("error names record %d, want -1 (HEAD)", je.Record)
	}

	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open of an empty directory: want error, got nil")
	}
}
