// Package journal implements the write-ahead commit journal behind
// Options.StateDir. The engines append one record per committed
// compound-superstep barrier (the encoded checkpoint manifest:
// superstep index, PRNG state, allocator and fault-layer state,
// context directory, statistics); on resume the journal replays to the
// last committed barrier and the run continues from there.
//
// On disk a journal is two files in the state directory:
//
//	journal.wal — the record log, a flat sequence of framed records:
//	    word 0: record magic
//	    word 1: sequence number (0, 1, 2, ...)
//	    word 2: payload length in words
//	    words 3..3+n: the payload
//	    last word: checksum over words 1..3+n
//	HEAD — the commit pointer: [magic, record count, byte length,
//	    checksum], 32 bytes, replaced atomically.
//
// Append follows write-ahead discipline: the record is written and
// fsynced to journal.wal first, then HEAD is replaced via
// write-to-temp + fsync + rename + directory fsync. A crash between
// the two leaves a durable record that HEAD does not cover; Open
// treats everything beyond HEAD as an uncommitted tail and truncates
// it (a clean rollback to the last commit — the engines deterministically
// redo the lost superstep). A record that HEAD covers but that is
// truncated or fails its checksum is corruption, reported as a typed
// *Error and never silently replayed.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"embsp/internal/disk"
	"embsp/internal/obs"
)

const (
	recMagic  = 0x454d424a524e4c31 // "EMBJRNL1"
	headMagic = 0x454d424a48454144 // "EMBJHEAD"
	headBytes = 32
)

// Error reports a structurally damaged journal: a record that the HEAD
// pointer covers but that cannot be read back intact.
type Error struct {
	Path   string
	Record int // sequence number of the damaged record, -1 for HEAD itself
	Reason string
}

func (e *Error) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("journal: %s: %s", e.Path, e.Reason)
	}
	return fmt.Sprintf("journal: %s: record %d: %s", e.Path, e.Record, e.Reason)
}

// Journal is an append-only commit log. It is not safe for concurrent
// use.
type Journal struct {
	dir        string
	wal        *os.File
	off        int64      // committed byte length of the wal
	records    [][]uint64 // committed payloads, in sequence order
	torn       bool       // Open truncated an uncommitted tail
	pending    []uint64   // prepared-but-undecided tail record payload
	hasPending bool       // a prepared record awaits its commit/abort decision
	pendLen    int64      // frame length of the pending record in bytes
	tr         *obs.Tracer
	tpid       int
}

// SetTracer attaches an observability tracer: every Append records a
// "journal-append" span covering the record write+fsync and the
// atomic HEAD replacement, labelled with pid as the trace process id.
// Pure wall-clock observability; nil detaches.
func (j *Journal) SetTracer(tr *obs.Tracer, pid int) {
	j.tr, j.tpid = tr, pid
}

func walPath(dir string) string  { return filepath.Join(dir, "journal.wal") }
func headPath(dir string) string { return filepath.Join(dir, "HEAD") }

// Create starts a fresh journal in dir, discarding any previous one.
func Create(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath(dir), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, wal: wal}
	if err := j.writeHead(0); err != nil {
		wal.Close()
		return nil, err
	}
	return j, nil
}

// readHead loads and verifies the HEAD commit pointer of dir,
// returning the committed record count and byte length.
func readHead(dir string) (count int, length int64, err error) {
	head, err := os.ReadFile(headPath(dir))
	if err != nil {
		return 0, 0, &Error{Path: headPath(dir), Record: -1, Reason: fmt.Sprintf("unreadable commit pointer: %v", err)}
	}
	if len(head) != headBytes || binary.LittleEndian.Uint64(head[0:]) != headMagic {
		return 0, 0, &Error{Path: headPath(dir), Record: -1, Reason: "not a journal HEAD"}
	}
	hw := []uint64{
		binary.LittleEndian.Uint64(head[8:]),
		binary.LittleEndian.Uint64(head[16:]),
	}
	if disk.Checksum(hw) != binary.LittleEndian.Uint64(head[24:]) {
		return 0, 0, &Error{Path: headPath(dir), Record: -1, Reason: "commit pointer fails its checksum"}
	}
	count, length = int(hw[0]), int64(hw[1])
	// A checksummed HEAD can still carry implausible words (it is only
	// 16 bytes of entropy away from a collision, and fuzzing finds
	// them): a count or length that overflows int must be rejected here,
	// or a negative slice bound downstream would panic instead of
	// erroring.
	if count < 0 || length < 0 {
		return 0, 0, &Error{Path: headPath(dir), Record: -1, Reason: "commit pointer is implausible"}
	}
	return count, length, nil
}

// Committed reports how many committed records the journal in dir
// holds, without opening it for appending or truncating its tail. A
// directory with no journal HEAD at all reports 0 with a nil error.
// Callers use it to decide between a fresh run and Options.Resume: a
// state directory whose run died before its first barrier commit has
// nothing to resume from and must be started fresh.
func Committed(dir string) (int, error) {
	if _, err := os.Stat(headPath(dir)); errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	count, length, err := readHead(dir)
	if err != nil {
		return 0, err
	}
	// A HEAD that covers more bytes than the log holds promises records
	// that cannot exist — the same corruption Open would report, caught
	// here so callers don't treat the directory as resumable.
	st, err := os.Stat(walPath(dir))
	if err != nil {
		return 0, &Error{Path: walPath(dir), Record: -1, Reason: fmt.Sprintf("unreadable log: %v", err)}
	}
	if st.Size() < length {
		return 0, &Error{Path: walPath(dir), Record: -1,
			Reason: fmt.Sprintf("log is %d bytes, commit pointer covers %d", st.Size(), length)}
	}
	return count, nil
}

// Open loads an existing journal for resumption. It verifies HEAD,
// reads back exactly the committed records (verifying each frame), and
// truncates any uncommitted tail beyond HEAD. Fewer intact records
// than HEAD promises is corruption and yields a typed *Error.
func Open(dir string) (*Journal, error) {
	count, length, err := readHead(dir)
	if err != nil {
		return nil, err
	}

	wal, err := os.OpenFile(walPath(dir), os.O_RDWR, 0o666)
	if err != nil {
		return nil, &Error{Path: walPath(dir), Record: -1, Reason: fmt.Sprintf("unreadable log: %v", err)}
	}
	j := &Journal{dir: dir, wal: wal, off: length}

	buf, err := os.ReadFile(walPath(dir))
	if err != nil {
		wal.Close()
		return nil, err
	}
	if int64(len(buf)) < length {
		wal.Close()
		return nil, &Error{Path: walPath(dir), Record: -1,
			Reason: fmt.Sprintf("log is %d bytes, commit pointer covers %d", len(buf), length)}
	}
	off := int64(0)
	for seq := 0; seq < count; seq++ {
		payload, n, rerr := parseRecord(buf[off:length], seq)
		if rerr != nil {
			wal.Close()
			rerr.Path = walPath(dir)
			return nil, rerr
		}
		j.records = append(j.records, payload)
		off += n
	}
	if off != length {
		wal.Close()
		return nil, &Error{Path: walPath(dir), Record: -1,
			Reason: fmt.Sprintf("committed records end at byte %d, commit pointer says %d", off, length)}
	}
	// Anything beyond HEAD is a durable but uncommitted tail (crash
	// between record fsync and HEAD rename): truncate it and let the
	// engine redo that superstep deterministically.
	if int64(len(buf)) > length {
		j.torn = true
		if err := wal.Truncate(length); err != nil {
			wal.Close()
			return nil, err
		}
		if err := wal.Sync(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return j, nil
}

// OpenPrepared is Open for two-phase-commit participants: when the
// bytes beyond HEAD form exactly one intact record with the next
// sequence number — the signature of a crash between PREPARE and the
// coordinator's decision — the record is retained as Pending instead of
// being truncated, so the caller can re-apply the coordinator's
// decision via CommitPending or AbortPending. Any other tail (a torn
// frame, trailing garbage) is truncated exactly as Open does.
func OpenPrepared(dir string) (*Journal, error) {
	count, length, err := readHead(dir)
	if err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath(dir), os.O_RDWR, 0o666)
	if err != nil {
		return nil, &Error{Path: walPath(dir), Record: -1, Reason: fmt.Sprintf("unreadable log: %v", err)}
	}
	j := &Journal{dir: dir, wal: wal, off: length}
	buf, err := os.ReadFile(walPath(dir))
	if err != nil {
		wal.Close()
		return nil, err
	}
	if int64(len(buf)) < length {
		wal.Close()
		return nil, &Error{Path: walPath(dir), Record: -1,
			Reason: fmt.Sprintf("log is %d bytes, commit pointer covers %d", len(buf), length)}
	}
	off := int64(0)
	for seq := 0; seq < count; seq++ {
		payload, n, rerr := parseRecord(buf[off:length], seq)
		if rerr != nil {
			wal.Close()
			rerr.Path = walPath(dir)
			return nil, rerr
		}
		j.records = append(j.records, payload)
		off += n
	}
	if off != length {
		wal.Close()
		return nil, &Error{Path: walPath(dir), Record: -1,
			Reason: fmt.Sprintf("committed records end at byte %d, commit pointer says %d", off, length)}
	}
	tail := buf[length:]
	if len(tail) == 0 {
		return j, nil
	}
	if payload, n, rerr := parseRecord(tail, count); rerr == nil && n == int64(len(tail)) {
		j.pending = payload
		j.hasPending = true
		j.pendLen = n
		return j, nil
	}
	// Not a clean prepared record: fall back to Open's rollback.
	j.torn = true
	if err := wal.Truncate(length); err != nil {
		wal.Close()
		return nil, err
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return nil, err
	}
	return j, nil
}

// parseRecord decodes one framed record expecting sequence seq,
// returning the payload and the frame length in bytes.
func parseRecord(buf []byte, seq int) ([]uint64, int64, *Error) {
	if len(buf) < 32 {
		return nil, 0, &Error{Record: seq, Reason: "record truncated before its header"}
	}
	if binary.LittleEndian.Uint64(buf[0:]) != recMagic {
		return nil, 0, &Error{Record: seq, Reason: "bad record magic"}
	}
	gotSeq := binary.LittleEndian.Uint64(buf[8:])
	if gotSeq != uint64(seq) {
		return nil, 0, &Error{Record: seq, Reason: fmt.Sprintf("record claims sequence %d", gotSeq)}
	}
	nwords := binary.LittleEndian.Uint64(buf[16:])
	frame := 8 * (4 + int64(nwords))
	if nwords > uint64(len(buf))/8 || int64(len(buf)) < frame {
		return nil, 0, &Error{Record: seq, Reason: "record truncated mid-payload"}
	}
	ws := make([]uint64, 2+nwords) // seq, nwords, payload — the checksummed words
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(buf[8+8*i:])
	}
	if disk.Checksum(ws) != binary.LittleEndian.Uint64(buf[frame-8:]) {
		return nil, 0, &Error{Record: seq, Reason: "record fails its checksum"}
	}
	return ws[2:], frame, nil
}

func (j *Journal) writeHead(count int) error {
	hw := []uint64{uint64(count), uint64(j.off)}
	buf := make([]byte, headBytes)
	binary.LittleEndian.PutUint64(buf[0:], headMagic)
	binary.LittleEndian.PutUint64(buf[8:], hw[0])
	binary.LittleEndian.PutUint64(buf[16:], hw[1])
	binary.LittleEndian.PutUint64(buf[24:], disk.Checksum(hw))
	tmp := headPath(j.dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, headPath(j.dir)); err != nil {
		return err
	}
	// Fsync the directory so the rename itself is durable.
	d, err := os.Open(j.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append commits one record: the framed payload is written and fsynced
// to the log, then the HEAD pointer is atomically advanced over it.
// The payload is only considered committed once Append returns nil.
func (j *Journal) Append(payload []uint64) error {
	sp := j.tr.Begin(obs.CatEngine, "journal-append", j.tpid, 0)
	defer sp.End()
	if err := j.Prepare(payload); err != nil {
		return err
	}
	return j.CommitPending()
}

// Prepare durably writes the next record's frame without advancing
// HEAD: the PREPARE half of a two-phase commit. After Prepare returns
// nil the record survives any crash, but Open still treats it as an
// uncommitted tail (rollback) unless the coordinator's decision is
// re-applied via OpenPrepared + CommitPending. At most one record may
// be pending at a time.
func (j *Journal) Prepare(payload []uint64) error {
	if j.hasPending {
		return &Error{Path: walPath(j.dir), Record: len(j.records), Reason: "prepare with a record already pending"}
	}
	seq := len(j.records)
	ws := make([]uint64, 2+len(payload))
	ws[0] = uint64(seq)
	ws[1] = uint64(len(payload))
	copy(ws[2:], payload)
	frame := make([]byte, 8*(4+len(payload)))
	binary.LittleEndian.PutUint64(frame[0:], recMagic)
	for i, w := range ws {
		binary.LittleEndian.PutUint64(frame[8+8*i:], w)
	}
	binary.LittleEndian.PutUint64(frame[len(frame)-8:], disk.Checksum(ws))
	if _, err := j.wal.WriteAt(frame, j.off); err != nil {
		return err
	}
	if err := j.wal.Sync(); err != nil {
		return err
	}
	j.pending = append([]uint64{}, payload...)
	j.hasPending = true
	j.pendLen = int64(len(frame))
	return nil
}

// CommitPending atomically advances HEAD over the pending record — the
// COMMIT half of a two-phase commit. The record is only considered
// committed once CommitPending returns nil.
func (j *Journal) CommitPending() error {
	if !j.hasPending {
		return &Error{Path: walPath(j.dir), Record: len(j.records), Reason: "commit with no record pending"}
	}
	j.off += j.pendLen
	if err := j.writeHead(len(j.records) + 1); err != nil {
		j.off -= j.pendLen
		return err
	}
	j.records = append(j.records, j.pending)
	j.pending, j.hasPending, j.pendLen = nil, false, 0
	return nil
}

// AbortPending discards the pending record, truncating the log back to
// the last committed byte — the ABORT decision of a two-phase commit.
// A no-op when nothing is pending.
func (j *Journal) AbortPending() error {
	if !j.hasPending {
		return nil
	}
	if err := j.wal.Truncate(j.off); err != nil {
		return err
	}
	if err := j.wal.Sync(); err != nil {
		return err
	}
	j.pending, j.hasPending, j.pendLen = nil, false, 0
	return nil
}

// HasPending reports whether a prepared record awaits its decision.
func (j *Journal) HasPending() bool { return j.hasPending }

// Pending returns the prepared-but-undecided record payload (empty for
// an empty payload), or nil when nothing is pending. The caller must
// not modify it.
func (j *Journal) Pending() []uint64 {
	if !j.hasPending {
		return nil
	}
	if j.pending == nil {
		return []uint64{}
	}
	return j.pending
}

// Records returns the committed payloads in sequence order. The caller
// must not modify them.
func (j *Journal) Records() [][]uint64 { return j.records }

// Torn reports whether Open found and truncated a durable but
// uncommitted tail after the last committed record — the signature of
// a crash between a record write and its HEAD advance.
func (j *Journal) Torn() bool { return j.torn }

// Close closes the log file. The journal must not be appended to
// afterwards.
func (j *Journal) Close() error {
	if j.wal == nil {
		return nil
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}
