package fault

import (
	"fmt"
	"time"

	"embsp/internal/prng"
)

// NetPlan is the network counterpart of Plan: a deterministic,
// seed-driven schedule of message-level faults for the cluster
// transport. Where the disk plan perturbs parallel I/O operations,
// the net plan perturbs frames on a link — dropping them, delaying
// them, or delivering them twice — below the transport's
// retransmission layer, so the ARQ machinery is what gets exercised.
//
// Decide is a pure function of (seed, link, seq, attempt): it keeps no
// clocks and no streams, so the schedule is independent of goroutine
// interleaving, reconnects, and replays — the same frame retransmitted
// after a crash meets the same fate. Every retransmission is a fresh
// draw, so with DropRate q the chance a frame survives none of r
// attempts is qʳ; CleanAfter caps the adversary outright so a bounded
// retry budget still guarantees delivery.
type NetPlan struct {
	// Seed keys the fault schedule (independently of the run seed).
	Seed uint64
	// DropRate is the per-delivery probability that a frame vanishes.
	DropRate float64
	// DelayRate is the per-delivery probability that a frame is held
	// for Delay before it is written.
	DelayRate float64
	// Delay is how long a delayed frame is held.
	Delay time.Duration
	// DupRate is the per-delivery probability that a frame is
	// delivered twice (the receiver's dedup must absorb the copy).
	DupRate float64
	// CleanAfter, when positive, exempts delivery attempts with index
	// >= CleanAfter: however unlucky the seed, the CleanAfter-th
	// retransmission of a frame always goes through. Transports set it
	// below their retry bound to keep injected chaos inside the
	// recoverable regime.
	CleanAfter int
	// Deaths permanently kills links: unlike the rate faults above,
	// a dead link delivers nothing ever again — no retransmission,
	// heartbeat or CleanAfter rescues it. It models a died NIC, cable
	// or machine; only a *new* connection (a higher epoch) escapes.
	Deaths []LinkDeath
}

// LinkDeath permanently silences one direction of one connection
// incarnation: every frame with sequence number >= AfterSeq written on
// (From → To) during connection epoch Epoch is discarded. Epochs count
// connection incarnations between the same endpoints (the first dial
// is epoch 0, a redial epoch 1, ...), so a death pinned to epoch 0
// models a machine whose replacement — same node id, fresh link —
// comes back healthy.
type LinkDeath struct {
	From, To int
	Epoch    int
	AfterSeq uint64
}

// Dead reports whether the (from → to) link at connection epoch epoch
// is permanently dead for frame seq.
func (p NetPlan) Dead(from, to, epoch int, seq uint64) bool {
	for _, d := range p.Deaths {
		if d.From == from && d.To == to && d.Epoch == epoch && seq >= d.AfterSeq {
			return true
		}
	}
	return false
}

// DeadLink reports whether any death is scheduled for the (from → to)
// link at epoch, regardless of sequence number. Keep-alive frames use
// it: their sequence counter is independent of the data stream, and a
// dying NIC does not keep answering pings while dropping data — the
// keep-alives are exactly what detects the death.
func (p NetPlan) DeadLink(from, to, epoch int) bool {
	for _, d := range p.Deaths {
		if d.From == from && d.To == to && d.Epoch == epoch {
			return true
		}
	}
	return false
}

// Enabled reports whether the plan injects anything.
func (p NetPlan) Enabled() bool {
	return p.DropRate > 0 || p.DelayRate > 0 || p.DupRate > 0 || len(p.Deaths) > 0
}

// Validate reports whether the plan is usable.
func (p NetPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", p.DropRate}, {"DelayRate", p.DelayRate}, {"DupRate", p.DupRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("fault: %s = %v, want [0, 1)", r.name, r.v)
		}
	}
	if p.Delay < 0 {
		return fmt.Errorf("fault: Delay = %v, want >= 0", p.Delay)
	}
	if p.DelayRate > 0 && p.Delay == 0 {
		return fmt.Errorf("fault: DelayRate = %v with zero Delay", p.DelayRate)
	}
	if p.CleanAfter < 0 {
		return fmt.Errorf("fault: CleanAfter = %d, want >= 0", p.CleanAfter)
	}
	for i, d := range p.Deaths {
		if d.From < 0 || d.To < 0 {
			return fmt.Errorf("fault: Deaths[%d] direction (%d -> %d) has a negative node id", i, d.From, d.To)
		}
		if d.Epoch < 0 {
			return fmt.Errorf("fault: Deaths[%d] Epoch = %d, want >= 0", i, d.Epoch)
		}
	}
	return nil
}

// NetDecision is the fate of one delivery attempt.
type NetDecision struct {
	// Drop: the frame is not written at all.
	Drop bool
	// Duplicate: the frame is written twice back to back.
	Duplicate bool
	// Delay: hold the frame this long before writing it (zero when
	// the attempt is not delayed).
	Delay time.Duration
}

// Clean reports whether the attempt is delivered normally.
func (d NetDecision) Clean() bool { return !d.Drop && !d.Duplicate && d.Delay == 0 }

// Link names one direction of a connection between two cluster
// members (workers 0..P-1; the coordinator conventionally uses P).
// Decide treats it as an opaque stream identifier.
func Link(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// Decide returns the fate of delivery attempt attempt (0-based) of
// frame seq on link. It is pure: the same arguments always return the
// same decision, on any machine, in any order.
func (p NetPlan) Decide(link, seq uint64, attempt int) NetDecision {
	var d NetDecision
	if !p.Enabled() || (p.CleanAfter > 0 && attempt >= p.CleanAfter) {
		return d
	}
	r := prng.New(prng.Derive(p.Seed, 0x4e4554, link, seq, uint64(attempt)))
	if p.DropRate > 0 && r.Float64() < p.DropRate {
		d.Drop = true
		return d
	}
	if p.DelayRate > 0 && r.Float64() < p.DelayRate {
		d.Delay = p.Delay
	}
	if p.DupRate > 0 && r.Float64() < p.DupRate {
		d.Duplicate = true
	}
	return d
}
