// Package fault adds an imperfect-hardware layer to the simulated
// disk subsystem. The paper's machine model assumes perfect drives;
// real external-memory systems do not get them, and the compound
// superstep — which leaves all state on disk in the standard
// consecutive and standard linked formats — is exactly the natural
// recovery point the engines need to survive without them.
//
// The package wraps any disk.Disk with a deterministic, seed-driven
// fault Plan:
//
//   - transient read and write errors: the operation is charged but
//     fails, and succeeds when re-issued;
//   - transfer corruption: a read delivers a bit-flipped block, which
//     the per-track checksums detect;
//   - permanent single-drive failure: from a configured operation
//     index on, one drive stops serving I/O for good.
//
// The wrapper recovers what it can on its own. Transient faults
// (including detected corruption) are retried with a bounded,
// model-costed policy: every retry re-issues the parallel operation
// against the underlying disk and is therefore a charged I/O op — the
// simulation's version of retry-with-backoff, surfaced to callers as
// Counters.Retries / RetriedBlocks / RecoveryOps. When mirroring is
// enabled, every written track also gets a copy on a partner drive, so
// a dead drive's blocks remain readable (at the cost of the doubled
// write ops counted in MirrorOps) and parallel operations that would
// have touched the dead drive are split across the survivors.
//
// What the wrapper cannot recover (retries exhausted; the moment of a
// drive death) escapes as a typed *Error whose Recoverable flag tells
// the engine whether rolling back to the last compound-superstep
// barrier and replaying is worthwhile. Snapshot/Restore support
// exactly that rollback.
//
// All randomness is keyed by Plan.Seed via prng.Derive, with one
// stream and one attempt clock per drive, consumed in the
// (deterministic) per-drive order of disk operations. A given seed
// therefore yields the same fault schedule on every run, and — since
// operations on disjoint drive sets advance disjoint clocks and
// streams — the schedule is independent of how such operations
// interleave, so fault injection preserves the repository's bitwise
// reproducibility guarantees even under concurrent I/O.
package fault

import (
	"fmt"

	"embsp/internal/obs"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// TransientRead is a read operation that failed but will succeed
	// when re-issued.
	TransientRead Kind = iota + 1
	// TransientWrite is a write operation that failed but will succeed
	// when re-issued.
	TransientWrite
	// Corruption is a read that delivered a bit-flipped block, detected
	// by the per-track checksum. Re-reading delivers clean data.
	Corruption
	// DriveLoss is a permanent single-drive failure.
	DriveLoss
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case TransientRead:
		return "transient-read"
	case TransientWrite:
		return "transient-write"
	case Corruption:
		return "corruption"
	case DriveLoss:
		return "drive-loss"
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Error is the typed error the fault layer reports to the engines,
// identifying what failed and where. Recoverable reports whether
// rolling back to the last compound-superstep barrier and replaying
// can succeed: true for transient kinds (a replay draws a fresh fault
// schedule) and for a drive loss covered by mirroring; false for a
// drive loss whose data has no second copy.
type Error struct {
	Kind        Kind
	Disk        int
	Track       int
	Op          string // "read" or "write"
	Recoverable bool
}

// Error formats the fault for logs and wrapped errors.
func (e *Error) Error() string {
	rec := "recoverable"
	if !e.Recoverable {
		rec = "unrecoverable"
	}
	return fmt.Sprintf("fault: %s on %s of drive %d track %d (%s)", e.Kind, e.Op, e.Disk, e.Track, rec)
}

// Transient reports whether the error is a transient fault kind, i.e.
// re-issuing the same operation may succeed.
func (e *Error) Transient() bool {
	return e.Kind == TransientRead || e.Kind == TransientWrite || e.Kind == Corruption
}

// Plan is a deterministic fault-injection schedule. The zero value
// injects nothing. Rates are per-block probabilities evaluated
// independently for every block of every operation attempt, drawn from
// a PRNG keyed by Seed, so the same plan over the same operation
// sequence injects the same faults.
type Plan struct {
	// Seed keys the fault schedule (independently of the run seed).
	Seed uint64
	// ReadErrorRate is the per-block probability that a parallel read
	// fails transiently.
	ReadErrorRate float64
	// WriteErrorRate is the per-block probability that a parallel
	// write fails transiently (the data does land on this simulated
	// controller, but the completion is lost, so the engine must
	// re-issue the operation — the charged-retry model).
	WriteErrorRate float64
	// CorruptRate is the per-block probability that a read delivers a
	// block with one bit flipped in transfer. Only blocks with a
	// recorded checksum are corrupted (a flip in a never-written block
	// would be undetectable and meaningless).
	CorruptRate float64
	// FirstOp exempts the first FirstOp operation attempts of each
	// drive from injection, e.g. to let input staging run clean.
	// (Clocks are per drive: an attempt advances only the clocks of
	// the drives its requests touch.)
	FirstOp int64
	// FailDriveOp, when positive, kills drive FailDrive permanently at
	// that drive's own operation-attempt index FailDriveOp — i.e. at
	// the first attempt touching FailDrive after it has served
	// FailDriveOp attempts.
	FailDriveOp int64
	// FailDrive is the drive that dies at FailDriveOp.
	FailDrive int
	// FailProc selects which real processor's drive dies (engines with
	// P > 1 give each processor its own disk array; only this
	// processor's plan keeps the drive failure).
	FailProc int
	// Mirror maintains a copy of every written track on a partner
	// drive so a single drive loss is survivable. Redundancy is
	// explicit: a plan with FailDriveOp > 0 and no Mirror (and no
	// parity layer beneath the wrapper) injects an unrecoverable
	// drive loss — Options.Validate rejects that combination up
	// front with a typed error.
	Mirror bool
}

// Enabled reports whether the plan injects anything or mirrors.
func (p Plan) Enabled() bool {
	return p.ReadErrorRate > 0 || p.WriteErrorRate > 0 || p.CorruptRate > 0 ||
		p.FailDriveOp > 0 || p.Mirror
}

// Mirrored reports whether the plan requires mirror copies.
func (p Plan) Mirrored() bool { return p.Mirror }

// Validate reports whether the plan is usable.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"ReadErrorRate", p.ReadErrorRate}, {"WriteErrorRate", p.WriteErrorRate}, {"CorruptRate", p.CorruptRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("fault: %s = %v, want [0, 1)", r.name, r.v)
		}
	}
	if p.FirstOp < 0 {
		return fmt.Errorf("fault: FirstOp = %d, want >= 0", p.FirstOp)
	}
	if p.FailDrive < 0 {
		return fmt.Errorf("fault: FailDrive = %d, want >= 0", p.FailDrive)
	}
	if p.FailProc < 0 {
		return fmt.Errorf("fault: FailProc = %d, want >= 0", p.FailProc)
	}
	return nil
}

// Counters reports everything the fault layer injected and everything
// it spent recovering. All figures are monotone over the run (they are
// not rolled back by Restore: a replayed superstep's faults and
// recovery work really happened).
type Counters struct {
	// InjectedReadFaults / InjectedWriteFaults / InjectedCorruptions
	// count injected faults by kind.
	InjectedReadFaults  int64
	InjectedWriteFaults int64
	InjectedCorruptions int64
	// ChecksumFailures counts blocks whose per-track checksum did not
	// match on read (each detected corruption is one).
	ChecksumFailures int64
	// DriveFailures counts permanent drive deaths (0 or 1 per array).
	DriveFailures int64
	// Retries counts re-issued parallel operations; RetriedBlocks the
	// blocks they re-transferred.
	Retries       int64
	RetriedBlocks int64
	// RecoveryOps counts the extra charged parallel I/O operations the
	// layer spent on recovery: one per retry re-issue, plus the extra
	// operations needed when a request set had to be split across
	// surviving drives after a drive loss.
	RecoveryOps int64
	// MirrorOps counts the extra parallel write operations spent
	// maintaining mirror copies (the overhead of drive-loss
	// protection).
	MirrorOps int64
}

// Injected returns the total number of injected faults.
func (c Counters) Injected() int64 {
	return c.InjectedReadFaults + c.InjectedWriteFaults + c.InjectedCorruptions + c.DriveFailures
}

// Add accumulates other into c (for multi-processor aggregation).
func (c *Counters) Add(other Counters) {
	c.InjectedReadFaults += other.InjectedReadFaults
	c.InjectedWriteFaults += other.InjectedWriteFaults
	c.InjectedCorruptions += other.InjectedCorruptions
	c.ChecksumFailures += other.ChecksumFailures
	c.DriveFailures += other.DriveFailures
	c.Retries += other.Retries
	c.RetriedBlocks += other.RetriedBlocks
	c.RecoveryOps += other.RecoveryOps
	c.MirrorOps += other.MirrorOps
}

// Publish folds the counters into the metrics registry under fault_*
// names, with Add semantics so multi-processor runs aggregate. A nil
// registry is a no-op.
func (c Counters) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("fault_injected_read_faults").Add(c.InjectedReadFaults)
	r.Counter("fault_injected_write_faults").Add(c.InjectedWriteFaults)
	r.Counter("fault_injected_corruptions").Add(c.InjectedCorruptions)
	r.Counter("fault_checksum_failures").Add(c.ChecksumFailures)
	r.Counter("fault_drive_failures").Add(c.DriveFailures)
	r.Counter("fault_retries").Add(c.Retries)
	r.Counter("fault_retried_blocks").Add(c.RetriedBlocks)
	r.Counter("fault_recovery_ops").Add(c.RecoveryOps)
	r.Counter("fault_mirror_ops").Add(c.MirrorOps)
}
