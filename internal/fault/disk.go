package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"embsp/internal/disk"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// DefaultMaxRetries is the retry budget used when the caller passes 0
// to Wrap. With per-block fault rates r well below 1, the probability
// that 8 consecutive attempts of one operation all fault is r^9 —
// negligible — so unrecoverable transient faults essentially only
// occur when retries are disabled deliberately.
const DefaultMaxRetries = 8

type addr struct{ d, t int }

// Disk wraps an underlying disk.Store with the fault layer: injection
// according to a Plan, per-track checksums, bounded charged retries,
// optional mirroring, and dead-drive redirection. It implements
// disk.Disk, so the engines and the layout helpers run on it
// unchanged, whether the store underneath is the in-memory Array or
// the durable file-backed File.
//
// The fault schedule is per drive: each drive has its own attempt
// clock and its own injection PRNG stream (derived from the plan seed
// and the drive index), and an operation attempt advances only the
// clocks of the drives its request list touches. This makes the
// accounting order-independent across drives — two operations on
// disjoint drive sets commute bit-for-bit, whichever order a
// concurrent caller lands them in — which is what lets the layer be
// safe for concurrent use: all methods serialize on an internal mutex
// (physical D-parallelism lives below, inside one store operation),
// and racing operations on overlapping drives are ordered by whatever
// the race decides, exactly as at the store level.
type Disk struct {
	inner      disk.Store
	plan       Plan
	maxRetries int
	below      driveDier // parity layer underneath, if any

	mu       sync.Mutex   // guards everything below
	rngs     []*prng.Rand // per-drive injection streams
	attempts []int64      // per-drive operation-attempt clocks
	dead     []bool
	sums     map[addr]uint64    // checksum per written physical track
	mirrors  map[addr]disk.Addr // primary -> mirror copy location
	ctr      Counters
}

// driveDier is implemented by a redundancy layer beneath the fault
// wrapper (detected structurally to avoid an import cycle). When
// present, the fault layer does not mirror or redirect: dead-drive
// I/O passes straight through and the layer below reconstructs reads
// from parity and remaps writes onto surviving drives.
type driveDier interface {
	DriveDied(d int)
}

// Wrap layers the fault model over a store. maxRetries bounds the
// transparent retry policy: 0 means DefaultMaxRetries, negative
// disables retries entirely (every transient fault escapes to the
// caller as a recoverable error). Mirroring requires at least two
// drives.
func Wrap(a disk.Store, plan Plan, maxRetries int) (*Disk, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cfg := a.Config()
	if plan.FailDriveOp > 0 && plan.FailDrive >= cfg.D {
		return nil, fmt.Errorf("fault: FailDrive = %d, machine has %d drives", plan.FailDrive, cfg.D)
	}
	below, _ := a.(driveDier)
	if plan.Mirrored() {
		if cfg.D < 2 {
			return nil, fmt.Errorf("fault: mirroring requires D >= 2, have D = %d", cfg.D)
		}
		if below != nil {
			return nil, fmt.Errorf("fault: mirroring and a parity layer are mutually exclusive")
		}
	}
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	f := &Disk{
		inner:      a,
		plan:       plan,
		maxRetries: maxRetries,
		below:      below,
		rngs:       make([]*prng.Rand, cfg.D),
		attempts:   make([]int64, cfg.D),
		dead:       make([]bool, cfg.D),
		sums:       make(map[addr]uint64),
		mirrors:    make(map[addr]disk.Addr),
	}
	for d := range f.rngs {
		f.rngs[d] = prng.New(prng.Derive(plan.Seed, 0xFA01, uint64(d)))
	}
	return f, nil
}

// MustWrap is Wrap for statically valid plans.
func MustWrap(a disk.Store, plan Plan, maxRetries int) *Disk {
	f, err := Wrap(a, plan, maxRetries)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the underlying configuration.
func (f *Disk) Config() disk.Config { return f.inner.Config() }

// Stats returns the underlying I/O statistics (retries, mirror writes
// and redirect splits are all real charged operations and appear
// here).
func (f *Disk) Stats() disk.Stats { return f.inner.Stats() }

// ResetStats resets the underlying statistics.
func (f *Disk) ResetStats() { f.inner.ResetStats() }

// Counters returns the fault and recovery accounting.
func (f *Disk) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctr
}

// Down reports whether drive d has failed permanently.
func (f *Disk) Down(d int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[d]
}

// LiveDrives returns the number of drives still serving I/O.
func (f *Disk) LiveDrives() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, dd := range f.dead {
		if !dd {
			n++
		}
	}
	return n
}

// Alloc allocates a track. Allocation is directory metadata, not an
// I/O operation, so it never faults; I/O on a track whose drive has
// died is redirected at operation time.
func (f *Disk) Alloc(d int) int { return f.inner.Alloc(d) }

// ReserveRot reserves a standard-consecutive-format area.
func (f *Disk) ReserveRot(nBlocks, rot int) disk.Area { return f.inner.ReserveRot(nBlocks, rot) }

// Release frees a track, its checksum, and its mirror copy (if any).
func (f *Disk) Release(d, t int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := addr{d, t}
	if m, ok := f.mirrors[key]; ok {
		delete(f.mirrors, key)
		delete(f.sums, addr{m.Disk, m.Track})
		if err := f.inner.Release(m.Disk, m.Track); err != nil {
			return err
		}
	}
	delete(f.sums, key)
	return f.inner.Release(d, t)
}

// mirrorDrive returns the live partner drive for d, preferring the
// next drive in cyclic order.
func (f *Disk) mirrorDrive(d int) (int, bool) {
	D := len(f.dead)
	for i := 1; i < D; i++ {
		md := (d + i) % D
		if !f.dead[md] {
			return md, true
		}
	}
	return 0, false
}

// tickDrives advances the attempt clock of each drive the request
// list touches by one and reports, per request, whether injection is
// active for it (its drive's clock has reached FirstOp). It also
// handles the scheduled drive death: the failing drive dies when its
// own clock reaches FailDriveOp, so only an operation that touches
// that drive can trigger the death — which is what makes the schedule
// independent of how operations on other drives interleave.
func (f *Disk) tickDrives(n int, driveAt func(int) int) (inject []bool, dying int) {
	inject = make([]bool, n)
	dying = -1
	ticked := make([]bool, len(f.attempts))
	for i := 0; i < n; i++ {
		d := driveAt(i)
		if !ticked[d] {
			ticked[d] = true
			f.attempts[d]++
		}
		idx := f.attempts[d] - 1
		inject[i] = idx >= f.plan.FirstOp
		if f.plan.FailDriveOp > 0 && d == f.plan.FailDrive && idx >= f.plan.FailDriveOp && !f.dead[d] {
			f.dead[d] = true
			f.ctr.DriveFailures++
			dying = d
			if f.below != nil {
				f.below.DriveDied(dying)
			}
		}
	}
	return inject, dying
}

// survivable reports whether a permanent drive loss leaves the data
// reachable: either mirror copies exist or a parity layer underneath
// can reconstruct.
func (f *Disk) survivable() bool { return f.plan.Mirrored() || f.below != nil }

// resolve maps a logical track address to its current physical
// location: the track itself while its drive lives, the mirror copy
// after the drive died. With a parity layer below, dead-drive
// addresses pass through unchanged — reconstruction happens there.
// The second result is false if the data is gone for good.
func (f *Disk) resolve(d, t int) (disk.Addr, bool) {
	if !f.dead[d] || f.below != nil {
		return disk.Addr{Disk: d, Track: t}, true
	}
	if m, ok := f.mirrors[addr{d, t}]; ok {
		return m, true
	}
	return disk.Addr{}, false
}

// groupsOf partitions n requests (physical drive given by driveAt)
// into maximal runs with pairwise-distinct drives, preserving order.
// With no drive dead this yields a single group; after a drive loss,
// redirected requests can collide with survivors and force extra
// operations — the degradation the model charges for.
func groupsOf(n int, driveAt func(int) int) [][]int {
	var groups [][]int
	var cur []int
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		d := driveAt(i)
		if seen[d] {
			groups = append(groups, cur)
			cur = nil
			seen = make(map[int]bool)
		}
		seen[d] = true
		cur = append(cur, i)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// ReadOp performs one parallel read with fault injection, checksum
// verification, dead-drive redirection and bounded retries. Every
// attempt — including failed ones — is charged against the underlying
// array, so recovery is visible in the model's I/O cost exactly as the
// issue's retry-with-backoff policy prescribes.
func (f *Disk) ReadOp(reqs []disk.ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for try := 0; ; try++ {
		err := f.readAttempt(reqs)
		if err == nil {
			return nil
		}
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient() || try >= f.maxRetries {
			return err
		}
		f.ctr.Retries++
		f.ctr.RetriedBlocks += int64(len(reqs))
	}
}

func (f *Disk) readAttempt(reqs []disk.ReadReq) error {
	inject, dying := f.tickDrives(len(reqs), func(i int) int { return reqs[i].Disk })
	if dying >= 0 {
		// With a parity layer below, the death itself forces a superstep
		// rollback: tracks written since the barrier are not yet striped
		// (parity is flushed at barriers), so any of them on the dead
		// drive are unprotected and must be regenerated by a replay that
		// remaps them onto survivors. Mirroring protects at write time,
		// so there only an operation touching the dying drive aborts.
		if f.below != nil {
			return &Error{Kind: DriveLoss, Disk: dying, Op: "read", Recoverable: f.survivable()}
		}
		for _, r := range reqs {
			if r.Disk == dying {
				return &Error{Kind: DriveLoss, Disk: dying, Track: r.Track, Op: "read", Recoverable: f.survivable()}
			}
		}
	}

	// Draw the fault schedule for this attempt before doing any I/O,
	// each request from its own drive's stream, so the schedule depends
	// only on that drive's attempt history.
	type corruptDraw struct {
		i   int
		w   int
		bit uint
	}
	failIdx, corrupt := -1, []corruptDraw(nil)
	for i, r := range reqs {
		if !inject[i] {
			continue
		}
		rng := f.rngs[r.Disk]
		if f.plan.ReadErrorRate > 0 && rng.Float64() < f.plan.ReadErrorRate && failIdx < 0 {
			failIdx = i
		}
		if f.plan.CorruptRate > 0 && rng.Float64() < f.plan.CorruptRate {
			corrupt = append(corrupt, corruptDraw{
				i:   i,
				w:   int(rng.Uint64() % uint64(len(r.Dst))),
				bit: uint(rng.Uint64() % 64),
			})
		}
	}

	// Resolve physical locations (mirror redirect for dead drives).
	phys := make([]disk.Addr, len(reqs))
	for i, r := range reqs {
		p, ok := f.resolve(r.Disk, r.Track)
		if !ok {
			return &Error{Kind: DriveLoss, Disk: r.Disk, Track: r.Track, Op: "read", Recoverable: false}
		}
		phys[i] = p
	}

	// Issue, splitting into extra operations where redirection causes
	// drive collisions.
	groups := groupsOf(len(reqs), func(i int) int { return phys[i].Disk })
	for _, g := range groups {
		sub := make([]disk.ReadReq, 0, len(g))
		for _, i := range g {
			sub = append(sub, disk.ReadReq{Disk: phys[i].Disk, Track: phys[i].Track, Dst: reqs[i].Dst})
		}
		if err := f.inner.ReadOp(sub); err != nil {
			return err
		}
	}
	f.ctr.RecoveryOps += int64(len(groups) - 1)

	// The transient failure is reported after the transfer was
	// attempted: the operation is charged, its completion is lost.
	if failIdx >= 0 {
		f.ctr.InjectedReadFaults++
		f.ctr.RecoveryOps++ // the re-issue this failure forces
		return &Error{Kind: TransientRead, Disk: reqs[failIdx].Disk, Track: reqs[failIdx].Track, Op: "read", Recoverable: true}
	}

	// In-flight corruption: flip one deterministic bit of the
	// delivered block (only meaningful for checksummed tracks).
	for _, c := range corrupt {
		if _, ok := f.sums[addr{phys[c.i].Disk, phys[c.i].Track}]; !ok {
			continue
		}
		reqs[c.i].Dst[c.w] ^= 1 << c.bit
		f.ctr.InjectedCorruptions++
	}

	// Verify checksums of everything delivered.
	for i, r := range reqs {
		want, ok := f.sums[addr{phys[i].Disk, phys[i].Track}]
		if !ok {
			continue
		}
		if got := disk.Checksum(r.Dst); got != want {
			f.ctr.ChecksumFailures++
			f.ctr.RecoveryOps++ // the re-read this detection forces
			return &Error{Kind: Corruption, Disk: r.Disk, Track: r.Track, Op: "read", Recoverable: true}
		}
	}
	return nil
}

// WriteOp performs one parallel write with fault injection, checksum
// recording, mirroring and bounded retries.
func (f *Disk) WriteOp(reqs []disk.WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for try := 0; ; try++ {
		err := f.writeAttempt(reqs)
		if err == nil {
			return nil
		}
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient() || try >= f.maxRetries {
			return err
		}
		f.ctr.Retries++
		f.ctr.RetriedBlocks += int64(len(reqs))
	}
}

func (f *Disk) writeAttempt(reqs []disk.WriteReq) error {
	inject, dying := f.tickDrives(len(reqs), func(i int) int { return reqs[i].Disk })
	if dying >= 0 {
		// See readAttempt: a death over a parity layer always aborts the
		// attempt so the superstep replays with the drive already dead.
		if f.below != nil {
			return &Error{Kind: DriveLoss, Disk: dying, Op: "write", Recoverable: f.survivable()}
		}
		for _, r := range reqs {
			if r.Disk == dying {
				return &Error{Kind: DriveLoss, Disk: dying, Track: r.Track, Op: "write", Recoverable: f.survivable()}
			}
		}
	}

	failIdx := -1
	if f.plan.WriteErrorRate > 0 {
		for i, r := range reqs {
			if !inject[i] {
				continue
			}
			if f.rngs[r.Disk].Float64() < f.plan.WriteErrorRate && failIdx < 0 {
				failIdx = i
			}
		}
	}

	// Resolve primaries: a write whose home drive died lands on its
	// mirror location (allocated on a surviving partner on first use),
	// which from then on is the block's single, degraded copy. With a
	// parity layer below, dead-drive writes pass through — remapping
	// onto spare capacity happens there.
	phys := make([]disk.Addr, len(reqs))
	mirrored := make([]bool, len(reqs)) // true when phys is already the mirror
	for i, r := range reqs {
		key := addr{r.Disk, r.Track}
		if !f.dead[r.Disk] || f.below != nil {
			phys[i] = disk.Addr{Disk: r.Disk, Track: r.Track}
			continue
		}
		m, ok := f.mirrors[key]
		if !ok {
			md, live := f.mirrorDrive(r.Disk)
			if !live {
				return &Error{Kind: DriveLoss, Disk: r.Disk, Track: r.Track, Op: "write", Recoverable: false}
			}
			m = disk.Addr{Disk: md, Track: f.inner.Alloc(md)}
			f.mirrors[key] = m
		}
		phys[i] = m
		mirrored[i] = true
	}

	groups := groupsOf(len(reqs), func(i int) int { return phys[i].Disk })
	for _, g := range groups {
		sub := make([]disk.WriteReq, 0, len(g))
		for _, i := range g {
			sub = append(sub, disk.WriteReq{Disk: phys[i].Disk, Track: phys[i].Track, Src: reqs[i].Src})
		}
		if err := f.inner.WriteOp(sub); err != nil {
			return err
		}
	}
	f.ctr.RecoveryOps += int64(len(groups) - 1)

	// Record checksums for the physical locations written.
	for i, r := range reqs {
		f.sums[addr{phys[i].Disk, phys[i].Track}] = disk.Checksum(r.Src)
	}

	if failIdx >= 0 {
		f.ctr.InjectedWriteFaults++
		f.ctr.RecoveryOps++ // the re-issue this failure forces
		return &Error{Kind: TransientWrite, Disk: reqs[failIdx].Disk, Track: reqs[failIdx].Track, Op: "write", Recoverable: true}
	}

	// Mirror copies on live partner drives.
	if f.plan.Mirrored() {
		type mreq struct {
			i int
			m disk.Addr
		}
		var ms []mreq
		for i, r := range reqs {
			if mirrored[i] {
				continue // the primary is gone; its mirror was just written
			}
			key := addr{r.Disk, r.Track}
			m, ok := f.mirrors[key]
			if !ok {
				md, live := f.mirrorDrive(r.Disk)
				if !live {
					continue
				}
				m = disk.Addr{Disk: md, Track: f.inner.Alloc(md)}
				f.mirrors[key] = m
			}
			ms = append(ms, mreq{i, m})
		}
		mgroups := groupsOf(len(ms), func(j int) int { return ms[j].m.Disk })
		for _, g := range mgroups {
			sub := make([]disk.WriteReq, 0, len(g))
			for _, j := range g {
				sub = append(sub, disk.WriteReq{Disk: ms[j].m.Disk, Track: ms[j].m.Track, Src: reqs[ms[j].i].Src})
			}
			if err := f.inner.WriteOp(sub); err != nil {
				return err
			}
			f.ctr.MirrorOps++
		}
		for _, mr := range ms {
			f.sums[addr{mr.m.Disk, mr.m.Track}] = disk.Checksum(reqs[mr.i].Src)
		}
	}
	return nil
}

// Snapshot captures the fault layer's rollback state: the underlying
// allocator and the checksum and mirror directories. Together with the
// engine-side manifest (superstep index, context-area cursor, PRNG
// state) it forms the superstep checkpoint. Fault counters, the fault
// schedule clock and dead drives are deliberately not part of it: a
// replay is new work under new draws, not a rewind of history.
type Snapshot struct {
	alloc   disk.AllocMark
	sums    map[addr]uint64
	mirrors map[addr]disk.Addr
}

// Snapshot captures rollback state at a compound-superstep barrier.
func (f *Disk) Snapshot() *Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &Snapshot{
		alloc:   f.inner.AllocSnapshot(),
		sums:    make(map[addr]uint64, len(f.sums)),
		mirrors: make(map[addr]disk.Addr, len(f.mirrors)),
	}
	for k, v := range f.sums {
		s.sums[k] = v
	}
	for k, v := range f.mirrors {
		s.mirrors[k] = v
	}
	return s
}

// Restore rolls the fault layer and the underlying allocator back to a
// snapshot. The snapshot remains valid for further Restores (replays
// can themselves fault).
func (f *Disk) Restore(s *Snapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner.AllocRestore(s.alloc)
	f.sums = make(map[addr]uint64, len(s.sums))
	for k, v := range s.sums {
		f.sums[k] = v
	}
	f.mirrors = make(map[addr]disk.Addr, len(s.mirrors))
	for k, v := range s.mirrors {
		f.mirrors[k] = v
	}
}

// Replayable reports whether err contains a fault the engines can
// recover from by rolling back to the last compound-superstep barrier
// and replaying.
func Replayable(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Recoverable
}

// EncodeState appends the fault layer's complete persistent state to
// enc: the per-drive fault-schedule clocks, the per-drive injection
// PRNGs, dead drives, the accumulated counters, and the checksum and
// mirror directories (in sorted address order, so the encoding is
// deterministic). Unlike Snapshot — which deliberately omits the
// clocks and counters because an in-process replay is new work under
// new draws — a journal commit must capture everything: a resumed
// process replaces the crashed one entirely, so the fault schedule
// has to continue exactly where the last committed barrier left it.
func (f *Disk) EncodeState(enc *words.Encoder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	enc.PutInt(int64(len(f.attempts)))
	for _, a := range f.attempts {
		enc.PutInt(a)
	}
	for _, r := range f.rngs {
		st := r.State()
		for _, w := range st[:] {
			enc.PutUint(w)
		}
	}
	enc.PutInt(int64(len(f.dead)))
	for _, d := range f.dead {
		enc.PutBool(d)
	}
	c := f.ctr
	enc.PutInts([]int64{
		c.InjectedReadFaults, c.InjectedWriteFaults, c.InjectedCorruptions,
		c.ChecksumFailures, c.DriveFailures, c.Retries, c.RetriedBlocks,
		c.RecoveryOps, c.MirrorOps,
	})

	sumKeys := make([]addr, 0, len(f.sums))
	for k := range f.sums {
		sumKeys = append(sumKeys, k)
	}
	sort.Slice(sumKeys, func(i, j int) bool {
		if sumKeys[i].d != sumKeys[j].d {
			return sumKeys[i].d < sumKeys[j].d
		}
		return sumKeys[i].t < sumKeys[j].t
	})
	enc.PutInt(int64(len(sumKeys)))
	for _, k := range sumKeys {
		enc.PutInt(int64(k.d))
		enc.PutInt(int64(k.t))
		enc.PutUint(f.sums[k])
	}

	mirKeys := make([]addr, 0, len(f.mirrors))
	for k := range f.mirrors {
		mirKeys = append(mirKeys, k)
	}
	sort.Slice(mirKeys, func(i, j int) bool {
		if mirKeys[i].d != mirKeys[j].d {
			return mirKeys[i].d < mirKeys[j].d
		}
		return mirKeys[i].t < mirKeys[j].t
	})
	enc.PutInt(int64(len(mirKeys)))
	for _, k := range mirKeys {
		m := f.mirrors[k]
		enc.PutInt(int64(k.d))
		enc.PutInt(int64(k.t))
		enc.PutInt(int64(m.Disk))
		enc.PutInt(int64(m.Track))
	}
}

// DecodeState restores state previously written by EncodeState.
func (f *Disk) DecodeState(dec *words.Decoder) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	na := int(dec.Int())
	if na != len(f.attempts) {
		return fmt.Errorf("fault: decoding clocks for %d drives into %d-drive layer", na, len(f.attempts))
	}
	for d := range f.attempts {
		f.attempts[d] = dec.Int()
	}
	for _, r := range f.rngs {
		var st [4]uint64
		for i := range st {
			st[i] = dec.Uint()
		}
		r.SetState(st)
	}
	nd := int(dec.Int())
	if nd != len(f.dead) {
		return fmt.Errorf("fault: decoding state for %d drives into %d-drive layer", nd, len(f.dead))
	}
	for d := range f.dead {
		f.dead[d] = dec.Bool()
	}
	cs := dec.Ints()
	if len(cs) != 9 {
		return fmt.Errorf("fault: counter state has %d fields, want 9", len(cs))
	}
	f.ctr = Counters{
		InjectedReadFaults: cs[0], InjectedWriteFaults: cs[1], InjectedCorruptions: cs[2],
		ChecksumFailures: cs[3], DriveFailures: cs[4], Retries: cs[5], RetriedBlocks: cs[6],
		RecoveryOps: cs[7], MirrorOps: cs[8],
	}

	f.sums = make(map[addr]uint64)
	for n := dec.Int(); n > 0; n-- {
		d := int(dec.Int())
		t := int(dec.Int())
		f.sums[addr{d, t}] = dec.Uint()
	}
	f.mirrors = make(map[addr]disk.Addr)
	for n := dec.Int(); n > 0; n-- {
		d := int(dec.Int())
		t := int(dec.Int())
		md := int(dec.Int())
		mt := int(dec.Int())
		f.mirrors[addr{d, t}] = disk.Addr{Disk: md, Track: mt}
	}
	return nil
}
