package fault

import (
	"errors"
	"fmt"
	"testing"

	"embsp/internal/disk"
)

func testArray(t *testing.T, d, b int) *disk.Array {
	t.Helper()
	return disk.MustNewArray(disk.Config{D: d, B: b})
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		plan Plan
		ok   bool
	}{
		{Plan{}, true},
		{Plan{ReadErrorRate: 0.5, WriteErrorRate: 0.99, CorruptRate: 0}, true},
		{Plan{ReadErrorRate: -0.1}, false},
		{Plan{WriteErrorRate: 1.0}, false},
		{Plan{CorruptRate: 1.5}, false},
		{Plan{FirstOp: -1}, false},
		{Plan{FailDrive: -1}, false},
		{Plan{FailProc: -1}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.plan, err, c.ok)
		}
	}
}

func TestWrapRejectsImpossiblePlans(t *testing.T) {
	a := testArray(t, 2, 4)
	if _, err := Wrap(a, Plan{FailDriveOp: 5, FailDrive: 2}, 0); err == nil {
		t.Error("FailDrive beyond D accepted")
	}
	one := testArray(t, 1, 4)
	if _, err := Wrap(one, Plan{Mirror: true}, 0); err == nil {
		t.Error("mirroring on a single drive accepted")
	}
	// Redundancy is explicit policy, enforced by Options.Validate:
	// the wrapper itself accepts an unprotected death plan (the loss
	// is simply unrecoverable when it strikes).
	if _, err := Wrap(one, Plan{FailDriveOp: 5}, 0); err != nil {
		t.Errorf("unprotected death plan rejected by the constructor: %v", err)
	}
}

func TestFaultFreePassThrough(t *testing.T) {
	f := MustWrap(testArray(t, 2, 2), Plan{Seed: 1}, 0)
	tr := f.Alloc(0)
	if err := f.WriteOp([]disk.WriteReq{{Disk: 0, Track: tr, Src: []uint64{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 2)
	if err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: tr, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("round trip gave %v", dst)
	}
	if c := f.Counters(); c.Injected() != 0 || c.Retries != 0 || c.RecoveryOps != 0 {
		t.Errorf("fault-free plan produced counters %+v", c)
	}
}

// TestRetriesAbsorbTransients: with the default retry budget, moderate
// transient rates never escape to the caller, and the recovery work is
// counted.
func TestRetriesAbsorbTransients(t *testing.T) {
	f := MustWrap(testArray(t, 4, 4), Plan{Seed: 3, ReadErrorRate: 0.2, WriteErrorRate: 0.2}, 0)
	src := []uint64{1, 2, 3, 4}
	dst := make([]uint64, 4)
	for i := 0; i < 200; i++ {
		tr := f.Alloc(i % 4)
		if err := f.WriteOp([]disk.WriteReq{{Disk: i % 4, Track: tr, Src: src}}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := f.ReadOp([]disk.ReadReq{{Disk: i % 4, Track: tr, Dst: dst}}); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	c := f.Counters()
	if c.InjectedReadFaults == 0 || c.InjectedWriteFaults == 0 {
		t.Errorf("no faults injected at 20%% rates: %+v", c)
	}
	if c.Retries == 0 || c.RetriedBlocks == 0 {
		t.Errorf("faults injected but nothing retried: %+v", c)
	}
	if c.RecoveryOps < c.Retries {
		t.Errorf("RecoveryOps=%d < Retries=%d; every retry is a charged op", c.RecoveryOps, c.Retries)
	}
	// Retries are real charged operations on the underlying array.
	if ops := f.Stats().Ops; ops < 400+c.Retries {
		t.Errorf("Stats().Ops=%d does not include the %d retries", ops, c.Retries)
	}
}

// TestCorruptionDetected: with retries disabled, an injected corruption
// surfaces as a typed recoverable Corruption error.
func TestCorruptionDetected(t *testing.T) {
	f := MustWrap(testArray(t, 1, 4), Plan{Seed: 2, CorruptRate: 0.9}, -1)
	src := []uint64{9, 8, 7, 6}
	tr := f.Alloc(0)
	if err := f.WriteOp([]disk.WriteReq{{Disk: 0, Track: tr, Src: src}}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	var sawCorruption bool
	for i := 0; i < 50 && !sawCorruption; i++ {
		err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: tr, Dst: dst}})
		if err == nil {
			continue
		}
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("untyped error: %v", err)
		}
		if fe.Kind != Corruption || !fe.Recoverable || fe.Disk != 0 || fe.Track != tr {
			t.Fatalf("unexpected error: %+v", fe)
		}
		sawCorruption = true
	}
	if !sawCorruption {
		t.Fatal("90% corruption rate never detected in 50 reads")
	}
	if c := f.Counters(); c.ChecksumFailures == 0 || c.InjectedCorruptions == 0 {
		t.Errorf("counters missed the corruption: %+v", c)
	}
	// A clean re-read eventually delivers the true data: corruption is
	// in-flight, not on the platter.
	for i := 0; i < 200; i++ {
		if err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: tr, Dst: dst}}); err == nil {
			break
		}
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("clean re-read gave %v, want %v", dst, src)
		}
	}
}

// TestUncheckedBlocksNotCorrupted: corruption only strikes checksummed
// (written) tracks, so blank reads stay exact zeros.
func TestUncheckedBlocksNotCorrupted(t *testing.T) {
	f := MustWrap(testArray(t, 1, 4), Plan{Seed: 2, CorruptRate: 0.9}, 0)
	dst := make([]uint64, 4)
	for i := 0; i < 50; i++ {
		if err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: i, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
		for _, w := range dst {
			if w != 0 {
				t.Fatalf("blank track corrupted: %v", dst)
			}
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() Counters {
		f := MustWrap(testArray(t, 2, 2), Plan{Seed: 11, ReadErrorRate: 0.3, WriteErrorRate: 0.3, CorruptRate: 0.3}, 0)
		src := []uint64{1, 2}
		dst := make([]uint64, 2)
		for i := 0; i < 100; i++ {
			tr := f.Alloc(i % 2)
			if err := f.WriteOp([]disk.WriteReq{{Disk: i % 2, Track: tr, Src: src}}); err != nil {
				t.Fatal(err)
			}
			if err := f.ReadOp([]disk.ReadReq{{Disk: i % 2, Track: tr, Dst: dst}}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Counters()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different schedules:\n a=%+v\n b=%+v", a, b)
	}
}

func TestFirstOpDelaysInjection(t *testing.T) {
	f := MustWrap(testArray(t, 1, 2), Plan{Seed: 5, ReadErrorRate: 0.9, FirstOp: 1 << 40}, 0)
	dst := make([]uint64, 2)
	for i := 0; i < 100; i++ {
		if err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: i, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
	}
	if c := f.Counters(); c.Injected() != 0 {
		t.Errorf("faults injected before FirstOp: %+v", c)
	}
}

// TestDriveDeathRedirection: after the scheduled death, reads of
// mirrored tracks are served from the mirror copies and writes land on
// survivors.
func TestDriveDeathRedirection(t *testing.T) {
	f := MustWrap(testArray(t, 3, 2), Plan{Seed: 7, FailDriveOp: 10, FailDrive: 1, Mirror: true}, 0)
	// Ten mirrored writes before the death.
	tracks := make([]int, 10)
	for i := range tracks {
		tracks[i] = f.Alloc(1)
		src := []uint64{uint64(i), uint64(i) * 3}
		if err := f.WriteOp([]disk.WriteReq{{Disk: 1, Track: tracks[i], Src: src}}); err != nil {
			t.Fatal(err)
		}
	}
	// The next op trips the death; the error names the drive and is
	// recoverable because copies exist.
	dst := make([]uint64, 2)
	err := f.ReadOp([]disk.ReadReq{{Disk: 1, Track: tracks[0], Dst: dst}})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != DriveLoss || fe.Disk != 1 || !fe.Recoverable {
		t.Fatalf("death op error = %v, want recoverable DriveLoss on drive 1", err)
	}
	if !f.Down(1) || f.LiveDrives() != 2 {
		t.Fatalf("drive 1 not marked dead: down=%v live=%d", f.Down(1), f.LiveDrives())
	}
	// Replay of the read: served from the mirror, data intact.
	for i, tr := range tracks {
		if err := f.ReadOp([]disk.ReadReq{{Disk: 1, Track: tr, Dst: dst}}); err != nil {
			t.Fatal(err)
		}
		if dst[0] != uint64(i) || dst[1] != uint64(i)*3 {
			t.Fatalf("track %d after death: %v, want [%d %d]", tr, dst, i, i*3)
		}
	}
	// Writes addressed to the dead drive keep working.
	tr := f.Alloc(1)
	if err := f.WriteOp([]disk.WriteReq{{Disk: 1, Track: tr, Src: []uint64{42, 43}}}); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadOp([]disk.ReadReq{{Disk: 1, Track: tr, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 42 || dst[1] != 43 {
		t.Fatalf("post-death write round trip: %v", dst)
	}
	if c := f.Counters(); c.DriveFailures != 1 || c.MirrorOps == 0 {
		t.Errorf("counters after death: %+v", c)
	}
}

// TestLostDataIsFatal: a read of a dead drive's track with no
// surviving copy is an unrecoverable DriveLoss. The mirror copy is
// removed white-box to reach the data-gone path.
func TestLostDataIsFatal(t *testing.T) {
	f := MustWrap(testArray(t, 2, 2), Plan{Seed: 7, FailDriveOp: 1, FailDrive: 0, Mirror: true}, 0)
	tr := f.Alloc(0)
	if err := f.WriteOp([]disk.WriteReq{{Disk: 0, Track: tr, Src: []uint64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 2)
	err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: tr, Dst: dst}}) // trips the death
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != DriveLoss || !fe.Recoverable {
		t.Fatalf("death op error = %v, want recoverable DriveLoss", err)
	}
	// Simulate the mirror copy also being gone.
	delete(f.mirrors, addr{0, tr})
	err = f.ReadOp([]disk.ReadReq{{Disk: 0, Track: tr, Dst: dst}})
	if !errors.As(err, &fe) || fe.Kind != DriveLoss || fe.Recoverable {
		t.Fatalf("read of lost data = %v, want unrecoverable DriveLoss", err)
	}
	if Replayable(err) {
		t.Error("unrecoverable loss reported as replayable")
	}
}

func TestSnapshotRestore(t *testing.T) {
	f := MustWrap(testArray(t, 2, 2), Plan{Seed: 1}, 0)
	committed := f.Alloc(0)
	if err := f.WriteOp([]disk.WriteReq{{Disk: 0, Track: committed, Src: []uint64{5, 6}}}); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	// The attempt writes new tracks, then is rolled back.
	for i := 0; i < 5; i++ {
		tr := f.Alloc(1)
		if err := f.WriteOp([]disk.WriteReq{{Disk: 1, Track: tr, Src: []uint64{7, 8}}}); err != nil {
			t.Fatal(err)
		}
	}
	f.Restore(snap)
	dst := make([]uint64, 2)
	if err := f.ReadOp([]disk.ReadReq{{Disk: 0, Track: committed, Dst: dst}}); err != nil {
		t.Fatalf("committed track fails checksum after rollback: %v", err)
	}
	if dst[0] != 5 || dst[1] != 6 {
		t.Errorf("committed data lost: %v", dst)
	}
	// The attempt's tracks are free again and their checksums gone.
	if tr := f.Alloc(1); tr != 0 {
		t.Errorf("allocator not rolled back: Alloc = %d, want 0", tr)
	}
}

func TestReplayable(t *testing.T) {
	rec := &Error{Kind: TransientRead, Recoverable: true}
	if !Replayable(rec) {
		t.Error("recoverable error not replayable")
	}
	if !Replayable(errors.Join(fmt.Errorf("wrap: %w", rec), errors.New("other"))) {
		t.Error("joined recoverable error not replayable")
	}
	if Replayable(&Error{Kind: DriveLoss, Recoverable: false}) {
		t.Error("unrecoverable error replayable")
	}
	if Replayable(errors.New("plain")) || Replayable(nil) {
		t.Error("non-fault errors replayable")
	}
}

func TestGroupsOf(t *testing.T) {
	drives := []int{0, 1, 2, 0, 1, 0}
	got := groupsOf(len(drives), func(i int) int { return drives[i] })
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if len(got) != len(want) {
		t.Fatalf("groupsOf = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("groupsOf = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("groupsOf = %v, want %v", got, want)
			}
		}
	}
	if g := groupsOf(0, nil); len(g) != 0 {
		t.Errorf("groupsOf(0) = %v, want empty", g)
	}
}
