package fault

import (
	"testing"
	"time"
)

func netPlan() NetPlan {
	return NetPlan{Seed: 99, DropRate: 0.3, DelayRate: 0.2, Delay: time.Millisecond, DupRate: 0.1, CleanAfter: 8}
}

func TestNetDecideDeterministic(t *testing.T) {
	p := netPlan()
	for seq := uint64(0); seq < 200; seq++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := p.Decide(Link(0, 1), seq, attempt)
			b := p.Decide(Link(0, 1), seq, attempt)
			if a != b {
				t.Fatalf("seq %d attempt %d: %+v then %+v", seq, attempt, a, b)
			}
		}
	}
}

func TestNetDecideIndependentStreams(t *testing.T) {
	p := netPlan()
	// Different links and different attempts must not share a fate
	// wholesale: over many sequence numbers, the decision vectors
	// should differ somewhere.
	same := true
	for seq := uint64(0); seq < 100 && same; seq++ {
		if p.Decide(Link(0, 1), seq, 0) != p.Decide(Link(1, 0), seq, 0) {
			same = false
		}
	}
	if same {
		t.Error("links (0,1) and (1,0) share an identical fault schedule")
	}
	same = true
	for seq := uint64(0); seq < 100 && same; seq++ {
		if p.Decide(Link(0, 1), seq, 0) != p.Decide(Link(0, 1), seq, 1) {
			same = false
		}
	}
	if same {
		t.Error("attempts 0 and 1 share an identical fault schedule")
	}
}

func TestNetDecideRates(t *testing.T) {
	p := netPlan()
	const n = 5000
	var drops, delays, dups int
	for seq := uint64(0); seq < n; seq++ {
		d := p.Decide(Link(2, 3), seq, 0)
		if d.Drop {
			drops++
		}
		if d.Delay != 0 {
			delays++
		}
		if d.Duplicate {
			dups++
		}
	}
	// Coarse sanity: each class occurs, none dominates far beyond its
	// configured rate. (Delay and Dup draw after a non-drop, so their
	// observed rates are scaled by 1-DropRate.)
	checks := []struct {
		name string
		got  int
		lo   float64
		hi   float64
	}{
		{"drops", drops, 0.2, 0.4},
		{"delays", delays, 0.2 * 0.5, 0.2 * 1.1},
		{"dups", dups, 0.1 * 0.5, 0.1 * 1.1},
	}
	for _, c := range checks {
		f := float64(c.got) / n
		if f < c.lo || f > c.hi {
			t.Errorf("%s: observed rate %.3f outside [%.3f, %.3f]", c.name, f, c.lo, c.hi)
		}
	}
}

func TestNetCleanAfter(t *testing.T) {
	p := netPlan()
	for seq := uint64(0); seq < 500; seq++ {
		for attempt := p.CleanAfter; attempt < p.CleanAfter+3; attempt++ {
			if d := p.Decide(Link(0, 1), seq, attempt); !d.Clean() {
				t.Fatalf("seq %d attempt %d: %+v, want clean past CleanAfter", seq, attempt, d)
			}
		}
	}
}

func TestNetDisabledPlanIsClean(t *testing.T) {
	var p NetPlan
	if p.Enabled() {
		t.Error("zero plan reports Enabled")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if d := p.Decide(Link(0, 1), seq, 0); !d.Clean() {
			t.Fatalf("zero plan injected %+v", d)
		}
	}
}

func TestNetValidate(t *testing.T) {
	good := netPlan()
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []NetPlan{
		{DropRate: -0.1},
		{DropRate: 1},
		{DelayRate: 0.5}, // missing Delay
		{DupRate: 2},
		{Delay: -time.Second},
		{CleanAfter: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestNetLinkDistinct(t *testing.T) {
	seen := map[uint64][2]int{}
	for from := 0; from < 5; from++ {
		for to := 0; to < 5; to++ {
			l := Link(from, to)
			if prev, dup := seen[l]; dup {
				t.Fatalf("Link(%d,%d) collides with Link(%d,%d)", from, to, prev[0], prev[1])
			}
			seen[l] = [2]int{from, to}
		}
	}
}

func TestNetLinkDeath(t *testing.T) {
	p := NetPlan{Deaths: []LinkDeath{
		{From: 1, To: 2, Epoch: 0, AfterSeq: 5},
	}}
	if !p.Enabled() {
		t.Error("plan with a death reports disabled")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid death plan rejected: %v", err)
	}
	// Sequenced death: frames before AfterSeq pass, frames at and after
	// it vanish — but only on the named direction and epoch.
	if p.Dead(1, 2, 0, 4) {
		t.Error("frame before AfterSeq reported dead")
	}
	for _, seq := range []uint64{5, 6, 100} {
		if !p.Dead(1, 2, 0, seq) {
			t.Errorf("frame seq %d at/after AfterSeq survived a dead link", seq)
		}
	}
	if p.Dead(2, 1, 0, 10) {
		t.Error("reverse direction died; deaths must be one-directional")
	}
	if p.Dead(1, 2, 1, 10) {
		t.Error("epoch 1 died; a redial must get a fresh link")
	}
	// DeadLink is the seq-independent view keep-alives use: any death
	// entry on the direction+epoch kills pings and pongs outright.
	if !p.DeadLink(1, 2, 0) {
		t.Error("DeadLink(1,2,0) false despite a death entry")
	}
	if p.DeadLink(2, 1, 0) || p.DeadLink(1, 2, 1) {
		t.Error("DeadLink leaked onto the reverse direction or a later epoch")
	}
}

func TestNetLinkDeathValidate(t *testing.T) {
	bad := []NetPlan{
		{Deaths: []LinkDeath{{From: -1, To: 2}}},
		{Deaths: []LinkDeath{{From: 1, To: -2}}},
		{Deaths: []LinkDeath{{From: 1, To: 2, Epoch: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad death plan %d accepted: %+v", i, p.Deaths)
		}
	}
}
